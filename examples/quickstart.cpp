/**
 * @file
 * Quickstart: build a small DLRM, train it on the synthetic CTR stream,
 * watch normalized entropy improve, and round-trip a checkpoint.
 *
 *   ./quickstart
 */
#include <cstdio>

#include "core/dlrm_config.h"
#include "core/dlrm_reference.h"
#include "data/dataloader.h"

int
main()
{
    using namespace neo;

    // ---- 1. Describe the model ----------------------------------------
    // 8 dense features, 4 categorical features with embedding tables,
    // dot-product interaction, BCE loss. MakeSmallDlrmConfig wires the
    // standard DLRM shape; every field can also be set by hand.
    core::DlrmConfig config = core::MakeSmallDlrmConfig(
        /*num_tables=*/4, /*rows=*/500, /*dim=*/16);
    config.sparse_optimizer.kind = ops::SparseOptimizerKind::kRowWiseAdaGrad;
    config.sparse_optimizer.learning_rate = 0.05f;

    core::DlrmReference model(config);
    std::printf("model: %.0f parameters (%zu tables + %zu-layer MLPs)\n",
                config.TotalParams(), config.tables.size(),
                config.bottom_mlp.size() + config.top_mlp.size() + 1);

    // ---- 2. Describe the data ------------------------------------------
    data::DatasetConfig data_config;
    data_config.num_dense = config.num_dense;
    data_config.seed = 42;
    for (const auto& table : config.tables) {
        // Zipf-skewed categorical features with Poisson pooling sizes.
        data_config.features.push_back({table.rows, table.pooling, 1.05});
    }

    // DataLoader prefetches the next batch on a background thread while
    // the current one trains (the paper's input pipelining, Sec. 4.3).
    data::DataLoader loader(data_config, /*batch_size=*/128);

    // ---- 3. Train ---------------------------------------------------
    std::printf("\n%-8s %-10s %-10s\n", "step", "loss", "eval NE");
    for (int step = 1; step <= 300; step++) {
        const double loss = model.TrainStep(loader.NextBatch());
        if (step % 50 == 0) {
            NormalizedEntropy ne;
            data::SyntheticCtrDataset eval(data_config);
            for (int e = 0; e < 4; e++) {
                model.Evaluate(eval.NextBatch(256), ne);
            }
            std::printf("%-8d %-10.4f %-10.4f\n", step, loss, ne.Value());
        }
    }
    std::printf("\nNE < 1 means the model beats the base-rate predictor.\n");

    // ---- 4. Checkpoint ---------------------------------------------
    BinaryWriter writer;
    model.Save(writer);
    writer.SaveToFile("/tmp/quickstart_dlrm.ckpt");
    core::DlrmReference restored(config);
    BinaryReader reader = BinaryReader::LoadFromFile(
        "/tmp/quickstart_dlrm.ckpt");
    restored.Load(reader);
    std::printf("checkpoint round trip: %s (%zu bytes)\n",
                core::DlrmReference::Identical(model, restored)
                    ? "bitwise identical"
                    : "MISMATCH",
                writer.buffer().size());
    return 0;
}
