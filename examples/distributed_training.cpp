/**
 * @file
 * Distributed hybrid-parallel training on 8 simulated GPU workers:
 * the sharding planner assigns embedding tables across workers
 * (table-wise / column-wise / data-parallel), MLPs are replicated, and
 * the full synchronous step runs — input AllToAll, fused lookups, pooled
 * AllToAll (FP16-quantized), backward with exact sparse updates and the
 * MLP gradient AllReduce. Demonstrates the determinism contract and the
 * communication accounting.
 *
 *   ./distributed_training
 */
#include <cstdio>

#include "comm/threaded_process_group.h"
#include "core/distributed_trainer.h"
#include "core/dlrm_config.h"
#include "data/dataset.h"
#include "sharding/planner.h"

namespace {

using namespace neo;

data::DatasetConfig
MakeDataConfig(const core::DlrmConfig& model)
{
    data::DatasetConfig config;
    config.num_dense = model.num_dense;
    config.seed = 99;
    for (const auto& t : model.tables) {
        config.features.push_back({t.rows, t.pooling, 1.05});
    }
    return config;
}

}  // namespace

int
main()
{
    constexpr int kWorkers = 8;
    constexpr size_t kLocalBatch = 64;
    constexpr int kSteps = 40;

    // A model with heterogeneous tables so the planner has real choices:
    // a couple of hot/wide tables, several medium ones, tiny enums.
    core::DlrmConfig model = core::MakeSmallDlrmConfig(
        /*num_tables=*/8, /*rows=*/3000, /*dim=*/16);
    model.tables[0].rows = 60000;   // big: forced to split rows
    model.tables[1].pooling = 60;   // hot: heavy pooling, split columns
    model.tables[6].rows = 60;      // tiny: data-parallel candidates
    model.tables[7].rows = 90;

    // ---- plan the sharding ----------------------------------------
    sharding::PlannerOptions planner_options;
    planner_options.topo.num_workers = kWorkers;
    planner_options.topo.workers_per_node = kWorkers;
    planner_options.global_batch = kLocalBatch * kWorkers;
    planner_options.hbm_bytes_per_worker = 4e6;  // tiny "HBM" to force splits
    planner_options.cw_min_dim = 16;
    planner_options.cw_shard_dim = 8;
    sharding::ShardingPlanner planner(planner_options);
    const sharding::ShardingPlan plan = planner.Plan(model.tables);
    std::printf("sharding plan: %zu shards, imbalance %.3f%s\n",
                plan.shards.size(), plan.balance.imbalance,
                plan.feasible ? "" : " (INFEASIBLE)");
    for (size_t t = 0; t < model.tables.size(); t++) {
        std::printf("  %-8s -> %s\n", model.tables[t].name.c_str(),
                    sharding::SchemeName(
                        plan.SchemeForTable(static_cast<int>(t))));
    }

    // ---- run the workers -------------------------------------------
    core::DistributedOptions options;
    options.forward_alltoall = Precision::kFp16;  // quantized comms
    options.backward_alltoall = Precision::kBf16;

    std::vector<double> final_loss(kWorkers);
    std::vector<uint64_t> a2a_bytes(kWorkers);
    comm::ThreadedWorld::Run(kWorkers, [&](int rank,
                                           comm::ProcessGroup& pg) {
        core::DistributedDlrm trainer(model, plan, pg, options);
        // Each worker generates the identical global stream and trains on
        // its slice — what a distributed reader tier would feed it.
        data::SyntheticCtrDataset dataset(MakeDataConfig(model));
        double loss = 0.0;
        for (int step = 0; step < kSteps; step++) {
            data::Batch global = dataset.NextBatch(kLocalBatch * kWorkers);
            data::Batch local;
            const size_t begin = rank * kLocalBatch;
            local.dense = Matrix(kLocalBatch, global.dense.cols());
            for (size_t b = 0; b < kLocalBatch; b++) {
                for (size_t c = 0; c < global.dense.cols(); c++) {
                    local.dense(b, c) = global.dense(begin + b, c);
                }
            }
            local.sparse =
                global.sparse.SliceBatch(begin, begin + kLocalBatch);
            local.labels.assign(global.labels.begin() + begin,
                                global.labels.begin() + begin +
                                    kLocalBatch);
            loss = trainer.TrainStep(local);
        }
        final_loss[rank] = loss;
        a2a_bytes[rank] = pg.Stats().alltoall_bytes;
    });

    // Synchronous training: every worker reports the identical global
    // loss, bit for bit.
    std::printf("\nfinal global loss per worker:");
    bool all_equal = true;
    for (int w = 0; w < kWorkers; w++) {
        std::printf(" %.6f", final_loss[w]);
        all_equal &= final_loss[w] == final_loss[0];
    }
    std::printf("\nall workers agree bitwise: %s\n",
                all_equal ? "yes" : "NO");
    std::printf("AllToAll traffic per worker over %d steps: ~%.2f MB\n",
                kSteps, a2a_bytes[0] / 1e6);
    return 0;
}
