/**
 * @file
 * Distributed hybrid-parallel training on 8 simulated GPU workers:
 * the sharding planner assigns embedding tables across workers
 * (table-wise / column-wise / data-parallel), MLPs are replicated, and
 * the full synchronous step runs — input AllToAll, fused lookups, pooled
 * AllToAll (FP16-quantized), backward with exact sparse updates and the
 * MLP gradient AllReduce. Demonstrates the determinism contract and the
 * communication accounting.
 *
 *   ./distributed_training [workers]
 *
 * With NEO_TRACE=1 the run also records per-rank spans, writes the
 * Chrome trace to neo_trace.json (load it in https://ui.perfetto.dev),
 * and prints the measured step breakdown side by side with the
 * sim::IterationModel prediction for the same workload.
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "comm/threaded_process_group.h"
#include "core/distributed_trainer.h"
#include "core/dlrm_config.h"
#include "data/dataset.h"
#include "obs/step_breakdown.h"
#include "obs/trace.h"
#include "sharding/planner.h"
#include "sim/iteration_model.h"

namespace {

using namespace neo;

data::DatasetConfig
MakeDataConfig(const core::DlrmConfig& model)
{
    data::DatasetConfig config;
    config.num_dense = model.num_dense;
    config.seed = 99;
    for (const auto& t : model.tables) {
        config.features.push_back({t.rows, t.pooling, 1.05});
    }
    return config;
}

/**
 * Aggregate workload stats for sim::IterationModel, derived from the
 * same config the functional run trains.
 */
sim::WorkloadModel
MakeWorkloadModel(const core::DlrmConfig& model)
{
    sim::WorkloadModel w;
    w.name = "example";
    w.num_params = model.TotalParams();
    w.num_tables = static_cast<int>(model.tables.size());
    int64_t dim_min = model.tables[0].dim;
    int64_t dim_max = model.tables[0].dim;
    double dim_sum = 0.0;
    double pooling_sum = 0.0;
    double max_table = 0.0;
    for (const auto& t : model.tables) {
        dim_min = std::min(dim_min, t.dim);
        dim_max = std::max(dim_max, t.dim);
        dim_sum += static_cast<double>(t.dim);
        pooling_sum += static_cast<double>(t.pooling);
        max_table = std::max(
            max_table, static_cast<double>(t.rows) *
                           static_cast<double>(t.dim));
    }
    w.dim_min = dim_min;
    w.dim_max = dim_max;
    w.dim_avg = dim_sum / static_cast<double>(model.tables.size());
    w.avg_pooling = pooling_sum / static_cast<double>(model.tables.size());
    w.max_table_params = max_table;
    // Forward MFLOPs/sample: 2 * sum of layer weight products.
    double flops = 0.0;
    const std::vector<size_t> bottom = model.BottomLayerSizes();
    for (size_t i = 0; i + 1 < bottom.size(); i++) {
        flops += 2.0 * static_cast<double>(bottom[i] * bottom[i + 1]);
    }
    const std::vector<size_t> top = model.TopLayerSizes();
    double mlp_width_sum = 0.0;
    int mlp_layers = 0;
    for (size_t i = 0; i + 1 < top.size(); i++) {
        flops += 2.0 * static_cast<double>(top[i] * top[i + 1]);
    }
    for (const size_t width : bottom) {
        mlp_width_sum += static_cast<double>(width);
        mlp_layers++;
    }
    for (const size_t width : top) {
        mlp_width_sum += static_cast<double>(width);
        mlp_layers++;
    }
    w.mflops_per_sample = flops / 1e6;
    w.num_mlp_layers = mlp_layers;
    w.avg_mlp_size = mlp_width_sum / mlp_layers;
    return w;
}

/** Worst per-worker sum of row-wise-sharded dims (TrainingSetup knob). */
double
MaxRowWiseDimSum(const sharding::ShardingPlan& plan,
                 const core::DlrmConfig& model, int workers)
{
    std::vector<double> per_worker(workers, 0.0);
    for (const auto& shard : plan.shards) {
        if (shard.scheme == sharding::Scheme::kRowWise) {
            per_worker[shard.worker] +=
                static_cast<double>(model.tables[shard.table].dim);
        }
    }
    double worst = 0.0;
    for (const double d : per_worker) {
        worst = std::max(worst, d);
    }
    return worst;
}

}  // namespace

int
main(int argc, char** argv)
{
    const int kWorkers = argc > 1 ? std::atoi(argv[1]) : 8;
    if (kWorkers < 1) {
        std::fprintf(stderr, "usage: %s [workers]\n", argv[0]);
        return 2;
    }
    constexpr size_t kLocalBatch = 64;
    constexpr int kSteps = 40;

    // NEO_TRACE=1 in the environment switches the tracer on at first use.
    const bool tracing = obs::Tracer::Get().enabled();

    // A model with heterogeneous tables so the planner has real choices:
    // a couple of hot/wide tables, several medium ones, tiny enums.
    core::DlrmConfig model = core::MakeSmallDlrmConfig(
        /*num_tables=*/8, /*rows=*/3000, /*dim=*/16);
    model.tables[0].rows = 60000;   // big: forced to split rows
    model.tables[1].pooling = 60;   // hot: heavy pooling, split columns
    model.tables[6].rows = 60;      // tiny: data-parallel candidates
    model.tables[7].rows = 90;

    // ---- plan the sharding ----------------------------------------
    sharding::PlannerOptions planner_options;
    planner_options.topo.num_workers = kWorkers;
    planner_options.topo.workers_per_node = kWorkers;
    planner_options.global_batch = kLocalBatch * kWorkers;
    planner_options.hbm_bytes_per_worker = 4e6;  // tiny "HBM" to force splits
    planner_options.cw_min_dim = 16;
    planner_options.cw_shard_dim = 8;
    sharding::ShardingPlanner planner(planner_options);
    const sharding::ShardingPlan plan = planner.Plan(model.tables);
    std::printf("sharding plan: %zu shards, imbalance %.3f%s\n",
                plan.shards.size(), plan.balance.imbalance,
                plan.feasible ? "" : " (INFEASIBLE)");
    for (size_t t = 0; t < model.tables.size(); t++) {
        std::printf("  %-8s -> %s\n", model.tables[t].name.c_str(),
                    sharding::SchemeName(
                        plan.SchemeForTable(static_cast<int>(t))));
    }

    // ---- run the workers -------------------------------------------
    core::DistributedOptions options;
    options.forward_alltoall = Precision::kFp16;  // quantized comms
    options.backward_alltoall = Precision::kBf16;

    std::vector<double> final_loss(kWorkers);
    std::vector<uint64_t> a2a_bytes(kWorkers);
    comm::ThreadedWorld::Run(kWorkers, [&](int rank,
                                           comm::ProcessGroup& pg) {
        core::DistributedDlrm trainer(model, plan, pg, options);
        // Each worker generates the identical global stream and trains on
        // its slice — what a distributed reader tier would feed it.
        data::SyntheticCtrDataset dataset(MakeDataConfig(model));
        double loss = 0.0;
        for (int step = 0; step < kSteps; step++) {
            data::Batch global = dataset.NextBatch(kLocalBatch * kWorkers);
            data::Batch local;
            const size_t begin = rank * kLocalBatch;
            local.dense = Matrix(kLocalBatch, global.dense.cols());
            for (size_t b = 0; b < kLocalBatch; b++) {
                for (size_t c = 0; c < global.dense.cols(); c++) {
                    local.dense(b, c) = global.dense(begin + b, c);
                }
            }
            local.sparse =
                global.sparse.SliceBatch(begin, begin + kLocalBatch);
            local.labels.assign(global.labels.begin() + begin,
                                global.labels.begin() + begin +
                                    kLocalBatch);
            loss = trainer.TrainStep(local);
        }
        final_loss[rank] = loss;
        a2a_bytes[rank] = pg.Stats().alltoall_bytes;
    });

    // Synchronous training: every worker reports the identical global
    // loss, bit for bit.
    std::printf("\nfinal global loss per worker:");
    bool all_equal = true;
    for (int w = 0; w < kWorkers; w++) {
        std::printf(" %.6f", final_loss[w]);
        all_equal &= final_loss[w] == final_loss[0];
    }
    std::printf("\nall workers agree bitwise: %s\n",
                all_equal ? "yes" : "NO");
    std::printf("AllToAll traffic per worker over %d steps: ~%.2f MB\n",
                kSteps, a2a_bytes[0] / 1e6);

    // ---- measured vs. modeled step breakdown ------------------------
    if (tracing) {
        const std::vector<obs::Span> spans = obs::Tracer::Get().Collect();
        if (obs::Tracer::Get().WriteChromeJson("neo_trace.json")) {
            std::printf("\nwrote neo_trace.json (%zu spans; open in "
                        "https://ui.perfetto.dev)\n",
                        spans.size());
        }
        const obs::StepBreakdown measured =
            obs::StepBreakdown::FromSpans(spans, /*rank=*/0);
        std::printf("\nmeasured step breakdown (rank 0, %d steps, "
                    "coverage %.1f%%):\n\n%s\n",
                    measured.steps, measured.Coverage() * 100.0,
                    measured.ToTable().c_str());

        // Model the same workload on the paper's A100 cluster. The
        // functional run executes on simulated CPU workers, so absolute
        // times differ by construction — the point of the diff is the
        // shape of the breakdown, not the magnitudes.
        sim::TrainingSetup setup;
        setup.cluster = sim::ClusterSpec::Prototype(1);
        setup.num_gpus = kWorkers;
        setup.per_gpu_batch = static_cast<int64_t>(kLocalBatch);
        setup.fwd_comm = Precision::kFp16;
        setup.bwd_comm = Precision::kBf16;
        setup.imbalance = plan.balance.imbalance;
        setup.rw_dim_sum = MaxRowWiseDimSum(plan, model, kWorkers);
        const sim::IterationModel iteration(MakeWorkloadModel(model),
                                            setup);
        const obs::StepBreakdown modeled =
            obs::StepBreakdown::FromModel(iteration.Estimate());
        std::printf("measured (CPU workers) vs. modeled (A100 cluster):"
                    "\n\n%s\n",
                    obs::StepBreakdown::DiffTable(measured,
                                                  modeled).c_str());
    }
    return 0;
}
