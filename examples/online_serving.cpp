/**
 * @file
 * Train-publish-serve loop (Sec. 4.1.3): a 2-rank trainer keeps training
 * and publishing differential checkpoints to a disk-backed store; a
 * publisher assembles each published epoch into an immutable snapshot and
 * hot-swaps it into a live 2-rank serving world; a closed-loop client
 * streams requests throughout. The serving world never pauses for a
 * swap — in-flight batches finish on their version — and the run fails
 * if any request drops or sheds, or fewer than 3 hot swaps complete
 * under load.
 *
 *   ./online_serving
 */
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "comm/threaded_process_group.h"
#include "common/stats.h"
#include "core/checkpoint.h"
#include "core/distributed_trainer.h"
#include "core/dlrm_config.h"
#include "data/dataset.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "sharding/planner.h"

namespace {

using namespace neo;

constexpr int kWorkers = 2;

data::DatasetConfig
MakeDataConfig(const core::DlrmConfig& model, uint64_t seed)
{
    data::DatasetConfig config;
    config.num_dense = model.num_dense;
    config.seed = seed;
    for (const auto& t : model.tables) {
        config.features.push_back({t.rows, t.pooling, 1.05});
    }
    return config;
}

}  // namespace

int
main()
{
    const core::DlrmConfig model = core::MakeSmallDlrmConfig(4, 300, 16);
    sharding::PlannerOptions planner_options;
    planner_options.topo.num_workers = kWorkers;
    planner_options.topo.workers_per_node = kWorkers;
    planner_options.global_batch = 32;
    planner_options.hbm_bytes_per_worker = 1e12;
    sharding::ShardingPlanner planner(planner_options);
    const sharding::ShardingPlan plan = planner.Plan(model.tables);

    const std::string dir =
        (std::filesystem::temp_directory_path() / "neo_online_serving")
            .string();
    std::filesystem::remove_all(dir);

    // ---- serving side --------------------------------------------------
    serve::ServerOptions server_options;
    server_options.batcher.max_batch = 16;
    server_options.batcher.max_delay_us = 500;
    server_options.max_queue = 4096;
    serve::Server server(model.num_dense, model.tables.size(),
                         server_options);
    std::thread serving_world([&] {
        comm::ThreadedWorld::Run(kWorkers,
                                 [&](int rank, comm::ProcessGroup& pg) {
                                     server.RankLoop(rank, pg);
                                 });
    });

    // ---- training + publishing side ------------------------------------
    const int publish_rounds = 4;
    std::atomic<bool> trainer_failed{false};
    std::thread trainer_world([&] {
        try {
            core::CheckpointStore store(dir);
            comm::ThreadedWorld::Run(kWorkers, [&](int rank,
                                                   comm::ProcessGroup& pg) {
                core::DistributedDlrm trainer(model, plan, pg);
                core::DistributedCheckpointer ckpt(trainer, store);
                data::SyntheticCtrDataset dataset(
                    MakeDataConfig(model, 99));
                const size_t local_batch = 16;
                for (int round = 0; round < publish_rounds; round++) {
                    for (int s = 0; s < 3; s++) {
                        data::Batch global =
                            dataset.NextBatch(local_batch * kWorkers);
                        data::Batch local;
                        const size_t begin = rank * local_batch;
                        local.dense =
                            Matrix(local_batch, global.dense.cols());
                        for (size_t b = 0; b < local_batch; b++) {
                            for (size_t c = 0; c < global.dense.cols();
                                 c++) {
                                local.dense(b, c) =
                                    global.dense(begin + b, c);
                            }
                        }
                        local.sparse = global.sparse.SliceBatch(
                            begin, begin + local_batch);
                        local.labels.assign(
                            global.labels.begin() + begin,
                            global.labels.begin() + begin + local_batch);
                        trainer.TrainStep(local);
                    }
                    if (round == 0) {
                        ckpt.WriteBaseline();
                    } else {
                        ckpt.WriteDelta();
                    }
                    // Every rank's stream must be on disk before the
                    // publisher assembles the epoch.
                    pg.Barrier();
                    if (rank == 0) {
                        auto snapshot = serve::SnapshotFromStore(
                            store, model, plan,
                            static_cast<uint64_t>(round + 1));
                        server.Publish(snapshot);
                        std::printf(
                            "[publisher] version %d live (epoch %llu, "
                            "store %.1f KB on disk)\n",
                            round + 1,
                            static_cast<unsigned long long>(
                                snapshot->source_epoch),
                            store.TotalBytes() / 1024.0);
                    }
                    pg.Barrier();
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(30));
                }
            });
        } catch (const std::exception& e) {
            std::fprintf(stderr, "trainer failed: %s\n", e.what());
            trainer_failed.store(true);
        }
    });

    // ---- closed-loop client --------------------------------------------
    data::SyntheticCtrDataset traffic(MakeDataConfig(model, 4242));
    const data::Batch pool = traffic.NextBatch(64);
    while (server.CurrentVersion() == 0 && !trainer_failed.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    std::vector<serve::Ticket> tickets;
    std::set<uint64_t> versions_seen;
    uint64_t next_id = 0;
    size_t shed = 0;
    const auto client_start = std::chrono::steady_clock::now();
    while ((server.SwapCount() < 4 || tickets.size() < 500) &&
           !trainer_failed.load()) {
        serve::Request req;
        req.id = next_id;
        const size_t i = next_id % pool.dense.rows();
        req.dense.assign(pool.dense.Row(i),
                         pool.dense.Row(i) + pool.dense.cols());
        req.sparse = pool.sparse.SliceBatch(i, i + 1);
        serve::Ticket ticket = server.Submit(std::move(req));
        if (ticket.admission == serve::Admission::kAccepted) {
            tickets.push_back(std::move(ticket));
        } else {
            shed++;
        }
        next_id++;
        std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    trainer_world.join();
    server.Stop();
    serving_world.join();
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - client_start)
                            .count();
    if (trainer_failed.load()) {
        return 1;
    }

    // Every submitted request must complete — hot swaps drop nothing.
    std::vector<double> latencies_us;
    for (auto& ticket : tickets) {
        serve::Response response = ticket.response.get();
        versions_seen.insert(response.snapshot_version);
        latencies_us.push_back(response.total_seconds * 1e6);
    }

    std::printf("\nserved %zu requests in %.2f s (%.0f QPS), %zu shed\n",
                tickets.size(), wall, tickets.size() / wall, shed);
    std::printf("latency p50/p95/p99: %.0f / %.0f / %.0f us\n",
                Percentile(latencies_us, 50.0),
                Percentile(latencies_us, 95.0),
                Percentile(latencies_us, 99.0));
    std::printf("hot swaps completed under load: %llu; versions that "
                "served traffic:",
                static_cast<unsigned long long>(server.SwapCount() - 1));
    for (const uint64_t v : versions_seen) {
        std::printf(" v%llu", static_cast<unsigned long long>(v));
    }
    std::printf("\n");

    std::filesystem::remove_all(dir);
    if (server.SwapCount() < 4) {
        std::fprintf(stderr, "FAIL: expected >= 3 hot swaps under load\n");
        return 1;
    }
    if (shed != 0) {
        std::fprintf(stderr, "FAIL: %zu requests shed\n", shed);
        return 1;
    }
    if (versions_seen.size() < 2) {
        std::fprintf(stderr,
                     "FAIL: only one version ever served traffic\n");
        return 1;
    }
    std::printf("zero dropped or shed requests across %llu hot swaps\n",
                static_cast<unsigned long long>(server.SwapCount() - 1));
    return 0;
}
