/**
 * @file
 * The F1 story at example scale: a model whose single massive table
 * cannot fit one worker's memory. Shows (1) the capacity math that makes
 * 12T parameters trainable (row-wise AdaGrad + FP16), (2) row-wise
 * sharding with bucketized inputs running functionally across workers,
 * and (3) the HBM-as-cache-over-DDR hierarchy (software cache vs UVM)
 * serving a table bigger than "HBM".
 *
 *   ./capacity_12t
 */
#include <cstdio>

#include "cache/cached_embedding_store.h"
#include "cache/uvm_store.h"
#include "comm/threaded_process_group.h"
#include "common/units.h"
#include "core/distributed_trainer.h"
#include "data/dataset.h"
#include "sim/capacity_model.h"

namespace {

using namespace neo;

}  // namespace

int
main()
{
    // ---- 1. The paper's capacity math, full scale ----------------------
    const sim::WorkloadModel f1 = sim::WorkloadModel::F1();
    const sim::ClusterSpec cluster = sim::ClusterSpec::Prototype(16);
    const sim::CapacityEstimate naive = sim::EstimateCapacity(
        f1, cluster, Precision::kFp32, /*rowwise=*/false, 256.0);
    const sim::CapacityEstimate optimized = sim::EstimateCapacity(
        f1, cluster, Precision::kFp16, /*rowwise=*/true, 256.0);
    std::printf("== 12T-parameter model footprint ==\n");
    std::printf("naive (FP32 + elementwise state):   %s\n",
                FormatBytes(naive.naive_bytes).c_str());
    std::printf("FP16 + row-wise AdaGrad:            %s (fits HBM+DDR: "
                "%s)\n\n",
                FormatBytes(optimized.optimized_bytes).c_str(),
                optimized.fits_hbm_ddr ? "yes" : "no");

    // ---- 2. Functional row-wise sharded training (scaled down) --------
    // One massive table (vs its siblings) forces row-wise sharding;
    // inputs are bucketized by row range and partial pools ReduceScatter.
    constexpr int kWorkers = 4;
    constexpr size_t kLocalBatch = 32;
    core::DlrmConfig model = core::MakeSmallDlrmConfig(3, 200, 16);
    model.tables[0].rows = 100000;  // the "massive" table
    model.tables[0].name = "massive";
    model.sparse_optimizer.kind = ops::SparseOptimizerKind::kRowWiseAdaGrad;

    sharding::PlannerOptions options;
    options.topo.num_workers = kWorkers;
    options.topo.workers_per_node = kWorkers;
    options.global_batch = kLocalBatch * kWorkers;
    options.hbm_bytes_per_worker = 3e6;  // massive table cannot fit one
    sharding::ShardingPlanner planner(options);
    const sharding::ShardingPlan plan = planner.Plan(model.tables);
    std::printf("== scaled-down functional run ==\n");
    std::printf("massive table scheme: %s (%d row shards)\n",
                sharding::SchemeName(plan.SchemeForTable(0)),
                static_cast<int>(plan.shards.size()) -
                    static_cast<int>(model.tables.size()) + 1);

    data::DatasetConfig data_config;
    data_config.num_dense = model.num_dense;
    data_config.seed = 7;
    for (const auto& t : model.tables) {
        data_config.features.push_back({t.rows, t.pooling, 1.1});
    }
    std::vector<double> last_loss(kWorkers);
    comm::ThreadedWorld::Run(kWorkers, [&](int rank,
                                           comm::ProcessGroup& pg) {
        core::DistributedDlrm trainer(model, plan, pg);
        data::SyntheticCtrDataset dataset(data_config);
        for (int step = 0; step < 25; step++) {
            data::Batch global = dataset.NextBatch(kLocalBatch * kWorkers);
            const size_t begin = rank * kLocalBatch;
            data::Batch local;
            local.dense = Matrix(kLocalBatch, global.dense.cols());
            for (size_t b = 0; b < kLocalBatch; b++) {
                for (size_t c = 0; c < global.dense.cols(); c++) {
                    local.dense(b, c) = global.dense(begin + b, c);
                }
            }
            local.sparse =
                global.sparse.SliceBatch(begin, begin + kLocalBatch);
            local.labels.assign(global.labels.begin() + begin,
                                global.labels.begin() + begin +
                                    kLocalBatch);
            last_loss[rank] = trainer.TrainStep(local);
        }
    });
    std::printf("trained 25 steps across %d workers; final loss %.4f\n\n",
                kWorkers, last_loss[0]);

    // ---- 3. HBM-as-cache over DDR: software cache vs UVM ---------------
    const int64_t rows = 200000, dim = 32;
    Rng rng(11);
    ZipfSampler sampler(static_cast<uint64_t>(rows), 1.05);
    std::vector<int64_t> trace(200000);
    for (auto& r : trace) {
        r = static_cast<int64_t>(sampler.Sample(rng));
    }
    std::vector<float> buf(static_cast<size_t>(dim));

    ops::EmbeddingTable backing1(rows, dim);
    cache::MemoryTier hbm1(cache::Tier::kHbm, 1e9, 850e9);
    cache::MemoryTier pcie1(cache::Tier::kDdr, 1e12, 13e9);
    cache::CachedEmbeddingStore sw(std::move(backing1), {256, 32}, &hbm1,
                                   &pcie1);
    for (int64_t r : trace) {
        sw.ReadRow(r, buf.data());
    }

    ops::EmbeddingTable backing2(rows, dim);
    cache::MemoryTier hbm2(cache::Tier::kHbm, 1e9, 850e9);
    cache::MemoryTier pcie2(cache::Tier::kDdr, 1e12, 13e9);
    cache::UvmPagedStore uvm(std::move(backing2), 64 * 1024, 1 << 20,
                             &hbm2, &pcie2);
    for (int64_t r : trace) {
        uvm.ReadRow(r, buf.data());
    }

    std::printf("== HBM-as-cache over DDR (Zipf trace, same budget) ==\n");
    std::printf("software cache: hit rate %.1f%%, PCIe traffic %s, "
                "effective time %s\n",
                sw.stats().HitRate() * 100.0,
                FormatBytes(pcie1.total_bytes()).c_str(),
                FormatSeconds(hbm1.TrafficSeconds() +
                              pcie1.TrafficSeconds()).c_str());
    std::printf("UVM paging:     fault rate %.1f%%, PCIe traffic %s, "
                "effective time %s\n",
                uvm.stats().FaultRate() * 100.0,
                FormatBytes(pcie2.total_bytes()).c_str(),
                FormatSeconds(hbm2.TrafficSeconds() +
                              pcie2.TrafficSeconds()).c_str());
    std::printf("(the paper reports ~15%% end-to-end gain from the "
                "software cache over UVM)\n");
    return 0;
}
