/**
 * @file
 * Online-training scenario (paper intro + Sec. 4.1.3): a deployed model
 * keeps training on fresh traffic using FEWER nodes, so its embedding
 * table no longer fits "HBM" — it lives in "DDR" behind the 32-way
 * software cache, while a disaggregated reader tier (Fig. 6) streams
 * batches in the background. Everything here is the functional stack:
 * real lookups, exact updates through the cache, real reader threads.
 *
 *   ./online_training
 */
#include <cstdio>

#include "cache/tiered_embedding_bag.h"
#include "common/units.h"
#include "data/reader_tier.h"
#include "tensor/loss.h"

namespace {

using namespace neo;

}  // namespace

int
main()
{
    // ---- the "deployed" model: one big table + a linear scorer --------
    const int64_t rows = 100000;  // bigger than the HBM budget below
    const int64_t dim = 32;
    const size_t batch_size = 256;

    ops::SparseOptimizerConfig sparse_config;
    sparse_config.kind = ops::SparseOptimizerKind::kSgd;
    // Effective per-row rate ~ lr * dim under the sum readout below.
    sparse_config.learning_rate = 0.015f;

    // Zero-init: online CTR "bias" tables start cold and learn from
    // live traffic.
    ops::EmbeddingTable backing(rows, dim);
    cache::MemoryTier hbm(cache::Tier::kHbm, 4e6, 850e9);   // 4 MB "HBM"
    cache::MemoryTier ddr(cache::Tier::kDdr, 1e12, 13e9);
    // 1024 slots x 32 B rows = 128 KB cache over a 25.6 MB table.
    cache::CachedRowStore store(cache::CachedEmbeddingStore(
        std::move(backing), {32, 32}, &hbm, &ddr));
    cache::TieredEmbeddingBag embeddings(&store, sparse_config);

    // Fixed sum-pooling readout: the embedding rows learn the per-row
    // signal directly, which keeps this single-table online model convex
    // and stable. Jointly training the readout is the full DLRM's job
    // (see quickstart/distributed_training).
    const std::vector<float> scorer(static_cast<size_t>(dim), 1.0f);
    float bias = 0.0f;
    float dense_weight = 0.0f;  // the single dense feature's weight

    // ---- the reader tier streams "live" traffic -----------------------
    data::DatasetConfig data_config;
    data_config.num_dense = 1;  // this example scores embeddings only
    data_config.seed = 42;
    data_config.features.push_back({rows, 12.0, 1.1});
    data_config.signal_scale = 1.0f;
    data_config.noise_scale = 0.4f;
    data::ReaderTierOptions reader_options;
    reader_options.num_readers = 2;
    reader_options.batch_size = batch_size;
    data::ReaderTier readers(data_config, reader_options);

    std::printf("online training: %s table behind a %s software cache; "
                "%d background readers\n\n",
                FormatBytes(static_cast<double>(rows) * dim * 4).c_str(),
                FormatBytes(32.0 * 32 * dim * 4).c_str(),
                reader_options.num_readers);
    std::printf("%-8s %-10s %-12s %-12s\n", "batch", "NE", "cache hit%",
                "PCIe traffic");

    Matrix pooled;
    Matrix grad_pooled(batch_size, static_cast<size_t>(dim));
    NormalizedEntropy window_ne;
    const float lr = 0.5f;
    for (int step = 1; step <= 1200; step++) {
        const data::Batch batch = readers.NextBatch();
        const auto input = batch.sparse.InputForTable(0);

        // Forward: pooled embedding -> linear scorer -> logit.
        embeddings.Forward(input, batch_size, pooled);
        Matrix logits(batch_size, 1);
        for (size_t b = 0; b < batch_size; b++) {
            float z = bias + dense_weight * batch.dense(b, 0);
            const float* e = pooled.Row(b);
            for (int64_t c = 0; c < dim; c++) {
                z += scorer[c] * e[c];
            }
            logits(b, 0) = z;
        }
        window_ne.AddLogits(logits, batch.labels);

        // Backward: BCE grad -> scorer + pooled grads -> exact updates
        // through the cache.
        Matrix grad_logits(batch_size, 1);
        BceWithLogitsGrad(logits, batch.labels, grad_logits);
        for (size_t b = 0; b < batch_size; b++) {
            const float g = grad_logits(b, 0);
            float* gp = grad_pooled.Row(b);
            for (int64_t c = 0; c < dim; c++) {
                gp[c] = g * scorer[c];
            }
            dense_weight -= lr * g * batch.dense(b, 0);
            bias -= lr * g;
        }
        embeddings.BackwardAndUpdate(input, batch_size, grad_pooled);

        if (step % 300 == 0) {
            std::printf("%-8d %-10.4f %-12.1f %-12s\n", step,
                        window_ne.Value(),
                        store.store().stats().HitRate() * 100.0,
                        FormatBytes(static_cast<double>(
                            ddr.total_bytes())).c_str());
            window_ne = NormalizedEntropy();
        }
    }

    store.store().Flush();
    std::printf("\nreaders produced %lu batches; dirty rows flushed to "
                "backing store.\n",
                static_cast<unsigned long>(readers.batches_produced()));
    std::printf("NE falls while the model trains entirely through the "
                "cache hierarchy — the paper's online-training mode.\n");
    return 0;
}
