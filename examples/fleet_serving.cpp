/**
 * @file
 * Fault-tolerant serving fleet end to end: a 2-rank trainer keeps
 * publishing differential checkpoints to a disk-backed store; a
 * publisher lane polls the store's Generation() counter and
 * warm-then-flips each finished round onto a 3-replica fleet through
 * FleetRouter::PublishFromStore; a closed-loop client streams requests
 * throughout. Mid-traffic the fault injector kills a rank inside
 * replica 1's pooled AllToAll — the router quarantines the replica and
 * transparently replays its in-flight requests on the survivors. The
 * run fails if any request is shed or completes with a non-kOk status,
 * if the fleet never failed over, or if fewer than two versions served
 * traffic.
 *
 *   ./fleet_serving
 */
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "comm/fault.h"
#include "comm/threaded_process_group.h"
#include "common/stats.h"
#include "core/checkpoint.h"
#include "core/distributed_trainer.h"
#include "core/dlrm_config.h"
#include "data/dataset.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "sharding/planner.h"

namespace {

using namespace neo;

constexpr int kWorkers = 2;
constexpr int kReplicas = 3;

data::DatasetConfig
MakeDataConfig(const core::DlrmConfig& model, uint64_t seed)
{
    data::DatasetConfig config;
    config.num_dense = model.num_dense;
    config.seed = seed;
    for (const auto& t : model.tables) {
        config.features.push_back({t.rows, t.pooling, 1.05});
    }
    return config;
}

}  // namespace

int
main()
{
    const core::DlrmConfig model = core::MakeSmallDlrmConfig(4, 300, 16);
    sharding::PlannerOptions planner_options;
    planner_options.topo.num_workers = kWorkers;
    planner_options.topo.workers_per_node = kWorkers;
    planner_options.global_batch = 32;
    planner_options.hbm_bytes_per_worker = 1e12;
    sharding::ShardingPlanner planner(planner_options);
    const sharding::ShardingPlan plan = planner.Plan(model.tables);

    const std::string dir =
        (std::filesystem::temp_directory_path() / "neo_fleet_serving")
            .string();
    std::filesystem::remove_all(dir);

    // ---- the fleet -----------------------------------------------------
    // Replica 1 carries an armed fault: its rank 1 dies inside the
    // pooled AllToAll of its ~20th served batch (3 AllToAll calls per
    // batch: lengths, indices, pooled).
    comm::FaultInjector injector;
    comm::FaultSpec spec;
    spec.rank = 1;
    spec.match_op = true;
    spec.op = comm::CollectiveOp::kAllToAll;
    spec.call_index = 3 * 20 + 2;
    spec.kind = comm::FaultKind::kKill;
    spec.transient = false;
    injector.Arm(spec);

    std::vector<std::unique_ptr<serve::ReplicaHost>> hosts;
    for (int r = 0; r < kReplicas; r++) {
        serve::ServerOptions sopts;
        sopts.replica_id = r;
        sopts.batcher.max_batch = 16;
        sopts.batcher.max_delay_us = 500;
        sopts.max_queue = 4096;
        sopts.heartbeat = std::chrono::milliseconds(5);
        comm::ThreadedWorld::Options wopts;
        if (r == 1) {
            wopts.injector = &injector;
        }
        hosts.push_back(std::make_unique<serve::ReplicaHost>(
            model.num_dense, model.tables.size(), kWorkers, sopts,
            wopts));
    }
    serve::RouterOptions ropts;
    ropts.health_period = std::chrono::milliseconds(5);
    serve::FleetRouter router(ropts);
    for (int r = 0; r < kReplicas; r++) {
        router.AddReplica("replica" + std::to_string(r),
                          &hosts[r]->server(), &hosts[r]->world());
    }

    // ---- training side -------------------------------------------------
    const int publish_rounds = 4;
    core::CheckpointStore store(dir);
    std::atomic<bool> trainer_failed{false};
    std::atomic<bool> trainer_done{false};
    std::thread trainer_world([&] {
        try {
            comm::ThreadedWorld::Run(kWorkers, [&](int rank,
                                                   comm::ProcessGroup& pg) {
                core::DistributedDlrm trainer(model, plan, pg);
                core::DistributedCheckpointer ckpt(trainer, store);
                data::SyntheticCtrDataset dataset(
                    MakeDataConfig(model, 99));
                const size_t local_batch = 16;
                for (int round = 0; round < publish_rounds; round++) {
                    for (int s = 0; s < 3; s++) {
                        data::Batch global =
                            dataset.NextBatch(local_batch * kWorkers);
                        data::Batch local;
                        const size_t begin = rank * local_batch;
                        local.dense =
                            Matrix(local_batch, global.dense.cols());
                        for (size_t b = 0; b < local_batch; b++) {
                            for (size_t c = 0; c < global.dense.cols();
                                 c++) {
                                local.dense(b, c) =
                                    global.dense(begin + b, c);
                            }
                        }
                        local.sparse = global.sparse.SliceBatch(
                            begin, begin + local_batch);
                        local.labels.assign(
                            global.labels.begin() + begin,
                            global.labels.begin() + begin + local_batch);
                        trainer.TrainStep(local);
                    }
                    if (round == 0) {
                        ckpt.WriteBaseline();
                    } else {
                        ckpt.WriteDelta();
                    }
                    // Every rank's stream is on disk (and Generation()
                    // even) before the publisher may assemble it.
                    pg.Barrier();
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(30));
                }
            });
        } catch (const std::exception& e) {
            std::fprintf(stderr, "trainer failed: %s\n", e.what());
            trainer_failed.store(true);
        }
        trainer_done.store(true);
    });

    // ---- publisher lane ------------------------------------------------
    // Decoupled from the trainer: polls the store's monotonic write
    // counter and warm-then-flips every finished round onto the whole
    // fleet. A round is complete when all kWorkers rank streams have
    // been written (the trainer barriers between rounds, so an even
    // counter is never mid-round).
    std::atomic<size_t> publishes{0};
    std::thread publisher([&] {
        uint64_t published_gen = 0;
        while (true) {
            const uint64_t gen = store.Generation();
            const bool complete =
                gen > published_gen && gen % kWorkers == 0;
            if (complete) {
                const uint64_t version =
                    router.PublishFromStore(store, model, plan);
                published_gen = gen;
                publishes.fetch_add(1);
                std::printf("[publisher] version %llu live on %d "
                            "replicas (store generation %llu)\n",
                            static_cast<unsigned long long>(version),
                            kReplicas,
                            static_cast<unsigned long long>(gen));
            } else if (trainer_done.load()) {
                break;
            } else {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
            }
        }
    });

    // ---- closed-loop client --------------------------------------------
    data::SyntheticCtrDataset traffic(MakeDataConfig(model, 4242));
    const data::Batch pool = traffic.NextBatch(64);
    while (publishes.load() == 0 && !trainer_failed.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    std::vector<serve::Ticket> tickets;
    uint64_t next_id = 0;
    size_t shed = 0;
    const auto client_start = std::chrono::steady_clock::now();
    while ((!trainer_done.load() || tickets.size() < 500) &&
           !trainer_failed.load()) {
        serve::Request req;
        req.id = next_id;
        const size_t i = next_id % pool.dense.rows();
        req.dense.assign(pool.dense.Row(i),
                         pool.dense.Row(i) + pool.dense.cols());
        req.sparse = pool.sparse.SliceBatch(i, i + 1);
        serve::Ticket ticket = router.Submit(std::move(req));
        if (ticket.admission == serve::Admission::kAccepted) {
            tickets.push_back(std::move(ticket));
        } else {
            shed++;
        }
        next_id++;
        std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    trainer_world.join();
    publisher.join();
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - client_start)
                            .count();
    if (trainer_failed.load()) {
        return 1;
    }

    // Every accepted request must complete kOk — the mid-batch kill is
    // absorbed by quarantine + replay, never surfaced to a client.
    std::vector<double> latencies_us;
    std::set<uint64_t> versions_seen;
    size_t not_ok = 0;
    for (auto& ticket : tickets) {
        serve::Response response = ticket.response.get();
        if (response.status != serve::ResponseStatus::kOk) {
            std::fprintf(stderr, "request %llu completed %s\n",
                         static_cast<unsigned long long>(response.id),
                         serve::ResponseStatusName(response.status));
            not_ok++;
            continue;
        }
        versions_seen.insert(response.snapshot_version);
        latencies_us.push_back(response.total_seconds * 1e6);
    }
    const serve::FleetRouter::Totals totals = router.totals();

    std::printf("\nserved %zu requests in %.2f s (%.0f QPS), %zu shed\n",
                tickets.size(), wall, tickets.size() / wall, shed);
    std::printf("latency p50/p95/p99: %.0f / %.0f / %.0f us\n",
                Percentile(latencies_us, 50.0),
                Percentile(latencies_us, 95.0),
                Percentile(latencies_us, 99.0));
    std::printf("failovers %llu, retries %llu, quarantines %llu; "
                "healthy replicas %zu/%d\n",
                static_cast<unsigned long long>(totals.failovers),
                static_cast<unsigned long long>(totals.retries),
                static_cast<unsigned long long>(totals.quarantines),
                router.HealthyCount(), kReplicas);
    std::printf("versions that served traffic:");
    for (const uint64_t v : versions_seen) {
        std::printf(" v%llu", static_cast<unsigned long long>(v));
    }
    std::printf("\n");

    router.Stop();
    for (auto& host : hosts) {
        host->Stop();
    }
    std::filesystem::remove_all(dir);

    if (not_ok != 0 || shed != 0) {
        std::fprintf(stderr, "FAIL: %zu non-ok, %zu shed\n", not_ok,
                     shed);
        return 1;
    }
    if (injector.Fired().size() != 1 || totals.failovers == 0 ||
        router.HealthyCount() != kReplicas - 1) {
        std::fprintf(stderr,
                     "FAIL: injected kill did not produce a failover "
                     "(fired %zu, failovers %llu, healthy %zu)\n",
                     injector.Fired().size(),
                     static_cast<unsigned long long>(totals.failovers),
                     router.HealthyCount());
        return 1;
    }
    if (versions_seen.size() < 2) {
        std::fprintf(stderr,
                     "FAIL: only one version ever served traffic\n");
        return 1;
    }
    std::printf("zero lost requests across a mid-batch replica kill and "
                "%zu warm publishes\n",
                publishes.load());
    return 0;
}
