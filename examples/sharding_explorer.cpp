/**
 * @file
 * Sharding explorer: runs the planner over an A2-like synthesized table
 * set and shows how the pieces interact — per-scheme cost structure,
 * greedy vs Karmarkar-Karp placement balance, memory-pressure effects
 * (FP32 vs FP16), and the per-worker load distribution of the final plan.
 *
 *   ./sharding_explorer
 */
#include <algorithm>
#include <cstdio>
#include <map>

#include "common/table_printer.h"
#include "common/units.h"
#include "sharding/planner.h"
#include "sim/workloads.h"

namespace {

using namespace neo;
using namespace neo::sharding;

PlannerOptions
BaseOptions()
{
    PlannerOptions options;
    options.topo.num_workers = 128;
    options.topo.workers_per_node = 8;
    options.global_batch = 65536;
    options.hbm_bytes_per_worker = 28e9;
    return options;
}

void
ShowSchemeCosts()
{
    std::printf("== per-scheme cost structure (one 5M x 128 table, L=20, "
                "128 workers, 64K batch) ==\n\n");
    TableConfig table;
    table.name = "demo";
    table.rows = 5000000;
    table.dim = 128;
    table.pooling = 20.0;
    const Topology topo{128, 8};

    TablePrinter printer({"Scheme", "compute", "input comm", "output comm",
                          "memory"});
    for (Scheme scheme :
         {Scheme::kTableWise, Scheme::kRowWise, Scheme::kColumnWise,
          Scheme::kDataParallel, Scheme::kTableRowWise}) {
        Shard shard;
        shard.scheme = scheme;
        shard.row_end = scheme == Scheme::kRowWise ||
                                scheme == Scheme::kTableRowWise
                            ? table.rows / 8
                            : table.rows;
        shard.col_end =
            scheme == Scheme::kColumnWise ? table.dim / 2 : table.dim;
        const ShardCost cost =
            EstimateShardCost(table, shard, topo, 65536);
        printer.Row()
            .Cell(SchemeName(scheme))
            .CellF(cost.compute / 1e6, "%.1fM")
            .CellF(cost.input_comm / 1e6, "%.2fM")
            .CellF(cost.output_comm / 1e6, "%.2fM")
            .Cell(FormatBytes(cost.memory_bytes));
    }
    printer.Print();
    std::printf("\n(RW: half-cost compute/input but FULL output comm; CW: "
                "duplicated input; DP: no AllToAll)\n\n");
}

void
ComparePlacements(const std::vector<TableConfig>& tables)
{
    std::printf("== placement algorithms on the A2-like table set ==\n\n");
    TablePrinter printer({"Placement", "imbalance (max/mean)",
                          "worst worker GB"});
    struct Case {
        const char* name;
        PlacementAlgorithm algo;
    };
    for (const Case& c :
         {Case{"round-robin (naive)", PlacementAlgorithm::kRoundRobin},
          Case{"size-greedy", PlacementAlgorithm::kSizeGreedy},
          Case{"cost-greedy (LPT)", PlacementAlgorithm::kGreedy},
          Case{"Karmarkar-Karp (LDM)", PlacementAlgorithm::kLdm}}) {
        PlannerOptions options = BaseOptions();
        options.placement = c.algo;
        const ShardingPlan plan = ShardingPlanner(options).Plan(tables);
        const double worst_mem = *std::max_element(
            plan.worker_memory.begin(), plan.worker_memory.end());
        printer.Row()
            .Cell(c.name)
            .CellF(plan.balance.imbalance, "%.3f")
            .CellF(worst_mem / 1e9, "%.1f");
    }
    printer.Print();
    std::printf("\n");
}

void
ShowPrecisionPressure(const std::vector<TableConfig>& tables)
{
    std::printf("== memory pressure: FP32 vs FP16 storage ==\n\n");
    for (Precision precision : {Precision::kFp32, Precision::kFp16}) {
        std::vector<TableConfig> typed = tables;
        for (auto& t : typed) {
            t.precision = precision;
        }
        const ShardingPlan plan =
            ShardingPlanner(BaseOptions()).Plan(typed);
        std::map<Scheme, int> schemes;
        for (const auto& shard : plan.shards) {
            schemes[shard.scheme]++;
        }
        std::printf("%s: feasible=%s imbalance=%.3f shards=%zu (",
                    PrecisionName(precision),
                    plan.feasible ? "yes" : "no", plan.balance.imbalance,
                    plan.shards.size());
        bool first = true;
        for (const auto& [scheme, count] : schemes) {
            std::printf("%s%s:%d", first ? "" : ", ", SchemeName(scheme),
                        count);
            first = false;
        }
        std::printf(")%s\n",
                    plan.note.empty() ? "" : ("  [" + plan.note + "]")
                                                 .c_str());
    }
    std::printf("\nFP16 halves parameter bytes, giving the placer room to "
                "balance (Fig. 13's +20%% step).\n");
}

}  // namespace

int
main()
{
    ShowSchemeCosts();
    const auto tables = sim::WorkloadModel::A2().SynthesizeTables();
    ComparePlacements(tables);
    ShowPrecisionPressure(tables);
    return 0;
}
