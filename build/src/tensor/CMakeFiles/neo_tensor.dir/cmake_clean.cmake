file(REMOVE_RECURSE
  "CMakeFiles/neo_tensor.dir/activations.cpp.o"
  "CMakeFiles/neo_tensor.dir/activations.cpp.o.d"
  "CMakeFiles/neo_tensor.dir/gemm.cpp.o"
  "CMakeFiles/neo_tensor.dir/gemm.cpp.o.d"
  "CMakeFiles/neo_tensor.dir/interaction.cpp.o"
  "CMakeFiles/neo_tensor.dir/interaction.cpp.o.d"
  "CMakeFiles/neo_tensor.dir/loss.cpp.o"
  "CMakeFiles/neo_tensor.dir/loss.cpp.o.d"
  "CMakeFiles/neo_tensor.dir/matrix.cpp.o"
  "CMakeFiles/neo_tensor.dir/matrix.cpp.o.d"
  "libneo_tensor.a"
  "libneo_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
