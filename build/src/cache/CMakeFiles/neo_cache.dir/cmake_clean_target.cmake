file(REMOVE_RECURSE
  "libneo_cache.a"
)
