
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cached_embedding_store.cpp" "src/cache/CMakeFiles/neo_cache.dir/cached_embedding_store.cpp.o" "gcc" "src/cache/CMakeFiles/neo_cache.dir/cached_embedding_store.cpp.o.d"
  "/root/repo/src/cache/memory_tier.cpp" "src/cache/CMakeFiles/neo_cache.dir/memory_tier.cpp.o" "gcc" "src/cache/CMakeFiles/neo_cache.dir/memory_tier.cpp.o.d"
  "/root/repo/src/cache/set_associative_cache.cpp" "src/cache/CMakeFiles/neo_cache.dir/set_associative_cache.cpp.o" "gcc" "src/cache/CMakeFiles/neo_cache.dir/set_associative_cache.cpp.o.d"
  "/root/repo/src/cache/tiered_embedding_bag.cpp" "src/cache/CMakeFiles/neo_cache.dir/tiered_embedding_bag.cpp.o" "gcc" "src/cache/CMakeFiles/neo_cache.dir/tiered_embedding_bag.cpp.o.d"
  "/root/repo/src/cache/uvm_store.cpp" "src/cache/CMakeFiles/neo_cache.dir/uvm_store.cpp.o" "gcc" "src/cache/CMakeFiles/neo_cache.dir/uvm_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/neo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/neo_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/neo_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
