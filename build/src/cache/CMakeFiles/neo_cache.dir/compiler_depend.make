# Empty compiler generated dependencies file for neo_cache.
# This may be replaced when dependencies are built.
