file(REMOVE_RECURSE
  "CMakeFiles/neo_cache.dir/cached_embedding_store.cpp.o"
  "CMakeFiles/neo_cache.dir/cached_embedding_store.cpp.o.d"
  "CMakeFiles/neo_cache.dir/memory_tier.cpp.o"
  "CMakeFiles/neo_cache.dir/memory_tier.cpp.o.d"
  "CMakeFiles/neo_cache.dir/set_associative_cache.cpp.o"
  "CMakeFiles/neo_cache.dir/set_associative_cache.cpp.o.d"
  "CMakeFiles/neo_cache.dir/tiered_embedding_bag.cpp.o"
  "CMakeFiles/neo_cache.dir/tiered_embedding_bag.cpp.o.d"
  "CMakeFiles/neo_cache.dir/uvm_store.cpp.o"
  "CMakeFiles/neo_cache.dir/uvm_store.cpp.o.d"
  "libneo_cache.a"
  "libneo_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
