# Empty compiler generated dependencies file for neo_comm.
# This may be replaced when dependencies are built.
