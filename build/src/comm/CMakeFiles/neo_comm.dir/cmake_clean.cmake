file(REMOVE_RECURSE
  "CMakeFiles/neo_comm.dir/process_group.cpp.o"
  "CMakeFiles/neo_comm.dir/process_group.cpp.o.d"
  "CMakeFiles/neo_comm.dir/quantized.cpp.o"
  "CMakeFiles/neo_comm.dir/quantized.cpp.o.d"
  "CMakeFiles/neo_comm.dir/threaded_process_group.cpp.o"
  "CMakeFiles/neo_comm.dir/threaded_process_group.cpp.o.d"
  "libneo_comm.a"
  "libneo_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
