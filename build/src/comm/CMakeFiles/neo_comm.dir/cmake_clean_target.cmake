file(REMOVE_RECURSE
  "libneo_comm.a"
)
