
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ops/dense_optimizer.cpp" "src/ops/CMakeFiles/neo_ops.dir/dense_optimizer.cpp.o" "gcc" "src/ops/CMakeFiles/neo_ops.dir/dense_optimizer.cpp.o.d"
  "/root/repo/src/ops/embedding_bag.cpp" "src/ops/CMakeFiles/neo_ops.dir/embedding_bag.cpp.o" "gcc" "src/ops/CMakeFiles/neo_ops.dir/embedding_bag.cpp.o.d"
  "/root/repo/src/ops/embedding_table.cpp" "src/ops/CMakeFiles/neo_ops.dir/embedding_table.cpp.o" "gcc" "src/ops/CMakeFiles/neo_ops.dir/embedding_table.cpp.o.d"
  "/root/repo/src/ops/mlp.cpp" "src/ops/CMakeFiles/neo_ops.dir/mlp.cpp.o" "gcc" "src/ops/CMakeFiles/neo_ops.dir/mlp.cpp.o.d"
  "/root/repo/src/ops/sparse_optimizer.cpp" "src/ops/CMakeFiles/neo_ops.dir/sparse_optimizer.cpp.o" "gcc" "src/ops/CMakeFiles/neo_ops.dir/sparse_optimizer.cpp.o.d"
  "/root/repo/src/ops/tt_embedding.cpp" "src/ops/CMakeFiles/neo_ops.dir/tt_embedding.cpp.o" "gcc" "src/ops/CMakeFiles/neo_ops.dir/tt_embedding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/neo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/neo_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
