file(REMOVE_RECURSE
  "CMakeFiles/neo_ops.dir/dense_optimizer.cpp.o"
  "CMakeFiles/neo_ops.dir/dense_optimizer.cpp.o.d"
  "CMakeFiles/neo_ops.dir/embedding_bag.cpp.o"
  "CMakeFiles/neo_ops.dir/embedding_bag.cpp.o.d"
  "CMakeFiles/neo_ops.dir/embedding_table.cpp.o"
  "CMakeFiles/neo_ops.dir/embedding_table.cpp.o.d"
  "CMakeFiles/neo_ops.dir/mlp.cpp.o"
  "CMakeFiles/neo_ops.dir/mlp.cpp.o.d"
  "CMakeFiles/neo_ops.dir/sparse_optimizer.cpp.o"
  "CMakeFiles/neo_ops.dir/sparse_optimizer.cpp.o.d"
  "CMakeFiles/neo_ops.dir/tt_embedding.cpp.o"
  "CMakeFiles/neo_ops.dir/tt_embedding.cpp.o.d"
  "libneo_ops.a"
  "libneo_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
