file(REMOVE_RECURSE
  "libneo_ops.a"
)
