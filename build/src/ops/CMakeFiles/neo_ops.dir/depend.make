# Empty dependencies file for neo_ops.
# This may be replaced when dependencies are built.
