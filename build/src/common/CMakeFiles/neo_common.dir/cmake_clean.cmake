file(REMOVE_RECURSE
  "CMakeFiles/neo_common.dir/float_types.cpp.o"
  "CMakeFiles/neo_common.dir/float_types.cpp.o.d"
  "CMakeFiles/neo_common.dir/logging.cpp.o"
  "CMakeFiles/neo_common.dir/logging.cpp.o.d"
  "CMakeFiles/neo_common.dir/rng.cpp.o"
  "CMakeFiles/neo_common.dir/rng.cpp.o.d"
  "CMakeFiles/neo_common.dir/serialize.cpp.o"
  "CMakeFiles/neo_common.dir/serialize.cpp.o.d"
  "CMakeFiles/neo_common.dir/stats.cpp.o"
  "CMakeFiles/neo_common.dir/stats.cpp.o.d"
  "CMakeFiles/neo_common.dir/table_printer.cpp.o"
  "CMakeFiles/neo_common.dir/table_printer.cpp.o.d"
  "CMakeFiles/neo_common.dir/thread_pool.cpp.o"
  "CMakeFiles/neo_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/neo_common.dir/units.cpp.o"
  "CMakeFiles/neo_common.dir/units.cpp.o.d"
  "libneo_common.a"
  "libneo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
