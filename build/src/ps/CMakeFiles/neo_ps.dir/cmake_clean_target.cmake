file(REMOVE_RECURSE
  "libneo_ps.a"
)
