file(REMOVE_RECURSE
  "CMakeFiles/neo_ps.dir/async_ps_trainer.cpp.o"
  "CMakeFiles/neo_ps.dir/async_ps_trainer.cpp.o.d"
  "libneo_ps.a"
  "libneo_ps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_ps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
