# Empty compiler generated dependencies file for neo_ps.
# This may be replaced when dependencies are built.
