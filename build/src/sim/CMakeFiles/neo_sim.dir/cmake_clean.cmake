file(REMOVE_RECURSE
  "CMakeFiles/neo_sim.dir/capacity_model.cpp.o"
  "CMakeFiles/neo_sim.dir/capacity_model.cpp.o.d"
  "CMakeFiles/neo_sim.dir/comm_model.cpp.o"
  "CMakeFiles/neo_sim.dir/comm_model.cpp.o.d"
  "CMakeFiles/neo_sim.dir/embedding_model.cpp.o"
  "CMakeFiles/neo_sim.dir/embedding_model.cpp.o.d"
  "CMakeFiles/neo_sim.dir/gemm_model.cpp.o"
  "CMakeFiles/neo_sim.dir/gemm_model.cpp.o.d"
  "CMakeFiles/neo_sim.dir/hardware.cpp.o"
  "CMakeFiles/neo_sim.dir/hardware.cpp.o.d"
  "CMakeFiles/neo_sim.dir/iteration_model.cpp.o"
  "CMakeFiles/neo_sim.dir/iteration_model.cpp.o.d"
  "CMakeFiles/neo_sim.dir/plan_bridge.cpp.o"
  "CMakeFiles/neo_sim.dir/plan_bridge.cpp.o.d"
  "CMakeFiles/neo_sim.dir/trace_replay.cpp.o"
  "CMakeFiles/neo_sim.dir/trace_replay.cpp.o.d"
  "CMakeFiles/neo_sim.dir/workloads.cpp.o"
  "CMakeFiles/neo_sim.dir/workloads.cpp.o.d"
  "libneo_sim.a"
  "libneo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
