
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/capacity_model.cpp" "src/sim/CMakeFiles/neo_sim.dir/capacity_model.cpp.o" "gcc" "src/sim/CMakeFiles/neo_sim.dir/capacity_model.cpp.o.d"
  "/root/repo/src/sim/comm_model.cpp" "src/sim/CMakeFiles/neo_sim.dir/comm_model.cpp.o" "gcc" "src/sim/CMakeFiles/neo_sim.dir/comm_model.cpp.o.d"
  "/root/repo/src/sim/embedding_model.cpp" "src/sim/CMakeFiles/neo_sim.dir/embedding_model.cpp.o" "gcc" "src/sim/CMakeFiles/neo_sim.dir/embedding_model.cpp.o.d"
  "/root/repo/src/sim/gemm_model.cpp" "src/sim/CMakeFiles/neo_sim.dir/gemm_model.cpp.o" "gcc" "src/sim/CMakeFiles/neo_sim.dir/gemm_model.cpp.o.d"
  "/root/repo/src/sim/hardware.cpp" "src/sim/CMakeFiles/neo_sim.dir/hardware.cpp.o" "gcc" "src/sim/CMakeFiles/neo_sim.dir/hardware.cpp.o.d"
  "/root/repo/src/sim/iteration_model.cpp" "src/sim/CMakeFiles/neo_sim.dir/iteration_model.cpp.o" "gcc" "src/sim/CMakeFiles/neo_sim.dir/iteration_model.cpp.o.d"
  "/root/repo/src/sim/plan_bridge.cpp" "src/sim/CMakeFiles/neo_sim.dir/plan_bridge.cpp.o" "gcc" "src/sim/CMakeFiles/neo_sim.dir/plan_bridge.cpp.o.d"
  "/root/repo/src/sim/trace_replay.cpp" "src/sim/CMakeFiles/neo_sim.dir/trace_replay.cpp.o" "gcc" "src/sim/CMakeFiles/neo_sim.dir/trace_replay.cpp.o.d"
  "/root/repo/src/sim/workloads.cpp" "src/sim/CMakeFiles/neo_sim.dir/workloads.cpp.o" "gcc" "src/sim/CMakeFiles/neo_sim.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/neo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sharding/CMakeFiles/neo_sharding.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
