# Empty dependencies file for neo_sharding.
# This may be replaced when dependencies are built.
