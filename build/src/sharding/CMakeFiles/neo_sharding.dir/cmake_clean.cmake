file(REMOVE_RECURSE
  "CMakeFiles/neo_sharding.dir/cost_model.cpp.o"
  "CMakeFiles/neo_sharding.dir/cost_model.cpp.o.d"
  "CMakeFiles/neo_sharding.dir/partition.cpp.o"
  "CMakeFiles/neo_sharding.dir/partition.cpp.o.d"
  "CMakeFiles/neo_sharding.dir/planner.cpp.o"
  "CMakeFiles/neo_sharding.dir/planner.cpp.o.d"
  "libneo_sharding.a"
  "libneo_sharding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_sharding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
