file(REMOVE_RECURSE
  "libneo_sharding.a"
)
