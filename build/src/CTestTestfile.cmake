# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("tensor")
subdirs("comm")
subdirs("ops")
subdirs("cache")
subdirs("sharding")
subdirs("data")
subdirs("core")
subdirs("ps")
subdirs("sim")
