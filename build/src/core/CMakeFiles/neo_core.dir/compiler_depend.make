# Empty compiler generated dependencies file for neo_core.
# This may be replaced when dependencies are built.
