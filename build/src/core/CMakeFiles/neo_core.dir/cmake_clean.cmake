file(REMOVE_RECURSE
  "CMakeFiles/neo_core.dir/checkpoint.cpp.o"
  "CMakeFiles/neo_core.dir/checkpoint.cpp.o.d"
  "CMakeFiles/neo_core.dir/distributed_trainer.cpp.o"
  "CMakeFiles/neo_core.dir/distributed_trainer.cpp.o.d"
  "CMakeFiles/neo_core.dir/dlrm_config.cpp.o"
  "CMakeFiles/neo_core.dir/dlrm_config.cpp.o.d"
  "CMakeFiles/neo_core.dir/dlrm_reference.cpp.o"
  "CMakeFiles/neo_core.dir/dlrm_reference.cpp.o.d"
  "CMakeFiles/neo_core.dir/pipeline.cpp.o"
  "CMakeFiles/neo_core.dir/pipeline.cpp.o.d"
  "libneo_core.a"
  "libneo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
