
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/checkpoint.cpp" "src/core/CMakeFiles/neo_core.dir/checkpoint.cpp.o" "gcc" "src/core/CMakeFiles/neo_core.dir/checkpoint.cpp.o.d"
  "/root/repo/src/core/distributed_trainer.cpp" "src/core/CMakeFiles/neo_core.dir/distributed_trainer.cpp.o" "gcc" "src/core/CMakeFiles/neo_core.dir/distributed_trainer.cpp.o.d"
  "/root/repo/src/core/dlrm_config.cpp" "src/core/CMakeFiles/neo_core.dir/dlrm_config.cpp.o" "gcc" "src/core/CMakeFiles/neo_core.dir/dlrm_config.cpp.o.d"
  "/root/repo/src/core/dlrm_reference.cpp" "src/core/CMakeFiles/neo_core.dir/dlrm_reference.cpp.o" "gcc" "src/core/CMakeFiles/neo_core.dir/dlrm_reference.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/neo_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/neo_core.dir/pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/neo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/neo_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/neo_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/neo_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/neo_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sharding/CMakeFiles/neo_sharding.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
