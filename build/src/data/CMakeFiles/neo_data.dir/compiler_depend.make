# Empty compiler generated dependencies file for neo_data.
# This may be replaced when dependencies are built.
