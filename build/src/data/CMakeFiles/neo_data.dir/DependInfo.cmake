
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataloader.cpp" "src/data/CMakeFiles/neo_data.dir/dataloader.cpp.o" "gcc" "src/data/CMakeFiles/neo_data.dir/dataloader.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/neo_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/neo_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/jagged.cpp" "src/data/CMakeFiles/neo_data.dir/jagged.cpp.o" "gcc" "src/data/CMakeFiles/neo_data.dir/jagged.cpp.o.d"
  "/root/repo/src/data/reader_tier.cpp" "src/data/CMakeFiles/neo_data.dir/reader_tier.cpp.o" "gcc" "src/data/CMakeFiles/neo_data.dir/reader_tier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/neo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/neo_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/neo_ops.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
