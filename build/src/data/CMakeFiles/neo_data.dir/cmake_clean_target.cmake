file(REMOVE_RECURSE
  "libneo_data.a"
)
