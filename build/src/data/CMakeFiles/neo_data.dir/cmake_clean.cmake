file(REMOVE_RECURSE
  "CMakeFiles/neo_data.dir/dataloader.cpp.o"
  "CMakeFiles/neo_data.dir/dataloader.cpp.o.d"
  "CMakeFiles/neo_data.dir/dataset.cpp.o"
  "CMakeFiles/neo_data.dir/dataset.cpp.o.d"
  "CMakeFiles/neo_data.dir/jagged.cpp.o"
  "CMakeFiles/neo_data.dir/jagged.cpp.o.d"
  "CMakeFiles/neo_data.dir/reader_tier.cpp.o"
  "CMakeFiles/neo_data.dir/reader_tier.cpp.o.d"
  "libneo_data.a"
  "libneo_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
