# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_table1_requirements "/root/repo/build/bench/table1_requirements")
set_tests_properties(bench_smoke_table1_requirements PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;45;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table2_node_config "/root/repo/build/bench/table2_node_config")
set_tests_properties(bench_smoke_table2_node_config PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;45;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table3_models "/root/repo/build/bench/table3_models")
set_tests_properties(bench_smoke_table3_models PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;45;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table4_qps "/root/repo/build/bench/table4_qps")
set_tests_properties(bench_smoke_table4_qps PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;45;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig11_scaling "/root/repo/build/bench/fig11_scaling")
set_tests_properties(bench_smoke_fig11_scaling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;45;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig12_breakdown "/root/repo/build/bench/fig12_breakdown")
set_tests_properties(bench_smoke_fig12_breakdown PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;45;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig13_optimizations "/root/repo/build/bench/fig13_optimizations")
set_tests_properties(bench_smoke_fig13_optimizations PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;45;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig14_15_gemm "/root/repo/build/bench/fig14_15_gemm")
set_tests_properties(bench_smoke_fig14_15_gemm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;45;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig16_17_mlp "/root/repo/build/bench/fig16_17_mlp")
set_tests_properties(bench_smoke_fig16_17_mlp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;45;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_capacity_f1 "/root/repo/build/bench/capacity_f1")
set_tests_properties(bench_smoke_capacity_f1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;45;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_zionex_projection "/root/repo/build/bench/zionex_projection")
set_tests_properties(bench_smoke_zionex_projection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;45;add_test;/root/repo/bench/CMakeLists.txt;0;")
