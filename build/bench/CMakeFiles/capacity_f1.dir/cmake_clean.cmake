file(REMOVE_RECURSE
  "CMakeFiles/capacity_f1.dir/capacity_f1.cpp.o"
  "CMakeFiles/capacity_f1.dir/capacity_f1.cpp.o.d"
  "capacity_f1"
  "capacity_f1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_f1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
