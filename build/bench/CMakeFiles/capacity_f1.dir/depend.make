# Empty dependencies file for capacity_f1.
# This may be replaced when dependencies are built.
