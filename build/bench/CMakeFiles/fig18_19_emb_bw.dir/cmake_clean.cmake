file(REMOVE_RECURSE
  "CMakeFiles/fig18_19_emb_bw.dir/fig18_19_emb_bw.cpp.o"
  "CMakeFiles/fig18_19_emb_bw.dir/fig18_19_emb_bw.cpp.o.d"
  "fig18_19_emb_bw"
  "fig18_19_emb_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_19_emb_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
