# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig18_19_emb_bw.
