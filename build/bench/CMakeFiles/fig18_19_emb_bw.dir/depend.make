# Empty dependencies file for fig18_19_emb_bw.
# This may be replaced when dependencies are built.
