file(REMOVE_RECURSE
  "CMakeFiles/comm_replay.dir/comm_replay.cpp.o"
  "CMakeFiles/comm_replay.dir/comm_replay.cpp.o.d"
  "comm_replay"
  "comm_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
