# Empty compiler generated dependencies file for comm_replay.
# This may be replaced when dependencies are built.
