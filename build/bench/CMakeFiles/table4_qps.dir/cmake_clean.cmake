file(REMOVE_RECURSE
  "CMakeFiles/table4_qps.dir/table4_qps.cpp.o"
  "CMakeFiles/table4_qps.dir/table4_qps.cpp.o.d"
  "table4_qps"
  "table4_qps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_qps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
