# Empty dependencies file for table4_qps.
# This may be replaced when dependencies are built.
