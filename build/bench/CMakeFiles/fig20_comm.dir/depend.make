# Empty dependencies file for fig20_comm.
# This may be replaced when dependencies are built.
