file(REMOVE_RECURSE
  "CMakeFiles/fig20_comm.dir/fig20_comm.cpp.o"
  "CMakeFiles/fig20_comm.dir/fig20_comm.cpp.o.d"
  "fig20_comm"
  "fig20_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
