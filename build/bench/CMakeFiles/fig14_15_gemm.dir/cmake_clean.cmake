file(REMOVE_RECURSE
  "CMakeFiles/fig14_15_gemm.dir/fig14_15_gemm.cpp.o"
  "CMakeFiles/fig14_15_gemm.dir/fig14_15_gemm.cpp.o.d"
  "fig14_15_gemm"
  "fig14_15_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_15_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
