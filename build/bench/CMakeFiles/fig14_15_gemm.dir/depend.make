# Empty dependencies file for fig14_15_gemm.
# This may be replaced when dependencies are built.
