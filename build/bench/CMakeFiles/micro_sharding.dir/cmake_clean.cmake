file(REMOVE_RECURSE
  "CMakeFiles/micro_sharding.dir/micro_sharding.cpp.o"
  "CMakeFiles/micro_sharding.dir/micro_sharding.cpp.o.d"
  "micro_sharding"
  "micro_sharding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sharding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
