file(REMOVE_RECURSE
  "CMakeFiles/ablation_exact_optimizer.dir/ablation_exact_optimizer.cpp.o"
  "CMakeFiles/ablation_exact_optimizer.dir/ablation_exact_optimizer.cpp.o.d"
  "ablation_exact_optimizer"
  "ablation_exact_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_exact_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
