file(REMOVE_RECURSE
  "CMakeFiles/table2_node_config.dir/table2_node_config.cpp.o"
  "CMakeFiles/table2_node_config.dir/table2_node_config.cpp.o.d"
  "table2_node_config"
  "table2_node_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_node_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
