file(REMOVE_RECURSE
  "CMakeFiles/micro_tt.dir/micro_tt.cpp.o"
  "CMakeFiles/micro_tt.dir/micro_tt.cpp.o.d"
  "micro_tt"
  "micro_tt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
