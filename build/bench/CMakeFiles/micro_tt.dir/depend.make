# Empty dependencies file for micro_tt.
# This may be replaced when dependencies are built.
