file(REMOVE_RECURSE
  "CMakeFiles/micro_data.dir/micro_data.cpp.o"
  "CMakeFiles/micro_data.dir/micro_data.cpp.o.d"
  "micro_data"
  "micro_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
