# Empty dependencies file for fig16_17_mlp.
# This may be replaced when dependencies are built.
