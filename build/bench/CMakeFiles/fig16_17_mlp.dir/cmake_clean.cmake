file(REMOVE_RECURSE
  "CMakeFiles/fig16_17_mlp.dir/fig16_17_mlp.cpp.o"
  "CMakeFiles/fig16_17_mlp.dir/fig16_17_mlp.cpp.o.d"
  "fig16_17_mlp"
  "fig16_17_mlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_17_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
