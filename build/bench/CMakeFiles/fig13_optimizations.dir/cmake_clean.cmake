file(REMOVE_RECURSE
  "CMakeFiles/fig13_optimizations.dir/fig13_optimizations.cpp.o"
  "CMakeFiles/fig13_optimizations.dir/fig13_optimizations.cpp.o.d"
  "fig13_optimizations"
  "fig13_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
