file(REMOVE_RECURSE
  "CMakeFiles/zionex_projection.dir/zionex_projection.cpp.o"
  "CMakeFiles/zionex_projection.dir/zionex_projection.cpp.o.d"
  "zionex_projection"
  "zionex_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zionex_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
