# Empty compiler generated dependencies file for zionex_projection.
# This may be replaced when dependencies are built.
