# Empty dependencies file for sharding_explorer.
# This may be replaced when dependencies are built.
