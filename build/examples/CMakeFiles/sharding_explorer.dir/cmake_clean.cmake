file(REMOVE_RECURSE
  "CMakeFiles/sharding_explorer.dir/sharding_explorer.cpp.o"
  "CMakeFiles/sharding_explorer.dir/sharding_explorer.cpp.o.d"
  "sharding_explorer"
  "sharding_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharding_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
