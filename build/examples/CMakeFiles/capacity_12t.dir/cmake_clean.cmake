file(REMOVE_RECURSE
  "CMakeFiles/capacity_12t.dir/capacity_12t.cpp.o"
  "CMakeFiles/capacity_12t.dir/capacity_12t.cpp.o.d"
  "capacity_12t"
  "capacity_12t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_12t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
