# Empty compiler generated dependencies file for capacity_12t.
# This may be replaced when dependencies are built.
