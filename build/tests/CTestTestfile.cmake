# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_comm[1]_include.cmake")
include("/root/repo/build/tests/test_ops[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_sharding[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_distributed[1]_include.cmake")
include("/root/repo/build/tests/test_ps[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_tt_embedding[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline_checkpoint[1]_include.cmake")
