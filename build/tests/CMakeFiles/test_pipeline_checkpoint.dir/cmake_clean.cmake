file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_checkpoint.dir/test_pipeline_checkpoint.cpp.o"
  "CMakeFiles/test_pipeline_checkpoint.dir/test_pipeline_checkpoint.cpp.o.d"
  "test_pipeline_checkpoint"
  "test_pipeline_checkpoint.pdb"
  "test_pipeline_checkpoint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
