file(REMOVE_RECURSE
  "CMakeFiles/test_tt_embedding.dir/test_tt_embedding.cpp.o"
  "CMakeFiles/test_tt_embedding.dir/test_tt_embedding.cpp.o.d"
  "test_tt_embedding"
  "test_tt_embedding.pdb"
  "test_tt_embedding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tt_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
