# Empty compiler generated dependencies file for test_tt_embedding.
# This may be replaced when dependencies are built.
