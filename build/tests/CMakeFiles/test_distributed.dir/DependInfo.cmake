
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_distributed.cpp" "tests/CMakeFiles/test_distributed.dir/test_distributed.cpp.o" "gcc" "tests/CMakeFiles/test_distributed.dir/test_distributed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/neo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ps/CMakeFiles/neo_ps.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/neo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/neo_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/neo_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/neo_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sharding/CMakeFiles/neo_sharding.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/neo_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/neo_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/neo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
