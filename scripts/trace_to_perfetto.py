#!/usr/bin/env python3
"""Validate (and lightly summarize) a neo Chrome trace-event JSON file.

The tracer (src/obs/trace.h) exports Chrome trace-event JSON meant to load
in Perfetto / chrome://tracing. This script is the CI gate for that
contract: `--check` validates the schema the viewers actually rely on and
exits non-zero on any violation, so a formatting regression fails the
build instead of producing a file Perfetto silently refuses to load.

It also validates the other telemetry-plane artifacts:

  * merged multi-rank traces from obs::HarvestTelemetry — same schema,
    plus `--expect-ranks N` requires slices from every rank pid 1..N
    (pid 0 is the shared pool and does not count);
  * post-mortem flight-recorder bundles (`--bundle`) — the versioned
    JSON obs::FlightRecorder::DumpBundle writes on failure paths.

Usage:
    trace_to_perfetto.py --check trace.json     # validate, exit 0/1
    trace_to_perfetto.py --check --expect-ranks 4 merged.json
    trace_to_perfetto.py --bundle flight_rank2.json
    trace_to_perfetto.py --summary trace.json   # per-pid/category totals
"""

import argparse
import collections
import json
import sys


def fail(msg):
    print(f"trace check FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def check_event(i, ev):
    if not isinstance(ev, dict):
        fail(f"event {i} is not an object")
    ph = ev.get("ph")
    if ph not in ("X", "M"):
        fail(f"event {i}: unsupported phase {ph!r}")
    if "pid" not in ev or not isinstance(ev["pid"], int):
        fail(f"event {i}: missing/non-integer pid")
    if ph == "M":
        if ev.get("name") != "process_name":
            fail(f"event {i}: unexpected metadata event {ev.get('name')!r}")
        if "name" not in ev.get("args", {}):
            fail(f"event {i}: process_name metadata without args.name")
        return
    # Complete ("X") events: the fields Perfetto's slice track needs.
    for key in ("name", "cat", "ts", "dur", "tid"):
        if key not in ev:
            fail(f"event {i}: X event missing {key!r}")
    if not isinstance(ev["name"], str) or not isinstance(ev["cat"], str):
        fail(f"event {i}: name/cat must be strings")
    for key in ("ts", "dur"):
        if not isinstance(ev[key], (int, float)):
            fail(f"event {i}: {key} must be numeric")
    if ev["dur"] < 0:
        fail(f"event {i}: negative dur {ev['dur']}")
    if not isinstance(ev["tid"], int):
        fail(f"event {i}: tid must be an integer")


def check_nesting(events):
    """Slices on one (pid, tid) track must nest: no partial overlap."""
    tracks = collections.defaultdict(list)
    for ev in events:
        if ev["ph"] == "X":
            tracks[(ev["pid"], ev["tid"])].append(ev)
    for (pid, tid), slices in tracks.items():
        slices.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []
        for ev in slices:
            end = ev["ts"] + ev["dur"]
            while stack and stack[-1] <= ev["ts"]:
                stack.pop()
            if stack and end > stack[-1] + 1e-6:
                fail(
                    f"track pid={pid} tid={tid}: slice "
                    f"{ev['name']!r} [{ev['ts']}, {end}] overlaps the "
                    f"enclosing slice ending at {stack[-1]}"
                )
            stack.append(end)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("traceEvents must be an array")
    return events


def summarize(events):
    by_pid = collections.defaultdict(float)
    by_cat = collections.defaultdict(float)
    names = {}
    slices = 0
    for ev in events:
        if ev["ph"] == "M":
            names[ev["pid"]] = ev["args"]["name"]
            continue
        slices += 1
        by_pid[ev["pid"]] += ev["dur"]
        by_cat[ev["cat"]] += ev["dur"]
    print(f"{slices} slices across {len(by_pid)} processes")
    for pid in sorted(by_pid):
        label = names.get(pid, f"pid {pid}")
        print(f"  {label:<16} {by_pid[pid] / 1e3:10.3f} ms total")
    print("by category:")
    for cat in sorted(by_cat, key=by_cat.get, reverse=True):
        print(f"  {cat:<16} {by_cat[cat] / 1e3:10.3f} ms")


def check_expected_ranks(events, expect_ranks):
    """A merged fleet trace must carry slices from every rank 1..N."""
    slice_pids = {ev["pid"] for ev in events if ev["ph"] == "X"}
    missing = [r for r in range(expect_ranks) if (r + 1) not in slice_pids]
    if missing:
        fail(
            f"merged trace covers pids {sorted(slice_pids)} but has no "
            f"slices for rank(s) {missing} (expected ranks 0.."
            f"{expect_ranks - 1})"
        )


def check_bundle(path):
    """Validate a flight-recorder post-mortem bundle (see
    src/obs/flight_recorder.h for the schema)."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")
    if not isinstance(doc, dict):
        fail("bundle top level must be an object")
    if doc.get("neo_flight_recorder") != 1:
        fail(
            "bundle missing/unsupported version header "
            f"neo_flight_recorder={doc.get('neo_flight_recorder')!r}"
        )
    if not isinstance(doc.get("rank"), int):
        fail("bundle: missing/non-integer rank")
    for key in ("cause", "last_op"):
        if not isinstance(doc.get(key), str):
            fail(f"bundle: missing/non-string {key!r}")
    if not isinstance(doc.get("dumped_at_ns"), int):
        fail("bundle: missing/non-integer dumped_at_ns")
    for key, fields in (
        ("ops", {"name": str, "t_ns": int}),
        ("steps", {"step": int, "seconds": (int, float),
                   "loss": (int, float)}),
        ("events", {"t_ns": int, "kind": str, "detail": str}),
        ("metric_deltas", {"t_ns": int, "counters": dict}),
    ):
        entries = doc.get(key)
        if not isinstance(entries, list):
            fail(f"bundle: {key!r} must be an array")
        for i, entry in enumerate(entries):
            if not isinstance(entry, dict):
                fail(f"bundle: {key}[{i}] is not an object")
            for field, types in fields.items():
                if not isinstance(entry.get(field), types):
                    fail(f"bundle: {key}[{i}] missing/ill-typed {field!r}")
    if doc["ops"] and doc["last_op"] != doc["ops"][-1]["name"]:
        fail(
            f"bundle: last_op {doc['last_op']!r} disagrees with the final "
            f"ops entry {doc['ops'][-1]['name']!r}"
        )
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        fail("bundle: 'metrics' must be an object")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            fail(f"bundle: metrics.{section} must be an object")
    print(
        f"{path}: OK (rank {doc['rank']}, {len(doc['ops'])} ops, "
        f"{len(doc['steps'])} steps, {len(doc['events'])} events, "
        f"last_op {doc['last_op']!r})"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--check", action="store_true", help="validate schema and exit"
    )
    parser.add_argument(
        "--summary", action="store_true", help="print per-pid/cat totals"
    )
    parser.add_argument(
        "--expect-ranks",
        type=int,
        default=0,
        metavar="N",
        help="require slices from every rank 0..N-1 (merged fleet traces)",
    )
    parser.add_argument(
        "--bundle",
        action="store_true",
        help="validate a flight-recorder post-mortem bundle instead",
    )
    args = parser.parse_args()

    if args.bundle:
        check_bundle(args.trace)
        return

    events = load(args.trace)
    if not events:
        fail("trace contains no events")
    for i, ev in enumerate(events):
        check_event(i, ev)
    check_nesting(events)
    if args.expect_ranks > 0:
        check_expected_ranks(events, args.expect_ranks)
    if args.summary:
        summarize(events)
    if args.check:
        print(f"{args.trace}: OK ({len(events)} events)")


if __name__ == "__main__":
    main()
