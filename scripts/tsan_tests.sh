#!/usr/bin/env bash
# ThreadSanitizer pass over the concurrency-sensitive suites: configures a
# dedicated build tree with -DNEO_SANITIZE=thread and runs the tsan_* ctest
# entries (whole-binary runs of test_common, test_comm, test_obs,
# test_parallel, test_kernels with NEO_NUM_THREADS=4 so the intra-op pool
# is actually concurrent).
#
# Usage: scripts/tsan_tests.sh   (from the repo root)
#   BUILD_DIR=... to override the build tree (default build-tsan)
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DNEO_SANITIZE=thread
cmake --build "$BUILD_DIR" -j \
    --target test_common --target test_comm --target test_obs \
    --target test_parallel --target test_kernels
ctest --test-dir "$BUILD_DIR" --output-on-failure -R '^tsan_'
