/**
 * @file
 * Micro-benchmarks for the memory hierarchy: the 32-way software cache
 * (LRU vs LFU, Zipf vs uniform traces) and the UVM paged baseline,
 * reporting effective hit rates alongside throughput — the ablation
 * behind the paper's "software cache beats UVM by ~15% end to end".
 */
#include <benchmark/benchmark.h>

#include "cache/cached_embedding_store.h"
#include "cache/uvm_store.h"
#include "common/rng.h"

namespace {

using namespace neo;
using namespace neo::cache;

std::vector<int64_t>
MakeTrace(int64_t rows, double zipf_s, size_t n)
{
    Rng rng(29);
    ZipfSampler sampler(static_cast<uint64_t>(rows), zipf_s);
    std::vector<int64_t> trace(n);
    for (auto& r : trace) {
        r = static_cast<int64_t>(sampler.Sample(rng));
    }
    return trace;
}

void
BM_SoftwareCacheRead(benchmark::State& state)
{
    const ReplacementPolicy policy =
        static_cast<ReplacementPolicy>(state.range(0));
    const double zipf_s = state.range(1) / 100.0;
    const int64_t rows = 200000, dim = 32;
    const auto trace = MakeTrace(rows, zipf_s, 50000);

    ops::EmbeddingTable backing(rows, dim);
    MemoryTier hbm(Tier::kHbm, 1e9, 850e9);
    MemoryTier ddr(Tier::kDdr, 1e12, 13e9);
    CachedEmbeddingStore store(std::move(backing), {256, 32, policy},
                               &hbm, &ddr);
    std::vector<float> buf(dim);
    for (auto _ : state) {
        for (int64_t r : trace) {
            store.ReadRow(r, buf.data());
        }
        benchmark::DoNotOptimize(buf.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            trace.size());
    state.counters["hit_rate"] = store.stats().HitRate();
}
BENCHMARK(BM_SoftwareCacheRead)
    ->Args({static_cast<int>(ReplacementPolicy::kLru), 105})
    ->Args({static_cast<int>(ReplacementPolicy::kLfu), 105})
    ->Args({static_cast<int>(ReplacementPolicy::kLru), 0});

void
BM_UvmPagedRead(benchmark::State& state)
{
    const int64_t rows = 200000, dim = 32;
    const auto trace = MakeTrace(rows, 1.05, 50000);

    ops::EmbeddingTable backing(rows, dim);
    MemoryTier hbm(Tier::kHbm, 1e9, 850e9);
    MemoryTier pcie(Tier::kDdr, 1e12, 13e9);
    UvmPagedStore store(std::move(backing), 64 * 1024, 1 << 20, &hbm,
                        &pcie);
    std::vector<float> buf(dim);
    for (auto _ : state) {
        for (int64_t r : trace) {
            store.ReadRow(r, buf.data());
        }
        benchmark::DoNotOptimize(buf.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            trace.size());
    state.counters["fault_rate"] = store.stats().FaultRate();
}
BENCHMARK(BM_UvmPagedRead);

}  // namespace

BENCHMARK_MAIN();
