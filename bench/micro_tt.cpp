/**
 * @file
 * Micro-benchmarks for TT-Rec compressed embeddings: row reconstruction
 * and core-gradient update cost versus TT rank, with the compression
 * ratio reported alongside — the accuracy/compute/memory trade-off of
 * Sec. 4.1.4 [59].
 */
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "ops/embedding_table.h"
#include "ops/tt_embedding.h"

namespace {

using namespace neo;
using namespace neo::ops;

void
BM_TtReadRow(benchmark::State& state)
{
    const int64_t rank = state.range(0);
    const int64_t rows = 1000000, dim = 64;
    TtEmbeddingTable table(rows, dim, TtShape::Auto(rows, dim, rank), 7);
    Rng rng(3);
    std::vector<float> out(static_cast<size_t>(dim));
    for (auto _ : state) {
        table.ReadRow(static_cast<int64_t>(rng.NextBounded(rows)),
                      out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.counters["compression"] = table.CompressionRatio();
}
BENCHMARK(BM_TtReadRow)->Arg(2)->Arg(8)->Arg(32);

void
BM_TtRowGradient(benchmark::State& state)
{
    const int64_t rank = state.range(0);
    const int64_t rows = 1000000, dim = 64;
    TtEmbeddingTable table(rows, dim, TtShape::Auto(rows, dim, rank), 7);
    Rng rng(5);
    std::vector<float> grad(static_cast<size_t>(dim));
    for (auto& g : grad) {
        g = rng.NextUniform(-0.01f, 0.01f);
    }
    for (auto _ : state) {
        table.ApplyRowGradient(
            static_cast<int64_t>(rng.NextBounded(rows)), grad.data(),
            0.01f);
    }
}
BENCHMARK(BM_TtRowGradient)->Arg(2)->Arg(8)->Arg(32);

void
BM_PlainReadRowBaseline(benchmark::State& state)
{
    const int64_t rows = 1000000, dim = 64;
    EmbeddingTable table(rows, dim);
    Rng init(1);
    table.InitUniform(init);
    Rng rng(3);
    std::vector<float> out(static_cast<size_t>(dim));
    for (auto _ : state) {
        table.ReadRow(static_cast<int64_t>(rng.NextBounded(rows)),
                      out.data());
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_PlainReadRowBaseline);

}  // namespace

BENCHMARK_MAIN();
