/**
 * @file
 * Micro-benchmarks for the sharding planner: greedy vs Karmarkar-Karp
 * placement cost and achieved balance, plus full planning latency on
 * Table-3-scale workloads (1000 tables, 128 workers) — planning must be
 * cheap relative to training.
 */
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "sharding/partition.h"
#include "sharding/planner.h"
#include "sim/workloads.h"

namespace {

using namespace neo;
using namespace neo::sharding;

std::vector<double>
RandomCosts(size_t n)
{
    Rng rng(7);
    std::vector<double> costs(n);
    for (auto& c : costs) {
        c = std::exp(rng.NextGaussian());
    }
    return costs;
}

void
BM_GreedyPartition(benchmark::State& state)
{
    const auto costs = RandomCosts(static_cast<size_t>(state.range(0)));
    for (auto _ : state) {
        auto assignment = GreedyPartition(costs, 128);
        benchmark::DoNotOptimize(assignment.data());
    }
}
BENCHMARK(BM_GreedyPartition)->Arg(1000)->Arg(10000);

void
BM_LdmPartition(benchmark::State& state)
{
    const auto costs = RandomCosts(static_cast<size_t>(state.range(0)));
    for (auto _ : state) {
        auto assignment = LdmPartition(costs, 128);
        benchmark::DoNotOptimize(assignment.data());
    }
    const auto greedy = GreedyPartition(costs, 128);
    const auto ldm = LdmPartition(costs, 128);
    state.counters["greedy_max"] = MaxBinSum(costs, greedy, 128);
    state.counters["ldm_max"] = MaxBinSum(costs, ldm, 128);
}
BENCHMARK(BM_LdmPartition)->Arg(1000)->Arg(10000);

void
BM_FullPlanA2(benchmark::State& state)
{
    const auto tables = sim::WorkloadModel::A2().SynthesizeTables();
    PlannerOptions options;
    options.topo.num_workers = 128;
    options.topo.workers_per_node = 8;
    options.global_batch = 65536;
    options.hbm_bytes_per_worker = 26e9;
    ShardingPlanner planner(options);
    std::vector<TableConfig> fp16 = tables;
    for (auto& t : fp16) {
        t.precision = Precision::kFp16;
    }
    for (auto _ : state) {
        auto plan = planner.Plan(fp16);
        benchmark::DoNotOptimize(plan.shards.data());
    }
}
BENCHMARK(BM_FullPlanA2);

}  // namespace

BENCHMARK_MAIN();
