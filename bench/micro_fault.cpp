/**
 * @file
 * Fault-tolerance microbenchmark: an 8-rank hybrid-parallel training run
 * with one injected straggler and one injected (transient) rank kill.
 * Demonstrates the abort-propagation protocol end to end — the straggler
 * is absorbed by the barrier deadline, the kill aborts the collective on
 * every rank, and the per-step retry loop recovers the world — and prints
 * a structured per-rank failure/recovery report. The same degradation is
 * then priced on the modeled cluster via sim::FaultModel so the
 * functional and analytical layers can be compared.
 *
 * It then measures the elastic-recovery cost inputs: differential
 * checkpoint write/restore latency vs table size, and delta size vs Zipf
 * skew (the Check-N-Run observation), calibrates sim::FaultModel's
 * checkpoint bandwidth terms from the measurements, and emits everything
 * as BENCH_fault.json.
 *
 * Usage: micro_fault [--quick] [--out=PATH]
 *   --quick  smaller tables / fewer touches (smoke-test mode)
 *   --out    JSON output path (default BENCH_fault.json in the cwd)
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "comm/fault.h"
#include "comm/threaded_process_group.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "core/checkpoint.h"
#include "core/distributed_trainer.h"
#include "data/dataset.h"
#include "kernels/kernels.h"
#include "ops/embedding_table.h"
#include "sharding/planner.h"
#include "sim/comm_model.h"
#include "sim/hardware.h"

namespace {

using namespace neo;
using std::chrono::milliseconds;

constexpr int kWorkers = 8;
constexpr size_t kLocalBatch = 16;
constexpr int kSteps = 4;

data::DatasetConfig
MakeDataConfig(const core::DlrmConfig& model)
{
    data::DatasetConfig config;
    config.num_dense = model.num_dense;
    config.seed = 11;
    for (const auto& t : model.tables) {
        config.features.push_back({t.rows, t.pooling, 1.05});
    }
    return config;
}

data::Batch
LocalSlice(const data::Batch& global, int rank)
{
    const size_t begin = rank * kLocalBatch;
    data::Batch local;
    local.dense = Matrix(kLocalBatch, global.dense.cols());
    for (size_t b = 0; b < kLocalBatch; b++) {
        for (size_t c = 0; c < global.dense.cols(); c++) {
            local.dense(b, c) = global.dense(begin + b, c);
        }
    }
    local.sparse = global.sparse.SliceBatch(begin, begin + kLocalBatch);
    local.labels.assign(global.labels.begin() + begin,
                        global.labels.begin() + begin + kLocalBatch);
    return local;
}

/** Everything one rank reports after the run. */
struct RankReport {
    int steps_ok = 0;
    int attempts = 0;
    std::vector<core::StepFailure> failures;
    double final_loss = 0.0;
    double wall_ms = 0.0;
};

/** Wall-clock seconds of fn(). */
template <typename F>
double
TimeOnce(F&& fn)
{
    const auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/** One table size's checkpoint write/restore measurement. */
struct CkptMeasure {
    int64_t rows = 0;
    int64_t dim = 0;
    size_t baseline_bytes = 0;
    double baseline_write_s = 0.0;
    size_t delta_bytes = 0;
    double delta_write_s = 0.0;
    double restore_s = 0.0;
    uint64_t delta_rows = 0;
};

/**
 * Measure baseline write, delta write after `touches` Zipf-skewed row
 * updates, and baseline+delta restore for one rows x dim table.
 */
CkptMeasure
MeasureCheckpoint(int64_t rows, int64_t dim, int touches)
{
    CkptMeasure m;
    m.rows = rows;
    m.dim = dim;
    Rng rng(41);
    ops::EmbeddingTable table(rows, dim);
    table.InitUniform(rng);
    core::DeltaCheckpointer checkpointer(&table);

    std::vector<uint8_t> baseline;
    m.baseline_write_s =
        TimeOnce([&] { baseline = checkpointer.WriteBaseline(); });
    m.baseline_bytes = baseline.size();

    ZipfSampler sampler(static_cast<uint64_t>(rows), 1.2);
    std::vector<float> row(static_cast<size_t>(dim));
    for (int i = 0; i < touches; i++) {
        const int64_t r = static_cast<int64_t>(sampler.Sample(rng));
        table.ReadRow(r, row.data());
        for (auto& x : row) {
            x += 0.01f;
        }
        table.WriteRow(r, row.data());
    }

    std::vector<uint8_t> delta;
    m.delta_write_s = TimeOnce([&] { delta = checkpointer.WriteDelta(); });
    m.delta_bytes = delta.size();
    m.delta_rows = checkpointer.last_delta_rows();

    m.restore_s = TimeOnce(
        [&] { core::DeltaCheckpointer::Restore(baseline, {delta}); });
    return m;
}

/** One Zipf skew's delta-size measurement. */
struct SkewMeasure {
    double skew = 0.0;
    uint64_t unique_rows = 0;
    size_t delta_bytes = 0;
    size_t baseline_bytes = 0;
};

SkewMeasure
MeasureSkew(int64_t rows, int64_t dim, int touches, double skew)
{
    SkewMeasure m;
    m.skew = skew;
    Rng rng(43);
    ops::EmbeddingTable table(rows, dim);
    table.InitUniform(rng);
    core::DeltaCheckpointer checkpointer(&table);
    m.baseline_bytes = checkpointer.WriteBaseline().size();

    ZipfSampler sampler(static_cast<uint64_t>(rows), skew);
    std::vector<float> row(static_cast<size_t>(dim));
    for (int i = 0; i < touches; i++) {
        const int64_t r = static_cast<int64_t>(sampler.Sample(rng));
        table.ReadRow(r, row.data());
        for (auto& x : row) {
            x += 0.01f;
        }
        table.WriteRow(r, row.data());
    }
    m.delta_bytes = checkpointer.WriteDelta().size();
    m.unique_rows = checkpointer.last_delta_rows();
    return m;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    std::string out_path = "BENCH_fault.json";
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
            out_path = argv[i] + 6;
        } else {
            std::fprintf(stderr, "usage: %s [--quick] [--out=PATH]\n",
                         argv[0]);
            return 2;
        }
    }
    core::DlrmConfig model = core::MakeSmallDlrmConfig(8, 500, 16);

    sharding::PlannerOptions planner_options;
    planner_options.topo.num_workers = kWorkers;
    planner_options.topo.workers_per_node = kWorkers;
    planner_options.global_batch = kLocalBatch * kWorkers;
    planner_options.hbm_bytes_per_worker = 1e9;
    sharding::ShardingPlanner planner(planner_options);
    const sharding::ShardingPlan plan = planner.Plan(model.tables);

    // ---- probe: count collective calls per training step ---------------
    // Fault specs address (rank, per-rank collective call index), so a
    // one-step fault-free probe tells us where step boundaries land.
    uint64_t calls_per_step = 0;
    comm::ThreadedWorld::Run(kWorkers, [&](int rank,
                                           comm::ProcessGroup& pg) {
        core::DistributedDlrm trainer(model, plan, pg);
        data::SyntheticCtrDataset dataset(MakeDataConfig(model));
        trainer.TrainStep(LocalSlice(dataset.NextBatch(
                                         kLocalBatch * kWorkers),
                                     rank));
        if (rank == 0) {
            calls_per_step = pg.Stats().calls;
        }
    });

    // ---- arm one straggler and one transient kill ----------------------
    constexpr int kStragglerRank = 3;
    constexpr int kVictimRank = 5;
    constexpr int kKillStep = 2;
    const milliseconds straggler_delay(25);

    comm::FaultInjector injector;
    {
        // Straggler: rank 3 stalls mid-step-1; the barrier deadline is
        // generous, so every peer just waits the delay out.
        comm::FaultSpec delay;
        delay.rank = kStragglerRank;
        delay.call_index = calls_per_step + 2;
        delay.kind = comm::FaultKind::kDelay;
        delay.delay = straggler_delay;
        injector.Arm(delay);
        // Kill: rank 5 dies on the first collective of step 2 (before the
        // step mutates any state), marked transient so the retry loop
        // recovers it.
        comm::FaultSpec kill;
        kill.rank = kVictimRank;
        kill.call_index = calls_per_step * kKillStep;
        kill.kind = comm::FaultKind::kKill;
        kill.transient = true;
        injector.Arm(kill);
    }

    comm::ThreadedWorld::Options world_options;
    world_options.injector = &injector;
    world_options.barrier_timeout = milliseconds(30000);

    core::DistributedOptions trainer_options;
    trainer_options.max_step_retries = 2;
    trainer_options.retry_backoff = milliseconds(1);
    trainer_options.recover_timeout = milliseconds(10000);

    // ---- the faulted run -----------------------------------------------
    std::vector<RankReport> reports(kWorkers);
    comm::ThreadedWorld::Run(
        kWorkers, world_options, [&](int rank, comm::ProcessGroup& pg) {
            const auto start = std::chrono::steady_clock::now();
            core::DistributedDlrm trainer(model, plan, pg,
                                          trainer_options);
            data::SyntheticCtrDataset dataset(MakeDataConfig(model));
            RankReport& report = reports[rank];
            for (int step = 0; step < kSteps; step++) {
                const data::Batch local = LocalSlice(
                    dataset.NextBatch(kLocalBatch * kWorkers), rank);
                const core::StepResult result =
                    trainer.TrainStepWithRecovery(local);
                report.attempts += result.attempts;
                report.failures.insert(report.failures.end(),
                                       result.failures.begin(),
                                       result.failures.end());
                if (!result.ok) {
                    break;  // permanent failure: stop this rank's loop
                }
                report.steps_ok++;
                report.final_loss = result.loss;
            }
            report.wall_ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
        });

    // ---- structured report ---------------------------------------------
    std::printf("== micro_fault: %d ranks, %d steps, %llu collective "
                "calls/step ==\n\n",
                kWorkers, kSteps,
                static_cast<unsigned long long>(calls_per_step));

    std::printf("injected faults (fired %zu of %zu armed):\n",
                injector.Fired().size(), injector.Fired().size());
    for (const auto& event : injector.Fired()) {
        std::printf("  rank %d  call #%llu  %s%s\n", event.spec.rank,
                    static_cast<unsigned long long>(event.spec.call_index),
                    comm::FaultKindName(event.spec.kind),
                    event.spec.kind == comm::FaultKind::kDelay
                        ? (" " +
                           std::to_string(event.spec.delay.count()) + "ms")
                              .c_str()
                        : (event.spec.transient ? " (transient)"
                                                : " (permanent)"));
    }
    std::printf("\nper-rank failure/recovery report:\n");
    TablePrinter table({"rank", "steps ok", "attempts", "failures seen",
                        "blamed rank", "recovered", "wall ms"});
    bool all_recovered = true;
    for (int r = 0; r < kWorkers; r++) {
        const RankReport& report = reports[r];
        std::string blamed = "-";
        if (!report.failures.empty()) {
            blamed = std::to_string(report.failures[0].failed_rank);
            for (size_t f = 1; f < report.failures.size(); f++) {
                blamed += "," +
                          std::to_string(report.failures[f].failed_rank);
            }
        }
        const bool recovered = report.steps_ok == kSteps;
        all_recovered = all_recovered && recovered;
        table.Row()
            .Cell(r)
            .Cell(report.steps_ok)
            .Cell(report.attempts)
            .Cell(report.failures.size())
            .Cell(blamed)
            .Cell(recovered ? "yes" : "NO")
            .CellF(report.wall_ms, "%.1f");
    }
    table.Print();

    if (!all_recovered) {
        std::printf("\nFAIL: at least one rank did not recover\n");
        return 1;
    }
    std::printf("\nevery rank blamed rank %d, retried once, and finished "
                "all %d steps; the %lldms straggler on rank %d was "
                "absorbed by the barrier deadline\n",
                kVictimRank, kSteps,
                static_cast<long long>(straggler_delay.count()),
                kStragglerRank);

    // ---- the same degradation on the modeled cluster -------------------
    std::printf("\nmodeled cost of the same faults (64 MB AllReduce, "
                "128 GPUs):\n\n");
    TablePrinter model_table({"fault model", "ms", "bus GB/s"});
    const double bytes = 64e6;
    auto row = [&](const char* label, const sim::FaultModel& faults) {
        sim::CommModel comm_model(sim::ClusterSpec::Prototype(16));
        comm_model.SetFaultModel(faults);
        const sim::CommEstimate est = comm_model.AllReduce(bytes, 128);
        model_table.Row()
            .Cell(label)
            .CellF(est.seconds * 1e3, "%.2f")
            .CellF(est.bus_bandwidth / 1e9, "%.1f");
    };
    row("clean", {});
    {
        sim::FaultModel faults;
        faults.straggler_delay_s = straggler_delay.count() * 1e-3;
        row("straggler 25ms/collective", faults);
    }
    {
        sim::FaultModel faults;
        faults.failure_rate_per_collective = 0.01;
        row("1% aborts + recovery", faults);
    }
    model_table.Print();

    // ---- recovery latency vs table size --------------------------------
    const int64_t dim = 32;
    const int touches = quick ? 512 : 4096;
    const std::vector<int64_t> table_rows =
        quick ? std::vector<int64_t>{1024, 4096}
              : std::vector<int64_t>{2048, 8192, 32768};
    std::printf("\ndifferential checkpoint latency vs table size "
                "(d%lld, %d Zipf(1.2) touches):\n\n",
                static_cast<long long>(dim), touches);
    TablePrinter ckpt_table({"rows", "baseline KB", "write ms", "delta KB",
                             "delta ms", "restore ms", "delta rows"});
    std::vector<CkptMeasure> measures;
    for (const int64_t rows : table_rows) {
        const CkptMeasure m = MeasureCheckpoint(rows, dim, touches);
        measures.push_back(m);
        ckpt_table.Row()
            .Cell(static_cast<int64_t>(m.rows))
            .CellF(m.baseline_bytes / 1e3, "%.1f")
            .CellF(m.baseline_write_s * 1e3, "%.3f")
            .CellF(m.delta_bytes / 1e3, "%.1f")
            .CellF(m.delta_write_s * 1e3, "%.3f")
            .CellF(m.restore_s * 1e3, "%.3f")
            .Cell(static_cast<int64_t>(m.delta_rows));
    }
    ckpt_table.Print();

    // ---- delta size vs Zipf skew ---------------------------------------
    const int64_t skew_rows = quick ? 4096 : 32768;
    const std::vector<double> skews = {1.01, 1.2, 1.5, 2.0};
    std::printf("\ndelta size vs access skew (%lld rows x d%lld, %d "
                "touches): hotter access -> fewer unique rows -> smaller "
                "delta (Check-N-Run):\n\n",
                static_cast<long long>(skew_rows),
                static_cast<long long>(dim), touches);
    TablePrinter skew_table({"zipf s", "unique rows", "delta KB",
                             "% of baseline"});
    std::vector<SkewMeasure> skew_measures;
    for (const double s : skews) {
        const SkewMeasure m = MeasureSkew(skew_rows, dim, touches, s);
        skew_measures.push_back(m);
        skew_table.Row()
            .CellF(m.skew, "%.2f")
            .Cell(static_cast<int64_t>(m.unique_rows))
            .CellF(m.delta_bytes / 1e3, "%.1f")
            .CellF(100.0 * m.delta_bytes / m.baseline_bytes, "%.2f");
    }
    skew_table.Print();

    // ---- calibrate the FaultModel cost terms ---------------------------
    // Fit bandwidths on the largest table, then check the model against
    // the smallest — a cross-size sanity check, not a tautology.
    sim::FaultModel calibrated;
    calibrated.straggler_delay_s = 0.0;
    const CkptMeasure& fit = measures.back();
    calibrated.CalibrateCheckpoint(
        static_cast<double>(fit.baseline_bytes), fit.baseline_write_s,
        static_cast<double>(fit.baseline_bytes + fit.delta_bytes),
        fit.restore_s);
    const CkptMeasure& probe = measures.front();
    const double probe_bytes =
        static_cast<double>(probe.baseline_bytes + probe.delta_bytes);
    const double modeled_restore =
        calibrated.CheckpointRestoreSeconds(probe_bytes);
    // One survivor's share of a shrink: restore the full logical state,
    // re-slice a quarter of it onto the new placement.
    const double shrink_s = calibrated.ShrinkRecoverySeconds(
        static_cast<double>(fit.baseline_bytes + fit.delta_bytes),
        static_cast<double>(fit.baseline_bytes) / 4.0);
    std::printf("\ncalibrated fault model: write %.1f MB/s, restore %.1f "
                "MB/s\n  modeled restore of %lld-row table: %.3f ms "
                "(measured %.3f ms)\n  modeled end-to-end shrink recovery "
                "(detect + rendezvous + restore + reshard): %.3f ms\n",
                calibrated.checkpoint_write_Bps / 1e6,
                calibrated.checkpoint_restore_Bps / 1e6,
                static_cast<long long>(probe.rows), modeled_restore * 1e3,
                probe.restore_s * 1e3, shrink_s * 1e3);

    // ---- JSON ----------------------------------------------------------
    FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"micro_fault\",\n");
    std::fprintf(f, "  \"kernel_tier\": \"%s\",\n",
                 neo::kernels::TierName(neo::kernels::ActiveTier()));
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"workers\": %d,\n", kWorkers);
    std::fprintf(f, "  \"all_ranks_recovered\": true,\n");
    std::fprintf(f, "  \"checkpoint_latency\": [\n");
    for (size_t i = 0; i < measures.size(); i++) {
        const CkptMeasure& m = measures[i];
        std::fprintf(
            f,
            "    {\"rows\": %lld, \"dim\": %lld, \"baseline_bytes\": %zu, "
            "\"baseline_write_s\": %.6f, \"delta_bytes\": %zu, "
            "\"delta_write_s\": %.6f, \"restore_s\": %.6f, "
            "\"delta_rows\": %llu}%s\n",
            static_cast<long long>(m.rows), static_cast<long long>(m.dim),
            m.baseline_bytes, m.baseline_write_s, m.delta_bytes,
            m.delta_write_s, m.restore_s,
            static_cast<unsigned long long>(m.delta_rows),
            i + 1 < measures.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"delta_vs_skew\": [\n");
    for (size_t i = 0; i < skew_measures.size(); i++) {
        const SkewMeasure& m = skew_measures[i];
        std::fprintf(f,
                     "    {\"skew\": %.2f, \"touches\": %d, "
                     "\"unique_rows\": %llu, \"delta_bytes\": %zu, "
                     "\"baseline_bytes\": %zu}%s\n",
                     m.skew, touches,
                     static_cast<unsigned long long>(m.unique_rows),
                     m.delta_bytes, m.baseline_bytes,
                     i + 1 < skew_measures.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"fault_model\": {\n");
    std::fprintf(f, "    \"checkpoint_write_Bps\": %.1f,\n",
                 calibrated.checkpoint_write_Bps);
    std::fprintf(f, "    \"checkpoint_restore_Bps\": %.1f,\n",
                 calibrated.checkpoint_restore_Bps);
    std::fprintf(f, "    \"reshard_Bps\": %.1f,\n", calibrated.reshard_Bps);
    std::fprintf(f, "    \"modeled_probe_restore_s\": %.6f,\n",
                 modeled_restore);
    std::fprintf(f, "    \"measured_probe_restore_s\": %.6f,\n",
                 probe.restore_s);
    std::fprintf(f, "    \"shrink_recovery_s\": %.6f\n  }\n}\n", shrink_s);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
    return 0;
}
