/**
 * @file
 * Fault-tolerance microbenchmark: an 8-rank hybrid-parallel training run
 * with one injected straggler and one injected (transient) rank kill.
 * Demonstrates the abort-propagation protocol end to end — the straggler
 * is absorbed by the barrier deadline, the kill aborts the collective on
 * every rank, and the per-step retry loop recovers the world — and prints
 * a structured per-rank failure/recovery report. The same degradation is
 * then priced on the modeled cluster via sim::FaultModel so the
 * functional and analytical layers can be compared.
 */
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "comm/fault.h"
#include "comm/threaded_process_group.h"
#include "common/table_printer.h"
#include "core/distributed_trainer.h"
#include "data/dataset.h"
#include "sharding/planner.h"
#include "sim/comm_model.h"
#include "sim/hardware.h"

namespace {

using namespace neo;
using std::chrono::milliseconds;

constexpr int kWorkers = 8;
constexpr size_t kLocalBatch = 16;
constexpr int kSteps = 4;

data::DatasetConfig
MakeDataConfig(const core::DlrmConfig& model)
{
    data::DatasetConfig config;
    config.num_dense = model.num_dense;
    config.seed = 11;
    for (const auto& t : model.tables) {
        config.features.push_back({t.rows, t.pooling, 1.05});
    }
    return config;
}

data::Batch
LocalSlice(const data::Batch& global, int rank)
{
    const size_t begin = rank * kLocalBatch;
    data::Batch local;
    local.dense = Matrix(kLocalBatch, global.dense.cols());
    for (size_t b = 0; b < kLocalBatch; b++) {
        for (size_t c = 0; c < global.dense.cols(); c++) {
            local.dense(b, c) = global.dense(begin + b, c);
        }
    }
    local.sparse = global.sparse.SliceBatch(begin, begin + kLocalBatch);
    local.labels.assign(global.labels.begin() + begin,
                        global.labels.begin() + begin + kLocalBatch);
    return local;
}

/** Everything one rank reports after the run. */
struct RankReport {
    int steps_ok = 0;
    int attempts = 0;
    std::vector<core::StepFailure> failures;
    double final_loss = 0.0;
    double wall_ms = 0.0;
};

}  // namespace

int
main()
{
    core::DlrmConfig model = core::MakeSmallDlrmConfig(8, 500, 16);

    sharding::PlannerOptions planner_options;
    planner_options.topo.num_workers = kWorkers;
    planner_options.topo.workers_per_node = kWorkers;
    planner_options.global_batch = kLocalBatch * kWorkers;
    planner_options.hbm_bytes_per_worker = 1e9;
    sharding::ShardingPlanner planner(planner_options);
    const sharding::ShardingPlan plan = planner.Plan(model.tables);

    // ---- probe: count collective calls per training step ---------------
    // Fault specs address (rank, per-rank collective call index), so a
    // one-step fault-free probe tells us where step boundaries land.
    uint64_t calls_per_step = 0;
    comm::ThreadedWorld::Run(kWorkers, [&](int rank,
                                           comm::ProcessGroup& pg) {
        core::DistributedDlrm trainer(model, plan, pg);
        data::SyntheticCtrDataset dataset(MakeDataConfig(model));
        trainer.TrainStep(LocalSlice(dataset.NextBatch(
                                         kLocalBatch * kWorkers),
                                     rank));
        if (rank == 0) {
            calls_per_step = pg.Stats().calls;
        }
    });

    // ---- arm one straggler and one transient kill ----------------------
    constexpr int kStragglerRank = 3;
    constexpr int kVictimRank = 5;
    constexpr int kKillStep = 2;
    const milliseconds straggler_delay(25);

    comm::FaultInjector injector;
    {
        // Straggler: rank 3 stalls mid-step-1; the barrier deadline is
        // generous, so every peer just waits the delay out.
        comm::FaultSpec delay;
        delay.rank = kStragglerRank;
        delay.call_index = calls_per_step + 2;
        delay.kind = comm::FaultKind::kDelay;
        delay.delay = straggler_delay;
        injector.Arm(delay);
        // Kill: rank 5 dies on the first collective of step 2 (before the
        // step mutates any state), marked transient so the retry loop
        // recovers it.
        comm::FaultSpec kill;
        kill.rank = kVictimRank;
        kill.call_index = calls_per_step * kKillStep;
        kill.kind = comm::FaultKind::kKill;
        kill.transient = true;
        injector.Arm(kill);
    }

    comm::ThreadedWorld::Options world_options;
    world_options.injector = &injector;
    world_options.barrier_timeout = milliseconds(30000);

    core::DistributedOptions trainer_options;
    trainer_options.max_step_retries = 2;
    trainer_options.retry_backoff = milliseconds(1);
    trainer_options.recover_timeout = milliseconds(10000);

    // ---- the faulted run -----------------------------------------------
    std::vector<RankReport> reports(kWorkers);
    comm::ThreadedWorld::Run(
        kWorkers, world_options, [&](int rank, comm::ProcessGroup& pg) {
            const auto start = std::chrono::steady_clock::now();
            core::DistributedDlrm trainer(model, plan, pg,
                                          trainer_options);
            data::SyntheticCtrDataset dataset(MakeDataConfig(model));
            RankReport& report = reports[rank];
            for (int step = 0; step < kSteps; step++) {
                const data::Batch local = LocalSlice(
                    dataset.NextBatch(kLocalBatch * kWorkers), rank);
                const core::StepResult result =
                    trainer.TrainStepWithRecovery(local);
                report.attempts += result.attempts;
                report.failures.insert(report.failures.end(),
                                       result.failures.begin(),
                                       result.failures.end());
                if (!result.ok) {
                    break;  // permanent failure: stop this rank's loop
                }
                report.steps_ok++;
                report.final_loss = result.loss;
            }
            report.wall_ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
        });

    // ---- structured report ---------------------------------------------
    std::printf("== micro_fault: %d ranks, %d steps, %llu collective "
                "calls/step ==\n\n",
                kWorkers, kSteps,
                static_cast<unsigned long long>(calls_per_step));

    std::printf("injected faults (fired %zu of %zu armed):\n",
                injector.Fired().size(), injector.Fired().size());
    for (const auto& event : injector.Fired()) {
        std::printf("  rank %d  call #%llu  %s%s\n", event.spec.rank,
                    static_cast<unsigned long long>(event.spec.call_index),
                    comm::FaultKindName(event.spec.kind),
                    event.spec.kind == comm::FaultKind::kDelay
                        ? (" " +
                           std::to_string(event.spec.delay.count()) + "ms")
                              .c_str()
                        : (event.spec.transient ? " (transient)"
                                                : " (permanent)"));
    }
    std::printf("\nper-rank failure/recovery report:\n");
    TablePrinter table({"rank", "steps ok", "attempts", "failures seen",
                        "blamed rank", "recovered", "wall ms"});
    bool all_recovered = true;
    for (int r = 0; r < kWorkers; r++) {
        const RankReport& report = reports[r];
        std::string blamed = "-";
        if (!report.failures.empty()) {
            blamed = std::to_string(report.failures[0].failed_rank);
            for (size_t f = 1; f < report.failures.size(); f++) {
                blamed += "," +
                          std::to_string(report.failures[f].failed_rank);
            }
        }
        const bool recovered = report.steps_ok == kSteps;
        all_recovered = all_recovered && recovered;
        table.Row()
            .Cell(r)
            .Cell(report.steps_ok)
            .Cell(report.attempts)
            .Cell(report.failures.size())
            .Cell(blamed)
            .Cell(recovered ? "yes" : "NO")
            .CellF(report.wall_ms, "%.1f");
    }
    table.Print();

    if (!all_recovered) {
        std::printf("\nFAIL: at least one rank did not recover\n");
        return 1;
    }
    std::printf("\nevery rank blamed rank %d, retried once, and finished "
                "all %d steps; the %lldms straggler on rank %d was "
                "absorbed by the barrier deadline\n",
                kVictimRank, kSteps,
                static_cast<long long>(straggler_delay.count()),
                kStragglerRank);

    // ---- the same degradation on the modeled cluster -------------------
    std::printf("\nmodeled cost of the same faults (64 MB AllReduce, "
                "128 GPUs):\n\n");
    TablePrinter model_table({"fault model", "ms", "bus GB/s"});
    const double bytes = 64e6;
    auto row = [&](const char* label, const sim::FaultModel& faults) {
        sim::CommModel comm_model(sim::ClusterSpec::Prototype(16));
        comm_model.SetFaultModel(faults);
        const sim::CommEstimate est = comm_model.AllReduce(bytes, 128);
        model_table.Row()
            .Cell(label)
            .CellF(est.seconds * 1e3, "%.2f")
            .CellF(est.bus_bandwidth / 1e9, "%.1f");
    };
    row("clean", {});
    {
        sim::FaultModel faults;
        faults.straggler_delay_s = straggler_delay.count() * 1e-3;
        row("straggler 25ms/collective", faults);
    }
    {
        sim::FaultModel faults;
        faults.failure_rate_per_collective = 0.01;
        row("1% aborts + recovery", faults);
    }
    model_table.Print();
    return 0;
}
