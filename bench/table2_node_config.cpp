/**
 * @file
 * Reproduces Table 2: the per-node system configuration of the prototype
 * (HGX-2 class) cluster, printed from the hardware model so any drift
 * between the spec constants and the paper is visible.
 */
#include <cstdio>

#include "common/table_printer.h"
#include "common/units.h"
#include "sim/hardware.h"

int
main()
{
    using namespace neo;
    using namespace neo::sim;

    const NodeSpec node = NodeSpec::Hgx2Prototype();
    const int g = node.gpus_per_node;

    std::printf("== Table 2: per-node system configuration (prototype) "
                "==\n\n");
    TablePrinter table({"Resource", "Model value", "Paper"});
    table.Row()
        .Cell("Compute (FP32 / FP16 TFLOPS)")
        .Cell(std::to_string(static_cast<int>(node.gpu.fp32_tflops * g)) +
              " / " +
              std::to_string(static_cast<int>(node.gpu.fp16_tflops * g)))
        .Cell("120 / 1000");
    table.Row()
        .Cell("HBM capacity")
        .Cell(FormatBytes(node.gpu.hbm_capacity * g))
        .Cell("256 GB");
    table.Row()
        .Cell("HBM bandwidth (peak)")
        .Cell(FormatBandwidth(node.gpu.hbm_peak * g))
        .Cell("7.2 TB/s");
    table.Row()
        .Cell("DDR")
        .Cell(FormatBytes(node.ddr_capacity) + ", " +
              FormatBandwidth(node.ddr_bw))
        .Cell("1.5 TB, 200 GB/s");
    table.Row()
        .Cell("Scale-up BW (uni)")
        .Cell(FormatBandwidth(node.scaleup_bw * g))
        .Cell("1.2 TB/s");
    table.Row()
        .Cell("Scale-out BW (uni)")
        .Cell(FormatBandwidth(node.scaleout_peak * g))
        .Cell("800 Gbps = 100 GB/s");
    table.Row()
        .Cell("Host NW")
        .Cell(FormatBandwidth(node.host_nw))
        .Cell("2 x 100 Gbps");
    table.Print();

    std::printf("\nGPU presets:\n");
    for (const GpuSpec& gpu : {GpuSpec::V100(), GpuSpec::A100()}) {
        std::printf(
            "  %s: %.1f TF/s FP32, %.0f TF/s FP16, HBM %s "
            "(achievable %s), max GEMM eff %.1f%%\n",
            gpu.name.c_str(), gpu.fp32_tflops, gpu.fp16_tflops,
            FormatBandwidth(gpu.hbm_peak).c_str(),
            FormatBandwidth(gpu.hbm_achievable).c_str(),
            gpu.gemm_efficiency * 100.0);
    }
    return 0;
}
