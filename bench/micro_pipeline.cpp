/**
 * @file
 * Critical-path microbenchmark for the two overlap mechanisms of
 * Sec. 4.3/4.4: inter-batch input-AllToAll pipelining and async
 * double-buffered checkpointing. Runs the same 2-rank training-with-
 * checkpoints loop two ways —
 *
 *   sync:    unpipelined TrainStep + blocking WriteDelta every step
 *   overlap: overlapped PipelinedTrainer (prepare on a second
 *            communicator + dedicated lane) + AsyncCheckpointer
 *
 * — and fails unless every per-step loss is bit-identical and the two
 * checkpoint stores are byte-identical (taking work off the critical
 * path must not change what is computed or persisted). The overlapped
 * run is traced; StepBreakdown::FromSpans attributes background-thread
 * time that coincides with step windows as overlap_saved, which is
 * diffed against the sim::IterationModel's Eq.-1 prediction for the
 * same workload (overlap_input_comm + async_checkpoint knobs). Even on
 * a single CI core the span timeline shows the prepare/flush work
 * scheduled off the step thread, so measured overlap_saved stays > 0.
 *
 * Usage: micro_pipeline [--quick] [--out=PATH] [--trace-out=PATH]
 *   --quick      fewer steps / smaller model (smoke-test mode)
 *   --out        JSON output path (default BENCH_overlap.json in cwd)
 *   --trace-out  also write the overlapped run's Chrome trace JSON
 */
#include <algorithm>
#include <chrono>
#include <memory>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "comm/threaded_process_group.h"
#include "core/async_checkpoint.h"
#include "core/checkpoint.h"
#include "core/distributed_trainer.h"
#include "core/dlrm_config.h"
#include "core/pipeline.h"
#include "data/dataset.h"
#include "kernels/kernels.h"
#include "obs/step_breakdown.h"
#include "obs/trace.h"
#include "sharding/planner.h"
#include "sim/iteration_model.h"

namespace {

using namespace neo;

constexpr int kWorkers = 2;

data::DatasetConfig
MakeDataConfig(const core::DlrmConfig& model)
{
    data::DatasetConfig config;
    config.num_dense = model.num_dense;
    config.seed = 99;
    for (const auto& t : model.tables) {
        config.features.push_back({t.rows, t.pooling, 1.05});
    }
    return config;
}

data::Batch
Slice(const data::Batch& global, int rank, size_t local_batch)
{
    const size_t begin = rank * local_batch;
    data::Batch local;
    local.dense = Matrix(local_batch, global.dense.cols());
    for (size_t b = 0; b < local_batch; b++) {
        for (size_t c = 0; c < global.dense.cols(); c++) {
            local.dense(b, c) = global.dense(begin + b, c);
        }
    }
    local.sparse = global.sparse.SliceBatch(begin, begin + local_batch);
    local.labels.assign(global.labels.begin() + begin,
                        global.labels.begin() + begin + local_batch);
    return local;
}

struct RunResult {
    double seconds = 0.0;  ///< wall-clock of the whole training loop
    /** losses[rank][step] */
    std::vector<std::vector<double>> losses;
};

/** Baseline: unpipelined steps, blocking delta write after each. */
RunResult
RunSync(const core::DlrmConfig& model, const sharding::ShardingPlan& plan,
        size_t local_batch, int steps, core::CheckpointStore& store)
{
    RunResult result;
    result.losses.assign(kWorkers, {});
    const auto start = std::chrono::steady_clock::now();
    comm::ThreadedWorld::Run(kWorkers, [&](int rank,
                                           comm::ProcessGroup& pg) {
        core::DistributedDlrm trainer(model, plan, pg);
        core::DistributedCheckpointer checkpointer(trainer, store);
        data::SyntheticCtrDataset dataset(MakeDataConfig(model));
        checkpointer.WriteBaseline();
        for (int s = 0; s < steps; s++) {
            const data::Batch local = Slice(
                dataset.NextBatch(local_batch * kWorkers), rank,
                local_batch);
            result.losses[rank].push_back(trainer.TrainStep(local));
            checkpointer.WriteDelta();
        }
    });
    result.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return result;
}

/** Overlapped pipeline + async double-buffered checkpointing. */
RunResult
RunOverlapped(const core::DlrmConfig& model,
              const sharding::ShardingPlan& plan, size_t local_batch,
              int steps, core::CheckpointStore& store)
{
    RunResult result;
    result.losses.assign(kWorkers, {});
    comm::ThreadedWorld prepare_world(kWorkers);
    const auto start = std::chrono::steady_clock::now();
    comm::ThreadedWorld::Run(kWorkers, [&](int rank,
                                           comm::ProcessGroup& pg) {
        core::DistributedDlrm trainer(model, plan, pg);
        core::PipelinedTrainer pipeline(trainer,
                                        prepare_world.GetGroup(rank));
        core::DistributedCheckpointer checkpointer(trainer, store);
        core::AsyncCheckpointer async(checkpointer, rank);
        data::SyntheticCtrDataset dataset(MakeDataConfig(model));
        async.WriteBaseline();
        for (int s = 0; s < steps; s++) {
            const data::Batch local = Slice(
                dataset.NextBatch(local_batch * kWorkers), rank,
                local_batch);
            if (auto loss = pipeline.Push(local)) {
                result.losses[rank].push_back(*loss);
                async.WriteDelta();
            }
        }
        if (auto loss = pipeline.Flush()) {
            result.losses[rank].push_back(*loss);
            async.WriteDelta();
        }
        async.Flush();
    });
    result.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return result;
}

/**
 * Best wall-clock over `reps` fresh runs. Each rep gets a fresh store
 * and an empty trace buffer; the surviving store/trace are the last
 * rep's, which deterministic training makes identical to any rep's
 * (Clear is safe here: the world joined).
 */
template <typename Fn>
RunResult
BestOf(int reps, std::unique_ptr<core::CheckpointStore>& store_out,
       const Fn& run)
{
    RunResult best;
    best.seconds = 1e30;
    for (int r = 0; r < reps; r++) {
        store_out = std::make_unique<core::CheckpointStore>();
        obs::Tracer::Get().Clear();
        RunResult run_result = run(*store_out);
        if (run_result.seconds < best.seconds) {
            best = std::move(run_result);
        }
    }
    return best;
}

bool
StoresByteIdentical(const core::CheckpointStore& a,
                    const core::CheckpointStore& b)
{
    if (a.Ranks() != b.Ranks()) {
        return false;
    }
    for (const int rank : a.Ranks()) {
        if (a.Baseline(rank) != b.Baseline(rank) ||
            a.Deltas(rank) != b.Deltas(rank)) {
            return false;
        }
    }
    return true;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    std::string out_path = "BENCH_overlap.json";
    std::string trace_out;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
            out_path = argv[i] + 6;
        } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
            trace_out = argv[i] + 12;
        } else {
            std::fprintf(stderr, "unknown flag %s\n", argv[i]);
            return 2;
        }
    }

    const int steps = quick ? 6 : 30;
    const int reps = quick ? 2 : 5;
    const size_t local_batch = quick ? 16 : 64;
    const core::DlrmConfig model = quick
        ? core::MakeSmallDlrmConfig(4, 200, 8)
        : core::MakeSmallDlrmConfig(8, 4000, 32);

    sharding::PlannerOptions planner_options;
    planner_options.topo.num_workers = kWorkers;
    planner_options.topo.workers_per_node = kWorkers;
    planner_options.global_batch = local_batch * kWorkers;
    planner_options.hbm_bytes_per_worker = 1e12;
    const sharding::ShardingPlan plan =
        sharding::ShardingPlanner(planner_options).Plan(model.tables);

    // ---- measured: sync baseline (untraced), then overlapped (traced)
    obs::Tracer::Get().SetEnabled(false);
    obs::Tracer::Get().Clear();
    std::unique_ptr<core::CheckpointStore> sync_store;
    const RunResult sync_run =
        BestOf(reps, sync_store, [&](core::CheckpointStore& store) {
            return RunSync(model, plan, local_batch, steps, store);
        });

    obs::Tracer::Get().SetEnabled(true);
    std::unique_ptr<core::CheckpointStore> overlap_store;
    const RunResult overlap_run =
        BestOf(reps, overlap_store, [&](core::CheckpointStore& store) {
            return RunOverlapped(model, plan, local_batch, steps, store);
        });
    obs::Tracer::Get().SetEnabled(false);

    // ---- correctness gates -------------------------------------------
    bool bit_identical = true;
    for (int r = 0; r < kWorkers; r++) {
        bit_identical &= overlap_run.losses[r] == sync_run.losses[r];
    }
    if (!bit_identical) {
        std::fprintf(stderr,
                     "FAIL: overlap changed the training result\n");
        return 1;
    }
    const bool stores_identical =
        StoresByteIdentical(*sync_store, *overlap_store);
    if (!stores_identical) {
        std::fprintf(stderr,
                     "FAIL: async checkpointing changed the store\n");
        return 1;
    }

    // ---- measured overlap from the span timeline ---------------------
    const std::vector<obs::Span> spans = obs::Tracer::Get().Collect();
    const obs::StepBreakdown measured = obs::StepBreakdown::FromSpans(
        spans, /*rank=*/0, /*step_name=*/"pipeline_step");
    if (measured.overlap_saved <= 0.0) {
        std::fprintf(stderr,
                     "FAIL: no background work coincided with any step "
                     "window — prepare/flush ran on the critical path\n");
        return 1;
    }

    const double sync_step = sync_run.seconds / steps;
    const double overlap_step = overlap_run.seconds / steps;

    // ---- modeled: the same workload through Eq. 1 --------------------
    // The functional run executes on simulated CPU workers, so absolute
    // modeled times differ by construction; the comparison is the SHAPE:
    // which fraction of a step the overlap mechanisms take off the
    // critical path. Checkpoint write bandwidth is calibrated from this
    // very run so the modeled sync-write term matches the measurement.
    sim::WorkloadModel workload;
    workload.name = "micro_pipeline";
    workload.num_tables = static_cast<int>(model.tables.size());
    workload.num_params = model.TotalParams();
    workload.dim_min = model.tables[0].dim;
    workload.dim_max = model.tables[0].dim;
    workload.dim_avg = static_cast<double>(model.EmbeddingDim());
    workload.avg_pooling =
        static_cast<double>(model.tables[0].pooling);
    double flops = 0.0;
    const std::vector<size_t> bottom = model.BottomLayerSizes();
    for (size_t i = 0; i + 1 < bottom.size(); i++) {
        flops += 2.0 * static_cast<double>(bottom[i] * bottom[i + 1]);
    }
    const std::vector<size_t> top = model.TopLayerSizes();
    for (size_t i = 0; i + 1 < top.size(); i++) {
        flops += 2.0 * static_cast<double>(top[i] * top[i + 1]);
    }
    workload.mflops_per_sample = flops / 1e6;
    workload.num_mlp_layers =
        static_cast<int>(bottom.size() + top.size() - 2);
    workload.avg_mlp_size = static_cast<double>(model.EmbeddingDim());

    const double delta_bytes_per_step =
        static_cast<double>(sync_store->TotalBytes()) / (kWorkers * steps);
    sim::TrainingSetup setup;
    setup.cluster = sim::ClusterSpec::Prototype(1);
    setup.num_gpus = kWorkers;
    setup.per_gpu_batch = static_cast<int64_t>(local_batch);
    setup.imbalance = plan.balance.imbalance;
    setup.checkpoint_bytes = delta_bytes_per_step;

    sim::FaultModel faults;
    faults.checkpoint_write_Bps =
        delta_bytes_per_step * steps * kWorkers / sync_run.seconds;

    sim::TrainingSetup sync_setup = setup;
    sim::IterationModel sync_model(workload, sync_setup);
    sync_model.SetFaultModel(faults);
    const sim::IterationBreakdown modeled_sync = sync_model.Estimate();

    sim::TrainingSetup overlap_setup = setup;
    overlap_setup.overlap_input_comm = true;
    overlap_setup.async_checkpoint = true;
    sim::IterationModel overlap_model(workload, overlap_setup);
    overlap_model.SetFaultModel(faults);
    const sim::IterationBreakdown modeled_overlap =
        overlap_model.Estimate();

    const double measured_saved_frac =
        measured.overlap_saved / overlap_step;
    const double modeled_saved_frac =
        modeled_overlap.total > 0.0
            ? modeled_overlap.overlap_saved / modeled_overlap.total
            : 0.0;

    // ---- report ------------------------------------------------------
    std::printf("== micro_pipeline: critical-path overlap "
                "(%d steps, best of %d) ==\n\n",
                steps, reps);
    std::printf("sync (unpipelined + blocking ckpt): %.3f ms/step\n",
                sync_step * 1e3);
    std::printf("overlapped (pipeline + async ckpt): %.3f ms/step "
                "(%+.2f%%)\n",
                overlap_step * 1e3,
                (overlap_step - sync_step) / sync_step * 100.0);
    std::printf("losses bit-identical: %s; stores byte-identical: %s\n",
                bit_identical ? "yes" : "NO",
                stores_identical ? "yes" : "NO");
    std::printf("measured overlap_saved: %.3f ms/step (%.1f%% of step)\n",
                measured.overlap_saved * 1e3,
                measured_saved_frac * 100.0);
    std::printf("modeled  overlap_saved: %.3f ms/step (%.1f%% of step, "
                "A100 prototype)\n\n",
                modeled_overlap.overlap_saved * 1e3,
                modeled_saved_frac * 100.0);
    std::printf("measured (CPU workers) vs. modeled (overlap on):\n\n%s\n",
                obs::StepBreakdown::DiffTable(
                    measured,
                    obs::StepBreakdown::FromModel(modeled_overlap))
                    .c_str());

    if (!trace_out.empty()) {
        if (!obs::Tracer::Get().WriteChromeJson(trace_out)) {
            std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
            return 1;
        }
        std::printf("wrote %s\n", trace_out.c_str());
    }

    FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"micro_pipeline\",\n");
    std::fprintf(f, "  \"kernel_tier\": \"%s\",\n",
                 neo::kernels::TierName(neo::kernels::ActiveTier()));
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"steps\": %d,\n", steps);
    std::fprintf(f, "  \"workers\": %d,\n", kWorkers);
    std::fprintf(f, "  \"sync_step_seconds\": %.6f,\n", sync_step);
    std::fprintf(f, "  \"overlap_step_seconds\": %.6f,\n", overlap_step);
    std::fprintf(f, "  \"measured_overlap_saved_seconds\": %.6f,\n",
                 measured.overlap_saved);
    std::fprintf(f, "  \"measured_overlap_saved_fraction\": %.6f,\n",
                 measured_saved_frac);
    std::fprintf(f, "  \"modeled_sync_step_seconds\": %.6f,\n",
                 modeled_sync.total);
    std::fprintf(f, "  \"modeled_overlap_step_seconds\": %.6f,\n",
                 modeled_overlap.total);
    std::fprintf(f, "  \"modeled_overlap_saved_seconds\": %.6f,\n",
                 modeled_overlap.overlap_saved);
    std::fprintf(f, "  \"modeled_overlap_saved_fraction\": %.6f,\n",
                 modeled_saved_frac);
    std::fprintf(f, "  \"checkpoint_bytes_per_step\": %.0f,\n",
                 delta_bytes_per_step);
    std::fprintf(f, "  \"breakdown_coverage\": %.6f,\n",
                 measured.Coverage());
    std::fprintf(f, "  \"stores_byte_identical\": %s,\n",
                 stores_identical ? "true" : "false");
    std::fprintf(f, "  \"bit_identical\": %s\n",
                 bit_identical ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
