/**
 * @file
 * Reproduces Table 4 (achieved training throughput): QPS for model A1 on
 * 16 and 128 GPUs and for A2/A3/F1 on 128 GPUs, using the Eq. 1 iteration
 * model with the load imbalance produced by the actual sharding planner.
 * Also reports the Sec. 5.3 comparisons against the CPU parameter-server
 * baseline (3x at 16 GPUs; ~40x time-to-solution).
 */
#include <cstdio>

#include "common/table_printer.h"
#include "common/units.h"
#include "sim/capacity_model.h"
#include "sim/iteration_model.h"
#include "sim/plan_bridge.h"

namespace {

using namespace neo;
using namespace neo::sim;

/** Build the training setup used throughout Sec. 5.3. */
TrainingSetup
MakeSetup(const WorkloadModel& workload, int num_gpus)
{
    TrainingSetup setup;
    setup.cluster = ClusterSpec::Prototype((num_gpus + 7) / 8);
    setup.num_gpus = num_gpus;
    setup.per_gpu_batch = 512;  // 64K global at 128 GPUs

    // The optimized configurations of Sec. 5.3.2: FP16 embedding storage
    // (headroom for the sharder) and quantized AllToAll.
    setup.emb_precision = Precision::kFp16;
    setup.fwd_comm = Precision::kFp16;
    setup.bwd_comm = Precision::kBf16;

    // Run the real planner to get the residual load imbalance. Models
    // that spill past aggregate HBM (F1) plan against HBM + a DDR share
    // behind the software cache (Sec. 5.3.3: UVM + HBM as cache).
    PlanStudyOptions plan_options;
    plan_options.num_gpus = num_gpus;
    plan_options.global_batch = setup.GlobalBatch();
    plan_options.emb_precision = Precision::kFp16;
    plan_options.optimized_sharding = true;
    const CapacityEstimate capacity = EstimateCapacity(
        workload, setup.cluster, setup.emb_precision,
        /*rowwise_adagrad=*/true, workload.dim_avg);
    if (!capacity.fits_hbm) {
        plan_options.extra_capacity_per_gpu =
            setup.cluster.node.ddr_capacity /
            setup.cluster.node.gpus_per_node;
        setup.hbm_hit_rate = 0.6;
    }
    const PlanStudyResult plan =
        PlanForWorkload(workload, setup.cluster, plan_options);
    setup.imbalance = plan.feasible ? plan.imbalance : 2.0;
    setup.rw_dim_sum = plan.max_rw_dim_sum;
    return setup;
}

double
EstimateQps(const WorkloadModel& workload, int num_gpus)
{
    const TrainingSetup setup = MakeSetup(workload, num_gpus);
    return IterationModel(workload, setup).Estimate().qps;
}

}  // namespace

int
main()
{
    std::printf("== Table 4: achieved training throughput (QPS) ==\n");
    std::printf("paper: A1@16=273K  A1@128=1047K  A2@128=622K  "
                "A3@128=360K  F1@128=970K\n\n");

    TablePrinter table({"Model", "GPUs", "QPS (model)", "QPS (paper)",
                        "ratio"});
    struct Row {
        const char* name;
        WorkloadModel workload;
        int gpus;
        double paper_qps;
    };
    const Row rows[] = {
        {"A1", WorkloadModel::A1(), 16, 273e3},
        {"A1", WorkloadModel::A1(), 128, 1047e3},
        {"A2", WorkloadModel::A2(), 128, 622e3},
        {"A3", WorkloadModel::A3(), 128, 360e3},
        {"F1", WorkloadModel::F1(), 128, 970e3},
    };
    for (const Row& row : rows) {
        const double qps = EstimateQps(row.workload, row.gpus);
        table.Row()
            .Cell(row.name)
            .Cell(row.gpus)
            .Cell(FormatCount(qps))
            .Cell(FormatCount(row.paper_qps))
            .CellF(qps / row.paper_qps, "%.2f");
    }
    table.Print();

    // -- Sec. 5.3 baseline comparisons ---------------------------------
    const PsBaselineModel ps(WorkloadModel::A1());
    const double a1_16 = EstimateQps(WorkloadModel::A1(), 16);
    const double a1_128 = EstimateQps(WorkloadModel::A1(), 128);
    std::printf("\n== Sec 5.3: vs CPU parameter-server baseline (A1) ==\n");
    std::printf("CPU PS @16 trainers:        %s QPS\n",
                FormatCount(ps.QpsAtTrainers(16)).c_str());
    std::printf("16-GPU speedup:             %.1fx (paper: ~3x)\n",
                a1_16 / ps.QpsAtTrainers(16));
    std::printf("CPU quality-neutral ceiling: %s QPS\n",
                FormatCount(ps.MaxQualityNeutralQps()).c_str());
    std::printf("128-GPU throughput ratio:    %.1fx\n",
                a1_128 / ps.MaxQualityNeutralQps());
    std::printf("time-to-solution speedup:    %.0fx (paper: 40x; includes "
                "%.1fx statistical-efficiency gap of async training)\n",
                ps.TimeToSolutionSpeedup(a1_128),
                ps.SampleInflationFactor());
    return 0;
}
