/**
 * @file
 * SIMD-tier sweep for the pooled embedding path: times the fused
 * multi-table forward (fp32 and fp16 row storage), the fused
 * backward+exact-optimizer update, and the fp16 dequantize kernel once
 * per supported tier, reporting gather GB/s and speedup over the scalar
 * reference. Every timed run is checked bit-for-bit against the
 * scalar-tier result, so the file doubles as a record of the cross-tier
 * determinism contract (DESIGN.md §4h).
 *
 * Usage: micro_embedding [--quick] [--out=PATH]
 *   --quick  small shapes (smoke-test mode)
 *   --out    JSON output path (default BENCH_kernels_embedding.json)
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/cpu_features.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "kernels/kernels.h"
#include "ops/embedding_bag.h"

namespace {

using namespace neo;
using namespace neo::ops;

struct TierResult {
    kernels::Tier tier;
    double seconds;
    double gbps;
    bool bit_identical;
};

struct WorkloadResult {
    std::string name;
    std::string shape;
    std::vector<TierResult> results;
};

/** Best-of-reps wall time for fn(). */
template <typename F>
double
TimeBest(int reps, F&& fn)
{
    double best = 1e30;
    for (int r = 0; r < reps; r++) {
        const auto start = std::chrono::steady_clock::now();
        fn();
        const auto end = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(end - start).count());
    }
    return best;
}

struct EmbSetup {
    std::vector<TableSpec> specs;
    std::vector<std::vector<uint32_t>> lengths;
    std::vector<std::vector<int64_t>> indices;
    std::vector<TableInput> inputs;
    std::vector<Matrix> grads;
    size_t batch;
    uint32_t pooling;
};

/** Paper-style table mix (Fig. 18 config, scaled to the host). */
EmbSetup
MakeEmbSetup(bool quick, Precision precision)
{
    EmbSetup s;
    const int64_t num_tables = quick ? 4 : 16;
    const int64_t rows = quick ? 5000 : 100000;
    const int64_t dim = quick ? 32 : 128;
    s.pooling = quick ? 8 : 32;
    s.batch = quick ? 128 : 2048;
    s.specs.assign(static_cast<size_t>(num_tables), {rows, dim, precision});
    Rng rng(13);
    ZipfSampler sampler(static_cast<uint64_t>(rows), 1.05);
    s.lengths.resize(s.specs.size());
    s.indices.resize(s.specs.size());
    for (size_t t = 0; t < s.specs.size(); t++) {
        s.lengths[t].assign(s.batch, s.pooling);
        s.indices[t].resize(s.batch * s.pooling);
        for (auto& idx : s.indices[t]) {
            idx = static_cast<int64_t>(sampler.Sample(rng));
        }
        s.inputs.push_back({s.lengths[t], s.indices[t]});
        Matrix g(s.batch, static_cast<size_t>(dim));
        g.InitUniform(rng, -0.01f, 0.01f);
        s.grads.push_back(std::move(g));
    }
    return s;
}

std::string
ShapeString(const EmbSetup& s)
{
    return std::to_string(s.specs.size()) + "tables x " +
           std::to_string(s.specs[0].rows) + "rows x d" +
           std::to_string(s.specs[0].dim) + ", batch " +
           std::to_string(s.batch) + ", pool " + std::to_string(s.pooling);
}

/** Bytes gathered from row storage per forward pass. */
double
GatherBytes(const EmbSetup& s)
{
    return static_cast<double>(s.specs.size()) * s.batch * s.pooling *
           static_cast<double>(s.specs[0].dim) *
           static_cast<double>(BytesPerElement(s.specs[0].precision));
}

WorkloadResult
BenchForward(const EmbSetup& s, int reps, const char* name)
{
    SparseOptimizerConfig opt;
    const EmbeddingBagCollection ebc(s.specs, opt, 7);

    WorkloadResult out;
    out.name = name;
    out.shape = ShapeString(s);
    std::vector<Matrix> outputs;
    std::vector<Matrix> reference;
    kernels::SetTier(kernels::Tier::kScalar);
    ebc.Forward(s.inputs, s.batch, reference);

    const double bytes = GatherBytes(s);
    for (kernels::Tier tier : kernels::SupportedTiers()) {
        kernels::SetTier(tier);
        ebc.Forward(s.inputs, s.batch, outputs);  // warm up + comparison
        bool identical = true;
        for (size_t t = 0; t < outputs.size(); t++) {
            identical =
                identical && Matrix::Identical(reference[t], outputs[t]);
        }
        const double secs =
            TimeBest(reps, [&] { ebc.Forward(s.inputs, s.batch, outputs); });
        out.results.push_back({tier, secs, bytes / secs / 1e9, identical});
    }
    return out;
}

WorkloadResult
BenchBackwardFused(const EmbSetup& s, int reps)
{
    SparseOptimizerConfig opt;  // row-wise AdaGrad default

    WorkloadResult out;
    out.name = "backward_fused_rowwise_adagrad";
    out.shape = ShapeString(s);

    // The update mutates table state, so determinism is checked on the
    // final parameters after a fixed number of steps; timing then reuses
    // the same collection (state growth does not change the work shape).
    auto run_steps = [&](EmbeddingBagCollection& ebc) {
        ebc.BackwardAndUpdate(s.inputs, s.batch, s.grads);
    };
    kernels::SetTier(kernels::Tier::kScalar);
    EmbeddingBagCollection reference(s.specs, opt, 7);
    run_steps(reference);

    const double bytes = GatherBytes(s);
    for (kernels::Tier tier : kernels::SupportedTiers()) {
        kernels::SetTier(tier);
        EmbeddingBagCollection check(s.specs, opt, 7);
        run_steps(check);
        bool identical = true;
        for (size_t t = 0; t < s.specs.size(); t++) {
            identical = identical && EmbeddingTable::Identical(
                                         reference.table(t), check.table(t));
        }
        EmbeddingBagCollection timed(s.specs, opt, 7);
        const double secs = TimeBest(reps, [&] { run_steps(timed); });
        out.results.push_back({tier, secs, bytes / secs / 1e9, identical});
    }
    return out;
}

WorkloadResult
BenchDequantF16(bool quick, int reps)
{
    const size_t n = quick ? (1u << 16) : (1u << 24);
    std::vector<uint16_t> in(n);
    Rng rng(29);
    for (auto& h : in) {
        h = detail::FloatToHalfBits(rng.NextUniform(-4.0f, 4.0f));
    }
    std::vector<float> out_f(n);

    WorkloadResult out;
    out.name = "dequant_f16";
    out.shape = std::to_string(n) + " halfs";
    kernels::TableFor(kernels::Tier::kScalar)
        .dequant_f16(in.data(), out_f.data(), n);
    const std::vector<float> reference = out_f;

    // Bytes moved: 2 in + 4 out per element.
    const double bytes = static_cast<double>(n) * 6.0;
    for (kernels::Tier tier : kernels::SupportedTiers()) {
        const kernels::KernelTable& kt = kernels::TableFor(tier);
        kt.dequant_f16(in.data(), out_f.data(), n);
        const bool identical =
            std::memcmp(out_f.data(), reference.data(),
                        n * sizeof(float)) == 0;
        const double secs = TimeBest(
            reps, [&] { kt.dequant_f16(in.data(), out_f.data(), n); });
        out.results.push_back({tier, secs, bytes / secs / 1e9, identical});
    }
    return out;
}

void
PrintAndWrite(const std::vector<WorkloadResult>& workloads, bool quick,
              const std::string& out_path)
{
    for (const auto& w : workloads) {
        std::printf("== %s (%s) ==\n\n", w.name.c_str(), w.shape.c_str());
        TablePrinter table(
            {"tier", "seconds", "GB/s", "vs scalar", "bit-identical"});
        const double base = w.results.front().seconds;
        for (const auto& r : w.results) {
            table.Row()
                .Cell(kernels::TierName(r.tier))
                .CellF(r.seconds, "%.5f")
                .CellF(r.gbps, "%.2f")
                .CellF(base / r.seconds, "%.2f")
                .Cell(r.bit_identical ? "yes" : "NO");
        }
        table.Print();
        std::printf("\n");
    }

    FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"micro_embedding\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"cpu_features\": \"%s\",\n",
                 CpuFeatures::Host().ToString().c_str());
    std::fprintf(f, "  \"default_tier\": \"%s\",\n",
                 kernels::TierName(kernels::SupportedTiers().back()));
    std::fprintf(f, "  \"workloads\": [\n");
    for (size_t i = 0; i < workloads.size(); i++) {
        const auto& w = workloads[i];
        std::fprintf(f, "    {\n      \"name\": \"%s\",\n", w.name.c_str());
        std::fprintf(f, "      \"shape\": \"%s\",\n", w.shape.c_str());
        std::fprintf(f, "      \"tiers\": [\n");
        const double base = w.results.front().seconds;
        for (size_t j = 0; j < w.results.size(); j++) {
            const auto& r = w.results[j];
            std::fprintf(
                f,
                "        {\"tier\": \"%s\", \"seconds\": %.6f, "
                "\"gbps\": %.3f, \"speedup_vs_scalar\": %.3f, "
                "\"bit_identical\": %s}%s\n",
                kernels::TierName(r.tier), r.seconds, r.gbps,
                base / r.seconds, r.bit_identical ? "true" : "false",
                j + 1 < w.results.size() ? "," : "");
        }
        std::fprintf(f, "      ]\n    }%s\n",
                     i + 1 < workloads.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    std::string out_path = "BENCH_kernels_embedding.json";
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
            out_path = argv[i] + 6;
        } else {
            std::fprintf(stderr, "usage: %s [--quick] [--out=PATH]\n",
                         argv[0]);
            return 2;
        }
    }

    const int reps = quick ? 2 : 5;
    const EmbSetup fp32 = MakeEmbSetup(quick, Precision::kFp32);
    const EmbSetup fp16 = MakeEmbSetup(quick, Precision::kFp16);
    std::vector<WorkloadResult> workloads;
    workloads.push_back(BenchForward(fp32, reps, "forward_fp32"));
    workloads.push_back(BenchForward(fp16, reps, "forward_fp16"));
    workloads.push_back(BenchBackwardFused(fp32, reps));
    workloads.push_back(BenchDequantF16(quick, reps));
    PrintAndWrite(workloads, quick, out_path);

    // Non-zero exit if any tier diverged from the scalar reference, so
    // the smoke test doubles as a cross-tier determinism check.
    for (const auto& w : workloads) {
        for (const auto& r : w.results) {
            if (!r.bit_identical) {
                return 1;
            }
        }
    }
    return 0;
}
