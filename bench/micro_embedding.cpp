/**
 * @file
 * Micro-benchmarks for the embedding operators: fused multi-table pooled
 * lookup, the exact (sort-merge) vs naive sparse-update paths, and the
 * per-optimizer update cost.
 */
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "ops/embedding_bag.h"

namespace {

using namespace neo;
using namespace neo::ops;

struct Workload {
    std::vector<std::vector<uint32_t>> lengths;
    std::vector<std::vector<int64_t>> indices;
    std::vector<TableInput> inputs;
    std::vector<Matrix> grads;
    size_t batch;
};

Workload
MakeWorkload(size_t num_tables, int64_t rows, int64_t dim, size_t batch,
             uint32_t pooling, double zipf_s)
{
    Workload w;
    w.batch = batch;
    Rng rng(17);
    ZipfSampler sampler(static_cast<uint64_t>(rows), zipf_s);
    w.lengths.resize(num_tables);
    w.indices.resize(num_tables);
    for (size_t t = 0; t < num_tables; t++) {
        w.lengths[t].assign(batch, pooling);
        w.indices[t].resize(batch * pooling);
        for (auto& idx : w.indices[t]) {
            idx = static_cast<int64_t>(sampler.Sample(rng));
        }
        w.inputs.push_back({w.lengths[t], w.indices[t]});
        Matrix g(batch, static_cast<size_t>(dim));
        g.InitUniform(rng, -0.01f, 0.01f);
        w.grads.push_back(std::move(g));
    }
    return w;
}

void
BM_FusedLookupForward(benchmark::State& state)
{
    const size_t num_tables = static_cast<size_t>(state.range(0));
    const size_t batch = static_cast<size_t>(state.range(1));
    const int64_t rows = 100000, dim = 64;
    std::vector<TableSpec> specs(num_tables, {rows, dim, Precision::kFp32});
    EmbeddingBagCollection ebc(specs, {}, 7);
    Workload w = MakeWorkload(num_tables, rows, dim, batch, 16, 1.05);
    std::vector<Matrix> out;
    for (auto _ : state) {
        ebc.Forward(w.inputs, batch, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * num_tables * batch * 16 *
        dim * 4);
}
BENCHMARK(BM_FusedLookupForward)
    ->Args({4, 256})
    ->Args({16, 256})
    ->Args({64, 256})
    ->Args({16, 1024});

void
BM_ExactSparseUpdate(benchmark::State& state)
{
    const SparseOptimizerKind kind =
        static_cast<SparseOptimizerKind>(state.range(0));
    const int64_t rows = 100000, dim = 64;
    const size_t batch = 512;
    std::vector<TableSpec> specs(1, {rows, dim, Precision::kFp32});
    SparseOptimizerConfig config;
    config.kind = kind;
    EmbeddingBagCollection ebc(specs, config, 7);
    Workload w = MakeWorkload(1, rows, dim, batch, 16, 1.05);
    for (auto _ : state) {
        ebc.BackwardAndUpdate(w.inputs, batch, w.grads);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            batch * 16);
    state.SetLabel(SparseOptimizerKindName(kind));
}
BENCHMARK(BM_ExactSparseUpdate)
    ->Arg(static_cast<int>(SparseOptimizerKind::kSgd))
    ->Arg(static_cast<int>(SparseOptimizerKind::kAdaGrad))
    ->Arg(static_cast<int>(SparseOptimizerKind::kRowWiseAdaGrad))
    ->Arg(static_cast<int>(SparseOptimizerKind::kAdam));

void
BM_NaiveSparseUpdate(benchmark::State& state)
{
    const int64_t rows = 100000, dim = 64;
    const size_t batch = 512;
    std::vector<TableSpec> specs(1, {rows, dim, Precision::kFp32});
    SparseOptimizerConfig config;
    config.kind = SparseOptimizerKind::kRowWiseAdaGrad;
    EmbeddingBagCollection ebc(specs, config, 7);
    Workload w = MakeWorkload(1, rows, dim, batch, 16, 1.05);
    for (auto _ : state) {
        ebc.BackwardAndUpdateNaive(w.inputs, batch, w.grads);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            batch * 16);
}
BENCHMARK(BM_NaiveSparseUpdate);

void
BM_Fp16LookupForward(benchmark::State& state)
{
    const size_t num_tables = 16;
    const size_t batch = 256;
    const int64_t rows = 100000, dim = 64;
    std::vector<TableSpec> specs(num_tables, {rows, dim, Precision::kFp16});
    EmbeddingBagCollection ebc(specs, {}, 7);
    Workload w = MakeWorkload(num_tables, rows, dim, batch, 16, 1.05);
    std::vector<Matrix> out;
    for (auto _ : state) {
        ebc.Forward(w.inputs, batch, out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_Fp16LookupForward);

}  // namespace

BENCHMARK_MAIN();
