/**
 * @file
 * Micro-benchmarks for the threaded collective backend: AllReduce,
 * AllToAll and their quantized variants across world sizes and payloads.
 */
#include <benchmark/benchmark.h>

#include "comm/quantized.h"
#include "comm/threaded_process_group.h"
#include "common/rng.h"

namespace {

using namespace neo;
using namespace neo::comm;

void
BM_AllReduce(benchmark::State& state)
{
    const int world = static_cast<int>(state.range(0));
    const size_t count = static_cast<size_t>(state.range(1));
    for (auto _ : state) {
        ThreadedWorld::Run(world, [&](int rank, ProcessGroup& pg) {
            std::vector<float> buf(count,
                                   static_cast<float>(rank) + 1.0f);
            pg.AllReduceSum(buf.data(), count);
            benchmark::DoNotOptimize(buf.data());
        });
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            world * count * sizeof(float));
}
BENCHMARK(BM_AllReduce)
    ->Args({2, 65536})
    ->Args({4, 65536})
    ->Args({8, 65536})
    ->Args({4, 1048576});

void
BM_AllToAllFloats(benchmark::State& state)
{
    const int world = static_cast<int>(state.range(0));
    const size_t per_peer = static_cast<size_t>(state.range(1));
    for (auto _ : state) {
        ThreadedWorld::Run(world, [&](int rank, ProcessGroup& pg) {
            std::vector<std::vector<float>> send(
                world,
                std::vector<float>(per_peer, static_cast<float>(rank)));
            std::vector<std::vector<float>> recv;
            pg.AllToAllFloats(send, recv);
            benchmark::DoNotOptimize(recv.data());
        });
    }
}
BENCHMARK(BM_AllToAllFloats)->Args({4, 4096})->Args({8, 4096});

void
BM_QuantizedAllToAll(benchmark::State& state)
{
    const Precision precision =
        static_cast<Precision>(state.range(0));
    const int world = 4;
    const size_t per_peer = 16384;
    for (auto _ : state) {
        ThreadedWorld::Run(world, [&](int rank, ProcessGroup& pg) {
            std::vector<std::vector<float>> send(
                world, std::vector<float>(per_peer,
                                          0.5f + static_cast<float>(rank)));
            std::vector<std::vector<float>> recv;
            QuantizedAllToAll(pg, send, recv, precision);
            benchmark::DoNotOptimize(recv.data());
        });
    }
    state.SetLabel(PrecisionName(precision));
}
BENCHMARK(BM_QuantizedAllToAll)
    ->Arg(static_cast<int>(Precision::kFp32))
    ->Arg(static_cast<int>(Precision::kFp16))
    ->Arg(static_cast<int>(Precision::kBf16));

}  // namespace

BENCHMARK_MAIN();
