/**
 * @file
 * Ablation for the exact sparse optimizer (Sec. 4.1.2): exact (sort-merge)
 * vs naive (per-occurrence) updates under duplicate-heavy batches.
 * Demonstrates (1) the naive path is batch-order dependent — permuting
 * samples changes the trained model — while the exact path is bitwise
 * order-invariant, and (2) both converge, so exactness buys determinism
 * at negligible quality cost (the paper's premise for making it the
 * default).
 */
#include <cstdio>

#include "common/table_printer.h"
#include "core/dlrm_config.h"
#include "core/dlrm_reference.h"
#include "data/dataset.h"

namespace {

using namespace neo;

data::DatasetConfig
MakeDataConfig(const core::DlrmConfig& model)
{
    data::DatasetConfig config;
    config.num_dense = model.num_dense;
    config.seed = 5;
    for (const auto& t : model.tables) {
        // Very skewed + heavy pooling: lots of duplicate rows per batch.
        config.features.push_back({t.rows, t.pooling, 1.3});
    }
    return config;
}

/** End-to-end NE of a model trained with the (default) exact path. */
double
TrainedNe(uint64_t data_seed)
{
    core::DlrmConfig model = core::MakeSmallDlrmConfig(3, 100, 16);
    for (auto& t : model.tables) {
        t.pooling = 20.0;  // duplicates dominate small tables
    }
    model.sparse_optimizer.kind = ops::SparseOptimizerKind::kRowWiseAdaGrad;

    core::DlrmReference reference(model);
    data::DatasetConfig config = MakeDataConfig(model);
    config.seed = data_seed;
    data::SyntheticCtrDataset dataset(config);
    for (int s = 0; s < 150; s++) {
        reference.TrainStep(dataset.NextBatch(64));
    }
    data::SyntheticCtrDataset eval(config);
    NormalizedEntropy ne;
    for (int e = 0; e < 6; e++) {
        reference.Evaluate(eval.NextBatch(256), ne);
    }
    return ne.Value();
}

}  // namespace

int
main()
{
    std::printf("== Ablation: exact (sorted/merged) vs naive sparse "
                "updates ==\n\n");

    // ---- operator-level order-invariance --------------------------------
    using namespace ops;
    const int64_t rows = 50, dim = 16;
    Rng rng(17);
    const size_t occurrences = 400;  // ~8 duplicates per row
    std::vector<int64_t> ids(occurrences);
    Matrix grads(occurrences, dim);
    for (size_t i = 0; i < occurrences; i++) {
        ids[i] = static_cast<int64_t>(rng.NextBounded(rows));
        for (int64_t d = 0; d < dim; d++) {
            grads(i, d) = rng.NextUniform(-0.5f, 0.5f);
        }
    }
    auto run = [&](bool exact, bool reversed) {
        SparseOptimizerConfig config;
        config.kind = SparseOptimizerKind::kAdaGrad;
        config.learning_rate = 0.1f;
        EmbeddingTable table(rows, dim);
        table.InitDeterministic(3, 0, 0, dim);
        SparseOptimizer optimizer(config, rows, dim);
        std::vector<SparseGradRef> refs;
        for (size_t i = 0; i < occurrences; i++) {
            const size_t k = reversed ? occurrences - 1 - i : i;
            refs.push_back({ids[k], grads.Row(k)});
        }
        if (exact) {
            optimizer.ApplyExact(table, refs);
        } else {
            optimizer.ApplyNaive(table, refs);
        }
        return table;
    };

    const EmbeddingTable exact_fwd = run(true, false);
    const EmbeddingTable exact_rev = run(true, true);
    const EmbeddingTable naive_fwd = run(false, false);
    const EmbeddingTable naive_rev = run(false, true);

    TablePrinter table({"Path", "order-invariant", "max |fwd - rev|"});
    table.Row()
        .Cell("exact (sort + merge)")
        .Cell(EmbeddingTable::Identical(exact_fwd, exact_rev) ? "yes (bitwise)"
                                                              : "NO")
        .CellF(EmbeddingTable::MaxAbsDiff(exact_fwd, exact_rev), "%.2e");
    table.Row()
        .Cell("naive (per occurrence)")
        .Cell(EmbeddingTable::Identical(naive_fwd, naive_rev) ? "yes"
                                                              : "no")
        .CellF(EmbeddingTable::MaxAbsDiff(naive_fwd, naive_rev), "%.2e");
    table.Print();

    std::printf("\nexact-vs-naive trained weights differ by %.2e (the "
                "merged nonlinearity), but both train: end-to-end NE %.4f "
                "(exact path).\n",
                EmbeddingTable::MaxAbsDiff(exact_fwd, naive_fwd),
                TrainedNe(5));
    std::printf("Deterministic updates are what make bitwise-reproducible "
                "distributed runs possible (Sec. 4.1.2).\n");
    return 0;
}
