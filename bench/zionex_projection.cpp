/**
 * @file
 * ZionEX projection: the paper benchmarks A100 at the node level
 * (Appendix A) because the full ZionEX cluster was still being deployed.
 * This bench projects Table 4 onto a 16-node A100 ZionEX cluster using
 * the same calibrated models — the forward-looking number the paper's
 * co-design argues for.
 */
#include <cstdio>

#include "common/table_printer.h"
#include "common/units.h"
#include "sim/capacity_model.h"
#include "sim/iteration_model.h"
#include "sim/plan_bridge.h"

namespace {

using namespace neo;
using namespace neo::sim;

double
QpsOn(const WorkloadModel& workload, const ClusterSpec& cluster)
{
    TrainingSetup setup;
    setup.cluster = cluster;
    setup.num_gpus = cluster.NumGpus();
    setup.per_gpu_batch = 512;
    setup.emb_precision = Precision::kFp16;
    setup.fwd_comm = Precision::kFp16;
    setup.bwd_comm = Precision::kBf16;

    PlanStudyOptions plan_options;
    plan_options.num_gpus = setup.num_gpus;
    plan_options.global_batch = setup.GlobalBatch();
    plan_options.emb_precision = Precision::kFp16;
    const CapacityEstimate capacity =
        EstimateCapacity(workload, cluster, Precision::kFp16, true,
                         workload.dim_avg);
    if (!capacity.fits_hbm) {
        plan_options.extra_capacity_per_gpu =
            cluster.node.ddr_capacity / cluster.node.gpus_per_node;
        setup.hbm_hit_rate = 0.6;
    }
    const PlanStudyResult plan =
        PlanForWorkload(workload, cluster, plan_options);
    setup.imbalance = plan.feasible ? plan.imbalance : 2.0;
    setup.rw_dim_sum = plan.max_rw_dim_sum;
    return IterationModel(workload, setup).Estimate().qps;
}

}  // namespace

int
main()
{
    ClusterSpec v100_cluster = ClusterSpec::Prototype(16);
    ClusterSpec zionex_cluster;
    zionex_cluster.node = NodeSpec::ZionEx();  // A100s
    zionex_cluster.num_nodes = 16;

    std::printf("== Projection: prototype (V100) vs ZionEX (A100), 128 "
                "GPUs ==\n\n");
    TablePrinter table({"Model", "V100 proto QPS", "ZionEX A100 QPS",
                        "speedup"});
    for (const WorkloadModel& workload : WorkloadModel::All()) {
        const double v100 = QpsOn(workload, v100_cluster);
        const double a100 = QpsOn(workload, zionex_cluster);
        table.Row()
            .Cell(workload.name)
            .Cell(FormatCount(v100))
            .Cell(FormatCount(a100))
            .CellF(a100 / v100, "%.2fx");
    }
    table.Print();
    std::printf("\nA100 helps compute-bound models (A2/A3: bigger FLOPs and "
                "HBM) more than AllToAll-bound ones (same RoCE fabric).\n");
    return 0;
}
