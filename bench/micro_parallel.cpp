/**
 * @file
 * Intra-op parallelism sweep: times GEMM, fused embedding forward, and
 * fused backward+exact-optimizer at several default-pool thread counts and
 * emits BENCH_parallel.json with the speedup curves. Each timed run is
 * also checked bit-for-bit against the 1-thread result, so the file doubles
 * as a determinism record.
 *
 * Usage: micro_parallel [--quick] [--out=PATH]
 *   --quick  small shapes (smoke-test mode)
 *   --out    JSON output path (default BENCH_parallel.json in the cwd)
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel_for.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "kernels/kernels.h"
#include "ops/embedding_bag.h"
#include "tensor/gemm.h"

namespace {

using namespace neo;

struct RunResult {
    size_t threads;
    double seconds;
    bool bit_identical;
};

struct WorkloadResult {
    std::string name;
    std::string shape;
    std::vector<RunResult> results;
};

std::vector<size_t>
ThreadCounts()
{
    std::vector<size_t> counts = {1, 2, 4};
    const size_t hw = std::max(1u, std::thread::hardware_concurrency());
    if (std::find(counts.begin(), counts.end(), hw) == counts.end()) {
        counts.push_back(hw);
    }
    std::sort(counts.begin(), counts.end());
    return counts;
}

/** Best-of-reps wall time for fn(). */
template <typename F>
double
TimeBest(int reps, F&& fn)
{
    double best = 1e30;
    for (int r = 0; r < reps; r++) {
        const auto start = std::chrono::steady_clock::now();
        fn();
        const auto end = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(end - start).count());
    }
    return best;
}

Matrix
RandomMatrix(size_t rows, size_t cols, Rng& rng)
{
    Matrix m(rows, cols);
    for (size_t i = 0; i < m.size(); i++) {
        m.data()[i] = rng.NextFloat() * 2.0f - 1.0f;
    }
    return m;
}

WorkloadResult
BenchGemm(bool quick, int reps)
{
    const size_t dim = quick ? 192 : 1024;
    Rng rng(3);
    const Matrix a = RandomMatrix(dim, dim, rng);
    const Matrix b = RandomMatrix(dim, dim, rng);
    Matrix c(dim, dim);

    WorkloadResult out;
    out.name = "gemm";
    out.shape = std::to_string(dim) + "x" + std::to_string(dim) + "x" +
                std::to_string(dim);
    Matrix reference;
    for (size_t threads : ThreadCounts()) {
        SetDefaultPoolThreads(threads);
        MatMul(a, b, c);  // warm up (and produce the comparison output)
        if (threads == 1) {
            reference = c;
        }
        const double secs = TimeBest(reps, [&] { MatMul(a, b, c); });
        out.results.push_back(
            {threads, secs, Matrix::Identical(reference, c)});
    }
    return out;
}

struct EmbSetup {
    std::vector<ops::TableSpec> specs;
    std::vector<std::vector<uint32_t>> lengths;
    std::vector<std::vector<int64_t>> indices;
    std::vector<ops::TableInput> inputs;
    size_t batch;
};

/** Paper-style table mix (Fig. 18 config, scaled to the host). */
EmbSetup
MakeEmbSetup(bool quick)
{
    EmbSetup s;
    const int64_t num_tables = quick ? 4 : 16;
    const int64_t rows = quick ? 5000 : 100000;
    const int64_t dim = quick ? 32 : 128;
    const uint32_t pooling = quick ? 8 : 32;
    s.batch = quick ? 128 : 2048;
    s.specs.assign(static_cast<size_t>(num_tables),
                   {rows, dim, Precision::kFp32});
    Rng rng(13);
    s.lengths.resize(s.specs.size());
    s.indices.resize(s.specs.size());
    for (size_t t = 0; t < s.specs.size(); t++) {
        s.lengths[t].assign(s.batch, pooling);
        s.indices[t].resize(s.batch * pooling);
        for (auto& idx : s.indices[t]) {
            // Skew toward hot rows so the backward pass sees duplicates.
            const uint64_t r = rng.NextBounded(static_cast<uint64_t>(rows));
            idx = static_cast<int64_t>(r * r / static_cast<uint64_t>(rows));
        }
        s.inputs.push_back({s.lengths[t], s.indices[t]});
    }
    return s;
}

WorkloadResult
BenchEmbForward(const EmbSetup& s, int reps)
{
    ops::SparseOptimizerConfig opt;
    const ops::EmbeddingBagCollection ebc(s.specs, opt, 7);

    WorkloadResult out;
    out.name = "embedding_forward";
    out.shape = std::to_string(s.specs.size()) + "tables x " +
                std::to_string(s.specs[0].rows) + "rows x d" +
                std::to_string(s.specs[0].dim) + ", batch " +
                std::to_string(s.batch);
    std::vector<Matrix> outputs;
    std::vector<Matrix> reference;
    for (size_t threads : ThreadCounts()) {
        SetDefaultPoolThreads(threads);
        ebc.Forward(s.inputs, s.batch, outputs);  // warm up + comparison
        if (threads == 1) {
            reference = outputs;
        }
        bool identical = true;
        for (size_t t = 0; t < outputs.size(); t++) {
            identical =
                identical && Matrix::Identical(reference[t], outputs[t]);
        }
        const double secs =
            TimeBest(reps, [&] { ebc.Forward(s.inputs, s.batch, outputs); });
        out.results.push_back({threads, secs, identical});
    }
    return out;
}

WorkloadResult
BenchEmbBackward(const EmbSetup& s, int reps)
{
    ops::SparseOptimizerConfig opt;  // row-wise AdaGrad default

    std::vector<Matrix> grads;
    Rng rng(23);
    for (const auto& spec : s.specs) {
        grads.push_back(
            RandomMatrix(s.batch, static_cast<size_t>(spec.dim), rng));
    }

    WorkloadResult out;
    out.name = "embedding_backward_fused";
    out.shape = std::to_string(s.specs.size()) + "tables x " +
                std::to_string(s.specs[0].rows) + "rows x d" +
                std::to_string(s.specs[0].dim) + ", batch " +
                std::to_string(s.batch);
    // The update mutates table state, so determinism is checked on the
    // final parameters of a fixed number of steps; timing uses the same
    // collection (state growth does not change the work shape).
    std::vector<ops::EmbeddingBagCollection> reference;
    for (size_t threads : ThreadCounts()) {
        SetDefaultPoolThreads(threads);
        ops::EmbeddingBagCollection check(s.specs, opt, 7);
        check.BackwardAndUpdate(s.inputs, s.batch, grads);
        if (threads == 1) {
            reference.push_back(std::move(check));
        }
        bool identical = true;
        const ops::EmbeddingBagCollection& ref = reference.front();
        const ops::EmbeddingBagCollection& got =
            threads == 1 ? ref : check;
        for (size_t t = 0; t < s.specs.size(); t++) {
            identical = identical && ops::EmbeddingTable::Identical(
                                         ref.table(t), got.table(t));
        }
        ops::EmbeddingBagCollection timed(s.specs, opt, 7);
        const double secs = TimeBest(
            reps, [&] { timed.BackwardAndUpdate(s.inputs, s.batch, grads); });
        out.results.push_back({threads, secs, identical});
    }
    return out;
}

void
PrintAndWrite(const std::vector<WorkloadResult>& workloads, bool quick,
              const std::string& out_path)
{
    for (const auto& w : workloads) {
        std::printf("== %s (%s) ==\n\n", w.name.c_str(), w.shape.c_str());
        TablePrinter table({"threads", "seconds", "speedup vs 1T",
                            "bit-identical"});
        const double base = w.results.front().seconds;
        for (const auto& r : w.results) {
            table.Row()
                .Cell(static_cast<int64_t>(r.threads))
                .CellF(r.seconds, "%.4f")
                .CellF(base / r.seconds, "%.2f")
                .Cell(r.bit_identical ? "yes" : "NO");
        }
        table.Print();
        std::printf("\n");
    }

    FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"micro_parallel\",\n");
    std::fprintf(f, "  \"kernel_tier\": \"%s\",\n",
                 neo::kernels::TierName(neo::kernels::ActiveTier()));
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"workloads\": [\n");
    for (size_t i = 0; i < workloads.size(); i++) {
        const auto& w = workloads[i];
        std::fprintf(f, "    {\n      \"name\": \"%s\",\n", w.name.c_str());
        std::fprintf(f, "      \"shape\": \"%s\",\n", w.shape.c_str());
        std::fprintf(f, "      \"results\": [\n");
        const double base = w.results.front().seconds;
        for (size_t j = 0; j < w.results.size(); j++) {
            const auto& r = w.results[j];
            std::fprintf(f,
                         "        {\"threads\": %zu, \"seconds\": %.6f, "
                         "\"speedup_vs_1\": %.3f, \"bit_identical\": %s}%s\n",
                         r.threads, r.seconds, base / r.seconds,
                         r.bit_identical ? "true" : "false",
                         j + 1 < w.results.size() ? "," : "");
        }
        std::fprintf(f, "      ]\n    }%s\n",
                     i + 1 < workloads.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    std::string out_path = "BENCH_parallel.json";
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
            out_path = argv[i] + 6;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--out=PATH]\n", argv[0]);
            return 2;
        }
    }

    const int reps = quick ? 2 : 3;
    const EmbSetup emb = MakeEmbSetup(quick);
    std::vector<WorkloadResult> workloads;
    workloads.push_back(BenchGemm(quick, reps));
    workloads.push_back(BenchEmbForward(emb, reps));
    workloads.push_back(BenchEmbBackward(emb, reps));
    SetDefaultPoolThreads(1);
    PrintAndWrite(workloads, quick, out_path);

    // Non-zero exit if any run diverged from the serial result, so the
    // smoke test doubles as a determinism check.
    for (const auto& w : workloads) {
        for (const auto& r : w.results) {
            if (!r.bit_identical) {
                return 1;
            }
        }
    }
    return 0;
}
