/**
 * @file
 * Observability overhead microbenchmark: runs the same 2-rank
 * hybrid-parallel training loop three ways — flight recorder disabled,
 * recorder enabled (the always-on production default), and recorder +
 * tracing enabled — verifies the final loss is bit-identical across all
 * three (observation must not perturb training), prints the measured
 * StepBreakdown, and emits BENCH_obs.json. The tracing overhead budget
 * is <2% (span sites are two clock reads and a slot write) and is
 * reported rather than asserted because single-core CI noise dwarfs it.
 *
 * The always-on flight recorder has a hard <1% gate, asserted on a
 * deterministic model rather than the noisy wall-clock delta: measure
 * each record call's cost in a tight loop, multiply by the recorder
 * events one training step actually generates (counted from the rings),
 * and divide by the measured step time. That product is what the
 * recorder can possibly add per step, independent of CI scheduling
 * jitter.
 *
 * Usage: micro_obs [--quick] [--out=PATH] [--trace-out=PATH]
 *   --quick      fewer steps / smaller model (smoke-test mode)
 *   --out        JSON output path (default BENCH_obs.json in the cwd)
 *   --trace-out  also write the traced run's Chrome trace JSON here
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "comm/threaded_process_group.h"
#include "core/distributed_trainer.h"
#include "core/dlrm_config.h"
#include "data/dataset.h"
#include "kernels/kernels.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/step_breakdown.h"
#include "obs/trace.h"
#include "sharding/planner.h"

namespace {

using namespace neo;

constexpr int kWorkers = 2;

data::DatasetConfig
MakeDataConfig(const core::DlrmConfig& model)
{
    data::DatasetConfig config;
    config.num_dense = model.num_dense;
    config.seed = 99;
    for (const auto& t : model.tables) {
        config.features.push_back({t.rows, t.pooling, 1.05});
    }
    return config;
}

struct RunResult {
    double seconds = 0.0;  ///< wall-clock of the whole training loop
    std::vector<double> final_loss;
};

/** One full training run; the same work with tracing on or off. */
RunResult
RunTraining(const core::DlrmConfig& model, const sharding::ShardingPlan& plan,
            size_t local_batch, int steps)
{
    RunResult result;
    result.final_loss.assign(kWorkers, 0.0);
    const auto start = std::chrono::steady_clock::now();
    comm::ThreadedWorld::Run(kWorkers, [&](int rank,
                                           comm::ProcessGroup& pg) {
        core::DistributedDlrm trainer(model, plan, pg);
        data::SyntheticCtrDataset dataset(MakeDataConfig(model));
        for (int s = 0; s < steps; s++) {
            data::Batch global = dataset.NextBatch(local_batch * kWorkers);
            data::Batch local;
            const size_t begin = rank * local_batch;
            local.dense = Matrix(local_batch, global.dense.cols());
            for (size_t b = 0; b < local_batch; b++) {
                for (size_t c = 0; c < global.dense.cols(); c++) {
                    local.dense(b, c) = global.dense(begin + b, c);
                }
            }
            local.sparse =
                global.sparse.SliceBatch(begin, begin + local_batch);
            local.labels.assign(global.labels.begin() + begin,
                                global.labels.begin() + begin +
                                    local_batch);
            result.final_loss[rank] = trainer.TrainStep(local);
        }
    });
    const auto end = std::chrono::steady_clock::now();
    result.seconds = std::chrono::duration<double>(end - start).count();
    return result;
}

/** Best wall-clock over `reps` fresh runs. */
RunResult
BestOf(int reps, const core::DlrmConfig& model,
       const sharding::ShardingPlan& plan, size_t local_batch, int steps)
{
    RunResult best;
    best.seconds = 1e30;
    for (int r = 0; r < reps; r++) {
        // Start each traced rep from an empty buffer so late reps do not
        // hit the capacity limit (Clear is safe here: the world joined).
        obs::Tracer::Get().Clear();
        RunResult run = RunTraining(model, plan, local_batch, steps);
        if (run.seconds < best.seconds) {
            best = std::move(run);
        }
    }
    return best;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    std::string out_path = "BENCH_obs.json";
    std::string trace_out;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
            out_path = argv[i] + 6;
        } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
            trace_out = argv[i] + 12;
        } else {
            std::fprintf(stderr, "unknown flag %s\n", argv[i]);
            return 2;
        }
    }

    const int steps = quick ? 4 : 30;
    const int reps = quick ? 2 : 5;
    const size_t local_batch = quick ? 16 : 64;
    const core::DlrmConfig model = quick
        ? core::MakeSmallDlrmConfig(4, 200, 8)
        : core::MakeSmallDlrmConfig(8, 4000, 32);

    sharding::PlannerOptions planner_options;
    planner_options.topo.num_workers = kWorkers;
    planner_options.topo.workers_per_node = kWorkers;
    planner_options.global_batch = local_batch * kWorkers;
    planner_options.hbm_bytes_per_worker = 1e12;
    sharding::ShardingPlanner planner(planner_options);
    const sharding::ShardingPlan plan = planner.Plan(model.tables);

    auto& recorder = obs::FlightRecorder::Get();

    // ---- recorder off, tracing off -------------------------------------
    obs::Tracer::Get().SetEnabled(false);
    obs::Tracer::Get().Clear();
    recorder.SetEnabled(false);
    const RunResult base =
        BestOf(reps, model, plan, local_batch, steps);

    // ---- recorder on (production default), tracing off ------------------
    // A ring large enough to hold every op from every rep, so the ring
    // population divided by executed steps gives the true per-step
    // recorder event count for the overhead model below.
    obs::RecorderOptions ring;
    ring.op_ring = 1 << 16;
    recorder.Configure(ring);
    recorder.SetEnabled(true);
    const RunResult off =
        BestOf(reps, model, plan, local_batch, steps);
    size_t ops_recorded = 0;
    for (int r = 0; r < kWorkers; r++) {
        ops_recorded += recorder.RecentOps(r).size();
    }
    const double ops_per_step =
        static_cast<double>(ops_recorded) /
        (static_cast<double>(kWorkers) * steps * reps);

    // ---- recorder on, tracing on ----------------------------------------
    obs::Tracer::Get().SetEnabled(true);
    const RunResult on = BestOf(reps, model, plan, local_batch, steps);
    obs::Tracer::Get().SetEnabled(false);

    bool bit_identical = true;
    for (int r = 0; r < kWorkers; r++) {
        bit_identical &= off.final_loss[r] == on.final_loss[r];
        bit_identical &= off.final_loss[r] == base.final_loss[r];
    }
    if (!bit_identical) {
        std::fprintf(stderr,
                     "FAIL: observation changed the training result\n");
        return 1;
    }

    // ---- deterministic recorder overhead model --------------------------
    // Per-call costs in a tight loop; multiplied by the events one step
    // generates (RecordOp per collective, one RecordStep and one
    // RecordMetricsDelta per step, measured above), this bounds what the
    // recorder can add per step without wall-clock noise.
    const auto cost_of = [](int iters, auto&& fn) {
        const auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < iters; i++) {
            fn(i);
        }
        const auto t1 = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(t1 - t0).count() / iters;
    };
    recorder.Configure(obs::RecorderOptions());
    const double op_cost = cost_of(200000, [&](int i) {
        recorder.RecordOp(0, "bench_op", i);
    });
    const double step_cost = cost_of(20000, [&](int i) {
        recorder.RecordStep(0, static_cast<uint64_t>(i), 0.005, 0.5);
    });
    const double delta_cost = cost_of(2000, [&](int) {
        recorder.RecordMetricsDelta(0);
    });
    recorder.Configure(obs::RecorderOptions());

    const double off_step = off.seconds / steps;
    const double recorder_step_cost =
        ops_per_step * op_cost + step_cost + delta_cost;
    const double recorder_overhead = recorder_step_cost / off_step;
    if (recorder_overhead >= 0.01) {
        std::fprintf(stderr,
                     "FAIL: flight recorder costs %.2f%% of a step "
                     "(budget <1%%): %.1f ops/step x %.0f ns + step %.0f "
                     "ns + delta %.0f ns vs %.3f ms/step\n",
                     recorder_overhead * 100.0, ops_per_step,
                     op_cost * 1e9, step_cost * 1e9, delta_cost * 1e9,
                     off_step * 1e3);
        return 1;
    }

    const std::vector<obs::Span> spans = obs::Tracer::Get().Collect();
    const uint64_t dropped = obs::Tracer::Get().DroppedSpans();
    const obs::StepBreakdown breakdown =
        obs::StepBreakdown::FromSpans(spans, /*rank=*/0);

    const double base_step = base.seconds / steps;
    const double on_step = on.seconds / steps;
    const double overhead = (on_step - off_step) / off_step;
    const double recorder_wall_overhead =
        (off_step - base_step) / base_step;

    std::printf(
        "== micro_obs: observability overhead (%d steps, best of %d) ==\n\n",
        steps, reps);
    std::printf("recorder off: %.3f ms/step\n", base_step * 1e3);
    std::printf("recorder on:  %.3f ms/step  (wall %+.2f%%, modeled "
                "%.3f%% < 1%% budget)\n",
                off_step * 1e3, recorder_wall_overhead * 100.0,
                recorder_overhead * 100.0);
    std::printf("  %.1f ops/step x %.0f ns + step %.0f ns + delta %.0f ns\n",
                ops_per_step, op_cost * 1e9, step_cost * 1e9,
                delta_cost * 1e9);
    std::printf("tracing on:   %.3f ms/step  (%+.2f%%)\n", on_step * 1e3,
                overhead * 100.0);
    std::printf("spans recorded: %zu (dropped %llu)\n", spans.size(),
                static_cast<unsigned long long>(dropped));
    std::printf("final loss bit-identical across all modes: %s\n\n",
                bit_identical ? "yes" : "NO");
    std::printf("%s\n", breakdown.ToTable().c_str());

    if (!trace_out.empty()) {
        if (!obs::Tracer::Get().WriteChromeJson(trace_out)) {
            std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
            return 1;
        }
        std::printf("wrote %s\n", trace_out.c_str());
    }

    FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"micro_obs\",\n");
    std::fprintf(f, "  \"kernel_tier\": \"%s\",\n",
                 neo::kernels::TierName(neo::kernels::ActiveTier()));
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"steps\": %d,\n", steps);
    std::fprintf(f, "  \"workers\": %d,\n", kWorkers);
    std::fprintf(f, "  \"recorder_off_step_seconds\": %.6f,\n", base_step);
    std::fprintf(f, "  \"tracing_off_step_seconds\": %.6f,\n", off_step);
    std::fprintf(f, "  \"tracing_on_step_seconds\": %.6f,\n", on_step);
    std::fprintf(f, "  \"overhead_fraction\": %.6f,\n", overhead);
    std::fprintf(f, "  \"recorder_wall_overhead_fraction\": %.6f,\n",
                 recorder_wall_overhead);
    std::fprintf(f, "  \"recorder_ops_per_step\": %.2f,\n", ops_per_step);
    std::fprintf(f, "  \"recorder_op_cost_ns\": %.1f,\n", op_cost * 1e9);
    std::fprintf(f, "  \"recorder_step_cost_ns\": %.1f,\n",
                 step_cost * 1e9);
    std::fprintf(f, "  \"recorder_delta_cost_ns\": %.1f,\n",
                 delta_cost * 1e9);
    std::fprintf(f, "  \"recorder_modeled_overhead_fraction\": %.6f,\n",
                 recorder_overhead);
    std::fprintf(f, "  \"spans_recorded\": %zu,\n", spans.size());
    std::fprintf(f, "  \"spans_dropped\": %llu,\n",
                 static_cast<unsigned long long>(dropped));
    std::fprintf(f, "  \"breakdown_coverage\": %.6f,\n",
                 breakdown.Coverage());
    std::fprintf(f, "  \"bit_identical\": %s\n",
                 bit_identical ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
