/**
 * @file
 * Reproduces Fig. 12: per-operator serialized vs exposed latency breakdown
 * for model A2 (local batch 512) at 1-16 nodes. Serialized bars are the
 * stand-alone op latencies; the exposed view shows what remains on the
 * critical path after the Eq. 1 overlaps (HtoD fully hidden, AllReduce
 * mostly hidden under backward compute, AllToAll largely exposed).
 */
#include <cstdio>

#include "common/table_printer.h"
#include "common/units.h"
#include "sim/iteration_model.h"
#include "sim/plan_bridge.h"

namespace {

using namespace neo;
using namespace neo::sim;

IterationBreakdown
BreakdownAt(int num_gpus)
{
    const WorkloadModel workload = WorkloadModel::A2();
    TrainingSetup setup;
    setup.cluster = ClusterSpec::Prototype((num_gpus + 7) / 8);
    setup.num_gpus = num_gpus;
    setup.per_gpu_batch = 512;
    setup.emb_precision = Precision::kFp16;
    setup.fwd_comm = Precision::kFp16;
    setup.bwd_comm = Precision::kBf16;

    PlanStudyOptions plan_options;
    plan_options.num_gpus = num_gpus;
    plan_options.global_batch = setup.GlobalBatch();
    plan_options.emb_precision = Precision::kFp16;
    const PlanStudyResult plan =
        PlanForWorkload(workload, setup.cluster, plan_options);
    setup.imbalance = plan.feasible ? plan.imbalance : 2.0;
    setup.rw_dim_sum = plan.max_rw_dim_sum;
    return IterationModel(workload, setup).Estimate();
}

}  // namespace

int
main()
{
    std::printf("== Fig 12: model A2 per-operator latency breakdown "
                "(local batch 512) ==\n");
    std::printf("serialized = stand-alone op time; exposed = what the "
                "Eq.1 overlap leaves on the critical path\n\n");

    TablePrinter table({"ms per iter", "1 node", "2 nodes", "4 nodes",
                        "8 nodes", "16 nodes"});
    const int node_counts[] = {1, 2, 4, 8, 16};
    IterationBreakdown bds[5];
    for (int i = 0; i < 5; i++) {
        bds[i] = BreakdownAt(node_counts[i] * 8);
    }

    auto row = [&](const char* name, auto getter) {
        auto& r = table.Row().Cell(name);
        for (int i = 0; i < 5; i++) {
            r.CellF(getter(bds[i]) * 1e3, "%.2f");
        }
    };
    row("HtoD (hidden)", [](const auto& b) { return b.htod; });
    row("input AllToAll", [](const auto& b) { return b.input_a2a; });
    row("bottom MLP fwd", [](const auto& b) { return b.bot_mlp_fwd; });
    row("emb lookup", [](const auto& b) { return b.emb_lookup; });
    row("pooled AllToAll fwd", [](const auto& b) { return b.pooled_a2a_fwd; });
    row("interaction fwd", [](const auto& b) { return b.interaction_fwd; });
    row("top MLP fwd", [](const auto& b) { return b.top_mlp_fwd; });
    row("top MLP bwd", [](const auto& b) { return b.top_mlp_bwd; });
    row("grad AllToAll bwd", [](const auto& b) { return b.grad_a2a_bwd; });
    row("emb update", [](const auto& b) { return b.emb_update; });
    row("bottom MLP bwd", [](const auto& b) { return b.bot_mlp_bwd; });
    row("AllReduce", [](const auto& b) { return b.allreduce; });
    row("overhead", [](const auto& b) { return b.overhead; });
    row("serialized sum", [](const auto& b) { return b.SerializedSum(); });
    row("exposed total", [](const auto& b) { return b.total; });
    row("exposed comm", [](const auto& b) { return b.exposed_comm; });
    table.Print();

    std::printf("\nQPS: ");
    for (int i = 0; i < 5; i++) {
        std::printf("%d nodes=%s  ", node_counts[i],
                    FormatCount(bds[i].qps).c_str());
    }
    std::printf("\n(paper: HtoD fully hidden; AllToAll exposed and growing "
                "with nodes; AllReduce hidden up to 16 nodes)\n");
    return 0;
}
