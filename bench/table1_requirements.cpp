/**
 * @file
 * Reproduces Table 1: the platform demands of a production DLRM trained
 * to deadline. Derived from the workload models rather than restated: an
 * A2-class model at ~1M QPS implies the compute / memory / bandwidth
 * figures the paper lists as platform requirements.
 */
#include <cstdio>

#include "common/table_printer.h"
#include "common/units.h"
#include "sim/hardware.h"
#include "sim/workloads.h"

int
main()
{
    using namespace neo;
    using namespace neo::sim;

    const WorkloadModel a2 = WorkloadModel::A2();
    const ClusterSpec cluster = ClusterSpec::Prototype(16);
    const double target_qps = 1e6;  // "millions of samples per second"

    // Compute: fwd+bwd ~ 3x forward FLOPs at the target rate.
    const double compute =
        3.0 * a2.mflops_per_sample * 1e6 * target_qps;
    // Memory capacity: the model itself (FP16) + optimizer state.
    const double capacity = a2.num_params * 2.0 + a2.num_params / a2.dim_avg
                            * 4.0;
    // Memory bandwidth: the PLATFORM must provision enough GPUs for the
    // compute target; their aggregate achievable HBM is the balanced-
    // workload bandwidth requirement (embeddings are BW-bound, so BW
    // cannot lag compute).
    const GpuSpec& gpu = cluster.node.gpu;
    const double gpus_needed =
        compute / (gpu.fp32_tflops * 1e12 * gpu.gemm_efficiency);
    const double mem_bw = gpus_needed * gpu.hbm_achievable;
    // Injection bandwidth per worker node: the dedicated RoCE fabric
    // (8 NICs x 100 Gb) sized so the pooled-embedding AllToAll is not the
    // bottleneck.
    const double injection =
        cluster.node.scaleout_peak * cluster.node.gpus_per_node;
    // Bisection: half the nodes exchanging AllToAll with the other half.
    const double bisection =
        injection * (gpus_needed / cluster.node.gpus_per_node) / 2.0;

    std::printf("== Table 1: platform demand derived from an A2-class "
                "model at %s QPS ==\n\n",
                FormatCount(target_qps).c_str());
    TablePrinter table({"Requirement", "Derived", "Paper"});
    table.Row()
        .Cell("Total compute")
        .Cell(FormatCount(compute / 1e15) + " PF/s")
        .Cell("1+ PF/s");
    table.Row()
        .Cell("Total memory capacity")
        .Cell(FormatBytes(capacity))
        .Cell("1+ TB");
    table.Row()
        .Cell("Total memory BW")
        .Cell(FormatBandwidth(mem_bw))
        .Cell("100+ TB/s");
    table.Row()
        .Cell("Injection BW per worker")
        .Cell(FormatBandwidth(injection))
        .Cell("100+ GB/s");
    table.Row()
        .Cell("Bisection BW")
        .Cell(FormatBandwidth(bisection))
        .Cell("1+ TB/s");
    table.Print();
    return 0;
}
