/**
 * @file
 * Reproduces Figs. 18-19 (Appendix A): achieved embedding-lookup
 * bandwidth, forward (Fig. 18) and fused backward+optimizer (Fig. 19),
 * FP32 vs FP16 on V100 vs A100, for the benchmark configuration
 * (64 tables, 1M rows, dim 128, pooling 32) across batch sizes.
 *
 * Two parts: the GPU roofline model (the paper's numbers), and a MEASURED
 * run of this repo's actual fused CPU embedding kernel — demonstrating
 * the same rising-then-saturating shape against the host's memory system.
 */
#include <chrono>
#include <cstdio>

#include "common/rng.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "ops/embedding_bag.h"
#include "sim/embedding_model.h"

namespace {

using namespace neo;
using namespace neo::sim;

void
PrintModelTable(const char* title, bool backward)
{
    const EmbeddingModel v100(GpuSpec::V100());
    const EmbeddingModel a100(GpuSpec::A100());
    std::printf("%s\n\n", title);
    TablePrinter table({"batch", "V100 FP32", "V100 FP16", "A100 FP32",
                        "A100 FP16"});
    for (int64_t batch : {128, 256, 512, 1024, 2048, 4096, 8192}) {
        EmbBenchShape shape;  // Appendix-A config
        shape.batch = batch;
        auto bw = [&](const EmbeddingModel& model, Precision p) {
            EmbBenchShape s = shape;
            s.precision = p;
            const EmbEstimate est =
                backward ? model.BackwardFused(s) : model.Forward(s);
            return est.achieved_bandwidth / 1e9;
        };
        table.Row()
            .Cell(batch)
            .CellF(bw(v100, Precision::kFp32), "%.0f")
            .CellF(bw(v100, Precision::kFp16), "%.0f")
            .CellF(bw(a100, Precision::kFp32), "%.0f")
            .CellF(bw(a100, Precision::kFp16), "%.0f");
    }
    table.Print();
    std::printf("\n");
}

/** Measure this repo's fused CPU lookup kernel (GB/s of rows gathered). */
void
MeasureCpuKernel()
{
    std::printf("== Measured: this repo's fused CPU embedding kernel "
                "(scaled-down config) ==\n\n");
    const int64_t num_tables = 8;
    const int64_t rows = 50000;
    const int64_t dim = 128;
    const uint32_t pooling = 32;

    std::vector<ops::TableSpec> specs(
        num_tables, {rows, dim, Precision::kFp32});
    ops::SparseOptimizerConfig opt;
    ops::EmbeddingBagCollection ebc(specs, opt, 7);

    TablePrinter table({"batch", "lookup GB/s", "us/batch"});
    Rng rng(13);
    for (size_t batch : {64, 256, 1024, 4096}) {
        // Build a uniform-random combined input.
        std::vector<std::vector<uint32_t>> lengths(num_tables);
        std::vector<std::vector<int64_t>> indices(num_tables);
        std::vector<ops::TableInput> inputs;
        for (int64_t t = 0; t < num_tables; t++) {
            lengths[t].assign(batch, pooling);
            indices[t].resize(batch * pooling);
            for (auto& idx : indices[t]) {
                idx = static_cast<int64_t>(rng.NextBounded(rows));
            }
            inputs.push_back({lengths[t], indices[t]});
        }
        std::vector<Matrix> outputs;
        ebc.Forward(inputs, batch, outputs);  // warm up

        const int reps = 5;
        const auto start = std::chrono::steady_clock::now();
        for (int r = 0; r < reps; r++) {
            ebc.Forward(inputs, batch, outputs);
        }
        const auto end = std::chrono::steady_clock::now();
        const double seconds =
            std::chrono::duration<double>(end - start).count() / reps;
        const double bytes = static_cast<double>(batch) * num_tables *
                             pooling * dim * 4.0;
        table.Row()
            .Cell(batch)
            .CellF(bytes / seconds / 1e9, "%.2f")
            .CellF(seconds * 1e6, "%.0f");
    }
    table.Print();
}

}  // namespace

int
main()
{
    PrintModelTable("== Fig 18: embedding lookup FORWARD bandwidth (GB/s, "
                    "model; paper saturates at 850 V100 / 1300 A100) ==",
                    /*backward=*/false);
    PrintModelTable("== Fig 19: embedding BACKWARD+optimizer bandwidth "
                    "(GB/s, model) ==",
                    /*backward=*/true);
    MeasureCpuKernel();
    return 0;
}
