/**
 * @file
 * Reproduces Table 3: the target production model configurations (A1, A2,
 * A3, F1), printing both the published aggregates and the statistics of
 * the concrete table lists our generator synthesizes from them — the
 * fidelity of that synthesis is what makes the sharding studies
 * meaningful.
 */
#include <algorithm>
#include <cstdio>

#include "common/table_printer.h"
#include "common/units.h"
#include "sim/workloads.h"

int
main()
{
    using namespace neo;
    using namespace neo::sim;

    std::printf("== Table 3: target model configurations ==\n\n");
    TablePrinter table({"Model", "Params", "MFLOPS/sample", "Tables",
                        "Dim [min,max] avg", "Avg pooling", "MLP layers",
                        "Avg MLP size"});
    for (const WorkloadModel& m : WorkloadModel::All()) {
        table.Row()
            .Cell(m.name)
            .Cell(FormatCount(m.num_params))
            .CellF(m.mflops_per_sample, "%.0f")
            .Cell(m.num_tables)
            .Cell("[" + std::to_string(m.dim_min) + "," +
                  std::to_string(m.dim_max) + "] " +
                  std::to_string(static_cast<int>(m.dim_avg)))
            .CellF(m.avg_pooling, "%.0f")
            .Cell(m.num_mlp_layers)
            .CellF(m.avg_mlp_size, "%.0f");
    }
    table.Print();

    std::printf("\n== Synthesized table-list statistics (what the planner "
                "actually shards) ==\n\n");
    TablePrinter synth({"Model", "Tables", "Params", "Avg dim",
                        "Avg pooling", "Largest table", "Smallest table"});
    for (const WorkloadModel& m : WorkloadModel::All()) {
        const auto tables = m.SynthesizeTables();
        double params = 0.0, dims = 0.0, pools = 0.0;
        double largest = 0.0, smallest = 1e30;
        for (const auto& t : tables) {
            const double p = static_cast<double>(t.rows) * t.dim;
            params += p;
            dims += static_cast<double>(t.dim);
            pools += t.pooling;
            largest = std::max(largest, p);
            smallest = std::min(smallest, p);
        }
        synth.Row()
            .Cell(m.name)
            .Cell(tables.size())
            .Cell(FormatCount(params + m.MlpParams()))
            .CellF(dims / tables.size(), "%.0f")
            .CellF(pools / tables.size(), "%.1f")
            .Cell(FormatCount(largest))
            .Cell(FormatCount(smallest));
    }
    synth.Print();
    return 0;
}
