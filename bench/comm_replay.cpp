/**
 * @file
 * PARAM replay mode (Appendix A): record the exact collective sequence of
 * a real (functional) distributed training run, then replay it through
 * the calibrated cluster model to estimate per-iteration communication
 * time at full scale. This bridges the two layers of the repo — what the
 * workload actually sends is measured; how long the cluster takes is
 * modeled.
 */
#include <cstdio>

#include "comm/threaded_process_group.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "core/distributed_trainer.h"
#include "data/dataset.h"
#include "sharding/planner.h"
#include "sim/trace_replay.h"

namespace {

using namespace neo;

}  // namespace

int
main()
{
    constexpr int kWorkers = 8;
    constexpr size_t kLocalBatch = 64;
    constexpr int kSteps = 3;

    // A mid-sized model so the trace has realistic structure.
    core::DlrmConfig model = core::MakeSmallDlrmConfig(16, 2000, 16);
    model.tables[0].rows = 40000;
    model.tables[1].pooling = 50;

    sharding::PlannerOptions planner_options;
    planner_options.topo.num_workers = kWorkers;
    planner_options.topo.workers_per_node = kWorkers;
    planner_options.global_batch = kLocalBatch * kWorkers;
    planner_options.hbm_bytes_per_worker = 1e9;
    sharding::ShardingPlanner planner(planner_options);
    const sharding::ShardingPlan plan = planner.Plan(model.tables);

    data::DatasetConfig data_config;
    data_config.num_dense = model.num_dense;
    data_config.seed = 3;
    for (const auto& t : model.tables) {
        data_config.features.push_back({t.rows, t.pooling, 1.05});
    }

    // ---- record rank 0's collective trace over real training steps ----
    std::vector<comm::TraceEvent> trace;
    comm::ThreadedWorld::Run(kWorkers, [&](int rank,
                                           comm::ProcessGroup& pg) {
        if (rank == 0) {
            pg.SetTrace(&trace);
        }
        core::DistributedDlrm trainer(model, plan, pg);
        data::SyntheticCtrDataset dataset(data_config);
        for (int step = 0; step < kSteps; step++) {
            data::Batch global = dataset.NextBatch(kLocalBatch * kWorkers);
            const size_t begin = rank * kLocalBatch;
            data::Batch local;
            local.dense = Matrix(kLocalBatch, global.dense.cols());
            for (size_t b = 0; b < kLocalBatch; b++) {
                for (size_t c = 0; c < global.dense.cols(); c++) {
                    local.dense(b, c) = global.dense(begin + b, c);
                }
            }
            local.sparse =
                global.sparse.SliceBatch(begin, begin + kLocalBatch);
            local.labels.assign(global.labels.begin() + begin,
                                global.labels.begin() + begin +
                                    kLocalBatch);
            trainer.TrainStep(local);
        }
        if (rank == 0) {
            pg.SetTrace(nullptr);
        }
    });

    uint64_t total_bytes = 0;
    for (const auto& event : trace) {
        total_bytes += event.bytes;
    }
    std::printf("== PARAM replay mode: recorded functional trace ==\n");
    std::printf("%zu collective calls over %d steps, %s total payload "
                "(rank 0)\n\n",
                trace.size(), kSteps, FormatBytes(total_bytes).c_str());

    // ---- replay on modeled clusters ------------------------------------
    std::printf("replaying the trace on the modeled prototype cluster:\n\n");
    TablePrinter table({"Target GPUs", "comm ms/iter", "AllToAll ms",
                        "AllReduce ms", "other ms"});
    for (int gpus : {8, 16, 32, 64, 128}) {
        const sim::CommModel comm_model(
            sim::ClusterSpec::Prototype((gpus + 7) / 8));
        const sim::ReplayEstimate est =
            sim::ReplayTrace(trace, comm_model, gpus);
        const double per_iter = 1e3 / kSteps;
        table.Row()
            .Cell(gpus)
            .CellF(est.total_seconds * per_iter, "%.2f")
            .CellF(est.alltoall_seconds * per_iter, "%.2f")
            .CellF(est.allreduce_seconds * per_iter, "%.2f")
            .CellF((est.total_seconds - est.alltoall_seconds -
                    est.allreduce_seconds) *
                       per_iter,
                   "%.2f");
    }
    table.Print();
    std::printf("\n(serialized comm time; AllToAll grows with scale while "
                "the AllReduce term stays amortized — the Fig. 12 trend, "
                "now from a measured trace)\n");
    return 0;
}
