/**
 * @file
 * Reproduces Fig. 20 (Appendix A): achieved AllToAll and AllReduce bus
 * bandwidth at 128 GPUs across power-of-two message sizes, from the
 * calibrated collective models (AllToAll saturating at ~7 GB/s, bound by
 * the 10.5 GB/s achievable scale-out link; AllReduce at ~60 GB/s thanks
 * to NVLink). Also measures this repo's actual threaded collectives to
 * show the same latency-to-bandwidth-bound transition shape.
 */
#include <chrono>
#include <cstdio>

#include "comm/threaded_process_group.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "sim/comm_model.h"

namespace {

using namespace neo;
using namespace neo::sim;

void
PrintModelTable()
{
    const CommModel model(ClusterSpec::Prototype(16));
    std::printf("== Fig 20: collective bus bandwidth at 128 GPUs (model) "
                "==\n\n");
    TablePrinter table({"message", "AllToAll GB/s", "AllReduce GB/s"});
    for (double bytes = 64e3; bytes <= 1024e6; bytes *= 4) {
        table.Row()
            .Cell(FormatBytes(bytes))
            .CellF(model.AllToAll(bytes, 128).bus_bandwidth / 1e9, "%.2f")
            .CellF(model.AllReduce(bytes, 128).bus_bandwidth / 1e9, "%.2f");
    }
    table.Print();
    std::printf("\npaper @256MB: AllToAll ~7 GB/s, AllReduce ~60 GB/s\n\n");
}

void
MeasureThreadedCollectives()
{
    std::printf("== Measured: this repo's threaded collectives (8 ranks, "
                "shared memory) ==\n\n");
    TablePrinter table({"floats/rank", "AllToAll GB/s", "AllReduce GB/s"});
    const int world = 8;
    for (size_t count : {1024u, 16384u, 262144u, 1048576u}) {
        double a2a_bw = 0.0, ar_bw = 0.0;
        comm::ThreadedWorld::Run(world, [&](int rank,
                                            comm::ProcessGroup& pg) {
            Rng rng(rank + 1);
            std::vector<float> buf(count);
            for (auto& x : buf) {
                x = rng.NextFloat();
            }
            // AllReduce timing.
            pg.AllReduceSum(buf.data(), count);  // warm up
            pg.Barrier();
            auto start = std::chrono::steady_clock::now();
            const int reps = 3;
            for (int r = 0; r < reps; r++) {
                pg.AllReduceSum(buf.data(), count);
            }
            auto end = std::chrono::steady_clock::now();
            if (rank == 0) {
                const double seconds =
                    std::chrono::duration<double>(end - start).count() /
                    reps;
                ar_bw = count * sizeof(float) * 2.0 * (world - 1) / world /
                        seconds / 1e9;
            }

            // AllToAll timing: count floats split across peers.
            std::vector<std::vector<float>> send(
                world, std::vector<float>(count / world, 1.0f));
            std::vector<std::vector<float>> recv;
            pg.AllToAllFloats(send, recv);  // warm up
            pg.Barrier();
            start = std::chrono::steady_clock::now();
            for (int r = 0; r < reps; r++) {
                pg.AllToAllFloats(send, recv);
            }
            end = std::chrono::steady_clock::now();
            if (rank == 0) {
                const double seconds =
                    std::chrono::duration<double>(end - start).count() /
                    reps;
                a2a_bw = count * sizeof(float) * (world - 1) / world /
                         seconds / 1e9;
            }
        });
        table.Row()
            .Cell(count)
            .CellF(a2a_bw, "%.3f")
            .CellF(ar_bw, "%.3f");
    }
    table.Print();
    std::printf("\n(shape check: both rise with message size as latency "
                "amortizes, like Fig. 20)\n");
}

}  // namespace

int
main()
{
    PrintModelTable();
    MeasureThreadedCollectives();
    return 0;
}
