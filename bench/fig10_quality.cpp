/**
 * @file
 * Reproduces Fig. 10: training-quality comparison between asynchronous
 * small-batch training on the CPU parameter-server system and synchronous
 * large-batch training, measured in relative normalized entropy as a
 * function of consumed samples.
 *
 * This is a FUNCTIONAL experiment (scaled down): both systems train real
 * models on the same synthetic CTR stream; the async system runs the
 * Hogwild + EASGD emulation with 16 virtual trainers at batch 32, the
 * sync system trains with a 64x larger batch — mirroring the paper's
 * ~150-vs-64K batch ratio. The paper's finding: sync large-batch reaches
 * on-par or better NE despite the much larger batch.
 */
#include <cmath>
#include <cstdio>

#include "common/table_printer.h"
#include "core/dlrm_config.h"
#include "core/dlrm_reference.h"
#include "data/dataset.h"
#include "ps/async_ps_trainer.h"

namespace {

using namespace neo;

data::DatasetConfig
MakeDataConfig(const core::DlrmConfig& model, uint64_t seed)
{
    data::DatasetConfig config;
    config.num_dense = model.num_dense;
    config.seed = seed;
    config.signal_scale = 0.8f;
    config.noise_scale = 0.6f;
    for (const auto& t : model.tables) {
        config.features.push_back({t.rows, t.pooling, 1.05});
    }
    return config;
}

/** Held-out evaluation: same planted task, disjoint sampling stream. */
data::DatasetConfig
HeldOut(const data::DatasetConfig& config)
{
    data::DatasetConfig eval = config;
    eval.task_seed = config.task_seed ? config.task_seed : config.seed;
    eval.seed = config.seed + 0xE7A1;
    return eval;
}

double
EvalSync(core::DlrmReference& model, const data::DatasetConfig& config)
{
    data::SyntheticCtrDataset eval(HeldOut(config));
    NormalizedEntropy ne;
    for (int e = 0; e < 6; e++) {
        model.Evaluate(eval.NextBatch(256), ne);
    }
    return ne.Value();
}

double
EvalAsync(ps::AsyncPsTrainer& trainer, const data::DatasetConfig& config)
{
    data::SyntheticCtrDataset eval(HeldOut(config));
    NormalizedEntropy ne;
    for (int e = 0; e < 6; e++) {
        trainer.Evaluate(eval.NextBatch(256), ne);
    }
    return ne.Value();
}

}  // namespace

int
main()
{
    const size_t kAsyncBatch = 32;
    const size_t kSyncBatch = 1024;  // 32x larger, as 150 -> ~5K-64K
    const uint64_t kBudget = 160000;
    const int kCheckpoints = 8;

    core::DlrmConfig model = core::MakeSmallDlrmConfig(4, 400, 16);
    const data::DatasetConfig data_config = MakeDataConfig(model, 5);

    ps::PsConfig ps_config;
    ps_config.num_trainers = 16;
    ps_config.batch_size = kAsyncBatch;
    ps::AsyncPsTrainer async_trainer(model, ps_config);
    data::SyntheticCtrDataset async_data(data_config);

    // Large-batch training needs retuned hyper-parameters (Sec. 5.3: "with
    // appropriately tuned optimizer/hyper-parameters we are able to achieve
    // on-par training quality").
    core::DlrmConfig sync_model = model;
    // ~sqrt-of-ratio scaling, tuned on a held-out sweep (2.5 for 32x).
    const float lr_scale = 2.5f;
    sync_model.dense_optimizer.learning_rate *= lr_scale;
    sync_model.sparse_optimizer.learning_rate *= lr_scale;
    core::DlrmReference sync_trainer(sync_model);
    data::SyntheticCtrDataset sync_data(data_config);

    std::printf("== Fig 10: async small-batch (PS, batch %zu x16 trainers) "
                "vs sync large-batch (batch %zu) ==\n",
                kAsyncBatch, kSyncBatch);
    std::printf("relative NE (lower is better), normalized to the final "
                "sync value; paper: sync on-par or better\n\n");

    std::vector<double> async_ne, sync_ne, samples;
    uint64_t sync_seen = 0;
    for (int cp = 1; cp <= kCheckpoints; cp++) {
        const uint64_t target = kBudget * cp / kCheckpoints;
        while (async_trainer.SamplesSeen() < target) {
            async_trainer.Step(async_data);
        }
        while (sync_seen < target) {
            sync_trainer.TrainStep(sync_data.NextBatch(kSyncBatch));
            sync_seen += kSyncBatch;
        }
        samples.push_back(static_cast<double>(target));
        async_ne.push_back(EvalAsync(async_trainer, data_config));
        sync_ne.push_back(EvalSync(sync_trainer, data_config));
    }

    const double norm = sync_ne.back();
    TablePrinter table({"Samples", "Async NE (rel)", "Sync NE (rel)",
                        "Sync - Async"});
    for (size_t i = 0; i < samples.size(); i++) {
        table.Row()
            .CellF(samples[i], "%.0f")
            .CellF(async_ne[i] / norm, "%.4f")
            .CellF(sync_ne[i] / norm, "%.4f")
            .CellF((sync_ne[i] - async_ne[i]) / norm, "%+.4f");
    }
    table.Print();
    std::printf("\nfinal: async %.4f vs sync %.4f (absolute NE; lower "
                "wins) -> %s\n",
                async_ne.back(), sync_ne.back(),
                sync_ne.back() <= async_ne.back() + 5e-3
                    ? "sync large-batch on-par or better, as in the paper"
                    : "async ahead at this scale");
    return 0;
}
