/**
 * @file
 * Reproduces Fig. 11: weak-scaling training throughput for models A1, A2
 * and A3 from 1 to 16 nodes (8..128 GPUs) at fixed per-GPU batch size,
 * normalized to 1 node. The paper reports ~50% scaling efficiency for A2
 * and ~40% for A1/A3 at 128 GPUs, limited by exposed AllToAll.
 */
#include <algorithm>
#include <cstdio>

#include "common/table_printer.h"
#include "sim/iteration_model.h"
#include "sim/plan_bridge.h"

namespace {

using namespace neo;
using namespace neo::sim;

double
QpsAt(const WorkloadModel& workload, int num_gpus)
{
    TrainingSetup setup;
    setup.cluster = ClusterSpec::Prototype((num_gpus + 7) / 8);
    setup.num_gpus = num_gpus;
    setup.per_gpu_batch = 512;
    setup.emb_precision = Precision::kFp16;
    setup.fwd_comm = Precision::kFp16;
    setup.bwd_comm = Precision::kBf16;

    PlanStudyOptions plan_options;
    plan_options.num_gpus = num_gpus;
    plan_options.global_batch = setup.GlobalBatch();
    plan_options.emb_precision = Precision::kFp16;
    // Sec. 5.3.1: shrink table cardinality so the model fits small node
    // counts, re-hashing inputs — performance characteristics unchanged.
    const double usable_bytes = num_gpus * 24e9;
    const double model_bytes = workload.num_params * 2.0;
    plan_options.row_shrink =
        std::min(1.0, 0.7 * usable_bytes / model_bytes);
    const PlanStudyResult plan =
        PlanForWorkload(workload, setup.cluster, plan_options);
    setup.imbalance = plan.feasible ? plan.imbalance : 2.0;
    setup.rw_dim_sum = plan.max_rw_dim_sum;
    return IterationModel(workload, setup).Estimate().qps;
}

}  // namespace

int
main()
{
    std::printf("== Fig 11: weak-scaling throughput relative to 1 node "
                "(8 GPUs) ==\n");
    std::printf("paper @16 nodes: A2 ~8x (50%% eff), A1/A3 ~6.4x (40%% "
                "eff)\n\n");

    const WorkloadModel models[] = {WorkloadModel::A1(), WorkloadModel::A2(),
                                    WorkloadModel::A3()};
    TablePrinter table({"Nodes", "GPUs", "A1 rel", "A2 rel", "A3 rel",
                        "A1 eff", "A2 eff", "A3 eff"});
    double base[3] = {0, 0, 0};
    for (int nodes : {1, 2, 4, 8, 16}) {
        const int gpus = nodes * 8;
        double rel[3], eff[3];
        for (int m = 0; m < 3; m++) {
            const double qps = QpsAt(models[m], gpus);
            if (nodes == 1) {
                base[m] = qps;
            }
            rel[m] = qps / base[m];
            eff[m] = rel[m] / nodes;
        }
        table.Row()
            .Cell(nodes)
            .Cell(gpus)
            .CellF(rel[0], "%.2f")
            .CellF(rel[1], "%.2f")
            .CellF(rel[2], "%.2f")
            .CellF(eff[0] * 100, "%.0f%%")
            .CellF(eff[1] * 100, "%.0f%%")
            .CellF(eff[2] * 100, "%.0f%%");
    }
    table.Print();
    return 0;
}
