/**
 * @file
 * Reproduces the Sec. 5.3.3 model-capacity study: fitting the 12T
 * parameter model F1 onto the 16-node cluster. Walks the paper's
 * footprint math (96 TB naive -> 24 TB with row-wise AdaGrad + FP16),
 * checks the fit against the HBM+DDR+SSD hierarchy, and runs the actual
 * sharding planner (with the DDR extension behind the software cache) to
 * show the row-wise sharded layout of the massive tables.
 */
#include <cstdio>

#include "common/table_printer.h"
#include "common/units.h"
#include "sim/capacity_model.h"
#include "sim/iteration_model.h"
#include "sim/plan_bridge.h"

int
main()
{
    using namespace neo;
    using namespace neo::sim;

    const WorkloadModel f1 = WorkloadModel::F1();
    const ClusterSpec cluster = ClusterSpec::Prototype(16);

    std::printf("== Sec 5.3.3: model F1 (12T params) capacity study ==\n\n");
    std::printf("cluster: %d GPUs, HBM %s, DDR %s, SSD %s\n\n",
                cluster.NumGpus(), FormatBytes(cluster.TotalHbm()).c_str(),
                FormatBytes(cluster.TotalDdr()).c_str(),
                FormatBytes(cluster.TotalSsd()).c_str());

    TablePrinter table({"Configuration", "Footprint", "fits HBM",
                        "fits HBM+DDR"});
    struct Case {
        const char* name;
        Precision precision;
        bool rowwise;
    };
    const Case cases[] = {
        {"FP32 + elementwise AdaGrad (naive)", Precision::kFp32, false},
        {"FP32 + row-wise AdaGrad", Precision::kFp32, true},
        {"FP16 + elementwise AdaGrad", Precision::kFp16, false},
        {"FP16 + row-wise AdaGrad (paper)", Precision::kFp16, true},
    };
    for (const Case& c : cases) {
        const CapacityEstimate est = EstimateCapacity(
            f1, cluster, c.precision, c.rowwise, f1.dim_avg);
        const double footprint =
            c.precision == Precision::kFp32 && !c.rowwise
                ? est.naive_bytes
                : est.optimized_bytes;
        table.Row()
            .Cell(c.name)
            .Cell(FormatBytes(footprint))
            .Cell(est.fits_hbm ? "yes" : "no")
            .Cell(footprint <= cluster.TotalHbm() + cluster.TotalDdr()
                      ? "yes"
                      : "no");
    }
    table.Print();
    std::printf("\npaper: 96 TB naive -> 24 TB, \"just fitting under the "
                "4TB HBM + 24TB DRAM hierarchy\"\n\n");

    // ---- planner layout for the massive tables ------------------------
    PlanStudyOptions options;
    options.emb_precision = Precision::kFp16;
    options.extra_capacity_per_gpu =
        cluster.node.ddr_capacity / cluster.node.gpus_per_node;
    const PlanStudyResult plan = PlanForWorkload(f1, cluster, options);
    std::printf("planner: feasible=%s, shards=%zu, all row-wise=%s, "
                "worst per-GPU RW dim sum=%.0f\n",
                plan.feasible ? "yes" : "no", plan.plan.shards.size(),
                plan.scheme_counts.size() == 1 &&
                        plan.scheme_counts.count(
                            sharding::Scheme::kRowWise)
                    ? "yes"
                    : "no",
                plan.max_rw_dim_sum);

    // ---- end-to-end throughput with the hierarchy ---------------------
    TrainingSetup setup;
    setup.cluster = cluster;
    setup.num_gpus = 128;
    setup.per_gpu_batch = 512;
    setup.emb_precision = Precision::kFp16;
    setup.fwd_comm = Precision::kFp16;
    setup.bwd_comm = Precision::kBf16;
    setup.imbalance = plan.feasible ? plan.imbalance : 2.0;
    setup.rw_dim_sum = plan.max_rw_dim_sum;
    setup.hbm_hit_rate = 0.6;  // HBM acts as a cache over DDR (UVM mode)
    const IterationBreakdown bd = IterationModel(f1, setup).Estimate();
    std::printf("modeled training throughput: %s QPS (paper: up to "
                "970K)\n",
                FormatCount(bd.qps).c_str());
    return 0;
}
