/**
 * @file
 * Micro-benchmarks for the data-ingestion layer: synthetic batch
 * generation, the combined-format layout kernels (slice, concat/permute,
 * bucketize) and the end-to-end prefetching loader.
 */
#include <benchmark/benchmark.h>

#include "data/dataloader.h"
#include "data/dataset.h"
#include "data/jagged.h"

namespace {

using namespace neo;
using namespace neo::data;

DatasetConfig
MakeConfig(size_t num_features)
{
    DatasetConfig config;
    config.num_dense = 16;
    config.seed = 11;
    for (size_t f = 0; f < num_features; f++) {
        config.features.push_back({100000, 10.0, 1.05});
    }
    return config;
}

void
BM_GenerateBatch(benchmark::State& state)
{
    SyntheticCtrDataset dataset(MakeConfig(
        static_cast<size_t>(state.range(0))));
    for (auto _ : state) {
        Batch batch = dataset.NextBatch(512);
        benchmark::DoNotOptimize(batch.labels.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_GenerateBatch)->Arg(8)->Arg(32)->Arg(128);

void
BM_SliceBatch(benchmark::State& state)
{
    SyntheticCtrDataset dataset(MakeConfig(32));
    const Batch batch = dataset.NextBatch(1024);
    for (auto _ : state) {
        KeyedJagged slice = batch.sparse.SliceBatch(256, 512);
        benchmark::DoNotOptimize(slice.indices.data());
    }
}
BENCHMARK(BM_SliceBatch);

void
BM_ConcatBatches(benchmark::State& state)
{
    SyntheticCtrDataset dataset(MakeConfig(32));
    const Batch batch = dataset.NextBatch(1024);
    std::vector<KeyedJagged> pieces;
    for (int w = 0; w < 8; w++) {
        pieces.push_back(batch.sparse.SliceBatch(w * 128, (w + 1) * 128));
    }
    for (auto _ : state) {
        KeyedJagged merged = ConcatBatches(pieces);
        benchmark::DoNotOptimize(merged.indices.data());
    }
}
BENCHMARK(BM_ConcatBatches);

void
BM_BucketizeRows(benchmark::State& state)
{
    SyntheticCtrDataset dataset(MakeConfig(1));
    const Batch batch = dataset.NextBatch(2048);
    const KeyedJagged one = batch.sparse.SliceTable(0);
    std::vector<int64_t> splits;
    const int buckets = static_cast<int>(state.range(0));
    for (int k = 0; k <= buckets; k++) {
        splits.push_back(100000 * k / buckets);
    }
    for (auto _ : state) {
        Bucketized result = BucketizeRows(one, splits);
        benchmark::DoNotOptimize(result.buckets.data());
    }
}
BENCHMARK(BM_BucketizeRows)->Arg(8)->Arg(128);

void
BM_PrefetchingLoader(benchmark::State& state)
{
    DataLoader loader(MakeConfig(32), 512);
    for (auto _ : state) {
        Batch batch = loader.NextBatch();
        benchmark::DoNotOptimize(batch.labels.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_PrefetchingLoader);

}  // namespace

BENCHMARK_MAIN();
