/**
 * @file
 * Reproduces Fig. 13: the training-throughput optimization waterfall for
 * model A2 on 128 GPUs. Steps, cumulative:
 *
 *   1. baseline: FP32 tables, table-wise-only sharding with greedy
 *      placement, FP32 comms, 64K global batch (paper: <400K QPS);
 *   2. + optimized sharding (TW+CW+DP, LDM placement): +~20%;
 *   3. + FP16 embedding tables (sharder headroom -> better balance);
 *   4. + quantized comms (FP16 fwd / BF16 bwd AllToAll);
 *   5. + 256K global batch: total +87% over baseline.
 *
 * The sharding/balance effects come from real planner runs, not factors.
 */
#include <cstdio>

#include "common/table_printer.h"
#include "common/units.h"
#include "sim/iteration_model.h"
#include "sim/plan_bridge.h"

namespace {

using namespace neo;
using namespace neo::sim;

struct Step {
    const char* name;
    bool optimized_sharding;
    Precision emb;
    Precision fwd_comm;
    Precision bwd_comm;
    int64_t per_gpu_batch;
};

double
QpsFor(const Step& step)
{
    const WorkloadModel workload = WorkloadModel::A2();
    TrainingSetup setup;
    setup.cluster = ClusterSpec::Prototype(16);
    setup.num_gpus = 128;
    setup.per_gpu_batch = step.per_gpu_batch;
    setup.emb_precision = step.emb;
    setup.fwd_comm = step.fwd_comm;
    setup.bwd_comm = step.bwd_comm;

    PlanStudyOptions plan_options;
    plan_options.num_gpus = 128;
    plan_options.global_batch = setup.GlobalBatch();
    plan_options.emb_precision = step.emb;
    plan_options.optimized_sharding = step.optimized_sharding;
    const PlanStudyResult plan = PlanForWorkload(
        workload, setup.cluster, plan_options);
    // An infeasible FP32 fit mirrors the paper's "very little room to
    // explore placement": model it as running with severe imbalance.
    setup.imbalance = plan.feasible ? plan.imbalance : 1.8;
    setup.rw_dim_sum = plan.max_rw_dim_sum;
    return IterationModel(workload, setup).Estimate().qps;
}

}  // namespace

int
main()
{
    std::printf("== Fig 13: A2 @128 GPUs throughput optimization waterfall "
                "==\n");
    std::printf("paper: baseline <400K; +sharding +20%%; +FP16 emb +20%%; "
                "+quant comms; 256K batch; total +87%%\n\n");

    const Step steps[] = {
        {"baseline (FP32, TW+greedy, 64K)", false, Precision::kFp32,
         Precision::kFp32, Precision::kFp32, 512},
        {"+ optimized sharding (TW+CW+DP, LDM)", true, Precision::kFp32,
         Precision::kFp32, Precision::kFp32, 512},
        {"+ FP16 embeddings", true, Precision::kFp16, Precision::kFp32,
         Precision::kFp32, 512},
        {"+ quantized comms (FP16/BF16)", true, Precision::kFp16,
         Precision::kFp16, Precision::kBf16, 512},
        {"+ 256K global batch", true, Precision::kFp16, Precision::kFp16,
         Precision::kBf16, 2048},
    };

    TablePrinter table({"Step", "QPS", "vs prev", "vs baseline"});
    double baseline = 0.0, prev = 0.0;
    for (const Step& step : steps) {
        const double qps = QpsFor(step);
        if (baseline == 0.0) {
            baseline = qps;
            prev = qps;
        }
        table.Row()
            .Cell(step.name)
            .Cell(FormatCount(qps))
            .CellF((qps / prev - 1.0) * 100.0, "%+.0f%%")
            .CellF((qps / baseline - 1.0) * 100.0, "%+.0f%%");
        prev = qps;
    }
    table.Print();
    return 0;
}
