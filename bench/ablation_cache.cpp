/**
 * @file
 * Ablation for the memory hierarchy (Sec. 4.1.3): the 32-way software
 * cache (LRU and LFU) vs CUDA-UVM-style paging, across HBM budgets, on
 * the same Zipf access trace. Reports hit/fault rates, PCIe traffic and
 * effective lookup time — the mechanism behind the paper's "~15%
 * end-to-end improvement from the software cache over UVM".
 */
#include <cstdio>

#include "cache/cached_embedding_store.h"
#include "cache/uvm_store.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/units.h"

namespace {

using namespace neo;
using namespace neo::cache;

struct Result {
    double hit_rate = 0.0;
    uint64_t pcie_bytes = 0;
    double effective_seconds = 0.0;
};

Result
RunSoftwareCache(ReplacementPolicy policy, uint64_t num_sets,
                 const std::vector<int64_t>& trace, int64_t rows,
                 int64_t dim)
{
    ops::EmbeddingTable backing(rows, dim);
    MemoryTier hbm(Tier::kHbm, 1e12, 850e9);
    MemoryTier pcie(Tier::kDdr, 1e12, 13e9);
    CachedEmbeddingStore store(std::move(backing), {num_sets, 32, policy},
                               &hbm, &pcie);
    std::vector<float> buf(static_cast<size_t>(dim));
    for (int64_t r : trace) {
        store.ReadRow(r, buf.data());
    }
    return {store.stats().HitRate(), pcie.total_bytes(),
            hbm.TrafficSeconds() + pcie.TrafficSeconds()};
}

Result
RunUvm(size_t budget_bytes, const std::vector<int64_t>& trace, int64_t rows,
       int64_t dim)
{
    ops::EmbeddingTable backing(rows, dim);
    MemoryTier hbm(Tier::kHbm, 1e12, 850e9);
    MemoryTier pcie(Tier::kDdr, 1e12, 13e9);
    UvmPagedStore store(std::move(backing), 64 * 1024, budget_bytes, &hbm,
                        &pcie);
    std::vector<float> buf(static_cast<size_t>(dim));
    for (int64_t r : trace) {
        store.ReadRow(r, buf.data());
    }
    return {1.0 - store.stats().FaultRate(), pcie.total_bytes(),
            hbm.TrafficSeconds() + pcie.TrafficSeconds()};
}

}  // namespace

int
main()
{
    const int64_t rows = 500000, dim = 32;  // 128 B rows, 64 MB table
    Rng rng(29);
    ZipfSampler sampler(static_cast<uint64_t>(rows), 1.05);
    std::vector<int64_t> trace(300000);
    for (auto& r : trace) {
        r = static_cast<int64_t>(sampler.Sample(rng));
    }

    std::printf("== Ablation: software cache (LRU/LFU) vs UVM paging ==\n");
    std::printf("table %s, Zipf(1.05) trace of %zu lookups; same HBM "
                "budget per row\n\n",
                FormatBytes(static_cast<double>(rows) * dim * 4).c_str(),
                trace.size());

    TablePrinter table({"HBM budget", "policy", "hit rate", "PCIe traffic",
                        "effective time"});
    for (uint64_t sets : {64u, 256u, 1024u}) {
        const size_t budget = sets * 32 * dim * 4;  // same bytes for UVM
        const Result lru =
            RunSoftwareCache(ReplacementPolicy::kLru, sets, trace, rows,
                             dim);
        const Result lfu =
            RunSoftwareCache(ReplacementPolicy::kLfu, sets, trace, rows,
                             dim);
        const Result uvm = RunUvm(budget, trace, rows, dim);
        auto add = [&](const char* name, const Result& r) {
            table.Row()
                .Cell(FormatBytes(static_cast<double>(budget)))
                .Cell(name)
                .CellF(r.hit_rate * 100.0, "%.1f%%")
                .Cell(FormatBytes(static_cast<double>(r.pcie_bytes)))
                .Cell(FormatSeconds(r.effective_seconds));
        };
        add("cache LRU", lru);
        add("cache LFU", lfu);
        add("UVM 64K pages", uvm);
    }
    table.Print();
    std::printf("\nRow-granular caching keeps the Zipf head resident; UVM "
                "drags mostly-cold pages over PCIe (Sec. 4.1.3's case for "
                "the custom cache, worth ~15%% end to end).\n");
    return 0;
}
