/**
 * @file
 * Fleet failover microbenchmark: a 3-replica serving fleet behind the
 * FleetRouter scores a closed-loop request stream twice — once steady,
 * once with the fault injector killing a rank inside one replica's
 * pooled AllToAll mid-run. It reports sustained QPS and p50/p99 request
 * latency for both phases, the measured availability (killed-phase QPS
 * over steady QPS — capacity retained through the death), and the
 * worst-case replayed-request latency, diffed against the
 * sim::FleetModel failover/availability prediction. The run FAILS if
 * any request sheds, completes non-kOk, or scores differently from the
 * reference model — so the smoke run is also a zero-loss failover
 * check.
 *
 * Usage: micro_fleet [--quick] [--out=PATH]
 *   --quick  fewer requests / smaller model (smoke-test mode)
 *   --out    JSON output path (default BENCH_fleet.json in the cwd)
 */
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "comm/fault.h"
#include "comm/threaded_process_group.h"
#include "common/stats.h"
#include "core/distributed_trainer.h"
#include "core/dlrm_config.h"
#include "data/dataset.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "sharding/planner.h"
#include "sim/serving_model.h"

namespace {

using namespace neo;

constexpr int kWorkers = 2;
constexpr int kReplicas = 3;

data::DatasetConfig
MakeDataConfig(const core::DlrmConfig& model)
{
    data::DatasetConfig config;
    config.num_dense = model.num_dense;
    config.seed = 99;
    for (const auto& t : model.tables) {
        config.features.push_back({t.rows, t.pooling, 1.05});
    }
    return config;
}

float
Sigmoid(float logit)
{
    return 1.0f / (1.0f + std::exp(-logit));
}

struct PhaseResult {
    size_t requests = 0;
    double qps = 0.0;
    double p50_us = 0.0;
    double p99_us = 0.0;
    double max_us = 0.0;
    double wall_seconds = 0.0;
    uint64_t failovers = 0;
    uint64_t retries = 0;
};

/** Drive `num_requests` through the router from a closed loop of 32
 *  clients, checking every response against the reference scores. */
bool
RunPhase(serve::FleetRouter& router, const data::Batch& pool,
         const std::vector<float>& ref_scores, size_t warmup,
         size_t num_requests, PhaseResult& result)
{
    const size_t inflight = 32;
    std::vector<serve::Ticket> window;
    std::vector<size_t> window_samples;
    std::vector<double> latencies;
    latencies.reserve(num_requests);

    // Unmeasured warm-up: engines build, caches fill, allocator and
    // dispatch settle — so the two measured phases start equal.
    for (size_t w = 0; w < warmup; w++) {
        serve::Request req;
        req.id = w;
        const size_t i = w % pool.dense.rows();
        req.dense.assign(pool.dense.Row(i),
                         pool.dense.Row(i) + pool.dense.cols());
        req.sparse = pool.sparse.SliceBatch(i, i + 1);
        serve::Ticket ticket = router.Submit(std::move(req));
        if (ticket.admission != serve::Admission::kAccepted) {
            std::fprintf(stderr, "FAIL: warm-up request %zu shed\n", w);
            return false;
        }
        window.push_back(std::move(ticket));
        if (window.size() == inflight || w + 1 == warmup) {
            for (auto& t : window) {
                if (t.response.get().status !=
                    serve::ResponseStatus::kOk) {
                    std::fprintf(stderr,
                                 "FAIL: warm-up request failed\n");
                    return false;
                }
            }
            window.clear();
        }
    }

    size_t next = 0;
    size_t completed = 0;
    const serve::FleetRouter::Totals before = router.totals();
    const auto start = std::chrono::steady_clock::now();
    while (completed < num_requests) {
        if (next < num_requests && window.size() < inflight) {
            serve::Request req;
            req.id = next;
            const size_t i = next % pool.dense.rows();
            req.dense.assign(pool.dense.Row(i),
                             pool.dense.Row(i) + pool.dense.cols());
            req.sparse = pool.sparse.SliceBatch(i, i + 1);
            serve::Ticket ticket = router.Submit(std::move(req));
            if (ticket.admission != serve::Admission::kAccepted) {
                std::fprintf(stderr, "FAIL: request %zu shed\n", next);
                return false;
            }
            window.push_back(std::move(ticket));
            window_samples.push_back(i);
            next++;
            continue;
        }
        serve::Response response = window.front().response.get();
        const size_t sample = window_samples.front();
        window.erase(window.begin());
        window_samples.erase(window_samples.begin());
        if (response.status != serve::ResponseStatus::kOk) {
            std::fprintf(stderr, "FAIL: request %llu completed %s\n",
                         static_cast<unsigned long long>(response.id),
                         serve::ResponseStatusName(response.status));
            return false;
        }
        if (response.score != ref_scores[sample]) {
            std::fprintf(stderr,
                         "FAIL: request %llu score %.9g != ref %.9g\n",
                         static_cast<unsigned long long>(response.id),
                         response.score, ref_scores[sample]);
            return false;
        }
        latencies.push_back(response.total_seconds * 1e6);
        completed++;
    }
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const serve::FleetRouter::Totals after = router.totals();
    result.requests = completed;
    result.qps = static_cast<double>(completed) / result.wall_seconds;
    result.p50_us = Percentile(latencies, 50.0);
    result.p99_us = Percentile(latencies, 99.0);
    result.max_us = Percentile(latencies, 100.0);
    result.failovers = after.failovers - before.failovers;
    result.retries = after.retries - before.retries;
    return true;
}

/** Build a fleet, run one phase, tear it down. `injector` (optional)
 *  is wired into replica 1's world. */
bool
RunFleet(const core::DlrmConfig& model,
         const std::shared_ptr<const serve::ModelSnapshot>& snapshot,
         const data::Batch& pool, const std::vector<float>& ref_scores,
         size_t warmup, size_t num_requests,
         comm::FaultInjector* injector, PhaseResult& result)
{
    std::vector<std::unique_ptr<serve::ReplicaHost>> hosts;
    for (int r = 0; r < kReplicas; r++) {
        serve::ServerOptions sopts;
        sopts.replica_id = r;
        sopts.batcher.max_batch = 16;
        sopts.batcher.max_delay_us = 200;
        sopts.max_queue = 1 << 14;
        sopts.heartbeat = std::chrono::milliseconds(5);
        comm::ThreadedWorld::Options wopts;
        if (r == 1) {
            wopts.injector = injector;
        }
        hosts.push_back(std::make_unique<serve::ReplicaHost>(
            model.num_dense, model.tables.size(), kWorkers, sopts,
            wopts));
        hosts.back()->server().Publish(snapshot);
    }
    serve::RouterOptions ropts;
    ropts.health_period = std::chrono::milliseconds(5);
    serve::FleetRouter router(ropts);
    for (int r = 0; r < kReplicas; r++) {
        router.AddReplica("replica" + std::to_string(r),
                          &hosts[r]->server(), &hosts[r]->world());
    }

    bool ok = RunPhase(router, pool, ref_scores, warmup, num_requests,
                       result);
    if (ok && injector != nullptr) {
        if (injector->Fired().size() != 1) {
            std::fprintf(stderr, "FAIL: injected kill never fired\n");
            ok = false;
        } else if (result.failovers == 0) {
            std::fprintf(stderr, "FAIL: kill fired but no failover\n");
            ok = false;
        } else if (router.HealthyCount() != kReplicas - 1) {
            std::fprintf(stderr,
                         "FAIL: expected %d healthy replicas, got %zu\n",
                         kReplicas - 1, router.HealthyCount());
            ok = false;
        }
    }
    router.Stop();
    for (auto& host : hosts) {
        host->Stop();
    }
    return ok;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    std::string out_path = "BENCH_fleet.json";
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
            out_path = argv[i] + 6;
        } else {
            std::fprintf(stderr, "unknown flag %s\n", argv[i]);
            return 2;
        }
    }

    const size_t num_requests = quick ? 400 : 4000;
    const size_t warmup = num_requests / 8;
    // Kill replica 1 partway through its share of the killed phase —
    // past the batches the warm-up traffic consumes: each served batch
    // is 3 AllToAll calls (lengths, indices, pooled), so batch k's
    // pooled exchange is call_index 3k+2.
    const size_t kill_batch = quick ? 12 : 60;
    const core::DlrmConfig model =
        quick ? core::MakeSmallDlrmConfig(4, 200, 8)
              : core::MakeSmallDlrmConfig(8, 4000, 32);

    sharding::PlannerOptions planner_options;
    planner_options.topo.num_workers = kWorkers;
    planner_options.topo.workers_per_node = kWorkers;
    planner_options.global_batch = 64;
    planner_options.hbm_bytes_per_worker = 1e12;
    sharding::ShardingPlanner planner(planner_options);
    const sharding::ShardingPlan plan = planner.Plan(model.tables);

    // Train briefly, cut the serving snapshot, and score the request
    // pool in-trainer for the bitwise reference.
    const size_t pool_size = 64;
    data::SyntheticCtrDataset pool_stream(MakeDataConfig(model));
    const data::Batch pool = pool_stream.NextBatch(pool_size);
    std::shared_ptr<const serve::ModelSnapshot> snapshot;
    std::vector<float> ref_scores(pool_size);
    comm::ThreadedWorld::Run(kWorkers, [&](int rank,
                                           comm::ProcessGroup& pg) {
        core::DistributedDlrm trainer(model, plan, pg);
        data::SyntheticCtrDataset dataset(MakeDataConfig(model));
        const size_t local_batch = 16;
        for (int s = 0; s < 4; s++) {
            data::Batch global = dataset.NextBatch(local_batch * kWorkers);
            data::Batch local;
            const size_t begin = rank * local_batch;
            local.dense = Matrix(local_batch, global.dense.cols());
            for (size_t b = 0; b < local_batch; b++) {
                for (size_t c = 0; c < global.dense.cols(); c++) {
                    local.dense(b, c) = global.dense(begin + b, c);
                }
            }
            local.sparse =
                global.sparse.SliceBatch(begin, begin + local_batch);
            local.labels.assign(
                global.labels.begin() + begin,
                global.labels.begin() + begin + local_batch);
            trainer.TrainStep(local);
        }
        auto snap = serve::SnapshotFromTrainer(trainer, plan, 1);
        if (rank == 0) {
            snapshot = snap;
        }
        const size_t local_pool = pool_size / kWorkers;
        data::Batch slice;
        const size_t begin = rank * local_pool;
        slice.dense = Matrix(local_pool, pool.dense.cols());
        for (size_t b = 0; b < local_pool; b++) {
            for (size_t c = 0; c < pool.dense.cols(); c++) {
                slice.dense(b, c) = pool.dense(begin + b, c);
            }
        }
        slice.sparse =
            pool.sparse.SliceBatch(begin, begin + local_pool);
        slice.labels.assign(pool_size / kWorkers, 0.0f);
        Matrix logits;
        trainer.Predict(slice, logits);
        for (size_t b = 0; b < local_pool; b++) {
            ref_scores[begin + b] = Sigmoid(logits(b, 0));
        }
    });
    if (snapshot == nullptr) {
        std::fprintf(stderr, "FAIL: snapshot cut failed\n");
        return 1;
    }

    std::printf("== micro_fleet: %d replicas x %d ranks, "
                "%zu requests per phase ==\n\n",
                kReplicas, kWorkers, num_requests);

    PhaseResult steady;
    if (!RunFleet(model, snapshot, pool, ref_scores, warmup,
                  num_requests, /*injector=*/nullptr, steady)) {
        return 1;
    }

    comm::FaultInjector injector;
    comm::FaultSpec spec;
    spec.rank = 1;
    spec.match_op = true;
    spec.op = comm::CollectiveOp::kAllToAll;
    spec.call_index = 3 * kill_batch + 2;
    spec.kind = comm::FaultKind::kKill;
    spec.transient = false;
    injector.Arm(spec);
    PhaseResult killed;
    if (!RunFleet(model, snapshot, pool, ref_scores, warmup,
                  num_requests, &injector, killed)) {
        return 1;
    }

    const double availability =
        steady.qps > 0.0 ? killed.qps / steady.qps : 0.0;

    std::printf("%10s %10s %10s %10s %12s %10s\n", "phase", "qps",
                "p50_us", "p99_us", "max_us", "failovers");
    std::printf("%10s %10.0f %10.0f %10.0f %12.0f %10llu\n", "steady",
                steady.qps, steady.p50_us, steady.p99_us, steady.max_us,
                static_cast<unsigned long long>(steady.failovers));
    std::printf("%10s %10.0f %10.0f %10.0f %12.0f %10llu\n", "killed",
                killed.qps, killed.p50_us, killed.p99_us, killed.max_us,
                static_cast<unsigned long long>(killed.failovers));
    std::printf("\nmeasured availability (killed/steady QPS): %.3f\n",
                availability);

    // Modeled counterpart: feed the measured steady per-replica rate
    // into the FleetModel and compare its failover/availability terms.
    sim::FleetSetup setup;
    setup.replicas = kReplicas;
    setup.replica_qps = steady.qps / kReplicas;
    setup.batch_seconds =
        steady.qps > 0.0 ? 16.0 / steady.qps : 1e-3;
    setup.detect_seconds = 5e-3;   // heartbeat period
    setup.backoff_seconds = 1e-3;  // first retry backoff
    setup.inflight_requests = 32.0;
    const sim::FleetEstimate modeled =
        sim::FleetModel(setup).Estimate(killed.wall_seconds);
    std::printf("modeled failover latency: %.1f us "
                "(measured worst replay: %.1f us)\n",
                modeled.failover_latency * 1e6, killed.max_us);
    std::printf("modeled availability over the killed phase: %.3f\n",
                modeled.availability);

    FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"micro_fleet\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"replicas\": %d,\n", kReplicas);
    std::fprintf(f, "  \"workers_per_replica\": %d,\n", kWorkers);
    std::fprintf(f, "  \"requests_per_phase\": %zu,\n", num_requests);
    std::fprintf(f,
                 "  \"steady\": {\"qps\": %.1f, \"p50_us\": %.1f, "
                 "\"p99_us\": %.1f, \"max_us\": %.1f},\n",
                 steady.qps, steady.p50_us, steady.p99_us, steady.max_us);
    std::fprintf(f,
                 "  \"killed\": {\"qps\": %.1f, \"p50_us\": %.1f, "
                 "\"p99_us\": %.1f, \"max_us\": %.1f, "
                 "\"failovers\": %llu, \"retries\": %llu},\n",
                 killed.qps, killed.p50_us, killed.p99_us, killed.max_us,
                 static_cast<unsigned long long>(killed.failovers),
                 static_cast<unsigned long long>(killed.retries));
    std::fprintf(f, "  \"availability_measured\": %.4f,\n", availability);
    std::fprintf(f, "  \"modeled_failover_latency_us\": %.1f,\n",
                 modeled.failover_latency * 1e6);
    std::fprintf(f, "  \"modeled_availability\": %.4f\n", modeled.availability);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
