/**
 * @file
 * Reproduces Figs. 16-17 (Appendix A): the MLP benchmark — 20 square
 * layers with ReLU, forward + backward + SGD — across batch sizes
 * 128..4096 and layer widths 1K/2K/4K, for V100 (FP32, FP16) and A100
 * (FP32, TF32, FP16, BF16). Values are achieved TF/s from the roofline
 * model; shapes to match: throughput grows with batch and width, FP16
 * far above FP32, A100 above V100.
 */
#include <cstdio>

#include "common/table_printer.h"
#include "sim/gemm_model.h"

namespace {

using namespace neo;
using namespace neo::sim;

void
PrintFigure(const char* title, const GpuSpec& gpu,
            std::initializer_list<Precision> precisions)
{
    const MlpModel model(gpu);
    std::printf("%s\n\n", title);
    for (Precision p : precisions) {
        std::printf("-- precision %s --\n", PrecisionName(p));
        TablePrinter table({"batch", "20x 1Kx1K TF/s", "20x 2Kx2K TF/s",
                            "20x 4Kx4K TF/s"});
        for (int64_t batch : {128, 256, 512, 1024, 2048, 4096}) {
            auto& row = table.Row().Cell(batch);
            for (int64_t width : {1024, 2048, 4096}) {
                const MlpEstimate est =
                    model.Estimate({batch, width, 20, p});
                row.CellF(est.achieved_tflops, "%.1f");
            }
        }
        table.Print();
        std::printf("\n");
    }
}

}  // namespace

int
main()
{
    PrintFigure("== Fig 16: MLP benchmark, V100 ==", GpuSpec::V100(),
                {Precision::kFp32, Precision::kFp16});
    PrintFigure("== Fig 16/17: MLP benchmark, A100 ==", GpuSpec::A100(),
                {Precision::kFp32, Precision::kTf32, Precision::kFp16,
                 Precision::kBf16});
    return 0;
}
