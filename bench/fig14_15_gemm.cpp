/**
 * @file
 * Reproduces Figs. 14-15 (Appendix A): achieved GEMM TF/s for V100 vs
 * A100 across precisions (FP32, TF32, FP16, BF16) over square problem
 * sizes, from the roofline model. The paper's shapes to match: curves
 * rise with size and saturate at ~78.6% of peak on V100 and ~70.5% on
 * A100; tensor-core precisions sit an order of magnitude above FP32.
 */
#include <cstdio>

#include "common/table_printer.h"
#include "sim/gemm_model.h"

int
main()
{
    using namespace neo;
    using namespace neo::sim;

    const GemmModel v100(GpuSpec::V100());
    const GemmModel a100(GpuSpec::A100());

    std::printf("== Fig 14: GEMM TF/s, FP32-class precisions ==\n\n");
    TablePrinter fp32_table({"n=k=m", "V100 FP32", "A100 FP32",
                             "A100 TF32"});
    for (int64_t n : {256, 512, 1024, 2048, 4096, 8192}) {
        fp32_table.Row()
            .Cell(n)
            .CellF(v100.Estimate({n, n, n, Precision::kFp32})
                       .achieved_tflops, "%.1f")
            .CellF(a100.Estimate({n, n, n, Precision::kFp32})
                       .achieved_tflops, "%.1f")
            .CellF(a100.Estimate({n, n, n, Precision::kTf32})
                       .achieved_tflops, "%.1f");
    }
    fp32_table.Print();

    std::printf("\n== Fig 15: GEMM TF/s, FP16/BF16 tensor cores ==\n\n");
    TablePrinter fp16_table({"n=k=m", "V100 FP16", "A100 FP16",
                             "A100 BF16"});
    for (int64_t n : {256, 512, 1024, 2048, 4096, 8192}) {
        fp16_table.Row()
            .Cell(n)
            .CellF(v100.Estimate({n, n, n, Precision::kFp16})
                       .achieved_tflops, "%.1f")
            .CellF(a100.Estimate({n, n, n, Precision::kFp16})
                       .achieved_tflops, "%.1f")
            .CellF(a100.Estimate({n, n, n, Precision::kBf16})
                       .achieved_tflops, "%.1f");
    }
    fp16_table.Print();

    std::printf("\npaper saturation points: V100 FP32 ~12.3 TF/s (78.6%% "
                "of 15.7), A100 TF32 ~110 TF/s (70.5%% of 156)\n");
    return 0;
}
