/**
 * @file
 * Micro-benchmarks for the CPU GEMM and MLP kernels backing the
 * functional training stack.
 */
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "ops/mlp.h"
#include "tensor/gemm.h"

namespace {

using namespace neo;

void
BM_Gemm(benchmark::State& state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    Rng rng(5);
    Matrix a(n, n), b(n, n), c(n, n);
    a.InitUniform(rng, -1.0f, 1.0f);
    b.InitUniform(rng, -1.0f, 1.0f);
    for (auto _ : state) {
        MatMul(a, b, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.counters["GFLOP/s"] = benchmark::Counter(
        2.0 * n * n * n * state.iterations() / 1e9,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void
BM_GemmTransposed(benchmark::State& state)
{
    const size_t n = 256;
    Rng rng(5);
    Matrix a(n, n), b(n, n), c(n, n);
    a.InitUniform(rng, -1.0f, 1.0f);
    b.InitUniform(rng, -1.0f, 1.0f);
    for (auto _ : state) {
        Gemm(Trans::kYes, Trans::kNo, 1.0f, a, b, 0.0f, c);
        benchmark::DoNotOptimize(c.data());
    }
}
BENCHMARK(BM_GemmTransposed);

void
BM_MlpForwardBackward(benchmark::State& state)
{
    const size_t batch = static_cast<size_t>(state.range(0));
    Rng rng(7);
    ops::Mlp mlp({{64, 128, 128, 64, 1}, false}, rng);
    Matrix x(batch, 64);
    x.InitUniform(rng, -1.0f, 1.0f);
    Matrix out, grad_in;
    Matrix grad_out(batch, 1);
    grad_out.Fill(0.01f);
    for (auto _ : state) {
        mlp.Forward(x, out);
        mlp.ZeroGrads();
        mlp.Backward(grad_out, grad_in);
        benchmark::DoNotOptimize(grad_in.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            batch);
}
BENCHMARK(BM_MlpForwardBackward)->Arg(64)->Arg(512)->Arg(2048);

}  // namespace

BENCHMARK_MAIN();
