/**
 * @file
 * SIMD-tier sweep for the packed GEMM path: times Gemm at representative
 * DLRM MLP shapes once per supported kernel tier (scalar / sse / avx2 /
 * avx512) and emits the GFLOP/s curve plus speedup over the scalar
 * reference. Every timed run is also checked bit-for-bit against the
 * scalar-tier result, so the file doubles as a record of the cross-tier
 * determinism contract (DESIGN.md §4h).
 *
 * Usage: micro_gemm [--quick] [--out=PATH]
 *   --quick  small shapes (smoke-test mode)
 *   --out    JSON output path (default BENCH_kernels_gemm.json in the cwd)
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/cpu_features.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "kernels/kernels.h"
#include "tensor/gemm.h"

namespace {

using namespace neo;

struct TierResult {
    kernels::Tier tier;
    double seconds;
    double gflops;
    bool bit_identical;
};

struct ShapeResult {
    size_t m, n, k;
    std::string role;
    std::vector<TierResult> results;
};

/** Best-of-reps wall time for fn(). */
template <typename F>
double
TimeBest(int reps, F&& fn)
{
    double best = 1e30;
    for (int r = 0; r < reps; r++) {
        const auto start = std::chrono::steady_clock::now();
        fn();
        const auto end = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(end - start).count());
    }
    return best;
}

Matrix
RandomMatrix(size_t rows, size_t cols, Rng& rng)
{
    Matrix m(rows, cols);
    m.InitUniform(rng, -1.0f, 1.0f);
    return m;
}

struct Shape {
    size_t m, n, k;
    const char* role;
};

/**
 * Representative DLRM MLP GEMMs (Table 3-style arches): bottom MLP first
 * layer (wide batch, ragged k=13 dense features), mid layers, and the top
 * MLP over the interaction output. One deliberately ragged shape keeps
 * the tail/mask paths honest in the timing loop.
 */
std::vector<Shape>
Shapes(bool quick)
{
    if (quick) {
        return {{128, 128, 64, "quick_mid"}, {67, 63, 29, "quick_ragged"}};
    }
    return {
        {2048, 512, 13, "bottom_mlp_in"},
        {2048, 256, 512, "bottom_mlp_mid"},
        {2048, 1024, 480, "top_mlp_in"},
        {2048, 512, 1024, "top_mlp_mid"},
        {512, 512, 512, "square_512"},
        {253, 509, 131, "ragged"},
    };
}

ShapeResult
BenchShape(const Shape& s, int reps)
{
    Rng rng(11);
    const Matrix a = RandomMatrix(s.m, s.k, rng);
    const Matrix b = RandomMatrix(s.k, s.n, rng);
    Matrix c(s.m, s.n);

    ShapeResult out;
    out.m = s.m;
    out.n = s.n;
    out.k = s.k;
    out.role = s.role;

    kernels::SetTier(kernels::Tier::kScalar);
    MatMul(a, b, c);
    const Matrix reference = c;

    const double flops = 2.0 * static_cast<double>(s.m) * s.n * s.k;
    for (kernels::Tier tier : kernels::SupportedTiers()) {
        kernels::SetTier(tier);
        MatMul(a, b, c);  // warm up + comparison output
        const bool identical = Matrix::Identical(reference, c);
        const double secs = TimeBest(reps, [&] { MatMul(a, b, c); });
        out.results.push_back({tier, secs, flops / secs / 1e9, identical});
    }
    return out;
}

void
PrintAndWrite(const std::vector<ShapeResult>& shapes, bool quick,
              const std::string& out_path)
{
    for (const auto& s : shapes) {
        std::printf("== gemm %zux%zux%zu (%s) ==\n\n", s.m, s.n, s.k,
                    s.role.c_str());
        TablePrinter table(
            {"tier", "seconds", "GFLOP/s", "vs scalar", "bit-identical"});
        const double base = s.results.front().seconds;
        for (const auto& r : s.results) {
            table.Row()
                .Cell(kernels::TierName(r.tier))
                .CellF(r.seconds, "%.5f")
                .CellF(r.gflops, "%.2f")
                .CellF(base / r.seconds, "%.2f")
                .Cell(r.bit_identical ? "yes" : "NO");
        }
        table.Print();
        std::printf("\n");
    }

    FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"micro_gemm\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"cpu_features\": \"%s\",\n",
                 CpuFeatures::Host().ToString().c_str());
    std::fprintf(f, "  \"default_tier\": \"%s\",\n",
                 kernels::TierName(kernels::SupportedTiers().back()));
    std::fprintf(f, "  \"shapes\": [\n");
    for (size_t i = 0; i < shapes.size(); i++) {
        const auto& s = shapes[i];
        std::fprintf(f,
                     "    {\n      \"m\": %zu, \"n\": %zu, \"k\": %zu, "
                     "\"role\": \"%s\",\n",
                     s.m, s.n, s.k, s.role.c_str());
        std::fprintf(f, "      \"tiers\": [\n");
        const double base = s.results.front().seconds;
        for (size_t j = 0; j < s.results.size(); j++) {
            const auto& r = s.results[j];
            std::fprintf(
                f,
                "        {\"tier\": \"%s\", \"seconds\": %.6f, "
                "\"gflops\": %.3f, \"speedup_vs_scalar\": %.3f, "
                "\"bit_identical\": %s}%s\n",
                kernels::TierName(r.tier), r.seconds, r.gflops,
                base / r.seconds, r.bit_identical ? "true" : "false",
                j + 1 < s.results.size() ? "," : "");
        }
        std::fprintf(f, "      ]\n    }%s\n",
                     i + 1 < shapes.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    std::string out_path = "BENCH_kernels_gemm.json";
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
            out_path = argv[i] + 6;
        } else {
            std::fprintf(stderr, "usage: %s [--quick] [--out=PATH]\n",
                         argv[0]);
            return 2;
        }
    }

    const int reps = quick ? 2 : 5;
    std::vector<ShapeResult> shapes;
    for (const Shape& s : Shapes(quick)) {
        shapes.push_back(BenchShape(s, reps));
    }
    PrintAndWrite(shapes, quick, out_path);

    // Non-zero exit if any tier diverged from the scalar reference, so
    // the smoke test doubles as a cross-tier determinism check.
    for (const auto& s : shapes) {
        for (const auto& r : s.results) {
            if (!r.bit_identical) {
                return 1;
            }
        }
    }
    return 0;
}
