/**
 * @file
 * Serving latency/throughput microbenchmark: a 2-rank serving world
 * scores a closed-loop request stream while sweeping the batcher's
 * max_delay_us knob — the latency/throughput trade Table 4's
 * QPS-at-latency-budget numbers are measured under. For each config it
 * reports sustained QPS and p50/p95/p99 request latency; the traced
 * config's per-batch span breakdown is diffed against the
 * sim::ServingModel prediction (measured-vs-modeled, the serving
 * counterpart of the Fig. 12 training diff).
 *
 * Usage: micro_serve [--quick] [--out=PATH] [--trace-out=PATH]
 *   --quick      fewer requests / smaller model (smoke-test mode)
 *   --out        JSON output path (default BENCH_serve.json in the cwd)
 *   --trace-out  also write the traced config's Chrome trace JSON here
 */
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "comm/threaded_process_group.h"
#include "common/stats.h"
#include "core/distributed_trainer.h"
#include "core/dlrm_config.h"
#include "data/dataset.h"
#include "kernels/kernels.h"
#include "obs/metrics.h"
#include "obs/step_breakdown.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "sharding/planner.h"
#include "sim/serving_model.h"

namespace {

using namespace neo;

constexpr int kWorkers = 2;

data::DatasetConfig
MakeDataConfig(const core::DlrmConfig& model)
{
    data::DatasetConfig config;
    config.num_dense = model.num_dense;
    config.seed = 99;
    for (const auto& t : model.tables) {
        config.features.push_back({t.rows, t.pooling, 1.05});
    }
    return config;
}

struct ConfigResult {
    int64_t max_delay_us = 0;
    size_t requests = 0;
    double qps = 0.0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double mean_batch = 0.0;  ///< mean dispatched batch size
};

/** Serve `num_requests` from a closed loop of `inflight` clients. */
bool
RunConfig(const core::DlrmConfig& model,
          const std::shared_ptr<const serve::ModelSnapshot>& snapshot,
          const data::Batch& pool, int64_t max_delay_us,
          size_t num_requests, ConfigResult& result)
{
    serve::ServerOptions options;
    options.batcher.max_batch = 16;
    options.batcher.max_delay_us = max_delay_us;
    options.max_queue = 1 << 14;
    serve::Server server(model.num_dense, model.tables.size(), options);
    server.Publish(snapshot);
    std::thread world([&] {
        comm::ThreadedWorld::Run(kWorkers,
                                 [&](int rank, comm::ProcessGroup& pg) {
                                     server.RankLoop(rank, pg);
                                 });
    });

    // Closed loop with a fixed number of outstanding requests: submit,
    // wait for the oldest once the window is full, repeat.
    const size_t inflight = 32;
    std::vector<serve::Ticket> window;
    std::vector<double> latencies;
    latencies.reserve(num_requests);
    bool ok = true;
    size_t next = 0;
    const auto start = std::chrono::steady_clock::now();
    size_t completed = 0;
    while (completed < num_requests) {
        if (next < num_requests && window.size() < inflight) {
            serve::Request req;
            req.id = next;
            const size_t i = next % pool.dense.rows();
            req.dense.assign(pool.dense.Row(i),
                             pool.dense.Row(i) + pool.dense.cols());
            req.sparse = pool.sparse.SliceBatch(i, i + 1);
            serve::Ticket ticket = server.Submit(std::move(req));
            if (ticket.admission != serve::Admission::kAccepted) {
                std::fprintf(stderr, "FAIL: request %zu shed\n", next);
                ok = false;
                break;
            }
            window.push_back(std::move(ticket));
            next++;
            continue;
        }
        serve::Response response = window.front().response.get();
        window.erase(window.begin());
        completed++;
        if (response.snapshot_version != snapshot->version) {
            std::fprintf(stderr, "FAIL: wrong version on request\n");
            ok = false;
            break;
        }
        latencies.push_back(response.total_seconds);
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    server.Stop();
    world.join();
    if (!ok) {
        return false;
    }

    result.max_delay_us = max_delay_us;
    result.requests = completed;
    result.qps = static_cast<double>(completed) / wall;
    std::vector<double> us;
    us.reserve(latencies.size());
    for (const double s : latencies) {
        us.push_back(s * 1e6);
    }
    result.p50_us = Percentile(us, 50.0);
    result.p95_us = Percentile(us, 95.0);
    result.p99_us = Percentile(us, 99.0);
    const auto batches = obs::MetricsRegistry::Get()
                             .GetHistogram("neo.serve.batch_size")
                             .GetSnapshot();
    result.mean_batch = batches.mean;
    return true;
}

/** Map a ServingModel prediction onto the StepBreakdown buckets so it
 *  can be diffed against the measured serve_batch spans. */
obs::StepBreakdown
ModeledBreakdown(const sim::ServingBreakdown& modeled)
{
    obs::StepBreakdown breakdown;
    breakdown.categories.emb_fwd = modeled.emb_lookup;
    breakdown.categories.mlp_fwd =
        modeled.bot_mlp + modeled.top_mlp + modeled.interaction;
    breakdown.categories.alltoall = modeled.input_a2a + modeled.pooled_a2a;
    breakdown.categories.comm_other = modeled.gather;
    breakdown.categories.other = modeled.overhead;
    breakdown.step_seconds = modeled.total;
    breakdown.steps = 1;
    return breakdown;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    std::string out_path = "BENCH_serve.json";
    std::string trace_out;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
            out_path = argv[i] + 6;
        } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
            trace_out = argv[i] + 12;
        } else {
            std::fprintf(stderr, "unknown flag %s\n", argv[i]);
            return 2;
        }
    }

    const size_t num_requests = quick ? 200 : 2000;
    const core::DlrmConfig model =
        quick ? core::MakeSmallDlrmConfig(4, 200, 8)
              : core::MakeSmallDlrmConfig(8, 4000, 32);
    const std::vector<int64_t> delays =
        quick ? std::vector<int64_t>{0, 1000}
              : std::vector<int64_t>{0, 200, 1000, 4000};

    sharding::PlannerOptions planner_options;
    planner_options.topo.num_workers = kWorkers;
    planner_options.topo.workers_per_node = kWorkers;
    planner_options.global_batch = 32;
    planner_options.hbm_bytes_per_worker = 1e12;
    sharding::ShardingPlanner planner(planner_options);
    const sharding::ShardingPlan plan = planner.Plan(model.tables);

    // Train briefly and cut the serving snapshot.
    std::shared_ptr<const serve::ModelSnapshot> snapshot;
    comm::ThreadedWorld::Run(kWorkers, [&](int rank,
                                           comm::ProcessGroup& pg) {
        core::DistributedDlrm trainer(model, plan, pg);
        data::SyntheticCtrDataset dataset(MakeDataConfig(model));
        const size_t local_batch = 16;
        for (int s = 0; s < 4; s++) {
            data::Batch global = dataset.NextBatch(local_batch * kWorkers);
            data::Batch local;
            const size_t begin = rank * local_batch;
            local.dense = Matrix(local_batch, global.dense.cols());
            for (size_t b = 0; b < local_batch; b++) {
                for (size_t c = 0; c < global.dense.cols(); c++) {
                    local.dense(b, c) = global.dense(begin + b, c);
                }
            }
            local.sparse =
                global.sparse.SliceBatch(begin, begin + local_batch);
            local.labels.assign(
                global.labels.begin() + begin,
                global.labels.begin() + begin + local_batch);
            trainer.TrainStep(local);
        }
        auto snap = serve::SnapshotFromTrainer(trainer, plan, 1);
        if (rank == 0) {
            snapshot = snap;
        }
    });
    if (snapshot == nullptr) {
        std::fprintf(stderr, "FAIL: snapshot cut failed\n");
        return 1;
    }

    data::SyntheticCtrDataset dataset(MakeDataConfig(model));
    const data::Batch pool = dataset.NextBatch(64);

    std::printf("== micro_serve: QPS/latency vs max_delay_us "
                "(%zu requests, %d ranks) ==\n\n",
                num_requests, kWorkers);
    std::printf("%12s %10s %10s %10s %10s %10s\n", "max_delay_us", "qps",
                "p50_us", "p95_us", "p99_us", "avg_batch");

    std::vector<ConfigResult> results;
    for (size_t c = 0; c < delays.size(); c++) {
        // Trace the last config; its spans feed the modeled diff below.
        const bool traced = c + 1 == delays.size();
        obs::MetricsRegistry::Get().Reset();
        obs::Tracer::Get().SetEnabled(traced);
        obs::Tracer::Get().Clear();
        ConfigResult result;
        if (!RunConfig(model, snapshot, pool, delays[c], num_requests,
                       result)) {
            return 1;
        }
        std::printf("%12lld %10.0f %10.0f %10.0f %10.0f %10.1f\n",
                    static_cast<long long>(result.max_delay_us),
                    result.qps, result.p50_us, result.p95_us,
                    result.p99_us, result.mean_batch);
        results.push_back(result);
    }
    obs::Tracer::Get().SetEnabled(false);

    // Measured-vs-modeled per-batch breakdown for the traced config.
    const std::vector<obs::Span> spans = obs::Tracer::Get().Collect();
    const obs::StepBreakdown measured =
        obs::StepBreakdown::FromSpans(spans, /*rank=*/0, "serve_batch");
    const ConfigResult& traced_cfg = results.back();

    sim::WorkloadModel workload;
    workload.name = "micro_serve";
    workload.num_tables = static_cast<int>(model.tables.size());
    workload.dim_avg = static_cast<double>(model.EmbeddingDim());
    workload.avg_pooling =
        static_cast<double>(model.tables.empty()
                                ? 0
                                : model.tables.front().pooling);
    double flops = 0.0;
    const auto bottom = model.BottomLayerSizes();
    for (size_t l = 0; l + 1 < bottom.size(); l++) {
        flops += 2.0 * bottom[l] * bottom[l + 1];
    }
    const auto top = model.TopLayerSizes();
    for (size_t l = 0; l + 1 < top.size(); l++) {
        flops += 2.0 * top[l] * top[l + 1];
    }
    workload.mflops_per_sample = flops / 1e6;
    workload.num_mlp_layers = static_cast<int>(
        bottom.size() + top.size() - 2);
    workload.avg_mlp_size = static_cast<double>(model.EmbeddingDim());

    sim::ServingSetup setup;
    setup.num_gpus = kWorkers;
    setup.batch = static_cast<int64_t>(
        std::max(1.0, std::round(traced_cfg.mean_batch)));
    const sim::ServingModel serving_model(workload, setup);
    const sim::ServingBreakdown modeled = serving_model.Estimate();

    std::printf("\n-- measured vs modeled serve_batch breakdown "
                "(modeled: %d-GPU prototype, batch %lld) --\n",
                setup.num_gpus, static_cast<long long>(setup.batch));
    std::printf("%s\n", obs::StepBreakdown::DiffTable(
                            measured, ModeledBreakdown(modeled))
                            .c_str());
    std::printf("modeled sustained QPS at that batch: %.0f\n",
                modeled.qps);

    if (!trace_out.empty()) {
        if (!obs::Tracer::Get().WriteChromeJson(trace_out)) {
            std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
            return 1;
        }
        std::printf("wrote %s\n", trace_out.c_str());
    }

    FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"micro_serve\",\n");
    std::fprintf(f, "  \"kernel_tier\": \"%s\",\n",
                 neo::kernels::TierName(neo::kernels::ActiveTier()));
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"workers\": %d,\n", kWorkers);
    std::fprintf(f, "  \"requests\": %zu,\n", num_requests);
    std::fprintf(f, "  \"configs\": [\n");
    for (size_t c = 0; c < results.size(); c++) {
        const ConfigResult& r = results[c];
        std::fprintf(f,
                     "    {\"max_delay_us\": %lld, \"qps\": %.1f, "
                     "\"p50_us\": %.1f, \"p95_us\": %.1f, "
                     "\"p99_us\": %.1f, \"avg_batch\": %.2f}%s\n",
                     static_cast<long long>(r.max_delay_us), r.qps,
                     r.p50_us, r.p95_us, r.p99_us, r.mean_batch,
                     c + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"measured_batch_seconds\": %.6f,\n",
                 measured.step_seconds);
    std::fprintf(f, "  \"modeled_batch_seconds\": %.6f,\n", modeled.total);
    std::fprintf(f, "  \"modeled_qps\": %.1f\n", modeled.qps);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
