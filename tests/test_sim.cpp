/**
 * @file
 * Tests for the performance model: hardware presets, roofline behaviours,
 * collective calibration against the paper's measured points (7 GB/s
 * AllToAll, ~60 GB/s AllReduce at 256 MB on 128 GPUs), workload
 * synthesis fidelity to Table 3, the Eq. 1 iteration model's shape
 * properties (Table 4 / Figs. 11-13), and the F1 capacity math.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "sim/capacity_model.h"
#include "sim/comm_model.h"
#include "sim/embedding_model.h"
#include "sim/gemm_model.h"
#include "sim/hardware.h"
#include "sim/iteration_model.h"
#include "sim/plan_bridge.h"
#include "sim/workloads.h"

namespace neo::sim {
namespace {

// ------------------------------------------------------------- Hardware

TEST(Hardware, PresetsMatchPaperCalibration)
{
    const GpuSpec v100 = GpuSpec::V100();
    EXPECT_DOUBLE_EQ(v100.hbm_achievable, 850e9);   // Sec. 5.1
    EXPECT_DOUBLE_EQ(v100.gemm_efficiency, 0.786);  // Sec. 5.1
    const GpuSpec a100 = GpuSpec::A100();
    EXPECT_DOUBLE_EQ(a100.hbm_achievable, 1300e9);
    EXPECT_DOUBLE_EQ(a100.gemm_efficiency, 0.705);

    const NodeSpec node = NodeSpec::Hgx2Prototype();
    EXPECT_EQ(node.gpus_per_node, 8);
    EXPECT_DOUBLE_EQ(node.scaleout_peak, 12.5e9);       // 100 Gbps
    EXPECT_DOUBLE_EQ(node.scaleout_achievable, 10.5e9);

    const ClusterSpec cluster = ClusterSpec::Prototype(16);
    EXPECT_EQ(cluster.NumGpus(), 128);
    EXPECT_NEAR(cluster.TotalHbm(), 4e12, 0.1e12);  // "4TB aggregate HBM"
    EXPECT_NEAR(cluster.TotalDdr(), 24e12, 0.1e12); // "24TB DRAM"
}

TEST(Hardware, PrecisionPeaks)
{
    const GpuSpec v100 = GpuSpec::V100();
    EXPECT_DOUBLE_EQ(v100.PeakTflops(Precision::kFp32), 15.7);
    EXPECT_DOUBLE_EQ(v100.PeakTflops(Precision::kFp16), 125.0);
    // V100 has no TF32; model falls back to FP32 CUDA cores.
    EXPECT_DOUBLE_EQ(v100.PeakTflops(Precision::kTf32), 15.7);
    const GpuSpec a100 = GpuSpec::A100();
    EXPECT_DOUBLE_EQ(a100.PeakTflops(Precision::kTf32), 156.0);
    EXPECT_DOUBLE_EQ(a100.PeakTflops(Precision::kBf16), 312.0);
}

// ----------------------------------------------------------------- GEMM

TEST(GemmModel, AchievedNeverExceedsEfficiencyCap)
{
    const GemmModel model(GpuSpec::V100());
    for (int64_t size : {256, 1024, 4096}) {
        const GemmEstimate est =
            model.Estimate({size, size, size, Precision::kFp32});
        EXPECT_LE(est.achieved_tflops, 15.7 * 0.786 + 1e-9) << size;
        EXPECT_GT(est.achieved_tflops, 0.0);
    }
}

TEST(GemmModel, LargeGemmsApproachPeakEfficiency)
{
    const GemmModel model(GpuSpec::V100());
    const GemmEstimate big =
        model.Estimate({4096, 4096, 4096, Precision::kFp32});
    EXPECT_GT(big.achieved_tflops, 15.7 * 0.786 * 0.8);
}

TEST(GemmModel, AchievedRisesWithProblemSize)
{
    const GemmModel model(GpuSpec::A100());
    double prev = 0.0;
    for (int64_t size : {128, 256, 512, 1024, 2048, 4096}) {
        const GemmEstimate est =
            model.Estimate({size, size, size, Precision::kFp16});
        EXPECT_GE(est.achieved_tflops, prev) << size;
        prev = est.achieved_tflops;
    }
}

TEST(GemmModel, TensorCorePrecisionsFaster)
{
    const GemmModel model(GpuSpec::A100());
    const GemmShape shape{2048, 2048, 2048, Precision::kFp32};
    GemmShape tf32 = shape;
    tf32.precision = Precision::kTf32;
    GemmShape fp16 = shape;
    fp16.precision = Precision::kFp16;
    const double t_fp32 = model.Estimate(shape).seconds;
    const double t_tf32 = model.Estimate(tf32).seconds;
    const double t_fp16 = model.Estimate(fp16).seconds;
    EXPECT_LT(t_tf32, t_fp32);
    EXPECT_LT(t_fp16, t_tf32 * 1.01);
}

TEST(GemmModel, SkinnyGemmIsMemoryBound)
{
    const GemmModel model(GpuSpec::V100());
    const GemmEstimate est =
        model.Estimate({128, 1, 8192, Precision::kFp32});
    EXPECT_TRUE(est.memory_bound);
}

TEST(MlpModel, BackwardCostsTwiceForward)
{
    const MlpModel model(GpuSpec::V100());
    const MlpEstimate est = model.Estimate({1024, 2048, 20,
                                            Precision::kFp32});
    EXPECT_NEAR(est.backward_seconds / est.forward_seconds, 2.0, 0.3);
    EXPECT_GT(est.achieved_tflops, 1.0);
}

// ------------------------------------------------------------ Comm model

TEST(CommModel, AllToAllCalibrated)
{
    const CommModel model(ClusterSpec::Prototype(16));
    // Appendix A / Fig. 20: 7 GB/s per GPU at 256 MB on 128 GPUs.
    const CommEstimate est = model.AllToAll(256e6, 128);
    EXPECT_NEAR(est.bus_bandwidth, 7e9, 1.5e9);
}

TEST(CommModel, AllReduceCalibrated)
{
    const CommModel model(ClusterSpec::Prototype(16));
    // Appendix A / Fig. 20: ~60 GB/s bus bandwidth at 256 MB on 128 GPUs.
    const CommEstimate est = model.AllReduce(256e6, 128);
    EXPECT_NEAR(est.bus_bandwidth, 60e9, 15e9);
}

TEST(CommModel, AllReduceFasterThanAllToAllPerByte)
{
    // Sec. 5.1: AllReduce also rides NVLink, AllToAll is scale-out bound.
    const CommModel model(ClusterSpec::Prototype(16));
    EXPECT_GT(model.AllReduce(256e6, 128).bus_bandwidth,
              model.AllToAll(256e6, 128).bus_bandwidth * 3);
}

TEST(CommModel, SmallMessagesLatencyBound)
{
    const CommModel model(ClusterSpec::Prototype(16));
    const CommEstimate small = model.AllToAll(64e3, 128);
    const CommEstimate large = model.AllToAll(256e6, 128);
    EXPECT_LT(small.bus_bandwidth, large.bus_bandwidth / 10);
}

TEST(CommModel, BandwidthGrowsWithMessageSize)
{
    const CommModel model(ClusterSpec::Prototype(16));
    double prev = 0.0;
    for (double bytes = 1e4; bytes <= 1e9; bytes *= 10) {
        const double bw = model.AllToAll(bytes, 128).bus_bandwidth;
        EXPECT_GE(bw, prev);
        prev = bw;
    }
}

TEST(CommModel, SingleGpuIsFree)
{
    const CommModel model(ClusterSpec::Prototype(1));
    EXPECT_LT(model.AllReduce(1e6, 1).seconds, 1e-3);
    EXPECT_EQ(model.AllToAll(0.0, 8).seconds, 0.0);
}

TEST(CommModel, DefaultFaultModelIsTransparent)
{
    const CommModel clean(ClusterSpec::Prototype(16));
    CommModel faulty(ClusterSpec::Prototype(16));
    faulty.SetFaultModel(FaultModel{});  // all-zero rates: no effect
    for (double bytes : {1e4, 1e6, 1e8}) {
        EXPECT_EQ(clean.AllReduce(bytes, 128).seconds,
                  faulty.AllReduce(bytes, 128).seconds);
        EXPECT_EQ(clean.AllToAll(bytes, 128).seconds,
                  faulty.AllToAll(bytes, 128).seconds);
        EXPECT_EQ(clean.ReduceScatter(bytes, 128).seconds,
                  faulty.ReduceScatter(bytes, 128).seconds);
    }
}

TEST(CommModel, StragglerDelayIsPaidInFull)
{
    // BSP collectives finish at the slowest rank, so a straggler's delay
    // is added verbatim to every collective.
    const CommModel clean(ClusterSpec::Prototype(16));
    CommModel faulty(ClusterSpec::Prototype(16));
    FaultModel faults;
    faults.straggler_delay_s = 3e-3;
    faulty.SetFaultModel(faults);

    for (double bytes : {1e4, 1e6, 1e8}) {
        const double base = clean.AllToAll(bytes, 128).seconds;
        const double slow = faulty.AllToAll(bytes, 128).seconds;
        EXPECT_NEAR(slow - base, faults.straggler_delay_s, 1e-12);
        // Reported bandwidths are derived from the degraded time.
        EXPECT_LT(faulty.AllToAll(bytes, 128).bus_bandwidth,
                  clean.AllToAll(bytes, 128).bus_bandwidth);
    }
}

TEST(CommModel, FailureRateInflatesTimeMonotonically)
{
    CommModel model(ClusterSpec::Prototype(16));
    const double bytes = 64e6;
    double prev = model.AllReduce(bytes, 128).seconds;
    for (double rate : {0.01, 0.05, 0.2, 0.5}) {
        FaultModel faults;
        faults.failure_rate_per_collective = rate;
        model.SetFaultModel(faults);
        const double cur = model.AllReduce(bytes, 128).seconds;
        EXPECT_GT(cur, prev);
        prev = cur;
    }
    // Each expected abort pays at least the detection deadline, so even a
    // rare failure costs more than the raw retry fraction.
    FaultModel faults;
    faults.failure_rate_per_collective = 0.5;
    model.SetFaultModel(faults);
    const double clean = CommModel(ClusterSpec::Prototype(16))
                             .AllReduce(bytes, 128)
                             .seconds;
    // p = 0.5 → one expected aborted attempt: ≥ 2× the clean time plus
    // one detection + recovery charge.
    EXPECT_GE(model.AllReduce(bytes, 128).seconds,
              2.0 * clean + faults.detect_timeout_s +
                  faults.recovery_overhead_s);
}

TEST(CommModel, FreePathsIgnoreFaultModel)
{
    CommModel model(ClusterSpec::Prototype(16));
    FaultModel faults;
    faults.straggler_delay_s = 1.0;
    faults.failure_rate_per_collective = 0.5;
    model.SetFaultModel(faults);
    // Single-GPU and zero-byte collectives never hit the network, so the
    // reliability model does not apply.
    EXPECT_LT(model.AllReduce(1e6, 1).seconds, 1e-3);
    EXPECT_EQ(model.AllToAll(0.0, 8).seconds, 0.0);
}

// ------------------------------------------------------- Embedding model

TEST(EmbeddingModel, BandwidthSaturatesBelowAchievable)
{
    const EmbeddingModel model(GpuSpec::V100());
    EmbBenchShape shape;  // Appendix-A config
    double prev = 0.0;
    for (int64_t batch : {64, 256, 1024, 4096, 16384}) {
        shape.batch = batch;
        const EmbEstimate est = model.Forward(shape);
        EXPECT_GE(est.achieved_bandwidth, prev * 0.999);
        EXPECT_LE(est.achieved_bandwidth, 850e9);
        prev = est.achieved_bandwidth;
    }
    EXPECT_GT(prev, 400e9);  // large batches come close to the roof
}

TEST(EmbeddingModel, A100FasterThanV100)
{
    EmbBenchShape shape;
    shape.batch = 4096;
    const EmbEstimate v100 = EmbeddingModel(GpuSpec::V100()).Forward(shape);
    const EmbEstimate a100 = EmbeddingModel(GpuSpec::A100()).Forward(shape);
    EXPECT_GT(a100.achieved_bandwidth, v100.achieved_bandwidth * 1.2);
}

TEST(EmbeddingModel, BackwardMovesMoreBytesThanForward)
{
    const EmbeddingModel model(GpuSpec::V100());
    EmbBenchShape shape;
    shape.batch = 2048;
    EXPECT_GT(model.BackwardFused(shape).bytes_moved,
              model.Forward(shape).bytes_moved);
}

// -------------------------------------------------------------- Workloads

TEST(Workloads, Table3StatsReproduced)
{
    for (const auto& workload : WorkloadModel::All()) {
        const auto tables = workload.SynthesizeTables();
        EXPECT_EQ(static_cast<int>(tables.size()), workload.num_tables);
        double params = 0.0, dim_sum = 0.0, pool_sum = 0.0;
        for (const auto& t : tables) {
            params += static_cast<double>(t.rows) * t.dim;
            dim_sum += static_cast<double>(t.dim);
            pool_sum += t.pooling;
            EXPECT_GE(t.dim, workload.dim_min);
            EXPECT_LE(t.dim, workload.dim_max);
        }
        EXPECT_NEAR(params / workload.EmbeddingParams(), 1.0, 0.05)
            << workload.name;
        EXPECT_NEAR(dim_sum / tables.size() / workload.dim_avg, 1.0, 0.25)
            << workload.name;
        EXPECT_NEAR(pool_sum / tables.size() / workload.avg_pooling, 1.0,
                    0.35)
            << workload.name;
    }
}

TEST(Workloads, F1HasMassiveSingleDeviceBreakingTables)
{
    const auto tables = WorkloadModel::F1().SynthesizeTables();
    // Sec. 5.3.3: tables with ~10B rows that exceed one GPU (and node).
    int64_t max_rows = 0;
    for (const auto& t : tables) {
        max_rows = std::max(max_rows, t.rows);
    }
    EXPECT_GT(static_cast<double>(max_rows) * 256 * 4, 32e9);
}

// ------------------------------------------------------------ Plan bridge

TEST(PlanBridge, OptimizedShardingBalancesBetterThanBaseline)
{
    const ClusterSpec cluster = ClusterSpec::Prototype(16);
    PlanStudyOptions baseline;
    baseline.optimized_sharding = false;
    baseline.emb_precision = Precision::kFp16;  // fit comfortably
    PlanStudyOptions optimized = baseline;
    optimized.optimized_sharding = true;

    const auto workload = WorkloadModel::A2();
    const PlanStudyResult base = PlanForWorkload(workload, cluster,
                                                 baseline);
    const PlanStudyResult opt = PlanForWorkload(workload, cluster,
                                                optimized);
    ASSERT_TRUE(base.feasible);
    ASSERT_TRUE(opt.feasible);
    EXPECT_LE(opt.imbalance, base.imbalance + 1e-9);
}

TEST(PlanBridge, A2UsesMixedSchemes)
{
    // Sec. 5.3.2: A2's optimized plan mixes table-wise + column-wise +
    // data-parallel sharding.
    const ClusterSpec cluster = ClusterSpec::Prototype(16);
    PlanStudyOptions options;
    options.emb_precision = Precision::kFp16;
    const PlanStudyResult result =
        PlanForWorkload(WorkloadModel::A2(), cluster, options);
    ASSERT_TRUE(result.feasible);
    EXPECT_GT(result.scheme_counts.count(sharding::Scheme::kTableWise), 0u);
    EXPECT_GT(result.scheme_counts.count(sharding::Scheme::kDataParallel),
              0u);
}

// -------------------------------------------------------- IterationModel

TrainingSetup
MakeSetup(int gpus, int64_t per_gpu_batch = 512)
{
    TrainingSetup setup;
    setup.cluster = ClusterSpec::Prototype((gpus + 7) / 8);
    setup.num_gpus = gpus;
    setup.per_gpu_batch = per_gpu_batch;
    return setup;
}

TEST(IterationModel, QpsScalesWithGpusButSublinearly)
{
    const auto workload = WorkloadModel::A2();
    TrainingSetup s8 = MakeSetup(8);
    TrainingSetup s128 = MakeSetup(128);
    const double qps8 = IterationModel(workload, s8).Estimate().qps;
    const double qps128 = IterationModel(workload, s128).Estimate().qps;
    const double scaling = qps128 / qps8 / 16.0;  // relative to linear
    EXPECT_GT(qps128, qps8);
    // Fig. 11: ~50% scaling efficiency for A2 at 128 GPUs.
    EXPECT_GT(scaling, 0.25);
    EXPECT_LT(scaling, 0.85);
}

TEST(IterationModel, ExposedCommGrowsWithScale)
{
    const auto workload = WorkloadModel::A2();
    const IterationBreakdown bd8 =
        IterationModel(workload, MakeSetup(8)).Estimate();
    const IterationBreakdown bd128 =
        IterationModel(workload, MakeSetup(128)).Estimate();
    EXPECT_GT(bd128.exposed_comm, bd8.exposed_comm);
    // Fig. 12: exposed < serialized (overlap hides work).
    EXPECT_LT(bd128.total, bd128.SerializedSum());
}

TEST(IterationModel, AllReduceMostlyHiddenAt16Nodes)
{
    // Sec. 5.3.1: AllReduce is hidden by backward compute up to 16 nodes.
    const auto workload = WorkloadModel::A2();
    const IterationBreakdown bd =
        IterationModel(workload, MakeSetup(128)).Estimate();
    EXPECT_LT(bd.allreduce,
              bd.top_mlp_bwd + bd.interaction_bwd + bd.bot_mlp_bwd +
                  bd.grad_a2a_bwd + bd.emb_update);
}

TEST(IterationModel, QuantizedCommsImproveThroughput)
{
    const auto workload = WorkloadModel::A2();
    TrainingSetup fp32 = MakeSetup(128);
    fp32.imbalance = 1.3;
    TrainingSetup quant = fp32;
    quant.fwd_comm = Precision::kFp16;
    quant.bwd_comm = Precision::kBf16;
    const double qps_fp32 = IterationModel(workload, fp32).Estimate().qps;
    const double qps_quant = IterationModel(workload, quant).Estimate().qps;
    EXPECT_GT(qps_quant, qps_fp32 * 1.02);
}

TEST(IterationModel, LargerBatchImprovesQps)
{
    const auto workload = WorkloadModel::A2();
    const double qps_64k =
        IterationModel(workload, MakeSetup(128, 512)).Estimate().qps;
    const double qps_256k =
        IterationModel(workload, MakeSetup(128, 2048)).Estimate().qps;
    EXPECT_GT(qps_256k, qps_64k);
}

TEST(IterationModel, ImbalanceHurtsThroughput)
{
    const auto workload = WorkloadModel::A1();
    TrainingSetup balanced = MakeSetup(128);
    TrainingSetup skewed = MakeSetup(128);
    skewed.imbalance = 2.0;
    EXPECT_GT(IterationModel(workload, balanced).Estimate().qps,
              IterationModel(workload, skewed).Estimate().qps * 1.2);
}

TEST(IterationModel, A3SlowerThanA2SlowerThanA1)
{
    // Table 4 ordering at 128 GPUs: A1 1047K > A2 622K > A3 360K.
    const double a1 =
        IterationModel(WorkloadModel::A1(), MakeSetup(128)).Estimate().qps;
    const double a2 =
        IterationModel(WorkloadModel::A2(), MakeSetup(128)).Estimate().qps;
    const double a3 =
        IterationModel(WorkloadModel::A3(), MakeSetup(128)).Estimate().qps;
    EXPECT_GT(a1, a2);
    EXPECT_GT(a2, a3);
}

// --------------------------------------------------------- Capacity / PS

TEST(Capacity, F1NaiveIs96TB)
{
    const CapacityEstimate est = EstimateCapacity(
        WorkloadModel::F1(), ClusterSpec::Prototype(16), Precision::kFp32,
        /*rowwise_adagrad=*/false, 256.0);
    EXPECT_NEAR(est.naive_bytes, 96e12, 1e12);  // Sec. 5.3.3
    EXPECT_FALSE(est.fits_hbm_ddr);
}

TEST(Capacity, F1OptimizedFitsHbmPlusDdr)
{
    // FP16 + row-wise AdaGrad: 24 TB + ~0.19 TB state, fits 4+24 TB.
    const CapacityEstimate est = EstimateCapacity(
        WorkloadModel::F1(), ClusterSpec::Prototype(16), Precision::kFp16,
        /*rowwise_adagrad=*/true, 256.0);
    EXPECT_NEAR(est.optimized_bytes, 24e12, 1.5e12);
    EXPECT_FALSE(est.fits_hbm);
    EXPECT_TRUE(est.fits_hbm_ddr);
}

TEST(PsBaseline, SixteenGpuSpeedupIsAboutThreeX)
{
    // Sec. 5.3: A1 at 273K QPS on 16 GPUs ~ 3x the CPU PS system with
    // ~16 trainers. Check the modeled ratio lands in a sane band.
    const PsBaselineModel ps(WorkloadModel::A1());
    const double cpu_qps = ps.QpsAtTrainers(16);
    const double ratio = 273e3 / cpu_qps;
    EXPECT_GT(ratio, 1.5);
    EXPECT_LT(ratio, 6.0);
}

TEST(PsBaseline, QualityNeutralCeilingGivesTensOfXAt128Gpus)
{
    const PsBaselineModel ps(WorkloadModel::A1());
    const double ratio = 1047e3 / ps.MaxQualityNeutralQps();
    EXPECT_GT(ratio, 8.0);
    EXPECT_LT(ratio, 80.0);
}

TEST(PsBaseline, ScalingSaturates)
{
    const PsBaselineModel ps(WorkloadModel::A1());
    const double q16 = ps.QpsAtTrainers(16);
    const double q32 = ps.QpsAtTrainers(32);
    EXPECT_GT(q32, q16);          // still grows...
    EXPECT_LT(q32, q16 * 2.0);    // ...but sublinearly
}

}  // namespace
}  // namespace neo::sim

// ------------------------------------------------------- Trace replay

#include "sim/trace_replay.h"

namespace neo::sim {
namespace {

TEST(TraceReplay, SumsPerOpContributions)
{
    const CommModel model(ClusterSpec::Prototype(16));
    std::vector<comm::TraceEvent> trace = {
        {comm::CollectiveOp::kAllReduce, 1 << 20},
        {comm::CollectiveOp::kAllToAll, 1 << 20},
        {comm::CollectiveOp::kAllToAll, 1 << 18},
        {comm::CollectiveOp::kReduceScatter, 1 << 16},
    };
    const ReplayEstimate est = ReplayTrace(trace, model, 128);
    EXPECT_EQ(est.calls, 4u);
    EXPECT_GT(est.allreduce_seconds, 0.0);
    EXPECT_GT(est.alltoall_seconds, est.allreduce_seconds);
    EXPECT_NEAR(est.total_seconds,
                est.allreduce_seconds + est.alltoall_seconds +
                    est.reducescatter_seconds,
                1e-12);
}

TEST(TraceReplay, ByteScaleGrowsTime)
{
    const CommModel model(ClusterSpec::Prototype(16));
    std::vector<comm::TraceEvent> trace = {
        {comm::CollectiveOp::kAllToAll, 4 << 20},
    };
    const double t1 = ReplayTrace(trace, model, 128, 1.0).total_seconds;
    const double t8 = ReplayTrace(trace, model, 128, 8.0).total_seconds;
    EXPECT_GT(t8, t1 * 4.0);
}

TEST(TraceReplay, MoreGpusMoreAllToAllTime)
{
    const CommModel model(ClusterSpec::Prototype(16));
    std::vector<comm::TraceEvent> trace = {
        {comm::CollectiveOp::kAllToAll, 16 << 20},
    };
    EXPECT_LT(ReplayTrace(trace, model, 16).total_seconds,
              ReplayTrace(trace, model, 128).total_seconds);
}

TEST(TraceReplay, TimedTraceReplaysIdenticalToUntimed)
{
    // Replay re-estimates time from op kinds and sizes alone; the
    // measured timing a live run attaches must not perturb it.
    const CommModel model(ClusterSpec::Prototype(16));
    const std::vector<comm::TraceEvent> untimed = {
        {comm::CollectiveOp::kAllReduce, 1 << 20},
        {comm::CollectiveOp::kAllToAll, 1 << 18},
        {comm::CollectiveOp::kBroadcast, 1 << 10},
    };
    std::vector<comm::TraceEvent> timed = untimed;
    for (size_t i = 0; i < timed.size(); i++) {
        timed[i].start_ns = static_cast<int64_t>(1000 * i);
        timed[i].duration_ns = 500;
        timed[i].seq = i;
    }
    const ReplayEstimate from_untimed = ReplayTrace(untimed, model, 128);
    const ReplayEstimate from_timed = ReplayTrace(timed, model, 128);
    EXPECT_DOUBLE_EQ(from_timed.total_seconds, from_untimed.total_seconds);
    EXPECT_DOUBLE_EQ(from_timed.allreduce_seconds,
                     from_untimed.allreduce_seconds);
    EXPECT_DOUBLE_EQ(from_timed.alltoall_seconds,
                     from_untimed.alltoall_seconds);
    EXPECT_EQ(from_timed.calls, from_untimed.calls);

    EXPECT_DOUBLE_EQ(MeasuredCommSeconds(untimed), 0.0);
    EXPECT_NEAR(MeasuredCommSeconds(timed), 3 * 500e-9, 1e-15);
}

// -------------------------------------- iteration-model property sweep

struct SweepCase {
    int workload;  // index into WorkloadModel::All()
    int gpus;
};

class IterationSweep : public ::testing::TestWithParam<SweepCase>
{
};

TEST_P(IterationSweep, BreakdownInvariantsHold)
{
    const auto workloads = WorkloadModel::All();
    const WorkloadModel& workload = workloads[GetParam().workload];
    TrainingSetup setup;
    setup.cluster = ClusterSpec::Prototype((GetParam().gpus + 7) / 8);
    setup.num_gpus = GetParam().gpus;
    setup.per_gpu_batch = 512;
    const IterationBreakdown bd =
        IterationModel(workload, setup).Estimate();

    EXPECT_GT(bd.qps, 0.0);
    EXPECT_GT(bd.total, 0.0);
    // The exposed total can never beat the compute-only lower bound or
    // exceed the fully-serialized upper bound.
    EXPECT_LE(bd.total, bd.SerializedSum() + 1e-12);
    EXPECT_GE(bd.exposed_comm, -1e-12);
    EXPECT_GE(bd.t_fwd, bd.top_mlp_fwd);
    EXPECT_GE(bd.t_bwd, bd.allreduce - 1e-12);  // AllReduce never exceeds
    EXPECT_NEAR(bd.total, bd.t_fwd + bd.t_bwd + bd.overhead, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsByScale, IterationSweep,
    ::testing::Values(SweepCase{0, 8}, SweepCase{0, 64}, SweepCase{0, 128},
                      SweepCase{1, 8}, SweepCase{1, 64}, SweepCase{1, 128},
                      SweepCase{2, 128}, SweepCase{3, 128}));

}  // namespace
}  // namespace neo::sim
