/**
 * @file
 * Tests for the fleet telemetry plane: flight-recorder ring semantics and
 * post-mortem bundles (including the FaultInjector-killed-rank contract),
 * straggler detection from both barrier-arrival lateness and harvested
 * breakdown skew, the harvest wire format, cross-rank harvest equality
 * (root's view matches each rank's locally computed StepBreakdown), live
 * exposition, and MetricsRegistry export/Reset atomicity under threads.
 *
 * TelemetryArtifacts.MergedTimelineBundleAndStragglerGauge doubles as the
 * CI artifact producer: run under NEO_TELEMETRY_DIR it leaves a merged
 * multi-rank Perfetto trace and a dead rank's flight bundle on disk for
 * scripts/trace_to_perfetto.py to validate (see tests/CMakeLists.txt).
 */
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "comm/fault.h"
#include "comm/process_group.h"
#include "comm/threaded_process_group.h"
#include "obs/exposition.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/step_breakdown.h"
#include "obs/straggler.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace neo::obs {
namespace {

using std::chrono::milliseconds;

/** Fresh recorder state (default rings, no dump dir) for one test. */
class RecorderGuard
{
  public:
    explicit RecorderGuard(const RecorderOptions& options = RecorderOptions())
    {
        FlightRecorder::Get().Configure(options);
        FlightRecorder::Get().SetDirectory("");
        FlightRecorder::Get().SetEnabled(true);
    }

    ~RecorderGuard()
    {
        FlightRecorder::Get().Configure(RecorderOptions());
        FlightRecorder::Get().SetDirectory("");
    }
};

/** Enables tracing for one test and restores a clean tracer after. */
class TraceGuard
{
  public:
    TraceGuard()
    {
        Tracer::Get().Clear();
        Tracer::Get().SetEnabled(true);
    }

    ~TraceGuard()
    {
        Tracer::Get().SetEnabled(false);
        Tracer::Get().Clear();
    }
};

/** Unique empty scratch directory under the system temp dir. */
std::filesystem::path
FreshDir(const std::string& name)
{
    const auto dir = std::filesystem::temp_directory_path() / name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

std::string
ReadFile(const std::filesystem::path& path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

TEST(FlightRecorder, RingKeepsLastEntriesOldestFirst)
{
    RecorderOptions options;
    options.op_ring = 4;
    RecorderGuard guard(options);
    auto& recorder = FlightRecorder::Get();

    static const char* const kNames[] = {"op0", "op1", "op2",
                                         "op3", "op4", "op5"};
    for (int i = 0; i < 6; i++) {
        recorder.RecordOp(0, kNames[i], i);
    }

    const auto ops = recorder.RecentOps(0);
    ASSERT_EQ(ops.size(), 4u);
    EXPECT_STREQ(ops.front().name, "op2");
    EXPECT_STREQ(ops.back().name, "op5");
    for (size_t i = 0; i + 1 < ops.size(); i++) {
        EXPECT_LT(ops[i].t_ns, ops[i + 1].t_ns);
    }
    EXPECT_TRUE(recorder.RecentOps(1).empty());
}

TEST(FlightRecorder, DisabledRecordsNothingAndDumpsNothing)
{
    RecorderGuard guard;
    auto& recorder = FlightRecorder::Get();
    recorder.SetEnabled(false);
    recorder.RecordOp(0, "allreduce", 1);
    recorder.RecordStep(0, 0, 0.1, 0.5);
    recorder.RecordEvent(0, "abort", "x");
    EXPECT_EQ(recorder.DumpBundle(0, "x"), "");
    recorder.SetEnabled(true);
    EXPECT_TRUE(recorder.RecentOps(0).empty());
    EXPECT_TRUE(recorder.RecentSteps(0).empty());
    EXPECT_TRUE(recorder.RecentEvents(0).empty());
}

TEST(FlightRecorder, BundleJsonCarriesHeaderRingsAndLastOp)
{
    RecorderGuard guard;
    auto& recorder = FlightRecorder::Get();
    recorder.RecordOp(2, "allreduce", 100);
    recorder.RecordOp(2, "alltoall", 200);
    recorder.RecordStep(2, 7, 0.125, 0.5);
    recorder.RecordEvent(2, "abort", "she said \"stop\"");

    const std::string json = recorder.BundleJson(2, "test cause");
    EXPECT_NE(json.find("\"neo_flight_recorder\":1"), std::string::npos);
    EXPECT_NE(json.find("\"rank\":2"), std::string::npos);
    EXPECT_NE(json.find("\"cause\":\"test cause\""), std::string::npos);
    EXPECT_NE(json.find("\"last_op\":\"alltoall\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"allreduce\""), std::string::npos);
    EXPECT_NE(json.find("\"step\":7"), std::string::npos);
    EXPECT_NE(json.find("\"kind\":\"abort\""), std::string::npos);
    // Quotes inside event details must be escaped, not truncate the JSON.
    EXPECT_NE(json.find("she said \\\"stop\\\""), std::string::npos);
    EXPECT_NE(json.find("\"metrics\":{"), std::string::npos);
}

TEST(FlightRecorder, DumpBundleNeedsADirectory)
{
    RecorderGuard guard;
    auto& recorder = FlightRecorder::Get();
    recorder.RecordOp(0, "barrier", 1);

    if (std::getenv("NEO_TELEMETRY_DIR") == nullptr) {
        EXPECT_EQ(recorder.DumpBundle(0, "no dir"), "");
    }

    const auto dir = FreshDir("neo_test_flight_dump");
    recorder.SetDirectory(dir.string());
    const std::string path = recorder.DumpBundle(0, "with dir");
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path, (dir / "flight_rank0.json").string());
    const std::string json = ReadFile(path);
    EXPECT_NE(json.find("\"neo_flight_recorder\":1"), std::string::npos);
    EXPECT_NE(json.find("\"cause\":\"with dir\""), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(FlightRecorder, MetricsDeltaTracksCounterIncrements)
{
    RecorderGuard guard;
    auto& recorder = FlightRecorder::Get();
    auto& counter =
        MetricsRegistry::Get().GetCounter("neo.test.flight_delta");

    counter.Add(5);
    recorder.RecordMetricsDelta(9);  // baseline capture: delta 5 from zero
    counter.Add(3);
    recorder.RecordMetricsDelta(9);  // second capture: delta 3

    const std::string json = recorder.BundleJson(9, "deltas");
    EXPECT_NE(json.find("\"neo.test.flight_delta\":5"), std::string::npos);
    EXPECT_NE(json.find("\"neo.test.flight_delta\":3"), std::string::npos);
}

TEST(FlightRecorder, KilledRankLeavesCompleteBundle)
{
    RecorderGuard guard;
    const auto dir = FreshDir("neo_test_flight_kill");
    auto& recorder = FlightRecorder::Get();
    recorder.SetDirectory(dir.string());

    comm::FaultInjector injector;
    comm::FaultSpec kill;
    kill.rank = 2;
    kill.match_op = true;
    kill.op = comm::CollectiveOp::kAllReduce;
    kill.call_index = 1;  // rank 2's second AllReduce
    kill.kind = comm::FaultKind::kKill;
    kill.transient = true;
    injector.Arm(kill);

    comm::ThreadedWorld::Options options;
    options.injector = &injector;
    options.barrier_timeout = milliseconds(20000);
    EXPECT_THROW(
        comm::ThreadedWorld::Run(
            4, options,
            [&](int rank, comm::ProcessGroup& pg) {
                std::vector<float> buf(32, static_cast<float>(rank));
                for (int i = 0; i < 3; i++) {
                    pg.AllReduceSum(buf.data(), buf.size());
                }
            }),
        comm::RankFailure);

    // The dead rank's op ring must end at the kill site: RecordOp runs
    // before fault injection can fire.
    const auto ops = recorder.RecentOps(2);
    ASSERT_FALSE(ops.empty());
    EXPECT_STREQ(ops.back().name, "allreduce");

    // The abort landed in the event ring with the injected cause...
    const auto events = recorder.RecentEvents(2);
    ASSERT_FALSE(events.empty());
    EXPECT_STREQ(events.back().kind, "abort");
    EXPECT_NE(events.back().detail.find("injected kill"), std::string::npos);

    // ...and the failure path dumped a complete bundle for the dead rank.
    const std::string json = ReadFile(dir / "flight_rank2.json");
    ASSERT_FALSE(json.empty());
    EXPECT_NE(json.find("\"neo_flight_recorder\":1"), std::string::npos);
    EXPECT_NE(json.find("\"rank\":2"), std::string::npos);
    EXPECT_NE(json.find("\"last_op\":\"allreduce\""), std::string::npos);
    EXPECT_NE(json.find("injected kill"), std::string::npos);
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// StragglerDetector
// ---------------------------------------------------------------------------

StepBreakdown
SyntheticBreakdown(double step_seconds, double comm_seconds)
{
    StepBreakdown b;
    b.step_seconds = step_seconds;
    b.steps = 1;
    b.categories.alltoall = comm_seconds;
    b.categories.mlp_fwd = (step_seconds - comm_seconds) * 0.7;
    b.categories.other = (step_seconds - comm_seconds) * 0.3;
    return b;
}

TEST(Straggler, FromBreakdownsFlagsNonCommOutlier)
{
    // Under BSP the fast ranks park the skew inside their comm buckets,
    // so equal step times with unequal comm time localize the straggler.
    std::vector<StepBreakdown> per_rank;
    per_rank.push_back(SyntheticBreakdown(0.100, 0.070));  // 30 ms work
    per_rank.push_back(SyntheticBreakdown(0.100, 0.070));
    per_rank.push_back(SyntheticBreakdown(0.100, 0.005));  // 95 ms work
    per_rank.push_back(SyntheticBreakdown(0.100, 0.070));

    const StragglerVerdict verdict =
        StragglerDetector::FromBreakdowns(per_rank);
    EXPECT_TRUE(verdict.flagged);
    EXPECT_EQ(verdict.rank, 2);
    EXPECT_GT(verdict.skew, 3.0);
    EXPECT_NE(verdict.Describe().find("rank 2"), std::string::npos);
}

TEST(Straggler, FromBreakdownsUniformWorldNotFlagged)
{
    std::vector<StepBreakdown> per_rank(
        4, SyntheticBreakdown(0.100, 0.070));
    const StragglerVerdict verdict =
        StragglerDetector::FromBreakdowns(per_rank);
    EXPECT_FALSE(verdict.flagged);
    EXPECT_EQ(verdict.rank, -1);
    EXPECT_EQ(verdict.Describe(), "");
}

TEST(Straggler, ArrivalLatenessAnalyzePublishesGauges)
{
    auto& detector = StragglerDetector::Get();
    detector.Configure(StragglerOptions());
    for (int i = 0; i < 3; i++) {
        detector.RecordArrival(0, 1e-5);
        detector.RecordArrival(1, 2e-5);
        detector.RecordArrival(2, 1e-5);
        detector.RecordArrival(3, 0.05);  // consistently 50 ms late
    }

    const StragglerVerdict verdict = detector.Analyze();
    EXPECT_TRUE(verdict.flagged);
    EXPECT_EQ(verdict.rank, 3);
    EXPECT_NEAR(detector.ArrivalEwma(3), 0.05, 1e-9);

    const RegistrySnapshot snap = MetricsRegistry::Get().Export();
    EXPECT_DOUBLE_EQ(snap.GaugeValue("neo.obs.straggler_rank"), 3.0);
    EXPECT_GT(snap.GaugeValue("neo.obs.straggler_skew"), 3.0);
    EXPECT_NE(detector.DescribeStraggler().find("rank 3"),
              std::string::npos);

    detector.Configure(StragglerOptions());
}

TEST(Straggler, QuietWorldClearsTheGauge)
{
    auto& detector = StragglerDetector::Get();
    detector.Configure(StragglerOptions());
    for (int r = 0; r < 4; r++) {
        detector.RecordArrival(r, 1e-5);
    }
    const StragglerVerdict verdict = detector.Analyze();
    EXPECT_FALSE(verdict.flagged);
    EXPECT_DOUBLE_EQ(
        MetricsRegistry::Get().Export().GaugeValue("neo.obs.straggler_rank"),
        -1.0);
    EXPECT_EQ(detector.DescribeStraggler(), "");
}

TEST(Straggler, DetectorNamesFaultInjectorDelayedRank)
{
    auto& detector = StragglerDetector::Get();
    detector.Configure(StragglerOptions());

    comm::FaultInjector injector;
    comm::FaultSpec delay;
    delay.rank = 2;
    delay.match_op = true;
    delay.op = comm::CollectiveOp::kAllReduce;
    delay.kind = comm::FaultKind::kDelay;
    delay.delay = milliseconds(20);
    for (uint64_t call = 0; call < 4; call++) {
        delay.call_index = call;
        injector.Arm(delay);
    }

    comm::ThreadedWorld::Options options;
    options.injector = &injector;
    options.barrier_timeout = milliseconds(20000);
    comm::ThreadedWorld world(4, options);
    std::vector<std::thread> threads;
    for (int r = 0; r < 4; r++) {
        threads.emplace_back([&world, r] {
            auto& pg = world.GetGroup(r);
            std::vector<float> buf(32, 1.0f);
            for (int i = 0; i < 5; i++) {
                pg.AllReduceSum(buf.data(), buf.size());
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }

    const StragglerVerdict verdict = world.AnalyzeStragglers();
    EXPECT_TRUE(verdict.flagged);
    EXPECT_EQ(verdict.rank, 2);
    EXPECT_NE(verdict.Describe().find("rank 2"), std::string::npos);
    EXPECT_DOUBLE_EQ(
        MetricsRegistry::Get().Export().GaugeValue("neo.obs.straggler_rank"),
        2.0);

    detector.Configure(StragglerOptions());
}

// ---------------------------------------------------------------------------
// Harvest wire format
// ---------------------------------------------------------------------------

RankTelemetry
SampleTelemetry()
{
    RankTelemetry t;
    t.rank = 3;
    t.clock_ns = 123456789;
    t.metrics.counters = {{"neo.a", 7}, {"neo.b", 42}};
    t.metrics.gauges = {{"neo.g", 1.5}};
    Histogram::Snapshot h;
    h.count = 10;
    h.sum = 5.0;
    h.mean = 0.5;
    h.min = 0.1;
    h.max = 0.9;
    h.p50 = 0.5;
    h.p95 = 0.85;
    h.p99 = 0.89;
    h.p999 = 0.899;
    h.samples_dropped = 2;
    h.approximate = true;
    t.metrics.histograms = {{"neo.h", h}};
    t.breakdown.step_seconds = 0.125;
    t.breakdown.steps = 4;
    t.breakdown.categories.mlp_fwd = 0.05;
    t.breakdown.categories.alltoall = 0.075;
    t.breakdown.overlap_saved = 0.01;
    t.spans.push_back(HarvestedSpan{"train_step", "step", 100, 900, 3, 1, 0});
    t.spans.push_back(HarvestedSpan{"fwd", "mlp_fwd", 150, 200, 3, 1, 1});
    return t;
}

TEST(TelemetryWire, RoundTripPreservesEverything)
{
    const RankTelemetry t = SampleTelemetry();
    const RankTelemetry back =
        DeserializeRankTelemetry(SerializeRankTelemetry(t));

    EXPECT_EQ(back.rank, t.rank);
    EXPECT_EQ(back.clock_ns, t.clock_ns);
    ASSERT_EQ(back.metrics.counters.size(), 2u);
    EXPECT_EQ(back.metrics.CounterValue("neo.b"), 42u);
    EXPECT_DOUBLE_EQ(back.metrics.GaugeValue("neo.g"), 1.5);
    ASSERT_EQ(back.metrics.histograms.size(), 1u);
    const auto& h = back.metrics.histograms[0];
    EXPECT_EQ(h.first, "neo.h");
    EXPECT_EQ(h.second.count, 10u);
    EXPECT_DOUBLE_EQ(h.second.p999, 0.899);
    EXPECT_EQ(h.second.samples_dropped, 2u);
    EXPECT_TRUE(h.second.approximate);
    EXPECT_DOUBLE_EQ(back.breakdown.step_seconds, 0.125);
    EXPECT_EQ(back.breakdown.steps, 4);
    EXPECT_DOUBLE_EQ(back.breakdown.categories.alltoall, 0.075);
    EXPECT_DOUBLE_EQ(back.breakdown.overlap_saved, 0.01);
    ASSERT_EQ(back.spans.size(), 2u);
    EXPECT_EQ(back.spans[0].name, "train_step");
    EXPECT_EQ(back.spans[1].cat, "mlp_fwd");
    EXPECT_EQ(back.spans[1].depth, 1);
    EXPECT_EQ(back.spans[0].rank, 3);
}

TEST(TelemetryWire, RejectsCorruptMagicAndTruncation)
{
    std::vector<uint8_t> bytes = SerializeRankTelemetry(SampleTelemetry());
    std::vector<uint8_t> corrupt = bytes;
    corrupt[0] ^= 0xff;
    EXPECT_THROW(DeserializeRankTelemetry(corrupt), std::runtime_error);

    std::vector<uint8_t> truncated(bytes.begin(),
                                   bytes.begin() +
                                       static_cast<ptrdiff_t>(bytes.size() / 2));
    EXPECT_THROW(DeserializeRankTelemetry(truncated), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Cross-rank harvest
// ---------------------------------------------------------------------------

void
BusySleep(milliseconds d)
{
    std::this_thread::sleep_for(d);
}

TEST(TelemetryHarvest, HarvestMatchesLocalBreakdowns)
{
    TraceGuard trace;
    const int world = 4;
    std::vector<StepBreakdown> local(world);
    FleetTelemetry fleet;

    comm::ThreadedWorld::Run(world, [&](int rank, comm::ProcessGroup& pg) {
        std::vector<float> buf(16, static_cast<float>(rank));
        for (int step = 0; step < 3; step++) {
            NEO_TRACE_SPAN("train_step", "step");
            {
                NEO_TRACE_SPAN("dense_fwd", "mlp_fwd");
                BusySleep(milliseconds(2));
            }
            {
                NEO_TRACE_SPAN("grad_allreduce", "allreduce");
                pg.AllReduceSum(buf.data(), buf.size());
            }
        }
        // What this rank would report about itself, computed before the
        // harvest: the harvest must agree exactly (binary serialization
        // round-trips doubles bit-for-bit, and the harvest's own
        // collectives are not nested inside any train_step span).
        local[rank] =
            StepBreakdown::FromSpans(Tracer::Get().Collect(), rank);

        FleetTelemetry view = HarvestTelemetry(pg);
        if (pg.Rank() == 0) {
            fleet = std::move(view);
        } else {
            EXPECT_TRUE(view.empty());
        }
    });

    ASSERT_EQ(fleet.ranks.size(), static_cast<size_t>(world));
    for (int r = 0; r < world; r++) {
        const RankTelemetry& t = fleet.ranks[static_cast<size_t>(r)];
        EXPECT_EQ(t.rank, r);
        // Harvested breakdown is bitwise identical to the rank's own.
        EXPECT_DOUBLE_EQ(t.breakdown.step_seconds, local[r].step_seconds);
        EXPECT_EQ(t.breakdown.steps, local[r].steps);
        EXPECT_DOUBLE_EQ(t.breakdown.categories.mlp_fwd,
                         local[r].categories.mlp_fwd);
        EXPECT_DOUBLE_EQ(t.breakdown.categories.allreduce,
                         local[r].categories.allreduce);
        EXPECT_DOUBLE_EQ(t.breakdown.categories.Total(),
                         local[r].categories.Total());
        // Exclusive-time buckets must account for the whole step.
        EXPECT_NEAR(t.breakdown.categories.Total(),
                    t.breakdown.step_seconds, 1e-9);
        EXPECT_EQ(t.breakdown.steps, 3);
        EXPECT_FALSE(t.spans.empty());
        // Threaded ranks share one clock, so offsets are bounded by one
        // barrier exit (the field exists for multi-process backends).
        if (r == 0) {
            EXPECT_EQ(t.clock_offset_ns, 0);
        } else {
            EXPECT_LT(std::abs(t.clock_offset_ns), int64_t{1000000000});
        }
    }

    // The merged timeline covers every rank (pid = rank + 1) and keeps
    // the Chrome schema the single-rank exporter uses.
    const std::string merged = fleet.MergedChromeJson();
    EXPECT_NE(merged.find("\"traceEvents\""), std::string::npos);
    for (int r = 0; r < world; r++) {
        const std::string pid = "\"pid\":" + std::to_string(r + 1);
        EXPECT_NE(merged.find(pid), std::string::npos) << "rank " << r;
    }
    EXPECT_NE(merged.find("process_name"), std::string::npos);
    EXPECT_NE(merged.find("train_step"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Exposition
// ---------------------------------------------------------------------------

TEST(Exposition, WriteOnceRendersPromAndJsonTwin)
{
    MetricsRegistry::Get().GetCounter("neo.test.expo_counter").Add(3);
    const auto dir = FreshDir("neo_test_exposition");

    const std::string path = SnapshotWriter::WriteOnce(dir.string());
    ASSERT_EQ(path, (dir / "metrics.prom").string());
    const std::string prom = ReadFile(path);
    EXPECT_NE(prom.find("# TYPE neo_test_expo_counter counter"),
              std::string::npos);
    EXPECT_NE(prom.find("neo_test_expo_counter"), std::string::npos);
    const std::string json = ReadFile(dir / "metrics.json");
    EXPECT_NE(json.find("\"neo.test.expo_counter\""), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(Exposition, PeriodicWriterStartsAndStops)
{
    const auto dir = FreshDir("neo_test_exposition_loop");
    SnapshotWriter writer;
    SnapshotWriter::Options options;
    options.directory = dir.string();
    options.period = milliseconds(5);
    options.basename = "live";
    ASSERT_TRUE(writer.Start(options));
    EXPECT_TRUE(writer.running());
    EXPECT_FALSE(writer.Start(options));  // already running
    std::this_thread::sleep_for(milliseconds(30));
    writer.Stop();
    EXPECT_FALSE(writer.running());
    EXPECT_TRUE(std::filesystem::exists(dir / "live.prom"));
    EXPECT_TRUE(std::filesystem::exists(dir / "live.json"));
    std::filesystem::remove_all(dir);
}

TEST(Exposition, InertWithoutADirectory)
{
    if (std::getenv("NEO_TELEMETRY_DIR") != nullptr) {
        GTEST_SKIP() << "NEO_TELEMETRY_DIR set; the writer is not inert";
    }
    SnapshotWriter writer;
    SnapshotWriter::Options options;
    EXPECT_FALSE(writer.Start(options));
    EXPECT_FALSE(writer.running());
}

// ---------------------------------------------------------------------------
// MetricsRegistry export/Reset atomicity (TSan coverage via tsan_telemetry)
// ---------------------------------------------------------------------------

TEST(Metrics, ConcurrentExportAndResetAreRaceFree)
{
    auto& registry = MetricsRegistry::Get();
    std::vector<std::thread> threads;
    // Writers hammer one instrument of each kind...
    for (int w = 0; w < 2; w++) {
        threads.emplace_back([&registry, w] {
            for (int i = 0; i < 2000; i++) {
                registry.GetCounter("neo.test.race_counter").Add();
                registry.GetGauge("neo.test.race_gauge")
                    .Set(static_cast<double>(i + w));
                registry.GetHistogram("neo.test.race_hist")
                    .Observe(static_cast<double>(i));
            }
        });
    }
    // ...one thread exports through every renderer...
    threads.emplace_back([&registry] {
        for (int i = 0; i < 50; i++) {
            const RegistrySnapshot snap = registry.Export();
            (void)MetricsRegistry::RenderJson(snap);
            (void)registry.ToPrometheus();
            (void)registry.ToCsv();
        }
    });
    // ...and one thread resets concurrently. The snapshot contract says a
    // Reset lands entirely before or after an export, never interleaved.
    threads.emplace_back([&registry] {
        for (int i = 0; i < 20; i++) {
            registry.Reset();
            std::this_thread::sleep_for(milliseconds(1));
        }
    });
    for (auto& t : threads) {
        t.join();
    }
    SUCCEED();
}

// ---------------------------------------------------------------------------
// End-to-end CI artifact: merged timeline + dead rank bundle + straggler
// ---------------------------------------------------------------------------

TEST(TelemetryArtifacts, MergedTimelineBundleAndStragglerGauge)
{
    namespace fs = std::filesystem;
    const char* env = std::getenv("NEO_TELEMETRY_DIR");
    const fs::path dir =
        env != nullptr ? fs::path(env)
                       : fs::temp_directory_path() / "neo_telemetry_artifacts";
    fs::create_directories(dir);

    RecorderGuard recorder_guard;
    TraceGuard trace;
    auto& recorder = FlightRecorder::Get();
    recorder.SetDirectory(dir.string());
    StragglerDetector::Get().Configure(StragglerOptions());

    comm::FaultInjector injector;
    comm::FaultSpec delay;
    delay.rank = 1;
    delay.match_op = true;
    delay.op = comm::CollectiveOp::kAllReduce;
    delay.kind = comm::FaultKind::kDelay;
    delay.delay = milliseconds(25);
    for (uint64_t call = 0; call < 3; call++) {
        delay.call_index = call;
        injector.Arm(delay);
    }
    comm::FaultSpec kill;
    kill.rank = 3;
    kill.match_op = true;
    kill.op = comm::CollectiveOp::kAllReduce;
    kill.call_index = 3;  // after the harvest: the 4th AllReduce
    kill.kind = comm::FaultKind::kKill;
    kill.transient = true;
    injector.Arm(kill);

    comm::ThreadedWorld::Options options;
    options.injector = &injector;
    options.barrier_timeout = milliseconds(20000);
    FleetTelemetry fleet;
    EXPECT_THROW(
        comm::ThreadedWorld::Run(
            4, options,
            [&](int rank, comm::ProcessGroup& pg) {
                std::vector<float> buf(64, static_cast<float>(rank));
                for (int step = 0; step < 3; step++) {
                    NEO_TRACE_SPAN("train_step", "step");
                    {
                        NEO_TRACE_SPAN("dense_fwd", "mlp_fwd");
                        BusySleep(milliseconds(2));
                    }
                    {
                        NEO_TRACE_SPAN("grad_allreduce", "allreduce");
                        pg.AllReduceSum(buf.data(), buf.size());
                    }
                }
                FleetTelemetry view = HarvestTelemetry(pg);
                if (pg.Rank() == 0) {
                    fleet = std::move(view);
                    EXPECT_TRUE(fleet.WriteMergedChromeJson(
                        (dir / "merged_trace.json").string()));
                }
                // One more step: rank 3 dies at the kill site.
                pg.AllReduceSum(buf.data(), buf.size());
            }),
        comm::RankFailure);

    // The merged multi-rank timeline was written before the failure.
    ASSERT_TRUE(fs::exists(dir / "merged_trace.json"));
    ASSERT_EQ(fleet.ranks.size(), 4u);

    // The arrival-lateness detector names the FaultInjector-delayed rank
    // and publishes it as a gauge.
    const StragglerVerdict verdict = StragglerDetector::Get().Analyze();
    EXPECT_TRUE(verdict.flagged);
    EXPECT_EQ(verdict.rank, 1);
    EXPECT_DOUBLE_EQ(
        MetricsRegistry::Get().Export().GaugeValue("neo.obs.straggler_rank"),
        1.0);

    // The dead rank's post-mortem bundle names the kill site.
    const std::string bundle = ReadFile(dir / "flight_rank3.json");
    ASSERT_FALSE(bundle.empty());
    EXPECT_NE(bundle.find("\"rank\":3"), std::string::npos);
    EXPECT_NE(bundle.find("\"last_op\":\"allreduce\""), std::string::npos);
    EXPECT_NE(bundle.find("injected kill"), std::string::npos);

    StragglerDetector::Get().Configure(StragglerOptions());
}

}  // namespace
}  // namespace neo::obs
