/**
 * @file
 * Cross-tier bitwise-identity suite for the runtime-dispatched SIMD
 * microkernels (src/kernels). The determinism contract (kernels.h,
 * DESIGN.md §4h) promises that the dispatch tier can never change a
 * result: every test here computes once per supported tier — across
 * thread counts, ragged shapes, and precision modes — and requires the
 * outputs to be bit-for-bit identical to the scalar reference tier.
 */
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/aligned.h"
#include "common/cpu_features.h"
#include "common/float_types.h"
#include "common/parallel_for.h"
#include "common/rng.h"
#include "kernels/kernels.h"
#include "obs/metrics.h"
#include "ops/embedding_bag.h"
#include "ops/embedding_table.h"
#include "ops/sparse_optimizer.h"
#include "tensor/gemm.h"
#include "tensor/matrix.h"

namespace neo {
namespace {

using kernels::Tier;

/** Restore the entry tier and a 1-thread pool when a test exits. */
class TierGuard
{
  public:
    TierGuard() : entry_(kernels::ActiveTier()) {}
    ~TierGuard()
    {
        kernels::SetTier(entry_);
        SetDefaultPoolThreads(1);
    }

  private:
    Tier entry_;
};

const std::vector<size_t> kThreadCounts = {1, 2, 7};

Matrix
RandomMatrix(size_t rows, size_t cols, uint64_t seed)
{
    Matrix m(rows, cols);
    Rng rng(seed);
    m.InitUniform(rng, -2.0f, 2.0f);
    return m;
}

TEST(CpuFeatures, HostProbeIsStable)
{
    const CpuFeatures& host = CpuFeatures::Host();
    const CpuFeatures again = CpuFeatures::Detect();
    EXPECT_EQ(host.sse42, again.sse42);
    EXPECT_EQ(host.avx2, again.avx2);
    EXPECT_EQ(host.avx512f, again.avx512f);
    // Dependent-feature sanity: wider implies narrower.
    if (host.avx512f) {
        EXPECT_TRUE(host.avx2);
    }
    if (host.avx2) {
        EXPECT_TRUE(host.avx);
    }
    EXPECT_FALSE(CpuFeatures::Host().ToString().empty());
}

TEST(KernelDispatch, ScalarAlwaysSupported)
{
    const auto tiers = kernels::SupportedTiers();
    ASSERT_FALSE(tiers.empty());
    EXPECT_EQ(tiers.front(), Tier::kScalar);
    // The active tier must be one of the supported ones.
    bool found = false;
    for (Tier t : tiers) {
        found = found || t == kernels::ActiveTier();
    }
    EXPECT_TRUE(found);
}

TEST(KernelDispatch, SetTierSwitchesTableAndGauge)
{
    TierGuard guard;
    for (Tier t : kernels::SupportedTiers()) {
        kernels::SetTier(t);
        EXPECT_EQ(kernels::ActiveTier(), t);
        EXPECT_EQ(kernels::Active().tier, t);
        EXPECT_EQ(obs::MetricsRegistry::Get()
                      .GetGauge("neo.kernels.tier")
                      .value(),
                  static_cast<double>(t));
        EXPECT_STREQ(kernels::TierName(kernels::TableFor(t).tier),
                     kernels::TierName(t));
    }
}

TEST(KernelDispatch, GemmCallCounterAdvances)
{
    auto& counter =
        obs::MetricsRegistry::Get().GetCounter("neo.kernels.gemm_calls");
    const uint64_t before = counter.value();
    Matrix a = RandomMatrix(4, 5, 1);
    Matrix b = RandomMatrix(5, 3, 2);
    Matrix c(4, 3);
    MatMul(a, b, c);
    EXPECT_GT(counter.value(), before);
}

// ---------------------------------------------------------------- GEMM

struct GemmCase {
    size_t m, n, k;
    Trans ta, tb;
    float alpha, beta;
};

std::vector<GemmCase>
GemmCases()
{
    // Ragged shapes straddle every tile boundary: below one tile,
    // exactly one tile, off-by-one around kMr=6 / kNr=16, and block
    // edges around kBlockM=64.
    std::vector<GemmCase> cases;
    const std::vector<std::array<size_t, 3>> shapes = {
        {1, 1, 1},   {6, 16, 8},   {5, 15, 7},    {7, 17, 9},
        {65, 63, 129}, {64, 64, 64}, {12, 32, 100}, {130, 47, 33},
    };
    for (const auto& s : shapes) {
        cases.push_back({s[0], s[1], s[2], Trans::kNo, Trans::kNo,
                         1.0f, 0.0f});
    }
    // Transpose and alpha/beta conformance on a boundary-straddling shape.
    cases.push_back({65, 63, 29, Trans::kYes, Trans::kNo, 1.0f, 0.0f});
    cases.push_back({65, 63, 29, Trans::kNo, Trans::kYes, 1.0f, 1.0f});
    cases.push_back({65, 63, 29, Trans::kYes, Trans::kYes, -0.5f, 0.25f});
    cases.push_back({33, 18, 40, Trans::kNo, Trans::kNo, 2.5f, -1.0f});
    return cases;
}

Matrix
RunGemmCase(const GemmCase& tc, uint64_t seed)
{
    const size_t a_rows = tc.ta == Trans::kNo ? tc.m : tc.k;
    const size_t a_cols = tc.ta == Trans::kNo ? tc.k : tc.m;
    const size_t b_rows = tc.tb == Trans::kNo ? tc.k : tc.n;
    const size_t b_cols = tc.tb == Trans::kNo ? tc.n : tc.k;
    Matrix a = RandomMatrix(a_rows, a_cols, seed);
    Matrix b = RandomMatrix(b_rows, b_cols, seed + 1);
    Matrix c = RandomMatrix(tc.m, tc.n, seed + 2);
    Gemm(tc.ta, tc.tb, tc.alpha, a, b, tc.beta, c);
    return c;
}

TEST(GemmKernels, BitwiseIdenticalAcrossTiersAndThreads)
{
    TierGuard guard;
    uint64_t seed = 42;
    for (const GemmCase& tc : GemmCases()) {
        kernels::SetTier(Tier::kScalar);
        SetDefaultPoolThreads(1);
        const Matrix ref = RunGemmCase(tc, seed);
        for (Tier tier : kernels::SupportedTiers()) {
            for (size_t threads : kThreadCounts) {
                kernels::SetTier(tier);
                SetDefaultPoolThreads(threads);
                const Matrix got = RunGemmCase(tc, seed);
                EXPECT_TRUE(Matrix::Identical(ref, got))
                    << "tier=" << kernels::TierName(tier)
                    << " threads=" << threads << " m=" << tc.m
                    << " n=" << tc.n << " k=" << tc.k;
            }
        }
        seed += 10;
    }
}

TEST(GemmKernels, MatchesNaiveReference)
{
    TierGuard guard;
    for (const GemmCase& tc : GemmCases()) {
        const size_t a_rows = tc.ta == Trans::kNo ? tc.m : tc.k;
        const size_t a_cols = tc.ta == Trans::kNo ? tc.k : tc.m;
        const size_t b_rows = tc.tb == Trans::kNo ? tc.k : tc.n;
        const size_t b_cols = tc.tb == Trans::kNo ? tc.n : tc.k;
        Matrix a = RandomMatrix(a_rows, a_cols, 7);
        Matrix b = RandomMatrix(b_rows, b_cols, 8);
        Matrix c0 = RandomMatrix(tc.m, tc.n, 9);

        // Naive i-j-k triple loop with double accumulation.
        Matrix want(tc.m, tc.n);
        for (size_t i = 0; i < tc.m; i++) {
            for (size_t j = 0; j < tc.n; j++) {
                double acc = 0.0;
                for (size_t kk = 0; kk < tc.k; kk++) {
                    const float av =
                        tc.ta == Trans::kNo ? a(i, kk) : a(kk, i);
                    const float bv =
                        tc.tb == Trans::kNo ? b(kk, j) : b(j, kk);
                    acc += static_cast<double>(av) * bv;
                }
                want(i, j) = static_cast<float>(
                    tc.beta * c0(i, j) + tc.alpha * acc);
            }
        }

        Matrix got = c0;
        Gemm(tc.ta, tc.tb, tc.alpha, a, b, tc.beta, got);
        const float scale = std::max(1.0f, want.Norm());
        EXPECT_LT(Matrix::MaxAbsDiff(want, got) / scale, 1e-5f)
            << "m=" << tc.m << " n=" << tc.n << " k=" << tc.k;
    }
}

// ------------------------------------------------------------- pooling

TEST(PoolingKernels, PoolRowsBitwiseIdenticalAcrossTiers)
{
    TierGuard guard;
    // Ragged dims around each vector width; fp32 and fp16 storage.
    const std::vector<int64_t> dims = {1, 3, 8, 15, 16, 24, 33, 64};
    for (Precision prec : {Precision::kFp32, Precision::kFp16}) {
        for (int64_t dim : dims) {
            ops::EmbeddingTable table(100, dim, prec);
            Rng rng(static_cast<uint64_t>(dim) * 7 + 1);
            table.InitUniform(rng);
            // Bags covering empty, single-row, duplicates, and long.
            const std::vector<std::vector<int64_t>> bags = {
                {}, {42}, {3, 3, 3, 3}, {0, 99},
                {5, 17, 5, 80, 2, 2, 41, 63, 5, 17, 30, 12, 8, 77, 1, 0, 5},
            };
            for (const auto& bag : bags) {
                std::vector<float> want(dim, 0.5f);
                kernels::SetTier(Tier::kScalar);
                table.PoolRows(bag.data(), bag.size(), want.data());
                for (Tier tier : kernels::SupportedTiers()) {
                    kernels::SetTier(tier);
                    std::vector<float> got(dim, 0.5f);
                    table.PoolRows(bag.data(), bag.size(), got.data());
                    EXPECT_EQ(std::memcmp(got.data(), want.data(),
                                          got.size() * sizeof(float)),
                              0)
                        << "tier=" << kernels::TierName(tier)
                        << " dim=" << dim << " bag_size=" << bag.size()
                        << " prec=" << PrecisionName(prec);
                }
            }
        }
    }
}

TEST(PoolingKernels, ForwardBitwiseIdenticalAcrossTiersAndThreads)
{
    TierGuard guard;
    // A collection with mixed dims/precisions exercises the fused
    // Forward path end to end (PoolRows per bag, parallel over bags).
    const std::vector<ops::TableSpec> specs = {
        {50, 33, Precision::kFp32},
        {80, 16, Precision::kFp16},
        {20, 7, Precision::kFp32},
    };
    ops::SparseOptimizerConfig opt_config;
    const size_t batch = 9;

    // Per-table lengths/indices: sample 0 empty, sample 1 single-row,
    // the rest random with duplicates.
    std::vector<std::vector<uint32_t>> lengths(specs.size());
    std::vector<std::vector<int64_t>> indices(specs.size());
    Rng rng(311);
    for (size_t t = 0; t < specs.size(); t++) {
        for (size_t b = 0; b < batch; b++) {
            const uint32_t len =
                b == 0 ? 0
                       : (b == 1 ? 1
                                 : static_cast<uint32_t>(rng.NextRange(2, 20)));
            lengths[t].push_back(len);
            for (uint32_t i = 0; i < len; i++) {
                indices[t].push_back(rng.NextRange(0, specs[t].rows - 1));
            }
        }
    }
    std::vector<ops::TableInput> inputs;
    for (size_t t = 0; t < specs.size(); t++) {
        inputs.push_back({std::span<const uint32_t>(lengths[t]),
                          std::span<const int64_t>(indices[t])});
    }

    ops::EmbeddingBagCollection ebc(specs, opt_config, 77);
    kernels::SetTier(Tier::kScalar);
    SetDefaultPoolThreads(1);
    std::vector<Matrix> want;
    ebc.Forward(inputs, batch, want);

    for (Tier tier : kernels::SupportedTiers()) {
        for (size_t threads : kThreadCounts) {
            kernels::SetTier(tier);
            SetDefaultPoolThreads(threads);
            std::vector<Matrix> got;
            ebc.Forward(inputs, batch, got);
            ASSERT_EQ(got.size(), want.size());
            for (size_t t = 0; t < want.size(); t++) {
                EXPECT_TRUE(Matrix::Identical(want[t], got[t]))
                    << "tier=" << kernels::TierName(tier)
                    << " threads=" << threads << " table=" << t;
            }
        }
    }
}

TEST(PoolingKernels, BackwardAndUpdateBitwiseIdenticalAcrossTiers)
{
    TierGuard guard;
    const std::vector<ops::TableSpec> specs = {{40, 24, Precision::kFp32}};
    ops::SparseOptimizerConfig opt_config;
    const size_t batch = 5;
    const std::vector<uint32_t> lengths = {0, 3, 1, 7, 3};
    std::vector<int64_t> indices;
    Rng rng(13);
    for (uint32_t len : lengths) {
        for (uint32_t i = 0; i < len; i++) {
            indices.push_back(rng.NextRange(0, 39));
        }
    }
    const std::vector<ops::TableInput> inputs = {
        {std::span<const uint32_t>(lengths),
         std::span<const int64_t>(indices)}};
    Matrix grad = RandomMatrix(batch, 24, 21);

    auto run = [&]() {
        ops::EmbeddingBagCollection ebc(specs, opt_config, 5);
        const std::vector<Matrix> grads = {grad};
        for (int step = 0; step < 3; step++) {
            ebc.BackwardAndUpdate(inputs, batch, grads);
        }
        std::vector<Matrix> out;
        ebc.Forward(inputs, batch, out);
        return out[0];
    };

    kernels::SetTier(Tier::kScalar);
    SetDefaultPoolThreads(1);
    const Matrix want = run();
    for (Tier tier : kernels::SupportedTiers()) {
        for (size_t threads : kThreadCounts) {
            kernels::SetTier(tier);
            SetDefaultPoolThreads(threads);
            EXPECT_TRUE(Matrix::Identical(want, run()))
                << "tier=" << kernels::TierName(tier)
                << " threads=" << threads;
        }
    }
}

// ----------------------------------------------------------- optimizer

TEST(OptimizerKernels, ApplyExactBitwiseIdenticalAcrossTiers)
{
    TierGuard guard;
    using ops::SparseOptimizerKind;
    const std::vector<int64_t> dims = {8, 33};
    for (SparseOptimizerKind kind :
         {SparseOptimizerKind::kSgd, SparseOptimizerKind::kAdaGrad,
          SparseOptimizerKind::kRowWiseAdaGrad}) {
        for (int64_t dim : dims) {
            ops::SparseOptimizerConfig config;
            config.kind = kind;
            config.learning_rate = 0.05f;

            // Gradients with duplicate rows (merge path) and uniques.
            const std::vector<int64_t> rows = {3, 1, 3, 7, 1, 3, 9};
            Matrix grads = RandomMatrix(rows.size(), dim, 17);
            std::vector<ops::SparseGradRef> refs;
            for (size_t i = 0; i < rows.size(); i++) {
                refs.push_back({rows[i], grads.Row(i)});
            }

            auto run = [&]() {
                ops::EmbeddingTable table(10, dim);
                table.InitDeterministic(123, 0, 0, dim);
                ops::SparseOptimizer opt(config, 10, dim);
                for (int step = 0; step < 3; step++) {
                    opt.ApplyExact(table, refs);
                }
                return table;
            };

            kernels::SetTier(Tier::kScalar);
            SetDefaultPoolThreads(1);
            const ops::EmbeddingTable want = run();
            for (Tier tier : kernels::SupportedTiers()) {
                for (size_t threads : kThreadCounts) {
                    kernels::SetTier(tier);
                    SetDefaultPoolThreads(threads);
                    const ops::EmbeddingTable got = run();
                    EXPECT_TRUE(ops::EmbeddingTable::Identical(want, got))
                        << "kind="
                        << ops::SparseOptimizerKindName(kind)
                        << " tier=" << kernels::TierName(tier)
                        << " threads=" << threads << " dim=" << dim;
                }
            }
        }
    }
}

// ------------------------------------------------- reductions/converts

TEST(ReductionKernels, SumSquaresBitwiseIdenticalAcrossTiers)
{
    TierGuard guard;
    for (size_t n : {0ul, 1ul, 7ul, 15ul, 16ul, 17ul, 31ul, 33ul, 1000ul}) {
        AlignedVector<float> x(n);
        Rng rng(n + 5);
        for (auto& v : x) {
            v = rng.NextUniform(-3.0f, 3.0f);
        }
        const float want =
            kernels::TableFor(Tier::kScalar).sum_squares_f32(x.data(), n);
        for (Tier tier : kernels::SupportedTiers()) {
            const float got =
                kernels::TableFor(tier).sum_squares_f32(x.data(), n);
            EXPECT_EQ(detail::FloatToBits(want), detail::FloatToBits(got))
                << "tier=" << kernels::TierName(tier) << " n=" << n;
        }
    }
}

TEST(ConvertKernels, QuantDequantBitwiseIdenticalAcrossTiers)
{
    TierGuard guard;
    // Random values plus every fp16/bf16 edge: zeros, subnormal range,
    // rounding ties, overflow, infinities, NaN payloads (quiet and
    // signaling).
    std::vector<float> values = {
        0.0f, -0.0f, 1.0f, -1.0f, 65504.0f, -65504.0f, 65520.0f,
        65535.9f, 1e-8f, -1e-8f, 5.96e-8f, 6.1e-5f, 0.1f, 1.5f,
        std::numeric_limits<float>::infinity(),
        -std::numeric_limits<float>::infinity(),
        std::numeric_limits<float>::quiet_NaN(),
        detail::BitsToFloat(0x7FC12345u),  // quiet NaN with payload
        detail::BitsToFloat(0x7F800001u),  // signaling NaN
        detail::BitsToFloat(0xFF923456u),  // negative NaN
        std::numeric_limits<float>::denorm_min(),
        std::numeric_limits<float>::min(),
        std::numeric_limits<float>::max(),
    };
    Rng rng(2024);
    for (int i = 0; i < 1000; i++) {
        values.push_back(rng.NextUniform(-100.0f, 100.0f));
    }
    const size_t n = values.size();

    std::vector<uint16_t> h_want(n), b_want(n);
    const kernels::KernelTable& scalar = kernels::TableFor(Tier::kScalar);
    scalar.quant_f16(values.data(), h_want.data(), n);
    scalar.quant_bf16(values.data(), b_want.data(), n);
    std::vector<float> hd_want(n), bd_want(n);
    scalar.dequant_f16(h_want.data(), hd_want.data(), n);
    scalar.dequant_bf16(b_want.data(), bd_want.data(), n);

    for (Tier tier : kernels::SupportedTiers()) {
        const kernels::KernelTable& kt = kernels::TableFor(tier);
        std::vector<uint16_t> h(n), b(n);
        kt.quant_f16(values.data(), h.data(), n);
        kt.quant_bf16(values.data(), b.data(), n);
        EXPECT_EQ(h, h_want) << "quant_f16 tier=" << kernels::TierName(tier);
        EXPECT_EQ(b, b_want)
            << "quant_bf16 tier=" << kernels::TierName(tier);
        std::vector<float> hd(n), bd(n);
        kt.dequant_f16(h_want.data(), hd.data(), n);
        kt.dequant_bf16(b_want.data(), bd.data(), n);
        EXPECT_EQ(std::memcmp(hd.data(), hd_want.data(), n * sizeof(float)),
                  0)
            << "dequant_f16 tier=" << kernels::TierName(tier);
        EXPECT_EQ(std::memcmp(bd.data(), bd_want.data(), n * sizeof(float)),
                  0)
            << "dequant_bf16 tier=" << kernels::TierName(tier);
    }
}

TEST(ConvertKernels, DequantF16AllPatternsBitwiseIdentical)
{
    TierGuard guard;
    // All 2^16 half patterns at once — pins hardware vcvtph2ps against
    // the software converter, NaN quieting included.
    std::vector<uint16_t> in(65536);
    for (size_t i = 0; i < in.size(); i++) {
        in[i] = static_cast<uint16_t>(i);
    }
    std::vector<float> want(in.size());
    kernels::TableFor(Tier::kScalar)
        .dequant_f16(in.data(), want.data(), in.size());
    for (Tier tier : kernels::SupportedTiers()) {
        std::vector<float> got(in.size());
        kernels::TableFor(tier).dequant_f16(in.data(), got.data(),
                                            in.size());
        EXPECT_EQ(std::memcmp(got.data(), want.data(),
                              got.size() * sizeof(float)),
                  0)
            << "tier=" << kernels::TierName(tier);
    }
}

TEST(ConvertKernels, QuantRoundTripThroughTable)
{
    TierGuard guard;
    // WriteRow/ReadRow on an fp16 table must round-trip identically on
    // every tier (the tiered/cached read path uses the same kernels).
    const int64_t dim = 33;
    std::vector<float> row(dim);
    Rng rng(55);
    for (auto& v : row) {
        v = rng.NextUniform(-1.0f, 1.0f);
    }
    std::vector<float> want(dim);
    {
        kernels::SetTier(Tier::kScalar);
        ops::EmbeddingTable table(2, dim, Precision::kFp16);
        table.WriteRow(1, row.data());
        table.ReadRow(1, want.data());
    }
    for (Tier tier : kernels::SupportedTiers()) {
        kernels::SetTier(tier);
        ops::EmbeddingTable table(2, dim, Precision::kFp16);
        table.WriteRow(1, row.data());
        std::vector<float> got(dim);
        table.ReadRow(1, got.data());
        EXPECT_EQ(std::memcmp(got.data(), want.data(),
                              got.size() * sizeof(float)),
                  0)
            << "tier=" << kernels::TierName(tier);
    }
}

// ------------------------------------------------------------ storage

TEST(AlignedStorage, MatrixAndTableRowsAreCacheLineAligned)
{
    Matrix m(3, 5);
    EXPECT_TRUE(IsAligned(m.data()));
    ops::EmbeddingTable table(4, 16);
    EXPECT_EQ(table.ParameterBytes(), 4u * 16u * sizeof(float));
    AlignedVector<float> probe(16);
    EXPECT_TRUE(IsAligned(probe.data()));
    // Odd sizes must still come back aligned (allocator property).
    AlignedVector<uint16_t> halfs(7);
    EXPECT_TRUE(IsAligned(halfs.data()));
}

}  // namespace
}  // namespace neo
