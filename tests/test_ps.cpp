/**
 * @file
 * Tests for the asynchronous parameter-server baseline: it learns, EASGD
 * keeps replicas near the center, and — the Fig. 10 phenomenon — higher
 * trainer counts (more staleness) hurt quality at equal sample budgets
 * relative to synchronous training.
 */
#include <gtest/gtest.h>

#include "core/dlrm_reference.h"
#include "data/dataset.h"
#include "ps/async_ps_trainer.h"

namespace neo::ps {
namespace {

data::DatasetConfig
MakeDataConfig(const core::DlrmConfig& model, uint64_t seed = 5)
{
    data::DatasetConfig config;
    config.num_dense = model.num_dense;
    config.seed = seed;
    // Stronger planted signal keeps these statistical tests fast: the
    // async-vs-sync gap shows up within a few hundred small batches.
    config.signal_scale = 1.0f;
    config.noise_scale = 0.4f;
    for (const auto& t : model.tables) {
        config.features.push_back({t.rows, t.pooling, 1.05});
    }
    return config;
}

double
EvalNe(AsyncPsTrainer& trainer, const core::DlrmConfig& model)
{
    // Held out: same planted task (task_seed), disjoint sampling stream.
    data::DatasetConfig config = MakeDataConfig(model, 1234);
    config.task_seed = 5;
    data::SyntheticCtrDataset eval(config);
    NormalizedEntropy ne;
    for (int e = 0; e < 8; e++) {
        trainer.Evaluate(eval.NextBatch(128), ne);
    }
    return ne.Value();
}

TEST(AsyncPs, LearnsOnPlantedTask)
{
    core::DlrmConfig model = core::MakeSmallDlrmConfig(3, 150, 16);
    PsConfig ps;
    ps.num_trainers = 4;
    ps.batch_size = 32;
    AsyncPsTrainer trainer(model, ps);
    data::SyntheticCtrDataset dataset(MakeDataConfig(model));

    double first = 0.0, last = 0.0;
    const int steps = 400;
    for (int s = 0; s < steps; s++) {
        const double loss = trainer.Step(dataset);
        if (s < 20) {
            first += loss / 20;
        }
        if (s >= steps - 20) {
            last += loss / 20;
        }
    }
    EXPECT_LT(last, first);
    EXPECT_EQ(trainer.SamplesSeen(), static_cast<uint64_t>(steps) * 32);
    EXPECT_LT(EvalNe(trainer, model), 1.0);
}

TEST(AsyncPs, MoreTrainersMeansMoreStalenessWorseQuality)
{
    // Fig. 10's driver: at an equal sample budget, heavy asynchrony (many
    // stale replicas) should not beat the nearly-synchronous setup.
    core::DlrmConfig model = core::MakeSmallDlrmConfig(3, 150, 16);
    auto run = [&](int trainers) {
        PsConfig ps;
        ps.num_trainers = trainers;
        ps.batch_size = 16;
        ps.sync_period = 8;
        AsyncPsTrainer trainer(model, ps);
        data::SyntheticCtrDataset dataset(MakeDataConfig(model));
        for (int s = 0; s < 600; s++) {
            trainer.Step(dataset);
        }
        return EvalNe(trainer, model);
    };
    const double ne_low_staleness = run(1);
    const double ne_high_staleness = run(32);
    EXPECT_LE(ne_low_staleness, ne_high_staleness + 0.01);
}

TEST(AsyncPs, SyncLargeBatchMatchesOrBeatsAsyncAtEqualSamples)
{
    // The headline of Fig. 10: synchronous large-batch training reaches
    // on-par or better NE than async small-batch at the same number of
    // consumed samples.
    core::DlrmConfig model = core::MakeSmallDlrmConfig(3, 150, 16);
    const uint64_t sample_budget = 6400;

    PsConfig ps;
    ps.num_trainers = 16;
    ps.batch_size = 16;
    AsyncPsTrainer async_trainer(model, ps);
    data::SyntheticCtrDataset async_data(MakeDataConfig(model));
    while (async_trainer.SamplesSeen() < sample_budget) {
        async_trainer.Step(async_data);
    }
    const double async_ne = EvalNe(async_trainer, model);

    core::DlrmReference sync_trainer(model);
    data::SyntheticCtrDataset sync_data(MakeDataConfig(model));
    const size_t big_batch = 256;
    for (uint64_t seen = 0; seen < sample_budget; seen += big_batch) {
        sync_trainer.TrainStep(sync_data.NextBatch(big_batch));
    }
    data::DatasetConfig eval_config = MakeDataConfig(model, 1234);
    eval_config.task_seed = 5;
    data::SyntheticCtrDataset eval(eval_config);
    NormalizedEntropy sync_ne;
    for (int e = 0; e < 8; e++) {
        sync_trainer.Evaluate(eval.NextBatch(128), sync_ne);
    }

    EXPECT_LE(sync_ne.Value(), async_ne + 0.02);
}

TEST(AsyncPs, DeterministicEmulation)
{
    core::DlrmConfig model = core::MakeSmallDlrmConfig(2, 100, 16);
    PsConfig ps;
    ps.num_trainers = 3;
    ps.batch_size = 16;
    auto run = [&]() {
        AsyncPsTrainer trainer(model, ps);
        data::SyntheticCtrDataset dataset(MakeDataConfig(model));
        double total = 0.0;
        for (int s = 0; s < 50; s++) {
            total += trainer.Step(dataset);
        }
        return total;
    };
    EXPECT_EQ(run(), run());
}

/**
 * Degraded mode: a killed virtual trainer loses its round-robin turn but
 * the job keeps stepping over the survivors, and every death is recorded
 * in the structured failure report. Only when the last trainer dies does
 * Step throw.
 */
TEST(AsyncPs, DeadTrainerIsSkippedAndReported)
{
    core::DlrmConfig model = core::MakeSmallDlrmConfig(3, 120, 16);
    PsConfig ps;
    ps.num_trainers = 3;
    ps.batch_size = 16;
    AsyncPsTrainer trainer(model, ps);
    data::SyntheticCtrDataset dataset(MakeDataConfig(model));

    // Warm up one full round so every trainer has stepped once.
    for (int s = 0; s < 3; s++) {
        trainer.Step(dataset);
    }
    EXPECT_EQ(trainer.NumHealthyTrainers(), 3);

    trainer.FailTrainer(1, "injected oom");
    EXPECT_EQ(trainer.NumHealthyTrainers(), 2);
    // Idempotent: a second death report for the same trainer is a no-op.
    trainer.FailTrainer(1, "duplicate");
    ASSERT_EQ(trainer.failures().size(), 1u);
    EXPECT_EQ(trainer.failures()[0].trainer, 1);
    EXPECT_EQ(trainer.failures()[0].cause, "injected oom");
    EXPECT_EQ(trainer.failures()[0].at_sample, trainer.SamplesSeen());

    // The job keeps making progress over the two survivors.
    const uint64_t before = trainer.SamplesSeen();
    for (int s = 0; s < 6; s++) {
        trainer.Step(dataset);
    }
    EXPECT_EQ(trainer.SamplesSeen(), before + 6 * ps.batch_size);

    // Kill the rest: the job degrades to zero capacity and Step throws.
    trainer.FailTrainer(0, "injected kill");
    trainer.FailTrainer(2, "injected kill");
    EXPECT_EQ(trainer.NumHealthyTrainers(), 0);
    EXPECT_EQ(trainer.failures().size(), 3u);
    EXPECT_THROW(trainer.Step(dataset), std::runtime_error);
}

}  // namespace
}  // namespace neo::ps
