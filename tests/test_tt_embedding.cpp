/**
 * @file
 * Tests for the TT-Rec tensor-train compressed embedding table: shape
 * factorization, compression accounting, reconstruction determinism,
 * gradient correctness against numerical differentiation, and learning
 * behaviour (a TT table can memorize targets through its cores).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ops/tt_embedding.h"

namespace neo::ops {
namespace {

TEST(TtShape, AutoFactorsCoverRowsAndMatchDim)
{
    for (int64_t rows : {10, 100, 1000, 123457}) {
        for (int64_t dim : {8, 16, 48, 64}) {
            const TtShape shape = TtShape::Auto(rows, dim);
            EXPECT_GE(shape.PaddedRows(), rows) << rows << "x" << dim;
            EXPECT_EQ(shape.Dim(), dim) << rows << "x" << dim;
        }
    }
}

TEST(TtShape, AutoBalancesColumnFactors)
{
    const TtShape shape = TtShape::Auto(1000, 64);
    // 64 = 4*4*4 is the most balanced triple.
    EXPECT_EQ(shape.col_factors[0] * shape.col_factors[1] *
                  shape.col_factors[2],
              64);
    EXPECT_LE(std::max({shape.col_factors[0], shape.col_factors[1],
                        shape.col_factors[2]}),
              4);
}

TEST(TtEmbedding, CompressesTallTables)
{
    const int64_t rows = 1000000, dim = 64;
    TtEmbeddingTable table(rows, dim, TtShape::Auto(rows, dim, 8), 7);
    EXPECT_LT(table.NumParams(),
              static_cast<size_t>(rows) * dim / 100);  // >100x
    EXPECT_GT(table.CompressionRatio(), 100.0);
}

TEST(TtEmbedding, ReconstructionDeterministic)
{
    const int64_t rows = 500, dim = 16;
    TtEmbeddingTable a(rows, dim, TtShape::Auto(rows, dim), 7);
    TtEmbeddingTable b(rows, dim, TtShape::Auto(rows, dim), 7);
    EXPECT_TRUE(TtEmbeddingTable::Identical(a, b));
    std::vector<float> ra(dim), rb(dim);
    for (int64_t r = 0; r < rows; r += 37) {
        a.ReadRow(r, ra.data());
        b.ReadRow(r, rb.data());
        EXPECT_EQ(ra, rb) << r;
    }
}

TEST(TtEmbedding, InitVarianceNearTarget)
{
    const int64_t rows = 2000, dim = 16;
    TtEmbeddingTable table(rows, dim, TtShape::Auto(rows, dim, 4), 11);
    std::vector<float> row(dim);
    double sum = 0.0, sq = 0.0;
    size_t n = 0;
    for (int64_t r = 0; r < rows; r++) {
        table.ReadRow(r, row.data());
        for (float x : row) {
            sum += x;
            sq += static_cast<double>(x) * x;
            n++;
        }
    }
    const double var = sq / n - (sum / n) * (sum / n);
    const double target = 1.0 / dim;
    EXPECT_GT(var, target / 5.0);
    EXPECT_LT(var, target * 5.0);
}

TEST(TtEmbedding, AccumulateMatchesRead)
{
    const int64_t rows = 100, dim = 8;
    TtEmbeddingTable table(rows, dim, TtShape::Auto(rows, dim), 3);
    std::vector<float> row(dim), acc(dim, 1.0f);
    table.ReadRow(42, row.data());
    table.AccumulateRow(42, 2.0f, acc.data());
    for (int64_t c = 0; c < dim; c++) {
        EXPECT_FLOAT_EQ(acc[c], 1.0f + 2.0f * row[c]);
    }
}

TEST(TtEmbedding, GradientMatchesNumericalDerivative)
{
    // Objective: L = sum_c w[c] * E[row, c]; dL/dcores via
    // ApplyRowGradient must match finite differences of L along the
    // gradient direction. Verify by taking one SGD step with gradient w
    // and checking L decreases by ~lr * ||dL/dtheta||^2.
    const int64_t rows = 60, dim = 12;
    TtEmbeddingTable table(rows, dim, TtShape::Auto(rows, dim, 4), 5);
    Rng rng(9);
    std::vector<float> w(dim);
    for (auto& x : w) {
        x = rng.NextUniform(-1.0f, 1.0f);
    }
    const int64_t row = 17;

    auto objective = [&](const TtEmbeddingTable& t) {
        std::vector<float> e(dim);
        t.ReadRow(row, e.data());
        double sum = 0.0;
        for (int64_t c = 0; c < dim; c++) {
            sum += static_cast<double>(w[c]) * e[c];
        }
        return sum;
    };

    const double before = objective(table);
    const float lr = 1e-3f;
    // dL/dE = w, so stepping with grad = w must reduce L for small lr.
    TtEmbeddingTable stepped = table;
    stepped.ApplyRowGradient(row, w.data(), lr);
    const double after = objective(stepped);
    EXPECT_LT(after, before);

    // Second-order check: the drop should scale linearly with lr.
    TtEmbeddingTable stepped2 = table;
    stepped2.ApplyRowGradient(row, w.data(), lr / 2.0f);
    const double after_half = objective(stepped2);
    const double drop_full = before - after;
    const double drop_half = before - after_half;
    EXPECT_NEAR(drop_full / drop_half, 2.0, 0.2);
}

TEST(TtEmbedding, LearnsRowTargets)
{
    // Train the TT table to reproduce target vectors for a handful of
    // rows; MSE must fall substantially even through the factorization.
    const int64_t rows = 200, dim = 8;
    TtEmbeddingTable table(rows, dim, TtShape::Auto(rows, dim, 8), 13);
    Rng rng(21);
    const int num_targets = 10;
    std::vector<int64_t> target_rows(num_targets);
    std::vector<std::vector<float>> targets(num_targets,
                                            std::vector<float>(dim));
    for (int i = 0; i < num_targets; i++) {
        target_rows[i] = static_cast<int64_t>(rng.NextBounded(rows));
        for (auto& x : targets[i]) {
            x = rng.NextUniform(-0.5f, 0.5f);
        }
    }

    auto mse = [&] {
        double total = 0.0;
        std::vector<float> e(dim);
        for (int i = 0; i < num_targets; i++) {
            table.ReadRow(target_rows[i], e.data());
            for (int64_t c = 0; c < dim; c++) {
                const double diff = e[c] - targets[i][c];
                total += diff * diff;
            }
        }
        return total / (num_targets * dim);
    };

    const double initial = mse();
    std::vector<float> grad(dim), e(dim);
    for (int epoch = 0; epoch < 300; epoch++) {
        for (int i = 0; i < num_targets; i++) {
            table.ReadRow(target_rows[i], e.data());
            for (int64_t c = 0; c < dim; c++) {
                grad[c] = 2.0f * (e[c] - targets[i][c]) / dim;
            }
            table.ApplyRowGradient(target_rows[i], grad.data(), 0.1f);
        }
    }
    EXPECT_LT(mse(), initial * 0.2);
}

TEST(TtEmbedding, RejectsBadShapes)
{
    TtShape shape = TtShape::Auto(100, 16);
    shape.col_factors = {4, 2, 3};  // 24 != 16
    EXPECT_THROW(TtEmbeddingTable(100, 16, shape, 1), std::runtime_error);
    TtShape small = TtShape::Auto(100, 16);
    small.row_factors = {2, 2, 2};  // covers 8 < 100 rows
    EXPECT_THROW(TtEmbeddingTable(100, 16, small, 1), std::runtime_error);
}

}  // namespace
}  // namespace neo::ops
