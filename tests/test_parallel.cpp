/**
 * @file
 * Determinism suite for intra-op parallelism: every parallel kernel (GEMM,
 * fused embedding forward, fused backward + exact optimizer, quantized
 * conversions, collective local reductions) must produce bit-identical
 * results at any thread count, because ParallelFor uses fixed
 * thread-count-independent chunking and chunks never interact. Also covers
 * the ParallelFor primitive itself and the ThreadPool shutdown contract.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "comm/quantized.h"
#include "comm/threaded_process_group.h"
#include "common/parallel_for.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "ops/embedding_bag.h"
#include "tensor/gemm.h"
#include "tensor/matrix.h"

namespace neo {
namespace {

/** Thread counts the determinism contract is pinned at. */
std::vector<size_t>
SweepThreadCounts()
{
    std::vector<size_t> counts = {1, 2, 7};
    const size_t hw = std::max(1u, std::thread::hardware_concurrency());
    if (std::find(counts.begin(), counts.end(), hw) == counts.end()) {
        counts.push_back(hw);
    }
    return counts;
}

/** Restore a 1-thread (serial) default pool after each test. */
class ParallelTest : public ::testing::Test
{
  protected:
    void TearDown() override { SetDefaultPoolThreads(1); }
};

Matrix
RandomMatrix(size_t rows, size_t cols, Rng& rng)
{
    Matrix m(rows, cols);
    for (size_t i = 0; i < m.size(); i++) {
        m.data()[i] = rng.NextFloat() * 2.0f - 1.0f;
    }
    return m;
}

// ----------------------------------------------------------- ParallelFor

TEST_F(ParallelTest, ParallelForCoversRangeExactlyOnce)
{
    for (size_t threads : SweepThreadCounts()) {
        ThreadPool pool(threads);
        std::vector<int> hits(1013, 0);
        ParallelFor(pool, 0, hits.size(), 64, [&](size_t b, size_t e) {
            for (size_t i = b; i < e; i++) {
                hits[i]++;
            }
        });
        EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
                  static_cast<int>(hits.size()))
            << "threads=" << threads;
    }
}

TEST_F(ParallelTest, ParallelForEmptyAndSubGrainRanges)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    ParallelFor(pool, 5, 5, 16, [&](size_t, size_t) { calls++; });
    EXPECT_EQ(calls.load(), 0);  // empty range: fn never invoked

    ParallelFor(pool, 0, 7, 16, [&](size_t b, size_t e) {
        EXPECT_EQ(b, 0u);
        EXPECT_EQ(e, 7u);
        calls++;
    });
    EXPECT_EQ(calls.load(), 1);  // sub-grain: one serial chunk
}

TEST_F(ParallelTest, ParallelForChunkingIsThreadCountIndependent)
{
    // The (begin, end) chunk sequence must depend only on the grain.
    const auto chunks_at = [](size_t threads) {
        ThreadPool pool(threads);
        std::mutex mu;
        std::vector<std::pair<size_t, size_t>> chunks;
        ParallelFor(pool, 3, 260, 32, [&](size_t b, size_t e) {
            std::lock_guard<std::mutex> lock(mu);
            chunks.push_back({b, e});
        });
        std::sort(chunks.begin(), chunks.end());
        return chunks;
    };
    const auto serial = chunks_at(1);
    ASSERT_EQ(serial.size(), 9u);
    EXPECT_EQ(serial.front(), (std::pair<size_t, size_t>{3, 35}));
    EXPECT_EQ(serial.back(), (std::pair<size_t, size_t>{259, 260}));
    for (size_t threads : SweepThreadCounts()) {
        EXPECT_EQ(chunks_at(threads), serial) << "threads=" << threads;
    }
}

TEST_F(ParallelTest, ParallelForPropagatesFirstException)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        ParallelFor(pool, 0, 1000, 10,
                    [&](size_t b, size_t) {
                        if (b >= 500) {
                            throw std::runtime_error("chunk failed");
                        }
                    }),
        std::runtime_error);
}

TEST_F(ParallelTest, NestedParallelForRunsSerially)
{
    ThreadPool pool(4);
    std::atomic<int> total{0};
    ParallelFor(pool, 0, 8, 1, [&](size_t, size_t) {
        EXPECT_TRUE(InParallelRegion());
        // Nested call must not deadlock; it degrades to the serial path.
        ParallelFor(pool, 0, 4, 1, [&](size_t, size_t) { total++; });
    });
    EXPECT_EQ(total.load(), 32);
    EXPECT_FALSE(InParallelRegion());
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolShutdown, SubmitAfterShutdownThrows)
{
    ThreadPool pool(2);
    EXPECT_EQ(pool.size(), 2u);
    pool.Submit([] {}).get();
    pool.Shutdown();
    EXPECT_THROW(pool.Submit([] {}), std::runtime_error);
    pool.Shutdown();  // idempotent
}

// ------------------------------------------------------------------ GEMM

TEST_F(ParallelTest, GemmBitIdenticalAcrossThreadCounts)
{
    struct Case {
        size_t m, n, k;
        Trans ta, tb;
        float alpha, beta;
    };
    const Case cases[] = {
        {150, 130, 170, Trans::kNo, Trans::kNo, 1.0f, 0.0f},
        {150, 130, 170, Trans::kYes, Trans::kNo, -0.5f, 1.0f},
        {150, 130, 170, Trans::kNo, Trans::kYes, 2.0f, 0.25f},
        {129, 65, 67, Trans::kYes, Trans::kYes, 1.0f, 0.0f},
        {3, 5, 7, Trans::kNo, Trans::kNo, 1.0f, 0.0f},  // sub-grain
        {0, 4, 4, Trans::kNo, Trans::kNo, 1.0f, 0.0f},  // empty
    };
    for (const Case& p : cases) {
        Rng rng(31 + p.m + p.n + p.k);
        const Matrix a = p.ta == Trans::kNo ? RandomMatrix(p.m, p.k, rng)
                                            : RandomMatrix(p.k, p.m, rng);
        const Matrix b = p.tb == Trans::kNo ? RandomMatrix(p.k, p.n, rng)
                                            : RandomMatrix(p.n, p.k, rng);
        const Matrix c0 = RandomMatrix(p.m, p.n, rng);

        SetDefaultPoolThreads(1);
        Matrix serial = c0;
        Gemm(p.ta, p.tb, p.alpha, a, b, p.beta, serial);

        for (size_t threads : SweepThreadCounts()) {
            SetDefaultPoolThreads(threads);
            Matrix c = c0;
            Gemm(p.ta, p.tb, p.alpha, a, b, p.beta, c);
            EXPECT_TRUE(Matrix::Identical(serial, c))
                << "m=" << p.m << " threads=" << threads;
        }
    }
}

// ------------------------------------------------- EmbeddingBagCollection

struct EmbInputs {
    std::vector<std::vector<uint32_t>> lengths;
    std::vector<std::vector<int64_t>> indices;
    std::vector<ops::TableInput> inputs;
};

/** Build Zipf-ish random inputs; some samples get zero-length pools. */
EmbInputs
MakeInputs(const std::vector<ops::TableSpec>& specs, size_t batch,
           uint64_t seed)
{
    EmbInputs in;
    Rng rng(seed);
    in.lengths.resize(specs.size());
    in.indices.resize(specs.size());
    for (size_t t = 0; t < specs.size(); t++) {
        in.lengths[t].resize(batch);
        for (size_t b = 0; b < batch; b++) {
            in.lengths[t][b] = rng.NextBounded(9);  // includes zero-length
            for (uint32_t i = 0; i < in.lengths[t][b]; i++) {
                // Square the draw to skew toward hot rows (duplicates).
                const uint64_t r = rng.NextBounded(
                    static_cast<uint64_t>(specs[t].rows));
                in.indices[t].push_back(static_cast<int64_t>(
                    r * r / std::max<uint64_t>(1, specs[t].rows)));
            }
        }
    }
    for (size_t t = 0; t < specs.size(); t++) {
        in.inputs.push_back({in.lengths[t], in.indices[t]});
    }
    return in;
}

TEST_F(ParallelTest, EmbeddingForwardBitIdenticalAcrossThreadCounts)
{
    const std::vector<ops::TableSpec> specs = {
        {500, 16, Precision::kFp32},
        {300, 24, Precision::kFp16},
        {40, 8, Precision::kFp32},
    };
    ops::SparseOptimizerConfig opt;
    const ops::EmbeddingBagCollection ebc(specs, opt, 42);

    for (size_t batch : {size_t{0}, size_t{3}, size_t{257}}) {
        const EmbInputs in = MakeInputs(specs, batch, 7 + batch);

        SetDefaultPoolThreads(1);
        std::vector<Matrix> serial;
        ebc.Forward(in.inputs, batch, serial);

        for (size_t threads : SweepThreadCounts()) {
            SetDefaultPoolThreads(threads);
            std::vector<Matrix> out;
            ebc.Forward(in.inputs, batch, out);
            ASSERT_EQ(out.size(), serial.size());
            for (size_t t = 0; t < out.size(); t++) {
                EXPECT_TRUE(Matrix::Identical(serial[t], out[t]))
                    << "batch=" << batch << " table=" << t
                    << " threads=" << threads;
            }
        }
    }
}

TEST_F(ParallelTest, BackwardAndUpdateBitIdenticalAcrossThreadCounts)
{
    const std::vector<ops::TableSpec> specs = {
        {400, 12, Precision::kFp32},
        {150, 20, Precision::kFp16},
    };
    for (ops::SparseOptimizerKind kind :
         {ops::SparseOptimizerKind::kSgd, ops::SparseOptimizerKind::kAdaGrad,
          ops::SparseOptimizerKind::kRowWiseAdaGrad,
          ops::SparseOptimizerKind::kAdam}) {
        ops::SparseOptimizerConfig opt;
        opt.kind = kind;

        // Train a few steps at each thread count from the same seed; the
        // final table parameters must match the serial run bit-for-bit.
        const auto train = [&](size_t threads) {
            SetDefaultPoolThreads(threads);
            ops::EmbeddingBagCollection ebc(specs, opt, 99);
            const size_t batch = 173;
            for (int step = 0; step < 3; step++) {
                const EmbInputs in = MakeInputs(specs, batch, 11 + step);
                std::vector<Matrix> out;
                ebc.Forward(in.inputs, batch, out);
                std::vector<Matrix> grads;
                Rng rng(55 + step);
                for (size_t t = 0; t < specs.size(); t++) {
                    grads.push_back(RandomMatrix(
                        batch, static_cast<size_t>(specs[t].dim), rng));
                }
                ebc.BackwardAndUpdate(in.inputs, batch, grads);
            }
            return ebc;
        };

        const ops::EmbeddingBagCollection serial = train(1);
        for (size_t threads : SweepThreadCounts()) {
            ops::EmbeddingBagCollection run = train(threads);
            for (size_t t = 0; t < specs.size(); t++) {
                EXPECT_TRUE(ops::EmbeddingTable::Identical(serial.table(t),
                                                           run.table(t)))
                    << "kind=" << ops::SparseOptimizerKindName(kind)
                    << " table=" << t << " threads=" << threads;
            }
        }
    }
}

TEST_F(ParallelTest, BackwardAndUpdateEmptyBatch)
{
    const std::vector<ops::TableSpec> specs = {{50, 8, Precision::kFp32}};
    ops::SparseOptimizerConfig opt;
    SetDefaultPoolThreads(4);
    ops::EmbeddingBagCollection ebc(specs, opt, 5);
    ops::EmbeddingBagCollection ref(specs, opt, 5);
    const EmbInputs in = MakeInputs(specs, 0, 1);
    std::vector<Matrix> grads = {Matrix(0, 8)};
    ebc.BackwardAndUpdate(in.inputs, 0, grads);
    EXPECT_TRUE(ops::EmbeddingTable::Identical(ebc.table(0), ref.table(0)));
}

// ------------------------------------------------------- Quantized comms

TEST_F(ParallelTest, QuantizeDequantizeBitIdenticalAcrossThreadCounts)
{
    Rng rng(17);
    std::vector<float> data(100000);
    for (auto& v : data) {
        v = (rng.NextFloat() * 2.0f - 1.0f) * 1000.0f;
    }
    for (Precision p : {Precision::kFp16, Precision::kBf16}) {
        SetDefaultPoolThreads(1);
        const auto q_serial = comm::QuantizeVector(data, p);
        const auto d_serial = comm::DequantizeVector(q_serial, p);
        for (size_t threads : SweepThreadCounts()) {
            SetDefaultPoolThreads(threads);
            const auto q = comm::QuantizeVector(data, p);
            EXPECT_EQ(q, q_serial) << "threads=" << threads;
            EXPECT_EQ(comm::DequantizeVector(q, p), d_serial)
                << "threads=" << threads;
        }
    }
}

TEST_F(ParallelTest, AllReduceBitIdenticalAcrossThreadCounts)
{
    constexpr int kRanks = 4;
    constexpr size_t kCount = 40000;  // > kReduceGrain per rank chunk
    const auto run = [&](size_t threads) {
        SetDefaultPoolThreads(threads);
        std::vector<std::vector<float>> data(kRanks);
        for (int r = 0; r < kRanks; r++) {
            Rng rng(100 + r);
            data[r].resize(kCount);
            for (auto& v : data[r]) {
                v = rng.NextFloat() * 2.0f - 1.0f;
            }
        }
        comm::ThreadedWorld::Run(kRanks, [&](int rank, comm::ProcessGroup& pg) {
            pg.AllReduceSum(data[rank].data(), kCount);
        });
        return data;
    };
    const auto serial = run(1);
    for (size_t threads : SweepThreadCounts()) {
        const auto out = run(threads);
        for (int r = 0; r < kRanks; r++) {
            EXPECT_EQ(out[r], serial[r])
                << "rank=" << r << " threads=" << threads;
        }
    }
}

}  // namespace
}  // namespace neo
