/**
 * @file
 * Unit and property tests for the tensor kernels: GEMM against a naive
 * reference over random shapes, activation forward/backward, loss
 * gradients against numerical differentiation, and the DLRM dot-product
 * interaction.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.h"
#include "tensor/activations.h"
#include "tensor/gemm.h"
#include "tensor/interaction.h"
#include "tensor/loss.h"
#include "tensor/matrix.h"

namespace neo {
namespace {

Matrix
RandomMatrix(size_t rows, size_t cols, Rng& rng, float scale = 1.0f)
{
    Matrix m(rows, cols);
    for (size_t i = 0; i < m.size(); i++) {
        m.data()[i] = rng.NextUniform(-scale, scale);
    }
    return m;
}

/** Naive O(mnk) reference GEMM. */
void
NaiveGemm(Trans ta, Trans tb, float alpha, const Matrix& a, const Matrix& b,
          float beta, Matrix& c)
{
    const size_t m = ta == Trans::kNo ? a.rows() : a.cols();
    const size_t k = ta == Trans::kNo ? a.cols() : a.rows();
    const size_t n = tb == Trans::kNo ? b.cols() : b.rows();
    Matrix out(m, n);
    for (size_t i = 0; i < m; i++) {
        for (size_t j = 0; j < n; j++) {
            double sum = 0.0;
            for (size_t kk = 0; kk < k; kk++) {
                const float av = ta == Trans::kNo ? a(i, kk) : a(kk, i);
                const float bv = tb == Trans::kNo ? b(kk, j) : b(j, kk);
                sum += static_cast<double>(av) * bv;
            }
            out(i, j) = alpha * static_cast<float>(sum) + beta * c(i, j);
        }
    }
    c = out;
}

// ---------------------------------------------------------------- Matrix

TEST(Matrix, BasicOps)
{
    Matrix m(2, 3);
    m(0, 0) = 1.0f;
    m(1, 2) = -2.0f;
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m(0, 0), 1.0f);

    Matrix n = m;
    n.Scale(2.0f);
    EXPECT_EQ(n(1, 2), -4.0f);
    m.Add(n);
    EXPECT_EQ(m(0, 0), 3.0f);
    m.Axpy(0.5f, n);
    EXPECT_EQ(m(1, 2), -8.0f);

    EXPECT_FLOAT_EQ(Matrix::MaxAbsDiff(m, m), 0.0f);
    EXPECT_TRUE(Matrix::Identical(m, m));
    EXPECT_FALSE(Matrix::Identical(m, n));
}

TEST(Matrix, NormMatchesDefinition)
{
    Matrix m(1, 2);
    m(0, 0) = 3.0f;
    m(0, 1) = 4.0f;
    EXPECT_FLOAT_EQ(m.Norm(), 5.0f);
}

TEST(Matrix, TransposeInvolution)
{
    Rng rng(3);
    const Matrix m = RandomMatrix(5, 7, rng);
    EXPECT_TRUE(Matrix::Identical(Transpose(Transpose(m)), m));
}

// ------------------------------------------------------------------ GEMM

struct GemmCase {
    size_t m, n, k;
    Trans ta, tb;
    float alpha, beta;
};

class GemmParamTest : public ::testing::TestWithParam<GemmCase>
{
};

TEST_P(GemmParamTest, MatchesNaiveReference)
{
    const GemmCase& p = GetParam();
    Rng rng(101 + p.m * 7 + p.n * 3 + p.k);
    const Matrix a = p.ta == Trans::kNo ? RandomMatrix(p.m, p.k, rng)
                                        : RandomMatrix(p.k, p.m, rng);
    const Matrix b = p.tb == Trans::kNo ? RandomMatrix(p.k, p.n, rng)
                                        : RandomMatrix(p.n, p.k, rng);
    Matrix c = RandomMatrix(p.m, p.n, rng);
    Matrix c_ref = c;

    Gemm(p.ta, p.tb, p.alpha, a, b, p.beta, c);
    NaiveGemm(p.ta, p.tb, p.alpha, a, b, p.beta, c_ref);
    EXPECT_LT(Matrix::MaxAbsDiff(c, c_ref),
              1e-4f * static_cast<float>(p.k + 1));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmParamTest,
    ::testing::Values(
        GemmCase{1, 1, 1, Trans::kNo, Trans::kNo, 1.0f, 0.0f},
        GemmCase{3, 5, 7, Trans::kNo, Trans::kNo, 1.0f, 0.0f},
        GemmCase{64, 64, 64, Trans::kNo, Trans::kNo, 1.0f, 0.0f},
        GemmCase{65, 63, 129, Trans::kNo, Trans::kNo, 1.0f, 0.0f},
        GemmCase{17, 9, 33, Trans::kYes, Trans::kNo, 1.0f, 0.0f},
        GemmCase{17, 9, 33, Trans::kNo, Trans::kYes, 1.0f, 0.0f},
        GemmCase{17, 9, 33, Trans::kYes, Trans::kYes, 1.0f, 0.0f},
        GemmCase{20, 30, 40, Trans::kNo, Trans::kNo, 2.5f, 1.0f},
        GemmCase{20, 30, 40, Trans::kYes, Trans::kNo, -1.0f, 0.5f},
        GemmCase{128, 1, 200, Trans::kNo, Trans::kNo, 1.0f, 0.0f}));

TEST(Gemm, Deterministic)
{
    Rng rng(5);
    const Matrix a = RandomMatrix(70, 90, rng);
    const Matrix b = RandomMatrix(90, 50, rng);
    Matrix c1(70, 50), c2(70, 50);
    MatMul(a, b, c1);
    MatMul(a, b, c2);
    EXPECT_TRUE(Matrix::Identical(c1, c2));
}

TEST(Gemm, ShapeMismatchFatal)
{
    Matrix a(2, 3), b(4, 5), c(2, 5);
    EXPECT_THROW(MatMul(a, b, c), std::runtime_error);
}

// ----------------------------------------------------------- Activations

TEST(Activations, ReluForwardBackward)
{
    Matrix x(1, 4);
    x(0, 0) = -1.0f;
    x(0, 1) = 2.0f;
    x(0, 2) = 0.0f;
    x(0, 3) = -0.5f;
    Matrix act = x;
    ReluForward(act);
    EXPECT_EQ(act(0, 0), 0.0f);
    EXPECT_EQ(act(0, 1), 2.0f);
    EXPECT_EQ(act(0, 2), 0.0f);

    Matrix grad(1, 4);
    grad.Fill(1.0f);
    ReluBackward(act, grad);
    EXPECT_EQ(grad(0, 0), 0.0f);
    EXPECT_EQ(grad(0, 1), 1.0f);
    EXPECT_EQ(grad(0, 2), 0.0f);
}

TEST(Activations, BiasForwardBackward)
{
    Matrix x(2, 3);
    Matrix bias(1, 3);
    bias(0, 0) = 1.0f;
    bias(0, 1) = -2.0f;
    bias(0, 2) = 0.5f;
    BiasForward(bias, x);
    EXPECT_EQ(x(0, 0), 1.0f);
    EXPECT_EQ(x(1, 1), -2.0f);

    Matrix grad(2, 3);
    grad.Fill(1.0f);
    Matrix grad_bias(1, 3);
    BiasBackward(grad, grad_bias);
    EXPECT_EQ(grad_bias(0, 0), 2.0f);  // column sums over batch of 2
}

TEST(Activations, SigmoidRange)
{
    Rng rng(7);
    Matrix x = RandomMatrix(4, 4, rng, 10.0f);
    SigmoidForward(x);
    for (size_t i = 0; i < x.size(); i++) {
        EXPECT_GT(x.data()[i], 0.0f);
        EXPECT_LT(x.data()[i], 1.0f);
    }
}

TEST(Activations, SoftmaxRowsSumToOne)
{
    Rng rng(11);
    Matrix x = RandomMatrix(5, 9, rng, 20.0f);
    SoftmaxForward(x);
    for (size_t r = 0; r < x.rows(); r++) {
        float sum = 0.0f;
        for (size_t c = 0; c < x.cols(); c++) {
            sum += x(r, c);
            EXPECT_GE(x(r, c), 0.0f);
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
}

// ------------------------------------------------------------------ Loss

TEST(Loss, BceMatchesClosedForm)
{
    Matrix logits(2, 1);
    logits(0, 0) = 0.0f;   // p = 0.5
    logits(1, 0) = 2.0f;
    const std::vector<float> labels = {1.0f, 0.0f};
    const double expected =
        (-std::log(0.5) + -std::log(1.0 - 1.0 / (1.0 + std::exp(-2.0)))) /
        2.0;
    EXPECT_NEAR(BceWithLogitsLoss(logits, labels), expected, 1e-6);
}

TEST(Loss, GradMatchesNumericalDerivative)
{
    Rng rng(13);
    Matrix logits = RandomMatrix(8, 1, rng, 3.0f);
    std::vector<float> labels(8);
    for (auto& l : labels) {
        l = rng.NextFloat() < 0.5f ? 0.0f : 1.0f;
    }
    Matrix grad(8, 1);
    BceWithLogitsGrad(logits, labels, grad);

    const float eps = 1e-3f;
    for (size_t i = 0; i < 8; i++) {
        Matrix plus = logits, minus = logits;
        plus(i, 0) += eps;
        minus(i, 0) -= eps;
        const double numeric = (BceWithLogitsLoss(plus, labels) -
                                BceWithLogitsLoss(minus, labels)) /
                               (2.0 * eps);
        EXPECT_NEAR(grad(i, 0), numeric, 1e-3) << i;
    }
}

TEST(Loss, StableAtExtremeLogits)
{
    Matrix logits(2, 1);
    logits(0, 0) = 100.0f;
    logits(1, 0) = -100.0f;
    const std::vector<float> labels = {1.0f, 0.0f};
    EXPECT_NEAR(BceWithLogitsLoss(logits, labels), 0.0, 1e-6);
    EXPECT_TRUE(std::isfinite(BceWithLogitsLoss(logits, {0.0f, 1.0f})));
}

TEST(Loss, NormalizedEntropyOfBaseRatePredictorIsOne)
{
    NormalizedEntropy ne;
    // Predictor that always outputs the base rate p=0.3.
    Rng rng(17);
    for (int i = 0; i < 50000; i++) {
        ne.Add(0.3, rng.NextDouble() < 0.3 ? 1.0 : 0.0);
    }
    EXPECT_NEAR(ne.Value(), 1.0, 0.02);
}

TEST(Loss, NormalizedEntropyOfPerfectPredictorNearZero)
{
    NormalizedEntropy ne;
    Rng rng(19);
    for (int i = 0; i < 1000; i++) {
        const double label = rng.NextDouble() < 0.4 ? 1.0 : 0.0;
        ne.Add(label > 0.5 ? 0.999 : 0.001, label);
    }
    EXPECT_LT(ne.Value(), 0.02);
}

TEST(Loss, NormalizedEntropyMerge)
{
    NormalizedEntropy a, b, all;
    Rng rng(23);
    for (int i = 0; i < 1000; i++) {
        const double p = rng.NextDouble();
        const double label = rng.NextDouble() < 0.5 ? 1.0 : 0.0;
        (i % 2 ? a : b).Add(p, label);
        all.Add(p, label);
    }
    a.Merge(b);
    // Partial sums accumulate in a different order, so allow float noise.
    EXPECT_NEAR(a.Value(), all.Value(), 1e-12);
    EXPECT_EQ(a.count(), all.count());
}

// ----------------------------------------------------------- Interaction

TEST(Interaction, OutputLayoutMatchesDefinition)
{
    const size_t d = 4;
    DotInteraction interaction(2, d);  // dense + 2 sparse => 3 vectors
    EXPECT_EQ(interaction.OutputDim(), d + 3);

    Matrix dense(1, d), s0(1, d), s1(1, d);
    for (size_t c = 0; c < d; c++) {
        dense(0, c) = 1.0f;
        s0(0, c) = 2.0f;
        s1(0, c) = static_cast<float>(c);
    }
    Matrix out(1, interaction.OutputDim());
    interaction.Forward(dense, {s0, s1}, out);
    // Pass-through.
    EXPECT_EQ(out(0, 0), 1.0f);
    // dots: (dense.s0)=8, (dense.s1)=6, (s0.s1)=12 in (i<j) order.
    EXPECT_FLOAT_EQ(out(0, d + 0), 8.0f);
    EXPECT_FLOAT_EQ(out(0, d + 1), 6.0f);
    EXPECT_FLOAT_EQ(out(0, d + 2), 12.0f);
}

TEST(Interaction, BackwardMatchesNumericalGradient)
{
    Rng rng(29);
    const size_t d = 5, batch = 3, f = 2;
    DotInteraction interaction(f, d);
    Matrix dense = RandomMatrix(batch, d, rng);
    std::vector<Matrix> sparse = {RandomMatrix(batch, d, rng),
                                  RandomMatrix(batch, d, rng)};
    Matrix out(batch, interaction.OutputDim());
    interaction.Forward(dense, sparse, out);

    // Scalar objective: sum of all outputs weighted by fixed coefficients.
    Matrix weights = RandomMatrix(batch, interaction.OutputDim(), rng);
    auto objective = [&](const Matrix& dn, const std::vector<Matrix>& sp) {
        DotInteraction local(f, d);
        Matrix o(batch, local.OutputDim());
        local.Forward(dn, sp, o);
        double sum = 0.0;
        for (size_t i = 0; i < o.size(); i++) {
            sum += static_cast<double>(o.data()[i]) * weights.data()[i];
        }
        return sum;
    };

    Matrix grad_dense(batch, d);
    std::vector<Matrix> grad_sparse = {Matrix(batch, d), Matrix(batch, d)};
    interaction.Backward(weights, grad_dense, grad_sparse);

    const float eps = 1e-3f;
    for (size_t b = 0; b < batch; b++) {
        for (size_t c = 0; c < d; c++) {
            {
                Matrix plus = dense, minus = dense;
                plus(b, c) += eps;
                minus(b, c) -= eps;
                const double numeric =
                    (objective(plus, sparse) - objective(minus, sparse)) /
                    (2.0 * eps);
                EXPECT_NEAR(grad_dense(b, c), numeric, 5e-2) << b << "," << c;
            }
            {
                auto plus = sparse, minus = sparse;
                plus[1](b, c) += eps;
                minus[1](b, c) -= eps;
                const double numeric =
                    (objective(dense, plus) - objective(dense, minus)) /
                    (2.0 * eps);
                EXPECT_NEAR(grad_sparse[1](b, c), numeric, 5e-2)
                    << b << "," << c;
            }
        }
    }
}

}  // namespace
}  // namespace neo

namespace neo {
namespace {

// --------------------------------------- interaction sweep (TEST_P)

struct InteractionCase {
    size_t num_sparse;
    size_t dim;
    size_t batch;
};

class InteractionSweep : public ::testing::TestWithParam<InteractionCase>
{
};

TEST_P(InteractionSweep, ForwardBackwardShapesAndEnergy)
{
    const auto& p = GetParam();
    Rng rng(100 + p.num_sparse + p.dim + p.batch);
    DotInteraction interaction(p.num_sparse, p.dim);
    const Matrix dense = RandomMatrix(p.batch, p.dim, rng);
    std::vector<Matrix> sparse;
    for (size_t f = 0; f < p.num_sparse; f++) {
        sparse.push_back(RandomMatrix(p.batch, p.dim, rng));
    }
    Matrix out(p.batch, interaction.OutputDim());
    interaction.Forward(dense, sparse, out);

    // Pass-through region must equal the dense input exactly.
    for (size_t b = 0; b < p.batch; b++) {
        for (size_t c = 0; c < p.dim; c++) {
            ASSERT_EQ(out(b, c), dense(b, c));
        }
    }

    // Backward of an all-ones output gradient: the pass-through
    // component of grad_dense is exactly one.
    Matrix grad_out(p.batch, interaction.OutputDim());
    grad_out.Fill(1.0f);
    Matrix grad_dense(p.batch, p.dim);
    std::vector<Matrix> grad_sparse(p.num_sparse);
    for (auto& g : grad_sparse) {
        g = Matrix(p.batch, p.dim);
    }
    interaction.Backward(grad_out, grad_dense, grad_sparse);
    // grad_dense = 1 (pass-through) + sum of the other vectors.
    for (size_t b = 0; b < p.batch; b++) {
        for (size_t c = 0; c < p.dim; c++) {
            float expected = 1.0f;
            for (const auto& s : sparse) {
                expected += s(b, c);
            }
            ASSERT_NEAR(grad_dense(b, c), expected, 1e-4f);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, InteractionSweep,
    ::testing::Values(InteractionCase{1, 4, 1}, InteractionCase{2, 8, 3},
                      InteractionCase{5, 16, 7},
                      InteractionCase{10, 32, 2},
                      InteractionCase{3, 64, 5}));

}  // namespace
}  // namespace neo
