/**
 * @file
 * Tests for the data-ingestion layer: the combined lengths+indices format,
 * the permute/bucketize layout kernels, the synthetic CTR generator's
 * distributional properties and determinism, and the double-buffered
 * loader's stream equivalence.
 */
#include <gtest/gtest.h>

#include <map>

#include "data/dataloader.h"
#include "data/dataset.h"
#include "data/jagged.h"

namespace neo::data {
namespace {

KeyedJagged
MakeSimpleJagged()
{
    // 2 tables, batch 3.
    // table 0: lengths {1, 2, 0}, indices {5, 1, 2}
    // table 1: lengths {0, 1, 1}, indices {9, 3}
    KeyedJagged kj = KeyedJagged::Empty(2, 3);
    kj.lengths = {1, 2, 0, 0, 1, 1};
    kj.indices = {5, 1, 2, 9, 3};
    kj.RebuildOffsets();
    return kj;
}

TEST(KeyedJagged, AccessorsAndConsistency)
{
    const KeyedJagged kj = MakeSimpleJagged();
    kj.CheckConsistent();
    EXPECT_EQ(kj.TotalIndices(), 5u);

    const auto l0 = kj.LengthsForTable(0);
    EXPECT_EQ(std::vector<uint32_t>(l0.begin(), l0.end()),
              (std::vector<uint32_t>{1, 2, 0}));
    const auto i1 = kj.IndicesForTable(1);
    EXPECT_EQ(std::vector<int64_t>(i1.begin(), i1.end()),
              (std::vector<int64_t>{9, 3}));

    const auto input = kj.InputForTable(0);
    EXPECT_EQ(input.lengths.size(), 3u);
    EXPECT_EQ(input.indices.size(), 3u);
}

TEST(KeyedJagged, InconsistentOffsetsCaught)
{
    KeyedJagged kj = MakeSimpleJagged();
    kj.indices.push_back(1);  // extra index not covered by lengths
    EXPECT_DEATH(kj.CheckConsistent(), "inconsistent");
}

TEST(KeyedJagged, SliceBatchExtractsSamples)
{
    const KeyedJagged kj = MakeSimpleJagged();
    const KeyedJagged slice = kj.SliceBatch(1, 3);
    slice.CheckConsistent();
    EXPECT_EQ(slice.batch, 2u);
    const auto l0 = slice.LengthsForTable(0);
    EXPECT_EQ(std::vector<uint32_t>(l0.begin(), l0.end()),
              (std::vector<uint32_t>{2, 0}));
    const auto i0 = slice.IndicesForTable(0);
    EXPECT_EQ(std::vector<int64_t>(i0.begin(), i0.end()),
              (std::vector<int64_t>{1, 2}));
    const auto i1 = slice.IndicesForTable(1);
    EXPECT_EQ(std::vector<int64_t>(i1.begin(), i1.end()),
              (std::vector<int64_t>{9, 3}));
}

TEST(KeyedJagged, SliceTableExtractsOneTable)
{
    const KeyedJagged kj = MakeSimpleJagged();
    const KeyedJagged t1 = kj.SliceTable(1);
    t1.CheckConsistent();
    EXPECT_EQ(t1.num_tables, 1u);
    EXPECT_EQ(t1.batch, 3u);
    EXPECT_EQ(t1.indices, (std::vector<int64_t>{9, 3}));
}

TEST(KeyedJagged, SliceConcatRoundTrip)
{
    const KeyedJagged kj = MakeSimpleJagged();
    const KeyedJagged a = kj.SliceBatch(0, 1);
    const KeyedJagged b = kj.SliceBatch(1, 3);
    std::vector<KeyedJagged> pieces = {a, b};
    const KeyedJagged rejoined = ConcatBatches(pieces);
    EXPECT_EQ(rejoined.lengths, kj.lengths);
    EXPECT_EQ(rejoined.indices, kj.indices);
    EXPECT_EQ(rejoined.table_offsets, kj.table_offsets);
}

TEST(KeyedJagged, ConcatPermutesSourceTableToTableSource)
{
    // Two sources with one table each; concat must emit (table, source).
    KeyedJagged src0 = KeyedJagged::Empty(1, 2);
    src0.lengths = {1, 1};
    src0.indices = {10, 11};
    src0.RebuildOffsets();
    KeyedJagged src1 = KeyedJagged::Empty(1, 2);
    src1.lengths = {2, 0};
    src1.indices = {20, 21};
    src1.RebuildOffsets();
    std::vector<KeyedJagged> pieces = {src0, src1};
    const KeyedJagged out = ConcatBatches(pieces);
    EXPECT_EQ(out.batch, 4u);
    EXPECT_EQ(out.indices, (std::vector<int64_t>{10, 11, 20, 21}));
    EXPECT_EQ(out.lengths, (std::vector<uint32_t>{1, 1, 2, 0}));
}

TEST(Bucketize, SplitsByRowRangeAndRebases)
{
    KeyedJagged input = KeyedJagged::Empty(1, 2);
    input.lengths = {3, 2};
    input.indices = {0, 10, 25, 5, 35};
    input.RebuildOffsets();

    const std::vector<int64_t> splits = {0, 10, 30, 40};
    const Bucketized result = BucketizeRows(input, splits);
    ASSERT_EQ(result.buckets.size(), 3u);

    // Bucket 0: rows [0,10): indices 0 (sample 0) and 5 (sample 1).
    EXPECT_EQ(result.buckets[0].lengths, (std::vector<uint32_t>{1, 1}));
    EXPECT_EQ(result.buckets[0].indices, (std::vector<int64_t>{0, 5}));
    // Bucket 1: rows [10,30): 10, 25 rebased by 10.
    EXPECT_EQ(result.buckets[1].lengths, (std::vector<uint32_t>{2, 0}));
    EXPECT_EQ(result.buckets[1].indices, (std::vector<int64_t>{0, 15}));
    // Bucket 2: rows [30,40): 35 rebased by 30.
    EXPECT_EQ(result.buckets[2].lengths, (std::vector<uint32_t>{0, 1}));
    EXPECT_EQ(result.buckets[2].indices, (std::vector<int64_t>{5}));
}

TEST(Bucketize, PreservesTotalIndexCount)
{
    DatasetConfig config;
    config.features = {{1000, 8.0, 1.05}};
    config.seed = 3;
    SyntheticCtrDataset dataset(config);
    const Batch batch = dataset.NextBatch(64);
    const KeyedJagged one = batch.sparse.SliceTable(0);
    const std::vector<int64_t> splits = {0, 250, 500, 750, 1000};
    const Bucketized result = BucketizeRows(one, splits, /*rebase=*/false);
    size_t total = 0;
    for (const auto& bucket : result.buckets) {
        bucket.CheckConsistent();
        total += bucket.TotalIndices();
        for (size_t k = 0; k < bucket.indices.size(); k++) {
            EXPECT_GE(bucket.indices[k], 0);
            EXPECT_LT(bucket.indices[k], 1000);
        }
    }
    EXPECT_EQ(total, one.TotalIndices());
}

TEST(Bucketize, OutOfRangeIndexPanics)
{
    KeyedJagged input = KeyedJagged::Empty(1, 1);
    input.lengths = {1};
    input.indices = {100};
    input.RebuildOffsets();
    const std::vector<int64_t> splits = {0, 50};
    EXPECT_DEATH(BucketizeRows(input, splits), "outside all buckets");
}

// ---------------------------------------------------------------- Dataset

TEST(Dataset, DeterministicStream)
{
    DatasetConfig config;
    config.features = {{500, 5.0, 1.1}, {200, 3.0, 0.8}};
    config.seed = 42;
    SyntheticCtrDataset a(config), b(config);
    for (int i = 0; i < 3; i++) {
        const Batch ba = a.NextBatch(32);
        const Batch bb = b.NextBatch(32);
        EXPECT_TRUE(Matrix::Identical(ba.dense, bb.dense));
        EXPECT_EQ(ba.sparse.indices, bb.sparse.indices);
        EXPECT_EQ(ba.sparse.lengths, bb.sparse.lengths);
        EXPECT_EQ(ba.labels, bb.labels);
    }
}

TEST(Dataset, ShapesAndRanges)
{
    DatasetConfig config;
    config.num_dense = 10;
    config.features = {{100, 4.0, 1.0}, {50, 2.0, 1.0}, {20, 1.0, 0.0}};
    SyntheticCtrDataset dataset(config);
    const Batch batch = dataset.NextBatch(128);
    batch.sparse.CheckConsistent();
    EXPECT_EQ(batch.dense.rows(), 128u);
    EXPECT_EQ(batch.dense.cols(), 10u);
    EXPECT_EQ(batch.sparse.num_tables, 3u);
    EXPECT_EQ(batch.labels.size(), 128u);
    for (size_t t = 0; t < 3; t++) {
        const auto idx = batch.sparse.IndicesForTable(t);
        for (int64_t i : idx) {
            EXPECT_GE(i, 0);
            EXPECT_LT(i, config.features[t].rows);
        }
        const auto lens = batch.sparse.LengthsForTable(t);
        for (uint32_t l : lens) {
            EXPECT_GE(l, 1u);  // min pooling of 1
        }
    }
    for (float label : batch.labels) {
        EXPECT_TRUE(label == 0.0f || label == 1.0f);
    }
}

TEST(Dataset, PoolingMatchesConfiguredMean)
{
    DatasetConfig config;
    config.features = {{1000, 12.0, 1.0}};
    SyntheticCtrDataset dataset(config);
    double total = 0.0;
    const int batches = 20, batch_size = 256;
    for (int i = 0; i < batches; i++) {
        const Batch batch = dataset.NextBatch(batch_size);
        total += static_cast<double>(batch.sparse.TotalIndices());
    }
    const double avg = total / (batches * batch_size);
    EXPECT_NEAR(avg, 12.0, 0.5);
}

TEST(Dataset, ZipfSkewShowsInIndexFrequencies)
{
    DatasetConfig config;
    config.features = {{10000, 10.0, 1.2}};
    SyntheticCtrDataset dataset(config);
    std::map<int64_t, int> counts;
    for (int i = 0; i < 20; i++) {
        const Batch batch = dataset.NextBatch(256);
        for (int64_t idx : batch.sparse.indices) {
            counts[idx]++;
        }
    }
    int head = 0, total = 0;
    for (const auto& [row, count] : counts) {
        total += count;
        if (row < 100) {
            head += count;
        }
    }
    // 1% of rows should draw a large share of accesses.
    EXPECT_GT(static_cast<double>(head) / total, 0.3);
}

TEST(Dataset, LabelsCorrelateWithPlantedSignal)
{
    // The base rate should be below 50% (negative bias) and the planted
    // weights should make labels predictable: check the dataset is not
    // pure noise by verifying NE of the Bayes-ish predictor built from
    // the planted weights is below 1.
    DatasetConfig config;
    config.num_dense = 4;
    config.features = {{200, 4.0, 1.0}};
    config.seed = 11;
    SyntheticCtrDataset dataset(config);
    double positives = 0.0, count = 0.0;
    for (int i = 0; i < 10; i++) {
        const Batch batch = dataset.NextBatch(256);
        for (float l : batch.labels) {
            positives += l;
            count += 1.0;
        }
    }
    const double rate = positives / count;
    EXPECT_GT(rate, 0.05);
    EXPECT_LT(rate, 0.6);
}

TEST(Dataset, PlantedRowWeightIsDeterministic)
{
    DatasetConfig config;
    config.features = {{100, 2.0, 1.0}};
    SyntheticCtrDataset a(config), b(config);
    for (int64_t r = 0; r < 100; r++) {
        EXPECT_EQ(a.PlantedRowWeight(0, r), b.PlantedRowWeight(0, r));
    }
}

// -------------------------------------------------------------- Loader

TEST(DataLoader, StreamMatchesDirectDataset)
{
    DatasetConfig config;
    config.features = {{300, 6.0, 1.0}};
    config.seed = 17;
    SyntheticCtrDataset direct(config);
    DataLoader loader(config, 64);
    for (int i = 0; i < 5; i++) {
        const Batch expected = direct.NextBatch(64);
        const Batch got = loader.NextBatch();
        EXPECT_TRUE(Matrix::Identical(expected.dense, got.dense)) << i;
        EXPECT_EQ(expected.sparse.indices, got.sparse.indices) << i;
        EXPECT_EQ(expected.labels, got.labels) << i;
    }
}

}  // namespace
}  // namespace neo::data

// ---------------------------------------------------------- ReaderTier

#include <set>

#include "data/reader_tier.h"

namespace neo::data {
namespace {

TEST(ReaderTier, DeliversValidBatches)
{
    DatasetConfig config;
    config.num_dense = 4;
    config.features = {{500, 5.0, 1.0}};
    config.seed = 21;
    ReaderTierOptions options;
    options.num_readers = 3;
    options.batch_size = 32;
    ReaderTier tier(config, options);
    for (int i = 0; i < 12; i++) {
        const Batch batch = tier.NextBatch();
        batch.sparse.CheckConsistent();
        EXPECT_EQ(batch.size(), 32u);
        for (int64_t idx : batch.sparse.indices) {
            EXPECT_GE(idx, 0);
            EXPECT_LT(idx, 500);
        }
    }
    EXPECT_EQ(tier.batches_consumed(), 12u);
    EXPECT_GE(tier.batches_produced(), 12u);
}

TEST(ReaderTier, ReadersShareTheTaskButNotTheStream)
{
    // All readers must agree on the planted ground truth (task), while
    // producing distinct sample streams.
    DatasetConfig config;
    config.num_dense = 2;
    config.features = {{200, 4.0, 1.0}};
    config.seed = 33;

    DatasetConfig reader0 = config;
    reader0.task_seed = config.seed;
    reader0.seed = config.seed + 1;
    DatasetConfig reader1 = config;
    reader1.task_seed = config.seed;
    reader1.seed = config.seed + 1 + 7919;
    SyntheticCtrDataset a(reader0), b(reader1);
    for (int64_t r = 0; r < 200; r++) {
        EXPECT_EQ(a.PlantedRowWeight(0, r), b.PlantedRowWeight(0, r)) << r;
    }
    const Batch ba = a.NextBatch(16);
    const Batch bb = b.NextBatch(16);
    EXPECT_NE(ba.sparse.indices, bb.sparse.indices);
}

TEST(ReaderTier, BoundedQueueBackpressure)
{
    DatasetConfig config;
    config.features = {{100, 2.0, 1.0}};
    ReaderTierOptions options;
    options.num_readers = 2;
    options.queue_capacity = 4;
    options.batch_size = 8;
    ReaderTier tier(config, options);
    // Let readers fill the queue, then verify production stalled near the
    // cap rather than running away.
    Batch first = tier.NextBatch();
    (void)first;
    for (int spin = 0; spin < 50 && tier.batches_produced() < 4; spin++) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_LE(tier.batches_produced(),
              4u + options.num_readers + tier.batches_consumed());
}

TEST(DatasetTaskSeed, SeparatesTaskFromStream)
{
    DatasetConfig a;
    a.features = {{300, 4.0, 1.0}};
    a.seed = 7;
    DatasetConfig b = a;
    b.seed = 99;
    b.task_seed = 7;  // same task, different stream
    SyntheticCtrDataset da(a), db(b);
    for (int64_t r = 0; r < 300; r += 13) {
        EXPECT_EQ(da.PlantedRowWeight(0, r), db.PlantedRowWeight(0, r));
    }
    const Batch batch_a = da.NextBatch(32);
    const Batch batch_b = db.NextBatch(32);
    EXPECT_NE(batch_a.sparse.indices, batch_b.sparse.indices);
}

}  // namespace
}  // namespace neo::data
