/**
 * @file
 * Tests for the sharding subsystem: the per-scheme cost model's documented
 * properties, the greedy and Karmarkar-Karp partitioners (including a
 * brute-force optimality comparison on small instances), and the planner's
 * scheme selection, capacity handling and balance.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "sharding/cost_model.h"
#include "sharding/partition.h"
#include "sharding/planner.h"

namespace neo::sharding {
namespace {

TableConfig
MakeTable(const std::string& name, int64_t rows, int64_t dim, double pooling)
{
    TableConfig t;
    t.name = name;
    t.rows = rows;
    t.dim = dim;
    t.pooling = pooling;
    return t;
}

Shard
FullShard(int table, Scheme scheme, const TableConfig& config)
{
    Shard s;
    s.table = table;
    s.scheme = scheme;
    s.row_end = config.rows;
    s.col_end = config.dim;
    return s;
}

// ------------------------------------------------------------ CostModel

TEST(CostModel, TermsScaleAsDocumented)
{
    // Sec. 3.0.1: input cost ∝ L, pooling cost ∝ L*D, output comm ∝ D.
    const Topology topo{8, 8};
    const TableConfig base = MakeTable("t", 1000, 64, 10.0);
    const TableConfig wider = MakeTable("t", 1000, 128, 10.0);
    const TableConfig heavier = MakeTable("t", 1000, 64, 20.0);

    const ShardCost c_base = EstimateShardCost(
        base, FullShard(0, Scheme::kTableWise, base), topo, 1024);
    const ShardCost c_wide = EstimateShardCost(
        wider, FullShard(0, Scheme::kTableWise, wider), topo, 1024);
    const ShardCost c_heavy = EstimateShardCost(
        heavier, FullShard(0, Scheme::kTableWise, heavier), topo, 1024);

    EXPECT_DOUBLE_EQ(c_wide.output_comm, 2.0 * c_base.output_comm);
    EXPECT_DOUBLE_EQ(c_wide.compute, 2.0 * c_base.compute);
    EXPECT_DOUBLE_EQ(c_wide.input_comm, c_base.input_comm);

    EXPECT_DOUBLE_EQ(c_heavy.input_comm, 2.0 * c_base.input_comm);
    EXPECT_DOUBLE_EQ(c_heavy.compute, 2.0 * c_base.compute);
    EXPECT_DOUBLE_EQ(c_heavy.output_comm, c_base.output_comm);
}

TEST(CostModel, RowWiseOutputCommDoesNotShrinkWithShard)
{
    // Sec. 4.2.2: RW communication scales with trainer count — a half
    // table still ReduceScatters the full global batch.
    const Topology topo{8, 8};
    const TableConfig table = MakeTable("t", 1000, 64, 10.0);
    Shard half = FullShard(0, Scheme::kRowWise, table);
    half.row_end = 500;
    const ShardCost c_half =
        EstimateShardCost(table, half, topo, 1024);
    const ShardCost c_full = EstimateShardCost(
        table, FullShard(0, Scheme::kTableWise, table), topo, 1024);
    EXPECT_DOUBLE_EQ(c_half.output_comm, c_full.output_comm);
    EXPECT_NEAR(c_half.compute, c_full.compute / 2.0, 1e-9);
    EXPECT_NEAR(c_half.input_comm, c_full.input_comm / 2.0, 1e-9);
}

TEST(CostModel, ColumnWiseDuplicatesInput)
{
    // Sec. 4.2.3: every column shard receives the full index stream.
    const Topology topo{8, 8};
    const TableConfig table = MakeTable("t", 1000, 128, 10.0);
    Shard half = FullShard(0, Scheme::kColumnWise, table);
    half.col_end = 64;
    const ShardCost c_half = EstimateShardCost(table, half, topo, 1024);
    const ShardCost c_full = EstimateShardCost(
        table, FullShard(0, Scheme::kTableWise, table), topo, 1024);
    EXPECT_DOUBLE_EQ(c_half.input_comm, c_full.input_comm);  // duplicated
    EXPECT_NEAR(c_half.output_comm, c_full.output_comm / 2.0, 1e-9);
}

TEST(CostModel, DataParallelHasNoAllToAllAndSmallTablesPreferIt)
{
    const Topology topo{64, 8};
    const TableConfig small = MakeTable("s", 50, 16, 2.0);
    const ShardCost dp = EstimateShardCost(
        small, FullShard(0, Scheme::kDataParallel, small), topo, 65536);
    const ShardCost tw = EstimateShardCost(
        small, FullShard(0, Scheme::kTableWise, small), topo, 65536);
    EXPECT_EQ(dp.input_comm, 0.0);
    EXPECT_LT(dp.Total(), tw.Total());

    // A big table must NOT prefer DP: compare cluster-aggregate costs
    // (DP runs on every worker; TW concentrates on one).
    const TableConfig big = MakeTable("b", 10000000, 128, 20.0);
    const ShardCost dp_big = EstimateShardCost(
        big, FullShard(0, Scheme::kDataParallel, big), topo, 65536);
    const ShardCost tw_big = EstimateShardCost(
        big, FullShard(0, Scheme::kTableWise, big), topo, 65536);
    EXPECT_GT(dp_big.Total() * topo.num_workers, tw_big.Total());
}

TEST(CostModel, TableRowWiseCheaperOutputThanRowWise)
{
    const Topology topo{64, 8};
    const TableConfig table = MakeTable("t", 1000000, 128, 20.0);
    Shard rw = FullShard(0, Scheme::kRowWise, table);
    rw.row_end = table.rows / 8;
    Shard twrw = rw;
    twrw.scheme = Scheme::kTableRowWise;
    const ShardCost c_rw = EstimateShardCost(table, rw, topo, 65536);
    const ShardCost c_twrw = EstimateShardCost(table, twrw, topo, 65536);
    EXPECT_LT(c_twrw.output_comm, c_rw.output_comm);
}

TEST(CostModel, OptimizerStateBytes)
{
    const TableConfig table = MakeTable("t", 1000, 64, 1.0);
    EXPECT_DOUBLE_EQ(OptimizerStateBytes(table, true), 1000.0 * 4);
    EXPECT_DOUBLE_EQ(OptimizerStateBytes(table, false), 1000.0 * 64 * 4);
}

// ----------------------------------------------------------- Partition

double
BruteForceOptimal(const std::vector<double>& costs, int bins)
{
    // Exhaustive assignment for tiny instances.
    const size_t n = costs.size();
    std::vector<int> assign(n, 0);
    double best = 1e300;
    while (true) {
        std::vector<double> sums(bins, 0.0);
        for (size_t i = 0; i < n; i++) {
            sums[assign[i]] += costs[i];
        }
        best = std::min(best, *std::max_element(sums.begin(), sums.end()));
        size_t i = 0;
        while (i < n && ++assign[i] == bins) {
            assign[i] = 0;
            i++;
        }
        if (i == n) {
            break;
        }
    }
    return best;
}

TEST(Partition, GreedyWithinFourThirdsOfOptimal)
{
    // LPT's classic (4/3 - 1/3m) bound, checked against brute force.
    Rng rng(5);
    for (int trial = 0; trial < 30; trial++) {
        std::vector<double> costs(8);
        for (auto& c : costs) {
            c = 1.0 + rng.NextDouble() * 9.0;
        }
        const int bins = 3;
        const auto assignment = GreedyPartition(costs, bins);
        const double greedy_max = MaxBinSum(costs, assignment, bins);
        const double opt = BruteForceOptimal(costs, bins);
        EXPECT_LE(greedy_max, opt * (4.0 / 3.0) + 1e-9) << trial;
    }
}

TEST(Partition, LdmNoWorseThanGreedyOnRandomInstances)
{
    Rng rng(7);
    int ldm_wins = 0, greedy_wins = 0;
    for (int trial = 0; trial < 50; trial++) {
        std::vector<double> costs(20);
        for (auto& c : costs) {
            c = std::exp(rng.NextGaussian());
        }
        const int bins = 4;
        const double greedy_max =
            MaxBinSum(costs, GreedyPartition(costs, bins), bins);
        const double ldm_max =
            MaxBinSum(costs, LdmPartition(costs, bins), bins);
        if (ldm_max < greedy_max - 1e-12) {
            ldm_wins++;
        } else if (greedy_max < ldm_max - 1e-12) {
            greedy_wins++;
        }
    }
    // The paper: LDM "usually works better than the greedy heuristic".
    EXPECT_GT(ldm_wins, greedy_wins);
}

TEST(Partition, AllItemsAssignedExactlyOnce)
{
    Rng rng(11);
    std::vector<double> costs(37);
    for (auto& c : costs) {
        c = rng.NextDouble() * 5.0;
    }
    for (int bins : {1, 2, 5, 8}) {
        for (const auto& assignment :
             {GreedyPartition(costs, bins), LdmPartition(costs, bins)}) {
            ASSERT_EQ(assignment.size(), costs.size());
            for (int b : assignment) {
                ASSERT_GE(b, 0);
                ASSERT_LT(b, bins);
            }
        }
    }
}

TEST(Partition, LdmMatchesKnownDifferencingResults)
{
    // {8,7,6,5,4} into 2 bins is the classic instance where
    // Karmarkar-Karp is suboptimal: differencing yields a spread of 2
    // (max bin 16) while the optimum is 15 ({8,7} / {6,5,4}).
    const std::vector<double> kk_suboptimal = {8, 7, 6, 5, 4};
    EXPECT_DOUBLE_EQ(
        MaxBinSum(kk_suboptimal, LdmPartition(kk_suboptimal, 2), 2), 16.0);

    // {8,7,5,4}: differencing finds the perfect split {8,4}/{7,5}.
    const std::vector<double> kk_optimal = {8, 7, 5, 4};
    EXPECT_DOUBLE_EQ(
        MaxBinSum(kk_optimal, LdmPartition(kk_optimal, 2), 2), 12.0);
}

TEST(Partition, CapacityConstrainedRespectsMemory)
{
    const std::vector<double> costs = {10, 9, 8, 1};
    const std::vector<double> memory = {6, 6, 6, 6};
    // Capacity 7: one item per bin max; needs 4 bins.
    EXPECT_TRUE(
        GreedyPartitionWithCapacity(costs, memory, 7.0, 3).empty());
    const auto ok = GreedyPartitionWithCapacity(costs, memory, 7.0, 4);
    ASSERT_EQ(ok.size(), 4u);
    std::vector<int> seen(4, 0);
    for (int b : ok) {
        seen[b]++;
    }
    for (int count : seen) {
        EXPECT_EQ(count, 1);
    }
}

TEST(Partition, Deterministic)
{
    Rng rng(13);
    std::vector<double> costs(25);
    for (auto& c : costs) {
        c = rng.NextDouble();
    }
    EXPECT_EQ(GreedyPartition(costs, 4), GreedyPartition(costs, 4));
    EXPECT_EQ(LdmPartition(costs, 4), LdmPartition(costs, 4));
}

// -------------------------------------------------------------- Planner

PlannerOptions
DefaultOptions(int workers, double hbm = 1e9)
{
    PlannerOptions options;
    options.topo.num_workers = workers;
    options.topo.workers_per_node = 8;
    options.global_batch = 4096;
    options.hbm_bytes_per_worker = hbm;
    return options;
}

TEST(Planner, SmallTableGoesDataParallel)
{
    ShardingPlanner planner(DefaultOptions(16));
    const auto plan = planner.Plan({MakeTable("tiny", 100, 8, 2.0)});
    ASSERT_TRUE(plan.feasible);
    EXPECT_EQ(plan.SchemeForTable(0), Scheme::kDataParallel);
}

TEST(Planner, OversizedTableGoesRowWise)
{
    // 10M rows x 64 dims x 4 B = 2.56 GB > 1 GB capacity.
    ShardingPlanner planner(DefaultOptions(16, 1e9));
    const auto plan = planner.Plan({MakeTable("huge", 10000000, 64, 20.0)});
    ASSERT_TRUE(plan.feasible) << plan.note;
    EXPECT_EQ(plan.SchemeForTable(0), Scheme::kRowWise);
    // Shards must partition the rows exactly.
    int64_t covered = 0;
    for (const auto& shard : plan.shards) {
        covered += shard.NumRows();
        EXPECT_LE(shard.NumRows() * 64 * 4.0,
                  1e9);  // each shard fits one worker
    }
    EXPECT_EQ(covered, 10000000);
}

TEST(Planner, WideTableGoesColumnWise)
{
    auto options = DefaultOptions(16, 10e9);
    options.cw_min_dim = 256;
    options.cw_shard_dim = 128;
    options.cw_cost_trigger = 0.0;  // isolate the width-based splitting
    ShardingPlanner planner(options);
    const auto plan =
        planner.Plan({MakeTable("wide", 500000, 512, 20.0)});
    ASSERT_TRUE(plan.feasible);
    EXPECT_EQ(plan.SchemeForTable(0), Scheme::kColumnWise);
    EXPECT_EQ(plan.shards.size(), 4u);  // 512 / 128
    int64_t covered = 0;
    for (const auto& shard : plan.shards) {
        covered += shard.NumCols();
    }
    EXPECT_EQ(covered, 512);
}

TEST(Planner, HotTableColumnSplitsForLoadBalance)
{
    // Sec. 5.3.2 / Fig. 13: a table whose pooling cost dwarfs the others
    // is column-split for balance even though it easily fits in memory.
    std::vector<TableConfig> tables;
    tables.push_back(MakeTable("hot", 100000, 128, 500.0));  // huge L
    for (int t = 0; t < 20; t++) {
        tables.push_back(
            MakeTable("cold" + std::to_string(t), 100000, 64, 2.0));
    }
    auto options = DefaultOptions(8, 50e9);
    options.allow_data_parallel = false;
    ShardingPlanner planner(options);
    const auto plan = planner.Plan(tables);
    ASSERT_TRUE(plan.feasible) << plan.note;
    EXPECT_EQ(plan.SchemeForTable(0), Scheme::kColumnWise);
    // The split must spread the hot table over several workers.
    int hot_shards = 0;
    for (const auto& shard : plan.shards) {
        hot_shards += shard.table == 0;
    }
    EXPECT_GE(hot_shards, 4);
    EXPECT_LT(plan.balance.imbalance, 1.5);
}

TEST(Planner, TableRowWisePlacesWithinOneNode)
{
    auto options = DefaultOptions(16, 1e9);
    options.allow_table_row_wise = true;
    ShardingPlanner planner(options);
    const auto plan = planner.Plan({MakeTable("big", 10000000, 64, 20.0)});
    ASSERT_TRUE(plan.feasible);
    EXPECT_EQ(plan.SchemeForTable(0), Scheme::kTableRowWise);
    // All shards on the same node.
    std::vector<int> nodes;
    for (const auto& shard : plan.shards) {
        nodes.push_back(shard.worker / 8);
    }
    for (int n : nodes) {
        EXPECT_EQ(n, nodes[0]);
    }
}

TEST(Planner, BalancesManyTables)
{
    Rng rng(17);
    std::vector<TableConfig> tables;
    for (int t = 0; t < 200; t++) {
        tables.push_back(MakeTable(
            "t" + std::to_string(t),
            1000 + static_cast<int64_t>(rng.NextBounded(500000)),
            8 << rng.NextBounded(4), 1.0 + rng.NextDouble() * 30.0));
    }
    auto options = DefaultOptions(16, 10e9);
    ShardingPlanner planner(options);
    const auto plan = planner.Plan(tables);
    ASSERT_TRUE(plan.feasible) << plan.note;
    EXPECT_LT(plan.balance.imbalance, 1.3);
}

TEST(Planner, LdmBalancesAtLeastAsWellAsGreedyOnAverage)
{
    Rng rng(19);
    double greedy_total = 0.0, ldm_total = 0.0;
    for (int trial = 0; trial < 5; trial++) {
        std::vector<TableConfig> tables;
        for (int t = 0; t < 60; t++) {
            tables.push_back(MakeTable(
                "t" + std::to_string(t),
                1000 + static_cast<int64_t>(rng.NextBounded(2000000)),
                8 << rng.NextBounded(4), 1.0 + rng.NextDouble() * 20.0));
        }
        auto greedy_opts = DefaultOptions(8, 50e9);
        greedy_opts.placement = PlacementAlgorithm::kGreedy;
        greedy_opts.allow_data_parallel = false;
        auto ldm_opts = greedy_opts;
        ldm_opts.placement = PlacementAlgorithm::kLdm;
        greedy_total +=
            ShardingPlanner(greedy_opts).Plan(tables).balance.imbalance;
        ldm_total +=
            ShardingPlanner(ldm_opts).Plan(tables).balance.imbalance;
    }
    EXPECT_LE(ldm_total, greedy_total + 0.01);
}

TEST(Planner, InfeasibleWhenMemoryTooSmall)
{
    auto options = DefaultOptions(2, 1e6);  // 1 MB per worker
    options.allow_row_wise = true;
    ShardingPlanner planner(options);
    const auto plan = planner.Plan({MakeTable("big", 1000000, 64, 10.0),
                                    MakeTable("big2", 1000000, 64, 10.0)});
    EXPECT_FALSE(plan.feasible);
    EXPECT_FALSE(plan.note.empty());
}

TEST(Planner, WorkerMemoryRespectsCapacity)
{
    Rng rng(23);
    std::vector<TableConfig> tables;
    for (int t = 0; t < 50; t++) {
        tables.push_back(MakeTable(
            "t" + std::to_string(t),
            100000 + static_cast<int64_t>(rng.NextBounded(1000000)), 32,
            5.0));
    }
    auto options = DefaultOptions(8, 2e9);
    ShardingPlanner planner(options);
    const auto plan = planner.Plan(tables);
    ASSERT_TRUE(plan.feasible) << plan.note;
    for (double mem : plan.worker_memory) {
        EXPECT_LE(mem, 2e9);
    }
}

TEST(Planner, Fp16HalvesMemoryFootprint)
{
    std::vector<TableConfig> tables = {MakeTable("t", 1000000, 64, 10.0)};
    auto options = DefaultOptions(4, 10e9);
    options.allow_data_parallel = false;
    const auto plan_fp32 = ShardingPlanner(options).Plan(tables);
    tables[0].precision = Precision::kFp16;
    const auto plan_fp16 = ShardingPlanner(options).Plan(tables);
    const double mem32 = *std::max_element(plan_fp32.worker_memory.begin(),
                                           plan_fp32.worker_memory.end());
    const double mem16 = *std::max_element(plan_fp16.worker_memory.begin(),
                                           plan_fp16.worker_memory.end());
    // Parameters halve; the row-wise AdaGrad state stays FP32.
    EXPECT_LT(mem16, mem32 * 0.6);
}

}  // namespace
}  // namespace neo::sharding

namespace neo::sharding {
namespace {

// ----------------------------------------------- planner fuzz (TEST_P)

class PlannerFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(PlannerFuzz, PlanInvariantsHoldOnRandomTables)
{
    Rng rng(GetParam());
    std::vector<TableConfig> tables;
    const int num_tables = 20 + static_cast<int>(rng.NextBounded(60));
    for (int t = 0; t < num_tables; t++) {
        TableConfig table;
        table.name = "fuzz" + std::to_string(t);
        table.rows = 100 + static_cast<int64_t>(rng.NextBounded(5000000));
        table.dim = 4 << rng.NextBounded(6);  // 4..128
        table.pooling = 1.0 + rng.NextDouble() * 60.0;
        tables.push_back(table);
    }

    PlannerOptions options;
    options.topo.num_workers = 1 + static_cast<int>(rng.NextBounded(32));
    options.topo.workers_per_node = 8;
    options.global_batch = 4096;
    options.hbm_bytes_per_worker = 5e8 + rng.NextDouble() * 5e9;
    options.placement = rng.NextBounded(2) ? PlacementAlgorithm::kLdm
                                           : PlacementAlgorithm::kGreedy;
    ShardingPlanner planner(options);
    const ShardingPlan plan = planner.Plan(tables);
    if (!plan.feasible) {
        EXPECT_FALSE(plan.note.empty());
        return;  // infeasible is a legal outcome for tight random memory
    }

    // Invariant 1: every table fully covered exactly once.
    for (int t = 0; t < num_tables; t++) {
        int64_t rows_covered = 0;
        int64_t cols_covered = 0;
        Scheme scheme = Scheme::kTableWise;
        int shards = 0;
        for (const auto& shard : plan.shards) {
            if (shard.table != t) {
                continue;
            }
            shards++;
            scheme = shard.scheme;
            rows_covered += shard.NumRows();
            cols_covered += shard.NumCols();
        }
        ASSERT_GT(shards, 0) << t;
        switch (scheme) {
          case Scheme::kRowWise:
          case Scheme::kTableRowWise:
            EXPECT_EQ(rows_covered, tables[t].rows) << t;
            break;
          case Scheme::kColumnWise:
            EXPECT_EQ(cols_covered, tables[t].dim) << t;
            break;
          default:
            EXPECT_EQ(shards, 1) << t;
        }
    }

    // Invariant 2: every placed shard has a valid worker; memory bounded.
    for (const auto& shard : plan.shards) {
        if (shard.scheme != Scheme::kDataParallel) {
            EXPECT_GE(shard.worker, 0);
            EXPECT_LT(shard.worker, options.topo.num_workers);
        }
    }
    for (double mem : plan.worker_memory) {
        EXPECT_LE(mem, options.hbm_bytes_per_worker * (1 + 1e-9));
    }

    // Invariant 3: planning is deterministic.
    const ShardingPlan replay = planner.Plan(tables);
    ASSERT_EQ(replay.shards.size(), plan.shards.size());
    for (size_t s = 0; s < plan.shards.size(); s++) {
        EXPECT_EQ(replay.shards[s].worker, plan.shards[s].worker) << s;
        EXPECT_EQ(replay.shards[s].row_begin, plan.shards[s].row_begin);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           9u, 10u));

}  // namespace
}  // namespace neo::sharding
