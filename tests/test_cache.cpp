/**
 * @file
 * Tests for the memory hierarchy: the 32-way set-associative software
 * cache (hits, LRU/LFU eviction, dirty write-back, flush), the cached
 * embedding store's coherence with its backing table, the UVM paged
 * baseline, and the headline comparison — under Zipf reuse the software
 * cache moves far less PCIe traffic than UVM (Sec. 4.1.3).
 */
#include <gtest/gtest.h>

#include "cache/cached_embedding_store.h"
#include "cache/memory_tier.h"
#include "cache/set_associative_cache.h"
#include "cache/uvm_store.h"
#include "common/rng.h"

namespace neo::cache {
namespace {

// ------------------------------------------------------------ Directory

TEST(SetAssociativeCache, MissThenHit)
{
    SetAssociativeCache cache({4, 2, ReplacementPolicy::kLru});
    EXPECT_FALSE(cache.Access(42).has_value());
    cache.Insert(42);
    EXPECT_TRUE(cache.Access(42).has_value());
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(SetAssociativeCache, LruEvictsLeastRecentlyUsed)
{
    // Single set, 2 ways: rows hash into the same set trivially.
    SetAssociativeCache cache({1, 2, ReplacementPolicy::kLru});
    cache.Access(1);
    cache.Insert(1);
    cache.Access(2);
    cache.Insert(2);
    cache.Access(1);  // 1 is now MRU
    cache.Access(3);  // miss
    const auto result = cache.Insert(3);
    ASSERT_TRUE(result.evicted_row.has_value());
    EXPECT_EQ(*result.evicted_row, 2);  // LRU victim
    EXPECT_TRUE(cache.Probe(1).has_value());
    EXPECT_FALSE(cache.Probe(2).has_value());
}

TEST(SetAssociativeCache, LfuEvictsLeastFrequentlyUsed)
{
    SetAssociativeCache cache({1, 2, ReplacementPolicy::kLfu});
    cache.Access(1);
    cache.Insert(1);
    cache.Access(2);
    cache.Insert(2);
    // Row 1 becomes hot.
    cache.Access(1);
    cache.Access(1);
    cache.Access(1);
    cache.Access(2);
    cache.Access(3);
    const auto result = cache.Insert(3);
    ASSERT_TRUE(result.evicted_row.has_value());
    EXPECT_EQ(*result.evicted_row, 2);  // lower frequency than 1
}

TEST(SetAssociativeCache, DirtyTrackingAndWriteback)
{
    SetAssociativeCache cache({1, 1, ReplacementPolicy::kLru});
    cache.Access(5);
    cache.Insert(5);
    EXPECT_FALSE(cache.IsDirty(5));
    cache.MarkDirty(5);
    EXPECT_TRUE(cache.IsDirty(5));

    cache.Access(6);
    const auto result = cache.Insert(6);
    ASSERT_TRUE(result.evicted_row.has_value());
    EXPECT_EQ(*result.evicted_row, 5);
    EXPECT_TRUE(result.evicted_dirty);
    EXPECT_EQ(cache.stats().dirty_writebacks, 1u);
}

TEST(SetAssociativeCache, FlushReturnsDirtyLinesAndClears)
{
    SetAssociativeCache cache({8, 4, ReplacementPolicy::kLru});
    for (int64_t r = 0; r < 10; r++) {
        cache.Access(r);
        cache.Insert(r);
        if (r % 2 == 0) {
            cache.MarkDirty(r);
        }
    }
    const auto dirty = cache.FlushDirty();
    EXPECT_EQ(dirty.size(), 5u);
    for (int64_t r = 0; r < 10; r++) {
        EXPECT_FALSE(cache.Probe(r).has_value()) << r;
    }
}

TEST(SetAssociativeCache, AssociativityBoundsResidency)
{
    // 2 sets x 4 ways = 8 slots: inserting 100 distinct rows keeps at
    // most 8 resident.
    SetAssociativeCache cache({2, 4, ReplacementPolicy::kLru});
    for (int64_t r = 0; r < 100; r++) {
        if (!cache.Access(r)) {
            cache.Insert(r);
        }
    }
    int resident = 0;
    for (int64_t r = 0; r < 100; r++) {
        resident += cache.Probe(r).has_value();
    }
    EXPECT_LE(resident, 8);
    EXPECT_GT(resident, 0);
}

TEST(SetAssociativeCache, WarpWidthDefaultAssociativity)
{
    CacheConfig config;
    EXPECT_EQ(config.ways, 32u);  // matches the GPU warp size (Sec. 4.1.3)
}

// -------------------------------------------------- CachedEmbeddingStore

TEST(CachedEmbeddingStore, ReadThroughMatchesBacking)
{
    ops::EmbeddingTable backing(64, 4);
    Rng rng(3);
    backing.InitUniform(rng);
    ops::EmbeddingTable copy = backing;

    MemoryTier hbm(Tier::kHbm, 1e9, 850e9);
    MemoryTier ddr(Tier::kDdr, 1e12, 13e9);
    CachedEmbeddingStore store(std::move(backing), {4, 4}, &hbm, &ddr);

    std::vector<float> a(4), b(4);
    for (int64_t r = 0; r < 64; r++) {
        store.ReadRow(r, a.data());
        copy.ReadRow(r, b.data());
        EXPECT_EQ(a, b) << r;
    }
    EXPECT_GT(store.stats().misses, 0u);
}

TEST(CachedEmbeddingStore, WriteBackReachesBackingOnFlush)
{
    ops::EmbeddingTable backing(8, 2);
    MemoryTier hbm(Tier::kHbm, 1e9, 850e9);
    MemoryTier ddr(Tier::kDdr, 1e12, 13e9);
    CachedEmbeddingStore store(std::move(backing), {2, 2}, &hbm, &ddr);

    const float row[2] = {7.0f, -3.0f};
    store.WriteRow(5, row);
    std::vector<float> out(2);
    store.ReadRow(5, out.data());
    EXPECT_EQ(out[0], 7.0f);

    store.Flush();
    store.backing().ReadRow(5, out.data());
    EXPECT_EQ(out[0], 7.0f);
    EXPECT_EQ(out[1], -3.0f);
}

TEST(CachedEmbeddingStore, RepeatedAccessHitsInCache)
{
    ops::EmbeddingTable backing(1024, 8);
    MemoryTier hbm(Tier::kHbm, 1e9, 850e9);
    MemoryTier ddr(Tier::kDdr, 1e12, 13e9);
    CachedEmbeddingStore store(std::move(backing), {64, 32}, &hbm, &ddr);

    std::vector<float> buf(8);
    for (int pass = 0; pass < 10; pass++) {
        for (int64_t r = 0; r < 100; r++) {
            store.ReadRow(r, buf.data());
        }
    }
    // 100 cold misses, everything else hits (100 rows << 2048 slots).
    EXPECT_EQ(store.stats().misses, 100u);
    EXPECT_EQ(store.stats().hits, 900u);
    // DDR traffic is one fetch per miss.
    EXPECT_EQ(ddr.read_bytes(), 100u * 8 * 4);
}

TEST(CachedEmbeddingStore, ZipfBeatsUniformHitRate)
{
    auto run = [](double zipf_s) {
        ops::EmbeddingTable backing(100000, 4);
        MemoryTier hbm(Tier::kHbm, 1e9, 850e9);
        MemoryTier ddr(Tier::kDdr, 1e12, 13e9);
        // Small cache: 128 sets x 32 ways = 4096 rows of 100K.
        CachedEmbeddingStore store(std::move(backing), {128, 32}, &hbm,
                                   &ddr);
        Rng rng(17);
        ZipfSampler sampler(100000, zipf_s);
        std::vector<float> buf(4);
        for (int i = 0; i < 50000; i++) {
            store.ReadRow(static_cast<int64_t>(sampler.Sample(rng)),
                          buf.data());
        }
        return store.stats().HitRate();
    };
    const double zipf_rate = run(1.1);
    const double uniform_rate = run(0.0);
    EXPECT_GT(zipf_rate, 0.5);
    EXPECT_LT(uniform_rate, 0.2);
    EXPECT_GT(zipf_rate, uniform_rate + 0.3);
}

// -------------------------------------------------------------- UvmStore

TEST(UvmPagedStore, FaultsOncePerResidentPage)
{
    ops::EmbeddingTable backing(1024, 8);  // 32 B rows
    MemoryTier hbm(Tier::kHbm, 1e9, 850e9);
    MemoryTier pcie(Tier::kDdr, 1e12, 13e9);
    // 256 B pages = 8 rows/page; budget 16 pages.
    UvmPagedStore store(std::move(backing), 256, 16 * 256, &hbm, &pcie);
    EXPECT_EQ(store.RowsPerPage(), 8u);
    EXPECT_EQ(store.MaxResidentPages(), 16u);

    std::vector<float> buf(8);
    for (int64_t r = 0; r < 64; r++) {
        store.ReadRow(r, buf.data());
    }
    EXPECT_EQ(store.stats().page_faults, 8u);  // 64 rows / 8 per page
    // Second sweep hits entirely (8 pages < 16 budget).
    for (int64_t r = 0; r < 64; r++) {
        store.ReadRow(r, buf.data());
    }
    EXPECT_EQ(store.stats().page_faults, 8u);
}

TEST(UvmPagedStore, EvictsWhenOverBudget)
{
    ops::EmbeddingTable backing(1024, 8);
    MemoryTier hbm(Tier::kHbm, 1e9, 850e9);
    MemoryTier pcie(Tier::kDdr, 1e12, 13e9);
    UvmPagedStore store(std::move(backing), 256, 4 * 256, &hbm, &pcie);

    std::vector<float> buf(8);
    // Touch 8 pages with a 4-page budget: evictions must occur.
    for (int64_t r = 0; r < 64; r += 8) {
        store.ReadRow(r, buf.data());
    }
    EXPECT_EQ(store.stats().page_faults, 8u);
    EXPECT_EQ(store.stats().page_evictions, 4u);
}

TEST(UvmPagedStore, WritesVisibleInBacking)
{
    ops::EmbeddingTable backing(64, 4);
    MemoryTier hbm(Tier::kHbm, 1e9, 850e9);
    MemoryTier pcie(Tier::kDdr, 1e12, 13e9);
    UvmPagedStore store(std::move(backing), 128, 1024, &hbm, &pcie);
    const float row[4] = {1.0f, 2.0f, 3.0f, 4.0f};
    store.WriteRow(10, row);
    std::vector<float> out(4);
    store.ReadRow(10, out.data());
    EXPECT_EQ(out[2], 3.0f);
}

// ----------------------------------------------- software cache vs UVM

TEST(CacheVsUvm, SoftwareCacheMovesLessPcieTrafficOnZipf)
{
    // Same HBM budget for both; Zipf-skewed accesses to a large table.
    // Row-granular caching keeps the hot set resident; UVM drags whole
    // pages across PCIe (Sec. 4.1.3's motivation for the custom cache).
    const int64_t rows = 200000;
    const int64_t dim = 32;  // 128 B rows
    const size_t hbm_budget = 1 << 20;  // 1 MiB

    Rng rng(29);
    ZipfSampler sampler(static_cast<uint64_t>(rows), 1.05);
    std::vector<int64_t> trace(100000);
    for (auto& r : trace) {
        r = static_cast<int64_t>(sampler.Sample(rng));
    }
    std::vector<float> buf(static_cast<size_t>(dim));

    ops::EmbeddingTable backing1(rows, dim);
    MemoryTier hbm1(Tier::kHbm, 1e9, 850e9);
    MemoryTier pcie1(Tier::kDdr, 1e12, 13e9);
    // 1 MiB / 128 B = 8192 rows = 256 sets x 32 ways.
    CachedEmbeddingStore sw_cache(std::move(backing1), {256, 32}, &hbm1,
                                  &pcie1);
    for (int64_t r : trace) {
        sw_cache.ReadRow(r, buf.data());
    }

    ops::EmbeddingTable backing2(rows, dim);
    MemoryTier hbm2(Tier::kHbm, 1e9, 850e9);
    MemoryTier pcie2(Tier::kDdr, 1e12, 13e9);
    UvmPagedStore uvm(std::move(backing2), 64 * 1024, hbm_budget, &hbm2,
                      &pcie2);
    for (int64_t r : trace) {
        uvm.ReadRow(r, buf.data());
    }

    EXPECT_LT(pcie1.total_bytes() * 5, pcie2.total_bytes())
        << "software cache PCIe " << pcie1.total_bytes() << " vs UVM "
        << pcie2.total_bytes();
}

// ------------------------------------------------------------ MemoryTier

TEST(MemoryTier, TrafficAccounting)
{
    MemoryTier tier(Tier::kHbm, 32e9, 850e9);
    tier.RecordRead(850);
    tier.RecordWrite(850);
    EXPECT_EQ(tier.total_bytes(), 1700u);
    EXPECT_DOUBLE_EQ(tier.TrafficSeconds(), 1700.0 / 850e9);
    tier.ResetStats();
    EXPECT_EQ(tier.total_bytes(), 0u);
}

}  // namespace
}  // namespace neo::cache

// ------------------------------------------------- TieredEmbeddingBag

#include "cache/tiered_embedding_bag.h"

namespace neo::cache {
namespace {

/** Build identical random inputs for the tiered-vs-plain comparisons. */
struct TieredFixtureData {
    std::vector<uint32_t> lengths;
    std::vector<int64_t> indices;
    Matrix grads;
    size_t batch = 32;
};

TieredFixtureData
MakeTieredInputs(int64_t rows, int64_t dim, uint64_t seed)
{
    TieredFixtureData data;
    Rng rng(seed);
    ZipfSampler sampler(static_cast<uint64_t>(rows), 1.1);
    data.lengths.assign(data.batch, 0);
    for (size_t b = 0; b < data.batch; b++) {
        data.lengths[b] = 1 + static_cast<uint32_t>(rng.NextBounded(8));
        for (uint32_t i = 0; i < data.lengths[b]; i++) {
            data.indices.push_back(
                static_cast<int64_t>(sampler.Sample(rng)));
        }
    }
    data.grads = Matrix(data.batch, static_cast<size_t>(dim));
    data.grads.InitUniform(rng, -0.1f, 0.1f);
    return data;
}

TEST(TieredEmbeddingBag, PlainStoreMatchesEmbeddingBagBitwise)
{
    const int64_t rows = 300, dim = 16;
    const TieredFixtureData data = MakeTieredInputs(rows, dim, 3);
    ops::SparseOptimizerConfig config;
    config.kind = ops::SparseOptimizerKind::kRowWiseAdaGrad;
    config.learning_rate = 0.05f;

    // Reference: the in-memory EmbeddingBagCollection path.
    ops::EmbeddingBagCollection ebc({{rows, dim, Precision::kFp32}},
                                    config, 9);
    std::vector<ops::TableInput> inputs = {
        {data.lengths, data.indices}};
    std::vector<Matrix> ref_out;
    std::vector<Matrix> grads = {data.grads};
    for (int step = 0; step < 5; step++) {
        ebc.Forward(inputs, data.batch, ref_out);
        ebc.BackwardAndUpdate(inputs, data.batch, grads);
    }

    // Tiered path over a plain store with identical init.
    ops::EmbeddingTable table(rows, dim);
    table.InitDeterministic(ops::EmbeddingBagCollection::TableSeed(9, 0),
                            0, 0, dim);
    ops::PlainRowStore store(std::move(table));
    TieredEmbeddingBag bag(&store, config);
    Matrix tiered_out;
    for (int step = 0; step < 5; step++) {
        bag.Forward({data.lengths, data.indices}, data.batch, tiered_out);
        bag.BackwardAndUpdate({data.lengths, data.indices}, data.batch,
                              data.grads);
    }

    EXPECT_TRUE(Matrix::Identical(ref_out[0], tiered_out));
    EXPECT_TRUE(
        ops::EmbeddingTable::Identical(ebc.table(0), store.table()));
}

TEST(TieredEmbeddingBag, CachedStoreIsTransparentAfterFlush)
{
    const int64_t rows = 400, dim = 8;
    const TieredFixtureData data = MakeTieredInputs(rows, dim, 5);
    ops::SparseOptimizerConfig config;
    config.kind = ops::SparseOptimizerKind::kRowWiseAdaGrad;

    ops::EmbeddingTable plain(rows, dim);
    plain.InitDeterministic(1, 0, 0, dim);
    ops::PlainRowStore plain_store(std::move(plain));
    TieredEmbeddingBag plain_bag(&plain_store, config);

    ops::EmbeddingTable backing(rows, dim);
    backing.InitDeterministic(1, 0, 0, dim);
    MemoryTier hbm(Tier::kHbm, 1e9, 850e9);
    MemoryTier ddr(Tier::kDdr, 1e12, 13e9);
    // Cache much smaller than the table: lots of eviction traffic.
    CachedRowStore cached_store(CachedEmbeddingStore(
        std::move(backing), {2, 32}, &hbm, &ddr));
    TieredEmbeddingBag cached_bag(&cached_store, config);

    Matrix out_plain, out_cached;
    for (int step = 0; step < 5; step++) {
        plain_bag.Forward({data.lengths, data.indices}, data.batch,
                          out_plain);
        plain_bag.BackwardAndUpdate({data.lengths, data.indices},
                                    data.batch, data.grads);
        cached_bag.Forward({data.lengths, data.indices}, data.batch,
                           out_cached);
        cached_bag.BackwardAndUpdate({data.lengths, data.indices},
                                     data.batch, data.grads);
        // The cache is lossless: pooled outputs match bitwise every step.
        ASSERT_TRUE(Matrix::Identical(out_plain, out_cached)) << step;
    }
    // After flushing dirty rows, the backing equals the plain table.
    cached_store.store().Flush();
    EXPECT_TRUE(ops::EmbeddingTable::Identical(
        plain_store.table(), cached_store.store().backing()));
    EXPECT_GT(cached_store.store().stats().dirty_writebacks, 0u);
}

TEST(TieredEmbeddingBag, UvmStoreTrainsEquivalently)
{
    const int64_t rows = 256, dim = 8;
    const TieredFixtureData data = MakeTieredInputs(rows, dim, 7);
    ops::SparseOptimizerConfig config;
    config.kind = ops::SparseOptimizerKind::kSgd;
    config.learning_rate = 0.1f;

    ops::EmbeddingTable plain(rows, dim);
    plain.InitDeterministic(2, 0, 0, dim);
    ops::PlainRowStore plain_store(std::move(plain));
    TieredEmbeddingBag plain_bag(&plain_store, config);

    ops::EmbeddingTable backing(rows, dim);
    backing.InitDeterministic(2, 0, 0, dim);
    MemoryTier hbm(Tier::kHbm, 1e9, 850e9);
    MemoryTier pcie(Tier::kDdr, 1e12, 13e9);
    UvmRowStore uvm_store(UvmPagedStore(std::move(backing), 256,
                                        4 * 256, &hbm, &pcie));
    TieredEmbeddingBag uvm_bag(&uvm_store, config);

    Matrix out_plain, out_uvm;
    for (int step = 0; step < 3; step++) {
        plain_bag.Forward({data.lengths, data.indices}, data.batch,
                          out_plain);
        plain_bag.BackwardAndUpdate({data.lengths, data.indices},
                                    data.batch, data.grads);
        uvm_bag.Forward({data.lengths, data.indices}, data.batch, out_uvm);
        uvm_bag.BackwardAndUpdate({data.lengths, data.indices}, data.batch,
                                  data.grads);
        ASSERT_TRUE(Matrix::Identical(out_plain, out_uvm)) << step;
    }
    EXPECT_GT(uvm_store.store().stats().page_faults, 0u);
}

TEST(TieredEmbeddingBag, RejectsUnsupportedOptimizer)
{
    ops::EmbeddingTable table(10, 4);
    ops::PlainRowStore store(std::move(table));
    ops::SparseOptimizerConfig config;
    config.kind = ops::SparseOptimizerKind::kAdam;
    EXPECT_THROW(TieredEmbeddingBag(&store, config), std::runtime_error);
}

}  // namespace
}  // namespace neo::cache
