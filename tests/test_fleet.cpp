/**
 * @file
 * Tests for the fault-tolerant serving fleet: router backoff saturation,
 * per-replica health scoring (state machine + weight folding), snapshot
 * version history for A/B pinning, the FleetModel availability terms,
 * and end-to-end fleet behaviour — mid-batch replica kill with
 * transparent failover (bitwise-identical replayed scores), in-place
 * transient recovery, idle barrier-timeout death, recover-timeout
 * expiry, snapshot warm-up promotion, and straggler-driven dispatch
 * weight decay.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "comm/fault.h"
#include "comm/threaded_process_group.h"
#include "core/checkpoint.h"
#include "core/distributed_trainer.h"
#include "core/dlrm_config.h"
#include "data/dataset.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "serve/health.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "sharding/planner.h"
#include "sim/serving_model.h"

namespace neo {
namespace {

using core::DistributedDlrm;
using core::DlrmConfig;

data::DatasetConfig
MakeDataConfig(const DlrmConfig& model, uint64_t seed = 99)
{
    data::DatasetConfig config;
    config.num_dense = model.num_dense;
    config.seed = seed;
    for (const auto& t : model.tables) {
        config.features.push_back({t.rows, t.pooling, 1.05});
    }
    return config;
}

sharding::ShardingPlan
MakePlan(const DlrmConfig& model, int workers)
{
    sharding::PlannerOptions options;
    options.topo.num_workers = workers;
    options.topo.workers_per_node = workers;
    options.global_batch = 64;
    options.hbm_bytes_per_worker = 1e12;
    options.cw_min_dim = 16;
    options.cw_shard_dim = 8;
    sharding::ShardingPlanner planner(options);
    return planner.Plan(model.tables);
}

float
Sigmoid(float logit)
{
    return 1.0f / (1.0f + std::exp(-logit));
}

data::Batch
SliceBatch(const data::Batch& global, int rank, size_t local_batch)
{
    data::Batch local;
    local.dense = Matrix(local_batch, global.dense.cols());
    for (size_t b = 0; b < local_batch; b++) {
        for (size_t c = 0; c < global.dense.cols(); c++) {
            local.dense(b, c) = global.dense(rank * local_batch + b, c);
        }
    }
    local.sparse = global.sparse.SliceBatch(rank * local_batch,
                                            (rank + 1) * local_batch);
    local.labels.assign(global.labels.begin() + rank * local_batch,
                        global.labels.begin() + (rank + 1) * local_batch);
    return local;
}

serve::Request
RequestFor(const data::Batch& batch, size_t i, uint64_t id,
           uint64_t pinned = 0)
{
    serve::Request req;
    req.id = id;
    req.pinned_version = pinned;
    req.dense.assign(batch.dense.Row(i),
                     batch.dense.Row(i) + batch.dense.cols());
    req.sparse = batch.sparse.SliceBatch(i, i + 1);
    return req;
}

/**
 * Train a small model for `versions` blocks of steps, cutting a snapshot
 * and the eval batch's reference logits after each block.
 */
struct TrainedVersions {
    DlrmConfig model;
    sharding::ShardingPlan plan;
    data::Batch eval;
    std::vector<std::shared_ptr<const serve::ModelSnapshot>> snaps;
    std::vector<Matrix> ref_logits;
};

TrainedVersions
TrainVersions(int workers, int versions, size_t global_batch = 16)
{
    TrainedVersions out;
    out.model = core::MakeSmallDlrmConfig(4, 150, 16);
    out.plan = MakePlan(out.model, workers);
    const size_t local_batch = global_batch / workers;
    out.snaps.resize(versions + 1);
    for (int v = 0; v <= versions; v++) {
        out.ref_logits.emplace_back(global_batch, 1);
    }
    data::SyntheticCtrDataset eval_stream(MakeDataConfig(out.model, 4242));
    out.eval = eval_stream.NextBatch(global_batch);
    comm::ThreadedWorld::Run(
        workers, [&](int rank, comm::ProcessGroup& pg) {
            DistributedDlrm trainer(out.model, out.plan, pg);
            data::SyntheticCtrDataset dataset(MakeDataConfig(out.model));
            for (int v = 1; v <= versions; v++) {
                for (int s = 0; s < 2; s++) {
                    data::Batch global = dataset.NextBatch(global_batch);
                    trainer.TrainStep(
                        SliceBatch(global, rank, local_batch));
                }
                auto snap = serve::SnapshotFromTrainer(
                    trainer, out.plan, static_cast<uint64_t>(v));
                if (rank == 0) {
                    out.snaps[v] = snap;
                }
                Matrix logits;
                trainer.Predict(SliceBatch(out.eval, rank, local_batch),
                                logits);
                for (size_t b = 0; b < local_batch; b++) {
                    out.ref_logits[v](rank * local_batch + b, 0) =
                        logits(b, 0);
                }
            }
        });
    for (int v = 1; v <= versions; v++) {
        EXPECT_NE(out.snaps[v], nullptr);
    }
    return out;
}

/** Spin until `pred` holds or `deadline` elapses. */
template <typename Pred>
bool
WaitFor(Pred pred, std::chrono::milliseconds deadline)
{
    const auto until = std::chrono::steady_clock::now() + deadline;
    while (std::chrono::steady_clock::now() < until) {
        if (pred()) {
            return true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return pred();
}

// ---------------------------------------------------------------------
// Router backoff
// ---------------------------------------------------------------------

TEST(RouterBackoff, SaturatesWithoutOverflow)
{
    serve::RouterOptions options;
    options.retry_backoff = std::chrono::milliseconds(1);
    options.max_retry_backoff = std::chrono::milliseconds(250);
    EXPECT_EQ(serve::RouterBackoffDelay(options, 0).count(), 0);
    EXPECT_EQ(serve::RouterBackoffDelay(options, 1).count(), 1);
    EXPECT_EQ(serve::RouterBackoffDelay(options, 2).count(), 2);
    EXPECT_EQ(serve::RouterBackoffDelay(options, 3).count(), 4);
    EXPECT_EQ(serve::RouterBackoffDelay(options, 8).count(), 128);
    // Doubling clamps at the ceiling...
    EXPECT_EQ(serve::RouterBackoffDelay(options, 9).count(), 250);
    // ...and stays there for any attempt count (no shift overflow).
    EXPECT_EQ(serve::RouterBackoffDelay(options, 64).count(), 250);
    EXPECT_EQ(serve::RouterBackoffDelay(options, 200).count(), 250);
    // Monotonic non-decreasing.
    for (size_t attempt = 2; attempt <= 30; attempt++) {
        EXPECT_GE(serve::RouterBackoffDelay(options, attempt),
                  serve::RouterBackoffDelay(options, attempt - 1))
            << "attempt " << attempt;
    }
    options.retry_backoff = std::chrono::milliseconds(0);
    EXPECT_EQ(serve::RouterBackoffDelay(options, 5).count(), 0);
}

// ---------------------------------------------------------------------
// Replica health
// ---------------------------------------------------------------------

TEST(ReplicaHealthTest, WeightFoldsSignalsAndFloors)
{
    serve::HealthOptions options;  // baseline 1ms, shed_penalty 4
    serve::ReplicaHealth fresh(options);
    EXPECT_EQ(fresh.state(), serve::ReplicaState::kHealthy);
    EXPECT_DOUBLE_EQ(fresh.Weight(), 1.0);

    serve::ReplicaHealth slow(options);
    slow.RecordLatency(2e-3);  // 2x baseline -> half weight
    EXPECT_DOUBLE_EQ(slow.LatencyEwma(), 2e-3);
    EXPECT_DOUBLE_EQ(slow.Weight(), 0.5);

    serve::ReplicaHealth fast(options);
    fast.RecordLatency(1e-6);  // faster than baseline clamps at 1
    EXPECT_DOUBLE_EQ(fast.Weight(), 1.0);

    serve::ReplicaHealth shedding(options);
    shedding.RecordAdmit();
    shedding.RecordShed();
    EXPECT_DOUBLE_EQ(shedding.ShedRate(), 0.5);
    EXPECT_NEAR(shedding.Weight(), 1.0 / 3.0, 1e-12);

    serve::ReplicaHealth glacial(options);
    glacial.RecordLatency(1e3);  // would be ~1e-6; floors at min_weight
    EXPECT_DOUBLE_EQ(glacial.Weight(), options.min_weight);
}

TEST(ReplicaHealthTest, StateMachineTransitions)
{
    serve::HealthOptions options;
    options.suspect_after = 2;
    options.straggler_decay = 0.5;
    serve::ReplicaHealth health(options);

    // One flagged verdict is noise.
    health.NoteStragglerVerdict(true);
    EXPECT_EQ(health.state(), serve::ReplicaState::kHealthy);
    EXPECT_DOUBLE_EQ(health.Weight(), 1.0);
    // Persistent verdicts: suspect + multiplicative decay per tick.
    health.NoteStragglerVerdict(true);
    EXPECT_EQ(health.state(), serve::ReplicaState::kSuspect);
    EXPECT_DOUBLE_EQ(health.Weight(), 0.5);
    health.NoteStragglerVerdict(true);
    EXPECT_DOUBLE_EQ(health.Weight(), 0.25);
    // Verdicts clear: full recovery.
    health.NoteStragglerVerdict(false);
    EXPECT_EQ(health.state(), serve::ReplicaState::kHealthy);
    EXPECT_DOUBLE_EQ(health.Weight(), 1.0);

    // Drained is only reachable from quarantine.
    health.MarkDrained();
    EXPECT_EQ(health.state(), serve::ReplicaState::kHealthy);

    health.MarkFailed();
    EXPECT_EQ(health.state(), serve::ReplicaState::kQuarantined);
    EXPECT_DOUBLE_EQ(health.Weight(), 0.0);
    // Quarantine is terminal against verdicts.
    health.NoteStragglerVerdict(false);
    EXPECT_EQ(health.state(), serve::ReplicaState::kQuarantined);
    health.MarkDrained();
    EXPECT_EQ(health.state(), serve::ReplicaState::kDrained);
    EXPECT_DOUBLE_EQ(health.Weight(), 0.0);
    health.MarkFailed();  // stays drained
    EXPECT_EQ(health.state(), serve::ReplicaState::kDrained);

    EXPECT_STREQ(serve::ReplicaStateName(serve::ReplicaState::kDrained),
                 "drained");
    EXPECT_STREQ(serve::ReplicaStateName(serve::ReplicaState::kSuspect),
                 "suspect");
}

// ---------------------------------------------------------------------
// Snapshot registry version history (A/B pinning)
// ---------------------------------------------------------------------

TEST(SnapshotHistory, RegistryRetainsRecentVersionsForPinning)
{
    serve::SnapshotRegistry registry;
    registry.SetHistoryDepth(2);
    auto make = [](uint64_t version) {
        auto snap = std::make_shared<serve::ModelSnapshot>();
        snap->version = version;
        return snap;
    };
    EXPECT_EQ(registry.Get(1), nullptr);
    registry.Publish(make(1));
    registry.Publish(make(2));
    ASSERT_NE(registry.Get(1), nullptr);
    EXPECT_EQ(registry.Get(1)->version, 1u);
    ASSERT_NE(registry.Get(2), nullptr);
    registry.Publish(make(3));  // depth 2: v1 ages out
    EXPECT_EQ(registry.Get(1), nullptr);
    ASSERT_NE(registry.Get(2), nullptr);
    ASSERT_NE(registry.Get(3), nullptr);
    EXPECT_EQ(registry.Current()->version, 3u);
    EXPECT_EQ(registry.CurrentVersion(), 3u);
    EXPECT_EQ(registry.Get(7), nullptr);
}

// ---------------------------------------------------------------------
// Fault injector reset (control re-runs)
// ---------------------------------------------------------------------

TEST(FaultInjectorReset, RestoresVirginAddressing)
{
    comm::FaultInjector injector;
    comm::FaultSpec spec;
    spec.rank = 0;
    spec.match_op = true;
    spec.op = comm::CollectiveOp::kBarrier;
    spec.call_index = 0;
    spec.kind = comm::FaultKind::kKill;
    spec.transient = false;

    comm::ThreadedWorld::Options options;
    options.injector = &injector;
    auto killed_on_first_barrier = [&]() {
        comm::ThreadedWorld world(1, options);
        try {
            world.GetGroup(0).Barrier();
        } catch (const comm::RankFailure&) {
            return true;
        }
        return false;
    };

    injector.Arm(spec);
    EXPECT_EQ(injector.NumArmed(), 1u);
    EXPECT_TRUE(killed_on_first_barrier());
    EXPECT_EQ(injector.Fired().size(), 1u);
    // Spec consumed and counters advanced: the same run is now clean.
    EXPECT_FALSE(killed_on_first_barrier());

    // Reset: counters AND armed specs cleared, so re-arming the same
    // call_index-0 spec fires again (virgin addressing for a control
    // re-run).
    injector.Reset();
    EXPECT_EQ(injector.NumArmed(), 0u);
    EXPECT_TRUE(injector.Fired().empty());
    injector.Arm(spec);
    EXPECT_TRUE(killed_on_first_barrier());
}

// ---------------------------------------------------------------------
// Fleet availability model
// ---------------------------------------------------------------------

TEST(FleetSim, EstimateSanity)
{
    sim::FleetSetup setup;
    setup.replicas = 3;
    setup.replica_qps = 1000.0;
    setup.batch_seconds = 1e-3;
    setup.detect_seconds = 1e-3;
    setup.backoff_seconds = 1e-3;
    setup.inflight_requests = 32.0;
    setup.warmup_seconds = 0.25;

    const sim::FleetModel model(setup);
    const sim::FleetEstimate est = model.Estimate(60.0);
    EXPECT_DOUBLE_EQ(est.steady_qps, 3000.0);
    EXPECT_DOUBLE_EQ(est.degraded_qps, 2000.0);
    // detect + drain (32 req / 1000 qps) + backoff + one rescore batch.
    EXPECT_NEAR(est.failover_latency, 0.001 + 0.032 + 0.001 + 0.001,
                1e-12);
    EXPECT_NEAR(est.availability,
                1.0 - (60.0 / 3.0 + est.failover_latency / 3.0) / 60.0,
                1e-12);
    EXPECT_GT(est.availability, 0.6);
    EXPECT_LT(est.availability, 1.0);
    EXPECT_DOUBLE_EQ(est.cold_flip_penalty, 0.25);

    // More replicas retain more capacity through one death.
    setup.replicas = 6;
    const sim::FleetEstimate wide = sim::FleetModel(setup).Estimate(60.0);
    EXPECT_GT(wide.availability, est.availability);
    EXPECT_DOUBLE_EQ(wide.steady_qps, 6000.0);

    // Zero horizon: availability stays at its 0 default, no div-by-zero.
    const sim::FleetEstimate zero = model.Estimate(0.0);
    EXPECT_DOUBLE_EQ(zero.availability, 0.0);
}

// ---------------------------------------------------------------------
// Checkpoint store generation counter (publisher-lane polling)
// ---------------------------------------------------------------------

TEST(CheckpointGeneration, BumpsOnEveryWrite)
{
    core::CheckpointStore store;  // in-memory
    EXPECT_EQ(store.Generation(), 0u);
    store.PutBaseline(0, std::vector<uint8_t>{1, 2, 3});
    const uint64_t after_baseline = store.Generation();
    EXPECT_GT(after_baseline, 0u);
    store.AppendDelta(0, std::vector<uint8_t>{4, 5});
    EXPECT_GT(store.Generation(), after_baseline);
}

// ---------------------------------------------------------------------
// Acceptance: kill one replica mid-batch under concurrent load
// ---------------------------------------------------------------------

TEST(Fleet, KillOneReplicaMidBatchFailsOver)
{
    const int workers = 2;
    TrainedVersions trained = TrainVersions(workers, /*versions=*/1);

    const std::string bundle_dir =
        (std::filesystem::temp_directory_path() / "neo_fleet_bundle")
            .string();
    std::filesystem::remove_all(bundle_dir);
    std::filesystem::create_directories(bundle_dir);
    obs::FlightRecorder::Get().SetDirectory(bundle_dir);

    // Deterministic mid-batch death: replica 1's rank 1 dies inside the
    // pooled AllToAll of its first served batch. Heartbeats are
    // broadcasts only, so kAllToAll call_index 2 (after RouteInput's
    // lengths + indices exchanges) addresses exactly that point — after
    // the dispatch broadcast, before the logit AllGather.
    comm::FaultInjector injector;
    comm::FaultSpec spec;
    spec.rank = 1;
    spec.match_op = true;
    spec.op = comm::CollectiveOp::kAllToAll;
    spec.call_index = 2;
    spec.kind = comm::FaultKind::kKill;
    spec.transient = false;
    injector.Arm(spec);

    std::vector<std::unique_ptr<serve::ReplicaHost>> hosts;
    for (int r = 0; r < 3; r++) {
        serve::ServerOptions sopts;
        sopts.replica_id = r;
        sopts.batcher.max_batch = 8;
        sopts.batcher.max_delay_us = 200;
        sopts.max_queue = 1 << 14;
        sopts.heartbeat = std::chrono::milliseconds(5);
        comm::ThreadedWorld::Options wopts;
        wopts.barrier_timeout = std::chrono::milliseconds(5000);
        if (r == 1) {
            wopts.injector = &injector;
        }
        hosts.push_back(std::make_unique<serve::ReplicaHost>(
            trained.model.num_dense, trained.model.tables.size(), workers,
            sopts, wopts));
        hosts.back()->server().Publish(trained.snaps[1]);
    }

    serve::RouterOptions ropts;
    ropts.health_period = std::chrono::milliseconds(5);
    serve::FleetRouter router(ropts);
    for (int r = 0; r < 3; r++) {
        router.AddReplica("replica" + std::to_string(r),
                          &hosts[r]->server(), &hosts[r]->world());
    }
    ASSERT_EQ(router.NumReplicas(), 3u);
    ASSERT_EQ(router.HealthyCount(), 3u);

    // Sustained load until the injected kill has taken replica 1 out,
    // then keep the traffic flowing on the survivors.
    const size_t global_batch = trained.eval.dense.rows();
    std::vector<serve::Ticket> tickets;
    std::vector<size_t> samples;
    uint64_t id = 0;
    while (router.HealthyCount() == 3) {
        const size_t i = id % global_batch;
        serve::Ticket ticket = router.Submit(
            RequestFor(trained.eval, i, id));
        ASSERT_EQ(ticket.admission, serve::Admission::kAccepted);
        tickets.push_back(std::move(ticket));
        samples.push_back(i);
        id++;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        ASSERT_LT(id, 200000u) << "injected kill never observed";
    }
    for (int extra = 0; extra < 50; extra++) {
        const size_t i = id % global_batch;
        serve::Ticket ticket = router.Submit(
            RequestFor(trained.eval, i, id));
        ASSERT_EQ(ticket.admission, serve::Admission::kAccepted);
        tickets.push_back(std::move(ticket));
        samples.push_back(i);
        id++;
    }

    // Every request — in-flight on the dying replica, queued behind it,
    // or submitted after the death — completes kOk with the score the
    // unkilled model produces: zero broken promises, bitwise replay.
    for (size_t i = 0; i < tickets.size(); i++) {
        ASSERT_TRUE(tickets[i].response.valid());
        const serve::Response response = tickets[i].response.get();
        EXPECT_EQ(response.status, serve::ResponseStatus::kOk)
            << "request " << i << ": "
            << serve::ResponseStatusName(response.status);
        EXPECT_EQ(response.snapshot_version, 1u);
        const float expect =
            Sigmoid(trained.ref_logits[1](samples[i], 0));
        EXPECT_EQ(response.score, expect) << "request " << i;
    }

    EXPECT_EQ(injector.Fired().size(), 1u);
    EXPECT_TRUE(hosts[1]->server().failed());
    EXPECT_GE(hosts[1]->server().RetryableDrained(), 1u);
    EXPECT_FALSE(hosts[0]->server().failed());
    EXPECT_FALSE(hosts[2]->server().failed());

    // Fleet view: exactly one replica quarantined, no fleet-wide poison.
    EXPECT_EQ(router.HealthyCount(), 2u);
    const serve::ReplicaState dead = router.StateOf(1);
    EXPECT_TRUE(dead == serve::ReplicaState::kQuarantined ||
                dead == serve::ReplicaState::kDrained);
    EXPECT_EQ(router.StateOf(0), serve::ReplicaState::kHealthy);
    EXPECT_EQ(router.StateOf(2), serve::ReplicaState::kHealthy);
    const serve::FleetRouter::Totals totals = router.totals();
    EXPECT_EQ(totals.submitted, tickets.size());
    EXPECT_EQ(totals.completed_ok, tickets.size());
    EXPECT_GE(totals.failovers, 1u);
    EXPECT_EQ(totals.failed, 0u);
    EXPECT_EQ(totals.quarantines, 1u);

    // Telemetry: the healthy-replica gauge dropped to 2 and the dead
    // replica's rank 0 dumped a flight bundle naming the quarantine.
    const obs::RegistrySnapshot metrics =
        obs::MetricsRegistry::Get().Export();
    EXPECT_EQ(metrics.GaugeValue("neo.fleet.replica_healthy"), 2.0);
    EXPECT_EQ(metrics.GaugeValue("neo.fleet.replica1.healthy"), 0.0);
    EXPECT_EQ(metrics.GaugeValue("neo.fleet.replica0.healthy"), 1.0);
    bool saw_replica_failed = false;
    bool saw_fleet_quarantine = false;
    for (const auto& event :
         obs::FlightRecorder::Get().RecentEvents(0)) {
        if (std::string(event.kind) == "replica_failed" &&
            event.detail.find("replica 1 quarantined") !=
                std::string::npos) {
            saw_replica_failed = true;
        }
        if (std::string(event.kind) == "fleet_quarantine" &&
            event.detail.find("replica 1") != std::string::npos) {
            saw_fleet_quarantine = true;
        }
    }
    EXPECT_TRUE(saw_replica_failed);
    EXPECT_TRUE(saw_fleet_quarantine);
    const std::string bundle_path = bundle_dir + "/flight_rank0.json";
    ASSERT_TRUE(std::filesystem::exists(bundle_path));
    std::stringstream bundle;
    bundle << std::ifstream(bundle_path).rdbuf();
    EXPECT_NE(bundle.str().find("replica 1 quarantined"),
              std::string::npos);

    router.Stop();
    for (auto& host : hosts) {
        host->Stop();
    }
    obs::FlightRecorder::Get().SetDirectory("");
    std::filesystem::remove_all(bundle_dir);
}

// ---------------------------------------------------------------------
// Transient failure: in-place recovery, same replica, same promise
// ---------------------------------------------------------------------

TEST(Fleet, TransientFailureRecoversInPlace)
{
    const int workers = 2;
    TrainedVersions trained = TrainVersions(workers, /*versions=*/1);

    comm::FaultInjector injector;
    comm::FaultSpec spec;
    spec.rank = 1;
    spec.match_op = true;
    spec.op = comm::CollectiveOp::kAllToAll;
    spec.call_index = 2;
    spec.kind = comm::FaultKind::kKill;
    spec.transient = true;
    injector.Arm(spec);

    serve::ServerOptions sopts;
    sopts.heartbeat = std::chrono::milliseconds(10);
    sopts.recover_timeout = std::chrono::milliseconds(2000);
    comm::ThreadedWorld::Options wopts;
    wopts.injector = &injector;
    serve::ReplicaHost host(trained.model.num_dense,
                            trained.model.tables.size(), workers, sopts,
                            wopts);
    host.server().Publish(trained.snaps[1]);

    const uint64_t recoveries_before = obs::MetricsRegistry::Get()
                                           .Export()
                                           .CounterValue(
                                               "neo.serve.recoveries");

    serve::FleetRouter router;
    router.AddReplica("solo", &host.server(), &host.world());

    // The first served batch dies mid-collective; all ranks rendezvous
    // within recover_timeout and redispatch the SAME staged batch — the
    // original promise completes kOk with the deterministic score.
    serve::Ticket ticket =
        router.Submit(RequestFor(trained.eval, 3, /*id=*/0));
    ASSERT_EQ(ticket.admission, serve::Admission::kAccepted);
    const serve::Response response = ticket.response.get();
    EXPECT_EQ(response.status, serve::ResponseStatus::kOk);
    EXPECT_EQ(response.score, Sigmoid(trained.ref_logits[1](3, 0)));

    EXPECT_EQ(injector.Fired().size(), 1u);
    EXPECT_FALSE(host.server().failed());
    EXPECT_EQ(router.StateOf(0), serve::ReplicaState::kHealthy);
    // Both ranks passed through the recovery rendezvous.
    EXPECT_EQ(obs::MetricsRegistry::Get().Export().CounterValue(
                  "neo.serve.recoveries"),
              recoveries_before + workers);

    // The replica keeps serving afterwards.
    serve::Ticket again =
        router.Submit(RequestFor(trained.eval, 5, /*id=*/1));
    ASSERT_EQ(again.admission, serve::Admission::kAccepted);
    EXPECT_EQ(again.response.get().score,
              Sigmoid(trained.ref_logits[1](5, 0)));

    router.Stop();
    host.Stop();
}

// ---------------------------------------------------------------------
// Conservative failure knobs surface as replica-unhealthy, not hangs
// ---------------------------------------------------------------------

/** An idle heartbeating world that misses its barrier deadline (one rank
 *  stalled past barrier_timeout) must quarantine — visible to the router
 *  via the health tick even though no request ever touched it. */
TEST(Fleet, IdleBarrierTimeoutQuarantinesWithoutTraffic)
{
    comm::FaultInjector injector;
    comm::FaultSpec spec;
    spec.rank = 0;
    spec.match_op = true;
    spec.op = comm::CollectiveOp::kBroadcast;
    spec.call_index = 3;
    spec.kind = comm::FaultKind::kDelay;
    spec.delay = std::chrono::milliseconds(400);
    injector.Arm(spec);

    serve::ServerOptions sopts;
    sopts.heartbeat = std::chrono::milliseconds(10);
    // recover_timeout 0: fail fast, no in-place recovery attempt.
    comm::ThreadedWorld::Options wopts;
    wopts.barrier_timeout = std::chrono::milliseconds(100);
    wopts.injector = &injector;
    serve::ReplicaHost host(/*num_dense=*/1, /*num_tables=*/1,
                            /*world_size=*/2, sopts, wopts);

    serve::RouterOptions ropts;
    ropts.health_period = std::chrono::milliseconds(5);
    serve::FleetRouter router(ropts);
    router.AddReplica("idle", &host.server(), &host.world());
    ASSERT_EQ(router.HealthyCount(), 1u);

    EXPECT_TRUE(WaitFor([&] { return router.HealthyCount() == 0; },
                        std::chrono::milliseconds(5000)))
        << "idle replica death never became router-visible";
    EXPECT_TRUE(host.server().failed());
    EXPECT_TRUE(WaitFor(
        [&] {
            return router.StateOf(0) == serve::ReplicaState::kDrained;
        },
        std::chrono::milliseconds(2000)));
    EXPECT_EQ(obs::MetricsRegistry::Get().Export().GaugeValue(
                  "neo.fleet.replica_healthy"),
              0.0);

    router.Stop();
    host.Stop();  // rank loops already returned; must not hang
}

/** A rank that silently walks away from an idle world: the survivor hits
 *  its barrier deadline (transient), the recovery rendezvous expires,
 *  and the replica quarantines. A request staged on that replica comes
 *  back typed — retried by the router until attempts saturate into a
 *  terminal kFailed, never a hang or a broken promise. */
TEST(Fleet, RecoverTimeoutExpirySaturatesRetriesTyped)
{
    serve::ServerOptions sopts;
    sopts.heartbeat = std::chrono::milliseconds(10);
    sopts.recover_timeout = std::chrono::milliseconds(80);
    serve::Server server(/*num_dense=*/2, /*num_tables=*/1, sopts);

    comm::ThreadedWorld::Options wopts;
    wopts.barrier_timeout = std::chrono::milliseconds(150);
    comm::ThreadedWorld world(2, wopts);

    serve::RouterOptions ropts;
    ropts.max_attempts = 2;
    ropts.retry_backoff = std::chrono::milliseconds(1);
    ropts.health_period = std::chrono::milliseconds(5);
    serve::FleetRouter router(ropts);
    router.AddReplica("walkaway", &server, &world);

    // No snapshot is ever published, so the request stays staged on
    // rank 0 while the world heartbeats.
    serve::Request request;
    request.id = 7;
    request.dense = {0.0f, 0.0f};
    serve::Ticket ticket = router.Submit(std::move(request));
    ASSERT_EQ(ticket.admission, serve::Admission::kAccepted);

    std::thread rank0([&] { server.RankLoop(0, world.GetGroup(0)); });
    std::thread rank1([&] {
        // Mirror five idle heartbeats, then walk away without poisoning
        // the world — the failure mode a watchdogless peer death shows.
        auto& pg = world.GetGroup(1);
        float cmd = 0.0f;
        for (int i = 0; i < 5; i++) {
            pg.Broadcast(&cmd, 1, /*root=*/0);
        }
    });
    rank1.join();
    rank0.join();  // returns via quarantine — the no-hang assertion

    EXPECT_TRUE(server.failed());
    EXPECT_EQ(server.RetryableDrained(), 1u);

    // Router: failover, retry against an empty fleet, saturation.
    const serve::Response response = ticket.response.get();
    EXPECT_EQ(response.status, serve::ResponseStatus::kFailed);
    EXPECT_EQ(response.id, 7u);
    EXPECT_TRUE(WaitFor(
        [&] {
            return router.StateOf(0) == serve::ReplicaState::kDrained;
        },
        std::chrono::milliseconds(2000)));
    const serve::FleetRouter::Totals totals = router.totals();
    EXPECT_GE(totals.failovers, 1u);
    EXPECT_GE(totals.retries, 1u);
    EXPECT_EQ(totals.failed, 1u);
    EXPECT_EQ(router.HealthyCount(), 0u);

    router.Stop();
}

// ---------------------------------------------------------------------
// Snapshot warm-up + per-request version pinning
// ---------------------------------------------------------------------

TEST(Fleet, WarmupPromotesWithoutColdBuildsAndPinsVersions)
{
    const int workers = 2;
    TrainedVersions trained = TrainVersions(workers, /*versions=*/2);

    serve::ServerOptions sopts;
    sopts.heartbeat = std::chrono::milliseconds(5);
    sopts.version_history = 4;
    serve::ReplicaHost host(trained.model.num_dense,
                            trained.model.tables.size(), workers, sopts);
    serve::FleetRouter router;
    router.AddReplica("warm", &host.server(), &host.world());

    auto counters = [] {
        return obs::MetricsRegistry::Get().Export();
    };
    const obs::RegistrySnapshot before = counters();

    // Warm-then-flip v1: both ranks pre-build on idle slots.
    EXPECT_EQ(router.Publish(trained.snaps[1]), 1u);
    EXPECT_EQ(host.server().CurrentVersion(), 1u);
    obs::RegistrySnapshot after_warm = counters();
    EXPECT_EQ(after_warm.CounterValue("neo.serve.warm_builds") -
                  before.CounterValue("neo.serve.warm_builds"),
              static_cast<uint64_t>(workers));
    EXPECT_EQ(after_warm.CounterValue("neo.serve.prewarms") -
                  before.CounterValue("neo.serve.prewarms"),
              1u);

    // First request after the flip: the pre-built state promotes — no
    // cold build on the serve path (the whole point of warm-up).
    serve::Ticket first =
        router.Submit(RequestFor(trained.eval, 0, /*id=*/0));
    ASSERT_EQ(first.admission, serve::Admission::kAccepted);
    serve::Response r1 = first.response.get();
    EXPECT_EQ(r1.status, serve::ResponseStatus::kOk);
    EXPECT_EQ(r1.snapshot_version, 1u);
    EXPECT_EQ(r1.score, Sigmoid(trained.ref_logits[1](0, 0)));
    obs::RegistrySnapshot after_first = counters();
    EXPECT_EQ(after_first.CounterValue("neo.serve.warm_promotions") -
                  before.CounterValue("neo.serve.warm_promotions"),
              static_cast<uint64_t>(workers));
    EXPECT_EQ(after_first.CounterValue("neo.serve.cold_builds") -
                  before.CounterValue("neo.serve.cold_builds"),
              0u);

    // Flip to v2 while v1 stays pinnable from the registry history.
    EXPECT_EQ(router.Publish(trained.snaps[2]), 1u);
    serve::Ticket unpinned =
        router.Submit(RequestFor(trained.eval, 1, /*id=*/1));
    serve::Response r2 = unpinned.response.get();
    EXPECT_EQ(r2.snapshot_version, 2u);
    EXPECT_EQ(r2.score, Sigmoid(trained.ref_logits[2](1, 0)));
    obs::RegistrySnapshot after_flip = counters();
    EXPECT_EQ(after_flip.CounterValue("neo.serve.cold_builds") -
                  before.CounterValue("neo.serve.cold_builds"),
              0u);

    // A/B pinning: a request pinned to v1 serves on v1's exact weights.
    serve::Ticket pinned = router.Submit(
        RequestFor(trained.eval, 2, /*id=*/2, /*pinned=*/1));
    serve::Response r3 = pinned.response.get();
    EXPECT_EQ(r3.status, serve::ResponseStatus::kOk);
    EXPECT_EQ(r3.snapshot_version, 1u);
    EXPECT_EQ(r3.score, Sigmoid(trained.ref_logits[1](2, 0)));

    // A pin the registry no longer retains is a typed terminal answer.
    serve::Ticket gone = router.Submit(
        RequestFor(trained.eval, 3, /*id=*/3, /*pinned=*/42));
    serve::Response r4 = gone.response.get();
    EXPECT_EQ(r4.status, serve::ResponseStatus::kVersionUnavailable);

    // Idempotent re-publish: already on v2, nothing to warm.
    const uint64_t prewarms_before_dup =
        counters().CounterValue("neo.serve.prewarms");
    EXPECT_EQ(router.Publish(trained.snaps[2]), 1u);
    EXPECT_EQ(counters().CounterValue("neo.serve.prewarms"),
              prewarms_before_dup);
    EXPECT_EQ(router.NextVersion(), 3u);

    router.Stop();
    host.Stop();
}

// ---------------------------------------------------------------------
// Straggler-driven health: suspect decays dispatch weight
// ---------------------------------------------------------------------

TEST(Fleet, StragglerSuspectDecaysWeightAndNamesShedStormSuspect)
{
    // Replica 0: a 3-rank idle heartbeat world. Rank 0 spends each
    // heartbeat period in its queue wait while ranks 1-2 sit in the
    // broadcast barrier, so rank 0 is persistently ~heartbeat late to
    // every barrier — far over the detector's noise floor, with a ~0
    // median from the other two ranks. The replica's own detector flags
    // it; the router's health tick folds the verdicts into kSuspect and
    // decays the dispatch weight. Replica 1 (2 ranks) cannot skew past
    // its own median and stays healthy.
    serve::ServerOptions sopts;
    sopts.heartbeat = std::chrono::milliseconds(20);
    serve::ReplicaHost lagging(/*num_dense=*/1, /*num_tables=*/1,
                               /*world_size=*/3, sopts);
    serve::ReplicaHost steady(/*num_dense=*/1, /*num_tables=*/1,
                              /*world_size=*/2, sopts);

    serve::RouterOptions ropts;
    ropts.health_period = std::chrono::milliseconds(10);
    ropts.health.suspect_after = 2;
    serve::FleetRouter router(ropts);
    router.AddReplica("lagging", &lagging.server(), &lagging.world());
    router.AddReplica("steady", &steady.server(), &steady.world());

    EXPECT_TRUE(WaitFor(
        [&] {
            return router.StateOf(0) == serve::ReplicaState::kSuspect;
        },
        std::chrono::milliseconds(5000)))
        << "persistent straggler never became suspect";
    EXPECT_EQ(router.StateOf(1), serve::ReplicaState::kHealthy);
    EXPECT_LT(router.WeightOf(0), router.WeightOf(1));
    // Suspect replicas stay dispatchable — degraded, not quarantined.
    EXPECT_EQ(router.HealthyCount(), 2u);
    const obs::RegistrySnapshot metrics =
        obs::MetricsRegistry::Get().Export();
    EXPECT_EQ(metrics.GaugeValue("neo.fleet.has_suspect"), 1.0);
    EXPECT_EQ(metrics.GaugeValue("neo.fleet.suspect_replica"), 0.0);

    // A shed storm elsewhere in the fleet names the suspect replica in
    // its flight-recorder post-mortem: the storm is often the downstream
    // symptom of the straggler soaking up dispatch weight.
    serve::ServerOptions storm_opts;
    storm_opts.shed_storm_dump = 1;
    serve::Server storm(/*num_dense=*/1, /*num_tables=*/1, storm_opts);
    storm.Stop();  // every submit sheds now
    serve::Request request;
    request.dense = {0.0f};
    EXPECT_EQ(storm.Submit(std::move(request)).admission,
              serve::Admission::kShedStopped);
    bool named = false;
    for (const auto& event :
         obs::FlightRecorder::Get().RecentEvents(0)) {
        if (std::string(event.kind) == "shed_storm" &&
            event.detail.find("fleet suspect replica 0") !=
                std::string::npos) {
            named = true;
        }
    }
    EXPECT_TRUE(named);

    router.Stop();
    lagging.Stop();
    steady.Stop();
    // Clear the fleet gauges so later in-process tests start clean.
    obs::MetricsRegistry::Get().GetGauge("neo.fleet.has_suspect").Set(0.0);
    obs::MetricsRegistry::Get()
        .GetGauge("neo.fleet.suspect_replica")
        .Set(-1.0);
}

}  // namespace
}  // namespace neo
