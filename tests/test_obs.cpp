/**
 * @file
 * Tests for the observability layer: span tracer semantics (enable gate,
 * nesting, buffer overflow, Chrome JSON export, concurrent collection),
 * the metrics registry, and StepBreakdown attribution — both on synthetic
 * span sets with known answers and on a real 2-rank training step,
 * including the tracing-does-not-change-numerics determinism contract.
 */
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "comm/threaded_process_group.h"
#include "core/distributed_trainer.h"
#include "core/dlrm_config.h"
#include "data/dataset.h"
#include "obs/metrics.h"
#include "obs/step_breakdown.h"
#include "obs/trace.h"
#include "sharding/planner.h"
#include "sim/iteration_model.h"

namespace neo::obs {
namespace {

/** Enables tracing for one test and restores a clean tracer after. */
class TraceGuard
{
  public:
    TraceGuard()
    {
        Tracer::Get().Clear();
        Tracer::Get().SetEnabled(true);
    }

    ~TraceGuard()
    {
        Tracer::Get().SetEnabled(false);
        Tracer::Get().SetRuntimeLevel(1);
        Tracer::Get().Clear();
    }
};

TEST(Trace, DisabledRecordsNothing)
{
    Tracer::Get().SetEnabled(false);
    Tracer::Get().Clear();
    {
        NEO_TRACE_SPAN("should_not_appear", "step");
    }
    EXPECT_TRUE(Tracer::Get().Collect().empty());
}

TEST(Trace, RecordsNestedSpansWithDepthAndContainment)
{
    TraceGuard guard;
    {
        NEO_TRACE_SPAN("outer", "step");
        {
            NEO_TRACE_SPAN("inner", "mlp_fwd");
        }
    }
    const std::vector<Span> spans = Tracer::Get().Collect();
    ASSERT_EQ(spans.size(), 2u);
    // Children close before parents, so "inner" is recorded first.
    const Span& inner = spans[0];
    const Span& outer = spans[1];
    EXPECT_STREQ(inner.name, "inner");
    EXPECT_STREQ(outer.name, "outer");
    EXPECT_EQ(outer.depth, 0);
    EXPECT_EQ(inner.depth, 1);
    EXPECT_EQ(inner.tid, outer.tid);
    // Temporal containment: inner starts no earlier and ends no later.
    EXPECT_GE(inner.start_ns, outer.start_ns);
    EXPECT_LE(inner.start_ns + inner.dur_ns,
              outer.start_ns + outer.dur_ns);
    // The main thread is untagged (no simulated rank).
    EXPECT_EQ(outer.rank, -1);
}

TEST(Trace, RuntimeLevelGatesVerboseSpans)
{
    TraceGuard guard;
    {
        ScopedSpan verbose("verbose", "barrier", /*min_level=*/2);
    }
    EXPECT_TRUE(Tracer::Get().Collect().empty());

    Tracer::Get().SetRuntimeLevel(2);
    {
        ScopedSpan verbose("verbose", "barrier", /*min_level=*/2);
    }
    EXPECT_EQ(Tracer::Get().Collect().size(), 1u);
}

TEST(Trace, ThreadRankTagsSpans)
{
    TraceGuard guard;
    std::thread worker([] {
        Tracer::SetThreadRank(3);
        NEO_TRACE_SPAN("tagged", "step");
    });
    worker.join();
    const std::vector<Span> spans = Tracer::Get().Collect();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].rank, 3);
}

TEST(Trace, BufferOverflowDropsAndCounts)
{
    TraceGuard guard;
    // Capacity applies to buffers created after the call, so the spans
    // must come from a fresh thread.
    Tracer::Get().SetThreadBufferCapacity(4);
    std::thread worker([] {
        for (int i = 0; i < 10; i++) {
            NEO_TRACE_SPAN("overflow", "step");
        }
    });
    worker.join();
    Tracer::Get().SetThreadBufferCapacity(size_t{1} << 16);
    EXPECT_EQ(Tracer::Get().Collect().size(), 4u);
    EXPECT_EQ(Tracer::Get().DroppedSpans(), 6u);
    Tracer::Get().Clear();
    EXPECT_EQ(Tracer::Get().DroppedSpans(), 0u);
}

TEST(Trace, ChromeJsonIsWellFormed)
{
    TraceGuard guard;
    std::thread worker([] {
        Tracer::SetThreadRank(0);
        NEO_TRACE_SPAN("alpha \"quoted\"", "step");
    });
    worker.join();
    const std::string json = Tracer::Get().ToChromeJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("rank 0"), std::string::npos);
    // Quotes in span names must be escaped, not emitted raw.
    EXPECT_NE(json.find("alpha \\\"quoted\\\""), std::string::npos);
    EXPECT_EQ(json.find("alpha \"quoted\""), std::string::npos);
}

TEST(Trace, ConcurrentRecordAndCollect)
{
    TraceGuard guard;
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; t++) {
        writers.emplace_back([&stop, t] {
            Tracer::SetThreadRank(t);
            while (!stop.load(std::memory_order_relaxed)) {
                NEO_TRACE_SPAN("work", "step");
            }
        });
    }
    // Collect concurrently with the appends; sizes must be monotone
    // per run and every snapshot internally consistent.
    size_t last = 0;
    for (int i = 0; i < 50; i++) {
        const std::vector<Span> spans = Tracer::Get().Collect();
        EXPECT_GE(spans.size(), last);
        last = spans.size();
        for (const Span& s : spans) {
            EXPECT_STREQ(s.name, "work");
            EXPECT_GE(s.dur_ns, 0);
        }
    }
    stop.store(true);
    for (auto& w : writers) {
        w.join();
    }
}

TEST(Metrics, CounterGaugeHistogramRoundTrip)
{
    MetricsRegistry registry;
    Counter& steps = registry.GetCounter("neo.test.steps");
    steps.Add();
    steps.Add(4);
    EXPECT_EQ(steps.value(), 5u);
    // Same name resolves to the same instrument.
    EXPECT_EQ(&registry.GetCounter("neo.test.steps"), &steps);

    Gauge& qps = registry.GetGauge("neo.test.qps");
    qps.Set(123.5);
    EXPECT_DOUBLE_EQ(qps.value(), 123.5);

    Histogram& lat = registry.GetHistogram("neo.test.latency");
    for (int i = 1; i <= 100; i++) {
        lat.Observe(static_cast<double>(i));
    }
    const Histogram::Snapshot snap = lat.GetSnapshot();
    EXPECT_EQ(snap.count, 100u);
    EXPECT_DOUBLE_EQ(snap.min, 1.0);
    EXPECT_DOUBLE_EQ(snap.max, 100.0);
    EXPECT_DOUBLE_EQ(snap.mean, 50.5);
    EXPECT_NEAR(snap.p50, 50.5, 1.0);
    EXPECT_NEAR(snap.p95, 95.0, 1.0);

    const std::string json = registry.ToJson();
    EXPECT_NE(json.find("\"neo.test.steps\""), std::string::npos);
    EXPECT_NE(json.find("\"neo.test.qps\""), std::string::npos);
    EXPECT_NE(json.find("\"neo.test.latency\""), std::string::npos);
    const std::string csv = registry.ToCsv();
    EXPECT_NE(csv.find("neo.test.steps,counter"), std::string::npos);
    EXPECT_NE(csv.find("neo.test.latency,histogram"), std::string::npos);
}

TEST(Metrics, ResetZeroesButKeepsReferences)
{
    MetricsRegistry registry;
    Counter& c = registry.GetCounter("neo.test.reset");
    Histogram& h = registry.GetHistogram("neo.test.reset_hist");
    c.Add(7);
    h.Observe(3.0);
    registry.Reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(h.GetSnapshot().count, 0u);
    // The old reference and a fresh lookup are still the same object.
    c.Add(2);
    EXPECT_EQ(registry.GetCounter("neo.test.reset").value(), 2u);

    // An empty histogram snapshot must be all-zero, not throw from
    // Percentile on an empty window.
    const Histogram::Snapshot empty = h.GetSnapshot();
    EXPECT_EQ(empty.count, 0u);
    EXPECT_DOUBLE_EQ(empty.p99, 0.0);
}

/** Shorthand for hand-built span lists. */
Span
MakeSpan(const char* name, const char* cat, int64_t start, int64_t dur,
         uint16_t depth, int rank = 0, uint32_t tid = 0)
{
    Span s;
    s.name = name;
    s.cat = cat;
    s.start_ns = start;
    s.dur_ns = dur;
    s.depth = depth;
    s.rank = rank;
    s.tid = tid;
    return s;
}

TEST(StepBreakdown, SyntheticAttributionAndTransparentRollup)
{
    std::vector<Span> spans;
    // One 1000 ns step with: a 200 ns mlp_fwd phase containing a 100 ns
    // gemm (transparent: charges its parent), a 300 ns AllToAll, and
    // 500 ns of uninstrumented remainder.
    spans.push_back(MakeSpan("train_step", "step", 0, 1000, 0));
    spans.push_back(MakeSpan("dense_forward", "mlp_fwd", 100, 200, 1));
    spans.push_back(MakeSpan("gemm", "gemm", 120, 100, 2));
    spans.push_back(MakeSpan("alltoall", "a2a", 400, 300, 1));
    // Outside the step: must be ignored.
    spans.push_back(MakeSpan("dense_forward", "mlp_fwd", 2000, 100, 0));
    // Another rank: must be ignored.
    spans.push_back(MakeSpan("train_step", "step", 0, 1000, 0, /*rank=*/1));

    const StepBreakdown b = StepBreakdown::FromSpans(spans, /*rank=*/0);
    EXPECT_EQ(b.steps, 1);
    EXPECT_DOUBLE_EQ(b.step_seconds, 1000e-9);
    // gemm's 100 ns rolls up into mlp_fwd, restoring the full 200 ns.
    EXPECT_DOUBLE_EQ(b.categories.mlp_fwd, 200e-9);
    EXPECT_DOUBLE_EQ(b.categories.alltoall, 300e-9);
    // The step span's own exclusive time lands in `other`.
    EXPECT_DOUBLE_EQ(b.categories.other, 500e-9);
    EXPECT_DOUBLE_EQ(b.categories.Total(), 1000e-9);
    EXPECT_DOUBLE_EQ(b.Coverage(), 1.0);
    EXPECT_DOUBLE_EQ(b.categories.ExposedComm(), 300e-9);
}

TEST(StepBreakdown, AveragesAcrossMultipleSteps)
{
    std::vector<Span> spans;
    spans.push_back(MakeSpan("train_step", "step", 0, 1000, 0));
    spans.push_back(MakeSpan("a", "allreduce", 0, 1000, 1));
    spans.push_back(MakeSpan("train_step", "step", 5000, 3000, 0));
    spans.push_back(MakeSpan("a", "allreduce", 5000, 3000, 1));
    const StepBreakdown b = StepBreakdown::FromSpans(spans, 0);
    EXPECT_EQ(b.steps, 2);
    EXPECT_DOUBLE_EQ(b.step_seconds, 2000e-9);
    EXPECT_DOUBLE_EQ(b.categories.allreduce, 2000e-9);
}

TEST(StepBreakdown, FromModelMapsEveryField)
{
    sim::IterationBreakdown model;
    model.htod = 1;
    model.input_a2a = 2;
    model.bot_mlp_fwd = 3;
    model.emb_lookup = 4;
    model.pooled_a2a_fwd = 5;
    model.interaction_fwd = 6;
    model.top_mlp_fwd = 7;
    model.top_mlp_bwd = 8;
    model.interaction_bwd = 9;
    model.grad_a2a_bwd = 10;
    model.emb_update = 11;
    model.bot_mlp_bwd = 12;
    model.allreduce = 13;
    model.overhead = 14;
    model.total = 99;

    const StepBreakdown b = StepBreakdown::FromModel(model);
    EXPECT_DOUBLE_EQ(b.categories.data, 1);
    EXPECT_DOUBLE_EQ(b.categories.emb_fwd, 4);
    EXPECT_DOUBLE_EQ(b.categories.emb_bwd, 11);
    EXPECT_DOUBLE_EQ(b.categories.mlp_fwd, 3 + 6 + 7);
    EXPECT_DOUBLE_EQ(b.categories.mlp_bwd, 8 + 9 + 12);
    EXPECT_DOUBLE_EQ(b.categories.alltoall, 2 + 5 + 10);
    EXPECT_DOUBLE_EQ(b.categories.allreduce, 13);
    EXPECT_DOUBLE_EQ(b.categories.other, 14);
    EXPECT_DOUBLE_EQ(b.step_seconds, 99);
    EXPECT_EQ(b.steps, 1);
    const std::string diff = StepBreakdown::DiffTable(b, b);
    EXPECT_NE(diff.find("mlp_fwd"), std::string::npos);
    EXPECT_NE(diff.find("alltoall"), std::string::npos);
}

// ------------------------------------------------- end-to-end training

data::DatasetConfig
MakeDataConfig(const core::DlrmConfig& model)
{
    data::DatasetConfig config;
    config.num_dense = model.num_dense;
    config.seed = 99;
    for (const auto& t : model.tables) {
        config.features.push_back({t.rows, t.pooling, 1.05});
    }
    return config;
}

/** Train 2 ranks for `steps` steps; returns each rank's final loss. */
std::vector<double>
RunTwoRankTraining(int steps)
{
    const int workers = 2;
    const size_t local_batch = 16;
    const core::DlrmConfig model = core::MakeSmallDlrmConfig(4, 200, 8);
    sharding::PlannerOptions planner_options;
    planner_options.topo.num_workers = workers;
    planner_options.topo.workers_per_node = workers;
    planner_options.global_batch = local_batch * workers;
    planner_options.hbm_bytes_per_worker = 1e12;
    sharding::ShardingPlanner planner(planner_options);
    const sharding::ShardingPlan plan = planner.Plan(model.tables);

    std::vector<double> losses(workers, 0.0);
    comm::ThreadedWorld::Run(workers, [&](int rank,
                                          comm::ProcessGroup& pg) {
        core::DistributedDlrm trainer(model, plan, pg);
        data::SyntheticCtrDataset dataset(MakeDataConfig(model));
        for (int s = 0; s < steps; s++) {
            data::Batch global = dataset.NextBatch(local_batch * workers);
            data::Batch local;
            const size_t begin = rank * local_batch;
            local.dense = Matrix(local_batch, global.dense.cols());
            for (size_t b = 0; b < local_batch; b++) {
                for (size_t c = 0; c < global.dense.cols(); c++) {
                    local.dense(b, c) = global.dense(begin + b, c);
                }
            }
            local.sparse =
                global.sparse.SliceBatch(begin, begin + local_batch);
            local.labels.assign(global.labels.begin() + begin,
                                global.labels.begin() + begin +
                                    local_batch);
            losses[rank] = trainer.TrainStep(local);
        }
    });
    return losses;
}

TEST(StepBreakdown, TwoRankTrainingStepCoversWallClock)
{
    TraceGuard guard;
    const int steps = 3;
    RunTwoRankTraining(steps);

    const std::vector<Span> spans = Tracer::Get().Collect();
    ASSERT_FALSE(spans.empty());
    EXPECT_EQ(Tracer::Get().DroppedSpans(), 0u);

    for (int rank = 0; rank < 2; rank++) {
        const StepBreakdown b = StepBreakdown::FromSpans(spans, rank);
        EXPECT_EQ(b.steps, steps) << "rank " << rank;
        EXPECT_GT(b.step_seconds, 0.0);
        // Exclusive-time attribution covers the step by construction.
        EXPECT_NEAR(b.Coverage(), 1.0, 1e-9) << "rank " << rank;
        // Every phase of the hybrid-parallel step must show up.
        EXPECT_GT(b.categories.emb_fwd, 0.0);
        EXPECT_GT(b.categories.emb_bwd, 0.0);
        EXPECT_GT(b.categories.mlp_fwd, 0.0);
        EXPECT_GT(b.categories.mlp_bwd, 0.0);
        EXPECT_GT(b.categories.alltoall, 0.0);
        EXPECT_GT(b.categories.allreduce, 0.0);
        EXPECT_GT(b.categories.optimizer, 0.0);
        const std::string table = b.ToTable();
        EXPECT_NE(table.find("emb_fwd"), std::string::npos);
    }

    // The step counter metric advanced by workers x steps.
    EXPECT_GE(MetricsRegistry::Get()
                  .GetCounter("neo.core.steps")
                  .value(),
              static_cast<uint64_t>(2 * steps));
}

TEST(StepBreakdown, TracingDoesNotChangeNumerics)
{
    Tracer::Get().SetEnabled(false);
    Tracer::Get().Clear();
    const std::vector<double> untraced = RunTwoRankTraining(2);
    std::vector<double> traced;
    {
        TraceGuard guard;
        traced = RunTwoRankTraining(2);
    }
    ASSERT_EQ(untraced.size(), traced.size());
    for (size_t r = 0; r < untraced.size(); r++) {
        // Bit-identical: observation must not perturb training.
        EXPECT_EQ(untraced[r], traced[r]) << "rank " << r;
    }
}

}  // namespace
}  // namespace neo::obs
