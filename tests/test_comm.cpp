/**
 * @file
 * Tests for the threaded collective-communication backend: correctness of
 * every collective against a single-threaded reference across world sizes
 * (parameterized), determinism of reductions, ragged AllToAllv, quantized
 * collectives, traffic accounting, and the fault-tolerance layer (abort
 * propagation, barrier deadlines, fault injection, recovery).
 */
#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <numeric>
#include <thread>

#include "comm/fault.h"
#include "comm/quantized.h"
#include "comm/threaded_process_group.h"
#include "common/rng.h"

namespace neo::comm {
namespace {

class CollectiveTest : public ::testing::TestWithParam<int>
{
};

TEST_P(CollectiveTest, AllReduceSumsInRankOrder)
{
    const int world = GetParam();
    const size_t count = 1000;
    std::vector<std::vector<float>> data(world);
    std::vector<float> expected(count, 0.0f);
    Rng rng(41);
    for (int r = 0; r < world; r++) {
        data[r].resize(count);
        for (auto& x : data[r]) {
            x = rng.NextUniform(-1.0f, 1.0f);
        }
    }
    for (size_t i = 0; i < count; i++) {
        float sum = 0.0f;
        for (int r = 0; r < world; r++) {
            sum += data[r][i];  // rank order, matching the contract
        }
        expected[i] = sum;
    }

    ThreadedWorld::Run(world, [&](int rank, ProcessGroup& pg) {
        std::vector<float> local = data[rank];
        pg.AllReduceSum(local.data(), local.size());
        ASSERT_EQ(local, expected) << "rank " << rank;
    });
}

TEST_P(CollectiveTest, BroadcastFromEveryRoot)
{
    const int world = GetParam();
    for (int root = 0; root < world; root++) {
        ThreadedWorld::Run(world, [&](int rank, ProcessGroup& pg) {
            std::vector<float> buf(16,
                                   static_cast<float>(rank * 100));
            pg.Broadcast(buf.data(), buf.size(), root);
            for (float x : buf) {
                ASSERT_EQ(x, static_cast<float>(root * 100));
            }
        });
    }
}

TEST_P(CollectiveTest, AllGatherConcatenatesInRankOrder)
{
    const int world = GetParam();
    const size_t count = 7;
    ThreadedWorld::Run(world, [&](int rank, ProcessGroup& pg) {
        std::vector<float> mine(count);
        for (size_t i = 0; i < count; i++) {
            mine[i] = static_cast<float>(rank * 1000 + i);
        }
        std::vector<float> out(count * world);
        pg.AllGather(mine.data(), count, out.data());
        for (int r = 0; r < world; r++) {
            for (size_t i = 0; i < count; i++) {
                ASSERT_EQ(out[r * count + i],
                          static_cast<float>(r * 1000 + i));
            }
        }
    });
}

TEST_P(CollectiveTest, ReduceScatterMatchesAllReduceChunk)
{
    const int world = GetParam();
    const size_t chunk = 13;
    std::vector<std::vector<float>> inputs(world);
    Rng rng(43);
    for (int r = 0; r < world; r++) {
        inputs[r].resize(chunk * world);
        for (auto& x : inputs[r]) {
            x = rng.NextUniform(-2.0f, 2.0f);
        }
    }
    ThreadedWorld::Run(world, [&](int rank, ProcessGroup& pg) {
        std::vector<float> out(chunk);
        pg.ReduceScatterSum(inputs[rank].data(), chunk, out.data());
        for (size_t i = 0; i < chunk; i++) {
            float expected = 0.0f;
            for (int r = 0; r < world; r++) {
                expected += inputs[r][rank * chunk + i];
            }
            ASSERT_EQ(out[i], expected);
        }
    });
}

TEST_P(CollectiveTest, AllToAllRoutesRaggedPayloads)
{
    const int world = GetParam();
    ThreadedWorld::Run(world, [&](int rank, ProcessGroup& pg) {
        // Rank r sends (r*10 + dst) repeated (r + dst) times to dst.
        std::vector<std::vector<uint8_t>> send(world);
        for (int dst = 0; dst < world; dst++) {
            send[dst].assign(static_cast<size_t>(rank + dst),
                             static_cast<uint8_t>(rank * 10 + dst));
        }
        std::vector<std::vector<uint8_t>> recv;
        pg.AllToAllBytes(send, recv);
        ASSERT_EQ(recv.size(), static_cast<size_t>(world));
        for (int src = 0; src < world; src++) {
            ASSERT_EQ(recv[src].size(), static_cast<size_t>(src + rank));
            for (uint8_t byte : recv[src]) {
                ASSERT_EQ(byte, static_cast<uint8_t>(src * 10 + rank));
            }
        }
    });
}

TEST_P(CollectiveTest, TypedAllToAllWrappers)
{
    const int world = GetParam();
    ThreadedWorld::Run(world, [&](int rank, ProcessGroup& pg) {
        std::vector<std::vector<int64_t>> send(world);
        for (int dst = 0; dst < world; dst++) {
            send[dst] = {rank * 100ll + dst, -1ll};
        }
        std::vector<std::vector<int64_t>> recv;
        pg.AllToAllIndices(send, recv);
        for (int src = 0; src < world; src++) {
            ASSERT_EQ(recv[src],
                      (std::vector<int64_t>{src * 100ll + rank, -1ll}));
        }
    });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectiveTest,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(Collectives, AllReduceBitwiseDeterministicAcrossRuns)
{
    const int world = 4;
    const size_t count = 257;
    std::vector<float> result1(count), result2(count);
    for (int run = 0; run < 2; run++) {
        std::vector<float>& result = run == 0 ? result1 : result2;
        ThreadedWorld::Run(world, [&](int rank, ProcessGroup& pg) {
            Rng rng(100 + rank);
            std::vector<float> local(count);
            for (auto& x : local) {
                x = rng.NextUniform(-1.0f, 1.0f);
            }
            pg.AllReduceSum(local.data(), count);
            if (rank == 0) {
                result = local;
            }
        });
    }
    EXPECT_EQ(result1, result2);
}

TEST(Collectives, AllRanksSeeIdenticalAllReduceResult)
{
    const int world = 5;
    const size_t count = 64;
    std::vector<std::vector<float>> results(world);
    ThreadedWorld::Run(world, [&](int rank, ProcessGroup& pg) {
        Rng rng(7 + rank);
        std::vector<float> local(count);
        for (auto& x : local) {
            x = rng.NextUniform(-3.0f, 3.0f);
        }
        pg.AllReduceSum(local.data(), count);
        results[rank] = local;
    });
    for (int r = 1; r < world; r++) {
        EXPECT_EQ(results[0], results[r]) << r;
    }
}

TEST(Collectives, StatsCountTraffic)
{
    ThreadedWorld::Run(2, [&](int rank, ProcessGroup& pg) {
        std::vector<float> buf(100, static_cast<float>(rank));
        pg.AllReduceSum(buf.data(), buf.size());
        const CommStats stats = pg.Stats();
        EXPECT_EQ(stats.allreduce_bytes, 400u);
        EXPECT_GE(stats.calls, 1u);
    });
}

// ------------------------------------------------------------ Quantized

TEST(Quantized, Fp16RoundTripErrorBounded)
{
    Rng rng(51);
    std::vector<float> values(4096);
    for (auto& v : values) {
        v = rng.NextUniform(-8.0f, 8.0f);
    }
    const auto q = QuantizeVector(values, Precision::kFp16);
    const auto back = DequantizeVector(q, Precision::kFp16);
    for (size_t i = 0; i < values.size(); i++) {
        EXPECT_LE(std::abs(back[i] - values[i]),
                  std::abs(values[i]) / 1024.0f + 1e-6f);
    }
}

TEST(Quantized, Bf16HandlesWideDynamicRange)
{
    std::vector<float> values = {1e-20f, 1e20f, -3e30f, 5e-35f};
    const auto back =
        DequantizeVector(QuantizeVector(values, Precision::kBf16),
                         Precision::kBf16);
    for (size_t i = 0; i < values.size(); i++) {
        EXPECT_NEAR(back[i] / values[i], 1.0f, 0.01f);
    }
}

TEST(Quantized, AllToAllDeliversQuantizedPayloads)
{
    const int world = 3;
    ThreadedWorld::Run(world, [&](int rank, ProcessGroup& pg) {
        std::vector<std::vector<float>> send(world);
        for (int dst = 0; dst < world; dst++) {
            send[dst] = {static_cast<float>(rank) + 0.333f,
                         static_cast<float>(dst) * 1.25f};
        }
        std::vector<std::vector<float>> recv;
        QuantizedAllToAll(pg, send, recv, Precision::kFp16);
        for (int src = 0; src < world; src++) {
            ASSERT_EQ(recv[src].size(), 2u);
            EXPECT_NEAR(recv[src][0], static_cast<float>(src) + 0.333f,
                        5e-3f);
            EXPECT_NEAR(recv[src][1], static_cast<float>(rank) * 1.25f,
                        5e-3f);
        }
    });
}

TEST(Quantized, Fp32PassThroughIsExact)
{
    const int world = 2;
    ThreadedWorld::Run(world, [&](int rank, ProcessGroup& pg) {
        std::vector<std::vector<float>> send(world);
        for (int dst = 0; dst < world; dst++) {
            send[dst] = {0.1234567f * (rank + 1)};
        }
        std::vector<std::vector<float>> recv;
        QuantizedAllToAll(pg, send, recv, Precision::kFp32);
        for (int src = 0; src < world; src++) {
            EXPECT_EQ(recv[src][0], 0.1234567f * (src + 1));
        }
    });
}

TEST(Quantized, QuantizedAllReduceStaysClose)
{
    const int world = 4;
    const size_t count = 128;
    ThreadedWorld::Run(world, [&](int rank, ProcessGroup& pg) {
        Rng rng(60 + rank);
        std::vector<float> exact(count), quant(count);
        for (size_t i = 0; i < count; i++) {
            exact[i] = rng.NextUniform(-1.0f, 1.0f);
            quant[i] = exact[i];
        }
        pg.AllReduceSum(exact.data(), count);
        QuantizedAllReduce(pg, quant.data(), count, Precision::kBf16);
        for (size_t i = 0; i < count; i++) {
            ASSERT_NEAR(quant[i], exact[i], 0.05f);
        }
    });
}

// ------------------------------------------------------ Fault tolerance

TEST(FaultTolerance, ThrowingRankRethrowsWithoutDeadlock)
{
    // Regression: before the abort protocol, a rank that threw inside
    // Run left every other rank blocked forever in Barrier(), so this
    // test hung instead of failing.
    const auto start = std::chrono::steady_clock::now();
    std::vector<int> blamed(4, -1);
    bool rethrown = false;
    try {
        ThreadedWorld::Run(4, [&](int rank, ProcessGroup& pg) {
            if (rank == 2) {
                throw std::runtime_error("boom on rank 2");
            }
            std::vector<float> buf(64, 1.0f);
            try {
                pg.AllReduceSum(buf.data(), buf.size());
            } catch (const RankFailure& f) {
                blamed[rank] = f.failed_rank();
                EXPECT_NE(f.cause().find("boom"), std::string::npos);
            }
        });
    } catch (const std::runtime_error& e) {
        rethrown = true;
        // The originating exception wins over secondary RankFailures.
        EXPECT_NE(std::string(e.what()).find("boom on rank 2"),
                  std::string::npos);
    }
    EXPECT_TRUE(rethrown);
    EXPECT_EQ(blamed[0], 2);
    EXPECT_EQ(blamed[1], 2);
    EXPECT_EQ(blamed[3], 2);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(elapsed, std::chrono::seconds(20));
}

TEST(FaultTolerance, KilledRankNamedByEveryRank)
{
    FaultInjector injector;
    FaultSpec kill;
    kill.rank = 1;
    kill.call_index = 0;
    kill.kind = FaultKind::kKill;
    injector.Arm(kill);
    ThreadedWorld::Options options;
    options.injector = &injector;

    bool rethrown = false;
    try {
        ThreadedWorld::Run(4, options, [&](int rank, ProcessGroup& pg) {
            std::vector<float> buf(8, static_cast<float>(rank));
            pg.AllReduceSum(buf.data(), buf.size());
        });
    } catch (const RankFailure& f) {
        rethrown = true;
        EXPECT_EQ(f.failed_rank(), 1);
        EXPECT_TRUE(f.transient());
        EXPECT_NE(f.cause().find("injected kill"), std::string::npos);
    }
    EXPECT_TRUE(rethrown);
    ASSERT_EQ(injector.Fired().size(), 1u);
    EXPECT_EQ(injector.Fired()[0].op, CollectiveOp::kAllReduce);
    EXPECT_EQ(injector.NumArmed(), 0u);
}

TEST(FaultTolerance, BarrierTimeoutNamesStraggler)
{
    FaultInjector injector;
    FaultSpec lag;
    lag.rank = 2;
    lag.call_index = 0;
    lag.kind = FaultKind::kDelay;
    lag.delay = std::chrono::milliseconds(400);
    injector.Arm(lag);
    ThreadedWorld::Options options;
    options.barrier_timeout = std::chrono::milliseconds(50);
    options.injector = &injector;

    std::vector<int> blamed(4, -1);
    std::vector<std::string> causes(4);
    ThreadedWorld::Run(4, options, [&](int rank, ProcessGroup& pg) {
        float x = 1.0f;
        try {
            pg.AllReduceSum(&x, 1);
        } catch (const RankFailure& f) {
            blamed[rank] = f.failed_rank();
            causes[rank] = f.cause();
        }
    });
    for (int r = 0; r < 4; r++) {
        EXPECT_EQ(blamed[r], 2) << "rank " << r;
        EXPECT_NE(causes[r].find("timeout"), std::string::npos)
            << causes[r];
    }
}

TEST(FaultTolerance, StragglerWithinDeadlineIsAbsorbed)
{
    FaultInjector injector;
    FaultSpec lag;
    lag.rank = 0;
    lag.call_index = 0;
    lag.kind = FaultKind::kDelay;
    lag.delay = std::chrono::milliseconds(30);
    injector.Arm(lag);
    ThreadedWorld::Options options;
    options.barrier_timeout = std::chrono::milliseconds(5000);
    options.injector = &injector;

    ThreadedWorld::Run(3, options, [&](int rank, ProcessGroup& pg) {
        float x = static_cast<float>(rank);
        pg.AllReduceSum(&x, 1);
        ASSERT_EQ(x, 3.0f);
    });
}

TEST(FaultTolerance, ExplicitBarrierDeadline)
{
    std::vector<int> blamed(2, -1);
    ThreadedWorld::Run(2, [&](int rank, ProcessGroup& pg) {
        if (rank == 1) {
            std::this_thread::sleep_for(std::chrono::milliseconds(300));
        }
        try {
            pg.Barrier(std::chrono::milliseconds(rank == 0 ? 50 : 5000));
        } catch (const RankFailure& f) {
            blamed[rank] = f.failed_rank();
        }
    });
    EXPECT_EQ(blamed[0], 1);  // deadline expired waiting for rank 1
    EXPECT_EQ(blamed[1], 1);  // world already poisoned on arrival
}

TEST(FaultTolerance, CorruptFaultPoisonsPayloadDeterministically)
{
    FaultInjector injector;
    FaultSpec corrupt;
    corrupt.rank = 0;
    corrupt.call_index = 0;
    corrupt.kind = FaultKind::kCorrupt;
    corrupt.corrupt_value = 100.0f;
    injector.Arm(corrupt);
    ThreadedWorld::Options options;
    options.injector = &injector;

    ThreadedWorld::Run(2, options, [&](int, ProcessGroup& pg) {
        std::vector<float> buf(4, 1.0f);
        pg.AllReduceSum(buf.data(), buf.size());
        for (float x : buf) {
            ASSERT_EQ(x, 101.0f);  // corrupted 100 + honest 1
        }
    });
}

TEST(FaultTolerance, TransientKillRecoveredByRetry)
{
    FaultInjector injector;
    FaultSpec kill;
    kill.rank = 0;
    kill.call_index = 2;  // third AllReduce call on rank 0
    kill.kind = FaultKind::kKill;
    kill.transient = true;
    injector.Arm(kill);
    ThreadedWorld::Options options;
    options.barrier_timeout = std::chrono::milliseconds(5000);
    options.injector = &injector;

    std::vector<int> retries(3, 0);
    ThreadedWorld::Run(3, options, [&](int rank, ProcessGroup& pg) {
        for (int step = 0; step < 5; step++) {
            float x = static_cast<float>(rank + step);
            for (;;) {
                try {
                    pg.AllReduceSum(&x, 1);
                    break;
                } catch (const RankFailure& f) {
                    ASSERT_TRUE(f.transient());
                    retries[rank]++;
                    ASSERT_TRUE(
                        pg.Recover(std::chrono::milliseconds(2000)));
                    x = static_cast<float>(rank + step);
                }
            }
            ASSERT_EQ(x, static_cast<float>(3 + 3 * step)) << step;
        }
        EXPECT_TRUE(pg.Healthy());
    });
    // Every rank lost exactly the one injected step and recovered.
    EXPECT_EQ(retries, (std::vector<int>{1, 1, 1}));
}

TEST(FaultTolerance, RecoveryFailsWhenRankIsPermanentlyDead)
{
    ThreadedWorld::Options options;
    options.barrier_timeout = std::chrono::milliseconds(100);

    std::vector<int> recovered(3, -1);
    ThreadedWorld::Run(3, options, [&](int rank, ProcessGroup& pg) {
        if (rank == 1) {
            return;  // dead before its first collective
        }
        float x = 1.0f;
        try {
            pg.AllReduceSum(&x, 1);
            ADD_FAILURE() << "collective must not complete";
        } catch (const RankFailure& f) {
            EXPECT_EQ(f.failed_rank(), 1);
            recovered[rank] =
                pg.Recover(std::chrono::milliseconds(100)) ? 1 : 0;
            EXPECT_FALSE(pg.Healthy());
        }
    });
    EXPECT_EQ(recovered[0], 0);
    EXPECT_EQ(recovered[2], 0);
}

TEST(FaultTolerance, AbortedCollectiveNotCountedInStatsOrTrace)
{
    FaultInjector injector;
    FaultSpec kill;
    kill.rank = 1;
    kill.call_index = 0;
    kill.kind = FaultKind::kKill;
    injector.Arm(kill);
    ThreadedWorld::Options options;
    options.injector = &injector;

    std::vector<TraceEvent> trace;
    CommStats stats0;
    ThreadedWorld::Run(2, options, [&](int rank, ProcessGroup& pg) {
        if (rank == 0) {
            pg.SetTrace(&trace);
        }
        std::vector<float> buf(10, 1.0f);
        try {
            pg.AllReduceSum(buf.data(), buf.size());
            ADD_FAILURE() << "first collective must abort";
        } catch (const RankFailure&) {
            ASSERT_TRUE(pg.Recover(std::chrono::milliseconds(2000)));
        }
        buf.assign(10, 1.0f);
        pg.AllReduceSum(buf.data(), buf.size());
        if (rank == 0) {
            stats0 = pg.Stats();
            pg.SetTrace(nullptr);
        }
    });
    // Only the completed collective is accounted, on stats and trace.
    EXPECT_EQ(stats0.calls, 1u);
    EXPECT_EQ(stats0.allreduce_bytes, 40u);
    ASSERT_EQ(trace.size(), 1u);
    EXPECT_EQ(trace[0].op, CollectiveOp::kAllReduce);
}

}  // namespace
}  // namespace neo::comm

namespace neo::comm {
namespace {

TEST(Collectives, ZeroLengthPayloadsAreSafe)
{
    ThreadedWorld::Run(3, [&](int, ProcessGroup& pg) {
        // Empty AllReduce and AllToAll must complete without touching
        // memory.
        pg.AllReduceSum(nullptr, 0);
        std::vector<std::vector<uint8_t>> send(3);
        std::vector<std::vector<uint8_t>> recv;
        pg.AllToAllBytes(send, recv);
        for (const auto& r : recv) {
            ASSERT_TRUE(r.empty());
        }
    });
}

TEST(Collectives, SingleRankWorldIsIdentity)
{
    ThreadedWorld::Run(1, [&](int, ProcessGroup& pg) {
        std::vector<float> buf = {1.0f, -2.0f, 3.0f};
        const std::vector<float> original = buf;
        pg.AllReduceSum(buf.data(), buf.size());
        EXPECT_EQ(buf, original);
        pg.Broadcast(buf.data(), buf.size(), 0);
        EXPECT_EQ(buf, original);
        std::vector<float> out(3);
        pg.AllGather(buf.data(), 3, out.data());
        EXPECT_EQ(out, original);
    });
}

TEST(Collectives, TraceCapturesOpsAndSizes)
{
    std::vector<TraceEvent> trace;
    ThreadedWorld::Run(2, [&](int rank, ProcessGroup& pg) {
        if (rank == 0) {
            pg.SetTrace(&trace);
        }
        std::vector<float> buf(10, 1.0f);
        pg.AllReduceSum(buf.data(), buf.size());
        std::vector<std::vector<float>> send(
            2, std::vector<float>(5, 2.0f));
        std::vector<std::vector<float>> recv;
        pg.AllToAllFloats(send, recv);
        if (rank == 0) {
            pg.SetTrace(nullptr);
        }
        // Post-detach traffic must not be recorded.
        pg.AllReduceSum(buf.data(), buf.size());
    });
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[0].op, CollectiveOp::kAllReduce);
    EXPECT_EQ(trace[0].bytes, 40u);
    EXPECT_EQ(trace[1].op, CollectiveOp::kAllToAll);
    EXPECT_EQ(trace[1].bytes, 40u);  // 2 peers x 5 floats
}

TEST(Collectives, TraceRecordsTimingAndPerOpSequence)
{
    std::vector<TraceEvent> trace;
    ThreadedWorld::Run(2, [&](int rank, ProcessGroup& pg) {
        if (rank == 0) {
            pg.SetTrace(&trace);
        }
        std::vector<float> buf(8, 1.0f);
        for (int i = 0; i < 3; i++) {
            pg.AllReduceSum(buf.data(), buf.size());
        }
        std::vector<std::vector<float>> send(
            2, std::vector<float>(4, 2.0f));
        std::vector<std::vector<float>> recv;
        pg.AllToAllFloats(send, recv);
        pg.AllToAllFloats(send, recv);
    });
    ASSERT_EQ(trace.size(), 5u);
    int64_t prev_start = std::numeric_limits<int64_t>::min();
    for (const TraceEvent& event : trace) {
        // Collectives synchronize, so every call takes measurable-or-zero
        // time and later calls start no earlier than earlier ones.
        EXPECT_GE(event.duration_ns, 0);
        EXPECT_GE(event.start_ns, prev_start);
        prev_start = event.start_ns;
    }
    // The sequence number counts calls of the SAME op kind, so replayed
    // traces can be aligned op-by-op across ranks.
    EXPECT_EQ(trace[0].seq, 0u);
    EXPECT_EQ(trace[1].seq, 1u);
    EXPECT_EQ(trace[2].seq, 2u);
    EXPECT_EQ(trace[3].seq, 0u);
    EXPECT_EQ(trace[4].seq, 1u);
}

TEST(Collectives, TypedWrappersAccountWireBytes)
{
    // AllToAllIndices moves 8-byte int64 ids and AllToAllLengths 4-byte
    // counts; stats must reflect the element width of the wire payload,
    // counting off-rank traffic only.
    ThreadedWorld::Run(2, [&](int rank, ProcessGroup& pg) {
        std::vector<std::vector<int64_t>> idx_send(2);
        idx_send[0] = {1, 2, 3};
        idx_send[1] = {4, 5, 6};
        std::vector<std::vector<int64_t>> idx_recv;
        pg.AllToAllIndices(idx_send, idx_recv);
        // 3 ids x 8 bytes to the one off-rank peer.
        EXPECT_EQ(pg.Stats().alltoall_bytes, 24u);

        std::vector<std::vector<uint32_t>> len_send(2);
        len_send[0] = {7u, 8u};
        len_send[1] = {9u, 10u};
        std::vector<std::vector<uint32_t>> len_recv;
        pg.AllToAllLengths(len_send, len_recv);
        // + 2 lengths x 4 bytes off-rank.
        EXPECT_EQ(pg.Stats().alltoall_bytes, 24u + 8u);
        (void)rank;
    });
}

TEST(Quantized, AllToAllAccountsQuantizedWireBytes)
{
    // A quantized exchange must book the 2-byte-per-element wire format,
    // not the 4-byte float payload handed to the caller.
    ThreadedWorld::Run(2, [&](int rank, ProcessGroup& pg) {
        std::vector<std::vector<float>> send(2);
        send[0] = std::vector<float>(10, 1.0f);
        send[1] = std::vector<float>(10, 2.0f);
        std::vector<std::vector<float>> recv;
        QuantizedAllToAll(pg, send, recv, Precision::kFp16);
        // 10 halves x 2 bytes to the off-rank peer.
        EXPECT_EQ(pg.Stats().alltoall_bytes, 20u);
        (void)rank;
    });
}

TEST(Quantized, AllReduceRebooksStatsAndTraceToWireBytes)
{
    const size_t count = 100;
    std::vector<TraceEvent> trace;
    ThreadedWorld::Run(2, [&](int rank, ProcessGroup& pg) {
        if (rank == 0) {
            pg.SetTrace(&trace);
        }
        std::vector<float> buf(count, static_cast<float>(rank));
        QuantizedAllReduce(pg, buf.data(), count, Precision::kBf16);
        // The underlying AllReduceSum books 4 B/elem; QuantizedAllReduce
        // rebooks to the bf16 wire size actually exchanged.
        EXPECT_EQ(pg.Stats().allreduce_bytes, count * 2);

        std::vector<float> full(count, 1.0f);
        pg.AllReduceSum(full.data(), count);
        EXPECT_EQ(pg.Stats().allreduce_bytes, count * 2 + count * 4);
    });
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[0].op, CollectiveOp::kAllReduce);
    EXPECT_EQ(trace[0].bytes, count * 2);  // rebooked wire bytes
    EXPECT_EQ(trace[1].bytes, count * 4);  // fp32 path untouched
}

TEST(Collectives, ZeroCountGuardsOnEveryCollective)
{
    // Regression: Broadcast/AllGather/ReduceScatter/AllToAll used to run
    // memcpy/pointer arithmetic on (null, 0) payloads. All five
    // collectives must treat count == 0 as synchronize-only.
    ThreadedWorld::Run(3, [&](int rank, ProcessGroup& pg) {
        pg.AllReduceSum(nullptr, 0);
        pg.Broadcast(nullptr, 0, /*root=*/1);
        pg.AllGather(nullptr, 0, nullptr);
        pg.ReduceScatterSum(nullptr, 0, nullptr);
        std::vector<std::vector<uint8_t>> send(3);
        std::vector<std::vector<uint8_t>> recv;
        pg.AllToAllBytes(send, recv);
        for (const auto& r : recv) {
            ASSERT_TRUE(r.empty());
        }
        // The shared boards must still be usable afterwards.
        float x = static_cast<float>(rank);
        pg.AllReduceSum(&x, 1);
        ASSERT_EQ(x, 3.0f);
    });
}

TEST(Collectives, ManySmallCollectivesInterleaveSafely)
{
    // Stress the shared boards: alternating collective types back to
    // back, validating every result.
    ThreadedWorld::Run(4, [&](int rank, ProcessGroup& pg) {
        for (int round = 0; round < 50; round++) {
            float x = static_cast<float>(rank + round);
            pg.AllReduceSum(&x, 1);
            float expected = 0.0f;
            for (int r = 0; r < 4; r++) {
                expected += static_cast<float>(r + round);
            }
            ASSERT_EQ(x, expected) << round;

            std::vector<float> gathered(4);
            const float mine = static_cast<float>(rank * 10 + round);
            pg.AllGather(&mine, 1, gathered.data());
            for (int r = 0; r < 4; r++) {
                ASSERT_EQ(gathered[r],
                          static_cast<float>(r * 10 + round));
            }
        }
    });
}

// ------------------------------- op-filtered faults & shrinking worlds

TEST(FaultTolerance, OpFilteredFaultCountsOnlyMatchingOps)
{
    // match_op addresses "rank 0's 2nd AllReduce", skipping the barriers
    // and broadcasts interleaved before it — the addressing mode the
    // trainer tests use to hit a semantic point inside a training step.
    FaultInjector injector;
    FaultSpec kill;
    kill.rank = 0;
    kill.match_op = true;
    kill.op = CollectiveOp::kAllReduce;
    kill.call_index = 1;
    kill.kind = FaultKind::kKill;
    kill.transient = true;
    injector.Arm(kill);
    ThreadedWorld::Options options;
    options.injector = &injector;

    std::vector<int> completed(2, 0);
    ThreadedWorld::Run(2, options, [&](int rank, ProcessGroup& pg) {
        try {
            float x = 1.0f;
            pg.Barrier();               // flat index 0 on every rank
            pg.AllReduceSum(&x, 1);     // AllReduce #0: survives
            completed[rank]++;
            pg.Broadcast(&x, 1, 0);     // other ops don't advance the count
            pg.Barrier();
            completed[rank]++;
            pg.AllReduceSum(&x, 1);     // AllReduce #1: the armed kill
            ADD_FAILURE() << "second AllReduce must abort";
        } catch (const RankFailure& f) {
            EXPECT_EQ(f.failed_rank(), 0);
            EXPECT_TRUE(f.transient());
        }
    });
    EXPECT_EQ(completed, (std::vector<int>{2, 2}));
    ASSERT_EQ(injector.Fired().size(), 1u);
    EXPECT_EQ(injector.Fired()[0].op, CollectiveOp::kAllReduce);
}

TEST(FaultTolerance, ShrinkAfterFailureFormsSurvivorWorld)
{
    // Rank 2 dies permanently; the three survivors rendezvous into a
    // compacted 3-rank child world and run collectives on it.
    constexpr int kWorld = 4;
    constexpr int kDead = 2;
    ThreadedWorld::Options options;
    options.barrier_timeout = std::chrono::milliseconds(2000);
    ThreadedWorld world(kWorld, options);

    std::vector<int> new_ranks(kWorld, -1);
    std::vector<float> sums(kWorld, 0.0f);
    std::vector<std::thread> threads;
    for (int r = 0; r < kWorld; r++) {
        threads.emplace_back([&, r] {
            ProcessGroup& pg = world.GetGroup(r);
            if (r == kDead) {
                world.Abort(r, "injected permanent death", false);
                return;
            }
            try {
                pg.AllReduceSum(nullptr, 0);
                // The abort may land after this collective completed;
                // the next one observes it either way.
                pg.Barrier();
            } catch (const RankFailure& f) {
                EXPECT_EQ(f.failed_rank(), kDead);
            }
            const auto shrink = world.ShrinkAfterFailure(
                r, std::chrono::milliseconds(5000));
            ASSERT_TRUE(shrink.ok);
            EXPECT_EQ(shrink.new_size, kWorld - 1);
            new_ranks[r] = shrink.new_rank;
            // The child world is live: a collective over the survivors.
            float x = static_cast<float>(shrink.new_rank + 1);
            shrink.group->AllReduceSum(&x, 1);
            sums[r] = x;
            EXPECT_EQ(shrink.group->Rank(), shrink.new_rank);
            EXPECT_EQ(shrink.group->Size(), kWorld - 1);
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    // Compaction: ranks below the dead one keep their id, above shift
    // down by one; the parent stays poisoned.
    EXPECT_EQ(new_ranks, (std::vector<int>{0, 1, -1, 2}));
    for (int r = 0; r < kWorld; r++) {
        if (r != kDead) {
            EXPECT_EQ(sums[r], 6.0f) << "rank " << r;  // 1 + 2 + 3
        }
    }
    EXPECT_TRUE(world.aborted());
}

TEST(FaultTolerance, ShrinkTimesOutWhenSurvivorsMissing)
{
    ThreadedWorld world(3);
    world.Abort(1, "dead", false);
    // Only one of the two survivors shows up: the rendezvous must time
    // out and report failure instead of hanging.
    const auto shrink =
        world.ShrinkAfterFailure(0, std::chrono::milliseconds(100));
    EXPECT_FALSE(shrink.ok);
    EXPECT_EQ(shrink.group, nullptr);
}

}  // namespace
}  // namespace neo::comm
