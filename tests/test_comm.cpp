/**
 * @file
 * Tests for the threaded collective-communication backend: correctness of
 * every collective against a single-threaded reference across world sizes
 * (parameterized), determinism of reductions, ragged AllToAllv, quantized
 * collectives and traffic accounting.
 */
#include <gtest/gtest.h>

#include <numeric>

#include "comm/quantized.h"
#include "comm/threaded_process_group.h"
#include "common/rng.h"

namespace neo::comm {
namespace {

class CollectiveTest : public ::testing::TestWithParam<int>
{
};

TEST_P(CollectiveTest, AllReduceSumsInRankOrder)
{
    const int world = GetParam();
    const size_t count = 1000;
    std::vector<std::vector<float>> data(world);
    std::vector<float> expected(count, 0.0f);
    Rng rng(41);
    for (int r = 0; r < world; r++) {
        data[r].resize(count);
        for (auto& x : data[r]) {
            x = rng.NextUniform(-1.0f, 1.0f);
        }
    }
    for (size_t i = 0; i < count; i++) {
        float sum = 0.0f;
        for (int r = 0; r < world; r++) {
            sum += data[r][i];  // rank order, matching the contract
        }
        expected[i] = sum;
    }

    ThreadedWorld::Run(world, [&](int rank, ProcessGroup& pg) {
        std::vector<float> local = data[rank];
        pg.AllReduceSum(local.data(), local.size());
        ASSERT_EQ(local, expected) << "rank " << rank;
    });
}

TEST_P(CollectiveTest, BroadcastFromEveryRoot)
{
    const int world = GetParam();
    for (int root = 0; root < world; root++) {
        ThreadedWorld::Run(world, [&](int rank, ProcessGroup& pg) {
            std::vector<float> buf(16,
                                   static_cast<float>(rank * 100));
            pg.Broadcast(buf.data(), buf.size(), root);
            for (float x : buf) {
                ASSERT_EQ(x, static_cast<float>(root * 100));
            }
        });
    }
}

TEST_P(CollectiveTest, AllGatherConcatenatesInRankOrder)
{
    const int world = GetParam();
    const size_t count = 7;
    ThreadedWorld::Run(world, [&](int rank, ProcessGroup& pg) {
        std::vector<float> mine(count);
        for (size_t i = 0; i < count; i++) {
            mine[i] = static_cast<float>(rank * 1000 + i);
        }
        std::vector<float> out(count * world);
        pg.AllGather(mine.data(), count, out.data());
        for (int r = 0; r < world; r++) {
            for (size_t i = 0; i < count; i++) {
                ASSERT_EQ(out[r * count + i],
                          static_cast<float>(r * 1000 + i));
            }
        }
    });
}

TEST_P(CollectiveTest, ReduceScatterMatchesAllReduceChunk)
{
    const int world = GetParam();
    const size_t chunk = 13;
    std::vector<std::vector<float>> inputs(world);
    Rng rng(43);
    for (int r = 0; r < world; r++) {
        inputs[r].resize(chunk * world);
        for (auto& x : inputs[r]) {
            x = rng.NextUniform(-2.0f, 2.0f);
        }
    }
    ThreadedWorld::Run(world, [&](int rank, ProcessGroup& pg) {
        std::vector<float> out(chunk);
        pg.ReduceScatterSum(inputs[rank].data(), chunk, out.data());
        for (size_t i = 0; i < chunk; i++) {
            float expected = 0.0f;
            for (int r = 0; r < world; r++) {
                expected += inputs[r][rank * chunk + i];
            }
            ASSERT_EQ(out[i], expected);
        }
    });
}

TEST_P(CollectiveTest, AllToAllRoutesRaggedPayloads)
{
    const int world = GetParam();
    ThreadedWorld::Run(world, [&](int rank, ProcessGroup& pg) {
        // Rank r sends (r*10 + dst) repeated (r + dst) times to dst.
        std::vector<std::vector<uint8_t>> send(world);
        for (int dst = 0; dst < world; dst++) {
            send[dst].assign(static_cast<size_t>(rank + dst),
                             static_cast<uint8_t>(rank * 10 + dst));
        }
        std::vector<std::vector<uint8_t>> recv;
        pg.AllToAllBytes(send, recv);
        ASSERT_EQ(recv.size(), static_cast<size_t>(world));
        for (int src = 0; src < world; src++) {
            ASSERT_EQ(recv[src].size(), static_cast<size_t>(src + rank));
            for (uint8_t byte : recv[src]) {
                ASSERT_EQ(byte, static_cast<uint8_t>(src * 10 + rank));
            }
        }
    });
}

TEST_P(CollectiveTest, TypedAllToAllWrappers)
{
    const int world = GetParam();
    ThreadedWorld::Run(world, [&](int rank, ProcessGroup& pg) {
        std::vector<std::vector<int64_t>> send(world);
        for (int dst = 0; dst < world; dst++) {
            send[dst] = {rank * 100ll + dst, -1ll};
        }
        std::vector<std::vector<int64_t>> recv;
        pg.AllToAllIndices(send, recv);
        for (int src = 0; src < world; src++) {
            ASSERT_EQ(recv[src],
                      (std::vector<int64_t>{src * 100ll + rank, -1ll}));
        }
    });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectiveTest,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(Collectives, AllReduceBitwiseDeterministicAcrossRuns)
{
    const int world = 4;
    const size_t count = 257;
    std::vector<float> result1(count), result2(count);
    for (int run = 0; run < 2; run++) {
        std::vector<float>& result = run == 0 ? result1 : result2;
        ThreadedWorld::Run(world, [&](int rank, ProcessGroup& pg) {
            Rng rng(100 + rank);
            std::vector<float> local(count);
            for (auto& x : local) {
                x = rng.NextUniform(-1.0f, 1.0f);
            }
            pg.AllReduceSum(local.data(), count);
            if (rank == 0) {
                result = local;
            }
        });
    }
    EXPECT_EQ(result1, result2);
}

TEST(Collectives, AllRanksSeeIdenticalAllReduceResult)
{
    const int world = 5;
    const size_t count = 64;
    std::vector<std::vector<float>> results(world);
    ThreadedWorld::Run(world, [&](int rank, ProcessGroup& pg) {
        Rng rng(7 + rank);
        std::vector<float> local(count);
        for (auto& x : local) {
            x = rng.NextUniform(-3.0f, 3.0f);
        }
        pg.AllReduceSum(local.data(), count);
        results[rank] = local;
    });
    for (int r = 1; r < world; r++) {
        EXPECT_EQ(results[0], results[r]) << r;
    }
}

TEST(Collectives, StatsCountTraffic)
{
    ThreadedWorld::Run(2, [&](int rank, ProcessGroup& pg) {
        std::vector<float> buf(100, static_cast<float>(rank));
        pg.AllReduceSum(buf.data(), buf.size());
        const CommStats stats = pg.Stats();
        EXPECT_EQ(stats.allreduce_bytes, 400u);
        EXPECT_GE(stats.calls, 1u);
    });
}

// ------------------------------------------------------------ Quantized

TEST(Quantized, Fp16RoundTripErrorBounded)
{
    Rng rng(51);
    std::vector<float> values(4096);
    for (auto& v : values) {
        v = rng.NextUniform(-8.0f, 8.0f);
    }
    const auto q = QuantizeVector(values, Precision::kFp16);
    const auto back = DequantizeVector(q, Precision::kFp16);
    for (size_t i = 0; i < values.size(); i++) {
        EXPECT_LE(std::abs(back[i] - values[i]),
                  std::abs(values[i]) / 1024.0f + 1e-6f);
    }
}

TEST(Quantized, Bf16HandlesWideDynamicRange)
{
    std::vector<float> values = {1e-20f, 1e20f, -3e30f, 5e-35f};
    const auto back =
        DequantizeVector(QuantizeVector(values, Precision::kBf16),
                         Precision::kBf16);
    for (size_t i = 0; i < values.size(); i++) {
        EXPECT_NEAR(back[i] / values[i], 1.0f, 0.01f);
    }
}

TEST(Quantized, AllToAllDeliversQuantizedPayloads)
{
    const int world = 3;
    ThreadedWorld::Run(world, [&](int rank, ProcessGroup& pg) {
        std::vector<std::vector<float>> send(world);
        for (int dst = 0; dst < world; dst++) {
            send[dst] = {static_cast<float>(rank) + 0.333f,
                         static_cast<float>(dst) * 1.25f};
        }
        std::vector<std::vector<float>> recv;
        QuantizedAllToAll(pg, send, recv, Precision::kFp16);
        for (int src = 0; src < world; src++) {
            ASSERT_EQ(recv[src].size(), 2u);
            EXPECT_NEAR(recv[src][0], static_cast<float>(src) + 0.333f,
                        5e-3f);
            EXPECT_NEAR(recv[src][1], static_cast<float>(rank) * 1.25f,
                        5e-3f);
        }
    });
}

TEST(Quantized, Fp32PassThroughIsExact)
{
    const int world = 2;
    ThreadedWorld::Run(world, [&](int rank, ProcessGroup& pg) {
        std::vector<std::vector<float>> send(world);
        for (int dst = 0; dst < world; dst++) {
            send[dst] = {0.1234567f * (rank + 1)};
        }
        std::vector<std::vector<float>> recv;
        QuantizedAllToAll(pg, send, recv, Precision::kFp32);
        for (int src = 0; src < world; src++) {
            EXPECT_EQ(recv[src][0], 0.1234567f * (src + 1));
        }
    });
}

TEST(Quantized, QuantizedAllReduceStaysClose)
{
    const int world = 4;
    const size_t count = 128;
    ThreadedWorld::Run(world, [&](int rank, ProcessGroup& pg) {
        Rng rng(60 + rank);
        std::vector<float> exact(count), quant(count);
        for (size_t i = 0; i < count; i++) {
            exact[i] = rng.NextUniform(-1.0f, 1.0f);
            quant[i] = exact[i];
        }
        pg.AllReduceSum(exact.data(), count);
        QuantizedAllReduce(pg, quant.data(), count, Precision::kBf16);
        for (size_t i = 0; i < count; i++) {
            ASSERT_NEAR(quant[i], exact[i], 0.05f);
        }
    });
}

}  // namespace
}  // namespace neo::comm

namespace neo::comm {
namespace {

TEST(Collectives, ZeroLengthPayloadsAreSafe)
{
    ThreadedWorld::Run(3, [&](int, ProcessGroup& pg) {
        // Empty AllReduce and AllToAll must complete without touching
        // memory.
        pg.AllReduceSum(nullptr, 0);
        std::vector<std::vector<uint8_t>> send(3);
        std::vector<std::vector<uint8_t>> recv;
        pg.AllToAllBytes(send, recv);
        for (const auto& r : recv) {
            ASSERT_TRUE(r.empty());
        }
    });
}

TEST(Collectives, SingleRankWorldIsIdentity)
{
    ThreadedWorld::Run(1, [&](int, ProcessGroup& pg) {
        std::vector<float> buf = {1.0f, -2.0f, 3.0f};
        const std::vector<float> original = buf;
        pg.AllReduceSum(buf.data(), buf.size());
        EXPECT_EQ(buf, original);
        pg.Broadcast(buf.data(), buf.size(), 0);
        EXPECT_EQ(buf, original);
        std::vector<float> out(3);
        pg.AllGather(buf.data(), 3, out.data());
        EXPECT_EQ(out, original);
    });
}

TEST(Collectives, TraceCapturesOpsAndSizes)
{
    std::vector<TraceEvent> trace;
    ThreadedWorld::Run(2, [&](int rank, ProcessGroup& pg) {
        if (rank == 0) {
            pg.SetTrace(&trace);
        }
        std::vector<float> buf(10, 1.0f);
        pg.AllReduceSum(buf.data(), buf.size());
        std::vector<std::vector<float>> send(
            2, std::vector<float>(5, 2.0f));
        std::vector<std::vector<float>> recv;
        pg.AllToAllFloats(send, recv);
        if (rank == 0) {
            pg.SetTrace(nullptr);
        }
        // Post-detach traffic must not be recorded.
        pg.AllReduceSum(buf.data(), buf.size());
    });
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[0].op, CollectiveOp::kAllReduce);
    EXPECT_EQ(trace[0].bytes, 40u);
    EXPECT_EQ(trace[1].op, CollectiveOp::kAllToAll);
    EXPECT_EQ(trace[1].bytes, 40u);  // 2 peers x 5 floats
}

TEST(Collectives, ManySmallCollectivesInterleaveSafely)
{
    // Stress the shared boards: alternating collective types back to
    // back, validating every result.
    ThreadedWorld::Run(4, [&](int rank, ProcessGroup& pg) {
        for (int round = 0; round < 50; round++) {
            float x = static_cast<float>(rank + round);
            pg.AllReduceSum(&x, 1);
            float expected = 0.0f;
            for (int r = 0; r < 4; r++) {
                expected += static_cast<float>(r + round);
            }
            ASSERT_EQ(x, expected) << round;

            std::vector<float> gathered(4);
            const float mine = static_cast<float>(rank * 10 + round);
            pg.AllGather(&mine, 1, gathered.data());
            for (int r = 0; r < 4; r++) {
                ASSERT_EQ(gathered[r],
                          static_cast<float>(r * 10 + round));
            }
        }
    });
}

}  // namespace
}  // namespace neo::comm
