/**
 * @file
 * Tests for the single-process reference DLRM: configuration validation,
 * learning (loss and NE improve on the planted synthetic task), bitwise
 * run-to-run determinism, and checkpoint round trips.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <limits>

#include "common/rng.h"
#include "core/checkpoint.h"
#include "core/distributed_trainer.h"
#include "core/dlrm_config.h"
#include "core/dlrm_reference.h"
#include "data/dataset.h"
#include "ops/embedding_table.h"

namespace neo::core {
namespace {

data::DatasetConfig
MakeDataConfig(const DlrmConfig& model, uint64_t seed = 5)
{
    data::DatasetConfig config;
    config.num_dense = model.num_dense;
    config.seed = seed;
    for (const auto& t : model.tables) {
        config.features.push_back({t.rows, t.pooling, 1.05});
    }
    return config;
}

TEST(DlrmConfig, ValidationCatchesDimMismatch)
{
    DlrmConfig config = MakeSmallDlrmConfig();
    config.tables[0].dim = 99;
    EXPECT_THROW(config.Validate(), std::runtime_error);
}

TEST(DlrmConfig, DerivedShapes)
{
    DlrmConfig config = MakeSmallDlrmConfig(3, 100, 16);
    EXPECT_EQ(config.EmbeddingDim(), 16u);
    const auto bottom = config.BottomLayerSizes();
    EXPECT_EQ(bottom.front(), config.num_dense);
    EXPECT_EQ(bottom.back(), 16u);
    const auto top = config.TopLayerSizes();
    // Interaction output: d + (F+1)F/2 with F=3 -> 16 + 6 = 22.
    EXPECT_EQ(top.front(), 22u);
    EXPECT_EQ(top.back(), 1u);
    EXPECT_GT(config.TotalParams(), 0.0);
}

TEST(DlrmReference, LossDecreasesOnPlantedTask)
{
    DlrmConfig model = MakeSmallDlrmConfig(4, 200, 16);
    DlrmReference reference(model);
    data::SyntheticCtrDataset dataset(MakeDataConfig(model));

    double first_losses = 0.0, last_losses = 0.0;
    const int steps = 60;
    for (int s = 0; s < steps; s++) {
        const double loss = reference.TrainStep(dataset.NextBatch(64));
        if (s < 10) {
            first_losses += loss;
        }
        if (s >= steps - 10) {
            last_losses += loss;
        }
    }
    EXPECT_LT(last_losses, first_losses * 0.98);
}

TEST(DlrmReference, NeBeatsBaseRatePredictorAfterTraining)
{
    DlrmConfig model = MakeSmallDlrmConfig(4, 200, 16);
    DlrmReference reference(model);
    data::SyntheticCtrDataset dataset(MakeDataConfig(model));
    for (int s = 0; s < 80; s++) {
        reference.TrainStep(dataset.NextBatch(64));
    }
    NormalizedEntropy ne;
    for (int e = 0; e < 8; e++) {
        reference.Evaluate(dataset.NextBatch(64), ne);
    }
    EXPECT_LT(ne.Value(), 0.99);
}

TEST(DlrmReference, BitwiseDeterministicAcrossRuns)
{
    DlrmConfig model = MakeSmallDlrmConfig(3, 150, 16);
    auto run = [&]() {
        DlrmReference reference(model);
        data::SyntheticCtrDataset dataset(MakeDataConfig(model));
        for (int s = 0; s < 10; s++) {
            reference.TrainStep(dataset.NextBatch(32));
        }
        Matrix logits;
        data::SyntheticCtrDataset eval(MakeDataConfig(model, 123));
        reference.Predict(eval.NextBatch(32), logits);
        return logits;
    };
    const Matrix a = run();
    const Matrix b = run();
    EXPECT_TRUE(Matrix::Identical(a, b));
}

TEST(DlrmReference, BatchOrderInvariantEmbeddingUpdates)
{
    // The exact sparse optimizer makes the update independent of sample
    // order within a batch; MLP gradients are sums over samples computed
    // by GEMM, which reorders additions, so compare only the embedding
    // tables after one step on a permuted batch.
    DlrmConfig model = MakeSmallDlrmConfig(2, 100, 16);
    data::SyntheticCtrDataset dataset(MakeDataConfig(model));
    const data::Batch batch = dataset.NextBatch(16);

    // Reversed-sample copy of the batch.
    data::Batch reversed;
    reversed.dense = Matrix(16, batch.dense.cols());
    reversed.labels.resize(16);
    reversed.sparse = data::KeyedJagged::Empty(batch.sparse.num_tables, 16);
    std::vector<data::KeyedJagged> pieces;
    for (size_t b = 16; b-- > 0;) {
        pieces.push_back(batch.sparse.SliceBatch(b, b + 1));
    }
    reversed.sparse = data::ConcatBatches(pieces);
    for (size_t b = 0; b < 16; b++) {
        reversed.labels[b] = batch.labels[15 - b];
        for (size_t c = 0; c < batch.dense.cols(); c++) {
            reversed.dense(b, c) = batch.dense(15 - b, c);
        }
    }

    DlrmReference m1(model), m2(model);
    m1.TrainStep(batch);
    m2.TrainStep(reversed);
    for (size_t t = 0; t < model.tables.size(); t++) {
        // Gradients reaching the tables differ at float-rounding level
        // between the two orderings only through MLP backward GEMMs,
        // which are per-sample independent here; the sparse update itself
        // is order-invariant. Allow only tiny drift.
        EXPECT_LT(ops::EmbeddingTable::MaxAbsDiff(m1.embeddings().table(t),
                                                  m2.embeddings().table(t)),
                  1e-6f)
            << t;
    }
}

TEST(DlrmReference, CheckpointRoundTripIsExact)
{
    DlrmConfig model = MakeSmallDlrmConfig(3, 120, 16);
    DlrmReference reference(model);
    data::SyntheticCtrDataset dataset(MakeDataConfig(model));
    for (int s = 0; s < 5; s++) {
        reference.TrainStep(dataset.NextBatch(32));
    }
    BinaryWriter writer;
    reference.Save(writer);

    DlrmReference restored(model);
    EXPECT_FALSE(DlrmReference::Identical(reference, restored));
    BinaryReader reader(writer.buffer());
    restored.Load(reader);
    EXPECT_TRUE(DlrmReference::Identical(reference, restored));

    // Restored model predicts identically.
    data::SyntheticCtrDataset eval(MakeDataConfig(model, 321));
    const data::Batch batch = eval.NextBatch(16);
    Matrix l1, l2;
    reference.Predict(batch, l1);
    restored.Predict(batch, l2);
    EXPECT_TRUE(Matrix::Identical(l1, l2));
}

TEST(DlrmReference, Fp16EmbeddingsStillLearn)
{
    DlrmConfig model = MakeSmallDlrmConfig(3, 150, 16);
    for (auto& t : model.tables) {
        t.precision = Precision::kFp16;
    }
    DlrmReference reference(model);
    data::SyntheticCtrDataset dataset(MakeDataConfig(model));
    double first = 0.0, last = 0.0;
    for (int s = 0; s < 60; s++) {
        const double loss = reference.TrainStep(dataset.NextBatch(64));
        if (s < 10) {
            first += loss;
        }
        if (s >= 50) {
            last += loss;
        }
    }
    EXPECT_LT(last, first);
}

// ------------------------------------------------------- retry backoff

TEST(RetryBackoff, DoublesPerAttemptUpToCap)
{
    using std::chrono::milliseconds;
    DistributedOptions options;
    options.retry_backoff = milliseconds(10);
    options.max_retry_backoff = milliseconds(65);
    EXPECT_EQ(RetryBackoffDelay(options, 1), milliseconds(10));
    EXPECT_EQ(RetryBackoffDelay(options, 2), milliseconds(20));
    EXPECT_EQ(RetryBackoffDelay(options, 3), milliseconds(40));
    // 80 would exceed the cap; clamp, and stay clamped after.
    EXPECT_EQ(RetryBackoffDelay(options, 4), milliseconds(65));
    EXPECT_EQ(RetryBackoffDelay(options, 5), milliseconds(65));
}

TEST(RetryBackoff, LargeAttemptCountsDoNotOverflow)
{
    // The pre-fix code computed `backoff << (attempt - 1)`, which is
    // undefined behaviour past 63 attempts and wrapped to garbage (e.g. a
    // zero or negative sleep) long before that. The clamped ladder must
    // saturate instead, for any attempt count.
    using std::chrono::milliseconds;
    DistributedOptions options;
    options.retry_backoff = milliseconds(10);
    options.max_retry_backoff = milliseconds(2000);
    EXPECT_EQ(RetryBackoffDelay(options, 64), milliseconds(2000));
    EXPECT_EQ(RetryBackoffDelay(options, 400), milliseconds(2000));
    EXPECT_EQ(RetryBackoffDelay(options, std::numeric_limits<int>::max()),
              milliseconds(2000));
}

TEST(RetryBackoff, ZeroBaseMeansNoSleep)
{
    using std::chrono::milliseconds;
    DistributedOptions options;
    options.retry_backoff = milliseconds(0);
    EXPECT_EQ(RetryBackoffDelay(options, 1), milliseconds(0));
    EXPECT_EQ(RetryBackoffDelay(options, 100), milliseconds(0));
}

TEST(RetryBackoff, CapBelowBaseStillHonoursBase)
{
    // A misconfigured cap below the base must not produce a zero or
    // negative sleep; the base wins.
    using std::chrono::milliseconds;
    DistributedOptions options;
    options.retry_backoff = milliseconds(50);
    options.max_retry_backoff = milliseconds(10);
    EXPECT_EQ(RetryBackoffDelay(options, 1), milliseconds(50));
    EXPECT_EQ(RetryBackoffDelay(options, 8), milliseconds(50));
}

// ------------------------------------- checkpoint robustness & storage

namespace {

/** A small trained-ish table plus its baseline and two deltas. */
struct CheckpointFixture {
    ops::EmbeddingTable table{64, 8};
    std::vector<uint8_t> baseline;
    std::vector<std::vector<uint8_t>> deltas;

    CheckpointFixture()
    {
        Rng rng(17);
        table.InitUniform(rng);
        DeltaCheckpointer checkpointer(&table);
        baseline = checkpointer.WriteBaseline();
        std::vector<float> row(8);
        for (int step = 0; step < 2; step++) {
            for (int64_t r : {int64_t(3), int64_t(40 + step)}) {
                table.ReadRow(r, row.data());
                for (auto& x : row) {
                    x += 0.5f;
                }
                table.WriteRow(r, row.data());
            }
            deltas.push_back(checkpointer.WriteDelta());
        }
    }
};

}  // namespace

TEST(DeltaCheckpointRobustness, TruncatedBaselineRejected)
{
    CheckpointFixture fx;
    for (const size_t keep : {size_t(0), size_t(3), size_t(11),
                              fx.baseline.size() - 1}) {
        auto truncated = fx.baseline;
        truncated.resize(keep);
        EXPECT_THROW(DeltaCheckpointer::Restore(truncated, fx.deltas),
                     std::runtime_error)
            << "kept " << keep << " bytes";
    }
}

TEST(DeltaCheckpointRobustness, TruncatedDeltaRejected)
{
    CheckpointFixture fx;
    auto deltas = fx.deltas;
    deltas.back().resize(deltas.back().size() / 2);
    EXPECT_THROW(DeltaCheckpointer::Restore(fx.baseline, deltas),
                 std::runtime_error);
}

TEST(DeltaCheckpointRobustness, HugeLengthPrefixRejectedNotAllocated)
{
    // A corrupt length prefix claiming ~2^61 elements must be rejected by
    // the bounds check (std::runtime_error), not passed to the allocator
    // (std::bad_alloc / OOM kill).
    CheckpointFixture fx;
    auto delta = fx.deltas.front();
    // Layout: magic u32, rows i64, dim i64, seq u64, then the changed-row
    // vector's u64 length prefix at offset 28.
    const uint64_t huge = uint64_t(1) << 61;
    std::memcpy(delta.data() + 28, &huge, sizeof(huge));
    EXPECT_THROW(DeltaCheckpointer::Restore(fx.baseline, {delta}),
                 std::runtime_error);
}

TEST(DeltaCheckpointRobustness, MismatchedDimDeltaRejected)
{
    CheckpointFixture fx;
    // A delta recorded against a differently-shaped table (same rows,
    // twice the dim) cannot be applied to fx's baseline.
    Rng rng(18);
    ops::EmbeddingTable wide(64, 16);
    wide.InitUniform(rng);
    DeltaCheckpointer wide_checkpointer(&wide);
    wide_checkpointer.WriteBaseline();
    std::vector<float> row(16, 1.0f);
    wide.WriteRow(5, row.data());
    EXPECT_THROW(DeltaCheckpointer::Restore(
                     fx.baseline, {wide_checkpointer.WriteDelta()}),
                 std::runtime_error);
}

TEST(DeltaCheckpointRobustness, OutOfOrderDeltasRejected)
{
    CheckpointFixture fx;
    ASSERT_EQ(fx.deltas.size(), 2u);
    // Swapped chain: the sequence stamp catches the reordering instead of
    // silently restoring stale row contents.
    EXPECT_THROW(
        DeltaCheckpointer::Restore(fx.baseline,
                                   {fx.deltas[1], fx.deltas[0]}),
        std::runtime_error);
    // Replaying the same delta twice is equally out of order.
    EXPECT_THROW(
        DeltaCheckpointer::Restore(fx.baseline,
                                   {fx.deltas[0], fx.deltas[0]}),
        std::runtime_error);
    // The untampered chain still restores.
    const ops::EmbeddingTable restored =
        DeltaCheckpointer::Restore(fx.baseline, fx.deltas);
    EXPECT_TRUE(ops::EmbeddingTable::Identical(fx.table, restored));
}

TEST(DeltaCheckpointRobustness, RowIdOutOfRangeRejected)
{
    CheckpointFixture fx;
    // Patch the first changed-row id (offset 36: after magic u32,
    // rows/dim i64, seq u64 and the row vector's u64 length prefix) to
    // point past the table, keeping the declared shape valid.
    auto delta = fx.deltas.front();
    const int64_t bogus = 1000;
    std::memcpy(delta.data() + 36, &bogus, sizeof(bogus));
    EXPECT_THROW(DeltaCheckpointer::Restore(fx.baseline, {delta}),
                 std::runtime_error);
}

TEST(CheckpointStore, BaselineResetsDeltaChain)
{
    CheckpointStore store;
    EXPECT_TRUE(store.Ranks().empty());
    EXPECT_THROW(store.Baseline(0), std::runtime_error);
    // Appending a delta before any baseline is a protocol error.
    EXPECT_THROW(store.AppendDelta(0, {1, 2, 3}), std::runtime_error);

    store.PutBaseline(0, {1, 2, 3, 4});
    store.AppendDelta(0, {5, 6});
    store.PutBaseline(1, {7});
    EXPECT_EQ(store.Ranks(), (std::vector<int>{0, 1}));
    EXPECT_EQ(store.Baseline(0), (std::vector<uint8_t>{1, 2, 3, 4}));
    EXPECT_EQ(store.Deltas(0).size(), 1u);
    EXPECT_EQ(store.TotalBytes(), 7u);

    // A fresh baseline starts a new chain (the old deltas are obsolete).
    store.PutBaseline(0, {9, 9});
    EXPECT_TRUE(store.Deltas(0).empty());
    EXPECT_EQ(store.TotalBytes(), 3u);
}

}  // namespace
}  // namespace neo::core
