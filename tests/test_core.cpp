/**
 * @file
 * Tests for the single-process reference DLRM: configuration validation,
 * learning (loss and NE improve on the planted synthetic task), bitwise
 * run-to-run determinism, and checkpoint round trips.
 */
#include <gtest/gtest.h>

#include "core/dlrm_config.h"
#include "core/dlrm_reference.h"
#include "data/dataset.h"

namespace neo::core {
namespace {

data::DatasetConfig
MakeDataConfig(const DlrmConfig& model, uint64_t seed = 5)
{
    data::DatasetConfig config;
    config.num_dense = model.num_dense;
    config.seed = seed;
    for (const auto& t : model.tables) {
        config.features.push_back({t.rows, t.pooling, 1.05});
    }
    return config;
}

TEST(DlrmConfig, ValidationCatchesDimMismatch)
{
    DlrmConfig config = MakeSmallDlrmConfig();
    config.tables[0].dim = 99;
    EXPECT_THROW(config.Validate(), std::runtime_error);
}

TEST(DlrmConfig, DerivedShapes)
{
    DlrmConfig config = MakeSmallDlrmConfig(3, 100, 16);
    EXPECT_EQ(config.EmbeddingDim(), 16u);
    const auto bottom = config.BottomLayerSizes();
    EXPECT_EQ(bottom.front(), config.num_dense);
    EXPECT_EQ(bottom.back(), 16u);
    const auto top = config.TopLayerSizes();
    // Interaction output: d + (F+1)F/2 with F=3 -> 16 + 6 = 22.
    EXPECT_EQ(top.front(), 22u);
    EXPECT_EQ(top.back(), 1u);
    EXPECT_GT(config.TotalParams(), 0.0);
}

TEST(DlrmReference, LossDecreasesOnPlantedTask)
{
    DlrmConfig model = MakeSmallDlrmConfig(4, 200, 16);
    DlrmReference reference(model);
    data::SyntheticCtrDataset dataset(MakeDataConfig(model));

    double first_losses = 0.0, last_losses = 0.0;
    const int steps = 60;
    for (int s = 0; s < steps; s++) {
        const double loss = reference.TrainStep(dataset.NextBatch(64));
        if (s < 10) {
            first_losses += loss;
        }
        if (s >= steps - 10) {
            last_losses += loss;
        }
    }
    EXPECT_LT(last_losses, first_losses * 0.98);
}

TEST(DlrmReference, NeBeatsBaseRatePredictorAfterTraining)
{
    DlrmConfig model = MakeSmallDlrmConfig(4, 200, 16);
    DlrmReference reference(model);
    data::SyntheticCtrDataset dataset(MakeDataConfig(model));
    for (int s = 0; s < 80; s++) {
        reference.TrainStep(dataset.NextBatch(64));
    }
    NormalizedEntropy ne;
    for (int e = 0; e < 8; e++) {
        reference.Evaluate(dataset.NextBatch(64), ne);
    }
    EXPECT_LT(ne.Value(), 0.99);
}

TEST(DlrmReference, BitwiseDeterministicAcrossRuns)
{
    DlrmConfig model = MakeSmallDlrmConfig(3, 150, 16);
    auto run = [&]() {
        DlrmReference reference(model);
        data::SyntheticCtrDataset dataset(MakeDataConfig(model));
        for (int s = 0; s < 10; s++) {
            reference.TrainStep(dataset.NextBatch(32));
        }
        Matrix logits;
        data::SyntheticCtrDataset eval(MakeDataConfig(model, 123));
        reference.Predict(eval.NextBatch(32), logits);
        return logits;
    };
    const Matrix a = run();
    const Matrix b = run();
    EXPECT_TRUE(Matrix::Identical(a, b));
}

TEST(DlrmReference, BatchOrderInvariantEmbeddingUpdates)
{
    // The exact sparse optimizer makes the update independent of sample
    // order within a batch; MLP gradients are sums over samples computed
    // by GEMM, which reorders additions, so compare only the embedding
    // tables after one step on a permuted batch.
    DlrmConfig model = MakeSmallDlrmConfig(2, 100, 16);
    data::SyntheticCtrDataset dataset(MakeDataConfig(model));
    const data::Batch batch = dataset.NextBatch(16);

    // Reversed-sample copy of the batch.
    data::Batch reversed;
    reversed.dense = Matrix(16, batch.dense.cols());
    reversed.labels.resize(16);
    reversed.sparse = data::KeyedJagged::Empty(batch.sparse.num_tables, 16);
    std::vector<data::KeyedJagged> pieces;
    for (size_t b = 16; b-- > 0;) {
        pieces.push_back(batch.sparse.SliceBatch(b, b + 1));
    }
    reversed.sparse = data::ConcatBatches(pieces);
    for (size_t b = 0; b < 16; b++) {
        reversed.labels[b] = batch.labels[15 - b];
        for (size_t c = 0; c < batch.dense.cols(); c++) {
            reversed.dense(b, c) = batch.dense(15 - b, c);
        }
    }

    DlrmReference m1(model), m2(model);
    m1.TrainStep(batch);
    m2.TrainStep(reversed);
    for (size_t t = 0; t < model.tables.size(); t++) {
        // Gradients reaching the tables differ at float-rounding level
        // between the two orderings only through MLP backward GEMMs,
        // which are per-sample independent here; the sparse update itself
        // is order-invariant. Allow only tiny drift.
        EXPECT_LT(ops::EmbeddingTable::MaxAbsDiff(m1.embeddings().table(t),
                                                  m2.embeddings().table(t)),
                  1e-6f)
            << t;
    }
}

TEST(DlrmReference, CheckpointRoundTripIsExact)
{
    DlrmConfig model = MakeSmallDlrmConfig(3, 120, 16);
    DlrmReference reference(model);
    data::SyntheticCtrDataset dataset(MakeDataConfig(model));
    for (int s = 0; s < 5; s++) {
        reference.TrainStep(dataset.NextBatch(32));
    }
    BinaryWriter writer;
    reference.Save(writer);

    DlrmReference restored(model);
    EXPECT_FALSE(DlrmReference::Identical(reference, restored));
    BinaryReader reader(writer.buffer());
    restored.Load(reader);
    EXPECT_TRUE(DlrmReference::Identical(reference, restored));

    // Restored model predicts identically.
    data::SyntheticCtrDataset eval(MakeDataConfig(model, 321));
    const data::Batch batch = eval.NextBatch(16);
    Matrix l1, l2;
    reference.Predict(batch, l1);
    restored.Predict(batch, l2);
    EXPECT_TRUE(Matrix::Identical(l1, l2));
}

TEST(DlrmReference, Fp16EmbeddingsStillLearn)
{
    DlrmConfig model = MakeSmallDlrmConfig(3, 150, 16);
    for (auto& t : model.tables) {
        t.precision = Precision::kFp16;
    }
    DlrmReference reference(model);
    data::SyntheticCtrDataset dataset(MakeDataConfig(model));
    double first = 0.0, last = 0.0;
    for (int s = 0; s < 60; s++) {
        const double loss = reference.TrainStep(dataset.NextBatch(64));
        if (s < 10) {
            first += loss;
        }
        if (s >= 50) {
            last += loss;
        }
    }
    EXPECT_LT(last, first);
}

}  // namespace
}  // namespace neo::core
