/**
 * @file
 * Integration tests for the distributed hybrid-parallel trainer: agreement
 * with the single-process reference, bitwise run-to-run determinism,
 * replica consistency of data-parallel tables, and behaviour under every
 * sharding scheme and quantized communication.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "comm/fault.h"
#include "comm/threaded_process_group.h"
#include "core/checkpoint.h"
#include "core/distributed_trainer.h"
#include "core/dlrm_config.h"
#include "core/dlrm_reference.h"
#include "core/elastic.h"
#include "core/pipeline.h"
#include "data/dataset.h"
#include "sharding/planner.h"

namespace neo {
namespace {

using core::DistributedDlrm;
using core::DistributedOptions;
using core::DlrmConfig;
using core::DlrmReference;

/** Dataset config matching a DlrmConfig's tables. */
data::DatasetConfig
MakeDataConfig(const DlrmConfig& model, uint64_t seed = 99)
{
    data::DatasetConfig config;
    config.num_dense = model.num_dense;
    config.seed = seed;
    for (const auto& t : model.tables) {
        config.features.push_back({t.rows, t.pooling, 1.05});
    }
    return config;
}

/** Build a plan with explicit scheme control. */
sharding::ShardingPlan
MakePlan(const DlrmConfig& model, int workers, bool allow_cw, bool allow_dp,
         bool allow_rw, double hbm_bytes = 1e12)
{
    sharding::PlannerOptions options;
    options.topo.num_workers = workers;
    options.topo.workers_per_node = workers;
    options.global_batch = 64;
    options.hbm_bytes_per_worker = hbm_bytes;
    options.allow_column_wise = allow_cw;
    options.allow_data_parallel = allow_dp;
    options.allow_row_wise = allow_rw;
    options.cw_min_dim = 16;
    options.cw_shard_dim = 8;
    sharding::ShardingPlanner planner(options);
    return planner.Plan(model.tables);
}

/** Force every table into a given scheme (bypasses the chooser). */
sharding::ShardingPlan
ForcedPlan(const DlrmConfig& model, int workers, sharding::Scheme scheme)
{
    sharding::ShardingPlan plan;
    plan.worker_cost.assign(workers, 0.0);
    plan.worker_memory.assign(workers, 0.0);
    for (size_t t = 0; t < model.tables.size(); t++) {
        const auto& table = model.tables[t];
        switch (scheme) {
          case sharding::Scheme::kTableWise:
          case sharding::Scheme::kDataParallel: {
            sharding::Shard shard;
            shard.table = static_cast<int>(t);
            shard.scheme = scheme;
            shard.row_end = table.rows;
            shard.col_end = table.dim;
            shard.worker = static_cast<int>(t) % workers;
            plan.shards.push_back(shard);
            break;
          }
          case sharding::Scheme::kRowWise: {
            for (int s = 0; s < workers; s++) {
                sharding::Shard shard;
                shard.table = static_cast<int>(t);
                shard.scheme = scheme;
                shard.row_begin = table.rows * s / workers;
                shard.row_end = table.rows * (s + 1) / workers;
                shard.col_end = table.dim;
                shard.worker = s;
                plan.shards.push_back(shard);
            }
            break;
          }
          case sharding::Scheme::kColumnWise: {
            const int64_t half = table.dim / 2;
            for (int s = 0; s < 2; s++) {
                sharding::Shard shard;
                shard.table = static_cast<int>(t);
                shard.scheme = scheme;
                shard.row_end = table.rows;
                shard.col_begin = s == 0 ? 0 : half;
                shard.col_end = s == 0 ? half : table.dim;
                shard.worker = (static_cast<int>(t) + s) % workers;
                plan.shards.push_back(shard);
            }
            break;
          }
          default:
            ADD_FAILURE() << "unsupported forced scheme";
        }
    }
    return plan;
}

/** Run W workers over `steps` global batches; returns final local logits
 *  on a held-out batch, gathered in rank order. */
Matrix
TrainDistributed(const DlrmConfig& model, const sharding::ShardingPlan& plan,
                 int workers, int steps, size_t global_batch,
                 const DistributedOptions& options = {})
{
    const size_t local_batch = global_batch / workers;
    Matrix all_logits(global_batch, 1);
    comm::ThreadedWorld::Run(workers, [&](int rank, comm::ProcessGroup& pg) {
        DistributedDlrm trainer(model, plan, pg, options);
        // Every worker generates the identical global stream and carves
        // out its slice, so different W values see the same global data.
        data::SyntheticCtrDataset dataset(MakeDataConfig(model));
        for (int s = 0; s < steps; s++) {
            data::Batch global = dataset.NextBatch(global_batch);
            data::Batch local;
            local.dense = Matrix(local_batch, global.dense.cols());
            for (size_t b = 0; b < local_batch; b++) {
                for (size_t c = 0; c < global.dense.cols(); c++) {
                    local.dense(b, c) =
                        global.dense(rank * local_batch + b, c);
                }
            }
            local.sparse = global.sparse.SliceBatch(
                rank * local_batch, (rank + 1) * local_batch);
            local.labels.assign(
                global.labels.begin() + rank * local_batch,
                global.labels.begin() + (rank + 1) * local_batch);
            trainer.TrainStep(local);
        }
        // Held-out evaluation batch, same slicing.
        data::Batch eval = dataset.NextBatch(global_batch);
        data::Batch local;
        local.dense = Matrix(local_batch, eval.dense.cols());
        for (size_t b = 0; b < local_batch; b++) {
            for (size_t c = 0; c < eval.dense.cols(); c++) {
                local.dense(b, c) = eval.dense(rank * local_batch + b, c);
            }
        }
        local.sparse =
            eval.sparse.SliceBatch(rank * local_batch,
                                   (rank + 1) * local_batch);
        local.labels.assign(eval.labels.begin() + rank * local_batch,
                            eval.labels.begin() + (rank + 1) * local_batch);
        Matrix logits;
        trainer.Predict(local, logits);
        for (size_t b = 0; b < local_batch; b++) {
            all_logits(rank * local_batch + b, 0) = logits(b, 0);
        }
    });
    return all_logits;
}

/** Reference logits after the same global-batch schedule. */
Matrix
TrainReference(const DlrmConfig& model, int steps, size_t global_batch)
{
    DlrmReference reference(model);
    data::SyntheticCtrDataset dataset(MakeDataConfig(model));
    for (int s = 0; s < steps; s++) {
        data::Batch batch = dataset.NextBatch(global_batch);
        reference.TrainStep(batch);
    }
    data::Batch eval = dataset.NextBatch(global_batch);
    Matrix logits;
    reference.Predict(eval, logits);
    return logits;
}

TEST(Distributed, FirstForwardMatchesReferenceTableWise)
{
    DlrmConfig model = core::MakeSmallDlrmConfig(4, 128, 16);
    const int workers = 4;
    const sharding::ShardingPlan plan =
        ForcedPlan(model, workers, sharding::Scheme::kTableWise);
    const Matrix dist = TrainDistributed(model, plan, workers, 0, 32);
    const Matrix ref = TrainReference(model, 0, 32);
    // Table-wise pooling runs in the same per-sample order as the
    // reference, so the untrained forward pass is bitwise identical.
    EXPECT_TRUE(Matrix::Identical(dist, ref))
        << "max diff " << Matrix::MaxAbsDiff(dist, ref);
}

TEST(Distributed, TrainingTracksReferenceTableWise)
{
    DlrmConfig model = core::MakeSmallDlrmConfig(4, 128, 16);
    const int workers = 4;
    const sharding::ShardingPlan plan =
        ForcedPlan(model, workers, sharding::Scheme::kTableWise);
    const Matrix dist = TrainDistributed(model, plan, workers, 5, 32);
    const Matrix ref = TrainReference(model, 5, 32);
    EXPECT_LT(Matrix::MaxAbsDiff(dist, ref), 2e-3);
}

TEST(Distributed, TrainingTracksReferenceRowWise)
{
    DlrmConfig model = core::MakeSmallDlrmConfig(3, 200, 16);
    const int workers = 4;
    const sharding::ShardingPlan plan =
        ForcedPlan(model, workers, sharding::Scheme::kRowWise);
    const Matrix dist = TrainDistributed(model, plan, workers, 5, 32);
    const Matrix ref = TrainReference(model, 5, 32);
    EXPECT_LT(Matrix::MaxAbsDiff(dist, ref), 2e-3);
}

TEST(Distributed, TrainingTracksReferenceDataParallel)
{
    DlrmConfig model = core::MakeSmallDlrmConfig(3, 100, 16);
    const int workers = 2;
    const sharding::ShardingPlan plan =
        ForcedPlan(model, workers, sharding::Scheme::kDataParallel);
    const Matrix dist = TrainDistributed(model, plan, workers, 5, 32);
    const Matrix ref = TrainReference(model, 5, 32);
    EXPECT_LT(Matrix::MaxAbsDiff(dist, ref), 2e-3);
}

TEST(Distributed, ColumnWiseForwardMatchesReference)
{
    DlrmConfig model = core::MakeSmallDlrmConfig(3, 100, 16);
    const int workers = 2;
    const sharding::ShardingPlan plan =
        ForcedPlan(model, workers, sharding::Scheme::kColumnWise);
    // Forward is exact for CW (no partial-sum reordering); training
    // diverges slightly because row-wise AdaGrad state is per column
    // shard (Sec. 4.2.3), so only the forward pass is compared.
    const Matrix dist = TrainDistributed(model, plan, workers, 0, 32);
    const Matrix ref = TrainReference(model, 0, 32);
    EXPECT_TRUE(Matrix::Identical(dist, ref))
        << "max diff " << Matrix::MaxAbsDiff(dist, ref);
}

TEST(Distributed, ColumnWiseWithSgdTracksReference)
{
    // With a stateless sparse optimizer the column split is numerically
    // transparent, so CW training must track the reference tightly.
    DlrmConfig model = core::MakeSmallDlrmConfig(3, 100, 16);
    model.sparse_optimizer.kind = ops::SparseOptimizerKind::kSgd;
    const int workers = 2;
    const sharding::ShardingPlan plan =
        ForcedPlan(model, workers, sharding::Scheme::kColumnWise);
    const Matrix dist = TrainDistributed(model, plan, workers, 5, 32);
    const Matrix ref = TrainReference(model, 5, 32);
    EXPECT_LT(Matrix::MaxAbsDiff(dist, ref), 2e-3);
}

TEST(Distributed, ColumnWiseRowWiseAdaGradDivergesAsDocumented)
{
    // Sec. 4.2.3: a column-sharded table under row-wise AdaGrad keeps an
    // independent moment per shard instead of one per row, so training
    // deviates measurably from the unsharded reference. This pins the
    // documented behaviour (and would catch an accidental "fix" that
    // silently changed semantics).
    DlrmConfig model = core::MakeSmallDlrmConfig(3, 100, 16);
    ASSERT_EQ(model.sparse_optimizer.kind,
              ops::SparseOptimizerKind::kRowWiseAdaGrad);
    const int workers = 2;
    const sharding::ShardingPlan plan =
        ForcedPlan(model, workers, sharding::Scheme::kColumnWise);
    const Matrix dist = TrainDistributed(model, plan, workers, 5, 32);
    const Matrix ref = TrainReference(model, 5, 32);
    const float diff = Matrix::MaxAbsDiff(dist, ref);
    EXPECT_GT(diff, 1e-4);  // the deviation is real...
    EXPECT_LT(diff, 1.0);   // ...but training stays in the same basin
}

TEST(Distributed, RunToRunBitwiseDeterminism)
{
    DlrmConfig model = core::MakeSmallDlrmConfig(4, 150, 16);
    const int workers = 4;
    const sharding::ShardingPlan plan =
        MakePlan(model, workers, true, true, true);
    ASSERT_TRUE(plan.feasible);
    const Matrix run1 = TrainDistributed(model, plan, workers, 4, 32);
    const Matrix run2 = TrainDistributed(model, plan, workers, 4, 32);
    EXPECT_TRUE(Matrix::Identical(run1, run2));
}

TEST(Distributed, DifferentWorkerCountsAgreeClosely)
{
    DlrmConfig model = core::MakeSmallDlrmConfig(4, 150, 16);
    const sharding::ShardingPlan plan2 =
        ForcedPlan(model, 2, sharding::Scheme::kTableWise);
    const sharding::ShardingPlan plan4 =
        ForcedPlan(model, 4, sharding::Scheme::kTableWise);
    const Matrix w2 = TrainDistributed(model, plan2, 2, 5, 32);
    const Matrix w4 = TrainDistributed(model, plan4, 4, 5, 32);
    // Synchronous semantics: only float summation order differs.
    EXPECT_LT(Matrix::MaxAbsDiff(w2, w4), 2e-3);
}

TEST(Distributed, DpReplicasStayIdentical)
{
    DlrmConfig model = core::MakeSmallDlrmConfig(2, 80, 16);
    const int workers = 2;
    const sharding::ShardingPlan plan =
        ForcedPlan(model, workers, sharding::Scheme::kDataParallel);

    std::vector<std::vector<float>> table_bytes(workers);
    comm::ThreadedWorld::Run(workers, [&](int rank, comm::ProcessGroup& pg) {
        DistributedDlrm trainer(model, plan, pg);
        data::SyntheticCtrDataset dataset(MakeDataConfig(model));
        const size_t local_batch = 8;
        for (int s = 0; s < 4; s++) {
            data::Batch global = dataset.NextBatch(local_batch * workers);
            data::Batch local;
            local.dense = Matrix(local_batch, global.dense.cols());
            for (size_t b = 0; b < local_batch; b++) {
                for (size_t c = 0; c < global.dense.cols(); c++) {
                    local.dense(b, c) =
                        global.dense(rank * local_batch + b, c);
                }
            }
            local.sparse = global.sparse.SliceBatch(
                rank * local_batch, (rank + 1) * local_batch);
            local.labels.assign(
                global.labels.begin() + rank * local_batch,
                global.labels.begin() + (rank + 1) * local_batch);
            trainer.TrainStep(local);
        }
        // Serialize replica 0's parameters for comparison.
        ASSERT_GT(trainer.NumDpTables(), 0u);
        std::vector<float> row(
            static_cast<size_t>(trainer.dp_table(0).replica.dim()));
        for (int64_t r = 0; r < trainer.dp_table(0).replica.rows(); r++) {
            trainer.dp_table(0).replica.ReadRow(r, row.data());
            table_bytes[rank].insert(table_bytes[rank].end(), row.begin(),
                                     row.end());
        }
    });
    EXPECT_EQ(table_bytes[0], table_bytes[1]);
}

TEST(Distributed, QuantizedCommsStillTrain)
{
    DlrmConfig model = core::MakeSmallDlrmConfig(4, 150, 16);
    const int workers = 2;
    const sharding::ShardingPlan plan =
        ForcedPlan(model, workers, sharding::Scheme::kTableWise);
    DistributedOptions options;
    options.forward_alltoall = Precision::kFp16;
    options.backward_alltoall = Precision::kBf16;
    const Matrix quant = TrainDistributed(model, plan, workers, 5, 32,
                                          options);
    const Matrix ref = TrainReference(model, 5, 32);
    // Quantization perturbs but must not derail training.
    EXPECT_LT(Matrix::MaxAbsDiff(quant, ref), 0.3);
    // And it must actually change the wire contents vs FP32.
    const Matrix full = TrainDistributed(model, plan, workers, 5, 32);
    EXPECT_FALSE(Matrix::Identical(quant, full));
}

TEST(Distributed, PlannerPlanTrainsEndToEnd)
{
    DlrmConfig model = core::MakeSmallDlrmConfig(6, 300, 16);
    const int workers = 4;
    const sharding::ShardingPlan plan =
        MakePlan(model, workers, true, true, true);
    ASSERT_TRUE(plan.feasible) << plan.note;
    const Matrix dist = TrainDistributed(model, plan, workers, 6, 32);
    const Matrix ref = TrainReference(model, 6, 32);
    EXPECT_LT(Matrix::MaxAbsDiff(dist, ref), 5e-2);
}

TEST(Distributed, EvaluateComputesReasonableNe)
{
    DlrmConfig model = core::MakeSmallDlrmConfig(4, 150, 16);
    const int workers = 2;
    const sharding::ShardingPlan plan =
        ForcedPlan(model, workers, sharding::Scheme::kTableWise);
    std::vector<double> ne_values(workers);
    comm::ThreadedWorld::Run(workers, [&](int rank, comm::ProcessGroup& pg) {
        DistributedDlrm trainer(model, plan, pg);
        data::SyntheticCtrDataset dataset(MakeDataConfig(model));
        const size_t local_batch = 32;
        for (int s = 0; s < 30; s++) {
            data::Batch global = dataset.NextBatch(local_batch * workers);
            data::Batch local;
            local.dense = Matrix(local_batch, global.dense.cols());
            for (size_t b = 0; b < local_batch; b++) {
                for (size_t c = 0; c < global.dense.cols(); c++) {
                    local.dense(b, c) =
                        global.dense(rank * local_batch + b, c);
                }
            }
            local.sparse = global.sparse.SliceBatch(
                rank * local_batch, (rank + 1) * local_batch);
            local.labels.assign(
                global.labels.begin() + rank * local_batch,
                global.labels.begin() + (rank + 1) * local_batch);
            trainer.TrainStep(local);
        }
        NormalizedEntropy ne;
        for (int e = 0; e < 5; e++) {
            data::Batch eval = dataset.NextBatch(local_batch * workers);
            data::Batch local = [&] {
                data::Batch l;
                l.dense = Matrix(local_batch, eval.dense.cols());
                for (size_t b = 0; b < local_batch; b++) {
                    for (size_t c = 0; c < eval.dense.cols(); c++) {
                        l.dense(b, c) =
                            eval.dense(rank * local_batch + b, c);
                    }
                }
                l.sparse = eval.sparse.SliceBatch(
                    rank * local_batch, (rank + 1) * local_batch);
                l.labels.assign(
                    eval.labels.begin() + rank * local_batch,
                    eval.labels.begin() + (rank + 1) * local_batch);
                return l;
            }();
            trainer.Evaluate(local, ne);
        }
        ne_values[rank] = ne.Value();
    });
    // A trained model must beat the base-rate predictor (NE < 1).
    EXPECT_LT(ne_values[0], 1.0);
    EXPECT_LT(ne_values[1], 1.0);
}

TEST(Distributed, TableRowWiseTracksReference)
{
    // Hierarchical table-row-wise: rows split across the workers of one
    // node only (here the node spans all workers of the test world).
    DlrmConfig model = core::MakeSmallDlrmConfig(3, 240, 16);
    const int workers = 4;
    sharding::ShardingPlan plan;
    plan.worker_cost.assign(workers, 0.0);
    plan.worker_memory.assign(workers, 0.0);
    for (size_t t = 0; t < model.tables.size(); t++) {
        for (int s = 0; s < workers; s++) {
            sharding::Shard shard;
            shard.table = static_cast<int>(t);
            shard.scheme = sharding::Scheme::kTableRowWise;
            shard.row_begin = model.tables[t].rows * s / workers;
            shard.row_end = model.tables[t].rows * (s + 1) / workers;
            shard.col_end = model.tables[t].dim;
            shard.worker = s;
            plan.shards.push_back(shard);
        }
    }
    const Matrix dist = TrainDistributed(model, plan, workers, 5, 32);
    const Matrix ref = TrainReference(model, 5, 32);
    EXPECT_LT(Matrix::MaxAbsDiff(dist, ref), 2e-3);
}

TEST(Distributed, Fp16TablesTrainDistributed)
{
    DlrmConfig model = core::MakeSmallDlrmConfig(4, 150, 16);
    for (auto& t : model.tables) {
        t.precision = Precision::kFp16;
    }
    const int workers = 2;
    const sharding::ShardingPlan plan =
        ForcedPlan(model, workers, sharding::Scheme::kTableWise);
    // FP16 tables: distributed matches the (also FP16) reference closely.
    const Matrix dist = TrainDistributed(model, plan, workers, 5, 32);
    const Matrix ref = TrainReference(model, 5, 32);
    EXPECT_LT(Matrix::MaxAbsDiff(dist, ref), 2e-2);
}

TEST(Distributed, LocalCheckpointRoundTrip)
{
    DlrmConfig model = core::MakeSmallDlrmConfig(4, 150, 16);
    const int workers = 2;
    const sharding::ShardingPlan plan =
        MakePlan(model, workers, true, true, true);
    ASSERT_TRUE(plan.feasible);

    const size_t local_batch = 16;
    std::vector<std::vector<uint8_t>> checkpoints(workers);
    Matrix before(local_batch * workers, 1);
    Matrix after(local_batch * workers, 1);
    comm::ThreadedWorld::Run(workers, [&](int rank, comm::ProcessGroup& pg) {
        DistributedDlrm trainer(model, plan, pg);
        data::SyntheticCtrDataset dataset(MakeDataConfig(model));
        for (int s = 0; s < 3; s++) {
            data::Batch global = dataset.NextBatch(local_batch * workers);
            data::Batch local;
            local.dense = Matrix(local_batch, global.dense.cols());
            for (size_t b = 0; b < local_batch; b++) {
                for (size_t c = 0; c < global.dense.cols(); c++) {
                    local.dense(b, c) =
                        global.dense(rank * local_batch + b, c);
                }
            }
            local.sparse = global.sparse.SliceBatch(
                rank * local_batch, (rank + 1) * local_batch);
            local.labels.assign(
                global.labels.begin() + rank * local_batch,
                global.labels.begin() + (rank + 1) * local_batch);
            trainer.TrainStep(local);
        }
        BinaryWriter writer;
        trainer.SaveLocal(writer);
        checkpoints[rank] = writer.buffer();

        data::Batch eval = dataset.NextBatch(local_batch * workers);
        data::Batch local;
        local.dense = Matrix(local_batch, eval.dense.cols());
        for (size_t b = 0; b < local_batch; b++) {
            for (size_t c = 0; c < eval.dense.cols(); c++) {
                local.dense(b, c) = eval.dense(rank * local_batch + b, c);
            }
        }
        local.sparse = eval.sparse.SliceBatch(rank * local_batch,
                                              (rank + 1) * local_batch);
        local.labels.assign(eval.labels.begin() + rank * local_batch,
                            eval.labels.begin() +
                                (rank + 1) * local_batch);
        Matrix logits;
        trainer.Predict(local, logits);
        for (size_t b = 0; b < local_batch; b++) {
            before(rank * local_batch + b, 0) = logits(b, 0);
        }
    });

    // Fresh trainers restore the checkpoints and must predict identically.
    comm::ThreadedWorld::Run(workers, [&](int rank, comm::ProcessGroup& pg) {
        DistributedDlrm trainer(model, plan, pg);
        BinaryReader reader(checkpoints[rank]);
        trainer.LoadLocal(reader);

        data::SyntheticCtrDataset dataset(MakeDataConfig(model));
        for (int s = 0; s < 3; s++) {
            dataset.NextBatch(local_batch * workers);  // skip trained data
        }
        data::Batch eval = dataset.NextBatch(local_batch * workers);
        data::Batch local;
        local.dense = Matrix(local_batch, eval.dense.cols());
        for (size_t b = 0; b < local_batch; b++) {
            for (size_t c = 0; c < eval.dense.cols(); c++) {
                local.dense(b, c) = eval.dense(rank * local_batch + b, c);
            }
        }
        local.sparse = eval.sparse.SliceBatch(rank * local_batch,
                                              (rank + 1) * local_batch);
        local.labels.assign(eval.labels.begin() + rank * local_batch,
                            eval.labels.begin() +
                                (rank + 1) * local_batch);
        Matrix logits;
        trainer.Predict(local, logits);
        for (size_t b = 0; b < local_batch; b++) {
            after(rank * local_batch + b, 0) = logits(b, 0);
        }
    });
    EXPECT_TRUE(Matrix::Identical(before, after));
}

TEST(Distributed, TraceRecordsCollectiveSequence)
{
    DlrmConfig model = core::MakeSmallDlrmConfig(3, 100, 16);
    const int workers = 2;
    const sharding::ShardingPlan plan =
        ForcedPlan(model, workers, sharding::Scheme::kTableWise);
    std::vector<comm::TraceEvent> trace;
    comm::ThreadedWorld::Run(workers, [&](int rank, comm::ProcessGroup& pg) {
        if (rank == 0) {
            pg.SetTrace(&trace);
        }
        DistributedDlrm trainer(model, plan, pg);
        data::SyntheticCtrDataset dataset(MakeDataConfig(model));
        data::Batch global = dataset.NextBatch(32);
        data::Batch local;
        const size_t local_batch = 16;
        local.dense = Matrix(local_batch, global.dense.cols());
        for (size_t b = 0; b < local_batch; b++) {
            for (size_t c = 0; c < global.dense.cols(); c++) {
                local.dense(b, c) =
                    global.dense(rank * local_batch + b, c);
            }
        }
        local.sparse = global.sparse.SliceBatch(rank * local_batch,
                                                (rank + 1) * local_batch);
        local.labels.assign(global.labels.begin() + rank * local_batch,
                            global.labels.begin() +
                                (rank + 1) * local_batch);
        trainer.TrainStep(local);
    });
    // One step: input lengths+indices A2A, pooled A2A, loss AllReduce,
    // grad A2A, MLP AllReduce (+ DP exchanges if any).
    ASSERT_GE(trace.size(), 5u);
    int a2a = 0, ar = 0;
    for (const auto& event : trace) {
        a2a += event.op == comm::CollectiveOp::kAllToAll;
        ar += event.op == comm::CollectiveOp::kAllReduce;
    }
    EXPECT_GE(a2a, 4);  // lengths, indices, pooled, grads
    EXPECT_GE(ar, 2);   // loss + MLP grads
}

}  // namespace
}  // namespace neo

namespace neo {
namespace {

// ------------------------------------------------- failure injection

TEST(DistributedFailure, InfeasiblePlanRejectedAtConstruction)
{
    DlrmConfig model = core::MakeSmallDlrmConfig(2, 100, 16);
    sharding::ShardingPlan plan =
        ForcedPlan(model, 2, sharding::Scheme::kTableWise);
    plan.feasible = false;
    plan.note = "injected";
    comm::ThreadedWorld::Run(2, [&](int, comm::ProcessGroup& pg) {
        EXPECT_THROW(DistributedDlrm(model, plan, pg),
                     std::runtime_error);
    });
}

TEST(DistributedFailure, PlanForWrongWorldSizeRejected)
{
    DlrmConfig model = core::MakeSmallDlrmConfig(2, 100, 16);
    // A plan placed for 4 workers cannot run on a 2-rank group.
    const sharding::ShardingPlan plan =
        ForcedPlan(model, 4, sharding::Scheme::kRowWise);
    comm::ThreadedWorld::Run(2, [&](int, comm::ProcessGroup& pg) {
        EXPECT_THROW(DistributedDlrm(model, plan, pg),
                     std::runtime_error);
    });
}

TEST(DistributedFailure, CheckpointFromOtherRankRejected)
{
    DlrmConfig model = core::MakeSmallDlrmConfig(2, 100, 16);
    const sharding::ShardingPlan plan =
        ForcedPlan(model, 2, sharding::Scheme::kTableWise);
    std::vector<std::vector<uint8_t>> checkpoints(2);
    comm::ThreadedWorld::Run(2, [&](int rank, comm::ProcessGroup& pg) {
        DistributedDlrm trainer(model, plan, pg);
        BinaryWriter writer;
        trainer.SaveLocal(writer);
        checkpoints[rank] = writer.buffer();
    });
    comm::ThreadedWorld::Run(2, [&](int rank, comm::ProcessGroup& pg) {
        DistributedDlrm trainer(model, plan, pg);
        // Deliberately cross-load the OTHER rank's stream.
        BinaryReader reader(checkpoints[1 - rank]);
        EXPECT_THROW(trainer.LoadLocal(reader), std::runtime_error);
    });
}

TEST(DistributedFailure, MismatchedBatchConfigRejected)
{
    DlrmConfig model = core::MakeSmallDlrmConfig(2, 100, 16);
    const sharding::ShardingPlan plan =
        ForcedPlan(model, 1, sharding::Scheme::kTableWise);
    comm::ThreadedWorld::Run(1, [&](int, comm::ProcessGroup& pg) {
        DistributedDlrm trainer(model, plan, pg);
        // Batch with the wrong number of sparse features.
        data::Batch bad;
        bad.dense = Matrix(4, model.num_dense);
        bad.labels.assign(4, 0.0f);
        bad.sparse = data::KeyedJagged::Empty(model.tables.size() + 1, 4);
        EXPECT_THROW(trainer.TrainStep(bad), std::runtime_error);
    });
}

}  // namespace
}  // namespace neo

namespace neo {
namespace {

// -------------------------------- scheme x world-size sweep (TEST_P)

struct SweepParam {
    int workers;
    sharding::Scheme scheme;
};

class DistributedSweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(DistributedSweep, TracksReferenceAcrossSchemesAndWorlds)
{
    const auto& p = GetParam();
    // 240 rows: divisible by nothing special, so W=3 exercises uneven
    // row splits; batch 48 divides evenly by 2, 3 and 4.
    DlrmConfig model = core::MakeSmallDlrmConfig(3, 240, 16);
    const sharding::ShardingPlan plan =
        ForcedPlan(model, p.workers, p.scheme);
    const Matrix dist = TrainDistributed(model, plan, p.workers, 4, 48);
    const Matrix ref = TrainReference(model, 4, 48);
    EXPECT_LT(Matrix::MaxAbsDiff(dist, ref), 2e-3)
        << sharding::SchemeName(p.scheme) << " @" << p.workers;
}

INSTANTIATE_TEST_SUITE_P(
    SchemesByWorld, DistributedSweep,
    ::testing::Values(
        SweepParam{2, sharding::Scheme::kTableWise},
        SweepParam{3, sharding::Scheme::kTableWise},
        SweepParam{4, sharding::Scheme::kTableWise},
        SweepParam{2, sharding::Scheme::kRowWise},
        SweepParam{3, sharding::Scheme::kRowWise},
        SweepParam{4, sharding::Scheme::kRowWise},
        SweepParam{2, sharding::Scheme::kDataParallel},
        SweepParam{3, sharding::Scheme::kDataParallel}));

TEST(Distributed, MixedSchemePlanTrainsCloseToReference)
{
    // One table per scheme in a single plan: the full hybrid flow (input
    // bucketize + duplicate + passthrough, pooled copy + accumulate +
    // local, grads fan-out) in one step.
    DlrmConfig model = core::MakeSmallDlrmConfig(4, 200, 16);
    model.sparse_optimizer.kind = ops::SparseOptimizerKind::kSgd;
    const int workers = 4;
    sharding::ShardingPlan plan;
    plan.worker_cost.assign(workers, 0.0);
    plan.worker_memory.assign(workers, 0.0);

    {  // table 0: row-wise across all workers
        for (int s = 0; s < workers; s++) {
            sharding::Shard shard;
            shard.table = 0;
            shard.scheme = sharding::Scheme::kRowWise;
            shard.row_begin = model.tables[0].rows * s / workers;
            shard.row_end = model.tables[0].rows * (s + 1) / workers;
            shard.col_end = model.tables[0].dim;
            shard.worker = s;
            plan.shards.push_back(shard);
        }
    }
    {  // table 1: column-wise halves on workers 1 and 2
        for (int s = 0; s < 2; s++) {
            sharding::Shard shard;
            shard.table = 1;
            shard.scheme = sharding::Scheme::kColumnWise;
            shard.row_end = model.tables[1].rows;
            shard.col_begin = s * model.tables[1].dim / 2;
            shard.col_end = (s + 1) * model.tables[1].dim / 2;
            shard.worker = 1 + s;
            plan.shards.push_back(shard);
        }
    }
    {  // table 2: data-parallel replica everywhere
        sharding::Shard shard;
        shard.table = 2;
        shard.scheme = sharding::Scheme::kDataParallel;
        shard.row_end = model.tables[2].rows;
        shard.col_end = model.tables[2].dim;
        plan.shards.push_back(shard);
    }
    {  // table 3: table-wise on worker 3
        sharding::Shard shard;
        shard.table = 3;
        shard.scheme = sharding::Scheme::kTableWise;
        shard.row_end = model.tables[3].rows;
        shard.col_end = model.tables[3].dim;
        shard.worker = 3;
        plan.shards.push_back(shard);
    }

    const Matrix dist = TrainDistributed(model, plan, workers, 5, 32);
    const Matrix ref = TrainReference(model, 5, 32);
    // SGD sparse optimizer: every scheme (including CW) is numerically
    // transparent, so the tolerance stays tight.
    EXPECT_LT(Matrix::MaxAbsDiff(dist, ref), 2e-3);
}

/**
 * A transient kill injected into the first collective of a training step
 * (the AllToAll of PrepareInput — before any parameter mutation) is
 * absorbed by TrainStepWithRecovery on every rank: one retry after a
 * recovery rendezvous, and the surviving step trains exactly like a
 * fault-free run.
 */
TEST(Distributed, TransientFaultRecoveredByStepRetry)
{
    using std::chrono::milliseconds;
    DlrmConfig model = core::MakeSmallDlrmConfig(3, 100, 16);
    const int workers = 3;
    const size_t global_batch = 24;
    const size_t local_batch = global_batch / workers;
    const sharding::ShardingPlan plan =
        ForcedPlan(model, workers, sharding::Scheme::kTableWise);

    DistributedOptions options;
    options.max_step_retries = 2;
    options.retry_backoff = milliseconds(1);
    options.recover_timeout = milliseconds(5000);

    comm::FaultInjector injector;
    // Rank 1's first collective call is PrepareInput's length exchange,
    // issued before the trainer mutates any state, so a retry restarts
    // the step from scratch without divergence.
    comm::FaultSpec spec;
    spec.rank = 1;
    spec.call_index = 0;
    spec.kind = comm::FaultKind::kKill;
    spec.transient = true;
    injector.Arm(spec);

    comm::ThreadedWorld::Options world_options;
    world_options.injector = &injector;
    world_options.barrier_timeout = milliseconds(20000);

    std::vector<core::StepResult> results(workers);
    std::vector<double> clean_loss(workers, 0.0);
    comm::ThreadedWorld::Run(
        workers, world_options, [&](int rank, comm::ProcessGroup& pg) {
            DistributedDlrm trainer(model, plan, pg, options);
            data::SyntheticCtrDataset dataset(MakeDataConfig(model));
            data::Batch global = dataset.NextBatch(global_batch);
            data::Batch local;
            local.dense = Matrix(local_batch, global.dense.cols());
            for (size_t b = 0; b < local_batch; b++) {
                for (size_t c = 0; c < global.dense.cols(); c++) {
                    local.dense(b, c) =
                        global.dense(rank * local_batch + b, c);
                }
            }
            local.sparse = global.sparse.SliceBatch(
                rank * local_batch, (rank + 1) * local_batch);
            local.labels.assign(
                global.labels.begin() + rank * local_batch,
                global.labels.begin() + (rank + 1) * local_batch);
            results[rank] = trainer.TrainStepWithRecovery(local);
        });

    // Fault-free run of the identical step, for loss comparison.
    comm::ThreadedWorld::Run(
        workers, [&](int rank, comm::ProcessGroup& pg) {
            DistributedDlrm trainer(model, plan, pg, options);
            data::SyntheticCtrDataset dataset(MakeDataConfig(model));
            data::Batch global = dataset.NextBatch(global_batch);
            data::Batch local;
            local.dense = Matrix(local_batch, global.dense.cols());
            for (size_t b = 0; b < local_batch; b++) {
                for (size_t c = 0; c < global.dense.cols(); c++) {
                    local.dense(b, c) =
                        global.dense(rank * local_batch + b, c);
                }
            }
            local.sparse = global.sparse.SliceBatch(
                rank * local_batch, (rank + 1) * local_batch);
            local.labels.assign(
                global.labels.begin() + rank * local_batch,
                global.labels.begin() + (rank + 1) * local_batch);
            clean_loss[rank] = trainer.TrainStep(local);
        });

    EXPECT_EQ(injector.Fired().size(), 1u);
    for (int r = 0; r < workers; r++) {
        SCOPED_TRACE("rank " + std::to_string(r));
        EXPECT_TRUE(results[r].ok);
        EXPECT_EQ(results[r].attempts, 2);
        ASSERT_EQ(results[r].failures.size(), 1u);
        EXPECT_EQ(results[r].failures[0].failed_rank, 1);
        EXPECT_TRUE(results[r].failures[0].transient);
        // Nothing was mutated before the injected kill, so the recovered
        // step is bitwise identical to the fault-free one.
        EXPECT_EQ(results[r].loss, clean_loss[r]);
    }
}

/**
 * A permanent failure exhausts the retry budget and surfaces as a
 * structured failure report (ok == false) on the surviving ranks
 * instead of a deadlock or an unhandled exception.
 */
TEST(Distributed, PermanentFaultReportsStructuredFailure)
{
    using std::chrono::milliseconds;
    DlrmConfig model = core::MakeSmallDlrmConfig(3, 100, 16);
    const int workers = 2;
    const size_t global_batch = 16;
    const size_t local_batch = global_batch / workers;
    const sharding::ShardingPlan plan =
        ForcedPlan(model, workers, sharding::Scheme::kTableWise);

    DistributedOptions options;
    options.max_step_retries = 3;
    options.retry_backoff = milliseconds(1);
    options.recover_timeout = milliseconds(5000);

    comm::FaultInjector injector;
    comm::FaultSpec spec;
    spec.rank = 0;
    spec.call_index = 0;
    spec.kind = comm::FaultKind::kKill;
    spec.transient = false;  // permanent: no retry is attempted
    injector.Arm(spec);

    comm::ThreadedWorld::Options world_options;
    world_options.injector = &injector;

    std::vector<core::StepResult> results(workers);
    comm::ThreadedWorld::Run(
        workers, world_options, [&](int rank, comm::ProcessGroup& pg) {
            DistributedDlrm trainer(model, plan, pg, options);
            data::SyntheticCtrDataset dataset(MakeDataConfig(model));
            data::Batch global = dataset.NextBatch(global_batch);
            data::Batch local;
            local.dense = Matrix(local_batch, global.dense.cols());
            for (size_t b = 0; b < local_batch; b++) {
                for (size_t c = 0; c < global.dense.cols(); c++) {
                    local.dense(b, c) =
                        global.dense(rank * local_batch + b, c);
                }
            }
            local.sparse = global.sparse.SliceBatch(
                rank * local_batch, (rank + 1) * local_batch);
            local.labels.assign(
                global.labels.begin() + rank * local_batch,
                global.labels.begin() + (rank + 1) * local_batch);
            results[rank] = trainer.TrainStepWithRecovery(local);
        });

    for (int r = 0; r < workers; r++) {
        SCOPED_TRACE("rank " + std::to_string(r));
        EXPECT_FALSE(results[r].ok);
        EXPECT_EQ(results[r].attempts, 1);
        ASSERT_EQ(results[r].failures.size(), 1u);
        EXPECT_EQ(results[r].failures[0].failed_rank, 0);
        EXPECT_FALSE(results[r].failures[0].transient);
    }
}

}  // namespace
}  // namespace neo

namespace neo {
namespace {

// ------------------- transactional rollback & shrinking-world recovery

using core::CheckpointStore;
using core::DistributedCheckpointer;
using core::StepResult;

data::Batch
SliceGlobal(const data::Batch& global, int rank, size_t local_batch)
{
    const size_t begin = rank * local_batch;
    data::Batch local;
    local.dense = Matrix(local_batch, global.dense.cols());
    for (size_t b = 0; b < local_batch; b++) {
        for (size_t c = 0; c < global.dense.cols(); c++) {
            local.dense(b, c) = global.dense(begin + b, c);
        }
    }
    local.sparse = global.sparse.SliceBatch(begin, begin + local_batch);
    local.labels.assign(global.labels.begin() + begin,
                        global.labels.begin() + begin + local_batch);
    return local;
}

/**
 * The tentpole exactly-once guarantee: a transient kill injected into the
 * MLP-gradient AllReduce — AFTER the sparse optimizer already mutated the
 * embedding shards, BEFORE the dense apply — is rolled back by the
 * StepTransaction, so the retried step (and everything after it) is
 * bitwise identical to a fault-free run on every rank.
 */
TEST(Distributed, RollbackMakesMidStepRetryBitIdentical)
{
    using std::chrono::milliseconds;
    DlrmConfig model = core::MakeSmallDlrmConfig(4, 128, 16);
    const int workers = 4;
    const size_t global_batch = 32;
    const size_t local_batch = global_batch / workers;
    const int steps = 3;
    const int kill_step = 1;
    // Table-wise only: exactly 2 AllReduces per step (loss, MLP grads),
    // so the MLP-grads AllReduce of step s is per-op index 2s + 1 —
    // between the sparse apply and the dense apply.
    const sharding::ShardingPlan plan =
        ForcedPlan(model, workers, sharding::Scheme::kTableWise);

    DistributedOptions options;
    options.max_step_retries = 2;
    options.retry_backoff = milliseconds(1);
    options.recover_timeout = milliseconds(5000);

    auto run_faulted = [&](bool transactional,
                           std::vector<std::vector<StepResult>>& results,
                           Matrix& logits_out) {
        DistributedOptions opt = options;
        opt.transactional_retry = transactional;
        comm::FaultInjector injector;
        comm::FaultSpec kill;
        kill.rank = 2;
        kill.match_op = true;
        kill.op = comm::CollectiveOp::kAllReduce;
        kill.call_index = 2 * kill_step + 1;
        kill.kind = comm::FaultKind::kKill;
        kill.transient = true;
        injector.Arm(kill);
        comm::ThreadedWorld::Options world_options;
        world_options.injector = &injector;
        world_options.barrier_timeout = milliseconds(20000);

        results.assign(workers, std::vector<StepResult>(steps));
        logits_out = Matrix(global_batch, 1);
        comm::ThreadedWorld::Run(
            workers, world_options, [&](int rank, comm::ProcessGroup& pg) {
                DistributedDlrm trainer(model, plan, pg, opt);
                data::SyntheticCtrDataset dataset(MakeDataConfig(model));
                for (int s = 0; s < steps; s++) {
                    const data::Batch local = SliceGlobal(
                        dataset.NextBatch(global_batch), rank, local_batch);
                    results[rank][s] = trainer.TrainStepWithRecovery(local);
                    if (!results[rank][s].ok) {
                        return;
                    }
                }
                const data::Batch local = SliceGlobal(
                    dataset.NextBatch(global_batch), rank, local_batch);
                Matrix logits;
                trainer.Predict(local, logits);
                for (size_t b = 0; b < local_batch; b++) {
                    logits_out(rank * local_batch + b, 0) = logits(b, 0);
                }
            });
        EXPECT_EQ(injector.Fired().size(), 1u);
    };

    // Fault-free run: per-step losses and final predictions.
    std::vector<std::vector<double>> clean(workers,
                                           std::vector<double>(steps));
    Matrix clean_logits(global_batch, 1);
    comm::ThreadedWorld::Run(
        workers, [&](int rank, comm::ProcessGroup& pg) {
            DistributedDlrm trainer(model, plan, pg, options);
            data::SyntheticCtrDataset dataset(MakeDataConfig(model));
            for (int s = 0; s < steps; s++) {
                const data::Batch local = SliceGlobal(
                    dataset.NextBatch(global_batch), rank, local_batch);
                clean[rank][s] = trainer.TrainStep(local);
            }
            const data::Batch local = SliceGlobal(
                dataset.NextBatch(global_batch), rank, local_batch);
            Matrix logits;
            trainer.Predict(local, logits);
            for (size_t b = 0; b < local_batch; b++) {
                clean_logits(rank * local_batch + b, 0) = logits(b, 0);
            }
        });

    // Transactional: every loss bitwise-equal to the fault-free run.
    std::vector<std::vector<StepResult>> txn_results;
    Matrix txn_logits;
    run_faulted(true, txn_results, txn_logits);
    for (int r = 0; r < workers; r++) {
        SCOPED_TRACE("rank " + std::to_string(r));
        for (int s = 0; s < steps; s++) {
            SCOPED_TRACE("step " + std::to_string(s));
            EXPECT_TRUE(txn_results[r][s].ok);
            EXPECT_EQ(txn_results[r][s].attempts, s == kill_step ? 2 : 1);
            if (s == kill_step) {
                ASSERT_EQ(txn_results[r][s].failures.size(), 1u);
                EXPECT_EQ(txn_results[r][s].failures[0].failed_rank, 2);
                EXPECT_TRUE(txn_results[r][s].failures[0].transient);
            }
            EXPECT_EQ(txn_results[r][s].loss, clean[r][s]);
        }
    }
    EXPECT_TRUE(Matrix::Identical(txn_logits, clean_logits));

    // Control: the legacy at-least-once path re-applies the already-
    // applied sparse update, so the retried step's loss diverges. This
    // pins that the kill point really lands after a partial mutation —
    // i.e. that the transactional run above proved something.
    std::vector<std::vector<StepResult>> legacy_results;
    Matrix legacy_logits;
    run_faulted(false, legacy_results, legacy_logits);
    for (int r = 0; r < workers; r++) {
        EXPECT_TRUE(legacy_results[r][kill_step].ok);
        EXPECT_NE(legacy_results[r][kill_step].loss, clean[r][kill_step]);
    }
}

/**
 * The tentpole shrinking-world path: rank 2 of 4 dies permanently
 * mid-run; the survivors recover from the differential checkpoint into a
 * 3-rank world with a re-planned sharding, re-run the lost step, finish
 * the schedule, and land within tolerance of the single-process
 * reference trained on the identical batches.
 */
TEST(Distributed, PermanentDeathShrinksReshardsAndConverges)
{
    using std::chrono::milliseconds;
    DlrmConfig model = core::MakeSmallDlrmConfig(4, 200, 16);
    const int workers = 4;
    const size_t global_batch = 24;  // divides 4 survivors and 3
    const int pre_steps = 2;
    const int total_steps = 5;

    sharding::PlannerOptions planner_options;
    planner_options.topo.num_workers = workers;
    planner_options.topo.workers_per_node = workers;
    planner_options.global_batch = global_batch;
    planner_options.hbm_bytes_per_worker = 1e12;
    // CW shards can't be reassembled into logical tables, and DP tables
    // add collectives that shift the fault's call index; keep both off.
    planner_options.allow_column_wise = false;
    planner_options.allow_data_parallel = false;
    const sharding::ShardingPlan plan =
        sharding::ShardingPlanner(planner_options).Plan(model.tables);
    ASSERT_TRUE(plan.feasible) << plan.note;

    DistributedOptions options;
    options.max_step_retries = 1;
    options.retry_backoff = milliseconds(1);
    options.recover_timeout = milliseconds(5000);

    // Permanent kill at rank 2's first AllToAll of step `pre_steps`
    // (4 AllToAlls per step; the checkpointer's epoch AllReduces do not
    // advance the AllToAll count).
    comm::FaultInjector injector;
    comm::FaultSpec kill;
    kill.rank = 2;
    kill.match_op = true;
    kill.op = comm::CollectiveOp::kAllToAll;
    kill.call_index = 4 * pre_steps;
    kill.kind = comm::FaultKind::kKill;
    kill.transient = false;
    injector.Arm(kill);

    comm::ThreadedWorld::Options world_options;
    world_options.injector = &injector;
    world_options.barrier_timeout = milliseconds(20000);
    comm::ThreadedWorld world(workers, world_options);

    CheckpointStore store;
    std::vector<int> new_ranks(workers, -1);
    std::vector<int> new_sizes(workers, 0);
    Matrix final_logits(global_batch, 1);
    std::vector<std::string> errors(workers);

    std::vector<std::thread> threads;
    for (int r = 0; r < workers; r++) {
        threads.emplace_back([&, r] {
            try {
                comm::ProcessGroup& pg = world.GetGroup(r);
                DistributedDlrm trainer(model, plan, pg, options);
                DistributedCheckpointer checkpointer(trainer, store);
                data::SyntheticCtrDataset dataset(MakeDataConfig(model));

                checkpointer.WriteBaseline();
                for (int s = 0; s < pre_steps; s++) {
                    const data::Batch local =
                        SliceGlobal(dataset.NextBatch(global_batch), r,
                                    global_batch / workers);
                    const StepResult result =
                        trainer.TrainStepWithRecovery(local);
                    EXPECT_TRUE(result.ok) << "rank " << r << " step " << s;
                    checkpointer.WriteDelta();
                }

                // The step the failure lands in: keep the global batch so
                // the survivors can replay it after recovery.
                const data::Batch failed_global =
                    dataset.NextBatch(global_batch);
                const StepResult failed = trainer.TrainStepWithRecovery(
                    SliceGlobal(failed_global, r, global_batch / workers));
                EXPECT_FALSE(failed.ok);
                ASSERT_GE(failed.failures.size(), 1u);
                EXPECT_EQ(failed.failures[0].failed_rank, 2);
                EXPECT_FALSE(failed.failures[0].transient);
                if (r == 2) {
                    return;  // the dead rank leaves
                }

                core::ElasticRecovery recovery = core::RecoverShrunk(
                    world, r, model, planner_options, store, options,
                    milliseconds(10000));
                ASSERT_TRUE(recovery.ok) << recovery.note;
                new_ranks[r] = recovery.new_rank;
                new_sizes[r] = recovery.new_size;
                const size_t survivor_batch =
                    global_batch / static_cast<size_t>(recovery.new_size);

                // Replay the lost step, then finish the schedule degraded.
                recovery.trainer->TrainStep(SliceGlobal(
                    failed_global, recovery.new_rank, survivor_batch));
                for (int s = pre_steps + 1; s < total_steps; s++) {
                    recovery.trainer->TrainStep(
                        SliceGlobal(dataset.NextBatch(global_batch),
                                    recovery.new_rank, survivor_batch));
                }

                const data::Batch eval = SliceGlobal(
                    dataset.NextBatch(global_batch), recovery.new_rank,
                    survivor_batch);
                Matrix logits;
                recovery.trainer->Predict(eval, logits);
                for (size_t b = 0; b < survivor_batch; b++) {
                    final_logits(recovery.new_rank * survivor_batch + b,
                                 0) = logits(b, 0);
                }
            } catch (const std::exception& e) {
                errors[r] = e.what();
                world.Abort(r, e.what());
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    for (int r = 0; r < workers; r++) {
        EXPECT_TRUE(errors[r].empty())
            << "rank " << r << ": " << errors[r];
    }
    // Compacted survivor ranks, shrunk world, poisoned parent.
    EXPECT_EQ(new_ranks, (std::vector<int>{0, 1, -1, 2}));
    for (int r = 0; r < workers; r++) {
        if (r != 2) {
            EXPECT_EQ(new_sizes[r], workers - 1);
        }
    }
    EXPECT_TRUE(world.aborted());
    EXPECT_EQ(store.Ranks(), (std::vector<int>{0, 1, 2, 3}));

    // Reference: the same five global batches on one process. The
    // shrunk run restored baseline+deltas bit-exactly and replayed the
    // lost step, so only collective summation order separates the two.
    DlrmReference reference(model);
    data::SyntheticCtrDataset dataset(MakeDataConfig(model));
    for (int s = 0; s < total_steps; s++) {
        reference.TrainStep(dataset.NextBatch(global_batch));
    }
    Matrix ref_logits;
    reference.Predict(dataset.NextBatch(global_batch), ref_logits);
    EXPECT_LT(Matrix::MaxAbsDiff(final_logits, ref_logits), 5e-2);
}

/**
 * Regression for the pipelining/recovery gap: pipelined steps used to
 * call raw TrainStepPrepared, bypassing the transactional retry loop, so
 * a mid-step kill under pipelining either crashed the job or (worse)
 * retried on top of half-applied state. Now a transient kill injected
 * into the MLP-gradient AllReduce of an OVERLAPPED pipelined step — after
 * the sparse apply, before the dense apply — rolls back and retries, and
 * every loss stays bitwise identical to a fault-free unpipelined run.
 */
TEST(Distributed, PipelinedMidStepKillRollbackIsBitIdentical)
{
    using std::chrono::milliseconds;
    DlrmConfig model = core::MakeSmallDlrmConfig(4, 128, 16);
    const int workers = 4;
    const size_t global_batch = 32;
    const size_t local_batch = global_batch / workers;
    const int steps = 4;
    const int kill_step = 1;
    // Table-wise only: 2 AllReduces per training step (loss, MLP grads)
    // on the training world. Under overlap the input AllToAlls move to
    // the prepare world, so the per-op AllReduce indexing is unchanged:
    // step s's MLP-grads AllReduce is still per-op index 2s + 1.
    const sharding::ShardingPlan plan =
        ForcedPlan(model, workers, sharding::Scheme::kTableWise);

    DistributedOptions options;
    options.transactional_retry = true;
    options.max_step_retries = 2;
    options.retry_backoff = milliseconds(1);
    options.recover_timeout = milliseconds(5000);

    // Fault-free unpipelined baseline.
    std::vector<std::vector<double>> clean(workers,
                                           std::vector<double>(steps));
    comm::ThreadedWorld::Run(
        workers, [&](int rank, comm::ProcessGroup& pg) {
            DistributedDlrm trainer(model, plan, pg, options);
            data::SyntheticCtrDataset dataset(MakeDataConfig(model));
            for (int s = 0; s < steps; s++) {
                const data::Batch local = SliceGlobal(
                    dataset.NextBatch(global_batch), rank, local_batch);
                clean[rank][s] = trainer.TrainStep(local);
            }
        });

    // Overlapped pipelined run with the kill armed. The prepare world
    // carries no injector: the fault must land inside the training step
    // so the retry machinery — not the prepare path — handles it.
    comm::FaultInjector injector;
    comm::FaultSpec kill;
    kill.rank = 2;
    kill.match_op = true;
    kill.op = comm::CollectiveOp::kAllReduce;
    kill.call_index = 2 * kill_step + 1;
    kill.kind = comm::FaultKind::kKill;
    kill.transient = true;
    injector.Arm(kill);
    comm::ThreadedWorld::Options world_options;
    world_options.injector = &injector;
    world_options.barrier_timeout = milliseconds(20000);

    comm::ThreadedWorld prepare_world(workers);
    std::vector<std::vector<double>> piped(workers);
    comm::ThreadedWorld::Run(
        workers, world_options, [&](int rank, comm::ProcessGroup& pg) {
            DistributedDlrm trainer(model, plan, pg, options);
            core::PipelinedTrainer pipeline(trainer,
                                            prepare_world.GetGroup(rank));
            ASSERT_TRUE(pipeline.overlapped());
            data::SyntheticCtrDataset dataset(MakeDataConfig(model));
            for (int s = 0; s < steps; s++) {
                const data::Batch local = SliceGlobal(
                    dataset.NextBatch(global_batch), rank, local_batch);
                if (auto loss = pipeline.Push(local)) {
                    piped[rank].push_back(*loss);
                }
            }
            if (auto loss = pipeline.Flush()) {
                piped[rank].push_back(*loss);
            }
            EXPECT_EQ(pipeline.steps_completed(),
                      static_cast<uint64_t>(steps));
        });
    EXPECT_EQ(injector.Fired().size(), 1u);

    for (int r = 0; r < workers; r++) {
        SCOPED_TRACE("rank " + std::to_string(r));
        ASSERT_EQ(piped[r].size(), static_cast<size_t>(steps));
        for (int s = 0; s < steps; s++) {
            SCOPED_TRACE("step " + std::to_string(s));
            EXPECT_EQ(piped[r][s], clean[r][s]);
        }
    }
}

/**
 * Two ranks die permanently in the SAME round: the survivor cohort can
 * no longer reach the old "size - 1 arrivals" seal, so the rendezvous
 * seals at the deadline with whoever arrived. The two survivors of a
 * 4-rank world form a 2-rank world in one ShrinkAfterFailure round,
 * restore from the differential checkpoint, replay the lost step, and
 * converge on the single-process reference.
 */
TEST(Distributed, TwoPermanentDeathsOneRoundShrinksAndConverges)
{
    using std::chrono::milliseconds;
    DlrmConfig model = core::MakeSmallDlrmConfig(4, 200, 16);
    const int workers = 4;
    const size_t global_batch = 24;  // divides 4 workers and 2 survivors
    const int pre_steps = 2;
    const int total_steps = 5;

    sharding::PlannerOptions planner_options;
    planner_options.topo.num_workers = workers;
    planner_options.topo.workers_per_node = workers;
    planner_options.global_batch = global_batch;
    planner_options.hbm_bytes_per_worker = 1e12;
    planner_options.allow_column_wise = false;
    planner_options.allow_data_parallel = false;
    const sharding::ShardingPlan plan =
        sharding::ShardingPlanner(planner_options).Plan(model.tables);
    ASSERT_TRUE(plan.feasible) << plan.note;

    DistributedOptions options;
    options.max_step_retries = 1;
    options.retry_backoff = milliseconds(1);
    options.recover_timeout = milliseconds(5000);

    comm::ThreadedWorld::Options world_options;
    world_options.barrier_timeout = milliseconds(20000);
    comm::ThreadedWorld world(workers, world_options);

    CheckpointStore store;
    std::vector<int> new_ranks(workers, -1);
    std::vector<int> new_sizes(workers, 0);
    Matrix final_logits(global_batch, 1);
    std::vector<std::string> errors(workers);

    std::vector<std::thread> threads;
    for (int r = 0; r < workers; r++) {
        threads.emplace_back([&, r] {
            try {
                comm::ProcessGroup& pg = world.GetGroup(r);
                DistributedDlrm trainer(model, plan, pg, options);
                DistributedCheckpointer checkpointer(trainer, store);
                data::SyntheticCtrDataset dataset(MakeDataConfig(model));

                checkpointer.WriteBaseline();
                for (int s = 0; s < pre_steps; s++) {
                    const data::Batch local =
                        SliceGlobal(dataset.NextBatch(global_batch), r,
                                    global_batch / workers);
                    const StepResult result =
                        trainer.TrainStepWithRecovery(local);
                    EXPECT_TRUE(result.ok) << "rank " << r << " step " << s;
                    checkpointer.WriteDelta();
                }

                // Ranks 1 and 2 die together before the next step. The
                // last WriteDelta's epoch AllReduce already synchronized
                // every rank, so the survivors cannot still be inside a
                // collective when the poison lands.
                const data::Batch failed_global =
                    dataset.NextBatch(global_batch);
                if (r == 1 || r == 2) {
                    world.Abort(r, "node lost", /*transient=*/false);
                    return;
                }
                const StepResult failed = trainer.TrainStepWithRecovery(
                    SliceGlobal(failed_global, r, global_batch / workers));
                EXPECT_FALSE(failed.ok);
                ASSERT_GE(failed.failures.size(), 1u);
                EXPECT_FALSE(failed.failures[0].transient);
                const int dead = failed.failures[0].failed_rank;
                EXPECT_TRUE(dead == 1 || dead == 2) << dead;

                // Only 2 of the 3 possible survivors ever arrive: the
                // rendezvous must seal at the deadline, not the count.
                core::ElasticRecovery recovery = core::RecoverShrunk(
                    world, r, model, planner_options, store, options,
                    milliseconds(2500));
                ASSERT_TRUE(recovery.ok) << recovery.note;
                new_ranks[r] = recovery.new_rank;
                new_sizes[r] = recovery.new_size;
                const size_t survivor_batch =
                    global_batch / static_cast<size_t>(recovery.new_size);

                recovery.trainer->TrainStep(SliceGlobal(
                    failed_global, recovery.new_rank, survivor_batch));
                for (int s = pre_steps + 1; s < total_steps; s++) {
                    recovery.trainer->TrainStep(
                        SliceGlobal(dataset.NextBatch(global_batch),
                                    recovery.new_rank, survivor_batch));
                }

                const data::Batch eval = SliceGlobal(
                    dataset.NextBatch(global_batch), recovery.new_rank,
                    survivor_batch);
                Matrix logits;
                recovery.trainer->Predict(eval, logits);
                for (size_t b = 0; b < survivor_batch; b++) {
                    final_logits(recovery.new_rank * survivor_batch + b,
                                 0) = logits(b, 0);
                }
            } catch (const std::exception& e) {
                errors[r] = e.what();
                world.Abort(r, e.what());
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    for (int r = 0; r < workers; r++) {
        EXPECT_TRUE(errors[r].empty())
            << "rank " << r << ": " << errors[r];
    }
    // Survivors 0 and 3 compact to ranks 0 and 1 of a 2-rank world.
    EXPECT_EQ(new_ranks, (std::vector<int>{0, -1, -1, 1}));
    EXPECT_EQ(new_sizes[0], 2);
    EXPECT_EQ(new_sizes[3], 2);
    EXPECT_TRUE(world.aborted());
    EXPECT_EQ(store.Ranks(), (std::vector<int>{0, 1, 2, 3}));

    DlrmReference reference(model);
    data::SyntheticCtrDataset dataset(MakeDataConfig(model));
    for (int s = 0; s < total_steps; s++) {
        reference.TrainStep(dataset.NextBatch(global_batch));
    }
    Matrix ref_logits;
    reference.Predict(dataset.NextBatch(global_batch), ref_logits);
    EXPECT_LT(Matrix::MaxAbsDiff(final_logits, ref_logits), 5e-2);
}

}  // namespace
}  // namespace neo
