/**
 * @file
 * Tests for the embedding/MLP operators: table storage in both precisions,
 * shard-stable deterministic init, fused pooled lookup, exact sparse
 * optimizers (order invariance, duplicate merging, algorithm math), dense
 * optimizers and MLP gradients against numerical differentiation.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "ops/dense_optimizer.h"
#include "ops/embedding_bag.h"
#include "ops/embedding_table.h"
#include "ops/mlp.h"
#include "ops/sparse_optimizer.h"

namespace neo::ops {
namespace {

// -------------------------------------------------------- EmbeddingTable

TEST(EmbeddingTable, ReadWriteRoundTripFp32)
{
    EmbeddingTable table(10, 4);
    const float row[4] = {1.0f, -2.0f, 3.5f, 0.25f};
    table.WriteRow(3, row);
    float out[4];
    table.ReadRow(3, out);
    for (int i = 0; i < 4; i++) {
        EXPECT_EQ(out[i], row[i]);
    }
}

TEST(EmbeddingTable, Fp16StorageQuantizes)
{
    EmbeddingTable table(4, 2, Precision::kFp16);
    const float row[2] = {0.1f, 1000.3f};
    table.WriteRow(0, row);
    float out[2];
    table.ReadRow(0, out);
    // Not exact, but within half precision.
    EXPECT_NEAR(out[0], 0.1f, 1e-4f);
    EXPECT_NEAR(out[1], 1000.3f, 0.5f);
    EXPECT_EQ(table.ParameterBytes(), 4u * 2u * 2u);  // rows*dim*2 bytes
}

TEST(EmbeddingTable, AccumulateRow)
{
    EmbeddingTable table(2, 3);
    const float row[3] = {1.0f, 2.0f, 3.0f};
    table.WriteRow(1, row);
    float acc[3] = {10.0f, 10.0f, 10.0f};
    table.AccumulateRow(1, 2.0f, acc);
    EXPECT_EQ(acc[0], 12.0f);
    EXPECT_EQ(acc[2], 16.0f);
}

TEST(EmbeddingTable, DeterministicInitIsShardStable)
{
    const int64_t rows = 20, dim = 8;
    EmbeddingTable full(rows, dim);
    full.InitDeterministic(777, 0, 0, dim);

    // Row shard [5, 12) must match rows 5..11 of the full table.
    EmbeddingTable row_shard(7, dim);
    row_shard.InitDeterministic(777, 5, 0, dim);
    std::vector<float> a(dim), b(dim);
    for (int64_t r = 0; r < 7; r++) {
        full.ReadRow(5 + r, a.data());
        row_shard.ReadRow(r, b.data());
        EXPECT_EQ(a, b) << "row " << r;
    }

    // Column shard [2, 6) must match those columns.
    EmbeddingTable col_shard(rows, 4);
    col_shard.InitDeterministic(777, 0, 2, dim);
    std::vector<float> c(4);
    for (int64_t r = 0; r < rows; r++) {
        full.ReadRow(r, a.data());
        col_shard.ReadRow(r, c.data());
        for (int i = 0; i < 4; i++) {
            EXPECT_EQ(c[i], a[2 + i]) << r << "," << i;
        }
    }
}

TEST(EmbeddingTable, SaveLoadRoundTrip)
{
    Rng rng(3);
    EmbeddingTable table(16, 8, Precision::kFp16);
    table.InitUniform(rng);
    BinaryWriter writer;
    table.Save(writer);
    BinaryReader reader(writer.buffer());
    EmbeddingTable loaded = EmbeddingTable::Load(reader);
    EXPECT_TRUE(EmbeddingTable::Identical(table, loaded));
}

TEST(EmbeddingTable, OutOfRangeRowPanics)
{
    EmbeddingTable table(4, 2);
    float buf[2];
    EXPECT_DEATH(table.ReadRow(4, buf), "out of range");
}

// ------------------------------------------------------- SparseOptimizer

std::vector<SparseGradRef>
MakeRefs(const std::vector<int64_t>& rows, const Matrix& grads)
{
    std::vector<SparseGradRef> refs;
    for (size_t i = 0; i < rows.size(); i++) {
        refs.push_back({rows[i], grads.Row(i)});
    }
    return refs;
}

TEST(SparseOptimizer, SgdMatchesManualUpdate)
{
    SparseOptimizerConfig config;
    config.kind = SparseOptimizerKind::kSgd;
    config.learning_rate = 0.5f;
    EmbeddingTable table(4, 2);
    const float init[2] = {1.0f, 2.0f};
    table.WriteRow(1, init);

    SparseOptimizer opt(config, 4, 2);
    Matrix grads(1, 2);
    grads(0, 0) = 0.2f;
    grads(0, 1) = -0.4f;
    const auto refs = MakeRefs({1}, grads);
    opt.ApplyExact(table, refs);

    float out[2];
    table.ReadRow(1, out);
    EXPECT_FLOAT_EQ(out[0], 1.0f - 0.5f * 0.2f);
    EXPECT_FLOAT_EQ(out[1], 2.0f + 0.5f * 0.4f);
}

TEST(SparseOptimizer, ExactMergesDuplicatesBeforeNonlinearity)
{
    // With AdaGrad, applying g then g (naive) differs from applying 2g
    // once (exact). Verify both behaviours.
    SparseOptimizerConfig config;
    config.kind = SparseOptimizerKind::kAdaGrad;
    config.learning_rate = 1.0f;
    config.eps = 0.0f;

    Matrix grads(2, 1);
    grads(0, 0) = 1.0f;
    grads(1, 0) = 1.0f;

    EmbeddingTable exact_table(2, 1);
    SparseOptimizer exact_opt(config, 2, 1);
    exact_opt.ApplyExact(exact_table, MakeRefs({0, 0}, grads));
    float w_exact;
    exact_table.ReadRow(0, &w_exact);
    // merged grad 2, state 4, update = -1.0 * 2/2 = -1.
    EXPECT_FLOAT_EQ(w_exact, -1.0f);

    EmbeddingTable naive_table(2, 1);
    SparseOptimizer naive_opt(config, 2, 1);
    naive_opt.ApplyNaive(naive_table, MakeRefs({0, 0}, grads));
    float w_naive;
    naive_table.ReadRow(0, &w_naive);
    // two steps: -1/1 then -1/sqrt(2).
    EXPECT_NEAR(w_naive, -1.0f - 1.0f / std::sqrt(2.0f), 1e-6f);
    EXPECT_NE(w_exact, w_naive);
}

TEST(SparseOptimizer, ExactUpdateIsOrderInvariant)
{
    SparseOptimizerConfig config;
    config.kind = SparseOptimizerKind::kRowWiseAdaGrad;
    config.learning_rate = 0.1f;

    Rng rng(71);
    const int64_t rows = 10, dim = 4;
    const size_t n = 30;
    std::vector<int64_t> row_ids(n);
    Matrix grads(n, dim);
    for (size_t i = 0; i < n; i++) {
        row_ids[i] = static_cast<int64_t>(rng.NextBounded(rows));
        for (int64_t d = 0; d < dim; d++) {
            grads(i, d) = rng.NextUniform(-1.0f, 1.0f);
        }
    }

    // Apply in original and in permuted order; tables must match bitwise.
    EmbeddingTable t1(rows, dim), t2(rows, dim);
    t1.InitDeterministic(5, 0, 0, dim);
    t2.InitDeterministic(5, 0, 0, dim);
    SparseOptimizer o1(config, rows, dim), o2(config, rows, dim);

    o1.ApplyExact(t1, MakeRefs(row_ids, grads));

    std::vector<size_t> perm(n);
    for (size_t i = 0; i < n; i++) {
        perm[i] = i;
    }
    // Deterministic shuffle.
    for (size_t i = n; i > 1; i--) {
        std::swap(perm[i - 1], perm[rng.NextBounded(i)]);
    }
    std::vector<int64_t> rows_p(n);
    Matrix grads_p(n, dim);
    for (size_t i = 0; i < n; i++) {
        rows_p[i] = row_ids[perm[i]];
        for (int64_t d = 0; d < dim; d++) {
            grads_p(i, d) = grads(perm[i], d);
        }
    }
    o2.ApplyExact(t2, MakeRefs(rows_p, grads_p));

    EXPECT_TRUE(EmbeddingTable::Identical(t1, t2));
}

TEST(SparseOptimizer, NaiveAdaGradIsOrderDependent)
{
    SparseOptimizerConfig config;
    config.kind = SparseOptimizerKind::kAdaGrad;
    config.learning_rate = 0.5f;

    Matrix grads(2, 1);
    grads(0, 0) = 1.0f;
    grads(1, 0) = 3.0f;

    EmbeddingTable t1(1, 1), t2(1, 1);
    SparseOptimizer o1(config, 1, 1), o2(config, 1, 1);
    o1.ApplyNaive(t1, MakeRefs({0, 0}, grads));

    Matrix reversed(2, 1);
    reversed(0, 0) = 3.0f;
    reversed(1, 0) = 1.0f;
    o2.ApplyNaive(t2, MakeRefs({0, 0}, reversed));

    EXPECT_FALSE(EmbeddingTable::Identical(t1, t2));
}

TEST(SparseOptimizer, RowWiseAdaGradStateMath)
{
    // m' = m + (1/D) sum g^2 (Sec. 4.1.4).
    SparseOptimizerConfig config;
    config.kind = SparseOptimizerKind::kRowWiseAdaGrad;
    config.learning_rate = 1.0f;
    config.eps = 0.0f;

    const int64_t dim = 4;
    EmbeddingTable table(2, dim);
    SparseOptimizer opt(config, 2, dim);
    Matrix grads(1, dim);
    for (int64_t d = 0; d < dim; d++) {
        grads(0, d) = 2.0f;  // sum g^2 = 16, /D = 4 => m = 4
    }
    opt.ApplyExact(table, MakeRefs({1}, grads));
    EXPECT_FLOAT_EQ(opt.RowMoment(1), 4.0f);
    float out[4];
    table.ReadRow(1, out);
    // update = -lr * g / sqrt(m) = -2/2 = -1
    EXPECT_FLOAT_EQ(out[0], -1.0f);
}

TEST(SparseOptimizer, RowWiseStateIsOnePerRow)
{
    SparseOptimizerConfig rw;
    rw.kind = SparseOptimizerKind::kRowWiseAdaGrad;
    SparseOptimizerConfig full;
    full.kind = SparseOptimizerKind::kAdaGrad;
    const int64_t rows = 100, dim = 64;
    SparseOptimizer rw_opt(rw, rows, dim);
    SparseOptimizer full_opt(full, rows, dim);
    EXPECT_EQ(rw_opt.StateBytes(), rows * sizeof(float));
    EXPECT_EQ(full_opt.StateBytes(), rows * dim * sizeof(float));
}

TEST(SparseOptimizer, AdamMovesTowardGradientDirection)
{
    SparseOptimizerConfig config;
    config.kind = SparseOptimizerKind::kAdam;
    config.learning_rate = 0.1f;
    EmbeddingTable table(2, 2);
    SparseOptimizer opt(config, 2, 2);
    Matrix grads(1, 2);
    grads(0, 0) = 1.0f;
    grads(0, 1) = -1.0f;
    opt.ApplyExact(table, MakeRefs({0}, grads));
    float out[2];
    table.ReadRow(0, out);
    EXPECT_LT(out[0], 0.0f);
    EXPECT_GT(out[1], 0.0f);
    // First Adam step with bias correction ≈ -lr * sign(g).
    EXPECT_NEAR(out[0], -0.1f, 1e-3f);
}

// ---------------------------------------------------- EmbeddingBagCollection

TEST(EmbeddingBag, ForwardPoolsSum)
{
    std::vector<TableSpec> specs = {{4, 2, Precision::kFp32}};
    SparseOptimizerConfig opt_config;
    EmbeddingBagCollection ebc(specs, opt_config, 1);
    const float r0[2] = {1.0f, 2.0f};
    const float r3[2] = {10.0f, 20.0f};
    ebc.table(0).WriteRow(0, r0);
    ebc.table(0).WriteRow(3, r3);

    const std::vector<uint32_t> lengths = {2, 0, 1};
    const std::vector<int64_t> indices = {0, 3, 0};
    std::vector<TableInput> inputs = {{lengths, indices}};
    std::vector<Matrix> outputs;
    ebc.Forward(inputs, 3, outputs);

    EXPECT_FLOAT_EQ(outputs[0](0, 0), 11.0f);  // rows 0+3
    EXPECT_FLOAT_EQ(outputs[0](0, 1), 22.0f);
    EXPECT_FLOAT_EQ(outputs[0](1, 0), 0.0f);   // empty pooling
    EXPECT_FLOAT_EQ(outputs[0](2, 0), 1.0f);   // row 0
}

TEST(EmbeddingBag, BackwardRoutesPooledGradToEveryOccurrence)
{
    std::vector<TableSpec> specs = {{4, 1, Precision::kFp32}};
    SparseOptimizerConfig config;
    config.kind = SparseOptimizerKind::kSgd;
    config.learning_rate = 1.0f;
    EmbeddingBagCollection ebc(specs, config, 1);
    const float zero = 0.0f;
    for (int64_t r = 0; r < 4; r++) {
        ebc.table(0).WriteRow(r, &zero);
    }

    // Sample 0 hits rows {1, 2}; sample 1 hits row {2}.
    const std::vector<uint32_t> lengths = {2, 1};
    const std::vector<int64_t> indices = {1, 2, 2};
    std::vector<TableInput> inputs = {{lengths, indices}};
    std::vector<Matrix> grads(1);
    grads[0] = Matrix(2, 1);
    grads[0](0, 0) = 1.0f;
    grads[0](1, 0) = 10.0f;
    ebc.BackwardAndUpdate(inputs, 2, grads);

    float w;
    ebc.table(0).ReadRow(1, &w);
    EXPECT_FLOAT_EQ(w, -1.0f);    // only sample 0
    ebc.table(0).ReadRow(2, &w);
    EXPECT_FLOAT_EQ(w, -11.0f);   // merged from both samples
    ebc.table(0).ReadRow(0, &w);
    EXPECT_FLOAT_EQ(w, 0.0f);     // untouched
}

TEST(EmbeddingBag, SaveLoadRoundTrip)
{
    std::vector<TableSpec> specs = {{8, 4, Precision::kFp32},
                                    {6, 4, Precision::kFp16}};
    SparseOptimizerConfig config;
    EmbeddingBagCollection ebc(specs, config, 77);
    BinaryWriter writer;
    ebc.Save(writer);

    EmbeddingBagCollection other(specs, config, 12345);
    EXPECT_FALSE(EmbeddingTable::Identical(ebc.table(0), other.table(0)));
    BinaryReader reader(writer.buffer());
    other.Load(reader);
    EXPECT_TRUE(EmbeddingTable::Identical(ebc.table(0), other.table(0)));
    EXPECT_TRUE(EmbeddingTable::Identical(ebc.table(1), other.table(1)));
}

TEST(EmbeddingBag, MemoryAccounting)
{
    std::vector<TableSpec> specs = {{100, 8, Precision::kFp32},
                                    {50, 8, Precision::kFp16}};
    SparseOptimizerConfig config;
    config.kind = SparseOptimizerKind::kRowWiseAdaGrad;
    EmbeddingBagCollection ebc(specs, config, 1);
    EXPECT_EQ(ebc.ParameterBytes(), 100u * 8 * 4 + 50u * 8 * 2);
    EXPECT_EQ(ebc.OptimizerStateBytes(), (100u + 50u) * sizeof(float));
}

// -------------------------------------------------------- DenseOptimizer

TEST(DenseOptimizer, SgdWithMomentum)
{
    DenseOptimizerConfig config;
    config.kind = DenseOptimizerKind::kSgd;
    config.learning_rate = 1.0f;
    config.momentum = 0.5f;
    DenseOptimizer opt(config);
    const size_t slot = opt.Register(1, 1);

    Matrix w(1, 1), g(1, 1);
    g(0, 0) = 1.0f;
    opt.Step(slot, w, g);
    EXPECT_FLOAT_EQ(w(0, 0), -1.0f);   // v=1
    opt.Step(slot, w, g);
    EXPECT_FLOAT_EQ(w(0, 0), -2.5f);   // v=1.5
}

TEST(DenseOptimizer, AdaGradShrinksSteps)
{
    DenseOptimizerConfig config;
    config.kind = DenseOptimizerKind::kAdaGrad;
    config.learning_rate = 1.0f;
    config.eps = 0.0f;
    DenseOptimizer opt(config);
    const size_t slot = opt.Register(1, 1);
    Matrix w(1, 1), g(1, 1);
    g(0, 0) = 2.0f;
    opt.Step(slot, w, g);
    const float step1 = -w(0, 0);
    const float before = w(0, 0);
    opt.Step(slot, w, g);
    const float step2 = before - w(0, 0);
    EXPECT_GT(step1, step2);
    EXPECT_FLOAT_EQ(step1, 1.0f);
}

TEST(DenseOptimizer, AdamFirstStepIsLrSized)
{
    DenseOptimizerConfig config;
    config.kind = DenseOptimizerKind::kAdam;
    config.learning_rate = 0.01f;
    DenseOptimizer opt(config);
    const size_t slot = opt.Register(1, 1);
    Matrix w(1, 1), g(1, 1);
    g(0, 0) = 123.0f;  // magnitude irrelevant for Adam's first step
    opt.Step(slot, w, g);
    EXPECT_NEAR(w(0, 0), -0.01f, 1e-4f);
}

// ------------------------------------------------------------------- Mlp

TEST(Mlp, ForwardShapesAndDeterminism)
{
    Rng rng(5);
    Mlp mlp({{8, 16, 4}, false}, rng);
    EXPECT_EQ(mlp.InputDim(), 8u);
    EXPECT_EQ(mlp.OutputDim(), 4u);
    EXPECT_EQ(mlp.NumLayers(), 2u);
    EXPECT_EQ(mlp.NumParams(), 8u * 16 + 16 + 16 * 4 + 4);

    Matrix x(3, 8);
    Rng xrng(6);
    x.InitUniform(xrng, -1.0f, 1.0f);
    Matrix out1, out2;
    mlp.Forward(x, out1);
    mlp.Forward(x, out2);
    EXPECT_TRUE(Matrix::Identical(out1, out2));

    Rng rng2(5);
    Mlp clone({{8, 16, 4}, false}, rng2);
    EXPECT_TRUE(Mlp::Identical(mlp, clone));
}

TEST(Mlp, BackwardMatchesNumericalGradient)
{
    Rng rng(9);
    Mlp mlp({{4, 6, 1}, false}, rng);
    Matrix x(2, 4);
    Rng xrng(10);
    x.InitUniform(xrng, -1.0f, 1.0f);

    // Objective: sum of outputs.
    auto objective = [&](Mlp& m) {
        Matrix out;
        m.Forward(x, out);
        double sum = 0.0;
        for (size_t i = 0; i < out.size(); i++) {
            sum += out.data()[i];
        }
        return sum;
    };

    Matrix out;
    mlp.Forward(x, out);
    mlp.ZeroGrads();
    Matrix ones(2, 1);
    ones.Fill(1.0f);
    Matrix grad_in;
    mlp.Backward(ones, grad_in);

    const float eps = 1e-3f;
    // Check a sample of weight gradients in layer 0 numerically.
    for (size_t r = 0; r < 3; r++) {
        for (size_t c = 0; c < 2; c++) {
            const float saved = mlp.weight(0)(r, c);
            mlp.weight(0)(r, c) = saved + eps;
            const double plus = objective(mlp);
            mlp.weight(0)(r, c) = saved - eps;
            const double minus = objective(mlp);
            mlp.weight(0)(r, c) = saved;
            const double numeric = (plus - minus) / (2.0 * eps);
            EXPECT_NEAR(mlp.weight_grad(0)(r, c), numeric, 2e-2)
                << r << "," << c;
        }
    }
    // And the input gradient.
    for (size_t c = 0; c < 4; c++) {
        Matrix xp = x, xm = x;
        xp(0, c) += eps;
        xm(0, c) -= eps;
        Matrix o;
        mlp.Forward(xp, o);
        double plus = 0.0;
        for (size_t i = 0; i < o.size(); i++) {
            plus += o.data()[i];
        }
        mlp.Forward(xm, o);
        double minus = 0.0;
        for (size_t i = 0; i < o.size(); i++) {
            minus += o.data()[i];
        }
        // Restore saved activations for consistency.
        mlp.Forward(x, o);
        EXPECT_NEAR(grad_in(0, c), (plus - minus) / (2.0 * eps), 2e-2) << c;
    }
}

TEST(Mlp, PackUnpackGradsRoundTrip)
{
    Rng rng(12);
    Mlp mlp({{4, 8, 2}, false}, rng);
    Matrix x(5, 4);
    Rng xrng(13);
    x.InitUniform(xrng, -1.0f, 1.0f);
    Matrix out;
    mlp.Forward(x, out);
    mlp.ZeroGrads();
    Matrix grad_out(5, 2);
    grad_out.Fill(0.5f);
    Matrix grad_in;
    mlp.Backward(grad_out, grad_in);

    std::vector<float> buffer(mlp.GradCount());
    mlp.PackGrads(buffer.data());

    Rng rng2(12);
    Mlp other({{4, 8, 2}, false}, rng2);
    other.ZeroGrads();
    other.UnpackGrads(buffer.data());
    for (size_t l = 0; l < mlp.NumLayers(); l++) {
        EXPECT_TRUE(Matrix::Identical(mlp.weight_grad(l),
                                      other.weight_grad(l)));
        EXPECT_TRUE(
            Matrix::Identical(mlp.bias_grad(l), other.bias_grad(l)));
    }
}

TEST(Mlp, SaveLoadRoundTrip)
{
    Rng rng(15);
    Mlp mlp({{3, 5, 2}, true}, rng);
    BinaryWriter writer;
    mlp.Save(writer);

    Rng rng2(999);
    Mlp other({{3, 5, 2}, true}, rng2);
    EXPECT_FALSE(Mlp::Identical(mlp, other));
    BinaryReader reader(writer.buffer());
    other.Load(reader);
    EXPECT_TRUE(Mlp::Identical(mlp, other));
}

TEST(Mlp, FlopsPerSample)
{
    Rng rng(16);
    Mlp mlp({{10, 20, 5}, false}, rng);
    EXPECT_DOUBLE_EQ(mlp.FlopsPerSample(), 2.0 * (10 * 20 + 20 * 5));
}

}  // namespace
}  // namespace neo::ops

namespace neo::ops {
namespace {

TEST(DenseOptimizer, LambScalesByTrustRatio)
{
    DenseOptimizerConfig config;
    config.kind = DenseOptimizerKind::kLamb;
    config.learning_rate = 0.01f;
    DenseOptimizer opt(config);
    const size_t slot = opt.Register(1, 2);

    // Large weights + tiny gradient: the trust ratio (||w||/||update||)
    // amplifies the normalized Adam step to the weight scale.
    Matrix w(1, 2), g(1, 2);
    w(0, 0) = 10.0f;
    w(0, 1) = -10.0f;
    g(0, 0) = 1e-3f;
    g(0, 1) = 1e-3f;
    opt.Step(slot, w, g);
    // First Adam direction is ~sign(g) (unit-ish norm); trust ratio is
    // ~||w|| / ||unit|| ~ 14.1/1.41 = 10 -> step ~ lr * 10 * 1 = 0.1.
    EXPECT_NEAR(w(0, 0), 10.0f - 0.1f, 0.02f);
    EXPECT_NEAR(w(0, 1), -10.0f - 0.1f, 0.02f);
}

TEST(DenseOptimizer, LambTrainsMlp)
{
    // End-to-end: a LAMB-trained MLP fits a simple target.
    Rng rng(7);
    Mlp mlp({{4, 16, 1}, false}, rng);
    DenseOptimizerConfig config;
    config.kind = DenseOptimizerKind::kLamb;
    config.learning_rate = 0.01f;
    DenseOptimizer opt(config);
    const auto slots = mlp.RegisterParams(opt);

    Rng xrng(9);
    Matrix x(32, 4);
    x.InitUniform(xrng, -1.0f, 1.0f);
    Matrix target(32, 1);
    for (size_t b = 0; b < 32; b++) {
        target(b, 0) = x(b, 0) - 0.5f * x(b, 2);
    }

    double first_loss = 0.0, last_loss = 0.0;
    for (int step = 0; step < 200; step++) {
        Matrix out;
        mlp.Forward(x, out);
        Matrix grad(32, 1);
        double loss = 0.0;
        for (size_t b = 0; b < 32; b++) {
            const float diff = out(b, 0) - target(b, 0);
            loss += 0.5 * diff * diff;
            grad(b, 0) = diff / 32.0f;
        }
        if (step == 0) {
            first_loss = loss;
        }
        last_loss = loss;
        mlp.ZeroGrads();
        Matrix grad_in;
        mlp.Backward(grad, grad_in);
        mlp.ApplyOptimizer(opt, slots);
    }
    EXPECT_LT(last_loss, first_loss * 0.1);
}

// ---------------------------------------- optimizer row-state movement

TEST(SparseOptimizer, StateFloatsPerRowMatchesLayout)
{
    const int64_t dim = 8;
    auto sfpr = [&](SparseOptimizerKind kind) {
        SparseOptimizerConfig config;
        config.kind = kind;
        return SparseOptimizer(config, 4, dim).StateFloatsPerRow();
    };
    EXPECT_EQ(sfpr(SparseOptimizerKind::kSgd), 0u);
    EXPECT_EQ(sfpr(SparseOptimizerKind::kAdaGrad),
              static_cast<size_t>(dim));
    EXPECT_EQ(sfpr(SparseOptimizerKind::kRowWiseAdaGrad), 1u);
    EXPECT_EQ(sfpr(SparseOptimizerKind::kAdam),
              static_cast<size_t>(2 * dim + 1));
}

/**
 * Export/ImportRowState must move the whole per-row algorithm state: an
 * optimizer rebuilt from exported state continues training bit-identically
 * to the original. This is the invariant the rollback undo log and the
 * distributed checkpointer rely on.
 */
TEST(SparseOptimizer, ExportImportRowStateResumesBitIdentically)
{
    const int64_t rows = 16, dim = 4;
    for (const auto kind :
         {SparseOptimizerKind::kSgd, SparseOptimizerKind::kAdaGrad,
          SparseOptimizerKind::kRowWiseAdaGrad,
          SparseOptimizerKind::kAdam}) {
        SCOPED_TRACE(SparseOptimizerKindName(kind));
        SparseOptimizerConfig config;
        config.kind = kind;

        Rng rng(21);
        EmbeddingTable t1(rows, dim);
        t1.InitUniform(rng);
        SparseOptimizer o1(config, rows, dim);

        Matrix g1(3, dim), g2(3, dim);
        Rng grng(22);
        for (size_t i = 0; i < g1.size(); i++) {
            g1.data()[i] = grng.NextFloat() - 0.5f;
            g2.data()[i] = grng.NextFloat() - 0.5f;
        }
        o1.ApplyExact(t1, MakeRefs({2, 7, 11}, g1));

        // Clone the parameters, then rebuild the optimizer state from the
        // exported per-row layout.
        EmbeddingTable t2 = t1;
        SparseOptimizer o2(config, rows, dim);
        std::vector<float> state(o1.StateFloatsPerRow());
        for (int64_t r = 0; r < rows; r++) {
            o1.ExportRowState(r, state.data());
            o2.ImportRowState(r, state.data());
        }

        // A second, overlapping step must now evolve both bit-identically
        // (Adam's per-row step counter included).
        o1.ApplyExact(t1, MakeRefs({7, 11, 13}, g2));
        o2.ApplyExact(t2, MakeRefs({7, 11, 13}, g2));
        EXPECT_TRUE(EmbeddingTable::Identical(t1, t2));
    }
}

TEST(DenseOptimizer, SaveLoadRoundTripResumesBitIdentically)
{
    // Same invariant for the dense side: Save/Load must carry the Adam
    // moments and step count so training resumes bit-identically.
    auto make_step = [](Mlp& mlp, DenseOptimizer& opt,
                        const std::vector<size_t>& slots, const Matrix& x) {
        Matrix out;
        mlp.Forward(x, out);
        Matrix grad(out.rows(), out.cols());
        for (size_t i = 0; i < grad.size(); i++) {
            grad.data()[i] = out.data()[i] / grad.rows();
        }
        mlp.ZeroGrads();
        Matrix grad_in;
        mlp.Backward(grad, grad_in);
        mlp.ApplyOptimizer(opt, slots);
    };

    Rng rng(5);
    Mlp m1({{4, 8, 1}, false}, rng);
    DenseOptimizerConfig config;
    config.kind = DenseOptimizerKind::kAdam;
    DenseOptimizer o1(config);
    const auto slots1 = m1.RegisterParams(o1);

    Rng xrng(6);
    Matrix x(8, 4);
    x.InitUniform(xrng, -1.0f, 1.0f);
    make_step(m1, o1, slots1, x);

    // Clone the MLP params and the optimizer state via serialization.
    BinaryWriter mlp_writer, opt_writer;
    m1.Save(mlp_writer);
    o1.Save(opt_writer);

    Rng rng2(5);
    Mlp m2({{4, 8, 1}, false}, rng2);
    DenseOptimizer o2(config);
    const auto slots2 = m2.RegisterParams(o2);
    BinaryReader mlp_reader(mlp_writer.buffer());
    m2.Load(mlp_reader);
    BinaryReader opt_reader(opt_writer.buffer());
    o2.Load(opt_reader);

    make_step(m1, o1, slots1, x);
    make_step(m2, o2, slots2, x);
    Matrix out1, out2;
    m1.Forward(x, out1);
    m2.Forward(x, out2);
    EXPECT_TRUE(Matrix::Identical(out1, out2));
}

TEST(DenseOptimizer, LoadRejectsMismatchedSlotCount)
{
    Rng rng(5);
    Mlp small({{4, 8, 1}, false}, rng);
    Mlp big({{4, 8, 8, 1}, false}, rng);
    DenseOptimizerConfig config;
    config.kind = DenseOptimizerKind::kAdam;
    DenseOptimizer o_small(config), o_big(config);
    small.RegisterParams(o_small);
    big.RegisterParams(o_big);
    BinaryWriter writer;
    o_small.Save(writer);
    BinaryReader reader(writer.buffer());
    EXPECT_THROW(o_big.Load(reader), std::runtime_error);
}

}  // namespace
}  // namespace neo::ops
