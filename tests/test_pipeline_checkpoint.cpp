/**
 * @file
 * Tests for the inter-batch pipeline driver (Sec. 4.3) and the
 * differential checkpointing of Sec. 4.4 / Check-N-Run: the pipelined
 * collective schedule is numerically transparent, and deltas capture
 * exactly the touched rows at a fraction of a full checkpoint.
 */
#include <gtest/gtest.h>

#include <filesystem>

#include "comm/threaded_process_group.h"
#include "common/parallel_for.h"
#include "core/async_checkpoint.h"
#include "core/checkpoint.h"
#include "core/distributed_trainer.h"
#include "core/pipeline.h"
#include "data/dataset.h"
#include "obs/step_breakdown.h"
#include "obs/trace.h"
#include "sharding/planner.h"

namespace neo::core {
namespace {

data::DatasetConfig
MakeDataConfig(const DlrmConfig& model)
{
    data::DatasetConfig config;
    config.num_dense = model.num_dense;
    config.seed = 31;
    for (const auto& t : model.tables) {
        config.features.push_back({t.rows, t.pooling, 1.05});
    }
    return config;
}

sharding::ShardingPlan
PlanFor(const DlrmConfig& model, int workers)
{
    sharding::PlannerOptions options;
    options.topo.num_workers = workers;
    options.topo.workers_per_node = workers;
    options.global_batch = 64;
    options.hbm_bytes_per_worker = 1e12;
    sharding::ShardingPlanner planner(options);
    return planner.Plan(model.tables);
}

data::Batch
Slice(const data::Batch& global, int rank, size_t local_batch)
{
    data::Batch local;
    const size_t begin = rank * local_batch;
    local.dense = Matrix(local_batch, global.dense.cols());
    for (size_t b = 0; b < local_batch; b++) {
        for (size_t c = 0; c < global.dense.cols(); c++) {
            local.dense(b, c) = global.dense(begin + b, c);
        }
    }
    local.sparse = global.sparse.SliceBatch(begin, begin + local_batch);
    local.labels.assign(global.labels.begin() + begin,
                        global.labels.begin() + begin + local_batch);
    return local;
}

// ------------------------------------------------------------- Pipeline

TEST(Pipeline, MatchesUnpipelinedBitwise)
{
    const DlrmConfig model = MakeSmallDlrmConfig(4, 150, 16);
    const int workers = 2;
    const size_t local_batch = 16;
    const int steps = 6;
    const sharding::ShardingPlan plan = PlanFor(model, workers);

    auto run = [&](bool pipelined) {
        std::vector<double> losses;
        comm::ThreadedWorld::Run(workers, [&](int rank,
                                              comm::ProcessGroup& pg) {
            DistributedDlrm trainer(model, plan, pg);
            data::SyntheticCtrDataset dataset(MakeDataConfig(model));
            std::vector<double> local_losses;
            if (pipelined) {
                PipelinedTrainer pipeline(trainer);
                for (int s = 0; s < steps; s++) {
                    data::Batch global =
                        dataset.NextBatch(local_batch * workers);
                    if (auto loss =
                            pipeline.Push(Slice(global, rank,
                                                local_batch))) {
                        local_losses.push_back(*loss);
                    }
                }
                if (auto loss = pipeline.Flush()) {
                    local_losses.push_back(*loss);
                }
                EXPECT_EQ(pipeline.steps_completed(),
                          static_cast<uint64_t>(steps));
            } else {
                for (int s = 0; s < steps; s++) {
                    data::Batch global =
                        dataset.NextBatch(local_batch * workers);
                    local_losses.push_back(
                        trainer.TrainStep(Slice(global, rank,
                                                local_batch)));
                }
            }
            if (rank == 0) {
                losses = local_losses;
            }
        });
        return losses;
    };

    const std::vector<double> sequential = run(false);
    const std::vector<double> pipelined = run(true);
    ASSERT_EQ(sequential.size(), pipelined.size());
    for (size_t i = 0; i < sequential.size(); i++) {
        EXPECT_EQ(sequential[i], pipelined[i]) << "step " << i;
    }
}

TEST(Pipeline, FlushOnEmptyPipelineIsNoop)
{
    const DlrmConfig model = MakeSmallDlrmConfig(2, 50, 16);
    const sharding::ShardingPlan plan = PlanFor(model, 1);
    comm::ThreadedWorld::Run(1, [&](int, comm::ProcessGroup& pg) {
        DistributedDlrm trainer(model, plan, pg);
        PipelinedTrainer pipeline(trainer);
        EXPECT_FALSE(pipeline.Flush().has_value());
        EXPECT_EQ(pipeline.steps_completed(), 0u);
    });
}

// ------------------------------------------------------------- Overlap

/** Unpipelined baseline: per-step losses as seen by rank 0. */
std::vector<double>
RunSequential(const DlrmConfig& model, const sharding::ShardingPlan& plan,
              int workers, size_t local_batch, int steps)
{
    std::vector<double> losses;
    comm::ThreadedWorld::Run(workers, [&](int rank, comm::ProcessGroup& pg) {
        DistributedDlrm trainer(model, plan, pg);
        data::SyntheticCtrDataset dataset(MakeDataConfig(model));
        std::vector<double> local_losses;
        for (int s = 0; s < steps; s++) {
            data::Batch global = dataset.NextBatch(local_batch * workers);
            local_losses.push_back(
                trainer.TrainStep(Slice(global, rank, local_batch)));
        }
        if (rank == 0) {
            losses = local_losses;
        }
    });
    return losses;
}

/** Overlapped pipeline over a second (prepare) world; rank 0's losses. */
std::vector<double>
RunOverlapped(const DlrmConfig& model, const sharding::ShardingPlan& plan,
              int workers, size_t local_batch, int steps)
{
    std::vector<double> losses;
    comm::ThreadedWorld prepare_world(workers);
    comm::ThreadedWorld::Run(workers, [&](int rank, comm::ProcessGroup& pg) {
        DistributedDlrm trainer(model, plan, pg);
        data::SyntheticCtrDataset dataset(MakeDataConfig(model));
        std::vector<double> local_losses;
        PipelinedTrainer pipeline(trainer, prepare_world.GetGroup(rank));
        EXPECT_TRUE(pipeline.overlapped());
        for (int s = 0; s < steps; s++) {
            data::Batch global = dataset.NextBatch(local_batch * workers);
            if (auto loss =
                    pipeline.Push(Slice(global, rank, local_batch))) {
                local_losses.push_back(*loss);
            }
        }
        if (auto loss = pipeline.Flush()) {
            local_losses.push_back(*loss);
        }
        EXPECT_EQ(pipeline.steps_completed(),
                  static_cast<uint64_t>(steps));
        if (rank == 0) {
            losses = local_losses;
        }
    });
    return losses;
}

TEST(PipelineOverlap, MatchesUnpipelinedBitwiseAcrossThreadCounts)
{
    // The overlapped schedule moves the input AllToAll onto a background
    // lane and a second communicator; neither may change a single bit of
    // the result, at any shared-pool width (including 1, where a shared
    // pool would deadlock — the dedicated lanes must not care).
    const DlrmConfig model = MakeSmallDlrmConfig(4, 150, 16);
    const int workers = 2;
    const size_t local_batch = 16;
    const int steps = 5;
    const sharding::ShardingPlan plan = PlanFor(model, workers);

    const std::vector<double> sequential =
        RunSequential(model, plan, workers, local_batch, steps);
    ASSERT_EQ(sequential.size(), static_cast<size_t>(steps));

    for (const size_t threads : {size_t{1}, size_t{2}, size_t{7}}) {
        SetDefaultPoolThreads(threads);
        const std::vector<double> overlapped =
            RunOverlapped(model, plan, workers, local_batch, steps);
        ASSERT_EQ(overlapped.size(), sequential.size())
            << "threads=" << threads;
        for (size_t i = 0; i < sequential.size(); i++) {
            EXPECT_EQ(sequential[i], overlapped[i])
                << "step " << i << " threads=" << threads;
        }
    }
    SetDefaultPoolThreads(DefaultParallelism());
}

TEST(PipelineOverlap, OverlapSavedNonzeroAndBucketsCoverStep)
{
    // The span-level proof that prepare really left the critical path:
    // rank 0's background lane records prepare spans that coincide with
    // its pipeline_step spans (overlap_saved > 0), while the exclusive-
    // time buckets still sum to the step wall clock.
    const DlrmConfig model = MakeSmallDlrmConfig(4, 150, 16);
    const int workers = 2;
    const size_t local_batch = 16;
    const int steps = 6;
    const sharding::ShardingPlan plan = PlanFor(model, workers);

    // A loaded (or sanitizer-slowed) box can starve the lane entirely out
    // of every step window in one short run, so retry: the property under
    // test is that prepare *can* run off the critical path, not that the
    // OS schedules it concurrently on every attempt. Coverage must hold
    // on every attempt regardless.
    obs::Tracer& tracer = obs::Tracer::Get();
    obs::StepBreakdown breakdown;
    for (int attempt = 0; attempt < 5; attempt++) {
        tracer.SetEnabled(true);
        tracer.Clear();
        RunOverlapped(model, plan, workers, local_batch, steps);
        const std::vector<obs::Span> spans = tracer.Collect();
        tracer.SetEnabled(false);
        tracer.Clear();

        breakdown = obs::StepBreakdown::FromSpans(spans, 0, "pipeline_step");
        ASSERT_EQ(breakdown.steps, steps);
        // Exclusive-time attribution: buckets sum to the wall clock
        // exactly (up to float rounding), with overlap_saved reported on
        // top, not inside.
        EXPECT_NEAR(breakdown.Coverage(), 1.0, 1e-6);
        if (breakdown.overlap_saved > 0.0) {
            break;
        }
    }
    EXPECT_GT(breakdown.overlap_saved, 0.0);
}

// ----------------------------------------------------------- Checkpoint

TEST(DeltaCheckpoint, BaselinePlusDeltasRestoreExactly)
{
    Rng rng(3);
    ops::EmbeddingTable table(200, 8);
    table.InitUniform(rng);
    DeltaCheckpointer checkpointer(&table);
    const auto baseline = checkpointer.WriteBaseline();

    // Mutate a few rows, snapshot, mutate more, snapshot again.
    std::vector<std::vector<uint8_t>> deltas;
    const float row_a[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    table.WriteRow(5, row_a);
    table.WriteRow(100, row_a);
    deltas.push_back(checkpointer.WriteDelta());
    EXPECT_EQ(checkpointer.last_delta_rows(), 2u);

    const float row_b[8] = {-1, -2, -3, -4, -5, -6, -7, -8};
    table.WriteRow(5, row_b);   // re-touched
    table.WriteRow(42, row_b);  // new
    deltas.push_back(checkpointer.WriteDelta());
    EXPECT_EQ(checkpointer.last_delta_rows(), 2u);

    const ops::EmbeddingTable restored =
        DeltaCheckpointer::Restore(baseline, deltas);
    EXPECT_TRUE(ops::EmbeddingTable::Identical(table, restored));
}

TEST(DeltaCheckpoint, NoChangesMeansEmptyDelta)
{
    Rng rng(5);
    ops::EmbeddingTable table(50, 4);
    table.InitUniform(rng);
    DeltaCheckpointer checkpointer(&table);
    checkpointer.WriteBaseline();
    const auto delta = checkpointer.WriteDelta();
    EXPECT_EQ(checkpointer.last_delta_rows(), 0u);
    const auto restored =
        DeltaCheckpointer::Restore(checkpointer.WriteBaseline(), {delta});
    EXPECT_TRUE(ops::EmbeddingTable::Identical(table, restored));
}

TEST(DeltaCheckpoint, DeltaMuchSmallerThanBaselineUnderSparseUpdates)
{
    // The Check-N-Run observation: one training interval touches only a
    // small, Zipf-skewed subset of rows.
    Rng rng(7);
    ops::EmbeddingTable table(20000, 16);
    table.InitUniform(rng);
    DeltaCheckpointer checkpointer(&table);
    const auto baseline = checkpointer.WriteBaseline();

    ZipfSampler sampler(20000, 1.1);
    std::vector<float> row(16);
    for (int i = 0; i < 500; i++) {
        const int64_t r = static_cast<int64_t>(sampler.Sample(rng));
        table.ReadRow(r, row.data());
        for (auto& x : row) {
            x += 0.01f;
        }
        table.WriteRow(r, row.data());
    }
    const auto delta = checkpointer.WriteDelta();
    EXPECT_LT(checkpointer.last_delta_rows(), 500u);  // duplicates merge
    EXPECT_LT(delta.size(), baseline.size() / 10);

    const auto restored =
        DeltaCheckpointer::Restore(baseline, {delta});
    EXPECT_TRUE(ops::EmbeddingTable::Identical(table, restored));
}

TEST(DeltaCheckpoint, RestoreRejectsCorruptDelta)
{
    Rng rng(9);
    ops::EmbeddingTable table(10, 4);
    table.InitUniform(rng);
    DeltaCheckpointer checkpointer(&table);
    const auto baseline = checkpointer.WriteBaseline();
    auto delta = checkpointer.WriteDelta();
    delta[0] ^= 0xFF;  // corrupt the magic
    EXPECT_THROW(DeltaCheckpointer::Restore(baseline, {delta}),
                 std::runtime_error);
}

// ----------------------------------------------------- Async checkpoint

/** Train `steps` steps, checkpointing each one into `store`. */
void
TrainWithCheckpoints(const DlrmConfig& model,
                     const sharding::ShardingPlan& plan, int workers,
                     size_t local_batch, int steps, CheckpointStore& store,
                     bool async)
{
    comm::ThreadedWorld::Run(workers, [&](int rank, comm::ProcessGroup& pg) {
        DistributedDlrm trainer(model, plan, pg);
        data::SyntheticCtrDataset dataset(MakeDataConfig(model));
        DistributedCheckpointer checkpointer(trainer, store);
        std::optional<AsyncCheckpointer> background;
        if (async) {
            background.emplace(checkpointer, rank);
            background->WriteBaseline();
        } else {
            checkpointer.WriteBaseline();
        }
        for (int s = 0; s < steps; s++) {
            data::Batch global = dataset.NextBatch(local_batch * workers);
            trainer.TrainStep(Slice(global, rank, local_batch));
            if (async) {
                background->WriteDelta();
            } else {
                checkpointer.WriteDelta();
            }
        }
        if (async) {
            background->Flush();
            EXPECT_EQ(background->flushed_generation(),
                      static_cast<uint64_t>(steps));
            EXPECT_EQ(background->in_flight(), 0u);
        }
    });
}

TEST(AsyncCheckpoint, StoreByteIdenticalToSyncCheckpointing)
{
    // Async checkpointing only moves WHERE serialization runs; every
    // baseline and every delta in the store must be byte-for-byte what
    // the synchronous writer produces.
    const DlrmConfig model = MakeSmallDlrmConfig(4, 150, 16);
    const int workers = 2;
    const size_t local_batch = 16;
    const int steps = 5;
    const sharding::ShardingPlan plan = PlanFor(model, workers);

    CheckpointStore sync_store;
    CheckpointStore async_store;
    TrainWithCheckpoints(model, plan, workers, local_batch, steps,
                         sync_store, /*async=*/false);
    TrainWithCheckpoints(model, plan, workers, local_batch, steps,
                         async_store, /*async=*/true);

    ASSERT_EQ(sync_store.Ranks(), async_store.Ranks());
    for (const int rank : sync_store.Ranks()) {
        EXPECT_EQ(sync_store.Baseline(rank), async_store.Baseline(rank))
            << "baseline, rank " << rank;
        const auto sync_deltas = sync_store.Deltas(rank);
        const auto async_deltas = async_store.Deltas(rank);
        ASSERT_EQ(sync_deltas.size(), async_deltas.size())
            << "rank " << rank;
        ASSERT_EQ(sync_deltas.size(), static_cast<size_t>(steps));
        for (size_t i = 0; i < sync_deltas.size(); i++) {
            EXPECT_EQ(sync_deltas[i], async_deltas[i])
                << "delta " << i << ", rank " << rank;
        }
    }
}

TEST(AsyncCheckpoint, DiskStoreDrainsAndRestoresExactly)
{
    // Disk mode: the flusher lane writes through CheckpointStore's
    // atomic file path; after Flush a FRESH store on the directory (a
    // different process, in effect) restores the exact model state.
    const DlrmConfig model = MakeSmallDlrmConfig(3, 120, 16);
    const int workers = 2;
    const size_t local_batch = 8;
    const int steps = 4;
    const sharding::ShardingPlan plan = PlanFor(model, workers);

    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / "neo_async_ckpt";
    std::filesystem::remove_all(dir);

    Matrix trained_logits;
    {
        CheckpointStore store(dir.string());
        comm::ThreadedWorld::Run(
            workers, [&](int rank, comm::ProcessGroup& pg) {
                DistributedDlrm trainer(model, plan, pg);
                data::SyntheticCtrDataset dataset(MakeDataConfig(model));
                DistributedCheckpointer checkpointer(trainer, store);
                AsyncCheckpointer background(checkpointer, rank);
                background.WriteBaseline();
                for (int s = 0; s < steps; s++) {
                    data::Batch global =
                        dataset.NextBatch(local_batch * workers);
                    trainer.TrainStep(Slice(global, rank, local_batch));
                    background.WriteDelta();
                }
                background.Flush();
                data::SyntheticCtrDataset probe(MakeDataConfig(model));
                data::Batch global = probe.NextBatch(local_batch * workers);
                Matrix logits;
                trainer.Predict(Slice(global, rank, local_batch), logits);
                if (rank == 0) {
                    trained_logits = logits;
                }
            });
    }

    CheckpointStore reopened(dir.string());
    comm::ThreadedWorld::Run(workers, [&](int rank, comm::ProcessGroup& pg) {
        DistributedDlrm restored(model, plan, pg);
        DistributedCheckpointer::RestoreInto(reopened, restored);
        data::SyntheticCtrDataset probe(MakeDataConfig(model));
        data::Batch global = probe.NextBatch(local_batch * workers);
        Matrix logits;
        restored.Predict(Slice(global, rank, local_batch), logits);
        if (rank == 0) {
            EXPECT_EQ(Matrix::MaxAbsDiff(trained_logits, logits), 0.0f);
        }
    });
    std::filesystem::remove_all(dir);
}

TEST(AsyncCheckpoint, CaptureFailureReleasesSlotForLaterWrites)
{
    // The foreground half can fail (here: delta before baseline); the
    // in-flight slot must come back so the checkpointer stays usable.
    const DlrmConfig model = MakeSmallDlrmConfig(2, 50, 16);
    const sharding::ShardingPlan plan = PlanFor(model, 1);
    CheckpointStore store;
    comm::ThreadedWorld::Run(1, [&](int rank, comm::ProcessGroup& pg) {
        DistributedDlrm trainer(model, plan, pg);
        DistributedCheckpointer checkpointer(trainer, store);
        AsyncCheckpointer background(checkpointer, rank);
        EXPECT_THROW(background.WriteDelta(), std::runtime_error);
        EXPECT_EQ(background.in_flight(), 0u);
        background.WriteBaseline();
        data::SyntheticCtrDataset dataset(MakeDataConfig(model));
        data::Batch batch = dataset.NextBatch(8);
        trainer.TrainStep(batch);
        background.WriteDelta();
        background.Flush();
        EXPECT_EQ(background.flushed_generation(), 1u);
    });
    EXPECT_EQ(store.Deltas(0).size(), 1u);
}

}  // namespace
}  // namespace neo::core
