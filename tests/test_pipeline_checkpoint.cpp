/**
 * @file
 * Tests for the inter-batch pipeline driver (Sec. 4.3) and the
 * differential checkpointing of Sec. 4.4 / Check-N-Run: the pipelined
 * collective schedule is numerically transparent, and deltas capture
 * exactly the touched rows at a fraction of a full checkpoint.
 */
#include <gtest/gtest.h>

#include "comm/threaded_process_group.h"
#include "core/checkpoint.h"
#include "core/distributed_trainer.h"
#include "core/pipeline.h"
#include "data/dataset.h"
#include "sharding/planner.h"

namespace neo::core {
namespace {

data::DatasetConfig
MakeDataConfig(const DlrmConfig& model)
{
    data::DatasetConfig config;
    config.num_dense = model.num_dense;
    config.seed = 31;
    for (const auto& t : model.tables) {
        config.features.push_back({t.rows, t.pooling, 1.05});
    }
    return config;
}

sharding::ShardingPlan
PlanFor(const DlrmConfig& model, int workers)
{
    sharding::PlannerOptions options;
    options.topo.num_workers = workers;
    options.topo.workers_per_node = workers;
    options.global_batch = 64;
    options.hbm_bytes_per_worker = 1e12;
    sharding::ShardingPlanner planner(options);
    return planner.Plan(model.tables);
}

data::Batch
Slice(const data::Batch& global, int rank, size_t local_batch)
{
    data::Batch local;
    const size_t begin = rank * local_batch;
    local.dense = Matrix(local_batch, global.dense.cols());
    for (size_t b = 0; b < local_batch; b++) {
        for (size_t c = 0; c < global.dense.cols(); c++) {
            local.dense(b, c) = global.dense(begin + b, c);
        }
    }
    local.sparse = global.sparse.SliceBatch(begin, begin + local_batch);
    local.labels.assign(global.labels.begin() + begin,
                        global.labels.begin() + begin + local_batch);
    return local;
}

// ------------------------------------------------------------- Pipeline

TEST(Pipeline, MatchesUnpipelinedBitwise)
{
    const DlrmConfig model = MakeSmallDlrmConfig(4, 150, 16);
    const int workers = 2;
    const size_t local_batch = 16;
    const int steps = 6;
    const sharding::ShardingPlan plan = PlanFor(model, workers);

    auto run = [&](bool pipelined) {
        std::vector<double> losses;
        comm::ThreadedWorld::Run(workers, [&](int rank,
                                              comm::ProcessGroup& pg) {
            DistributedDlrm trainer(model, plan, pg);
            data::SyntheticCtrDataset dataset(MakeDataConfig(model));
            std::vector<double> local_losses;
            if (pipelined) {
                PipelinedTrainer pipeline(trainer);
                for (int s = 0; s < steps; s++) {
                    data::Batch global =
                        dataset.NextBatch(local_batch * workers);
                    if (auto loss =
                            pipeline.Push(Slice(global, rank,
                                                local_batch))) {
                        local_losses.push_back(*loss);
                    }
                }
                if (auto loss = pipeline.Flush()) {
                    local_losses.push_back(*loss);
                }
                EXPECT_EQ(pipeline.steps_completed(),
                          static_cast<uint64_t>(steps));
            } else {
                for (int s = 0; s < steps; s++) {
                    data::Batch global =
                        dataset.NextBatch(local_batch * workers);
                    local_losses.push_back(
                        trainer.TrainStep(Slice(global, rank,
                                                local_batch)));
                }
            }
            if (rank == 0) {
                losses = local_losses;
            }
        });
        return losses;
    };

    const std::vector<double> sequential = run(false);
    const std::vector<double> pipelined = run(true);
    ASSERT_EQ(sequential.size(), pipelined.size());
    for (size_t i = 0; i < sequential.size(); i++) {
        EXPECT_EQ(sequential[i], pipelined[i]) << "step " << i;
    }
}

TEST(Pipeline, FlushOnEmptyPipelineIsNoop)
{
    const DlrmConfig model = MakeSmallDlrmConfig(2, 50, 16);
    const sharding::ShardingPlan plan = PlanFor(model, 1);
    comm::ThreadedWorld::Run(1, [&](int, comm::ProcessGroup& pg) {
        DistributedDlrm trainer(model, plan, pg);
        PipelinedTrainer pipeline(trainer);
        EXPECT_FALSE(pipeline.Flush().has_value());
        EXPECT_EQ(pipeline.steps_completed(), 0u);
    });
}

// ----------------------------------------------------------- Checkpoint

TEST(DeltaCheckpoint, BaselinePlusDeltasRestoreExactly)
{
    Rng rng(3);
    ops::EmbeddingTable table(200, 8);
    table.InitUniform(rng);
    DeltaCheckpointer checkpointer(&table);
    const auto baseline = checkpointer.WriteBaseline();

    // Mutate a few rows, snapshot, mutate more, snapshot again.
    std::vector<std::vector<uint8_t>> deltas;
    const float row_a[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    table.WriteRow(5, row_a);
    table.WriteRow(100, row_a);
    deltas.push_back(checkpointer.WriteDelta());
    EXPECT_EQ(checkpointer.last_delta_rows(), 2u);

    const float row_b[8] = {-1, -2, -3, -4, -5, -6, -7, -8};
    table.WriteRow(5, row_b);   // re-touched
    table.WriteRow(42, row_b);  // new
    deltas.push_back(checkpointer.WriteDelta());
    EXPECT_EQ(checkpointer.last_delta_rows(), 2u);

    const ops::EmbeddingTable restored =
        DeltaCheckpointer::Restore(baseline, deltas);
    EXPECT_TRUE(ops::EmbeddingTable::Identical(table, restored));
}

TEST(DeltaCheckpoint, NoChangesMeansEmptyDelta)
{
    Rng rng(5);
    ops::EmbeddingTable table(50, 4);
    table.InitUniform(rng);
    DeltaCheckpointer checkpointer(&table);
    checkpointer.WriteBaseline();
    const auto delta = checkpointer.WriteDelta();
    EXPECT_EQ(checkpointer.last_delta_rows(), 0u);
    const auto restored =
        DeltaCheckpointer::Restore(checkpointer.WriteBaseline(), {delta});
    EXPECT_TRUE(ops::EmbeddingTable::Identical(table, restored));
}

TEST(DeltaCheckpoint, DeltaMuchSmallerThanBaselineUnderSparseUpdates)
{
    // The Check-N-Run observation: one training interval touches only a
    // small, Zipf-skewed subset of rows.
    Rng rng(7);
    ops::EmbeddingTable table(20000, 16);
    table.InitUniform(rng);
    DeltaCheckpointer checkpointer(&table);
    const auto baseline = checkpointer.WriteBaseline();

    ZipfSampler sampler(20000, 1.1);
    std::vector<float> row(16);
    for (int i = 0; i < 500; i++) {
        const int64_t r = static_cast<int64_t>(sampler.Sample(rng));
        table.ReadRow(r, row.data());
        for (auto& x : row) {
            x += 0.01f;
        }
        table.WriteRow(r, row.data());
    }
    const auto delta = checkpointer.WriteDelta();
    EXPECT_LT(checkpointer.last_delta_rows(), 500u);  // duplicates merge
    EXPECT_LT(delta.size(), baseline.size() / 10);

    const auto restored =
        DeltaCheckpointer::Restore(baseline, {delta});
    EXPECT_TRUE(ops::EmbeddingTable::Identical(table, restored));
}

TEST(DeltaCheckpoint, RestoreRejectsCorruptDelta)
{
    Rng rng(9);
    ops::EmbeddingTable table(10, 4);
    table.InitUniform(rng);
    DeltaCheckpointer checkpointer(&table);
    const auto baseline = checkpointer.WriteBaseline();
    auto delta = checkpointer.WriteDelta();
    delta[0] ^= 0xFF;  // corrupt the magic
    EXPECT_THROW(DeltaCheckpointer::Restore(baseline, {delta}),
                 std::runtime_error);
}

}  // namespace
}  // namespace neo::core
