/**
 * @file
 * Tests for the serving subsystem: dynamic batching, snapshot cut/restore
 * parity with the trainer, forward determinism (read-only, thread-count-
 * and batch-composition-independent), tiered-cache bitwise equivalence,
 * hot-swap under concurrent load with exact version attribution, and
 * SLO-aware admission shedding with hysteresis recovery.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>
#include <thread>
#include <vector>

#include "comm/threaded_process_group.h"
#include "common/parallel_for.h"
#include "core/checkpoint.h"
#include "core/distributed_trainer.h"
#include "core/dlrm_config.h"
#include "data/dataset.h"
#include "serve/batcher.h"
#include "serve/engine.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "sharding/planner.h"

namespace neo {
namespace {

using core::DistributedDlrm;
using core::DlrmConfig;

data::DatasetConfig
MakeDataConfig(const DlrmConfig& model, uint64_t seed = 99)
{
    data::DatasetConfig config;
    config.num_dense = model.num_dense;
    config.seed = seed;
    for (const auto& t : model.tables) {
        config.features.push_back({t.rows, t.pooling, 1.05});
    }
    return config;
}

sharding::ShardingPlan
MakePlan(const DlrmConfig& model, int workers, bool allow_cw = true,
         bool allow_dp = true, bool allow_rw = true)
{
    sharding::PlannerOptions options;
    options.topo.num_workers = workers;
    options.topo.workers_per_node = workers;
    options.global_batch = 64;
    options.hbm_bytes_per_worker = 1e12;
    options.allow_column_wise = allow_cw;
    options.allow_data_parallel = allow_dp;
    options.allow_row_wise = allow_rw;
    options.cw_min_dim = 16;
    options.cw_shard_dim = 8;
    sharding::ShardingPlanner planner(options);
    return planner.Plan(model.tables);
}

float
Sigmoid(float logit)
{
    return 1.0f / (1.0f + std::exp(-logit));
}

/** Carve rank `rank`'s slice out of a global batch. */
data::Batch
SliceBatch(const data::Batch& global, int rank, size_t local_batch)
{
    data::Batch local;
    local.dense = Matrix(local_batch, global.dense.cols());
    for (size_t b = 0; b < local_batch; b++) {
        for (size_t c = 0; c < global.dense.cols(); c++) {
            local.dense(b, c) = global.dense(rank * local_batch + b, c);
        }
    }
    local.sparse = global.sparse.SliceBatch(rank * local_batch,
                                            (rank + 1) * local_batch);
    local.labels.assign(global.labels.begin() + rank * local_batch,
                        global.labels.begin() + (rank + 1) * local_batch);
    return local;
}

/** Single request for sample `i` of a batch. */
serve::Request
RequestFor(const data::Batch& batch, size_t i, uint64_t id)
{
    serve::Request req;
    req.id = id;
    req.dense.assign(batch.dense.Row(i),
                     batch.dense.Row(i) + batch.dense.cols());
    req.sparse = batch.sparse.SliceBatch(i, i + 1);
    return req;
}

serve::Pending
MakePending(serve::Request req)
{
    serve::Pending pending;
    pending.request = std::move(req);
    pending.enqueue = std::chrono::steady_clock::now();
    return pending;
}

// ---------------------------------------------------------------------
// Batcher
// ---------------------------------------------------------------------

TEST(Batcher, FlushesWhenFull)
{
    serve::BatcherOptions options;
    options.max_batch = 4;
    options.max_delay_us = 1000000;  // age trigger effectively off
    serve::Batcher batcher(options);
    for (uint64_t i = 0; i < 6; i++) {
        serve::Request req;
        req.id = i;
        ASSERT_TRUE(batcher.Push(MakePending(std::move(req))));
    }
    std::vector<serve::Pending> out;
    ASSERT_TRUE(batcher.NextBatch(out, std::chrono::milliseconds(0)));
    ASSERT_EQ(out.size(), 4u);  // capped at max_batch, oldest first
    EXPECT_EQ(out[0].request.id, 0u);
    EXPECT_EQ(out[3].request.id, 3u);
    EXPECT_EQ(batcher.size(), 2u);
}

TEST(Batcher, FlushesOnAge)
{
    serve::BatcherOptions options;
    options.max_batch = 64;
    options.max_delay_us = 2000;
    serve::Batcher batcher(options);
    serve::Request req;
    req.id = 7;
    ASSERT_TRUE(batcher.Push(MakePending(std::move(req))));
    std::vector<serve::Pending> out;
    // One request, far below max_batch: the age trigger must flush it.
    ASSERT_TRUE(batcher.NextBatch(out, std::chrono::milliseconds(1000)));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].request.id, 7u);
}

TEST(Batcher, TimesOutEmpty)
{
    serve::Batcher batcher(serve::BatcherOptions{});
    std::vector<serve::Pending> out;
    EXPECT_FALSE(batcher.NextBatch(out, std::chrono::milliseconds(1)));
    EXPECT_TRUE(out.empty());
}

TEST(Batcher, StopDrainsQueuedRequests)
{
    serve::BatcherOptions options;
    options.max_batch = 2;
    serve::Batcher batcher(options);
    for (uint64_t i = 0; i < 5; i++) {
        serve::Request req;
        req.id = i;
        ASSERT_TRUE(batcher.Push(MakePending(std::move(req))));
    }
    batcher.Stop();
    serve::Request late;
    EXPECT_FALSE(batcher.Push(MakePending(std::move(late))));
    // Queued requests still drain, batch by batch — zero drops.
    std::vector<serve::Pending> out;
    size_t drained = 0;
    while (batcher.NextBatch(out, std::chrono::milliseconds(0))) {
        drained += out.size();
    }
    EXPECT_EQ(drained, 5u);
    EXPECT_EQ(batcher.size(), 0u);
}

TEST(Batcher, StopWakesConcurrentConsumerAndDrainsEverything)
{
    // The serving loop's shape: a dedicated consumer blocked inside
    // NextBatch with a long wait while producers push and then Stop().
    // The consumer must wake promptly, drain every request exactly once
    // in sub-max_batch chunks, and finally observe false.
    serve::BatcherOptions options;
    options.max_batch = 3;
    options.max_delay_us = 60'000'000;  // age trigger effectively off
    serve::Batcher batcher(options);

    constexpr uint64_t kRequests = 10;
    std::vector<uint64_t> drained_ids;
    std::thread consumer([&] {
        std::vector<serve::Pending> out;
        while (batcher.NextBatch(out, std::chrono::milliseconds(10000))) {
            EXPECT_LE(out.size(), options.max_batch);
            for (const serve::Pending& p : out) {
                drained_ids.push_back(p.request.id);
            }
        }
    });

    for (uint64_t i = 0; i < kRequests; i++) {
        serve::Request req;
        req.id = i;
        ASSERT_TRUE(batcher.Push(MakePending(std::move(req))));
    }
    batcher.Stop();
    consumer.join();

    // Every id exactly once, in FIFO order; nothing left behind.
    ASSERT_EQ(drained_ids.size(), kRequests);
    for (uint64_t i = 0; i < kRequests; i++) {
        EXPECT_EQ(drained_ids[i], i);
    }
    EXPECT_EQ(batcher.size(), 0u);
}

TEST(Batcher, NextBatchReturnsWhenWaitBudgetExpiresWithUnflushableQueue)
{
    // Requests are queued but neither flush trigger can fire (far below
    // max_batch, age trigger an eternity away): NextBatch must still
    // honor its wait budget and hand control back — the caller runs its
    // idle work — rather than blocking until the age trigger.
    serve::BatcherOptions options;
    options.max_batch = 8;
    options.max_delay_us = 10'000'000;
    serve::Batcher batcher(options);
    for (uint64_t i = 0; i < 2; i++) {
        serve::Request req;
        req.id = i;
        ASSERT_TRUE(batcher.Push(MakePending(std::move(req))));
    }

    std::vector<serve::Pending> out;
    const auto begin = std::chrono::steady_clock::now();
    EXPECT_FALSE(batcher.NextBatch(out, std::chrono::milliseconds(50)));
    const auto waited = std::chrono::steady_clock::now() - begin;
    EXPECT_TRUE(out.empty());
    // Promptly: well before the 10 s age trigger (generous CI margin).
    EXPECT_LT(waited, std::chrono::seconds(5));
    // The queued requests were not dropped by the timeout.
    EXPECT_EQ(batcher.size(), 2u);
}

TEST(Batcher, MergePadsToWorldMultiple)
{
    DlrmConfig model = core::MakeSmallDlrmConfig(3, 50, 16);
    data::SyntheticCtrDataset dataset(MakeDataConfig(model));
    data::Batch batch = dataset.NextBatch(4);
    std::vector<serve::Pending> pending;
    for (size_t i = 0; i < 3; i++) {
        pending.push_back(MakePending(RequestFor(batch, i, i)));
    }
    Matrix dense;
    data::KeyedJagged sparse;
    serve::Batcher::Merge(pending, /*pad=*/1, model.num_dense,
                          model.tables.size(), dense, sparse);
    ASSERT_EQ(dense.rows(), 4u);
    ASSERT_EQ(sparse.batch, 4u);
    ASSERT_EQ(sparse.num_tables, model.tables.size());
    for (size_t i = 0; i < 3; i++) {
        for (size_t c = 0; c < model.num_dense; c++) {
            EXPECT_EQ(dense(i, c), batch.dense(i, c));
        }
    }
    // Pad samples are empty: zero dense features, zero sparse lookups.
    for (size_t t = 0; t < model.tables.size(); t++) {
        EXPECT_EQ(sparse.LengthsForTable(t)[3], 0u);
    }
}

// ---------------------------------------------------------------------
// Snapshot registry
// ---------------------------------------------------------------------

TEST(SnapshotRegistry, VersionsMustIncrease)
{
    serve::SnapshotRegistry registry;
    EXPECT_EQ(registry.Current(), nullptr);
    auto v1 = std::make_shared<serve::ModelSnapshot>();
    v1->version = 1;
    registry.Publish(v1);
    EXPECT_EQ(registry.CurrentVersion(), 1u);
    auto stale = std::make_shared<serve::ModelSnapshot>();
    stale->version = 1;
    EXPECT_THROW(registry.Publish(stale), std::exception);
    auto v3 = std::make_shared<serve::ModelSnapshot>();
    v3->version = 3;
    registry.Publish(v3);
    EXPECT_EQ(registry.CurrentVersion(), 3u);
    EXPECT_EQ(registry.SwapCount(), 2u);
    // A reader holding v1 keeps a valid view after the swaps.
    EXPECT_EQ(v1->version, 1u);
}

// ---------------------------------------------------------------------
// Disk-backed checkpoint store
// ---------------------------------------------------------------------

TEST(DiskCheckpointStore, RoundTripsAcrossStoreInstances)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() / "neo_serve_store_rt")
            .string();
    std::filesystem::remove_all(dir);

    DlrmConfig model = core::MakeSmallDlrmConfig(4, 150, 16);
    const int workers = 2;
    const sharding::ShardingPlan plan = MakePlan(model, workers);
    const size_t global_batch = 16;
    const size_t local_batch = global_batch / workers;
    Matrix source_logits(global_batch, 1);
    {
        core::CheckpointStore store(dir);
        comm::ThreadedWorld::Run(
            workers, [&](int rank, comm::ProcessGroup& pg) {
                DistributedDlrm trainer(model, plan, pg);
                core::DistributedCheckpointer ckpt(trainer, store);
                data::SyntheticCtrDataset dataset(MakeDataConfig(model));
                ckpt.WriteBaseline();
                for (int s = 0; s < 3; s++) {
                    data::Batch global = dataset.NextBatch(global_batch);
                    trainer.TrainStep(
                        SliceBatch(global, rank, local_batch));
                }
                ckpt.WriteDelta();
                data::Batch eval = dataset.NextBatch(global_batch);
                Matrix logits;
                trainer.Predict(SliceBatch(eval, rank, local_batch),
                                logits);
                for (size_t b = 0; b < local_batch; b++) {
                    source_logits(rank * local_batch + b, 0) =
                        logits(b, 0);
                }
            });
    }

    // A FRESH store on the same directory sees the published streams —
    // this is what a separate serving process does.
    core::CheckpointStore reopened(dir);
    ASSERT_EQ(reopened.Ranks().size(), static_cast<size_t>(workers));
    EXPECT_GT(reopened.TotalBytes(), 0u);
    Matrix restored_logits(global_batch, 1);
    comm::ThreadedWorld::Run(
        workers, [&](int rank, comm::ProcessGroup& pg) {
            DistributedDlrm trainer(model, plan, pg);
            core::DistributedCheckpointer::RestoreInto(reopened, trainer);
            // Replay the writer's stream position: 3 train batches, then
            // the eval batch.
            data::SyntheticCtrDataset dataset(MakeDataConfig(model));
            for (int s = 0; s < 3; s++) {
                dataset.NextBatch(global_batch);
            }
            data::Batch eval = dataset.NextBatch(global_batch);
            Matrix logits;
            trainer.Predict(SliceBatch(eval, rank, local_batch), logits);
            for (size_t b = 0; b < local_batch; b++) {
                restored_logits(rank * local_batch + b, 0) = logits(b, 0);
            }
        });
    EXPECT_TRUE(Matrix::Identical(source_logits, restored_logits))
        << "max diff "
        << Matrix::MaxAbsDiff(source_logits, restored_logits);
    std::filesystem::remove_all(dir);
}

TEST(DiskCheckpointStore, RejectsDeltaBeforeBaseline)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() / "neo_serve_store_err")
            .string();
    std::filesystem::remove_all(dir);
    core::CheckpointStore store(dir);
    EXPECT_THROW(store.AppendDelta(0, {1, 2, 3}), std::exception);
    EXPECT_THROW(store.Baseline(0), std::exception);
    EXPECT_TRUE(store.Ranks().empty());
    std::filesystem::remove_all(dir);
}

TEST(DiskCheckpointStore, RejectsCorruptedBaseline)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() / "neo_serve_store_bad")
            .string();
    std::filesystem::remove_all(dir);
    DlrmConfig model = core::MakeSmallDlrmConfig(2, 40, 16);
    const sharding::ShardingPlan plan = MakePlan(model, 1);
    {
        core::CheckpointStore store(dir);
        comm::ThreadedWorld::Run(1, [&](int, comm::ProcessGroup& pg) {
            DistributedDlrm trainer(model, plan, pg);
            core::DistributedCheckpointer ckpt(trainer, store);
            ckpt.WriteBaseline();
        });
    }
    // Truncate the stored baseline mid-stream.
    const std::string path = dir + "/rank_0/baseline.bin";
    const auto full_size = std::filesystem::file_size(path);
    ASSERT_GT(full_size, 64u);
    std::filesystem::resize_file(path, full_size / 2);
    core::CheckpointStore reopened(dir);
    EXPECT_THROW(core::AssembledCheckpoint::FromStore(reopened, model),
                 std::exception);
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Snapshot / engine parity with the trainer
// ---------------------------------------------------------------------

/** Train briefly, cut a snapshot from the live trainer, and serve the
 *  trainer's own eval batch through the engine; scores must be bitwise
 *  equal to trainer.Predict under the same plan and world size. */
TEST(Snapshot, FromTrainerServesBitwiseTrainerScores)
{
    DlrmConfig model = core::MakeSmallDlrmConfig(4, 150, 16);
    const int workers = 2;
    const sharding::ShardingPlan plan = MakePlan(model, workers);
    const size_t global_batch = 16;
    const size_t local_batch = global_batch / workers;

    std::shared_ptr<const serve::ModelSnapshot> shared_snap;
    Matrix trainer_logits(global_batch, 1);
    std::vector<float> served(global_batch, 0.0f);
    comm::ThreadedWorld::Run(
        workers, [&](int rank, comm::ProcessGroup& pg) {
            DistributedDlrm trainer(model, plan, pg);
            data::SyntheticCtrDataset dataset(MakeDataConfig(model));
            for (int s = 0; s < 3; s++) {
                data::Batch global = dataset.NextBatch(global_batch);
                trainer.TrainStep(SliceBatch(global, rank, local_batch));
            }
            auto snap =
                serve::SnapshotFromTrainer(trainer, plan, /*version=*/1);
            if (rank == 0) {
                ASSERT_NE(snap, nullptr);
                shared_snap = snap;
            } else {
                EXPECT_EQ(snap, nullptr);
            }
            pg.Barrier();  // publishes shared_snap to every rank

            data::Batch eval = dataset.NextBatch(global_batch);
            Matrix logits;
            trainer.Predict(SliceBatch(eval, rank, local_batch), logits);
            for (size_t b = 0; b < local_batch; b++) {
                trainer_logits(rank * local_batch + b, 0) = logits(b, 0);
            }

            serve::InferenceEngine engine(serve::EngineOptions{}, pg);
            std::vector<float> out;
            engine.Forward(shared_snap, eval.dense, eval.sparse, out);
            if (rank == 0) {
                served = out;
            }
        });
    for (size_t b = 0; b < global_batch; b++) {
        EXPECT_EQ(served[b], trainer_logits(b, 0)) << "sample " << b;
    }
}

/** Snapshot restored from a disk checkpoint, re-sliced onto a DIFFERENT
 *  serving plan and world size, still reproduces the trainer's forward
 *  bitwise (table-wise pooling order is world-size invariant). */
TEST(Snapshot, FromStoreServesAcrossPlanChange)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() / "neo_serve_snap_store")
            .string();
    std::filesystem::remove_all(dir);

    DlrmConfig model = core::MakeSmallDlrmConfig(4, 150, 16);
    const int train_workers = 2;
    const sharding::ShardingPlan train_plan =
        MakePlan(model, train_workers, /*allow_cw=*/false,
                 /*allow_dp=*/false, /*allow_rw=*/false);
    const size_t global_batch = 16;
    const size_t local_batch = global_batch / train_workers;

    Matrix trainer_logits(global_batch, 1);
    {
        core::CheckpointStore store(dir);
        comm::ThreadedWorld::Run(
            train_workers, [&](int rank, comm::ProcessGroup& pg) {
                DistributedDlrm trainer(model, train_plan, pg);
                core::DistributedCheckpointer ckpt(trainer, store);
                data::SyntheticCtrDataset dataset(MakeDataConfig(model));
                for (int s = 0; s < 3; s++) {
                    data::Batch global = dataset.NextBatch(global_batch);
                    trainer.TrainStep(
                        SliceBatch(global, rank, local_batch));
                }
                ckpt.WriteBaseline();
                data::Batch eval = dataset.NextBatch(global_batch);
                Matrix logits;
                trainer.Predict(SliceBatch(eval, rank, local_batch),
                                logits);
                for (size_t b = 0; b < local_batch; b++) {
                    trainer_logits(rank * local_batch + b, 0) =
                        logits(b, 0);
                }
            });
    }

    // Serve on ONE worker from a fresh store: a different plan, a
    // different world size, no trainer anywhere in the process.
    core::CheckpointStore reopened(dir);
    const sharding::ShardingPlan serve_plan =
        MakePlan(model, 1, false, false, false);
    auto snap = serve::SnapshotFromStore(reopened, model, serve_plan,
                                         /*version=*/1);
    ASSERT_NE(snap, nullptr);
    std::vector<float> served(global_batch, 0.0f);
    comm::ThreadedWorld::Run(1, [&](int, comm::ProcessGroup& pg) {
        serve::InferenceEngine engine(serve::EngineOptions{}, pg);
        data::SyntheticCtrDataset dataset(MakeDataConfig(model));
        for (int s = 0; s < 3; s++) {
            dataset.NextBatch(global_batch);
        }
        data::Batch eval = dataset.NextBatch(global_batch);
        engine.Forward(snap, eval.dense, eval.sparse, served);
    });
    for (size_t b = 0; b < global_batch; b++) {
        EXPECT_EQ(served[b], trainer_logits(b, 0)) << "sample " << b;
    }
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Forward determinism + read-only guarantees
// ---------------------------------------------------------------------

/** Serving the same requests must produce bitwise-identical scores
 *  regardless of intra-op thread count and of how the batcher grouped
 *  them, and must never mutate the snapshot. */
TEST(ServeDeterminism, ThreadCountAndBatchCompositionInvariant)
{
    DlrmConfig model = core::MakeSmallDlrmConfig(4, 150, 16);
    const int workers = 2;
    const sharding::ShardingPlan plan = MakePlan(model, workers);
    const size_t global_batch = 16;
    const size_t local_batch = global_batch / workers;

    std::shared_ptr<const serve::ModelSnapshot> shared_snap;
    comm::ThreadedWorld::Run(
        workers, [&](int rank, comm::ProcessGroup& pg) {
            DistributedDlrm trainer(model, plan, pg);
            data::SyntheticCtrDataset dataset(MakeDataConfig(model));
            for (int s = 0; s < 2; s++) {
                data::Batch global = dataset.NextBatch(global_batch);
                trainer.TrainStep(SliceBatch(global, rank, local_batch));
            }
            auto snap = serve::SnapshotFromTrainer(trainer, plan, 1);
            if (rank == 0) {
                shared_snap = snap;
            }
        });
    ASSERT_NE(shared_snap, nullptr);
    data::SyntheticCtrDataset dataset(MakeDataConfig(model, 1234));
    const data::Batch eval = dataset.NextBatch(global_batch);

    // Frozen copies to prove the forward never writes the snapshot.
    std::vector<ops::EmbeddingTable> before_tables;
    for (const auto& shard : shared_snap->shards) {
        before_tables.push_back(shard.table);
    }
    for (const auto& dp : shared_snap->dp_tables) {
        before_tables.push_back(dp.replica);
    }
    ASSERT_FALSE(before_tables.empty());
    const std::vector<uint8_t> before_dense = shared_snap->dense_blob;

    auto serve_once = [&](size_t threads,
                          size_t dispatch) -> std::vector<float> {
        SetDefaultPoolThreads(threads);
        std::vector<float> scores(global_batch, 0.0f);
        comm::ThreadedWorld::Run(
            workers, [&](int rank, comm::ProcessGroup& pg) {
                serve::InferenceEngine engine(serve::EngineOptions{}, pg);
                // Score the eval batch in dispatches of `dispatch`
                // samples (different batch compositions).
                for (size_t begin = 0; begin < global_batch;
                     begin += dispatch) {
                    Matrix dense(dispatch, model.num_dense);
                    for (size_t b = 0; b < dispatch; b++) {
                        for (size_t c = 0; c < model.num_dense; c++) {
                            dense(b, c) = eval.dense(begin + b, c);
                        }
                    }
                    const data::KeyedJagged sparse =
                        eval.sparse.SliceBatch(begin, begin + dispatch);
                    std::vector<float> out;
                    engine.Forward(shared_snap, dense, sparse, out);
                    if (rank == 0) {
                        for (size_t b = 0; b < dispatch; b++) {
                            scores[begin + b] = out[b];
                        }
                    }
                }
            });
        return scores;
    };

    const std::vector<float> reference = serve_once(1, global_batch);
    for (const size_t threads : {size_t{2}, size_t{7}}) {
        const std::vector<float> scores = serve_once(threads, global_batch);
        EXPECT_EQ(scores, reference) << threads << " threads";
    }
    for (const size_t dispatch : {size_t{2}, size_t{4}, size_t{8}}) {
        const std::vector<float> scores = serve_once(2, dispatch);
        EXPECT_EQ(scores, reference)
            << "dispatch batches of " << dispatch;
    }
    SetDefaultPoolThreads(DefaultParallelism());  // restore the default

    size_t t = 0;
    for (const auto& shard : shared_snap->shards) {
        EXPECT_TRUE(
            ops::EmbeddingTable::Identical(before_tables[t++], shard.table))
            << "serving mutated a snapshot embedding shard";
    }
    for (const auto& dp : shared_snap->dp_tables) {
        EXPECT_TRUE(
            ops::EmbeddingTable::Identical(before_tables[t++], dp.replica))
            << "serving mutated a snapshot DP replica";
    }
    EXPECT_EQ(before_dense, shared_snap->dense_blob)
        << "serving mutated the snapshot dense weights";
}

/** The tiered (HBM-cache-over-DDR) lookup path must be bitwise identical
 *  to direct reads, and actually exercise the cache. */
TEST(ServeDeterminism, TieredPathBitwiseMatchesDirect)
{
    DlrmConfig model = core::MakeSmallDlrmConfig(3, 120, 16);
    const sharding::ShardingPlan plan =
        MakePlan(model, 1, false, false, false);
    std::shared_ptr<const serve::ModelSnapshot> shared_snap;
    comm::ThreadedWorld::Run(1, [&](int, comm::ProcessGroup& pg) {
        DistributedDlrm trainer(model, plan, pg);
        auto snap = serve::SnapshotFromTrainer(trainer, plan, 1);
        shared_snap = snap;
    });
    ASSERT_NE(shared_snap, nullptr);

    data::SyntheticCtrDataset dataset(MakeDataConfig(model));
    const data::Batch eval = dataset.NextBatch(8);
    std::vector<float> direct;
    std::vector<float> tiered;
    double hit_rate = 0.0;
    comm::ThreadedWorld::Run(1, [&](int, comm::ProcessGroup& pg) {
        serve::InferenceEngine plain(serve::EngineOptions{}, pg);
        plain.Forward(shared_snap, eval.dense, eval.sparse, direct);
        EXPECT_EQ(plain.CacheHitRate(), 0.0);  // no tiered shards

        serve::EngineOptions options;
        options.ddr_threshold_bytes = 1;  // every shard through the cache
        serve::InferenceEngine cached(options, pg);
        cached.Forward(shared_snap, eval.dense, eval.sparse, tiered);
        // Second pass over the same rows: the cache must hit now.
        cached.Forward(shared_snap, eval.dense, eval.sparse, tiered);
        hit_rate = cached.CacheHitRate();
    });
    EXPECT_EQ(tiered, direct);
    EXPECT_GT(hit_rate, 0.0);
}

// ---------------------------------------------------------------------
// Server: hot swap under load + admission control
// ---------------------------------------------------------------------

/** Publisher hot-swaps versions while clients serve a sustained stream:
 *  zero requests drop, and every response is attributable to exactly one
 *  version — its score bitwise matches that version's reference. */
TEST(HotSwap, ServesConsistentVersionsUnderConcurrentLoad)
{
    DlrmConfig model = core::MakeSmallDlrmConfig(4, 150, 16);
    const int workers = 2;
    const sharding::ShardingPlan plan = MakePlan(model, workers);
    const size_t global_batch = 16;
    const size_t local_batch = global_batch / workers;
    const int versions = 3;

    // Phase 1: train, cutting a snapshot + per-version reference scores
    // for a fixed eval batch after each block of steps.
    std::vector<std::shared_ptr<const serve::ModelSnapshot>> snaps(
        versions + 1);
    std::vector<Matrix> ref_logits;
    for (int v = 0; v <= versions; v++) {
        ref_logits.emplace_back(global_batch, 1);
    }
    data::SyntheticCtrDataset eval_stream(MakeDataConfig(model, 4242));
    const data::Batch eval = eval_stream.NextBatch(global_batch);
    comm::ThreadedWorld::Run(
        workers, [&](int rank, comm::ProcessGroup& pg) {
            DistributedDlrm trainer(model, plan, pg);
            data::SyntheticCtrDataset dataset(MakeDataConfig(model));
            for (int v = 1; v <= versions; v++) {
                for (int s = 0; s < 2; s++) {
                    data::Batch global = dataset.NextBatch(global_batch);
                    trainer.TrainStep(
                        SliceBatch(global, rank, local_batch));
                }
                auto snap = serve::SnapshotFromTrainer(
                    trainer, plan, static_cast<uint64_t>(v));
                if (rank == 0) {
                    snaps[v] = snap;
                }
                Matrix logits;
                trainer.Predict(SliceBatch(eval, rank, local_batch),
                                logits);
                for (size_t b = 0; b < local_batch; b++) {
                    ref_logits[v](rank * local_batch + b, 0) =
                        logits(b, 0);
                }
            }
        });
    for (int v = 1; v <= versions; v++) {
        ASSERT_NE(snaps[v], nullptr);
    }

    // Phase 2: serve a sustained stream while the publisher swaps.
    serve::ServerOptions options;
    options.batcher.max_batch = 8;
    options.batcher.max_delay_us = 200;
    options.max_queue = 1 << 14;  // shedding off for this test
    serve::Server server(model.num_dense, model.tables.size(), options);
    server.Publish(snaps[1]);

    std::thread world([&] {
        comm::ThreadedWorld::Run(workers,
                                 [&](int rank, comm::ProcessGroup& pg) {
                                     server.RankLoop(rank, pg);
                                 });
    });
    std::thread publisher([&] {
        for (int v = 2; v <= versions; v++) {
            std::this_thread::sleep_for(std::chrono::milliseconds(15));
            server.Publish(snaps[v]);
        }
    });

    std::vector<serve::Ticket> tickets;
    std::vector<size_t> samples;
    uint64_t next_id = 0;
    // Keep submitting until every published version has swapped in and
    // a healthy request count has accumulated.
    while (server.SwapCount() < static_cast<uint64_t>(versions) ||
           tickets.size() < 200) {
        const size_t i = next_id % global_batch;
        serve::Ticket ticket =
            server.Submit(RequestFor(eval, i, next_id));
        ASSERT_EQ(ticket.admission, serve::Admission::kAccepted);
        tickets.push_back(std::move(ticket));
        samples.push_back(i);
        next_id++;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        ASSERT_LT(tickets.size(), 200000u) << "swap never observed";
    }
    publisher.join();
    server.Stop();
    world.join();

    // Every submitted request completed, attributable to exactly one
    // version, with that version's exact score.
    std::set<uint64_t> seen_versions;
    for (size_t i = 0; i < tickets.size(); i++) {
        ASSERT_TRUE(tickets[i].response.valid());
        serve::Response response = tickets[i].response.get();  // no drop
        EXPECT_EQ(response.id, i);
        ASSERT_GE(response.snapshot_version, 1u);
        ASSERT_LE(response.snapshot_version,
                  static_cast<uint64_t>(versions));
        seen_versions.insert(response.snapshot_version);
        const float expect = Sigmoid(
            ref_logits[static_cast<int>(response.snapshot_version)](
                samples[i], 0));
        EXPECT_EQ(response.score, expect)
            << "request " << i << " version "
            << response.snapshot_version;
        EXPECT_GE(response.total_seconds, response.queue_seconds);
    }
    EXPECT_EQ(server.SwapCount(), static_cast<uint64_t>(versions));
    // Old and new versions both actually served traffic.
    EXPECT_GE(seen_versions.size(), 2u);
    EXPECT_TRUE(seen_versions.count(versions));
}

TEST(Admission, ShedsOnQueueFullAndRecovers)
{
    DlrmConfig model = core::MakeSmallDlrmConfig(2, 40, 16);
    const sharding::ShardingPlan plan =
        MakePlan(model, 1, false, false, false);
    std::shared_ptr<const serve::ModelSnapshot> snap;
    comm::ThreadedWorld::Run(1, [&](int, comm::ProcessGroup& pg) {
        DistributedDlrm trainer(model, plan, pg);
        snap = serve::SnapshotFromTrainer(trainer, plan, 1);
    });
    ASSERT_NE(snap, nullptr);
    data::SyntheticCtrDataset dataset(MakeDataConfig(model));
    const data::Batch batch = dataset.NextBatch(8);

    serve::ServerOptions options;
    options.max_queue = 2;
    options.resume_queue = 1;
    options.batcher.max_batch = 8;
    serve::Server server(model.num_dense, model.tables.size(), options);

    // No rank loop yet: the queue only fills.
    std::vector<serve::Ticket> accepted;
    accepted.push_back(server.Submit(RequestFor(batch, 0, 0)));
    accepted.push_back(server.Submit(RequestFor(batch, 1, 1)));
    EXPECT_EQ(accepted[0].admission, serve::Admission::kAccepted);
    EXPECT_EQ(accepted[1].admission, serve::Admission::kAccepted);
    serve::Ticket shed = server.Submit(RequestFor(batch, 2, 2));
    EXPECT_EQ(shed.admission, serve::Admission::kShedQueueFull);
    EXPECT_TRUE(server.shedding());
    // Still above the resume threshold: keeps shedding (hysteresis).
    shed = server.Submit(RequestFor(batch, 3, 3));
    EXPECT_EQ(shed.admission, serve::Admission::kShedQueueFull);

    // Drain through a serving world; shedding must lift once the queue
    // falls back under the resume threshold.
    server.Publish(snap);
    std::thread world([&] {
        comm::ThreadedWorld::Run(1, [&](int rank, comm::ProcessGroup& pg) {
            server.RankLoop(rank, pg);
        });
    });
    for (auto& ticket : accepted) {
        EXPECT_EQ(ticket.response.get().snapshot_version, 1u);
    }
    serve::Ticket again = server.Submit(RequestFor(batch, 4, 4));
    EXPECT_EQ(again.admission, serve::Admission::kAccepted);
    EXPECT_FALSE(server.shedding());
    EXPECT_GT(again.response.get().score, 0.0f);

    server.Stop();
    world.join();
    // After Stop every new submit is refused with kShedStopped.
    serve::Ticket late = server.Submit(RequestFor(batch, 5, 5));
    EXPECT_EQ(late.admission, serve::Admission::kShedStopped);
}

TEST(Admission, ShedsOnSloBudget)
{
    DlrmConfig model = core::MakeSmallDlrmConfig(2, 40, 16);
    const sharding::ShardingPlan plan =
        MakePlan(model, 1, false, false, false);
    std::shared_ptr<const serve::ModelSnapshot> snap;
    comm::ThreadedWorld::Run(1, [&](int, comm::ProcessGroup& pg) {
        DistributedDlrm trainer(model, plan, pg);
        snap = serve::SnapshotFromTrainer(trainer, plan, 1);
    });
    data::SyntheticCtrDataset dataset(MakeDataConfig(model));
    const data::Batch batch = dataset.NextBatch(4);

    serve::ServerOptions options;
    options.slo_budget_us = 1;  // any real batch busts the budget
    options.batcher.max_delay_us = 0;
    serve::Server server(model.num_dense, model.tables.size(), options);
    server.Publish(snap);
    std::thread world([&] {
        comm::ThreadedWorld::Run(1, [&](int rank, comm::ProcessGroup& pg) {
            server.RankLoop(rank, pg);
        });
    });

    // First request: EWMA unarmed, so it is admitted and serves.
    serve::Ticket first = server.Submit(RequestFor(batch, 0, 0));
    ASSERT_EQ(first.admission, serve::Admission::kAccepted);
    first.response.get();
    // EWMA is armed before the response resolves, so the wait estimate
    // now exceeds the 1us budget deterministically.
    serve::Ticket second = server.Submit(RequestFor(batch, 1, 1));
    EXPECT_EQ(second.admission, serve::Admission::kShedSlo);
    EXPECT_TRUE(server.shedding());

    server.Stop();
    world.join();
}

/** Stop before any snapshot is published: queued requests must drain
 *  as typed kStopped responses — never a broken promise. */
TEST(Admission, StopWithoutSnapshotFailsQueuedRequests)
{
    DlrmConfig model = core::MakeSmallDlrmConfig(2, 40, 16);
    data::SyntheticCtrDataset dataset(MakeDataConfig(model));
    const data::Batch batch = dataset.NextBatch(2);
    serve::Server server(model.num_dense, model.tables.size(),
                         serve::ServerOptions{});
    serve::Ticket ticket = server.Submit(RequestFor(batch, 0, 0));
    ASSERT_EQ(ticket.admission, serve::Admission::kAccepted);
    std::thread world([&] {
        comm::ThreadedWorld::Run(1, [&](int rank, comm::ProcessGroup& pg) {
            server.RankLoop(rank, pg);
        });
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    server.Stop();
    world.join();
    const serve::Response response = ticket.response.get();
    EXPECT_EQ(response.status, serve::ResponseStatus::kStopped);
    EXPECT_EQ(response.snapshot_version, 0u);
}

}  // namespace
}  // namespace neo
