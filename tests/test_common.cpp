/**
 * @file
 * Unit tests for the common utilities: reduced-precision conversions, RNG
 * determinism, Zipf sampling, statistics, serialization, the thread pool
 * and the table printer.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <map>

#include "common/float_types.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "common/units.h"

namespace neo {
namespace {

// ---------------------------------------------------------------- Half

TEST(Half, ExactlyRepresentableValuesRoundTrip)
{
    for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, -0.25f,
                    65504.0f /* max half */}) {
        EXPECT_EQ(Half(v).ToFloat(), v) << v;
    }
}

TEST(Half, RelativeErrorBounded)
{
    Rng rng(7);
    for (int i = 0; i < 10000; i++) {
        const float v = rng.NextUniform(-100.0f, 100.0f);
        const float back = Half(v).ToFloat();
        if (std::abs(v) > 1e-3f) {
            // Half has a 10-bit mantissa: eps = 2^-11 for RNE.
            EXPECT_LE(std::abs(back - v) / std::abs(v), 1.0f / 2048.0f)
                << v;
        }
    }
}

TEST(Half, OverflowGoesToInfinity)
{
    EXPECT_TRUE(std::isinf(Half(1e6f).ToFloat()));
    EXPECT_TRUE(std::isinf(Half(-1e6f).ToFloat()));
}

TEST(Half, SubnormalsRoundTrip)
{
    // Smallest positive half subnormal is 2^-24.
    const float tiny = std::ldexp(1.0f, -24);
    EXPECT_EQ(Half(tiny).ToFloat(), tiny);
    EXPECT_EQ(Half(tiny / 2.1f).ToFloat(), 0.0f);  // underflow to zero
}

TEST(Half, NanPreserved)
{
    EXPECT_TRUE(std::isnan(Half(std::nanf("")).ToFloat()));
}

TEST(Half, RoundToNearestEven)
{
    // 1 + 2^-11 is exactly between 1.0 and the next half (1 + 2^-10):
    // RNE picks the even mantissa, i.e. 1.0.
    const float midpoint = 1.0f + std::ldexp(1.0f, -11);
    EXPECT_EQ(Half(midpoint).ToFloat(), 1.0f);
    // 1 + 3*2^-11 is between 1+2^-10 and 1+2^-9: RNE picks 1+2^-9 (even).
    const float midpoint2 = 1.0f + 3.0f * std::ldexp(1.0f, -11);
    EXPECT_EQ(Half(midpoint2).ToFloat(), 1.0f + std::ldexp(1.0f, -9));
}

// ------------------------------------------------------------- BFloat16

TEST(BFloat16, LargeDynamicRangeSurvives)
{
    for (float v : {1e30f, -1e30f, 1e-30f, 3e38f}) {
        const float back = BFloat16(v).ToFloat();
        EXPECT_NEAR(back / v, 1.0f, 0.01f) << v;
    }
}

TEST(BFloat16, RelativeErrorBounded)
{
    Rng rng(9);
    for (int i = 0; i < 10000; i++) {
        const float v = rng.NextUniform(-1e4f, 1e4f);
        const float back = BFloat16(v).ToFloat();
        if (std::abs(v) > 1e-3f) {
            // 7-bit mantissa: eps = 2^-8 for RNE.
            EXPECT_LE(std::abs(back - v) / std::abs(v), 1.0f / 256.0f) << v;
        }
    }
}

TEST(BFloat16, NanPreserved)
{
    EXPECT_TRUE(std::isnan(BFloat16(std::nanf("")).ToFloat()));
}

TEST(Precision, BytesPerElement)
{
    EXPECT_EQ(BytesPerElement(Precision::kFp32), 4u);
    EXPECT_EQ(BytesPerElement(Precision::kFp16), 2u);
    EXPECT_EQ(BytesPerElement(Precision::kBf16), 2u);
    EXPECT_EQ(BytesPerElement(Precision::kTf32), 4u);
}

// ------------------------------------------------------------------ Rng

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; i++) {
        EXPECT_EQ(a.Next(), b.Next());
    }
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; i++) {
        same += a.Next() == b.Next();
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange)
{
    Rng rng(5);
    for (int i = 0; i < 10000; i++) {
        const double x = rng.NextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, BoundedIsUnbiasedEnough)
{
    Rng rng(11);
    std::map<uint64_t, int> counts;
    const int n = 60000;
    for (int i = 0; i < n; i++) {
        counts[rng.NextBounded(6)]++;
    }
    for (uint64_t v = 0; v < 6; v++) {
        EXPECT_NEAR(counts[v], n / 6, n / 6 * 0.1) << v;
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    RunningStat stat;
    for (int i = 0; i < 50000; i++) {
        stat.Add(rng.NextGaussian());
    }
    EXPECT_NEAR(stat.mean(), 0.0, 0.03);
    EXPECT_NEAR(stat.stddev(), 1.0, 0.03);
}

TEST(Rng, PoissonMeanMatches)
{
    Rng rng(17);
    for (double mean : {0.5, 3.0, 10.0, 50.0}) {
        RunningStat stat;
        for (int i = 0; i < 20000; i++) {
            stat.Add(rng.NextPoisson(mean));
        }
        EXPECT_NEAR(stat.mean(), mean, mean * 0.06 + 0.05) << mean;
    }
}

TEST(Rng, SplitStreamsAreIndependent)
{
    Rng parent(23);
    Rng child = parent.Split();
    int same = 0;
    for (int i = 0; i < 100; i++) {
        same += parent.Next() == child.Next();
    }
    EXPECT_LT(same, 3);
}

// ----------------------------------------------------------------- Zipf

TEST(Zipf, SamplesInRange)
{
    Rng rng(29);
    ZipfSampler zipf(1000, 1.1);
    for (int i = 0; i < 10000; i++) {
        EXPECT_LT(zipf.Sample(rng), 1000u);
    }
}

TEST(Zipf, SkewConcentratesOnPopularItems)
{
    Rng rng(31);
    ZipfSampler skewed(100000, 1.2);
    ZipfSampler uniform(100000, 0.0);
    auto top100_frac = [&](ZipfSampler& sampler) {
        int hits = 0;
        const int n = 20000;
        for (int i = 0; i < n; i++) {
            hits += sampler.Sample(rng) < 100;
        }
        return static_cast<double>(hits) / n;
    };
    const double skew_frac = top100_frac(skewed);
    const double uni_frac = top100_frac(uniform);
    EXPECT_GT(skew_frac, 0.3);     // heavy head
    EXPECT_LT(uni_frac, 0.01);     // uniform spreads out
}

TEST(Zipf, RankOrderingHolds)
{
    Rng rng(37);
    ZipfSampler zipf(1000, 1.05);
    std::vector<int> counts(1000, 0);
    for (int i = 0; i < 200000; i++) {
        counts[zipf.Sample(rng)]++;
    }
    // Head must dominate tail.
    EXPECT_GT(counts[0], counts[500] * 5);
    EXPECT_GT(counts[1], counts[900]);
}

// ---------------------------------------------------------------- Stats

TEST(Stats, RunningStatBasics)
{
    RunningStat stat;
    for (double v : {1.0, 2.0, 3.0, 4.0}) {
        stat.Add(v);
    }
    EXPECT_EQ(stat.count(), 4u);
    EXPECT_DOUBLE_EQ(stat.mean(), 2.5);
    EXPECT_DOUBLE_EQ(stat.min(), 1.0);
    EXPECT_DOUBLE_EQ(stat.max(), 4.0);
    EXPECT_NEAR(stat.variance(), 1.25, 1e-12);
    EXPECT_DOUBLE_EQ(stat.sum(), 10.0);
}

TEST(Stats, PercentileInterpolates)
{
    std::vector<double> v = {10, 20, 30, 40, 50};
    EXPECT_DOUBLE_EQ(Percentile(v, 0), 10);
    EXPECT_DOUBLE_EQ(Percentile(v, 50), 30);
    EXPECT_DOUBLE_EQ(Percentile(v, 100), 50);
    EXPECT_DOUBLE_EQ(Percentile(v, 25), 20);
    EXPECT_DOUBLE_EQ(Percentile(v, 62.5), 35);
}

TEST(Stats, RunningStatMinMaxFirstSample)
{
    // Regression for the count == 1 branch: the first observation must
    // seed min/max even when it is "worse" than the zero-initialized
    // members (positive min, negative max).
    RunningStat positive;
    positive.Add(7.5);
    EXPECT_DOUBLE_EQ(positive.min(), 7.5);
    EXPECT_DOUBLE_EQ(positive.max(), 7.5);
    EXPECT_DOUBLE_EQ(positive.mean(), 7.5);
    EXPECT_DOUBLE_EQ(positive.variance(), 0.0);

    RunningStat negative;
    negative.Add(-3.0);
    EXPECT_DOUBLE_EQ(negative.min(), -3.0);
    EXPECT_DOUBLE_EQ(negative.max(), -3.0);
    negative.Add(-9.0);
    EXPECT_DOUBLE_EQ(negative.min(), -9.0);
    EXPECT_DOUBLE_EQ(negative.max(), -3.0);
}

TEST(Stats, PercentileEdgeCases)
{
    // Single sample: every percentile is that sample.
    std::vector<double> one = {42.0};
    EXPECT_DOUBLE_EQ(Percentile(one, 0), 42.0);
    EXPECT_DOUBLE_EQ(Percentile(one, 50), 42.0);
    EXPECT_DOUBLE_EQ(Percentile(one, 100), 42.0);

    // Empty input and out-of-range p must throw, not crash or read UB.
    EXPECT_THROW(Percentile({}, 50), std::invalid_argument);
    EXPECT_THROW(Percentile({1.0, 2.0}, -0.1), std::invalid_argument);
    EXPECT_THROW(Percentile({1.0, 2.0}, 100.1), std::invalid_argument);
}

TEST(Stats, LoadBalanceMetrics)
{
    const LoadBalance lb = ComputeLoadBalance({2.0, 4.0, 6.0});
    EXPECT_DOUBLE_EQ(lb.mean, 4.0);
    EXPECT_DOUBLE_EQ(lb.max, 6.0);
    EXPECT_DOUBLE_EQ(lb.min, 2.0);
    EXPECT_DOUBLE_EQ(lb.imbalance, 1.5);
    const LoadBalance perfect = ComputeLoadBalance({3.0, 3.0, 3.0});
    EXPECT_DOUBLE_EQ(perfect.imbalance, 1.0);
}

// ------------------------------------------------------------ Serialize

TEST(Serialize, ScalarStringVectorRoundTrip)
{
    BinaryWriter writer;
    writer.Write<uint32_t>(0xDEADBEEF);
    writer.Write<double>(3.25);
    writer.WriteString("hello neo");
    writer.WriteVector<float>({1.0f, 2.0f, 3.0f});

    BinaryReader reader(writer.buffer());
    EXPECT_EQ(reader.Read<uint32_t>(), 0xDEADBEEFu);
    EXPECT_EQ(reader.Read<double>(), 3.25);
    EXPECT_EQ(reader.ReadString(), "hello neo");
    EXPECT_EQ(reader.ReadVector<float>(),
              (std::vector<float>{1.0f, 2.0f, 3.0f}));
    EXPECT_TRUE(reader.AtEnd());
}

TEST(Serialize, TruncatedInputThrows)
{
    BinaryWriter writer;
    writer.Write<uint32_t>(1);
    BinaryReader reader(writer.buffer());
    reader.Read<uint32_t>();
    EXPECT_THROW(reader.Read<uint64_t>(), std::runtime_error);
}

TEST(Serialize, FileRoundTrip)
{
    const std::string path = "/tmp/neo_serialize_test.bin";
    BinaryWriter writer;
    writer.WriteVector<int64_t>({5, -7, 11});
    writer.SaveToFile(path);
    BinaryReader reader = BinaryReader::LoadFromFile(path);
    EXPECT_EQ(reader.ReadVector<int64_t>(),
              (std::vector<int64_t>{5, -7, 11}));
    std::remove(path.c_str());
}

// ----------------------------------------------------------- ThreadPool

TEST(ThreadPool, ExecutesAllTasks)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 100; i++) {
        futures.push_back(pool.Submit([&counter, i] {
            counter.fetch_add(1);
            return i * 2;
        }));
    }
    for (int i = 0; i < 100; i++) {
        EXPECT_EQ(futures[i].get(), i * 2);
    }
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesExceptions)
{
    ThreadPool pool(1);
    auto fut = pool.Submit([]() -> int {
        throw std::runtime_error("boom");
    });
    EXPECT_THROW(fut.get(), std::runtime_error);
}

// --------------------------------------------------------------- Units

TEST(Units, Formatting)
{
    EXPECT_EQ(FormatBytes(1536.0), "1.5 KiB");
    EXPECT_EQ(FormatBandwidth(12.5e9), "12.5 GB/s");
    EXPECT_EQ(FormatSeconds(0.0032), "3.2 ms");
    EXPECT_EQ(FormatCount(1047000), "1.047 M");
}

// --------------------------------------------------------- TablePrinter

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter table({"model", "qps"});
    table.Row().Cell("A1").CellF(273000, "%.0f");
    table.Row().Cell("A2-long-name").Cell(622);
    const std::string out = table.ToString();
    EXPECT_NE(out.find("| model"), std::string::npos);
    EXPECT_NE(out.find("273000"), std::string::npos);
    EXPECT_NE(out.find("A2-long-name"), std::string::npos);
    // All lines equal width.
    size_t first_len = out.find('\n');
    size_t pos = 0;
    for (size_t next = out.find('\n', pos); next != std::string::npos;
         pos = next + 1, next = out.find('\n', pos)) {
        EXPECT_EQ(next - pos, first_len);
    }
}

}  // namespace
}  // namespace neo
