#include "common/thread_pool.h"

#include "common/logging.h"

namespace neo {

ThreadPool::ThreadPool(size_t num_threads)
{
    NEO_REQUIRE(num_threads >= 1, "thread pool needs at least one thread");
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; i++) {
        workers_.emplace_back([this] { WorkerLoop(); });
    }
}

ThreadPool::~ThreadPool()
{
    Shutdown();
}

void
ThreadPool::Shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) {
        if (w.joinable()) {
            w.join();
        }
    }
}

void
ThreadPool::WorkerLoop()
{
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                return;  // stopping and drained
            }
            task = std::move(queue_.front());
            queue_.pop();
        }
        task();
    }
}

}  // namespace neo
