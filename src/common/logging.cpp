#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <stdexcept>

namespace neo {

namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};
std::mutex g_log_mutex;

}  // namespace

LogLevel
GetLogLevel()
{
    return g_log_level.load(std::memory_order_relaxed);
}

void
SetLogLevel(LogLevel level)
{
    g_log_level.store(level, std::memory_order_relaxed);
}

namespace detail {

void
LogMessage(LogLevel level, const char* tag, const std::string& msg)
{
    if (level < GetLogLevel()) {
        return;
    }
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "[neo:%s] %s\n", tag, msg.c_str());
    std::fflush(stderr);
}

void
PanicImpl(const char* file, int line, const std::string& msg)
{
    {
        std::lock_guard<std::mutex> lock(g_log_mutex);
        std::fprintf(stderr, "[neo:panic] %s:%d: %s\n", file, line,
                     msg.c_str());
        std::fflush(stderr);
    }
    std::abort();
}

void
FatalImpl(const char* file, int line, const std::string& msg)
{
    {
        std::lock_guard<std::mutex> lock(g_log_mutex);
        std::fprintf(stderr, "[neo:fatal] %s:%d: %s\n", file, line,
                     msg.c_str());
        std::fflush(stderr);
    }
    // Throwing (rather than exit()) keeps fatal paths testable from gtest.
    throw std::runtime_error(msg);
}

}  // namespace detail

}  // namespace neo
