/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Training reproducibility (Sec. 4.1.2 of the paper) requires every random
 * decision — weight init, synthetic data, sampling — to be seeded and stable
 * across runs and platforms. We use SplitMix64 for seeding and Xoshiro256++
 * for the main stream, both with fixed, platform-independent behaviour
 * (unlike std::mt19937 + std::uniform_*_distribution, whose outputs are not
 * specified identically across standard libraries).
 */
#pragma once

#include <cmath>
#include <cstdint>

namespace neo {

/** SplitMix64: tiny, good-quality generator used to derive seeds. */
class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed) : state_(seed) {}

    /** Next 64 random bits. */
    uint64_t
    Next()
    {
        uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }

  private:
    uint64_t state_;
};

/** Xoshiro256++: fast general-purpose PRNG with 256-bit state. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5EEDull)
    {
        SplitMix64 sm(seed);
        for (auto& s : state_) {
            s = sm.Next();
        }
    }

    /** Next 64 random bits. */
    uint64_t
    Next()
    {
        const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = Rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    NextDouble()
    {
        return static_cast<double>(Next() >> 11) * 0x1.0p-53;
    }

    /** Uniform float in [0, 1). */
    float
    NextFloat()
    {
        return static_cast<float>(Next() >> 40) * 0x1.0p-24f;
    }

    /** Uniform integer in [0, bound) using Lemire's method. */
    uint64_t
    NextBounded(uint64_t bound)
    {
        if (bound == 0) {
            return 0;
        }
        // 128-bit multiply keeps the distribution unbiased enough for our
        // purposes while staying branch-light.
        const unsigned __int128 m =
            static_cast<unsigned __int128>(Next()) * bound;
        return static_cast<uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    NextRange(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
                        NextBounded(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform float in [lo, hi). */
    float
    NextUniform(float lo, float hi)
    {
        return lo + (hi - lo) * NextFloat();
    }

    /** Standard normal via Box-Muller (deterministic, no cached spare). */
    float
    NextGaussian()
    {
        // Avoid log(0) by nudging u1 away from zero.
        double u1 = NextDouble();
        if (u1 < 1e-300) {
            u1 = 1e-300;
        }
        const double u2 = NextDouble();
        const double r = std::sqrt(-2.0 * std::log(u1));
        return static_cast<float>(r * std::cos(2.0 * M_PI * u2));
    }

    /** Poisson sample via inversion for small means, normal approx above. */
    uint32_t
    NextPoisson(double mean)
    {
        if (mean <= 0) {
            return 0;
        }
        if (mean < 30.0) {
            const double l = std::exp(-mean);
            double p = 1.0;
            uint32_t k = 0;
            do {
                k++;
                p *= NextDouble();
            } while (p > l);
            return k - 1;
        }
        const double g = NextGaussian();
        const double v = mean + std::sqrt(mean) * g;
        return v < 0 ? 0 : static_cast<uint32_t>(v + 0.5);
    }

    /** Split off an independent child stream (for per-worker RNGs). */
    Rng
    Split()
    {
        return Rng(Next() ^ 0x9E3779B97F4A7C15ull);
    }

  private:
    static uint64_t
    Rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

/**
 * Zipf-distributed sampler over [0, n) with exponent s.
 *
 * Embedding-table accesses in CTR workloads are heavily skewed; the software
 * cache evaluation (Sec. 4.1.3) depends on that reuse. Uses the
 * rejection-inversion method of Hormann & Derflinger, which is O(1) per
 * sample and needs no O(n) table.
 */
class ZipfSampler
{
  public:
    /**
     * @param n Number of items (rows).
     * @param s Skew exponent; s=0 degenerates to uniform.
     */
    ZipfSampler(uint64_t n, double s);

    /** Draw one sample in [0, n). Rank 0 is the most popular item. */
    uint64_t Sample(Rng& rng) const;

    uint64_t n() const { return n_; }
    double s() const { return s_; }

  private:
    double H(double x) const;
    double HInv(double x) const;

    uint64_t n_;
    double s_;
    double h_x1_;
    double h_n_;
    double inv_s_;
};

}  // namespace neo
