#include "common/table_printer.h"

#include <algorithm>

#include "common/logging.h"

namespace neo {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    NEO_REQUIRE(!headers_.empty(), "table needs at least one column");
}

TablePrinter&
TablePrinter::Row()
{
    rows_.emplace_back();
    return *this;
}

TablePrinter&
TablePrinter::CellF(double value, const char* fmt)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, value);
    AddCell(buf);
    return *this;
}

void
TablePrinter::AddCell(std::string text)
{
    NEO_CHECK(!rows_.empty(), "Cell() before Row()");
    NEO_CHECK(rows_.back().size() < headers_.size(),
              "row has more cells than headers");
    rows_.back().push_back(std::move(text));
}

std::string
TablePrinter::ToString() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); c++) {
        widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        for (size_t c = 0; c < row.size(); c++) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    std::ostringstream oss;
    auto emit_row = [&](const std::vector<std::string>& cells) {
        oss << "|";
        for (size_t c = 0; c < headers_.size(); c++) {
            const std::string& text = c < cells.size() ? cells[c] : "";
            oss << " " << text
                << std::string(widths[c] - text.size(), ' ') << " |";
        }
        oss << "\n";
    };

    emit_row(headers_);
    oss << "|";
    for (size_t c = 0; c < headers_.size(); c++) {
        oss << std::string(widths[c] + 2, '-') << "|";
    }
    oss << "\n";
    for (const auto& row : rows_) {
        emit_row(row);
    }
    return oss.str();
}

void
TablePrinter::Print() const
{
    std::fputs(ToString().c_str(), stdout);
    std::fflush(stdout);
}

}  // namespace neo
