/**
 * @file
 * Small statistics helpers used by benchmarks and the performance model:
 * running mean/variance, percentiles, and load-balance metrics.
 */
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace neo {

/** Welford running mean / variance / min / max accumulator. */
class RunningStat
{
  public:
    /** Fold one observation into the accumulator. */
    void
    Add(double x)
    {
        count_++;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (x - mean_);
        min_ = count_ == 1 ? x : std::min(min_, x);
        max_ = count_ == 1 ? x : std::max(max_, x);
    }

    uint64_t count() const { return count_; }
    double mean() const { return mean_; }
    double min() const { return min_; }
    double max() const { return max_; }

    /** Population variance (0 for fewer than two samples). */
    double
    variance() const
    {
        return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
    }

    double stddev() const;

    /** Sum of all observations. */
    double sum() const { return mean_ * static_cast<double>(count_); }

  private:
    uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Linear-interpolated percentile of a sample vector.
 *
 * @param values Observations (copied and sorted internally).
 * @param p Percentile in [0, 100].
 * @throws std::invalid_argument on an empty sample or p outside [0, 100].
 */
double Percentile(std::vector<double> values, double p);

/**
 * Percentile over an already-sorted sample vector. Callers that need
 * several percentiles of the same sample (histogram snapshots read four)
 * sort once and probe with this instead of paying a copy+sort per call.
 *
 * @param sorted Observations in ascending order.
 * @param p Percentile in [0, 100].
 * @throws std::invalid_argument on an empty sample or p outside [0, 100].
 */
double PercentileSorted(const std::vector<double>& sorted, double p);

/**
 * Load-imbalance metrics over per-worker costs; the sharding evaluation
 * (Sec. 5.3.2) reasons about max/mean load across GPUs.
 */
struct LoadBalance {
    double max = 0.0;
    double mean = 0.0;
    double min = 0.0;
    /** max / mean; 1.0 is perfectly balanced. */
    double imbalance = 1.0;
};

/** Compute balance metrics for a vector of per-worker loads. */
LoadBalance ComputeLoadBalance(const std::vector<double>& loads);

}  // namespace neo
