#include "common/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "obs/trace.h"

namespace neo {

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;

/** Set while this thread executes a ParallelFor chunk (bars nesting). */
thread_local bool t_in_parallel_region = false;

}  // namespace

size_t
DefaultParallelism()
{
    if (const char* env = std::getenv("NEO_NUM_THREADS")) {
        char* end = nullptr;
        const unsigned long parsed = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0') {
            return std::max<size_t>(1, static_cast<size_t>(parsed));
        }
        Warn("ignoring malformed NEO_NUM_THREADS='", env, "'");
    }
    return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool&
DefaultThreadPool()
{
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    if (!g_pool) {
        g_pool = std::make_unique<ThreadPool>(DefaultParallelism());
    }
    return *g_pool;
}

void
SetDefaultPoolThreads(size_t num_threads)
{
    NEO_REQUIRE(num_threads >= 1, "default pool needs at least one thread");
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    g_pool.reset();  // drain + join the old pool before the replacement
    g_pool = std::make_unique<ThreadPool>(num_threads);
}

bool
InParallelRegion()
{
    return t_in_parallel_region;
}

void
ParallelFor(ThreadPool& pool, size_t begin, size_t end, size_t grain,
            const std::function<void(size_t, size_t)>& fn)
{
    NEO_REQUIRE(grain >= 1, "ParallelFor grain must be >= 1");
    if (end <= begin) {
        return;
    }
    // Transparent category: the caller participates in the drain, so this
    // time belongs to whatever phase invoked the loop.
    NEO_TRACE_SPAN("parallel_for", "par");
    const size_t total = end - begin;
    const size_t chunks = (total + grain - 1) / grain;
    const auto run_chunk = [&](size_t chunk) {
        const size_t b = begin + chunk * grain;
        const size_t e = std::min(b + grain, end);
        fn(b, e);
    };

    // Serial fallback keeps the exact same chunk sequence so the executed
    // call pattern is independent of the thread count.
    if (chunks <= 1 || pool.size() <= 1 || t_in_parallel_region) {
        for (size_t c = 0; c < chunks; c++) {
            run_chunk(c);
        }
        return;
    }

    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;
    const auto drain = [&] {
        NEO_TRACE_SPAN_V("parallel_for_drain", "par");
        const bool was_in_region = t_in_parallel_region;
        t_in_parallel_region = true;
        while (!failed.load(std::memory_order_relaxed)) {
            const size_t c = next.fetch_add(1, std::memory_order_relaxed);
            if (c >= chunks) {
                break;
            }
            try {
                run_chunk(c);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error) {
                    error = std::current_exception();
                }
                failed.store(true, std::memory_order_relaxed);
            }
        }
        t_in_parallel_region = was_in_region;
    };

    // The caller participates, so progress never depends on pool workers
    // being free — nested or cross-thread use cannot deadlock.
    const size_t helpers = std::min(pool.size(), chunks - 1);
    std::vector<std::future<void>> pending;
    pending.reserve(helpers);
    for (size_t h = 0; h < helpers; h++) {
        pending.push_back(pool.Submit(drain));
    }
    drain();
    for (auto& f : pending) {
        f.get();
    }
    if (error) {
        std::rethrow_exception(error);
    }
}

void
ParallelFor(size_t begin, size_t end, size_t grain,
            const std::function<void(size_t, size_t)>& fn)
{
    ParallelFor(DefaultThreadPool(), begin, end, grain, fn);
}

}  // namespace neo
