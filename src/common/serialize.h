/**
 * @file
 * Minimal binary serialization used for model checkpointing (Sec. 4.4 notes
 * that frequent checkpointing of very large models is required in
 * production; Check-N-Run [9]).
 *
 * The format is little-endian, length-prefixed, with a magic/version header
 * validated on load.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace neo {

/** Append-only binary writer backed by an in-memory buffer. */
class BinaryWriter
{
  public:
    /** Write a POD scalar. */
    template <typename T>
    void
    Write(const T& value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto* p = reinterpret_cast<const uint8_t*>(&value);
        buffer_.insert(buffer_.end(), p, p + sizeof(T));
    }

    /** Write a length-prefixed string. */
    void WriteString(const std::string& s);

    /** Write a length-prefixed vector of POD elements (any allocator). */
    template <typename T, typename Alloc = std::allocator<T>>
    void
    WriteVector(const std::vector<T, Alloc>& v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        Write<uint64_t>(v.size());
        const auto* p = reinterpret_cast<const uint8_t*>(v.data());
        buffer_.insert(buffer_.end(), p, p + v.size() * sizeof(T));
    }

    /** Pre-size the buffer (bulk writers like the telemetry harvest). */
    void Reserve(size_t bytes) { buffer_.reserve(bytes); }

    const std::vector<uint8_t>& buffer() const { return buffer_; }

    /** Flush the buffer to a file; fatal on I/O failure. */
    void SaveToFile(const std::string& path) const;

  private:
    std::vector<uint8_t> buffer_;
};

/** Sequential binary reader over a byte buffer. */
class BinaryReader
{
  public:
    explicit BinaryReader(std::vector<uint8_t> buffer)
        : buffer_(std::move(buffer)) {}

    /** Load an entire file into a reader; fatal on I/O failure. */
    static BinaryReader LoadFromFile(const std::string& path);

    /** Read a POD scalar; fatal on truncated input. */
    template <typename T>
    T
    Read()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value;
        ReadBytes(reinterpret_cast<uint8_t*>(&value), sizeof(T));
        return value;
    }

    /** Read a length-prefixed string. */
    std::string ReadString();

    /**
     * Read a length-prefixed vector of POD elements. The allocator
     * parameter lets aligned-storage owners (Matrix, EmbeddingTable)
     * deserialize straight into cache-line-aligned buffers.
     */
    template <typename T, typename Alloc = std::allocator<T>>
    std::vector<T, Alloc>
    ReadVector()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const uint64_t n = Read<uint64_t>();
        // Validate the untrusted length prefix BEFORE allocating: a
        // corrupt prefix must fail like any other truncation, not turn
        // into a huge allocation or size_t overflow in n * sizeof(T).
        RequireRemaining(n, sizeof(T));
        std::vector<T, Alloc> v(n);
        ReadBytes(reinterpret_cast<uint8_t*>(v.data()), n * sizeof(T));
        return v;
    }

    /** True once all bytes have been consumed. */
    bool AtEnd() const { return pos_ == buffer_.size(); }

  private:
    void ReadBytes(uint8_t* dst, size_t n);

    /** Throw unless `count` elements of `elem_size` bytes remain. */
    void RequireRemaining(uint64_t count, size_t elem_size) const;

    std::vector<uint8_t> buffer_;
    size_t pos_ = 0;
};

}  // namespace neo
