/**
 * @file
 * Reduced-precision scalar types: IEEE binary16 (Half) and bfloat16 (BFloat16).
 *
 * The paper stores embedding tables in FP16 to halve memory (Sec. 5.3.2) and
 * quantizes AllToAll payloads to FP16 (forward) / BF16 (backward) [58].
 * These types provide round-to-nearest-even conversions from/to float and are
 * storage-only (arithmetic happens in float).
 */
#pragma once

#include <cstdint>
#include <cstring>

namespace neo {

namespace detail {

/** Bit-cast float <-> uint32 without violating aliasing rules. */
inline uint32_t
FloatToBits(float f)
{
    uint32_t u;
    std::memcpy(&u, &f, sizeof(u));
    return u;
}

inline float
BitsToFloat(uint32_t u)
{
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
}

/** Convert a float to IEEE binary16 bits, round-to-nearest-even. */
uint16_t FloatToHalfBits(float f);

/** Convert IEEE binary16 bits to float. */
float HalfBitsToFloat(uint16_t h);

/** Convert a float to bfloat16 bits, round-to-nearest-even. */
uint16_t FloatToBFloat16Bits(float f);

/** Convert bfloat16 bits to float (simple left shift). */
inline float
BFloat16BitsToFloat(uint16_t b)
{
    return BitsToFloat(static_cast<uint32_t>(b) << 16);
}

}  // namespace detail

/** Storage-only IEEE binary16 value. */
class Half
{
  public:
    Half() = default;
    explicit Half(float f) : bits_(detail::FloatToHalfBits(f)) {}

    /** Reconstruct from raw bits. */
    static Half
    FromBits(uint16_t bits)
    {
        Half h;
        h.bits_ = bits;
        return h;
    }

    /** Widen back to float. */
    float ToFloat() const { return detail::HalfBitsToFloat(bits_); }
    explicit operator float() const { return ToFloat(); }

    uint16_t bits() const { return bits_; }

    bool operator==(const Half& other) const { return bits_ == other.bits_; }

  private:
    uint16_t bits_ = 0;
};

/** Storage-only bfloat16 value. */
class BFloat16
{
  public:
    BFloat16() = default;
    explicit BFloat16(float f) : bits_(detail::FloatToBFloat16Bits(f)) {}

    static BFloat16
    FromBits(uint16_t bits)
    {
        BFloat16 b;
        b.bits_ = bits;
        return b;
    }

    float ToFloat() const { return detail::BFloat16BitsToFloat(bits_); }
    explicit operator float() const { return ToFloat(); }

    uint16_t bits() const { return bits_; }

    bool operator==(const BFloat16& o) const { return bits_ == o.bits_; }

  private:
    uint16_t bits_ = 0;
};

static_assert(sizeof(Half) == 2, "Half must be 2 bytes");
static_assert(sizeof(BFloat16) == 2, "BFloat16 must be 2 bytes");

/** Scalar precision tags used across storage and communication layers. */
enum class Precision {
    kFp32,
    kFp16,
    kBf16,
    kTf32,  // compute-only precision on A100; storage treated as fp32
};

/** Bytes used to store one element of the given precision. */
inline std::size_t
BytesPerElement(Precision p)
{
    switch (p) {
      case Precision::kFp32:
      case Precision::kTf32:
        return 4;
      case Precision::kFp16:
      case Precision::kBf16:
        return 2;
    }
    return 4;
}

/** Human-readable precision name. */
const char* PrecisionName(Precision p);

}  // namespace neo
