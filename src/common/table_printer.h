/**
 * @file
 * Aligned ASCII table printer used by the per-table / per-figure benchmark
 * harnesses so their output visually matches the paper's tables.
 */
#pragma once

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

namespace neo {

/** Column-aligned table builder; streams anything ostream-able into cells. */
class TablePrinter
{
  public:
    /** Create a table with the given column headers. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Begin a new row; subsequent Cell() calls fill it left to right. */
    TablePrinter& Row();

    /** Append one cell to the current row. */
    template <typename T>
    TablePrinter&
    Cell(const T& value)
    {
        std::ostringstream oss;
        oss << value;
        AddCell(oss.str());
        return *this;
    }

    /** Append a formatted floating-point cell. */
    TablePrinter& CellF(double value, const char* fmt = "%.3g");

    /** Render the table to a string. */
    std::string ToString() const;

    /** Print the table to stdout. */
    void Print() const;

  private:
    void AddCell(std::string text);

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace neo
