/**
 * @file
 * Runtime CPU SIMD feature detection for the kernel dispatcher
 * (`neo::kernels`). Probed once per process via CPUID (plus XGETBV for
 * the OS-enabled vector state), cached, and consulted when the dispatch
 * table picks the widest microkernel tier the host can actually run.
 * Non-x86 builds report no SIMD features and fall back to the scalar
 * reference tier.
 */
#pragma once

#include <string>

namespace neo {

/** SIMD capabilities of the executing host. */
struct CpuFeatures {
    bool sse42 = false;
    /** AVX with OS-enabled YMM state (XGETBV). */
    bool avx = false;
    /** FMA3 (VEX-encoded; requires avx). */
    bool fma = false;
    /** F16C half-precision converts (VEX-encoded; requires avx). */
    bool f16c = false;
    bool avx2 = false;
    /** AVX-512 Foundation with OS-enabled ZMM state. */
    bool avx512f = false;

    /** Cached per-process probe of the executing host. */
    static const CpuFeatures& Host();

    /** Uncached probe (testing; Host() is the normal entry point). */
    static CpuFeatures Detect();

    /** Comma-separated list of detected features (for logs/bench JSON). */
    std::string ToString() const;
};

}  // namespace neo
