#include "common/stats.h"

#include <cmath>
#include <stdexcept>

namespace neo {

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
Percentile(std::vector<double> values, double p)
{
    // Throw (not NEO_REQUIRE, which aborts): callers like the metrics
    // registry legitimately probe arbitrary sample sets and must be able
    // to handle the degenerate cases.
    if (values.empty()) {
        throw std::invalid_argument("Percentile of empty sample");
    }
    if (!(p >= 0.0 && p <= 100.0)) {
        throw std::invalid_argument("percentile must be in [0,100]");
    }
    std::sort(values.begin(), values.end());
    return PercentileSorted(values, p);
}

double
PercentileSorted(const std::vector<double>& sorted, double p)
{
    if (sorted.empty()) {
        throw std::invalid_argument("Percentile of empty sample");
    }
    if (!(p >= 0.0 && p <= 100.0)) {
        throw std::invalid_argument("percentile must be in [0,100]");
    }
    if (sorted.size() == 1) {
        return sorted[0];
    }
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

LoadBalance
ComputeLoadBalance(const std::vector<double>& loads)
{
    LoadBalance lb;
    if (loads.empty()) {
        return lb;
    }
    double sum = 0.0;
    lb.max = loads[0];
    lb.min = loads[0];
    for (double x : loads) {
        sum += x;
        lb.max = std::max(lb.max, x);
        lb.min = std::min(lb.min, x);
    }
    lb.mean = sum / static_cast<double>(loads.size());
    lb.imbalance = lb.mean > 0.0 ? lb.max / lb.mean : 1.0;
    return lb;
}

}  // namespace neo
