#include "common/serialize.h"

#include <cstdio>
#include <cstring>

#include "common/logging.h"

namespace neo {

void
BinaryWriter::WriteString(const std::string& s)
{
    Write<uint64_t>(s.size());
    buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void
BinaryWriter::SaveToFile(const std::string& path) const
{
    std::FILE* f = std::fopen(path.c_str(), "wb");
    NEO_REQUIRE(f != nullptr, "cannot open for write: ", path);
    const size_t written =
        std::fwrite(buffer_.data(), 1, buffer_.size(), f);
    std::fclose(f);
    NEO_REQUIRE(written == buffer_.size(), "short write to ", path);
}

BinaryReader
BinaryReader::LoadFromFile(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    NEO_REQUIRE(f != nullptr, "cannot open for read: ", path);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<uint8_t> buffer(static_cast<size_t>(size));
    const size_t read = std::fread(buffer.data(), 1, buffer.size(), f);
    std::fclose(f);
    NEO_REQUIRE(read == buffer.size(), "short read from ", path);
    return BinaryReader(std::move(buffer));
}

std::string
BinaryReader::ReadString()
{
    const uint64_t n = Read<uint64_t>();
    NEO_REQUIRE(pos_ + n <= buffer_.size(), "truncated string");
    std::string s(reinterpret_cast<const char*>(buffer_.data() + pos_), n);
    pos_ += n;
    return s;
}

void
BinaryReader::RequireRemaining(uint64_t count, size_t elem_size) const
{
    // Divide instead of multiplying so a hostile 2^60-ish length prefix
    // cannot overflow the byte count and slip past the bounds check.
    const uint64_t remaining = buffer_.size() - pos_;
    NEO_REQUIRE(count <= remaining / elem_size,
                "truncated or corrupt input: length prefix claims ", count,
                " elements of ", elem_size, " bytes but only ", remaining,
                " bytes remain at offset ", pos_);
}

void
BinaryReader::ReadBytes(uint8_t* dst, size_t n)
{
    NEO_REQUIRE(pos_ + n <= buffer_.size(),
                "truncated input: need ", n, " bytes at offset ", pos_,
                " of ", buffer_.size());
    std::memcpy(dst, buffer_.data() + pos_, n);
    pos_ += n;
}

}  // namespace neo
