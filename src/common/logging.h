/**
 * @file
 * Logging and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (aborts), fatal() for unrecoverable user/configuration errors (exits),
 * warn()/inform() for non-fatal diagnostics.
 */
#pragma once

#include <cstdlib>
#include <sstream>
#include <string>

namespace neo {

/** Severity levels understood by the logger. */
enum class LogLevel {
    kDebug = 0,
    kInfo = 1,
    kWarn = 2,
    kError = 3,
    kSilent = 4,
};

/** Global log threshold; messages below it are suppressed. */
LogLevel GetLogLevel();

/** Set the global log threshold. */
void SetLogLevel(LogLevel level);

namespace detail {

/** Emit one formatted log line to stderr if `level` passes the threshold. */
void LogMessage(LogLevel level, const char* tag, const std::string& msg);

/** Variadic stream-style formatting into a single string. */
template <typename... Args>
std::string
Format(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

[[noreturn]] void PanicImpl(const char* file, int line, const std::string& msg);
[[noreturn]] void FatalImpl(const char* file, int line, const std::string& msg);

}  // namespace detail

/** Informational message for normal operation. */
template <typename... Args>
void
Inform(Args&&... args)
{
    detail::LogMessage(LogLevel::kInfo, "info",
                       detail::Format(std::forward<Args>(args)...));
}

/** Debug-level message; off by default. */
template <typename... Args>
void
Debug(Args&&... args)
{
    detail::LogMessage(LogLevel::kDebug, "debug",
                       detail::Format(std::forward<Args>(args)...));
}

/** Warning: something suspicious but not fatal. */
template <typename... Args>
void
Warn(Args&&... args)
{
    detail::LogMessage(LogLevel::kWarn, "warn",
                       detail::Format(std::forward<Args>(args)...));
}

/**
 * Abort on an internal invariant violation (a bug in this library).
 * Mirrors gem5's panic().
 */
#define NEO_PANIC(...)                                                        \
    ::neo::detail::PanicImpl(__FILE__, __LINE__,                              \
                             ::neo::detail::Format(__VA_ARGS__))

/**
 * Exit on an unrecoverable user error (bad configuration, bad arguments).
 * Mirrors gem5's fatal().
 */
#define NEO_FATAL(...)                                                        \
    ::neo::detail::FatalImpl(__FILE__, __LINE__,                              \
                             ::neo::detail::Format(__VA_ARGS__))

/** Check a condition that must hold; panic with a message otherwise. */
#define NEO_CHECK(cond, ...)                                                  \
    do {                                                                      \
        if (!(cond)) {                                                        \
            NEO_PANIC("check failed: " #cond " — ",                           \
                      ::neo::detail::Format(__VA_ARGS__));                    \
        }                                                                     \
    } while (0)

/** Validate a user-supplied argument; fatal with a message otherwise. */
#define NEO_REQUIRE(cond, ...)                                                \
    do {                                                                      \
        if (!(cond)) {                                                        \
            NEO_FATAL("requirement failed: " #cond " — ",                     \
                      ::neo::detail::Format(__VA_ARGS__));                    \
        }                                                                     \
    } while (0)

}  // namespace neo
