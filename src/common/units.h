/**
 * @file
 * Unit helpers for bytes, bandwidth and time, plus pretty-printers used by
 * the benchmark harnesses.
 */
#pragma once

#include <cstdint>
#include <string>

namespace neo {

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * kKiB;
inline constexpr double kGiB = 1024.0 * kMiB;
inline constexpr double kTiB = 1024.0 * kGiB;

inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;
inline constexpr double kTB = 1e12;

inline constexpr double kMicro = 1e-6;
inline constexpr double kMilli = 1e-3;

/** Format a byte count as a human-readable string ("1.5 GiB"). */
std::string FormatBytes(double bytes);

/** Format a bandwidth in bytes/second ("12.5 GB/s"). */
std::string FormatBandwidth(double bytes_per_sec);

/** Format a duration in seconds ("3.2 ms"). */
std::string FormatSeconds(double seconds);

/** Format a large count with SI suffixes ("1.05M"). */
std::string FormatCount(double count);

}  // namespace neo
