#include "common/units.h"

#include <cmath>
#include <cstdio>

namespace neo {

namespace {

std::string
FormatScaled(double value, const char* const* suffixes, int num_suffixes,
             double base)
{
    int idx = 0;
    double v = value;
    while (std::abs(v) >= base && idx < num_suffixes - 1) {
        v /= base;
        idx++;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4g %s", v, suffixes[idx]);
    return buf;
}

}  // namespace

std::string
FormatBytes(double bytes)
{
    static const char* kSuffixes[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
    return FormatScaled(bytes, kSuffixes, 6, 1024.0);
}

std::string
FormatBandwidth(double bytes_per_sec)
{
    static const char* kSuffixes[] = {"B/s", "KB/s", "MB/s", "GB/s", "TB/s"};
    return FormatScaled(bytes_per_sec, kSuffixes, 5, 1000.0);
}

std::string
FormatSeconds(double seconds)
{
    char buf[64];
    if (seconds >= 1.0) {
        std::snprintf(buf, sizeof(buf), "%.4g s", seconds);
    } else if (seconds >= 1e-3) {
        std::snprintf(buf, sizeof(buf), "%.4g ms", seconds * 1e3);
    } else if (seconds >= 1e-6) {
        std::snprintf(buf, sizeof(buf), "%.4g us", seconds * 1e6);
    } else {
        std::snprintf(buf, sizeof(buf), "%.4g ns", seconds * 1e9);
    }
    return buf;
}

std::string
FormatCount(double count)
{
    static const char* kSuffixes[] = {"", "K", "M", "B", "T"};
    return FormatScaled(count, kSuffixes, 5, 1000.0);
}

}  // namespace neo
