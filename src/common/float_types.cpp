#include "common/float_types.h"

namespace neo {

namespace detail {

uint16_t
FloatToHalfBits(float f)
{
    const uint32_t x = FloatToBits(f);
    const uint32_t sign = (x >> 16) & 0x8000u;
    const int32_t exp = static_cast<int32_t>((x >> 23) & 0xFF) - 127 + 15;
    uint32_t mant = x & 0x7FFFFFu;

    if (((x >> 23) & 0xFF) == 0xFF) {
        if (mant == 0) {
            return static_cast<uint16_t>(sign | 0x7C00u);  // infinity
        }
        // NaN: quiet it and truncate the payload — exactly what
        // vcvtps2ph does, so hardware and software conversions agree
        // bitwise over the whole float domain (verified exhaustively).
        return static_cast<uint16_t>(sign | 0x7C00u | 0x200u | (mant >> 13));
    }
    if (exp >= 0x1F) {
        // Overflow to infinity.
        return static_cast<uint16_t>(sign | 0x7C00u);
    }
    if (exp <= 0) {
        // Subnormal or underflow to zero.
        if (exp < -10) {
            return static_cast<uint16_t>(sign);
        }
        // Add the implicit leading one, then shift right with rounding.
        mant |= 0x800000u;
        const int shift = 14 - exp;
        const uint32_t rounded =
            (mant >> shift) +
            (((mant >> (shift - 1)) & 1u) &
             (((mant & ((1u << (shift - 1)) - 1u)) != 0 ||
               ((mant >> shift) & 1u)) ? 1u : 0u));
        return static_cast<uint16_t>(sign | rounded);
    }

    // Normal case: round mantissa from 23 to 10 bits, nearest-even.
    uint32_t half = sign | (static_cast<uint32_t>(exp) << 10) | (mant >> 13);
    const uint32_t round_bit = (mant >> 12) & 1u;
    const uint32_t sticky = (mant & 0xFFFu) != 0;
    if (round_bit && (sticky || (half & 1u))) {
        half += 1;  // may carry into the exponent, which is correct behaviour
    }
    return static_cast<uint16_t>(half);
}

float
HalfBitsToFloat(uint16_t h)
{
    const uint32_t sign = (static_cast<uint32_t>(h) & 0x8000u) << 16;
    const uint32_t exp = (h >> 10) & 0x1Fu;
    const uint32_t mant = h & 0x3FFu;

    if (exp == 0) {
        if (mant == 0) {
            return BitsToFloat(sign);  // signed zero
        }
        // Subnormal: normalize.
        int e = -1;
        uint32_t m = mant;
        do {
            e++;
            m <<= 1;
        } while ((m & 0x400u) == 0);
        const uint32_t fexp = 127 - 15 - e;
        const uint32_t fmant = (m & 0x3FFu) << 13;
        return BitsToFloat(sign | (fexp << 23) | fmant);
    }
    if (exp == 0x1F) {
        if (mant == 0) {
            return BitsToFloat(sign | 0x7F800000u);  // infinity
        }
        // NaN: quiet it while widening the payload — exactly what
        // vcvtph2ps does, so hardware and software conversions agree
        // bitwise over all 2^16 half patterns (verified exhaustively).
        return BitsToFloat(sign | 0x7F800000u | 0x400000u | (mant << 13));
    }
    return BitsToFloat(sign | ((exp - 15 + 127) << 23) | (mant << 13));
}

uint16_t
FloatToBFloat16Bits(float f)
{
    uint32_t x = FloatToBits(f);
    if ((x & 0x7F800000u) == 0x7F800000u && (x & 0x7FFFFFu) != 0) {
        // NaN: keep it a NaN after truncation.
        return static_cast<uint16_t>((x >> 16) | 0x40u);
    }
    // Round-to-nearest-even on the low 16 bits.
    const uint32_t round = 0x7FFFu + ((x >> 16) & 1u);
    x += round;
    return static_cast<uint16_t>(x >> 16);
}

}  // namespace detail

const char*
PrecisionName(Precision p)
{
    switch (p) {
      case Precision::kFp32: return "fp32";
      case Precision::kFp16: return "fp16";
      case Precision::kBf16: return "bf16";
      case Precision::kTf32: return "tf32";
    }
    return "unknown";
}

}  // namespace neo
