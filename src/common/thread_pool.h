/**
 * @file
 * Fixed-size thread pool used by the data loader (double-buffered batch
 * preparation, Sec. 3.0.2) and by intra-worker parallel kernels.
 */
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/logging.h"

namespace neo {

/** Simple FIFO thread pool with future-returning submission. */
class ThreadPool
{
  public:
    /** Start `num_threads` workers (>= 1). */
    explicit ThreadPool(size_t num_threads);

    /** Drains pending work, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /**
     * Drain pending work and join all workers. Idempotent (from the owning
     * thread); after shutdown, Submit throws.
     */
    void Shutdown();

    /**
     * Submit a task; the returned future resolves with its result.
     * Throws std::runtime_error if the pool has been shut down.
     */
    template <typename F>
    auto
    Submit(F&& fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> result = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            NEO_REQUIRE(!stopping_,
                        "ThreadPool::Submit called after shutdown");
            queue_.emplace([task] { (*task)(); });
        }
        cv_.notify_one();
        return result;
    }

    /** Number of worker threads. */
    size_t size() const { return workers_.size(); }

  private:
    void WorkerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

}  // namespace neo
