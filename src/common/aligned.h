/**
 * @file
 * 64-byte-aligned allocation for kernel operand storage. The SIMD
 * microkernels in `src/kernels` issue unaligned-capable loads (which run
 * at full speed only when the address actually is aligned), so the hot
 * buffers — Matrix data, embedding table rows, packing panels — allocate
 * on cache-line boundaries and assert it instead of silently degrading.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace neo {

/** Alignment of every kernel-visible buffer (one cache line). */
inline constexpr std::size_t kKernelAlignment = 64;

/** True if `p` sits on an `align`-byte boundary. */
inline bool
IsAligned(const void* p, std::size_t align = kKernelAlignment)
{
    return (reinterpret_cast<std::uintptr_t>(p) & (align - 1)) == 0;
}

/**
 * Minimal std::allocator drop-in returning `Align`-byte-aligned memory.
 * All instances are interchangeable (stateless), so vectors using it can
 * be swapped/moved freely.
 */
template <typename T, std::size_t Align = kKernelAlignment>
class AlignedAllocator
{
  public:
    using value_type = T;

    static_assert((Align & (Align - 1)) == 0, "alignment must be a power of 2");
    static_assert(Align >= alignof(T), "alignment below the type's natural one");

    AlignedAllocator() = default;

    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept
    {
    }

    template <typename U>
    struct rebind {
        using other = AlignedAllocator<U, Align>;
    };

    T*
    allocate(std::size_t n)
    {
        return static_cast<T*>(
            ::operator new(n * sizeof(T), std::align_val_t(Align)));
    }

    void
    deallocate(T* p, std::size_t) noexcept
    {
        ::operator delete(p, std::align_val_t(Align));
    }

    friend bool
    operator==(const AlignedAllocator&, const AlignedAllocator&) noexcept
    {
        return true;
    }

    friend bool
    operator!=(const AlignedAllocator&, const AlignedAllocator&) noexcept
    {
        return false;
    }
};

/** Cache-line-aligned vector used for kernel operand storage. */
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, kKernelAlignment>>;

}  // namespace neo
