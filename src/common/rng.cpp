#include "common/rng.h"

#include "common/logging.h"

namespace neo {

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), s_(s)
{
    NEO_REQUIRE(n >= 1, "ZipfSampler needs at least one item");
    NEO_REQUIRE(s >= 0.0, "Zipf exponent must be non-negative");
    inv_s_ = 1.0 - s_;
    h_x1_ = H(1.5) - 1.0;
    h_n_ = H(static_cast<double>(n_) + 0.5);
}

double
ZipfSampler::H(double x) const
{
    // Integral of x^-s: handles the s == 1 singularity with log.
    if (std::abs(inv_s_) < 1e-12) {
        return std::log(x);
    }
    return std::pow(x, inv_s_) / inv_s_;
}

double
ZipfSampler::HInv(double x) const
{
    if (std::abs(inv_s_) < 1e-12) {
        return std::exp(x);
    }
    return std::pow(x * inv_s_, 1.0 / inv_s_);
}

uint64_t
ZipfSampler::Sample(Rng& rng) const
{
    if (s_ == 0.0 || n_ == 1) {
        return rng.NextBounded(n_);
    }
    // Rejection-inversion (Hormann & Derflinger 1996).
    while (true) {
        const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
        const double x = HInv(u);
        uint64_t k = static_cast<uint64_t>(x + 0.5);
        if (k < 1) {
            k = 1;
        } else if (k > n_) {
            k = n_;
        }
        const double kd = static_cast<double>(k);
        if (kd - x <= (s_ > 1.0 ? 1.0 : 0.5) ||
            u >= H(kd + 0.5) - std::pow(kd, -s_)) {
            return k - 1;  // convert 1-based rank to 0-based row id
        }
    }
}

}  // namespace neo
