/**
 * @file
 * Intra-op parallelism primitive (Sec. 4.4 analogue): ParallelFor chunks an
 * index range over the shared ThreadPool so hot kernels (GEMM, fused
 * embedding lookup, exact sparse optimizer, quantized collectives) can
 * saturate the host the way FBGEMM kernels saturate a GPU.
 *
 * Determinism contract: the range is split into fixed chunks of `grain`
 * indices — the chunking depends only on (begin, end, grain), never on the
 * thread count — and the callback must make chunks independent (each chunk
 * reads shared inputs and writes a disjoint output slice, no cross-chunk
 * reductions). Under that contract results are bit-identical to the serial
 * loop at any thread count, which the determinism suite pins down.
 */
#pragma once

#include <cstddef>
#include <functional>

#include "common/thread_pool.h"

namespace neo {

/**
 * Thread count the default pool is created with: `NEO_NUM_THREADS` if set
 * (clamped to >= 1), else std::thread::hardware_concurrency().
 */
size_t DefaultParallelism();

/**
 * Process-wide lazily-initialized pool shared by all parallel kernels and
 * the data loader. Created on first use with DefaultParallelism() threads.
 */
ThreadPool& DefaultThreadPool();

/**
 * Replace the default pool with one of `num_threads` workers. Test/bench
 * knob for sweeping thread counts; callers must ensure no parallel work is
 * in flight (the old pool drains before the swap completes).
 */
void SetDefaultPoolThreads(size_t num_threads);

/** True while the calling thread is executing inside a ParallelFor chunk. */
bool InParallelRegion();

/**
 * Apply `fn(chunk_begin, chunk_end)` over [begin, end) in fixed chunks of
 * `grain` indices. Runs serially (same chunk sequence) when there is a
 * single chunk, the pool has one thread, or the caller is already inside a
 * ParallelFor chunk (no nested parallelism). Otherwise chunks are executed
 * by the pool workers plus the calling thread; the call returns after every
 * chunk completes. The first exception thrown by a chunk is rethrown.
 */
void ParallelFor(ThreadPool& pool, size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

/** ParallelFor over the shared default pool. */
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

}  // namespace neo
