#include "common/cpu_features.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace neo {

namespace {

#if defined(__x86_64__) || defined(__i386__)

/** XGETBV: which vector register state the OS saves/restores. */
uint64_t
ReadXcr0()
{
    uint32_t eax, edx;
    __asm__ __volatile__("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
    return (static_cast<uint64_t>(edx) << 32) | eax;
}

#endif

}  // namespace

CpuFeatures
CpuFeatures::Detect()
{
    CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
    unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
        return f;
    }
    f.sse42 = (ecx & bit_SSE4_2) != 0;

    // AVX+ requires both the CPUID bit and OS-managed XMM/YMM state
    // (OSXSAVE + XCR0 bits 1..2); AVX-512 additionally needs the opmask
    // and ZMM state bits (XCR0 bits 5..7).
    const bool osxsave = (ecx & bit_OSXSAVE) != 0;
    const uint64_t xcr0 = osxsave ? ReadXcr0() : 0;
    const bool ymm_enabled = (xcr0 & 0x6) == 0x6;
    const bool zmm_enabled = (xcr0 & 0xE6) == 0xE6;

    f.avx = ymm_enabled && (ecx & bit_AVX) != 0;
    f.fma = f.avx && (ecx & bit_FMA) != 0;
    f.f16c = f.avx && (ecx & bit_F16C) != 0;

    unsigned int eax7 = 0, ebx7 = 0, ecx7 = 0, edx7 = 0;
    if (__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7)) {
        f.avx2 = f.avx && (ebx7 & bit_AVX2) != 0;
        f.avx512f = zmm_enabled && (ebx7 & bit_AVX512F) != 0;
    }
#endif
    return f;
}

const CpuFeatures&
CpuFeatures::Host()
{
    static const CpuFeatures features = Detect();
    return features;
}

std::string
CpuFeatures::ToString() const
{
    std::string s;
    const auto append = [&s](bool have, const char* name) {
        if (have) {
            if (!s.empty()) {
                s += ",";
            }
            s += name;
        }
    };
    append(sse42, "sse4.2");
    append(avx, "avx");
    append(fma, "fma");
    append(f16c, "f16c");
    append(avx2, "avx2");
    append(avx512f, "avx512f");
    return s.empty() ? "none" : s;
}

}  // namespace neo
