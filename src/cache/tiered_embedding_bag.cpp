#include "cache/tiered_embedding_bag.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "kernels/kernels.h"

namespace neo::cache {

TieredEmbeddingBag::TieredEmbeddingBag(
    ops::RowStore* store, const ops::SparseOptimizerConfig& optimizer)
    : store_(store), config_(optimizer)
{
    NEO_REQUIRE(store_ != nullptr, "null row store");
    NEO_REQUIRE(config_.kind == ops::SparseOptimizerKind::kSgd ||
                    config_.kind ==
                        ops::SparseOptimizerKind::kRowWiseAdaGrad,
                "TieredEmbeddingBag supports SGD and row-wise AdaGrad");
    if (config_.kind == ops::SparseOptimizerKind::kRowWiseAdaGrad) {
        rowwise_state_.assign(static_cast<size_t>(store_->rows()), 0.0f);
    }
    row_buf_.resize(static_cast<size_t>(store_->dim()));
    merged_.resize(static_cast<size_t>(store_->dim()));
}

void
TieredEmbeddingBag::Forward(const ops::TableInput& input, size_t batch,
                            Matrix& out)
{
    NEO_REQUIRE(input.lengths.size() == batch, "lengths size mismatch");
    const size_t dim = static_cast<size_t>(store_->dim());
    if (out.rows() != batch || out.cols() != dim) {
        out = Matrix(batch, dim);
    } else {
        out.Zero();
    }
    size_t offset = 0;
    for (size_t b = 0; b < batch; b++) {
        float* row = out.Row(b);
        for (uint32_t i = 0; i < input.lengths[b]; i++) {
            store_->AccumulateRow(input.indices[offset + i], 1.0f, row);
        }
        offset += input.lengths[b];
    }
    NEO_CHECK(offset == input.indices.size(), "indices/lengths mismatch");
}

void
TieredEmbeddingBag::BackwardAndUpdate(const ops::TableInput& input,
                                      size_t batch, const Matrix& grad)
{
    NEO_REQUIRE(input.lengths.size() == batch, "lengths size mismatch");
    NEO_REQUIRE(grad.rows() == batch, "grad batch mismatch");
    const size_t dim = static_cast<size_t>(store_->dim());
    NEO_REQUIRE(grad.cols() == dim, "grad dim mismatch");

    // Collect per-occurrence refs (same flow as the in-memory path).
    std::vector<ops::SparseGradRef> refs;
    refs.reserve(input.indices.size());
    size_t offset = 0;
    for (size_t b = 0; b < batch; b++) {
        const float* g = grad.Row(b);
        for (uint32_t i = 0; i < input.lengths[b]; i++) {
            refs.push_back({input.indices[offset + i], g});
        }
        offset += input.lengths[b];
    }

    // Sort + canonicalize duplicates exactly like SparseOptimizer does,
    // then apply one read-modify-write per unique row through the store.
    std::vector<uint32_t> order(refs.size());
    for (uint32_t i = 0; i < refs.size(); i++) {
        order[i] = i;
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) {
                         return refs[a].row < refs[b].row;
                     });

    size_t i = 0;
    while (i < order.size()) {
        const int64_t row = refs[order[i]].row;
        size_t j = i;
        while (j < order.size() && refs[order[j]].row == row) {
            j++;
        }
        if (j - i > 1) {
            std::sort(order.begin() + i, order.begin() + j,
                      [&](uint32_t a, uint32_t b) {
                          return std::lexicographical_compare(
                              refs[a].grad, refs[a].grad + dim,
                              refs[b].grad, refs[b].grad + dim);
                      });
        }
        // Merge and update through the same kernel table as
        // SparseOptimizer::ApplyExact so tiered and in-memory training
        // stay bitwise interchangeable across every dispatch tier.
        const kernels::KernelTable& kt = kernels::Active();
        std::fill(merged_.begin(), merged_.end(), 0.0f);
        for (size_t k = i; k < j; k++) {
            kt.add_f32(refs[order[k]].grad, merged_.data(), dim);
        }

        store_->ReadRow(row, row_buf_.data());
        const float lr = config_.learning_rate;
        if (config_.kind == ops::SparseOptimizerKind::kSgd) {
            kt.axpy_f32(-lr, merged_.data(), row_buf_.data(), dim);
        } else {
            const float sq_sum = kt.sum_squares_f32(merged_.data(), dim);
            float& m = rowwise_state_[static_cast<size_t>(row)];
            m += sq_sum / static_cast<float>(dim);
            const float scale = lr / (std::sqrt(m) + config_.eps);
            kt.axpy_f32(-scale, merged_.data(), row_buf_.data(), dim);
        }
        store_->WriteRow(row, row_buf_.data());
        i = j;
    }
}

}  // namespace neo::cache
