#include "cache/set_associative_cache.h"

#include "common/logging.h"

namespace neo::cache {

SetAssociativeCache::SetAssociativeCache(const CacheConfig& config)
    : config_(config)
{
    NEO_REQUIRE(config_.num_sets >= 1, "need at least one set");
    NEO_REQUIRE(config_.ways >= 1, "need at least one way");
    lines_.resize(config_.num_sets * config_.ways);
}

uint64_t
SetAssociativeCache::SetOf(int64_t row) const
{
    // Multiplicative hash spreads sequential row ids across sets.
    const uint64_t h =
        static_cast<uint64_t>(row) * 0x9E3779B97F4A7C15ull;
    return (h >> 17) % config_.num_sets;
}

SetAssociativeCache::Line*
SetAssociativeCache::FindLine(int64_t row)
{
    const uint64_t base = SetOf(row) * config_.ways;
    for (uint32_t w = 0; w < config_.ways; w++) {
        Line& line = lines_[base + w];
        if (line.valid && line.row == row) {
            return &line;
        }
    }
    return nullptr;
}

const SetAssociativeCache::Line*
SetAssociativeCache::FindLine(int64_t row) const
{
    return const_cast<SetAssociativeCache*>(this)->FindLine(row);
}

std::optional<uint64_t>
SetAssociativeCache::Probe(int64_t row) const
{
    const Line* line = FindLine(row);
    if (line == nullptr) {
        return std::nullopt;
    }
    return static_cast<uint64_t>(line - lines_.data());
}

std::optional<uint64_t>
SetAssociativeCache::Access(int64_t row)
{
    tick_++;
    Line* line = FindLine(row);
    if (line == nullptr) {
        stats_.misses++;
        return std::nullopt;
    }
    stats_.hits++;
    switch (config_.policy) {
      case ReplacementPolicy::kLru:
        line->meta = tick_;
        break;
      case ReplacementPolicy::kLfu:
        line->meta++;
        break;
    }
    return static_cast<uint64_t>(line - lines_.data());
}

SetAssociativeCache::InsertResult
SetAssociativeCache::Insert(int64_t row)
{
    NEO_CHECK(FindLine(row) == nullptr, "Insert of resident row ", row);
    const uint64_t base = SetOf(row) * config_.ways;

    // Prefer an invalid way; otherwise evict the policy's victim.
    Line* victim = nullptr;
    for (uint32_t w = 0; w < config_.ways; w++) {
        Line& line = lines_[base + w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (victim == nullptr || line.meta < victim->meta) {
            victim = &line;  // smallest timestamp (LRU) or count (LFU)
        }
    }

    InsertResult result;
    result.slot = static_cast<uint64_t>(victim - lines_.data());
    if (victim->valid) {
        stats_.evictions++;
        result.evicted_row = victim->row;
        result.evicted_dirty = victim->dirty;
        if (victim->dirty) {
            stats_.dirty_writebacks++;
        }
    }
    victim->row = row;
    victim->valid = true;
    victim->dirty = false;
    victim->meta = config_.policy == ReplacementPolicy::kLru ? tick_ : 1;
    return result;
}

void
SetAssociativeCache::MarkDirty(int64_t row)
{
    Line* line = FindLine(row);
    NEO_CHECK(line != nullptr, "MarkDirty of non-resident row ", row);
    line->dirty = true;
}

bool
SetAssociativeCache::IsDirty(int64_t row) const
{
    const Line* line = FindLine(row);
    NEO_CHECK(line != nullptr, "IsDirty of non-resident row ", row);
    return line->dirty;
}

std::vector<std::pair<int64_t, uint64_t>>
SetAssociativeCache::FlushDirty()
{
    std::vector<std::pair<int64_t, uint64_t>> dirty;
    for (size_t i = 0; i < lines_.size(); i++) {
        Line& line = lines_[i];
        if (line.valid && line.dirty) {
            dirty.emplace_back(line.row, static_cast<uint64_t>(i));
        }
        line.valid = false;
        line.dirty = false;
        line.row = -1;
        line.meta = 0;
    }
    return dirty;
}

}  // namespace neo::cache
