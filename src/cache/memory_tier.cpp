#include "cache/memory_tier.h"

#include "common/logging.h"

namespace neo::cache {

const char*
TierName(Tier tier)
{
    switch (tier) {
      case Tier::kHbm: return "HBM";
      case Tier::kDdr: return "DDR";
      case Tier::kSsd: return "SSD";
    }
    return "unknown";
}

MemoryTier::MemoryTier(Tier tier, double capacity_bytes,
                       double bandwidth_bytes_per_sec)
    : tier_(tier), capacity_bytes_(capacity_bytes),
      bandwidth_(bandwidth_bytes_per_sec)
{
    NEO_REQUIRE(capacity_bytes_ > 0 && bandwidth_ > 0,
                "tier needs positive capacity and bandwidth");
}

void
MemoryTier::ResetStats()
{
    read_bytes_ = 0;
    write_bytes_ = 0;
}

}  // namespace neo::cache
