/**
 * @file
 * Pooled embedding training over a RowStore — the hierarchical-memory
 * training path (Sec. 4.1.3): the same fused forward and exact
 * (sort-merge) backward+update as EmbeddingBagCollection, but every row
 * access goes through an abstract store, so a table can live behind the
 * 32-way software cache (HBM over DDR) or UVM paging and still train.
 * With a lossless store the results are bitwise identical to the plain
 * in-memory path (tested).
 */
#pragma once

#include <memory>

#include "cache/cached_embedding_store.h"
#include "cache/uvm_store.h"
#include "ops/embedding_bag.h"
#include "ops/row_store.h"

namespace neo::cache {

/** RowStore over a CachedEmbeddingStore (software cache over DDR). */
class CachedRowStore : public ops::RowStore
{
  public:
    explicit CachedRowStore(CachedEmbeddingStore store)
        : store_(std::move(store)) {}

    int64_t rows() const override { return store_.rows(); }
    int64_t dim() const override { return store_.dim(); }

    void ReadRow(int64_t row, float* out) override
    {
        store_.ReadRow(row, out);
    }
    void WriteRow(int64_t row, const float* in) override
    {
        store_.WriteRow(row, in);
    }
    void AccumulateRow(int64_t row, float weight, float* out) override
    {
        store_.AccumulateRow(row, weight, out);
    }

    CachedEmbeddingStore& store() { return store_; }

  private:
    CachedEmbeddingStore store_;
};

/** RowStore over a UVM paged table. */
class UvmRowStore : public ops::RowStore
{
  public:
    explicit UvmRowStore(UvmPagedStore store) : store_(std::move(store)) {}

    int64_t rows() const override { return store_.rows(); }
    int64_t dim() const override { return store_.dim(); }

    void ReadRow(int64_t row, float* out) override
    {
        store_.ReadRow(row, out);
    }
    void WriteRow(int64_t row, const float* in) override
    {
        store_.WriteRow(row, in);
    }
    void AccumulateRow(int64_t row, float weight, float* out) override
    {
        store_.AccumulateRow(row, weight, out);
    }

    UvmPagedStore& store() { return store_; }

  private:
    UvmPagedStore store_;
};

/**
 * One trainable pooled-embedding table over any RowStore.
 * Supports SGD and row-wise AdaGrad (the optimizers the F1-style
 * hierarchical-memory deployments use).
 */
class TieredEmbeddingBag
{
  public:
    /**
     * @param store Row storage (not owned; must outlive this).
     * @param optimizer SGD or row-wise AdaGrad configuration.
     */
    TieredEmbeddingBag(ops::RowStore* store,
                       const ops::SparseOptimizerConfig& optimizer);

    /** Fused pooled (sum) forward over the store. */
    void Forward(const ops::TableInput& input, size_t batch, Matrix& out);

    /**
     * Exact backward + update: duplicate rows are sorted and merged, then
     * each unique row is read, stepped, and written back through the
     * store — one read-modify-write per unique row regardless of pooling.
     */
    void BackwardAndUpdate(const ops::TableInput& input, size_t batch,
                           const Matrix& grad);

    ops::RowStore& store() { return *store_; }

  private:
    ops::RowStore* store_;
    ops::SparseOptimizerConfig config_;
    /** Row-wise AdaGrad moments (one float per row). */
    std::vector<float> rowwise_state_;
    std::vector<float> row_buf_;
    std::vector<float> merged_;
};

}  // namespace neo::cache
