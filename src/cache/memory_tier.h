/**
 * @file
 * Memory-tier accounting for the HBM + DDR + SSD hierarchy (Sec. 4.1.3).
 * Tiers carry capacity/bandwidth specs and count traffic; the cache and
 * UVM stores charge their accesses here so benches can convert traffic
 * into effective access time.
 */
#pragma once

#include <cstdint>
#include <string>

namespace neo::cache {

/** Identifier for each level of the hierarchy. */
enum class Tier {
    kHbm,
    kDdr,
    kSsd,
};

/** Tier name string. */
const char* TierName(Tier tier);

/** Static spec + running traffic counters for one tier. */
class MemoryTier
{
  public:
    /**
     * @param tier Which level this is.
     * @param capacity_bytes Usable capacity.
     * @param bandwidth_bytes_per_sec Achievable bandwidth (e.g. 850 GB/s
     *   HBM on V100; PCIe-limited ~16 GB/s for DDR-over-PCIe access from
     *   the GPU; ~2 GB/s midrange SSD).
     */
    MemoryTier(Tier tier, double capacity_bytes,
               double bandwidth_bytes_per_sec);

    Tier tier() const { return tier_; }
    double capacity_bytes() const { return capacity_bytes_; }
    double bandwidth() const { return bandwidth_; }

    /** Charge a read of `bytes`. */
    void RecordRead(uint64_t bytes) { read_bytes_ += bytes; }

    /** Charge a write of `bytes`. */
    void RecordWrite(uint64_t bytes) { write_bytes_ += bytes; }

    uint64_t read_bytes() const { return read_bytes_; }
    uint64_t write_bytes() const { return write_bytes_; }
    uint64_t total_bytes() const { return read_bytes_ + write_bytes_; }

    /** Seconds this tier spent moving the recorded traffic. */
    double
    TrafficSeconds() const
    {
        return static_cast<double>(total_bytes()) / bandwidth_;
    }

    /** Reset traffic counters (capacity/bandwidth unchanged). */
    void ResetStats();

  private:
    Tier tier_;
    double capacity_bytes_;
    double bandwidth_;
    uint64_t read_bytes_ = 0;
    uint64_t write_bytes_ = 0;
};

}  // namespace neo::cache
