/**
 * @file
 * UVM-style paged store: the baseline the software cache is compared
 * against (Sec. 4.1.3). CUDA unified memory migrates whole pages over PCIe
 * on fault and evicts at page granularity, so sparse row accesses drag in
 * mostly-unused data. This model reproduces that behaviour: an LRU set of
 * resident pages with page-sized migrations charged to the PCIe/DDR tier.
 */
#pragma once

#include <cstring>
#include <list>
#include <unordered_map>

#include "cache/memory_tier.h"
#include "ops/embedding_table.h"

namespace neo::cache {

/** Paging statistics. */
struct UvmStats {
    uint64_t accesses = 0;
    uint64_t page_faults = 0;
    uint64_t page_evictions = 0;
    uint64_t migrated_bytes = 0;

    double
    FaultRate() const
    {
        return accesses ? static_cast<double>(page_faults) / accesses : 0.0;
    }
};

/** Page-granular LRU view over an embedding table. */
class UvmPagedStore
{
  public:
    /**
     * @param backing Host-resident table (owned).
     * @param page_bytes Migration granularity (CUDA uses up to 2 MiB; 64KiB
     *   is typical for access-counter based migration).
     * @param resident_budget_bytes HBM budget for resident pages.
     * @param hbm HBM traffic tier (not owned).
     * @param pcie PCIe/DDR traffic tier (not owned).
     */
    UvmPagedStore(ops::EmbeddingTable backing, size_t page_bytes,
                  size_t resident_budget_bytes, MemoryTier* hbm,
                  MemoryTier* pcie);

    /** Read one row, faulting its page in if needed. */
    void ReadRow(int64_t row, float* out);

    /** Write one row, faulting its page in and marking it dirty. */
    void WriteRow(int64_t row, const float* in);

    /** Accumulate out[d] += weight * row[d]. */
    void AccumulateRow(int64_t row, float weight, float* out);

    const UvmStats& stats() const { return stats_; }

    /** Rows per page. */
    size_t RowsPerPage() const { return rows_per_page_; }

    /** Max resident pages. */
    size_t MaxResidentPages() const { return max_resident_pages_; }

    int64_t rows() const { return backing_.rows(); }
    int64_t dim() const { return backing_.dim(); }

  private:
    /** Fault handler: make the page holding `row` resident. */
    void TouchPage(int64_t row);

    size_t RowBytes() const;

    ops::EmbeddingTable backing_;
    size_t rows_per_page_;
    size_t max_resident_pages_;
    MemoryTier* hbm_;
    MemoryTier* pcie_;

    /** LRU list of resident page ids (front = most recent). */
    std::list<int64_t> lru_;
    /** page id -> iterator into lru_. */
    std::unordered_map<int64_t, std::list<int64_t>::iterator> resident_;

    UvmStats stats_;
};

}  // namespace neo::cache
