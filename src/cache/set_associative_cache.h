/**
 * @file
 * 32-way set-associative software cache (Sec. 4.1.3, [57]).
 *
 * The paper replaces CUDA unified memory with a custom software cache whose
 * associativity matches the GPU warp width (32), using LRU or LFU
 * replacement at embedding-row granularity. This class implements the
 * directory (tags + replacement state); data movement is handled by the
 * CachedEmbeddingStore that owns it.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace neo::cache {

/** Replacement policy. */
enum class ReplacementPolicy {
    kLru,
    kLfu,
};

/** Cache geometry and policy. */
struct CacheConfig {
    /** Number of sets; total row slots = num_sets * ways. */
    uint64_t num_sets = 1024;
    /** Associativity; 32 matches the warp size per the paper. */
    uint32_t ways = 32;
    ReplacementPolicy policy = ReplacementPolicy::kLru;
};

/** Hit/miss counters. */
struct CacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t dirty_writebacks = 0;

    double
    HitRate() const
    {
        const uint64_t total = hits + misses;
        return total ? static_cast<double>(hits) / total : 0.0;
    }
};

/**
 * Directory of a set-associative cache keyed by row id. Returns slot
 * numbers in [0, num_sets*ways) that the owner maps to data storage.
 */
class SetAssociativeCache
{
  public:
    explicit SetAssociativeCache(const CacheConfig& config);

    /** Total row slots. */
    uint64_t NumSlots() const { return config_.num_sets * config_.ways; }

    /**
     * Probe for a row without modifying replacement state.
     * @return Slot if present.
     */
    std::optional<uint64_t> Probe(int64_t row) const;

    /**
     * Access a row: on hit, update replacement state and return its slot.
     * On miss, return nullopt (call Insert to fill).
     */
    std::optional<uint64_t> Access(int64_t row);

    /** Result of inserting a row after a miss. */
    struct InsertResult {
        uint64_t slot;
        /** Row that was evicted to make room, if any. */
        std::optional<int64_t> evicted_row;
        /** Whether the evicted row was dirty (needs writeback). */
        bool evicted_dirty = false;
    };

    /**
     * Insert a row (must not be present). Chooses a victim way by the
     * configured policy; prefers invalid ways.
     */
    InsertResult Insert(int64_t row);

    /** Mark a resident row dirty (written in cache, stale in backing). */
    void MarkDirty(int64_t row);

    /** Whether a resident row is dirty. */
    bool IsDirty(int64_t row) const;

    /**
     * Evict every resident row, returning (row, slot) of all dirty lines
     * so the owner can write them back (used at checkpoint flush).
     */
    std::vector<std::pair<int64_t, uint64_t>> FlushDirty();

    const CacheStats& stats() const { return stats_; }
    const CacheConfig& config() const { return config_; }

  private:
    struct Line {
        int64_t row = -1;
        bool valid = false;
        bool dirty = false;
        /** LRU timestamp or LFU frequency count. */
        uint64_t meta = 0;
    };

    uint64_t SetOf(int64_t row) const;
    Line* FindLine(int64_t row);
    const Line* FindLine(int64_t row) const;

    CacheConfig config_;
    std::vector<Line> lines_;  // num_sets * ways, set-major
    uint64_t tick_ = 0;
    CacheStats stats_;
};

}  // namespace neo::cache
