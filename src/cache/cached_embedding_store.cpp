#include "cache/cached_embedding_store.h"

#include <cstring>

#include "common/logging.h"
#include "kernels/kernels.h"

namespace neo::cache {

CachedEmbeddingStore::CachedEmbeddingStore(ops::EmbeddingTable backing,
                                           const CacheConfig& cache_config,
                                           MemoryTier* hbm, MemoryTier* ddr)
    : backing_(std::move(backing)), cache_(cache_config), hbm_(hbm),
      ddr_(ddr)
{
    NEO_REQUIRE(hbm_ != nullptr && ddr_ != nullptr, "tiers required");
    slot_data_.assign(cache_.NumSlots() * static_cast<size_t>(backing_.dim()),
                      0.0f);
}

size_t
CachedEmbeddingStore::RowBytes() const
{
    return static_cast<size_t>(backing_.dim()) *
           BytesPerElement(backing_.precision());
}

float*
CachedEmbeddingStore::SlotData(uint64_t slot)
{
    return slot_data_.data() + slot * static_cast<size_t>(backing_.dim());
}

uint64_t
CachedEmbeddingStore::EnsureResident(int64_t row)
{
    if (auto slot = cache_.Access(row)) {
        return *slot;
    }
    // Miss: fetch the row from DDR (over PCIe) and fill a cache slot.
    const auto result = cache_.Insert(row);
    if (result.evicted_row && result.evicted_dirty) {
        // Write the victim back before reusing its slot.
        backing_.WriteRow(*result.evicted_row, SlotData(result.slot));
        ddr_->RecordWrite(RowBytes());
    }
    backing_.ReadRow(row, SlotData(result.slot));
    ddr_->RecordRead(RowBytes());
    hbm_->RecordWrite(RowBytes());
    return result.slot;
}

void
CachedEmbeddingStore::ReadRow(int64_t row, float* out)
{
    const uint64_t slot = EnsureResident(row);
    const float* src = SlotData(slot);
    std::memcpy(out, src, static_cast<size_t>(backing_.dim()) *
                              sizeof(float));
    hbm_->RecordRead(RowBytes());
}

void
CachedEmbeddingStore::AccumulateRow(int64_t row, float weight, float* out)
{
    const uint64_t slot = EnsureResident(row);
    // Same separately-rounded axpy chain as EmbeddingTable::AccumulateRow,
    // so cached and uncached reads agree bitwise on every dispatch tier.
    kernels::Active().axpy_f32(weight, SlotData(slot), out,
                               static_cast<size_t>(backing_.dim()));
    hbm_->RecordRead(RowBytes());
}

void
CachedEmbeddingStore::WriteRow(int64_t row, const float* in)
{
    const uint64_t slot = EnsureResident(row);
    std::memcpy(SlotData(slot), in,
                static_cast<size_t>(backing_.dim()) * sizeof(float));
    cache_.MarkDirty(row);
    hbm_->RecordWrite(RowBytes());
}

void
CachedEmbeddingStore::Flush()
{
    for (const auto& [row, slot] : cache_.FlushDirty()) {
        backing_.WriteRow(row, SlotData(slot));
        ddr_->RecordWrite(RowBytes());
    }
}

}  // namespace neo::cache
