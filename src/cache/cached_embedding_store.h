/**
 * @file
 * HBM-cached embedding storage: a DDR-resident embedding table fronted by
 * the 32-way set-associative software cache (Sec. 4.1.3). Reads and writes
 * go through the cache at row granularity; dirty rows are written back on
 * eviction or Flush(). Tier traffic is charged to the supplied MemoryTier
 * objects so benches can convert it into effective bandwidth.
 */
#pragma once

#include <memory>

#include "common/aligned.h"
#include "cache/memory_tier.h"
#include "cache/set_associative_cache.h"
#include "ops/embedding_table.h"

namespace neo::cache {

/** Row-granular cached view over an embedding table. */
class CachedEmbeddingStore
{
  public:
    /**
     * @param backing The DDR-resident table (owned).
     * @param cache_config Cache geometry; slot data lives in HBM.
     * @param hbm HBM tier for traffic accounting (not owned).
     * @param ddr DDR/PCIe tier for traffic accounting (not owned).
     */
    CachedEmbeddingStore(ops::EmbeddingTable backing,
                         const CacheConfig& cache_config, MemoryTier* hbm,
                         MemoryTier* ddr);

    /** Read one row through the cache. */
    void ReadRow(int64_t row, float* out);

    /** Write one row into the cache (write-back, marks dirty). */
    void WriteRow(int64_t row, const float* in);

    /** Accumulate out[d] += weight * row[d] through the cache. */
    void AccumulateRow(int64_t row, float weight, float* out);

    /** Write all dirty rows back to the backing table and clear the cache. */
    void Flush();

    /** Cache directory statistics. */
    const CacheStats& stats() const { return cache_.stats(); }

    /** Bytes of one row in cache/backing. */
    size_t RowBytes() const;

    /** Backing table; call Flush() first for an up-to-date view. */
    ops::EmbeddingTable& backing() { return backing_; }

    int64_t rows() const { return backing_.rows(); }
    int64_t dim() const { return backing_.dim(); }

  private:
    /** Ensure the row is resident; returns its slot. */
    uint64_t EnsureResident(int64_t row);

    float* SlotData(uint64_t slot);

    ops::EmbeddingTable backing_;
    SetAssociativeCache cache_;
    /**
     * Cached row data, slot-major (NumSlots x dim), conceptually in HBM.
     * 64-byte aligned like every kernel-visible row buffer.
     */
    AlignedVector<float> slot_data_;
    MemoryTier* hbm_;
    MemoryTier* ddr_;
};

}  // namespace neo::cache
