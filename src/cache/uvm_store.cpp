#include "cache/uvm_store.h"

#include "common/logging.h"

namespace neo::cache {

UvmPagedStore::UvmPagedStore(ops::EmbeddingTable backing, size_t page_bytes,
                             size_t resident_budget_bytes, MemoryTier* hbm,
                             MemoryTier* pcie)
    : backing_(std::move(backing)), hbm_(hbm), pcie_(pcie)
{
    NEO_REQUIRE(hbm_ != nullptr && pcie_ != nullptr, "tiers required");
    const size_t row_bytes = RowBytes();
    NEO_REQUIRE(page_bytes >= row_bytes,
                "page must hold at least one row");
    rows_per_page_ = page_bytes / row_bytes;
    max_resident_pages_ =
        std::max<size_t>(1, resident_budget_bytes / page_bytes);
}

size_t
UvmPagedStore::RowBytes() const
{
    return static_cast<size_t>(backing_.dim()) *
           BytesPerElement(backing_.precision());
}

void
UvmPagedStore::TouchPage(int64_t row)
{
    stats_.accesses++;
    const int64_t page = row / static_cast<int64_t>(rows_per_page_);
    auto it = resident_.find(page);
    if (it != resident_.end()) {
        // Hit: move to MRU position.
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }

    // Page fault: migrate the whole page over PCIe.
    stats_.page_faults++;
    const uint64_t page_bytes =
        static_cast<uint64_t>(rows_per_page_) * RowBytes();
    pcie_->RecordRead(page_bytes);
    hbm_->RecordWrite(page_bytes);
    stats_.migrated_bytes += page_bytes;

    if (resident_.size() >= max_resident_pages_) {
        // Evict the LRU page. UVM writes back modified pages; we charge a
        // full-page writeback, the pessimistic (and common) case for
        // embedding updates.
        const int64_t victim = lru_.back();
        lru_.pop_back();
        resident_.erase(victim);
        stats_.page_evictions++;
        pcie_->RecordWrite(page_bytes);
        stats_.migrated_bytes += page_bytes;
    }
    lru_.push_front(page);
    resident_[page] = lru_.begin();
}

void
UvmPagedStore::ReadRow(int64_t row, float* out)
{
    TouchPage(row);
    backing_.ReadRow(row, out);
    hbm_->RecordRead(RowBytes());
}

void
UvmPagedStore::WriteRow(int64_t row, const float* in)
{
    TouchPage(row);
    backing_.WriteRow(row, in);
    hbm_->RecordWrite(RowBytes());
}

void
UvmPagedStore::AccumulateRow(int64_t row, float weight, float* out)
{
    TouchPage(row);
    backing_.AccumulateRow(row, weight, out);
    hbm_->RecordRead(RowBytes());
}

}  // namespace neo::cache
