/**
 * @file
 * Bandwidth model for the fused embedding kernels (Sec. 4.1, Appendix A
 * Figs. 18-19). Embedding lookup is HBM-bandwidth bound: time is the
 * bytes of rows gathered (plus pooled output) over the achievable HBM
 * bandwidth, derated by a row-width efficiency (narrow rows waste memory
 * transactions) and an occupancy term (small batches cannot fill the
 * GPU), which yields the rising-then-saturating achieved-bandwidth curves
 * of the paper's benchmark.
 */
#pragma once

#include "common/float_types.h"
#include "sim/hardware.h"

namespace neo::sim {

/** The Appendix-A embedding benchmark configuration. */
struct EmbBenchShape {
    int64_t num_tables = 64;
    int64_t rows_per_table = 1000000;
    int64_t dim = 128;
    int64_t pooling = 32;
    int64_t batch = 1024;
    Precision precision = Precision::kFp32;
};

/** Estimated kernel time and achieved bandwidth. */
struct EmbEstimate {
    double seconds = 0.0;
    double bytes_moved = 0.0;
    double achieved_bandwidth = 0.0;  // bytes/s
};

/** HBM-roofline estimator for embedding forward/backward kernels. */
class EmbeddingModel
{
  public:
    explicit EmbeddingModel(const GpuSpec& gpu) : gpu_(gpu) {}

    /** Pooled-lookup forward kernel. */
    EmbEstimate Forward(const EmbBenchShape& shape) const;

    /** Fused backward + sparse-optimizer kernel (Sec. 4.1.1). */
    EmbEstimate BackwardFused(const EmbBenchShape& shape) const;

    /**
     * Generic lookup estimate used by the iteration model: total rows
     * gathered and their width, across whatever tables a worker owns.
     */
    EmbEstimate LookupSeconds(double total_rows, double avg_dim,
                              Precision precision) const;

    /** Generic fused-update estimate (read-modify-write + state). */
    EmbEstimate UpdateSeconds(double total_rows, double avg_dim,
                              Precision precision) const;

    const GpuSpec& gpu() const { return gpu_; }

  private:
    /** Achieved fraction of HBM bandwidth for the given access pattern. */
    double Efficiency(double row_bytes, double concurrent_rows) const;

    GpuSpec gpu_;
};

}  // namespace neo::sim
