/**
 * @file
 * Forward-only analytical latency/QPS model for distributed inference
 * serving. Reuses the Eq. 1 forward dependency chain of IterationModel
 * (input AllToAll + embedding lookup + pooled AllToAll overlapped with
 * the bottom MLP, then interaction and top MLP) and appends the serving
 * path's extras: the logit AllGather that returns the full batch to the
 * dispatch rank, and a fixed dispatch overhead (batch merge, broadcast,
 * response completion). No backward, no optimizer, no gradient comm —
 * serving steps are the forward slice of a training iteration.
 *
 * bench/micro_serve diffs this model's per-batch breakdown against the
 * measured serve_batch spans (measured-vs-modeled, as EXPERIMENTS.md
 * does for training steps).
 */
#pragma once

#include "sim/comm_model.h"
#include "sim/embedding_model.h"
#include "sim/gemm_model.h"
#include "sim/workloads.h"

namespace neo::sim {

/** Knobs for one serving configuration. */
struct ServingSetup {
    ClusterSpec cluster = ClusterSpec::Prototype();
    int num_gpus = 8;
    /** Global batch per dispatch (the batcher's merged micro-batch,
     *  padded to a multiple of num_gpus). */
    int64_t batch = 64;
    /** Pooled-embedding forward AllToAll wire precision. */
    Precision fwd_comm = Precision::kFp32;
    /** Embedding table storage precision. */
    Precision emb_precision = Precision::kFp32;
    /** MLP compute precision. */
    Precision mlp_precision = Precision::kTf32;
    /** Embedding load imbalance (max/mean across GPUs), from the plan. */
    double imbalance = 1.0;
    /** Worst per-worker sum of row-wise-sharded dims (Sec. 4.2.2). */
    double rw_dim_sum = 0.0;
    /** Fraction of row reads served from HBM when tables spill to DDR
     *  behind the serving cache (Sec. 4.1.3); misses cross PCIe. */
    double hbm_hit_rate = 1.0;
    /** Fixed per-dispatch overhead: batch merge, command broadcast,
     *  promise completion. */
    double fixed_overhead = 1e-3;
};

/** Per-op serialized seconds for one served batch, plus totals. */
struct ServingBreakdown {
    double input_a2a = 0.0;
    double emb_lookup = 0.0;
    double pooled_a2a = 0.0;
    double bot_mlp = 0.0;
    double interaction = 0.0;
    double top_mlp = 0.0;
    /** Logit AllGather returning all scores to every rank. */
    double gather = 0.0;
    double overhead = 0.0;

    /** Eq. 1 forward composition + gather + overhead. */
    double total = 0.0;
    /** Sustained throughput at this batch size, requests/second. */
    double qps = 0.0;
};

/** Evaluates the forward-only model for a workload on a serving setup. */
class ServingModel
{
  public:
    ServingModel(const WorkloadModel& workload, const ServingSetup& setup);

    ServingBreakdown Estimate() const;

    const WorkloadModel& workload() const { return workload_; }
    const ServingSetup& setup() const { return setup_; }

  private:
    WorkloadModel workload_;
    ServingSetup setup_;
    GemmModel gemm_;
    MlpModel mlp_;
    EmbeddingModel emb_;
    CommModel comm_;
};

/**
 * Fleet-level availability/failover cost terms for a FleetRouter over
 * N replica serving worlds (the serving analogue of FaultModel's
 * training failure terms). One replica kill costs the fleet:
 * detect (poisoned barrier propagation or a barrier timeout on an idle
 * world) + drain (typed kReplicaFailed completion of in-flight
 * requests) + backoff + redispatch service on a survivor; capacity runs
 * degraded at (N-1)/N until the replica is replaced. Snapshot warm-up
 * happens off the serve path, so a version flip costs zero
 * availability by construction (`warmup_seconds` only delays the flip).
 */
struct FleetSetup {
    /** Replica serving worlds behind the router. */
    int replicas = 3;
    /** One replica's sustained throughput (ServingBreakdown::qps). */
    double replica_qps = 1000.0;
    /** One replica's per-batch latency (ServingBreakdown::total). */
    double batch_seconds = 1e-3;
    /** Failure detection: ~0 for a poisoned barrier mid-collective
     *  (peers wake immediately), barrier_timeout for an idle world. */
    double detect_seconds = 1e-3;
    /** Router backoff before the replayed dispatch. */
    double backoff_seconds = 1e-3;
    /** Requests in flight on the dying replica (queue + staged). */
    double inflight_requests = 32.0;
    /** Engine version-state build time (paid off the serve path). */
    double warmup_seconds = 0.0;
};

/** What one replica kill costs the fleet. */
struct FleetEstimate {
    /** Fleet throughput with all replicas up. */
    double steady_qps = 0.0;
    /** Fleet throughput with one replica quarantined. */
    double degraded_qps = 0.0;
    /** Added latency of a replayed request: detect + drain + backoff +
     *  rescore on a survivor. */
    double failover_latency = 0.0;
    /** Fraction of capacity-seconds retained over `horizon_seconds`
     *  when one replica dies at the start of it (requests are replayed,
     *  not lost, so request success stays 1.0 — availability here is
     *  capacity, not correctness). */
    double availability = 0.0;
    /** Latency cliff a cold version flip would add to the first
     *  request; 0 with warm-up (the entire point of Prewarm). */
    double cold_flip_penalty = 0.0;
};

/** Closed-form evaluation of FleetSetup (pure; unit-testable). */
class FleetModel
{
  public:
    explicit FleetModel(const FleetSetup& setup) : setup_(setup) {}

    FleetEstimate Estimate(double horizon_seconds) const;

    const FleetSetup& setup() const { return setup_; }

  private:
    FleetSetup setup_;
};

}  // namespace neo::sim
