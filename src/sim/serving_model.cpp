#include "sim/serving_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace neo::sim {

ServingModel::ServingModel(const WorkloadModel& workload,
                           const ServingSetup& setup)
    : workload_(workload), setup_(setup),
      gemm_(setup.cluster.node.gpu), mlp_(setup.cluster.node.gpu),
      emb_(setup.cluster.node.gpu), comm_(setup.cluster)
{
    NEO_REQUIRE(setup_.num_gpus >= 1, "need at least one GPU");
    NEO_REQUIRE(setup_.batch >= setup_.num_gpus,
                "dispatch batch must cover every GPU");
}

ServingBreakdown
ServingModel::Estimate() const
{
    const double w = setup_.num_gpus;
    const double b_global = static_cast<double>(setup_.batch);
    const double b_local = b_global / w;
    const double tables = workload_.num_tables;
    const double pooling = workload_.avg_pooling;
    const double dim = workload_.dim_avg;
    const double imbalance = setup_.imbalance;

    ServingBreakdown bd;

    // Embedding pooling: each GPU reads the GLOBAL batch's rows for its
    // local tables; the dispatch waits for the straggler.
    const double rows_per_gpu =
        b_global * tables * pooling / w * imbalance;
    bd.emb_lookup =
        emb_.LookupSeconds(rows_per_gpu, dim, setup_.emb_precision).seconds;
    if (setup_.hbm_hit_rate < 1.0) {
        const double miss_bytes =
            rows_per_gpu * dim *
            static_cast<double>(BytesPerElement(setup_.emb_precision)) *
            (1.0 - setup_.hbm_hit_rate);
        bd.emb_lookup += miss_bytes / setup_.cluster.node.pcie_bw;
    }

    // MLPs: forward half of the training roofline, same FLOP rescaling
    // to the workload's published MFLOPs/sample and bottom/top split.
    std::vector<int64_t> widths(
        static_cast<size_t>(workload_.num_mlp_layers) + 1,
        static_cast<int64_t>(workload_.avg_mlp_size));
    const MlpEstimate layers = mlp_.EstimateLayers(
        static_cast<int64_t>(b_local), widths, setup_.mlp_precision);
    double layer_flops = 0.0;
    for (size_t l = 0; l + 1 < widths.size(); l++) {
        layer_flops += 2.0 * b_local * widths[l] * widths[l + 1];
    }
    const double target_flops = workload_.mflops_per_sample * 1e6 * b_local;
    const double scale = target_flops / layer_flops;
    const double bot_share = 0.3;
    bd.bot_mlp = layers.forward_seconds * scale * bot_share;
    bd.top_mlp = layers.forward_seconds * scale * (1.0 - bot_share);
    bd.interaction = 0.05 * (bd.bot_mlp + bd.top_mlp);

    if (setup_.num_gpus > 1) {
        // Input redistribution: lengths (4B) + indices (8B) per table.
        const double input_bytes =
            b_local * tables * (pooling * 8.0 + 4.0);
        bd.input_a2a =
            comm_.AllToAll(input_bytes, setup_.num_gpus).seconds *
            imbalance;

        // Pooled embeddings back to the sample owners.
        const double fwd_elem =
            static_cast<double>(BytesPerElement(setup_.fwd_comm));
        const double fwd_bytes = b_local * tables * dim * fwd_elem;
        bd.pooled_a2a =
            comm_.AllToAll(fwd_bytes, setup_.num_gpus).seconds * imbalance;

        // Row-wise shards exchange GLOBAL-batch partial pools.
        if (setup_.rw_dim_sum > 0.0) {
            const double nic = setup_.cluster.node.scaleout_achievable;
            bd.pooled_a2a +=
                b_global * setup_.rw_dim_sum * fwd_elem / nic;
        }

        // FP32 logit AllGather (one float per sample on every rank).
        bd.gather =
            comm_.AllGather(b_global * 4.0, setup_.num_gpus).seconds;
    }

    bd.overhead = setup_.fixed_overhead;

    // Forward slice of Eq. 1, plus the serving-only tail.
    const double emb_path = bd.input_a2a + bd.emb_lookup + bd.pooled_a2a;
    bd.total = std::max(bd.bot_mlp, emb_path) + bd.interaction +
               bd.top_mlp + bd.gather + bd.overhead;
    bd.qps = b_global / bd.total;
    return bd;
}

FleetEstimate
FleetModel::Estimate(double horizon_seconds) const
{
    FleetEstimate est;
    const double n = static_cast<double>(setup_.replicas);
    est.steady_qps = n * setup_.replica_qps;
    est.degraded_qps = std::max(0.0, n - 1.0) * setup_.replica_qps;

    // A replayed request pays: detection of the death, the typed drain
    // (in-flight requests complete as kReplicaFailed at the survivor's
    // batch cadence), the router's backoff, and a full rescore on the
    // surviving replica.
    const double drain_seconds =
        setup_.replica_qps > 0.0
            ? setup_.inflight_requests / setup_.replica_qps
            : 0.0;
    est.failover_latency = setup_.detect_seconds + drain_seconds +
                           setup_.backoff_seconds + setup_.batch_seconds;

    // Capacity-seconds retained over the horizon with one replica dead
    // from t=0: the fleet serves (n-1)/n of capacity for the whole
    // horizon plus loses the failover window's worth of the dead
    // replica's share. Requests are replayed, never dropped, so this is
    // a capacity metric — request success stays 1.0.
    if (horizon_seconds > 0.0 && n > 0.0) {
        const double lost = horizon_seconds / n +
                            est.failover_latency / n;
        est.availability =
            std::max(0.0, 1.0 - lost / horizon_seconds);
    }

    // Without Prewarm the first request after a version flip pays the
    // engine build inline; warm-up moves it off the serve path.
    est.cold_flip_penalty = setup_.warmup_seconds;
    return est;
}

}  // namespace neo::sim
