#include "sim/workloads.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace neo::sim {

double
WorkloadModel::MlpParams() const
{
    return static_cast<double>(num_mlp_layers) * avg_mlp_size *
           avg_mlp_size;
}

double
WorkloadModel::EmbeddingParams() const
{
    return std::max(0.0, num_params - MlpParams());
}

std::vector<sharding::TableConfig>
WorkloadModel::SynthesizeTables(uint64_t seed) const
{
    NEO_REQUIRE(num_tables > 0, "workload has no tables");
    Rng rng(seed ^ 0xF00DULL);

    std::vector<sharding::TableConfig> tables(num_tables);

    // Dims: log-uniform in [dim_min, dim_max], then rescale multiplicative
    // deviations so the mean matches dim_avg; snap to multiples of 4.
    std::vector<double> dims(num_tables);
    double dim_sum = 0.0;
    for (auto& d : dims) {
        const double lo = std::log(static_cast<double>(dim_min));
        const double hi = std::log(static_cast<double>(dim_max));
        d = std::exp(rng.NextUniform(static_cast<float>(lo),
                                     static_cast<float>(hi)));
        dim_sum += d;
    }
    const double dim_scale = dim_avg * num_tables / dim_sum;
    for (int t = 0; t < num_tables; t++) {
        double d = dims[t] * dim_scale;
        d = std::clamp(d, static_cast<double>(dim_min),
                       static_cast<double>(dim_max));
        tables[t].dim = std::max<int64_t>(
            4, static_cast<int64_t>(std::round(d / 4.0)) * 4);
    }

    // A slice of production tables are tiny categorical enums (country,
    // device type, ...): log-uniform in [100, 20K] rows, negligible
    // parameter mass, and the natural data-parallel candidates
    // (Sec. 4.2.4).
    const int num_small = num_tables / 10;
    std::vector<int64_t> small_rows(num_small);
    for (auto& rows : small_rows) {
        rows = static_cast<int64_t>(
            std::exp(rng.NextUniform(std::log(100.0f),
                                     std::log(20000.0f))));
    }

    // Remaining rows: log-normal spread (sigma ~1.2 gives the heavy skew
    // of production tables), rescaled so sum(rows * dim) hits the
    // embedding parameter budget.
    std::vector<double> raw_rows(num_tables);
    double weighted = 0.0;
    for (int t = num_small; t < num_tables; t++) {
        raw_rows[t] = std::exp(1.2 * rng.NextGaussian());
        weighted += raw_rows[t] * static_cast<double>(tables[t].dim);
    }
    double row_scale = EmbeddingParams() / weighted;
    // Apply the per-table cap iteratively: clamp, then rescale the
    // unclamped tables so the total parameter budget is preserved.
    std::vector<bool> capped(num_tables, false);
    for (int pass = 0; pass < 4; pass++) {
        double capped_params = 0.0;
        double uncapped_weight = 0.0;
        for (int t = num_small; t < num_tables; t++) {
            const double params =
                raw_rows[t] * row_scale * static_cast<double>(tables[t].dim);
            if (max_table_params > 0 && params > max_table_params) {
                capped[t] = true;
            }
            if (capped[t]) {
                capped_params += max_table_params;
            } else {
                uncapped_weight +=
                    raw_rows[t] * static_cast<double>(tables[t].dim);
            }
        }
        if (uncapped_weight <= 0) {
            break;
        }
        row_scale = (EmbeddingParams() - capped_params) / uncapped_weight;
    }
    // Pooling: heavy-tailed (log-normal, sigma 1) rescaled to the exact
    // sample mean — production models mix tiny enum features with
    // user-history features pooling hundreds of ids, which is what makes
    // naive placement severely imbalanced (Sec. 5.3.2).
    std::vector<double> raw_pooling(num_tables);
    double pooling_sum = 0.0;
    for (auto& p : raw_pooling) {
        p = std::exp(1.0 * rng.NextGaussian());
        pooling_sum += p;
    }
    const double pooling_scale = avg_pooling * num_tables / pooling_sum;

    for (int t = 0; t < num_tables; t++) {
        double rows;
        if (t < num_small) {
            rows = static_cast<double>(small_rows[t]);
        } else if (capped[t]) {
            rows = max_table_params / static_cast<double>(tables[t].dim);
        } else {
            rows = raw_rows[t] * row_scale;
        }
        tables[t].rows = std::max<int64_t>(100, static_cast<int64_t>(rows));
        tables[t].name = name + "_t" + std::to_string(t);
        tables[t].pooling =
            std::max(1.0, raw_pooling[t] * pooling_scale);
    }
    return tables;
}

WorkloadModel
WorkloadModel::A1()
{
    WorkloadModel m;
    m.name = "A1";
    m.num_params = 95e9;
    m.mflops_per_sample = 89;
    m.num_tables = 150;       // "~100s"
    m.dim_min = 4;
    m.dim_max = 192;
    m.dim_avg = 68;
    m.avg_pooling = 27;
    m.num_mlp_layers = 26;
    m.avg_mlp_size = 914;
    m.max_table_params = 4e9;
    return m;
}

WorkloadModel
WorkloadModel::A2()
{
    WorkloadModel m;
    m.name = "A2";
    m.num_params = 793e9;
    m.mflops_per_sample = 638;
    m.num_tables = 1000;      // "~1000s"
    m.dim_min = 4;
    m.dim_max = 384;
    m.dim_avg = 93;
    m.avg_pooling = 15;
    m.num_mlp_layers = 20;
    m.avg_mlp_size = 3375;
    m.max_table_params = 4e9;
    return m;
}

WorkloadModel
WorkloadModel::A3()
{
    WorkloadModel m;
    m.name = "A3";
    m.num_params = 845e9;
    m.mflops_per_sample = 784;
    m.num_tables = 1000;
    m.dim_min = 4;
    m.dim_max = 960;
    m.dim_avg = 231;
    m.avg_pooling = 17;
    m.num_mlp_layers = 26;
    m.avg_mlp_size = 3210;
    m.max_table_params = 4e9;
    return m;
}

WorkloadModel
WorkloadModel::F1()
{
    WorkloadModel m;
    m.name = "F1";
    m.num_params = 12e12;
    m.mflops_per_sample = 5;
    m.num_tables = 10;
    m.dim_min = 256;
    m.dim_max = 256;
    m.dim_avg = 256;
    m.avg_pooling = 20;
    m.num_mlp_layers = 7;
    m.avg_mlp_size = 490;
    return m;
}

std::vector<WorkloadModel>
WorkloadModel::All()
{
    return {A1(), A2(), A3(), F1()};
}

}  // namespace neo::sim
