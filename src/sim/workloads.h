/**
 * @file
 * The paper's target production models (Table 3): A1, A2, A3 and the 12T
 * capacity-limit model F1. Each workload carries the published aggregate
 * statistics and can synthesize a concrete table list matching them (for
 * the sharding planner and the functional scale-down runs).
 */
#pragma once

#include <string>
#include <vector>

#include "sharding/types.h"

namespace neo::sim {

/** Aggregate description of one production DLRM (Table 3 row). */
struct WorkloadModel {
    std::string name;
    /** Total parameters (dominated by embeddings). */
    double num_params = 0.0;
    /** Forward MFLOPs per sample. */
    double mflops_per_sample = 0.0;
    int num_tables = 0;
    int64_t dim_min = 4;
    int64_t dim_max = 256;
    double dim_avg = 64.0;
    double avg_pooling = 20.0;
    int num_mlp_layers = 20;
    double avg_mlp_size = 1000.0;
    /**
     * Largest single table, in parameters (0 = uncapped). Production A*
     * models hash-cap their categorical features so no single table
     * breaks a device; F1 is the capacity-limit model whose tables do
     * (Sec. 5.3.3).
     */
    double max_table_params = 0.0;

    /** Dense (MLP) parameter count estimate: layers x avg_size^2. */
    double MlpParams() const;

    /** Embedding parameter count: num_params minus the MLP share. */
    double EmbeddingParams() const;

    /**
     * Synthesize a concrete table list matching the aggregate stats:
     * dims log-uniform in [dim_min, dim_max] rescaled to hit dim_avg,
     * rows log-normal rescaled so total parameters match, poolings
     * spread around avg_pooling. Deterministic in `seed`.
     */
    std::vector<sharding::TableConfig> SynthesizeTables(
        uint64_t seed = 7) const;

    static WorkloadModel A1();
    static WorkloadModel A2();
    static WorkloadModel A3();
    static WorkloadModel F1();

    /** All four target models. */
    static std::vector<WorkloadModel> All();
};

}  // namespace neo::sim
