/**
 * @file
 * PARAM-bench-style trace replay (Appendix A, "Replay mode"): take the
 * exact sequence and sizes of collective calls a real (functional) run
 * produced and re-estimate its communication time on a modeled cluster —
 * "mimic exact workload behavior in terms of collective sizes" instead of
 * synthetic power-of-two sweeps.
 */
#pragma once

#include <span>

#include "comm/process_group.h"
#include "sim/comm_model.h"

namespace neo::sim {

/** Replay result: total time and a per-op breakdown. */
struct ReplayEstimate {
    double total_seconds = 0.0;
    double allreduce_seconds = 0.0;
    double alltoall_seconds = 0.0;
    double reducescatter_seconds = 0.0;
    double allgather_seconds = 0.0;
    double broadcast_seconds = 0.0;
    uint64_t calls = 0;
};

/**
 * Replay a recorded collective trace on a modeled cluster.
 *
 * @param trace Events recorded by ProcessGroup::SetTrace on one rank.
 * @param model Collective cost model for the target cluster.
 * @param num_gpus Rank count of the TARGET cluster (may differ from the
 *   recording run).
 * @param byte_scale Multiplier applied to every payload (e.g. the
 *   global-batch ratio when projecting a small recording to full scale).
 */
ReplayEstimate ReplayTrace(std::span<const comm::TraceEvent> trace,
                           const CommModel& model, int num_gpus,
                           double byte_scale = 1.0);

/**
 * Sum of the measured wall-clock of the traced collectives (their
 * TraceEvent::duration_ns fields), in seconds — the measured number the
 * ReplayTrace estimate is validated against. Returns 0 for untimed traces
 * recorded before timing was added.
 */
double MeasuredCommSeconds(std::span<const comm::TraceEvent> trace);

}  // namespace neo::sim
