#include "sim/iteration_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace neo::sim {

double
IterationBreakdown::SerializedSum() const
{
    return htod + input_a2a + bot_mlp_fwd + emb_lookup + pooled_a2a_fwd +
           interaction_fwd + top_mlp_fwd + top_mlp_bwd + interaction_bwd +
           grad_a2a_bwd + emb_update + bot_mlp_bwd + allreduce + overhead +
           checkpoint;
}

IterationModel::IterationModel(const WorkloadModel& workload,
                               const TrainingSetup& setup)
    : workload_(workload), setup_(setup),
      gemm_(setup.cluster.node.gpu), mlp_(setup.cluster.node.gpu),
      emb_(setup.cluster.node.gpu), comm_(setup.cluster)
{
    NEO_REQUIRE(setup_.num_gpus >= 1, "need at least one GPU");
    NEO_REQUIRE(setup_.per_gpu_batch >= 1, "need a positive batch");
}

IterationBreakdown
IterationModel::Compose(bool comm_free) const
{
    const double w = setup_.num_gpus;
    const double b_local = static_cast<double>(setup_.per_gpu_batch);
    const double b_global = b_local * w;
    const double tables = workload_.num_tables;
    const double pooling = workload_.avg_pooling;
    const double dim = workload_.dim_avg;

    IterationBreakdown bd;

    // Effective straggler factor: static planner imbalance plus the
    // per-batch variation that cannot average out when each GPU holds
    // only a handful of tables.
    const double tables_per_gpu = std::max(1.0, tables / w);
    const double imbalance =
        setup_.imbalance +
        setup_.granularity_sigma / std::sqrt(tables_per_gpu);

    // ---- embedding ops: each GPU pools the GLOBAL batch for its local
    // tables (weak scaling keeps this roughly constant), scaled by the
    // straggler factor because the whole step waits for the slowest GPU.
    const double rows_per_gpu =
        b_global * tables * pooling / w * imbalance;
    bd.emb_lookup =
        emb_.LookupSeconds(rows_per_gpu, dim, setup_.emb_precision).seconds;
    bd.emb_update =
        emb_.UpdateSeconds(rows_per_gpu, dim, setup_.emb_precision).seconds;

    // Hierarchical-memory spill: rows missing the HBM cache are fetched
    // over PCIe from DDR (Sec. 4.1.3; the F1 capacity study).
    if (setup_.hbm_hit_rate < 1.0) {
        const double miss_bytes =
            rows_per_gpu * dim *
            static_cast<double>(BytesPerElement(setup_.emb_precision)) *
            (1.0 - setup_.hbm_hit_rate);
        bd.emb_lookup += miss_bytes / setup_.cluster.node.pcie_bw;
        // Updates write the row back through the same path.
        bd.emb_update += 2.0 * miss_bytes / setup_.cluster.node.pcie_bw;
    }

    // ---- MLPs: scale the layer-shape roofline so total per-sample FLOPs
    // match Table 3's published MFLOPS/sample.
    std::vector<int64_t> widths(
        static_cast<size_t>(workload_.num_mlp_layers) + 1,
        static_cast<int64_t>(workload_.avg_mlp_size));
    const MlpEstimate layers = mlp_.EstimateLayers(
        static_cast<int64_t>(b_local), widths, setup_.mlp_precision);
    double layer_flops = 0.0;
    for (size_t l = 0; l + 1 < widths.size(); l++) {
        layer_flops += 2.0 * b_local * widths[l] * widths[l + 1];
    }
    const double target_flops = workload_.mflops_per_sample * 1e6 * b_local;
    const double scale = target_flops / layer_flops;
    // Bottom/top split: the bottom MLP is the narrow dense-feature tower,
    // the top MLP consumes the much wider interaction output.
    const double bot_share = 0.3;
    bd.bot_mlp_fwd = layers.forward_seconds * scale * bot_share;
    bd.top_mlp_fwd = layers.forward_seconds * scale * (1.0 - bot_share);
    bd.bot_mlp_bwd = layers.backward_seconds * scale * bot_share;
    bd.top_mlp_bwd = layers.backward_seconds * scale * (1.0 - bot_share);

    // Interaction: memory-bound concat + pairwise dots, small next to the
    // MLPs for the production models.
    bd.interaction_fwd = 0.05 * (bd.bot_mlp_fwd + bd.top_mlp_fwd);
    bd.interaction_bwd = 0.05 * (bd.bot_mlp_bwd + bd.top_mlp_bwd);

    // ---- communication ----
    if (!comm_free && setup_.num_gpus > 1) {
        // Input redistribution: lengths (4B) + indices (8B) for the local
        // batch of every table.
        const double input_bytes =
            b_local * tables * (pooling * 8.0 + 4.0);
        bd.input_a2a =
            comm_.AllToAll(input_bytes, setup_.num_gpus).seconds *
            imbalance;

        // Pooled embeddings: each GPU receives B_local x dim per table.
        const double fwd_elem =
            static_cast<double>(BytesPerElement(setup_.fwd_comm));
        const double bwd_elem =
            static_cast<double>(BytesPerElement(setup_.bwd_comm));
        const double fwd_bytes = b_local * tables * dim * fwd_elem;
        bd.pooled_a2a_fwd =
            comm_.AllToAll(fwd_bytes, setup_.num_gpus).seconds * imbalance;

        const double bwd_bytes = b_local * tables * dim * bwd_elem;
        bd.grad_a2a_bwd =
            comm_.AllToAll(bwd_bytes, setup_.num_gpus).seconds * imbalance;

        // Row-wise shards: the straggler worker exchanges GLOBAL-batch
        // partial pools (forward) and receives global-batch gradients
        // (backward) for every RW dim it owns — the linear-in-trainers
        // term of Sec. 4.2.2. Structured ReduceScatter traffic achieves
        // the full per-NIC rate (no AllToAll incast penalty).
        if (setup_.rw_dim_sum > 0.0) {
            const double nic = setup_.cluster.node.scaleout_achievable;
            const double rw_fwd =
                b_global * setup_.rw_dim_sum * fwd_elem / nic;
            const double rw_bwd =
                b_global * setup_.rw_dim_sum * bwd_elem / nic;
            bd.pooled_a2a_fwd += rw_fwd;
            bd.grad_a2a_bwd += rw_bwd;
        }

        // MLP gradient AllReduce (FP32).
        bd.allreduce =
            comm_.AllReduce(workload_.MlpParams() * 4.0, setup_.num_gpus)
                .seconds;
    }

    // ---- host-to-device input copy (hidden by double buffering) ----
    const double htod_bytes =
        b_local * (tables * (pooling * 8.0 + 4.0) + 1024.0);
    bd.htod = htod_bytes / setup_.cluster.node.pcie_bw;

    // ---- fixed overhead ----
    bd.overhead = setup_.fixed_overhead;

    // ---- checkpointing (Sec. 4.4 / Check-N-Run) ----
    if (setup_.checkpoint_bytes > 0.0) {
        const double sync_write = comm_.fault_model().CheckpointWriteSeconds(
            setup_.checkpoint_bytes);
        if (setup_.async_checkpoint) {
            // Only the foreground capture copy blocks the step; the
            // serialize + store write happens behind the next steps.
            bd.checkpoint =
                setup_.checkpoint_copy_Bps > 0.0
                    ? setup_.checkpoint_bytes / setup_.checkpoint_copy_Bps
                    : 0.0;
            bd.overlap_saved += std::max(0.0, sync_write - bd.checkpoint);
        } else {
            bd.checkpoint = sync_write;
        }
    }

    // ---- Eq. 1 composition ----
    // Inter-batch pipelining (Sec. 4.3): batch i+1's input AllToAll runs
    // behind batch i's dense compute, so only the part that outlasts the
    // MLP + interaction window stays on the critical path.
    double input_exposed = bd.input_a2a;
    if (setup_.overlap_input_comm && bd.input_a2a > 0.0) {
        const double dense_window = bd.bot_mlp_fwd + bd.interaction_fwd +
                                    bd.top_mlp_fwd + bd.top_mlp_bwd +
                                    bd.interaction_bwd + bd.bot_mlp_bwd;
        input_exposed = std::max(0.0, bd.input_a2a - dense_window);
        bd.overlap_saved += bd.input_a2a - input_exposed;
    }
    const double fwd_emb_path =
        input_exposed + bd.emb_lookup + bd.pooled_a2a_fwd;
    bd.t_fwd = std::max(bd.bot_mlp_fwd, fwd_emb_path) +
               bd.interaction_fwd + bd.top_mlp_fwd;
    const double bwd_emb_path =
        std::max(bd.grad_a2a_bwd + bd.emb_update, bd.bot_mlp_bwd);
    bd.t_bwd = std::max(bd.top_mlp_bwd + bd.interaction_bwd + bwd_emb_path,
                        bd.allreduce);
    bd.total = bd.t_fwd + bd.t_bwd + bd.overhead + bd.checkpoint;
    bd.qps = b_global / bd.total;
    return bd;
}

IterationBreakdown
IterationModel::Estimate() const
{
    IterationBreakdown with_comm = Compose(/*comm_free=*/false);
    const IterationBreakdown no_comm = Compose(/*comm_free=*/true);
    with_comm.exposed_comm = with_comm.total - no_comm.total;
    return with_comm;
}

}  // namespace neo::sim
