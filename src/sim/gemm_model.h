/**
 * @file
 * Roofline model for GEMM and MLP execution (Appendix A: Figs. 14-17).
 *
 * Achieved time for C[m,n] = A[m,k] * B[k,n] is the max of the compute
 * roof (2mnk / (peak * efficiency * occupancy)) and the memory roof
 * (bytes moved / achievable HBM bandwidth), plus a kernel overhead. The
 * occupancy term models small-problem underutilization so the achieved
 * TF/s curves rise with size and saturate below peak, matching the
 * paper's GEMM benchmark shapes.
 */
#pragma once

#include <vector>

#include "common/float_types.h"
#include "sim/hardware.h"

namespace neo::sim {

/** GEMM problem description. */
struct GemmShape {
    int64_t m = 0;
    int64_t n = 0;
    int64_t k = 0;
    Precision precision = Precision::kFp32;

    double Flops() const { return 2.0 * m * n * k; }
};

/** Achieved-performance estimate for one GEMM. */
struct GemmEstimate {
    double seconds = 0.0;
    double achieved_tflops = 0.0;
    bool memory_bound = false;
};

/** Roofline GEMM estimator for a GPU. */
class GemmModel
{
  public:
    explicit GemmModel(const GpuSpec& gpu) : gpu_(gpu) {}

    /** Estimate execution time and achieved TF/s of one GEMM. */
    GemmEstimate Estimate(const GemmShape& shape) const;

    const GpuSpec& gpu() const { return gpu_; }

  private:
    GpuSpec gpu_;
};

/** Description of the Appendix-A MLP benchmark network. */
struct MlpBenchShape {
    int64_t batch = 512;
    int64_t width = 1024;    // square layers width x width
    int num_layers = 20;
    Precision precision = Precision::kFp32;
};

/** Estimated time per pass of the MLP benchmark. */
struct MlpEstimate {
    double forward_seconds = 0.0;
    double backward_seconds = 0.0;
    double achieved_tflops = 0.0;  // fwd+bwd combined

    double TotalSeconds() const
    {
        return forward_seconds + backward_seconds;
    }
};

/**
 * MLP benchmark model: `num_layers` square FC layers with ReLU, backward
 * pass with weight/input gradients (2x the forward GEMM work per layer)
 * plus an SGD update.
 */
class MlpModel
{
  public:
    explicit MlpModel(const GpuSpec& gpu) : gemm_(gpu) {}

    MlpEstimate Estimate(const MlpBenchShape& shape) const;

    /**
     * Estimate time for an arbitrary-layer MLP (per the production model
     * configs in Table 3): layer widths given explicitly.
     */
    MlpEstimate EstimateLayers(int64_t batch,
                               const std::vector<int64_t>& widths,
                               Precision precision) const;

  private:
    GemmModel gemm_;
};

}  // namespace neo::sim
