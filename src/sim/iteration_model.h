/**
 * @file
 * End-to-end per-iteration latency model implementing the paper's Eq. 1
 * dependency graph (Fig. 9):
 *
 *   T_fwd = max(BotMLP_fwd, InputA2A + EmbLookup + PooledA2A_fwd)
 *           + Interaction_fwd + TopMLP_fwd
 *   T_bwd = max(TopMLP_bwd + Interaction_bwd
 *                 + max(GradA2A_bwd + EmbUpdate, BotMLP_bwd),
 *               MLP AllReduce)
 *   T     = T_fwd + T_bwd (+ per-iteration overhead; HtoD is hidden by
 *           the input pipeline, Sec. 4.3)
 *
 * The model combines the GEMM/embedding rooflines, the collective
 * alpha-beta models, the load imbalance produced by the actual sharding
 * planner, and the precision options of the Fig. 13 optimization study.
 */
#pragma once

#include "sim/comm_model.h"
#include "sim/embedding_model.h"
#include "sim/gemm_model.h"
#include "sim/workloads.h"

namespace neo::sim {

/** Knobs for one training configuration. */
struct TrainingSetup {
    ClusterSpec cluster = ClusterSpec::Prototype();
    int num_gpus = 128;
    int64_t per_gpu_batch = 512;
    /** Embedding table storage precision (Fig. 13: FP32 -> FP16). */
    Precision emb_precision = Precision::kFp32;
    /** Pooled-embedding forward AllToAll wire precision. */
    Precision fwd_comm = Precision::kFp32;
    /** Gradient backward AllToAll wire precision. */
    Precision bwd_comm = Precision::kFp32;
    /**
     * MLP compute precision: TF32 by default (A100 tensor cores; V100
     * has no TF32 and the model falls back to its FP32 CUDA-core rate).
     */
    Precision mlp_precision = Precision::kTf32;
    /** Embedding load imbalance (max/mean across GPUs), from the planner. */
    double imbalance = 1.0;
    /**
     * Worst per-worker sum of row-wise-sharded embedding dims (from the
     * plan): each contributes a global-batch partial-pool exchange both
     * ways per iteration — the RW cost that grows linearly with trainers
     * (Sec. 4.2.2) and dominates model F1.
     */
    double rw_dim_sum = 0.0;
    /**
     * Fraction of embedding-row reads served from HBM when the model
     * spills to DDR/SSD behind the software cache (Sec. 4.1.3); misses
     * cross PCIe. 1.0 = fully HBM-resident.
     */
    double hbm_hit_rate = 1.0;
    /**
     * Per-batch stochastic load variation: with few tables per GPU there
     * is no averaging across tables, so the per-iteration straggler
     * exceeds the planner's static balance (A1's problem in Sec. 5.3.1).
     * Effective imbalance adds granularity_sigma / sqrt(tables per GPU).
     */
    double granularity_sigma = 0.45;
    /**
     * Fixed per-iteration overhead: CPU op dispatch, input pipeline resid,
     * synchronization (calibrated against the A1/A2 measurements).
     */
    double fixed_overhead = 8e-3;

    /**
     * Overlap batch i+1's input AllToAll with batch i's dense compute
     * (the inter-batch pipelining of Sec. 4.3): the input_a2a term only
     * contributes what the MLP + interaction window cannot hide; the
     * hidden part is reported as overlap_saved.
     */
    bool overlap_input_comm = false;
    /**
     * Per-iteration differential-checkpoint bytes written by this GPU
     * (0 = checkpointing not modeled). Calibrate the write bandwidth via
     * FaultModel::CalibrateCheckpoint.
     */
    double checkpoint_bytes = 0.0;
    /**
     * Async checkpointing: only the capture copy (checkpoint_bytes over
     * checkpoint_copy_Bps) stays on the step path; serialization + store
     * writes run in the background, and the hidden write cost counts
     * toward overlap_saved. False = the full write blocks the step.
     */
    bool async_checkpoint = false;
    /** Foreground capture-copy bandwidth for async checkpoints (B/s);
     *  0 treats the capture as free. */
    double checkpoint_copy_Bps = 0.0;

    int64_t GlobalBatch() const { return per_gpu_batch * num_gpus; }
};

/** Per-operator serialized latencies plus derived totals (Fig. 12). */
struct IterationBreakdown {
    // Serialized (stand-alone) per-op seconds.
    double htod = 0.0;
    double input_a2a = 0.0;
    double bot_mlp_fwd = 0.0;
    double emb_lookup = 0.0;
    double pooled_a2a_fwd = 0.0;
    double interaction_fwd = 0.0;
    double top_mlp_fwd = 0.0;
    double top_mlp_bwd = 0.0;
    double interaction_bwd = 0.0;
    double grad_a2a_bwd = 0.0;
    double emb_update = 0.0;
    double bot_mlp_bwd = 0.0;
    double allreduce = 0.0;
    double overhead = 0.0;
    /** Checkpoint cost left ON the step path (sync: the full write;
     *  async: just the foreground capture copy). */
    double checkpoint = 0.0;

    // Derived.
    double t_fwd = 0.0;
    double t_bwd = 0.0;
    double total = 0.0;
    /** Communication time left on the critical path after overlap. */
    double exposed_comm = 0.0;
    /** Time taken off the critical path by overlap: the hidden part of
     *  the input AllToAll plus the hidden async-checkpoint write. */
    double overlap_saved = 0.0;
    double qps = 0.0;

    /** Sum of all serialized op latencies (the "serialized" bars). */
    double SerializedSum() const;
};

/** Evaluates the Eq. 1 model for a workload on a training setup. */
class IterationModel
{
  public:
    IterationModel(const WorkloadModel& workload,
                   const TrainingSetup& setup);

    /** Full breakdown for the configured setup. */
    IterationBreakdown Estimate() const;

    /**
     * Install a reliability/cost model on the underlying comm model —
     * in particular checkpoint_write_Bps, which prices the sync
     * checkpoint term (and therefore what async checkpointing saves).
     */
    void SetFaultModel(const FaultModel& faults)
    {
        comm_.SetFaultModel(faults);
    }

    const WorkloadModel& workload() const { return workload_; }
    const TrainingSetup& setup() const { return setup_; }

  private:
    /** Compose Eq. 1 from per-op latencies, optionally zeroing comm. */
    IterationBreakdown Compose(bool comm_free) const;

    WorkloadModel workload_;
    TrainingSetup setup_;
    GemmModel gemm_;
    MlpModel mlp_;
    EmbeddingModel emb_;
    CommModel comm_;
};

}  // namespace neo::sim
