#include "sim/gemm_model.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"

namespace neo::sim {

GemmEstimate
GemmModel::Estimate(const GemmShape& shape) const
{
    NEO_REQUIRE(shape.m > 0 && shape.n > 0 && shape.k > 0,
                "GEMM shape must be positive");
    const double peak_flops = gpu_.PeakTflops(shape.precision) * 1e12;
    NEO_REQUIRE(peak_flops > 0, gpu_.name, " does not support ",
                PrecisionName(shape.precision));

    const double flops = shape.Flops();
    const double elem_bytes =
        static_cast<double>(BytesPerElement(shape.precision));
    // A, B read once; C written (and read for beta accumulation).
    const double bytes =
        elem_bytes * (static_cast<double>(shape.m) * shape.k +
                      static_cast<double>(shape.k) * shape.n +
                      2.0 * static_cast<double>(shape.m) * shape.n);

    // Occupancy: small GEMMs cannot fill the SM array. Parameterized by
    // the work per output tile; half-performance point tuned to ~64 waves
    // of 128x128 tiles, which reproduces the knee in Figs. 14-17.
    const double tiles =
        std::ceil(shape.m / 128.0) * std::ceil(shape.n / 128.0);
    const double depth = static_cast<double>(shape.k);
    const double work = tiles * std::min(depth, 4096.0);
    const double half_work = 2048.0;
    const double occupancy = work / (work + half_work);

    const double compute_time =
        flops / (peak_flops * gpu_.gemm_efficiency * occupancy);
    const double memory_time = bytes / gpu_.hbm_achievable;

    GemmEstimate est;
    est.memory_bound = memory_time > compute_time;
    est.seconds =
        std::max(compute_time, memory_time) + gpu_.kernel_overhead;
    est.achieved_tflops = flops / est.seconds / 1e12;
    return est;
}

MlpEstimate
MlpModel::Estimate(const MlpBenchShape& shape) const
{
    std::vector<int64_t> widths(static_cast<size_t>(shape.num_layers) + 1,
                                shape.width);
    return EstimateLayers(shape.batch, widths, shape.precision);
}

MlpEstimate
MlpModel::EstimateLayers(int64_t batch, const std::vector<int64_t>& widths,
                         Precision precision) const
{
    NEO_REQUIRE(widths.size() >= 2, "need at least one layer");
    MlpEstimate est;
    double flops = 0.0;
    for (size_t l = 0; l + 1 < widths.size(); l++) {
        GemmShape fwd{batch, widths[l + 1], widths[l], precision};
        est.forward_seconds += gemm_.Estimate(fwd).seconds;
        // Backward: dX = dY * W (m x k x n) and dW = dY^T * X, each the
        // same FLOP count as the forward GEMM.
        GemmShape bwd_data{batch, widths[l], widths[l + 1], precision};
        GemmShape bwd_weight{widths[l + 1], widths[l], batch, precision};
        est.backward_seconds += gemm_.Estimate(bwd_data).seconds +
                                gemm_.Estimate(bwd_weight).seconds;
        flops += 3.0 * fwd.Flops();
    }
    est.achieved_tflops = flops / est.TotalSeconds() / 1e12;
    return est;
}

}  // namespace neo::sim
