#include "sim/hardware.h"

#include "common/logging.h"

namespace neo::sim {

double
GpuSpec::PeakTflops(Precision p) const
{
    switch (p) {
      case Precision::kFp32: return fp32_tflops;
      case Precision::kTf32: return tf32_tflops > 0 ? tf32_tflops
                                                    : fp32_tflops;
      case Precision::kFp16: return fp16_tflops;
      case Precision::kBf16: return bf16_tflops > 0 ? bf16_tflops
                                                    : fp16_tflops;
    }
    return fp32_tflops;
}

GpuSpec
GpuSpec::V100()
{
    GpuSpec gpu;
    gpu.name = "V100";
    gpu.fp32_tflops = 15.7;
    gpu.tf32_tflops = 0.0;   // no TF32 tensor cores
    gpu.fp16_tflops = 125.0;
    gpu.bf16_tflops = 0.0;   // no BF16 support
    gpu.hbm_peak = 900e9;
    gpu.hbm_achievable = 850e9;   // Sec. 5.1
    gpu.hbm_capacity = 32e9;
    gpu.gemm_efficiency = 0.786;  // Sec. 5.1
    return gpu;
}

GpuSpec
GpuSpec::A100()
{
    GpuSpec gpu;
    gpu.name = "A100";
    gpu.fp32_tflops = 19.5;
    gpu.tf32_tflops = 156.0;
    gpu.fp16_tflops = 312.0;
    gpu.bf16_tflops = 312.0;
    gpu.hbm_peak = 1555e9;
    gpu.hbm_achievable = 1300e9;  // Sec. 5.1
    gpu.hbm_capacity = 40e9;
    gpu.gemm_efficiency = 0.705;  // Sec. 5.1
    return gpu;
}

NodeSpec
NodeSpec::Hgx2Prototype()
{
    NodeSpec node;
    node.gpu = GpuSpec::V100();
    node.gpus_per_node = 8;
    // Table 2: 1.2 TB/s uni-directional scale-up for the node; per-GPU
    // NVLink share.
    node.scaleup_bw = 1.2e12 / node.gpus_per_node;
    // Table 2: 800 Gbps uni-directional scale-out per node = 8x100 Gb.
    node.scaleout_peak = 12.5e9;
    node.scaleout_achievable = 10.5e9;  // Appendix A, Fig. 20 discussion
    node.host_nw = 25e9;                // 2 x 100 Gbps
    node.ddr_capacity = 1.5e12;         // Table 2
    node.ddr_bw = 200e9;                // Table 2
    node.pcie_bw = 13e9;
    return node;
}

NodeSpec
NodeSpec::ZionEx()
{
    NodeSpec node = Hgx2Prototype();
    node.gpu = GpuSpec::A100();
    node.scaleup_bw = 1.2e12 / node.gpus_per_node;
    return node;
}

ClusterSpec
ClusterSpec::Prototype(int num_nodes)
{
    NEO_REQUIRE(num_nodes >= 1, "need at least one node");
    ClusterSpec cluster;
    cluster.node = NodeSpec::Hgx2Prototype();
    cluster.num_nodes = num_nodes;
    return cluster;
}

}  // namespace neo::sim
