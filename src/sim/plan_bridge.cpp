#include "sim/plan_bridge.h"

#include "common/logging.h"

namespace neo::sim {

PlanStudyResult
PlanForWorkload(const WorkloadModel& workload, const ClusterSpec& cluster,
                const PlanStudyOptions& options)
{
    std::vector<sharding::TableConfig> tables =
        workload.SynthesizeTables(options.table_seed);
    NEO_REQUIRE(options.row_shrink > 0.0 && options.row_shrink <= 1.0,
                "row_shrink must be in (0, 1]");
    for (auto& table : tables) {
        table.precision = options.emb_precision;
        if (options.row_shrink < 1.0) {
            table.rows = std::max<int64_t>(
                100, static_cast<int64_t>(table.rows * options.row_shrink));
        }
    }

    sharding::PlannerOptions planner_options;
    planner_options.topo.num_workers = options.num_gpus;
    planner_options.topo.workers_per_node = cluster.node.gpus_per_node;
    planner_options.global_batch = options.global_batch;
    planner_options.hbm_bytes_per_worker =
        cluster.node.gpu.hbm_capacity - options.hbm_reserve +
        options.extra_capacity_per_gpu;
    planner_options.allow_column_wise = options.optimized_sharding;
    planner_options.allow_data_parallel = options.optimized_sharding;
    planner_options.allow_row_wise = true;
    // The non-optimized baseline mirrors the naive legacy default:
    // round-robin table placement, tables split only when they truly
    // cannot fit (Fig. 13's "severe load imbalance" starting point).
    planner_options.placement =
        options.optimized_sharding
            ? options.placement
            : sharding::PlacementAlgorithm::kRoundRobin;
    if (!options.optimized_sharding) {
        planner_options.rw_trigger_fraction = 1.0;
    }
    planner_options.row_wise_adagrad = true;

    sharding::ShardingPlanner planner(planner_options);
    PlanStudyResult result;
    result.plan = planner.Plan(tables);
    result.feasible = result.plan.feasible;
    result.imbalance = result.plan.balance.imbalance;
    std::vector<double> rw_dims(options.num_gpus, 0.0);
    for (const auto& shard : result.plan.shards) {
        result.scheme_counts[shard.scheme]++;
        if ((shard.scheme == sharding::Scheme::kRowWise ||
             shard.scheme == sharding::Scheme::kTableRowWise) &&
            shard.worker >= 0) {
            rw_dims[shard.worker] +=
                static_cast<double>(shard.NumCols());
        }
    }
    for (double d : rw_dims) {
        result.max_rw_dim_sum = std::max(result.max_rw_dim_sum, d);
    }
    return result;
}

}  // namespace neo::sim
