/**
 * @file
 * Alpha-beta models for the cluster collectives (Sec. 5.1, Appendix A,
 * Fig. 20). Calibrated so that at 256 MB on 128 GPUs AllToAll achieves
 * ~7 GB/s per GPU (scale-out bound; 10.5 GB/s achievable link rate with
 * ~2/3 AllToAll efficiency) and AllReduce ~60 GB/s bus bandwidth
 * (hierarchical: NVLink intra-node + aggregated RoCE inter-node).
 */
#pragma once

#include "sim/hardware.h"

namespace neo::sim {

/** One collective's estimated time and reported bandwidths. */
struct CommEstimate {
    double seconds = 0.0;
    /** NCCL-style bus bandwidth (bytes/s). */
    double bus_bandwidth = 0.0;
    /** Payload bytes per GPU / time (algorithm bandwidth). */
    double algo_bandwidth = 0.0;
};

/** Collective latency/bandwidth estimator for a cluster. */
class CommModel
{
  public:
    explicit CommModel(const ClusterSpec& cluster);

    /**
     * AllToAll of `bytes_per_gpu` total payload per GPU across
     * `num_gpus` ranks (each peer gets bytes_per_gpu / num_gpus).
     */
    CommEstimate AllToAll(double bytes_per_gpu, int num_gpus) const;

    /** Ring/hierarchical AllReduce of a `bytes` buffer on every GPU. */
    CommEstimate AllReduce(double bytes, int num_gpus) const;

    /** ReduceScatter of `bytes` input per GPU (one stage of AllReduce). */
    CommEstimate ReduceScatter(double bytes, int num_gpus) const;

    /** AllGather producing `bytes` output per GPU. */
    CommEstimate AllGather(double bytes, int num_gpus) const;

    const ClusterSpec& cluster() const { return cluster_; }

  private:
    /** Latency term: base + per-peer message costs. */
    double Alpha(int num_gpus) const;

    ClusterSpec cluster_;
    /** Fraction of link rate AllToAll traffic achieves under incast. */
    double alltoall_efficiency_ = 0.67;
    /** Base collective launch latency (seconds). */
    double base_latency_ = 20e-6;
    /** Per-peer message overhead (seconds). */
    double per_message_overhead_ = 1.2e-6;
};

}  // namespace neo::sim
