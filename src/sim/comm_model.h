/**
 * @file
 * Alpha-beta models for the cluster collectives (Sec. 5.1, Appendix A,
 * Fig. 20). Calibrated so that at 256 MB on 128 GPUs AllToAll achieves
 * ~7 GB/s per GPU (scale-out bound; 10.5 GB/s achievable link rate with
 * ~2/3 AllToAll efficiency) and AllReduce ~60 GB/s bus bandwidth
 * (hierarchical: NVLink intra-node + aggregated RoCE inter-node).
 */
#pragma once

#include "sim/hardware.h"

namespace neo::sim {

/** One collective's estimated time and reported bandwidths. */
struct CommEstimate {
    double seconds = 0.0;
    /** NCCL-style bus bandwidth (bytes/s). */
    double bus_bandwidth = 0.0;
    /** Payload bytes per GPU / time (algorithm bandwidth). */
    double algo_bandwidth = 0.0;
};

/**
 * Reliability model for a cluster's collectives. BSP collectives finish at
 * the slowest rank, so a straggler's delay is paid in full on every call;
 * a failed collective costs its detection deadline plus abort-propagation
 * and recovery overhead, then is retried (geometric expectation). Mirrors
 * the runtime behaviour of neo::comm's poisoned-barrier protocol, so a
 * fault-injected functional run and a modeled run degrade the same way.
 */
struct FaultModel {
    /** Extra latency the slowest rank adds to every collective (s). */
    double straggler_delay_s = 0.0;
    /** Probability one collective aborts and must be retried. */
    double failure_rate_per_collective = 0.0;
    /** Barrier deadline paid before an abort is detected (s). */
    double detect_timeout_s = 0.010;
    /** Abort propagation + recovery rendezvous overhead per failure (s). */
    double recovery_overhead_s = 0.050;

    // ---- elastic recovery cost terms (calibrated by bench/micro_fault
    // against the real DistributedCheckpointer; 0 = term unmodeled) ----

    /** Checkpoint serialization throughput, bytes/s. */
    double checkpoint_write_Bps = 0.0;
    /** Baseline+delta restore/assembly throughput, bytes/s. */
    double checkpoint_restore_Bps = 0.0;
    /** Reshard data-movement throughput when survivors repartition, B/s. */
    double reshard_Bps = 0.0;

    /** Modeled wall time to write a `bytes` checkpoint (0 if unmodeled). */
    double CheckpointWriteSeconds(double bytes) const;

    /** Modeled wall time to restore `bytes` of baseline+deltas. */
    double CheckpointRestoreSeconds(double bytes) const;

    /**
     * Modeled end-to-end shrink recovery: detect the dead rank, pay the
     * recovery rendezvous, restore `restore_bytes` of checkpoint state,
     * and move `reshard_bytes` while repartitioning onto the survivors.
     */
    double ShrinkRecoverySeconds(double restore_bytes,
                                 double reshard_bytes) const;

    /**
     * Fit the bandwidth terms from paired measurements (bytes, seconds)
     * of a real checkpoint write and restore, as produced by
     * bench/micro_fault. Non-positive measurements leave a term at 0.
     */
    void CalibrateCheckpoint(double write_bytes, double write_seconds,
                             double restore_bytes, double restore_seconds);
};

/** Collective latency/bandwidth estimator for a cluster. */
class CommModel
{
  public:
    explicit CommModel(const ClusterSpec& cluster);

    /**
     * AllToAll of `bytes_per_gpu` total payload per GPU across
     * `num_gpus` ranks (each peer gets bytes_per_gpu / num_gpus).
     */
    CommEstimate AllToAll(double bytes_per_gpu, int num_gpus) const;

    /** Ring/hierarchical AllReduce of a `bytes` buffer on every GPU. */
    CommEstimate AllReduce(double bytes, int num_gpus) const;

    /** ReduceScatter of `bytes` input per GPU (one stage of AllReduce). */
    CommEstimate ReduceScatter(double bytes, int num_gpus) const;

    /** AllGather producing `bytes` output per GPU. */
    CommEstimate AllGather(double bytes, int num_gpus) const;

    /** Install a reliability model applied to every estimate. */
    void SetFaultModel(const FaultModel& faults) { faults_ = faults; }

    const FaultModel& fault_model() const { return faults_; }

    const ClusterSpec& cluster() const { return cluster_; }

  private:
    /** Latency term: base + per-peer message costs. */
    double Alpha(int num_gpus) const;

    /**
     * Expected wall time of one collective whose fault-free time is
     * `seconds`, under the installed fault model: straggler delay on
     * every call, plus expected aborted attempts (each costing the
     * failed fraction, detection deadline and recovery) before the one
     * that completes.
     */
    double WithFaults(double seconds) const;

    /** Fault-free AllReduce time (latency + ring phases). */
    double AllReduceRawSeconds(double bytes, int num_gpus) const;

    /** Package a time with its algorithm/bus byte counts. */
    static CommEstimate Finalize(double seconds, double algo_bytes,
                                 double bus_bytes);

    ClusterSpec cluster_;
    FaultModel faults_;
    /** Fraction of link rate AllToAll traffic achieves under incast. */
    double alltoall_efficiency_ = 0.67;
    /** Base collective launch latency (seconds). */
    double base_latency_ = 20e-6;
    /** Per-peer message overhead (seconds). */
    double per_message_overhead_ = 1.2e-6;
};

}  // namespace neo::sim
