#include "sim/embedding_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace neo::sim {

double
EmbeddingModel::Efficiency(double row_bytes, double concurrent_rows) const
{
    // Transaction efficiency: a gathered row of R bytes wastes part of the
    // 128B memory transactions at its edges.
    const double tx = 128.0;
    const double tx_eff = row_bytes / (std::ceil(row_bytes / tx) * tx);
    // Occupancy: enough concurrent row-gathers are needed to saturate HBM.
    const double half_rows = 16384.0;
    const double occupancy =
        concurrent_rows / (concurrent_rows + half_rows);
    return tx_eff * occupancy;
}

EmbEstimate
EmbeddingModel::Forward(const EmbBenchShape& shape) const
{
    const double elem = BytesPerElement(shape.precision);
    const double row_bytes = shape.dim * elem;
    const double gathered_rows = static_cast<double>(shape.batch) *
                                 shape.num_tables * shape.pooling;
    // Rows gathered + pooled FP32 output written.
    const double bytes =
        gathered_rows * row_bytes +
        static_cast<double>(shape.batch) * shape.num_tables * shape.dim *
            4.0;

    EmbEstimate est;
    est.bytes_moved = bytes;
    const double eff = Efficiency(row_bytes, gathered_rows);
    est.seconds = bytes / (gpu_.hbm_achievable * eff) + gpu_.kernel_overhead;
    est.achieved_bandwidth = bytes / est.seconds;
    return est;
}

EmbEstimate
EmbeddingModel::BackwardFused(const EmbBenchShape& shape) const
{
    const double elem = BytesPerElement(shape.precision);
    const double row_bytes = shape.dim * elem;
    const double gathered_rows = static_cast<double>(shape.batch) *
                                 shape.num_tables * shape.pooling;
    // Fused backward+optimizer: read the pooled gradient, then for each
    // unique row read-modify-write the row and touch optimizer state. The
    // fusion avoids materializing per-occurrence gradients (factor L).
    const double grad_bytes = static_cast<double>(shape.batch) *
                              shape.num_tables * shape.dim * 4.0;
    const double rmw_bytes = gathered_rows * (2.0 * row_bytes + 4.0);

    EmbEstimate est;
    est.bytes_moved = grad_bytes + rmw_bytes;
    const double eff = Efficiency(row_bytes, gathered_rows);
    est.seconds = est.bytes_moved / (gpu_.hbm_achievable * eff) +
                  gpu_.kernel_overhead;
    est.achieved_bandwidth = est.bytes_moved / est.seconds;
    return est;
}

EmbEstimate
EmbeddingModel::LookupSeconds(double total_rows, double avg_dim,
                              Precision precision) const
{
    const double elem = BytesPerElement(precision);
    const double row_bytes = avg_dim * elem;
    const double bytes = total_rows * row_bytes * 1.0 +
                         total_rows / 16.0 * avg_dim * 4.0;

    EmbEstimate est;
    est.bytes_moved = bytes;
    const double eff = Efficiency(row_bytes, total_rows);
    est.seconds = bytes / (gpu_.hbm_achievable * eff) + gpu_.kernel_overhead;
    est.achieved_bandwidth = bytes / est.seconds;
    return est;
}

EmbEstimate
EmbeddingModel::UpdateSeconds(double total_rows, double avg_dim,
                              Precision precision) const
{
    const double elem = BytesPerElement(precision);
    const double row_bytes = avg_dim * elem;
    const double bytes = total_rows * (2.0 * row_bytes + 4.0) +
                         total_rows / 16.0 * avg_dim * 4.0;

    EmbEstimate est;
    est.bytes_moved = bytes;
    const double eff = Efficiency(row_bytes, total_rows);
    est.seconds = bytes / (gpu_.hbm_achievable * eff) + gpu_.kernel_overhead;
    est.achieved_bandwidth = bytes / est.seconds;
    return est;
}

}  // namespace neo::sim
