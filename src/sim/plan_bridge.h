/**
 * @file
 * Bridge between the sharding planner and the performance model: for a
 * Table-3 workload, synthesize a concrete table list, run the actual
 * ShardingPlanner against the cluster's HBM budget, and extract the load
 * imbalance the IterationModel uses. This is how the Fig. 13 "optimized
 * sharding" and "FP16 embeddings give the sharder headroom" effects are
 * produced by real planner runs rather than hard-coded factors.
 */
#pragma once

#include <map>

#include "sharding/planner.h"
#include "sim/hardware.h"
#include "sim/workloads.h"

namespace neo::sim {

/** Planner configuration used for a workload study. */
struct PlanStudyOptions {
    int num_gpus = 128;
    int64_t global_batch = 65536;
    Precision emb_precision = Precision::kFp32;
    /** Allow CW/DP (the "optimized sharding" step of Fig. 13). */
    bool optimized_sharding = true;
    sharding::PlacementAlgorithm placement =
        sharding::PlacementAlgorithm::kLdm;
    /** HBM reserved per GPU for framework/NCCL/activations (bytes). */
    double hbm_reserve = 4e9;
    /**
     * Additional per-GPU capacity beyond HBM (DDR share behind the
     * software cache / UVM) for models that spill the HBM tier, like F1.
     */
    double extra_capacity_per_gpu = 0.0;
    /**
     * Row-count shrink factor in (0, 1]: the Sec. 5.3.1 scaling study
     * shrinks table cardinality (re-hashing inputs) so the model fits on
     * small node counts "with minimal/no impact on the performance
     * characteristics".
     */
    double row_shrink = 1.0;
    uint64_t table_seed = 7;
};

/** Planner outcome summarized for the performance model. */
struct PlanStudyResult {
    sharding::ShardingPlan plan;
    /** max/mean embedding cost across GPUs (>= 1). */
    double imbalance = 1.0;
    /** Shards per scheme, for reporting. */
    std::map<sharding::Scheme, int> scheme_counts;
    /** Whether the plan fit in HBM. */
    bool feasible = true;
    /**
     * Worst per-worker sum of embedding dims over row-wise shards. Each
     * such dim costs a global-batch-sized partial-pool exchange per
     * iteration (the RW communication that scales with trainer count,
     * Sec. 4.2.2); the straggler worker sets the pace.
     */
    double max_rw_dim_sum = 0.0;
};

/** Run the planner for a workload on a cluster. */
PlanStudyResult PlanForWorkload(const WorkloadModel& workload,
                                const ClusterSpec& cluster,
                                const PlanStudyOptions& options);

}  // namespace neo::sim
