/**
 * @file
 * Memory-capacity model for the F1 12T-parameter study (Sec. 5.3.3) and
 * the throughput model of the previous-generation CPU parameter-server
 * system (for the 3x / 40x comparisons of Sec. 5.3).
 */
#pragma once

#include "common/float_types.h"
#include "sim/hardware.h"
#include "sim/workloads.h"

namespace neo::sim {

/** Footprint of a model under given precision/optimizer choices. */
struct CapacityEstimate {
    /** Naive footprint: FP32 params + elementwise FP32 optimizer state. */
    double naive_bytes = 0.0;
    /** Footprint with the chosen precision + row-wise AdaGrad. */
    double optimized_bytes = 0.0;
    bool fits_hbm = false;
    bool fits_hbm_ddr = false;
    bool fits_hbm_ddr_ssd = false;
};

/**
 * Compute model footprints and hierarchy fit.
 *
 * @param workload The model (F1: 12e12 params).
 * @param cluster Cluster whose HBM/DDR/SSD capacities gate the fit.
 * @param emb_precision Embedding storage precision for the optimized path.
 * @param rowwise_adagrad Use 1-float-per-row optimizer state.
 * @param avg_dim Average embedding dimension (for the row-state math).
 */
CapacityEstimate EstimateCapacity(const WorkloadModel& workload,
                                  const ClusterSpec& cluster,
                                  Precision emb_precision,
                                  bool rowwise_adagrad, double avg_dim);

/**
 * Throughput model of the disaggregated asynchronous CPU PS system
 * (Sec. 2): per-trainer throughput is compute/memory-roofline bound, and
 * aggregate scaling saturates because staleness forces the effective
 * parallelism down (adding trainers beyond a point no longer converts
 * into quality-neutral throughput).
 */
class PsBaselineModel
{
  public:
    explicit PsBaselineModel(const WorkloadModel& workload);

    /** Aggregate QPS with `num_trainers` trainer machines. */
    double QpsAtTrainers(int num_trainers) const;

    /**
     * The largest throughput reachable without measurable quality loss
     * from staleness — the number the 40x time-to-solution comparison is
     * made against.
     */
    double MaxQualityNeutralQps() const;

    /** Per-trainer QPS (roofline over a dual-socket CPU server). */
    double PerTrainerQps() const;

    /**
     * Extra samples asynchronous training needs to reach the same NE as
     * synchronous training (staleness slows statistical progress). Used
     * by the time-to-solution comparison: the paper's 40x combines the
     * throughput gap with this statistical-efficiency gap.
     */
    double SampleInflationFactor() const { return 3.5; }

    /** Time-to-solution speedup of a GPU system running at `gpu_qps`. */
    double
    TimeToSolutionSpeedup(double gpu_qps) const
    {
        return gpu_qps / MaxQualityNeutralQps() * SampleInflationFactor();
    }

  private:
    WorkloadModel workload_;
    /** Effective per-trainer compute (FLOP/s) for sparse CTR models. */
    double cpu_effective_flops_ = 2.3e12;
    /** Effective per-trainer memory bandwidth (bytes/s). */
    double cpu_effective_bw_ = 60e9;
    /** Trainer count beyond which staleness degrades model quality. */
    int quality_neutral_trainers_ = 20;
};

}  // namespace neo::sim
