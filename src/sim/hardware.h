/**
 * @file
 * Hardware descriptions for the performance model: GPU, node and cluster
 * specs with the paper's calibration points baked in (Sec. 5.1/5.2,
 * Table 2, Appendix A):
 *
 *  - V100: 850 GB/s achievable HBM, <=78.6% GEMM efficiency;
 *  - A100: 1300 GB/s achievable HBM, <=70.5% GEMM efficiency;
 *  - prototype node: 8 GPUs, 1.2 TB/s uni scale-up, 8x100 Gb RoCE
 *    scale-out (12.5 GB/s peak, 10.5 GB/s achievable per GPU),
 *    1.5 TB DDR @ 200 GB/s, 2x100 Gb host NICs;
 *  - collectives @256 MB on 128 GPUs: AllToAll 7 GB/s, AllReduce 60 GB/s.
 */
#pragma once

#include <string>

#include "common/float_types.h"

namespace neo::sim {

/** One GPU's compute/memory capabilities. */
struct GpuSpec {
    std::string name;
    double fp32_tflops = 0.0;
    double tf32_tflops = 0.0;  // 0 if unsupported
    double fp16_tflops = 0.0;
    double bf16_tflops = 0.0;  // 0 if unsupported
    /** Peak HBM bandwidth (bytes/s). */
    double hbm_peak = 0.0;
    /** Achievable HBM bandwidth from the paper's benchmarks (bytes/s). */
    double hbm_achievable = 0.0;
    /** HBM capacity (bytes). */
    double hbm_capacity = 0.0;
    /** Max achieved GEMM efficiency vs peak. */
    double gemm_efficiency = 0.75;
    /** Kernel launch + scheduling overhead per op (seconds). */
    double kernel_overhead = 4e-6;

    /** Peak tensor/CUDA-core TFLOPs for a compute precision. */
    double PeakTflops(Precision p) const;

    static GpuSpec V100();
    static GpuSpec A100();
};

/** One server node. */
struct NodeSpec {
    GpuSpec gpu;
    int gpus_per_node = 8;
    /** Uni-directional NVLink/NVSwitch bandwidth per GPU (bytes/s). */
    double scaleup_bw = 150e9;
    /** Per-GPU RoCE NIC peak (bytes/s). */
    double scaleout_peak = 12.5e9;
    /** Per-GPU RoCE achievable (bytes/s). */
    double scaleout_achievable = 10.5e9;
    /** Host (frontend) network bandwidth per node (bytes/s). */
    double host_nw = 25e9;
    /** DDR capacity per node (bytes). */
    double ddr_capacity = 1.5e12;
    /** DDR bandwidth per node (bytes/s). */
    double ddr_bw = 200e9;
    /** Effective PCIe bandwidth GPU<->host (bytes/s). */
    double pcie_bw = 13e9;
    /** SSD capacity (bytes) and bandwidth (bytes/s) for the third tier. */
    double ssd_capacity = 8e12;
    double ssd_bw = 2e9;

    /** HGX-2 prototype node of Sec. 5.2 / Table 2 (V100s). */
    static NodeSpec Hgx2Prototype();
    /** ZionEX node with A100s (Sec. 3.1, benchmarks in Appendix A). */
    static NodeSpec ZionEx();
};

/** A training cluster. */
struct ClusterSpec {
    NodeSpec node;
    int num_nodes = 16;

    int NumGpus() const { return num_nodes * node.gpus_per_node; }
    double TotalHbm() const { return NumGpus() * node.gpu.hbm_capacity; }
    double TotalDdr() const { return num_nodes * node.ddr_capacity; }
    double TotalSsd() const { return num_nodes * node.ssd_capacity; }

    /** The paper's 16-node prototype cluster (Sec. 5.2). */
    static ClusterSpec Prototype(int num_nodes = 16);
};

}  // namespace neo::sim
