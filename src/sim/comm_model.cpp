#include "sim/comm_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace neo::sim {

double
FaultModel::CheckpointWriteSeconds(double bytes) const
{
    return checkpoint_write_Bps > 0.0 ? bytes / checkpoint_write_Bps : 0.0;
}

double
FaultModel::CheckpointRestoreSeconds(double bytes) const
{
    return checkpoint_restore_Bps > 0.0 ? bytes / checkpoint_restore_Bps
                                        : 0.0;
}

double
FaultModel::ShrinkRecoverySeconds(double restore_bytes,
                                  double reshard_bytes) const
{
    double seconds = detect_timeout_s + recovery_overhead_s +
                     CheckpointRestoreSeconds(restore_bytes);
    if (reshard_Bps > 0.0) {
        seconds += reshard_bytes / reshard_Bps;
    }
    return seconds;
}

void
FaultModel::CalibrateCheckpoint(double write_bytes, double write_seconds,
                                double restore_bytes,
                                double restore_seconds)
{
    if (write_bytes > 0.0 && write_seconds > 0.0) {
        checkpoint_write_Bps = write_bytes / write_seconds;
    }
    if (restore_bytes > 0.0 && restore_seconds > 0.0) {
        checkpoint_restore_Bps = restore_bytes / restore_seconds;
        // Resharding moves restored bytes onto the survivors through the
        // same assembly path, so the restore throughput is the natural
        // first-order estimate until measured separately.
        if (reshard_Bps <= 0.0) {
            reshard_Bps = checkpoint_restore_Bps;
        }
    }
}

CommModel::CommModel(const ClusterSpec& cluster) : cluster_(cluster) {}

double
CommModel::Alpha(int num_gpus) const
{
    return base_latency_ + per_message_overhead_ * num_gpus;
}

double
CommModel::WithFaults(double seconds) const
{
    double s = seconds + faults_.straggler_delay_s;
    const double p =
        std::clamp(faults_.failure_rate_per_collective, 0.0, 0.999);
    if (p > 0.0) {
        // Geometric number of aborted attempts before the one that
        // completes; each aborted attempt burns the collective time plus
        // the detection deadline and the recovery rendezvous.
        const double expected_aborts = p / (1.0 - p);
        s += expected_aborts *
             (s + faults_.detect_timeout_s + faults_.recovery_overhead_s);
    }
    return s;
}

CommEstimate
CommModel::Finalize(double seconds, double algo_bytes, double bus_bytes)
{
    CommEstimate est;
    est.seconds = seconds;
    est.algo_bandwidth = algo_bytes / seconds;
    est.bus_bandwidth = bus_bytes / seconds;
    return est;
}

CommEstimate
CommModel::AllToAll(double bytes_per_gpu, int num_gpus) const
{
    NEO_REQUIRE(num_gpus >= 1, "need at least one GPU");
    CommEstimate est;
    if (num_gpus == 1 || bytes_per_gpu <= 0) {
        est.seconds = bytes_per_gpu > 0 ? base_latency_ : 0.0;
        return est;
    }
    const NodeSpec& node = cluster_.node;
    const double w = num_gpus;
    // Egress that must leave each GPU; the intra-node part rides NVLink,
    // the rest is bound by the per-GPU RoCE NIC with AllToAll incast
    // inefficiency (many small flows, Sec. 5.1 / Fig. 20).
    const double egress = bytes_per_gpu * (w - 1.0) / w;
    double inter_fraction = 1.0;
    if (num_gpus > node.gpus_per_node) {
        inter_fraction =
            (w - node.gpus_per_node) / (w - 1.0);
    } else {
        inter_fraction = 0.0;
    }
    const double inter_bytes = egress * inter_fraction;
    const double intra_bytes = egress - inter_bytes;
    const double inter_time =
        inter_bytes / (node.scaleout_achievable * alltoall_efficiency_);
    const double intra_time = intra_bytes / node.scaleup_bw;
    // Intra- and inter-node transfers overlap; the slower path dominates,
    // plus the latency term.
    const double raw = Alpha(num_gpus) + std::max(inter_time, intra_time);
    return Finalize(WithFaults(raw), bytes_per_gpu, egress);
}

double
CommModel::AllReduceRawSeconds(double bytes, int num_gpus) const
{
    const NodeSpec& node = cluster_.node;
    const int g = std::min(num_gpus, node.gpus_per_node);
    const int nodes = (num_gpus + node.gpus_per_node - 1) /
                      node.gpus_per_node;

    // Hierarchical ring: intra-node reduce-scatter + all-gather on NVLink,
    // inter-node ring across nodes using all NICs of a node in parallel.
    const double intra =
        g > 1 ? 2.0 * bytes * (g - 1.0) / g / node.scaleup_bw : 0.0;
    double inter = 0.0;
    if (nodes > 1) {
        const double node_bw = node.scaleout_achievable * g;
        inter = 2.0 * (bytes / g) * (nodes - 1.0) / nodes /
                (node_bw / g);
    }
    return Alpha(num_gpus) + intra + inter;
}

CommEstimate
CommModel::AllReduce(double bytes, int num_gpus) const
{
    NEO_REQUIRE(num_gpus >= 1, "need at least one GPU");
    CommEstimate est;
    if (num_gpus == 1 || bytes <= 0) {
        est.seconds = bytes > 0 ? base_latency_ : 0.0;
        return est;
    }
    const double w = num_gpus;
    const double raw = AllReduceRawSeconds(bytes, num_gpus);
    return Finalize(WithFaults(raw), bytes, 2.0 * bytes * (w - 1.0) / w);
}

CommEstimate
CommModel::ReduceScatter(double bytes, int num_gpus) const
{
    NEO_REQUIRE(num_gpus >= 1, "need at least one GPU");
    CommEstimate est;
    if (num_gpus == 1 || bytes <= 0) {
        est.seconds = bytes > 0 ? base_latency_ : 0.0;
        return est;
    }
    // One of the two ring phases of the fault-free AllReduce.
    const double ar_raw = AllReduceRawSeconds(bytes, num_gpus);
    const double raw =
        Alpha(num_gpus) + (ar_raw - Alpha(num_gpus)) / 2.0;
    const double w = num_gpus;
    return Finalize(WithFaults(raw), bytes, bytes * (w - 1.0) / w);
}

CommEstimate
CommModel::AllGather(double bytes, int num_gpus) const
{
    return ReduceScatter(bytes, num_gpus);
}

}  // namespace neo::sim
