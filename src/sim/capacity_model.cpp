#include "sim/capacity_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace neo::sim {

CapacityEstimate
EstimateCapacity(const WorkloadModel& workload, const ClusterSpec& cluster,
                 Precision emb_precision, bool rowwise_adagrad,
                 double avg_dim)
{
    NEO_REQUIRE(avg_dim > 0, "avg_dim must be positive");
    CapacityEstimate est;
    const double params = workload.num_params;

    // Naive: FP32 parameters plus elementwise FP32 optimizer state —
    // the paper's 12e12 * 4 * 2 = 96 TB for F1.
    est.naive_bytes = params * 4.0 * 2.0;

    // Optimized: chosen storage precision; row-wise AdaGrad keeps one
    // FP32 moment per row (params / avg_dim rows).
    const double param_bytes =
        params * static_cast<double>(BytesPerElement(emb_precision));
    const double state_bytes = rowwise_adagrad
                                   ? params / avg_dim * 4.0
                                   : params * 4.0;
    est.optimized_bytes = param_bytes + state_bytes;

    est.fits_hbm = est.optimized_bytes <= cluster.TotalHbm();
    est.fits_hbm_ddr =
        est.optimized_bytes <= cluster.TotalHbm() + cluster.TotalDdr();
    est.fits_hbm_ddr_ssd = est.optimized_bytes <=
                           cluster.TotalHbm() + cluster.TotalDdr() +
                               cluster.TotalSsd();
    return est;
}

PsBaselineModel::PsBaselineModel(const WorkloadModel& workload)
    : workload_(workload)
{
}

double
PsBaselineModel::PerTrainerQps() const
{
    // Compute roof: fwd+bwd ~ 3x forward FLOPs per sample.
    const double flops_per_sample = 3.0 * workload_.mflops_per_sample * 1e6;
    const double compute_qps = cpu_effective_flops_ / flops_per_sample;
    // Memory roof: embedding rows fetched from PS + local MLP traffic.
    const double bytes_per_sample = workload_.num_tables *
                                    workload_.avg_pooling *
                                    workload_.dim_avg * 4.0 * 2.0;
    const double memory_qps = cpu_effective_bw_ / bytes_per_sample;
    return std::min(compute_qps, memory_qps);
}

double
PsBaselineModel::QpsAtTrainers(int num_trainers) const
{
    NEO_REQUIRE(num_trainers >= 1, "need at least one trainer");
    // Diminishing returns: PS fan-in and Hogwild conflicts erode scaling
    // (~90% efficiency per doubling).
    const double eff =
        std::pow(0.9, std::log2(static_cast<double>(num_trainers)));
    return PerTrainerQps() * num_trainers * eff;
}

double
PsBaselineModel::MaxQualityNeutralQps() const
{
    return QpsAtTrainers(quality_neutral_trainers_);
}

}  // namespace neo::sim
