#include "sim/trace_replay.h"

#include "common/logging.h"

namespace neo::sim {

ReplayEstimate
ReplayTrace(std::span<const comm::TraceEvent> trace, const CommModel& model,
            int num_gpus, double byte_scale)
{
    NEO_REQUIRE(byte_scale > 0.0, "byte_scale must be positive");
    ReplayEstimate est;
    for (const auto& event : trace) {
        const double bytes = static_cast<double>(event.bytes) * byte_scale;
        double seconds = 0.0;
        switch (event.op) {
          case comm::CollectiveOp::kAllReduce:
            seconds = model.AllReduce(bytes, num_gpus).seconds;
            est.allreduce_seconds += seconds;
            break;
          case comm::CollectiveOp::kAllToAll:
            seconds = model.AllToAll(bytes, num_gpus).seconds;
            est.alltoall_seconds += seconds;
            break;
          case comm::CollectiveOp::kReduceScatter:
            seconds = model.ReduceScatter(bytes, num_gpus).seconds;
            est.reducescatter_seconds += seconds;
            break;
          case comm::CollectiveOp::kAllGather:
            seconds = model.AllGather(bytes, num_gpus).seconds;
            est.allgather_seconds += seconds;
            break;
          case comm::CollectiveOp::kBroadcast:
            // Broadcast rides the same tree as AllGather's one phase.
            seconds = model.AllGather(bytes, num_gpus).seconds;
            est.broadcast_seconds += seconds;
            break;
          case comm::CollectiveOp::kBarrier:
            break;
        }
        est.total_seconds += seconds;
        est.calls++;
    }
    return est;
}

double
MeasuredCommSeconds(std::span<const comm::TraceEvent> trace)
{
    double seconds = 0.0;
    for (const auto& event : trace) {
        seconds += static_cast<double>(event.duration_ns) * 1e-9;
    }
    return seconds;
}

}  // namespace neo::sim
