#include "core/async_checkpoint.h"

#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace neo::core {

AsyncCheckpointer::AsyncCheckpointer(DistributedCheckpointer& ckpt, int rank,
                                     const Options& options)
    : ckpt_(ckpt), options_(options)
{
    NEO_REQUIRE(options_.max_in_flight >= 1,
                "max_in_flight must be at least 1");
    lane_ = std::make_unique<ThreadPool>(1);
    // Tag the flusher thread so its checkpoint_flush spans aggregate into
    // this rank's StepBreakdown (as off-critical-path time).
    lane_->Submit([rank] { obs::Tracer::SetThreadRank(rank); }).get();
}

AsyncCheckpointer::AsyncCheckpointer(DistributedCheckpointer& ckpt, int rank)
    : AsyncCheckpointer(ckpt, rank, Options{})
{
}

AsyncCheckpointer::~AsyncCheckpointer()
{
    try {
        Flush();
    } catch (const std::exception& e) {
        Warn("async checkpoint flush failed in destructor: ", e.what());
    }
    // Join the lane before mutex_/cv_ are destroyed (they are declared
    // after lane_, so they would otherwise die first while the last flush
    // task may still be inside its notify).
    lane_.reset();
}

void
AsyncCheckpointer::WriteBaseline()
{
    Flush();
    ckpt_.WriteBaseline();
}

void
AsyncCheckpointer::WriteDelta()
{
    uint64_t generation = 0;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] {
            return in_flight_ < options_.max_in_flight ||
                   error_ != nullptr;
        });
        if (error_ != nullptr) {
            std::exception_ptr error = std::exchange(error_, nullptr);
            std::rethrow_exception(error);
        }
        generation = next_generation_++;
        in_flight_++;
    }

    // The capture is the only part that must see the model frozen at this
    // step; it is also collective, so it stays on the calling thread.
    // On failure (epoch divergence, rank fault) the slot is released and
    // the generation is retired as never-written: no later generation can
    // have been captured yet (we hold the caller's thread), so renumbering
    // is safe and the chain stays hole-free.
    DistributedCheckpointer::DeltaCapture capture;
    try {
        capture = ckpt_.CaptureDelta();
    } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        in_flight_--;
        next_generation_--;
        cv_.notify_all();
        throw;
    }

    auto shared =
        std::make_shared<DistributedCheckpointer::DeltaCapture>(
            std::move(capture));
    lane_->Submit([this, generation, shared] {
        NEO_TRACE_SPAN("checkpoint_flush", "recovery");
        std::exception_ptr failure;
        try {
            bool chain_intact;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                chain_intact = flushed_generation_ == generation - 1;
            }
            // A failed predecessor permanently tears the chain here: this
            // delta's epoch would not be consecutive with the last stored
            // one, so appending it would make the whole chain unreadable.
            NEO_REQUIRE(chain_intact,
                        "dropping delta generation ", generation,
                        ": an earlier delta failed to flush");
            ckpt_.store().AppendDelta(
                shared->rank,
                DistributedCheckpointer::SerializeDelta(*shared));
            obs::MetricsRegistry::Get()
                .GetCounter("neo.core.async_delta_flushes")
                .Add();
        } catch (...) {
            failure = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (failure != nullptr) {
                if (error_ == nullptr) {
                    error_ = failure;
                }
            } else {
                flushed_generation_ = generation;
            }
            in_flight_--;
            // Notify under the lock: a waiter (possibly the destructor's
            // Flush) must not observe in_flight_ == 0 and tear down cv_
            // while this thread is still inside the notify.
            cv_.notify_all();
        }
    });
}

void
AsyncCheckpointer::Flush()
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return in_flight_ == 0; });
    if (error_ != nullptr) {
        std::exception_ptr error = std::exchange(error_, nullptr);
        std::rethrow_exception(error);
    }
}

size_t
AsyncCheckpointer::in_flight() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return in_flight_;
}

uint64_t
AsyncCheckpointer::flushed_generation() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return flushed_generation_;
}

}  // namespace neo::core
