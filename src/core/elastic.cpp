#include "core/elastic.h"

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace neo::core {

ElasticRecovery
RecoverShrunk(comm::ThreadedWorld& world, int rank, const DlrmConfig& config,
              const sharding::PlannerOptions& planner_options,
              const CheckpointStore& store,
              const DistributedOptions& options,
              std::chrono::milliseconds timeout)
{
    NEO_TRACE_SPAN("elastic_recovery", "recovery");
    ElasticRecovery result;

    const auto shrink = world.ShrinkAfterFailure(rank, timeout);
    if (!shrink.ok) {
        result.note = "survivor rendezvous timed out";
        return result;
    }
    result.new_rank = shrink.new_rank;
    result.new_size = shrink.new_size;
    result.group = shrink.group;

    // Deterministic planner + identical options => every survivor
    // computes the same plan without communicating.
    result.plan =
        sharding::PlanForSurvivors(planner_options, config.tables,
                                   shrink.new_size);
    if (!result.plan.feasible) {
        result.note =
            "survivor plan infeasible: " + result.plan.note;
        return result;
    }

    // Build the survivor partition (construction is collective-free) and
    // fill it from the checkpoint — including the dead rank's shards,
    // which the logical-table assembly recovers from its stream.
    result.trainer = std::make_unique<DistributedDlrm>(
        config, result.plan, *result.group, options);
    DistributedCheckpointer::RestoreInto(store, *result.trainer);

    obs::MetricsRegistry::Get()
        .GetCounter("neo.core.elastic_recoveries")
        .Add();
    result.ok = true;
    return result;
}

}  // namespace neo::core
