/**
 * @file
 * Inter-batch pipelining driver (Sec. 4.3): while batch i trains, batch
 * i+1's input distribution (the lengths+indices AllToAll) already runs.
 * On real hardware this overlaps the input AllToAll with the top-MLP
 * forward; functionally it reorders the collective schedule — every rank
 * performs PrepareInput(i+1) before TrainStepPrepared(i) — which leaves
 * the numerical results bitwise identical to the unpipelined schedule
 * (verified by tests). The latency benefit is captured by the `sim`
 * layer's Eq. 1 overlap.
 */
#pragma once

#include <optional>

#include "core/distributed_trainer.h"

namespace neo::core {

/** Two-stage pipeline over a DistributedDlrm. */
class PipelinedTrainer
{
  public:
    explicit PipelinedTrainer(DistributedDlrm& trainer)
        : trainer_(trainer) {}

    /**
     * Feed the next local batch. The batch's input distribution runs
     * immediately; the PREVIOUS batch (if any) is trained.
     *
     * @return The previous batch's global mean loss, or nullopt on the
     *   first call (pipeline priming).
     */
    std::optional<double> Push(const data::Batch& local_batch);

    /** Drain: train the last prepared batch. */
    std::optional<double> Flush();

    /**
     * Drop the prepared batch without training it. Used when abandoning
     * a poisoned world before elastic recovery (core/elastic.h): the
     * pending input was prepared against the old world's sharding and
     * cannot be replayed on the survivor trainer. Note the pipeline
     * driver calls TrainStepPrepared directly, so transactional retry
     * (DistributedOptions::transactional_retry) protects per-step state
     * only when the driver wraps its own StepTransaction; the simple
     * recovery path is Reset + re-prime from the last checkpoint.
     */
    void Reset() { pending_.reset(); }

    /** Number of completed training steps. */
    uint64_t steps_completed() const { return steps_completed_; }

  private:
    DistributedDlrm& trainer_;
    std::optional<DistributedDlrm::PreparedInput> pending_;
    uint64_t steps_completed_ = 0;
};

}  // namespace neo::core
