/**
 * @file
 * Inter-batch pipelining driver (Sec. 4.3): while batch i trains, batch
 * i+1's input distribution (the lengths+indices AllToAll) already runs.
 *
 * Two modes:
 *
 *  - Reordered (default ctor): every rank performs PrepareInput(i+1) on
 *    the training communicator before TrainStepPrepared(i). Functionally
 *    this only reorders the collective schedule — no measured overlap —
 *    but it is the mode that needs no extra thread or communicator.
 *
 *  - Overlapped (ctor with a prepare ProcessGroup): PrepareInput(i+1)
 *    genuinely executes concurrently with batch i's compute, on a
 *    dedicated single-thread lane per rank, routing over a second
 *    same-shaped communicator (the *prepare channel*). The dedicated
 *    lane matters twice over: prepare tasks block in the prepare
 *    channel's barriers until every rank's task arrives, so scheduling
 *    them on a shared pool smaller than the world deadlocks (rank 0's
 *    task would hold the only worker while rank 1's waits in the queue);
 *    and the separate communicator keeps the concurrent prepare
 *    collectives out of the training world's barriers (see
 *    DistributedDlrm::AttachPrepareChannel). Push hands the prepared
 *    input off at the end of the call, so at most one prepare is ever in
 *    flight and the caller's batch stays borrowed only within Push.
 *
 * Both modes leave the numerical results bitwise identical to the
 * unpipelined schedule (verified by tests): routing is a pure function
 * of the batch, and the training collectives run in the same order on
 * the same communicator either way.
 *
 * When DistributedOptions::transactional_retry is set (the default),
 * pipelined steps run under the same StepTransaction rollback/retry
 * machinery as TrainStepWithRecovery — a mid-step failure rolls the
 * partial sparse/dense mutations back before any retry, and an
 * unrecoverable failure surfaces as comm::RankFailure with clean
 * pre-step state for elastic recovery.
 */
#pragma once

#include <memory>
#include <optional>

#include "common/thread_pool.h"
#include "core/distributed_trainer.h"

namespace neo::core {

/** Two-stage pipeline over a DistributedDlrm. */
class PipelinedTrainer
{
  public:
    /** Reordered mode: prepare and train on the training communicator. */
    explicit PipelinedTrainer(DistributedDlrm& trainer)
        : trainer_(trainer) {}

    /**
     * Overlapped mode: prepare runs on a dedicated background lane over
     * `prepare_pg` (attached to the trainer as its prepare channel).
     * Every rank of the training world must construct its pipeline with
     * its rank's group of the same prepare world, and the prepare world
     * must outlive this object.
     */
    PipelinedTrainer(DistributedDlrm& trainer,
                     comm::ProcessGroup& prepare_pg);

    /**
     * Feed the next local batch. The batch's input distribution runs
     * immediately (overlapped mode: concurrently with the training
     * below); the PREVIOUS batch (if any) is trained.
     *
     * @return The previous batch's global mean loss, or nullopt on the
     *   first call (pipeline priming).
     */
    std::optional<double> Push(const data::Batch& local_batch);

    /** Drain: train the last prepared batch. */
    std::optional<double> Flush();

    /**
     * Drop the prepared batch without training it. Used when abandoning
     * a poisoned world before elastic recovery (core/elastic.h): the
     * pending input was prepared against the old world's sharding and
     * cannot be replayed on the survivor trainer. No prepare is ever in
     * flight between Push calls, so this is a plain drop.
     */
    void Reset() { pending_.reset(); }

    /** True when constructed with a prepare channel. */
    bool overlapped() const { return lane_ != nullptr; }

    /** Number of completed training steps. */
    uint64_t steps_completed() const { return steps_completed_; }

  private:
    /**
     * Train the pending batch: transactional retry when the trainer's
     * options ask for it, raw TrainStepPrepared otherwise. Throws
     * comm::RankFailure (after rollback) when the step cannot complete.
     */
    double TrainPending();

    DistributedDlrm& trainer_;
    std::optional<DistributedDlrm::PreparedInput> pending_;
    /** Dedicated prepare lane; null in reordered mode. */
    std::unique_ptr<ThreadPool> lane_;
    uint64_t steps_completed_ = 0;
};

}  // namespace neo::core
