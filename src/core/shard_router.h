/**
 * @file
 * Routing of sparse inputs and pooled embeddings between workers under a
 * sharding plan — the forward half of the hybrid-parallel data flow
 * (Sec. 4.2 / Fig. 8), factored out of the trainer so forward-only
 * consumers (inference serving, evaluation) reuse the exact same
 * collective schedule and assembly order. Keeping one implementation is
 * what makes served scores bitwise identical to the trainer's Predict().
 *
 * The router is stateless per call: it owns only the canonical shard
 * list and the per-worker routing table derived from a plan. Both are
 * identical on every rank by construction (plan order filtered and
 * sorted by (table, row_begin, col_begin)), which is the determinism
 * contract all AllToAll reassembly depends on.
 */
#pragma once

#include <vector>

#include "comm/process_group.h"
#include "common/float_types.h"
#include "data/jagged.h"
#include "sharding/planner.h"
#include "tensor/matrix.h"

namespace neo::core {

/** Canonical shard order shared by every worker. */
bool ShardLess(const sharding::Shard& a, const sharding::Shard& b);

/** Per-plan routing of sparse inputs and pooled outputs (one per rank). */
class ShardRouter
{
  public:
    /**
     * Build the routing tables for `pg.Rank()`'s view of `plan`. Must be
     * constructed by every rank of `pg` with identical tables/plan.
     *
     * @param tables The model's logical table configs (row counts drive
     *   row-wise bucketization).
     * @param full_dim The interaction embedding dimension d (pooled
     *   output width).
     * @param plan Sharding plan; data-parallel shards are excluded from
     *   routing (their lookups never leave the local rank).
     * @param pg This rank's communicator (not owned; must outlive this).
     */
    ShardRouter(std::vector<sharding::TableConfig> tables, size_t full_dim,
                const sharding::ShardingPlan& plan, comm::ProcessGroup& pg);

    /** Canonical global shard list (non-DP), identical on every worker. */
    const std::vector<sharding::Shard>& global_shards() const
    {
        return global_shards_;
    }

    /** global_shards() indices owned by worker `w`. */
    const std::vector<size_t>& route(int w) const
    {
        return route_[static_cast<size_t>(w)];
    }

    /** Shards owned by this rank, in canonical order. */
    size_t NumLocalShards() const { return route_[rank_].size(); }

    /** Meta of this rank's i-th local shard (canonical order). */
    const sharding::Shard& LocalShardMeta(size_t i) const
    {
        return global_shards_[route_[rank_][i]];
    }

    /**
     * Input-distribution phase (collective; every rank must call):
     * redistribute this rank's `local_sparse` slice of the global batch
     * to shard owners. Row-wise shards receive bucketized, rebased
     * indices; table/column-wise shards receive the full (duplicated)
     * table input. Returns one global-batch KeyedJagged per local shard,
     * in canonical order — sample b of source rank s lands at global row
     * s * b_local + b.
     */
    std::vector<data::KeyedJagged> RouteInput(
        const data::KeyedJagged& local_sparse, size_t b_local) const;

    /**
     * Pooled-embedding exchange (collective): send each source rank its
     * local-batch slice of every locally-pooled shard, reassemble the
     * received slices into per-table pooled matrices (b_local x
     * full_dim). Column shards land in their column range; row shards
     * accumulate partial pools in canonical (source-major, shard-minor)
     * order for determinism.
     *
     * @param shard_pooled One (b_global x shard_cols) matrix per local
     *   shard, canonical order.
     * @param wire AllToAll wire precision (kFp16/kBf16 quantize).
     * @param pooled_out Filled with one (b_local x full_dim) matrix per
     *   logical table (DP tables left zero for the caller to pool).
     */
    void ExchangePooled(const std::vector<Matrix>& shard_pooled,
                        size_t b_local, Precision wire,
                        std::vector<Matrix>& pooled_out) const;

  private:
    std::vector<sharding::TableConfig> tables_;
    size_t full_dim_;
    comm::ProcessGroup& pg_;
    size_t rank_;
    int world_;
    std::vector<sharding::Shard> global_shards_;
    std::vector<std::vector<size_t>> route_;
};

}  // namespace neo::core
