#include "core/step_transaction.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "core/distributed_trainer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace neo::core {

StepTransaction::StepTransaction(DistributedDlrm& trainer)
    : trainer_(trainer)
{
    NEO_REQUIRE(trainer_.txn_ == nullptr,
                "trainer already has an active StepTransaction");
    shard_snapshots_.resize(trainer_.shards_.size());
    dp_snapshots_.resize(trainer_.dp_tables_.size());
    trainer_.txn_ = this;
}

StepTransaction::~StepTransaction()
{
    trainer_.txn_ = nullptr;
}

void
StepTransaction::CaptureRows(const ops::EmbeddingTable& table,
                             const ops::SparseOptimizer& optimizer,
                             std::span<const ops::SparseGradRef> grads,
                             RowsSnapshot& snapshot)
{
    snapshot.rows.clear();
    snapshot.rows.reserve(grads.size());
    for (const auto& ref : grads) {
        snapshot.rows.push_back(ref.row);
    }
    std::sort(snapshot.rows.begin(), snapshot.rows.end());
    snapshot.rows.erase(
        std::unique(snapshot.rows.begin(), snapshot.rows.end()),
        snapshot.rows.end());

    const size_t d = static_cast<size_t>(table.dim());
    const size_t sfpr = optimizer.StateFloatsPerRow();
    snapshot.values.resize(snapshot.rows.size() * d);
    snapshot.opt_state.resize(snapshot.rows.size() * sfpr);
    for (size_t i = 0; i < snapshot.rows.size(); i++) {
        table.ReadRow(snapshot.rows[i], snapshot.values.data() + i * d);
        if (sfpr > 0) {
            optimizer.ExportRowState(snapshot.rows[i],
                                     snapshot.opt_state.data() + i * sfpr);
        }
    }
    snapshot.captured = true;
}

void
StepTransaction::CaptureShardRows(size_t shard_index,
                                  std::span<const ops::SparseGradRef> grads)
{
    NEO_REQUIRE(shard_index < shard_snapshots_.size(),
                "shard index out of range");
    RowsSnapshot& snapshot = shard_snapshots_[shard_index];
    NEO_REQUIRE(!snapshot.captured,
                "shard captured twice in one transaction");
    const auto& shard = trainer_.shards_[shard_index];
    CaptureRows(shard.table, shard.optimizer, grads, snapshot);
}

void
StepTransaction::CaptureDpRows(size_t dp_index,
                               std::span<const ops::SparseGradRef> grads)
{
    NEO_REQUIRE(dp_index < dp_snapshots_.size(), "DP index out of range");
    RowsSnapshot& snapshot = dp_snapshots_[dp_index];
    NEO_REQUIRE(!snapshot.captured, "DP table captured twice");
    const auto& dp = trainer_.dp_tables_[dp_index];
    CaptureRows(dp.replica, dp.optimizer, grads, snapshot);
}

void
StepTransaction::CaptureDense()
{
    NEO_REQUIRE(!dense_.captured, "dense state captured twice");
    BinaryWriter writer;
    trainer_.bottom_->Save(writer);
    trainer_.top_->Save(writer);
    trainer_.dense_opt_.Save(writer);
    dense_.blob = writer.buffer();
    dense_.captured = true;
}

void
StepTransaction::Rollback()
{
    NEO_TRACE_SPAN("step_rollback", "recovery");
    auto restore_rows = [](ops::EmbeddingTable& table,
                           ops::SparseOptimizer& optimizer,
                           const RowsSnapshot& snapshot) {
        if (!snapshot.captured) {
            return;
        }
        const size_t d = static_cast<size_t>(table.dim());
        const size_t sfpr = optimizer.StateFloatsPerRow();
        for (size_t i = 0; i < snapshot.rows.size(); i++) {
            table.WriteRow(snapshot.rows[i],
                           snapshot.values.data() + i * d);
            if (sfpr > 0) {
                optimizer.ImportRowState(
                    snapshot.rows[i], snapshot.opt_state.data() + i * sfpr);
            }
        }
    };
    for (size_t i = 0; i < shard_snapshots_.size(); i++) {
        restore_rows(trainer_.shards_[i].table,
                     trainer_.shards_[i].optimizer, shard_snapshots_[i]);
    }
    for (size_t i = 0; i < dp_snapshots_.size(); i++) {
        restore_rows(trainer_.dp_tables_[i].replica,
                     trainer_.dp_tables_[i].optimizer, dp_snapshots_[i]);
    }
    if (dense_.captured) {
        BinaryReader reader(dense_.blob);
        trainer_.bottom_->Load(reader);
        trainer_.top_->Load(reader);
        trainer_.dense_opt_.Load(reader);
    }
    obs::MetricsRegistry::Get().GetCounter("neo.core.rollbacks").Add();
    Commit();  // the undo log is spent either way
}

void
StepTransaction::Commit()
{
    for (auto& snapshot : shard_snapshots_) {
        snapshot = RowsSnapshot{};
    }
    for (auto& snapshot : dp_snapshots_) {
        snapshot = RowsSnapshot{};
    }
    dense_ = DenseSnapshot{};
}

uint64_t
StepTransaction::captured_rows() const
{
    uint64_t total = 0;
    for (const auto& snapshot : shard_snapshots_) {
        total += snapshot.rows.size();
    }
    for (const auto& snapshot : dp_snapshots_) {
        total += snapshot.rows.size();
    }
    return total;
}

}  // namespace neo::core
