#include "core/distributed_trainer.h"

#include <algorithm>
#include <cstring>
#include <thread>

#include "common/logging.h"
#include "core/step_transaction.h"
#include "data/jagged.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/straggler.h"
#include "obs/trace.h"

namespace neo::core {

std::chrono::milliseconds
RetryBackoffDelay(const DistributedOptions& options, int attempt)
{
    int64_t delay = options.retry_backoff.count();
    if (delay <= 0) {
        return std::chrono::milliseconds(0);
    }
    // Double per prior attempt, but saturate at the ceiling instead of
    // shifting into overflow (the old `retry_backoff << (k - 1)` wrapped
    // for large attempt counts). A ceiling below the base acts as the
    // base.
    const int64_t cap =
        std::max<int64_t>(options.max_retry_backoff.count(), delay);
    for (int k = 1; k < attempt && delay < cap; k++) {
        delay = delay > cap / 2 ? cap : delay * 2;
    }
    return std::chrono::milliseconds(std::min(delay, cap));
}

DistributedDlrm::DistributedDlrm(const DlrmConfig& config,
                                 const sharding::ShardingPlan& plan,
                                 comm::ProcessGroup& pg,
                                 const DistributedOptions& options)
    : config_(config), plan_(plan), pg_(pg), options_(options),
      rank_(pg.Rank()), world_(pg.Size()),
      dense_opt_(config.dense_optimizer)
{
    config_.Validate();
    NEO_REQUIRE(plan_.feasible, "sharding plan is infeasible: ", plan_.note);

    // Replicated MLPs: identical seed => identical replicas on all ranks.
    Rng mlp_rng(config_.seed);
    bottom_ = std::make_unique<ops::Mlp>(
        ops::MlpConfig{config_.BottomLayerSizes(), /*final_relu=*/true},
        mlp_rng);
    top_ = std::make_unique<ops::Mlp>(
        ops::MlpConfig{config_.TopLayerSizes(), /*final_relu=*/false},
        mlp_rng);
    interaction_ = std::make_unique<DotInteraction>(config_.tables.size(),
                                                    config_.EmbeddingDim());
    bottom_slots_ = bottom_->RegisterParams(dense_opt_);
    top_slots_ = top_->RegisterParams(dense_opt_);

    BuildShards();
    router_.emplace(config_.tables, config_.EmbeddingDim(), plan_, pg_);
    NEO_CHECK(router_->NumLocalShards() == shards_.size(),
              "local shard bookkeeping mismatch");
    grad_buffer_.resize(bottom_->GradCount() + top_->GradCount());

    // Live exposition: rank 0 periodically renders the (process-wide)
    // registry for external scrapers. Start() is inert unless a
    // telemetry directory is configured, so this costs nothing in tests.
    if (rank_ == 0 && options_.telemetry_period.count() > 0) {
        obs::SnapshotWriter::Options writer;
        writer.period = options_.telemetry_period;
        writer.basename = "train_metrics";
        exposition_.Start(writer);
    }
}

void
DistributedDlrm::BuildShards()
{
    dp_slot_of_table_.assign(config_.tables.size(), -1);
    for (const auto& shard : plan_.shards) {
        const auto& table_cfg = config_.tables[shard.table];
        const uint64_t table_seed = ops::EmbeddingBagCollection::TableSeed(
            config_.seed, static_cast<size_t>(shard.table));

        if (shard.scheme == sharding::Scheme::kDataParallel) {
            // Every worker replicates DP tables.
            ops::EmbeddingTable replica(table_cfg.rows, table_cfg.dim,
                                        table_cfg.precision);
            replica.InitDeterministic(table_seed, 0, 0, table_cfg.dim);
            ops::SparseOptimizer opt(config_.sparse_optimizer,
                                     table_cfg.rows, table_cfg.dim);
            dp_slot_of_table_[shard.table] =
                static_cast<int>(dp_tables_.size());
            dp_tables_.emplace_back(shard.table, std::move(replica),
                                    std::move(opt));
            continue;
        }
        if (shard.worker != rank_) {
            continue;
        }
        const int64_t shard_rows = shard.NumRows();
        const int64_t shard_cols = shard.NumCols();
        ops::EmbeddingTable table(shard_rows, shard_cols,
                                  table_cfg.precision);
        table.InitDeterministic(table_seed, shard.row_begin, shard.col_begin,
                                table_cfg.dim);
        ops::SparseOptimizer opt(config_.sparse_optimizer, shard_rows,
                                 shard_cols);
        shards_.emplace_back(shard, std::move(table), std::move(opt));
    }
    std::stable_sort(shards_.begin(), shards_.end(),
                     [](const LocalShard& a, const LocalShard& b) {
                         return ShardLess(a.meta, b.meta);
                     });
}

DistributedDlrm::PreparedInput
DistributedDlrm::PrepareInput(const data::Batch& local_batch)
{
    return PrepareInputVia(*router_, local_batch);
}

void
DistributedDlrm::AttachPrepareChannel(comm::ProcessGroup& pg)
{
    NEO_REQUIRE(pg.Rank() == rank_ && pg.Size() == world_,
                "prepare channel must mirror the training communicator "
                "(rank ", rank_, "/", world_, ", got ", pg.Rank(), "/",
                pg.Size(), ")");
    prepare_router_.emplace(config_.tables, config_.EmbeddingDim(), plan_,
                            pg);
}

DistributedDlrm::PreparedInput
DistributedDlrm::PrepareInputOverlapped(const data::Batch& local_batch)
{
    NEO_REQUIRE(prepare_router_.has_value(),
                "PrepareInputOverlapped requires AttachPrepareChannel");
    return PrepareInputVia(*prepare_router_, local_batch);
}

DistributedDlrm::PreparedInput
DistributedDlrm::PrepareInputVia(const ShardRouter& router,
                                 const data::Batch& local_batch)
{
    // Bucketize/route time books as "data"; the nested lengths/indices
    // AllToAlls carve their own time into the alltoall bucket.
    NEO_TRACE_SPAN("prepare_input", "data");
    NEO_REQUIRE(local_batch.sparse.num_tables == config_.tables.size(),
                "batch has ", local_batch.sparse.num_tables,
                " sparse features but the model has ",
                config_.tables.size());
    NEO_REQUIRE(local_batch.dense.rows() == local_batch.size() &&
                    local_batch.sparse.batch == local_batch.size(),
                "batch component sizes disagree");
    NEO_REQUIRE(local_batch.dense.cols() == config_.num_dense,
                "batch dense width mismatch");
    PreparedInput prepared;
    prepared.dense = local_batch.dense;
    prepared.labels = local_batch.labels;
    prepared.local_sparse = local_batch.sparse;
    prepared.local_batch = local_batch.size();
    prepared.shard_inputs =
        router.RouteInput(local_batch.sparse, prepared.local_batch);
    return prepared;
}

void
DistributedDlrm::ForwardEmbeddings(const PreparedInput& prepared,
                                   std::vector<Matrix>& shard_pooled)
{
    const size_t b_global = prepared.local_batch * world_;
    shard_pooled.resize(shards_.size());
    for (size_t i = 0; i < shards_.size(); i++) {
        const auto& shard = shards_[i];
        const size_t d = static_cast<size_t>(shard.meta.NumCols());
        Matrix& pooled = shard_pooled[i];
        if (pooled.rows() != b_global || pooled.cols() != d) {
            pooled = Matrix(b_global, d);
        } else {
            pooled.Zero();
        }
        const auto& input = prepared.shard_inputs[i];
        NEO_CHECK(input.batch == b_global, "shard input batch mismatch");
        const auto lens = input.LengthsForTable(0);
        const auto idx = input.IndicesForTable(0);
        size_t offset = 0;
        for (size_t b = 0; b < b_global; b++) {
            float* out = pooled.Row(b);
            for (uint32_t k = 0; k < lens[b]; k++) {
                shard.table.AccumulateRow(idx[offset + k], 1.0f, out);
            }
            offset += lens[b];
        }
    }
}

void
DistributedDlrm::ExchangePooled(const std::vector<Matrix>& shard_pooled,
                                size_t local_batch,
                                std::vector<Matrix>& pooled_out)
{
    router_->ExchangePooled(shard_pooled, local_batch,
                            options_.forward_alltoall, pooled_out);
}

double
DistributedDlrm::TrainStepPrepared(PreparedInput& prepared)
{
    const size_t b_local = prepared.local_batch;
    const size_t b_global = b_local * static_cast<size_t>(world_);

    // ---- model-parallel embedding forward + exchange ----
    std::vector<Matrix> shard_pooled;
    std::vector<Matrix> pooled;
    {
        NEO_TRACE_SPAN("emb_forward", "emb_fwd");
        ForwardEmbeddings(prepared, shard_pooled);
        ExchangePooled(shard_pooled, b_local, pooled);

        // ---- replicated DP tables pool the local batch directly ----
        for (const auto& dp : dp_tables_) {
            Matrix& out = pooled[dp.table];
            const auto input = prepared.local_sparse.InputForTable(
                static_cast<size_t>(dp.table));
            size_t offset = 0;
            for (size_t b = 0; b < b_local; b++) {
                float* row = out.Row(b);
                for (uint32_t k = 0; k < input.lengths[b]; k++) {
                    dp.replica.AccumulateRow(input.indices[offset + k],
                                             1.0f, row);
                }
                offset += input.lengths[b];
            }
        }
    }

    // ---- dense forward ----
    Matrix logits;
    Matrix bottom_out;
    Matrix interacted(b_local, interaction_->OutputDim());
    double loss = 0.0;
    {
        NEO_TRACE_SPAN("dense_forward", "mlp_fwd");
        bottom_->Forward(prepared.dense, bottom_out);
        interaction_->Forward(bottom_out, pooled, interacted);
        top_->Forward(interacted, logits);

        // ---- loss (global mean via AllReduce of the local sum) ----
        float loss_sum = static_cast<float>(
            BceWithLogitsLoss(logits, prepared.labels) *
            static_cast<double>(b_local));
        pg_.AllReduceSum(&loss_sum, 1);
        loss = loss_sum / static_cast<double>(b_global);
    }

    // ---- backward ----
    std::vector<Matrix> grad_pooled(config_.tables.size());
    {
        NEO_TRACE_SPAN("dense_backward", "mlp_bwd");
        Matrix grad_logits(b_local, 1);
        BceWithLogitsGrad(logits, prepared.labels, grad_logits, b_global);

        top_->ZeroGrads();
        Matrix grad_interacted;
        top_->Backward(grad_logits, grad_interacted);

        Matrix grad_bottom_out(b_local, config_.EmbeddingDim());
        for (auto& g : grad_pooled) {
            g = Matrix(b_local, config_.EmbeddingDim());
        }
        interaction_->Backward(grad_interacted, grad_bottom_out,
                               grad_pooled);

        bottom_->ZeroGrads();
        Matrix grad_dense_unused;
        bottom_->Backward(grad_bottom_out, grad_dense_unused);
    }

    // ---- sparse updates (model-parallel, then replicated DP) ----
    {
        NEO_TRACE_SPAN("emb_backward_update", "emb_bwd");
        ExchangeGradsAndUpdate(prepared, grad_pooled);
        UpdateDpTables(prepared, grad_pooled);
    }

    // ---- data-parallel MLP sync + update ----
    {
        // Pack/unpack rides the allreduce bucket (it exists only to feed
        // the wire); the nested collective span refines the timing.
        NEO_TRACE_SPAN("allreduce_mlp_grads", "allreduce");
        AllReduceMlpGrads();
    }
    {
        NEO_TRACE_SPAN("dense_optimizer", "opt");
        if (txn_ != nullptr) {
            txn_->CaptureDense();
        }
        bottom_->ApplyOptimizer(dense_opt_, bottom_slots_);
        top_->ApplyOptimizer(dense_opt_, top_slots_);
    }
    return loss;
}

double
DistributedDlrm::TrainStep(const data::Batch& local_batch)
{
    NEO_TRACE_SPAN("train_step", "step");
    const int64_t t0 = obs::NowNs();
    PreparedInput prepared = PrepareInput(local_batch);
    const double loss = TrainStepPrepared(prepared);
    auto& metrics = obs::MetricsRegistry::Get();
    metrics.GetCounter("neo.core.steps").Add();
    const double step_seconds =
        static_cast<double>(obs::NowNs() - t0) * 1e-9;
    metrics.GetHistogram("neo.core.step_seconds").Observe(step_seconds);
    obs::StragglerDetector::Get().RecordStep(rank_, step_seconds);
    auto& recorder = obs::FlightRecorder::Get();
    recorder.RecordStep(rank_, steps_done_++, step_seconds, loss);
    recorder.RecordMetricsDelta(rank_);
    return loss;
}

StepResult
DistributedDlrm::TrainStepWithRecovery(const data::Batch& local_batch)
{
    return RunStepWithRecovery(
        [&] { return TrainStep(local_batch); });
}

StepResult
DistributedDlrm::TrainStepPreparedWithRecovery(PreparedInput& prepared)
{
    // TrainStepPrepared never mutates `prepared`, so a retry replays the
    // identical routed input — the collective schedule of the retry is
    // the same on every rank, just without the input AllToAll.
    return RunStepWithRecovery(
        [&] { return TrainStepPrepared(prepared); });
}

StepResult
DistributedDlrm::RunStepWithRecovery(const std::function<double()>& attempt)
{
    StepResult result;
    while (true) {
        result.attempts++;
        std::optional<StepTransaction> txn;
        if (options_.transactional_retry) {
            txn.emplace(*this);
        }
        try {
            result.loss = attempt();
            if (txn) {
                txn->Commit();
            }
            result.ok = true;
            return result;
        } catch (const comm::RankFailure& failure) {
            // Undo any partial mutation this attempt made — whether we
            // retry (exactly-once semantics: the retry must start from
            // the exact pre-step state) or give up (elastic recovery
            // wants clean pre-step state to hand to the survivors).
            if (txn) {
                txn->Rollback();
            }
            obs::MetricsRegistry::Get()
                .GetCounter("neo.core.step_retries")
                .Add();
            result.failures.push_back({failure.failed_rank(),
                                       failure.cause(), result.attempts,
                                       failure.transient()});
            if (!failure.transient() ||
                result.attempts > options_.max_step_retries) {
                return result;
            }
            // Exponential backoff, then an all-rank rendezvous to re-arm
            // the communicator. Every surviving rank runs this same
            // path (they all received the same RankFailure), so the
            // rendezvous either completes everywhere or times out
            // everywhere — no rank is left retrying alone.
            std::this_thread::sleep_for(
                RetryBackoffDelay(options_, result.attempts));
            if (!pg_.Recover(options_.recover_timeout)) {
                std::string cause =
                    "recovery rendezvous timed out; rank did not return";
                const std::string suspect =
                    obs::StragglerDetector::Get().DescribeStraggler();
                if (!suspect.empty()) {
                    cause += "; " + suspect;
                }
                result.failures.push_back({failure.failed_rank(), cause,
                                           result.attempts, false});
                return result;
            }
            Warn("rank ", rank_, ": step attempt ", result.attempts,
                 " lost to failure of rank ", failure.failed_rank(),
                 " (", failure.cause(), "); retrying");
        }
    }
}

void
DistributedDlrm::ExchangeGradsAndUpdate(const PreparedInput& prepared,
                                        const std::vector<Matrix>& grad_pooled)
{
    const size_t b_local = prepared.local_batch;
    const size_t b_global = b_local * static_cast<size_t>(world_);

    // Route each shard its slice of the pooled gradient: full width for
    // TW/RW (partials used every column), the column range for CW.
    std::vector<std::vector<float>> send(world_);
    for (int dst = 0; dst < world_; dst++) {
        for (size_t gi : router_->route(dst)) {
            const auto& shard = router_->global_shards()[gi];
            const Matrix& g = grad_pooled[shard.table];
            if (shard.scheme == sharding::Scheme::kColumnWise) {
                const size_t d = static_cast<size_t>(shard.NumCols());
                for (size_t b = 0; b < b_local; b++) {
                    const float* row = g.Row(b) + shard.col_begin;
                    send[dst].insert(send[dst].end(), row, row + d);
                }
            } else {
                send[dst].insert(send[dst].end(), g.data(),
                                 g.data() + g.size());
            }
        }
    }
    std::vector<std::vector<float>> recv;
    comm::QuantizedAllToAll(pg_, send, recv, options_.backward_alltoall);

    // Assemble each local shard's global-batch gradient and apply the
    // fused exact update.
    std::vector<size_t> cursor(world_, 0);
    std::vector<Matrix> shard_grads(shards_.size());
    for (size_t i = 0; i < shards_.size(); i++) {
        const size_t d = static_cast<size_t>(shards_[i].meta.NumCols());
        shard_grads[i] = Matrix(b_global, d);
    }
    for (int src = 0; src < world_; src++) {
        // recv[src] holds, in my local shard order, a (b_local x d) block
        // per shard.
        for (size_t i = 0; i < shards_.size(); i++) {
            const size_t d = shard_grads[i].cols();
            const float* payload = recv[src].data() + cursor[src];
            cursor[src] += b_local * d;
            for (size_t b = 0; b < b_local; b++) {
                std::memcpy(
                    shard_grads[i].Row(static_cast<size_t>(src) * b_local +
                                       b),
                    payload + b * d, d * sizeof(float));
            }
        }
    }

    std::vector<ops::SparseGradRef> refs;
    for (size_t i = 0; i < shards_.size(); i++) {
        auto& shard = shards_[i];
        const auto& input = prepared.shard_inputs[i];
        const auto lens = input.LengthsForTable(0);
        const auto idx = input.IndicesForTable(0);
        refs.clear();
        refs.reserve(idx.size());
        size_t offset = 0;
        for (size_t b = 0; b < b_global; b++) {
            const float* g = shard_grads[i].Row(b);
            for (uint32_t k = 0; k < lens[b]; k++) {
                refs.push_back({idx[offset + k], g});
            }
            offset += lens[b];
        }
        if (txn_ != nullptr) {
            txn_->CaptureShardRows(i, refs);
        }
        if (options_.exact_sparse_update) {
            shard.optimizer.ApplyExact(shard.table, refs);
        } else {
            shard.optimizer.ApplyNaive(shard.table, refs);
        }
    }
}

void
DistributedDlrm::UpdateDpTables(const PreparedInput& prepared,
                                const std::vector<Matrix>& grad_pooled)
{
    if (dp_tables_.empty()) {
        return;
    }
    const size_t b_local = prepared.local_batch;

    // Replicas must apply identical updates, so every worker broadcasts
    // its local (lengths, indices, gradients) and all replicas apply the
    // assembled global update — the sparse analogue of the DP AllReduce.
    std::vector<uint32_t> len_payload;
    std::vector<int64_t> idx_payload;
    std::vector<float> grad_payload;
    for (const auto& dp : dp_tables_) {
        const auto input = prepared.local_sparse.InputForTable(
            static_cast<size_t>(dp.table));
        len_payload.insert(len_payload.end(), input.lengths.begin(),
                           input.lengths.end());
        idx_payload.insert(idx_payload.end(), input.indices.begin(),
                           input.indices.end());
        const Matrix& g = grad_pooled[dp.table];
        grad_payload.insert(grad_payload.end(), g.data(),
                            g.data() + g.size());
    }
    std::vector<std::vector<uint32_t>> send_len(world_, len_payload);
    std::vector<std::vector<int64_t>> send_idx(world_, idx_payload);
    std::vector<std::vector<float>> send_grad(world_, grad_payload);
    std::vector<std::vector<uint32_t>> recv_len;
    std::vector<std::vector<int64_t>> recv_idx;
    std::vector<std::vector<float>> recv_grad;
    pg_.AllToAllLengths(send_len, recv_len);
    pg_.AllToAllIndices(send_idx, recv_idx);
    pg_.AllToAllFloats(send_grad, recv_grad);

    const size_t d = config_.EmbeddingDim();
    std::vector<size_t> len_cursor(world_, 0);
    std::vector<size_t> idx_cursor(world_, 0);
    std::vector<size_t> grad_cursor(world_, 0);
    std::vector<ops::SparseGradRef> refs;
    for (size_t dpi = 0; dpi < dp_tables_.size(); dpi++) {
        auto& dp = dp_tables_[dpi];
        refs.clear();
        for (int src = 0; src < world_; src++) {
            const uint32_t* lens = recv_len[src].data() + len_cursor[src];
            const float* grads = recv_grad[src].data() + grad_cursor[src];
            size_t offset = idx_cursor[src];
            for (size_t b = 0; b < b_local; b++) {
                const float* g = grads + b * d;
                for (uint32_t k = 0; k < lens[b]; k++) {
                    refs.push_back({recv_idx[src][offset + k], g});
                }
                offset += lens[b];
            }
            len_cursor[src] += b_local;
            grad_cursor[src] += b_local * d;
            idx_cursor[src] = offset;
        }
        if (txn_ != nullptr) {
            txn_->CaptureDpRows(dpi, refs);
        }
        if (options_.exact_sparse_update) {
            dp.optimizer.ApplyExact(dp.replica, refs);
        } else {
            dp.optimizer.ApplyNaive(dp.replica, refs);
        }
    }
}

void
DistributedDlrm::SaveLocal(BinaryWriter& writer) const
{
    writer.Write<uint32_t>(0x4E454F43u);  // 'NEOC'
    writer.Write<int32_t>(rank_);
    writer.Write<uint64_t>(shards_.size());
    for (const auto& shard : shards_) {
        writer.Write<int32_t>(shard.meta.table);
        writer.Write<int64_t>(shard.meta.row_begin);
        writer.Write<int64_t>(shard.meta.col_begin);
        shard.table.Save(writer);
    }
    writer.Write<uint64_t>(dp_tables_.size());
    for (const auto& dp : dp_tables_) {
        writer.Write<int32_t>(dp.table);
        dp.replica.Save(writer);
    }
    bottom_->Save(writer);
    top_->Save(writer);
}

void
DistributedDlrm::LoadLocal(BinaryReader& reader)
{
    NEO_REQUIRE(reader.Read<uint32_t>() == 0x4E454F43u,
                "bad distributed checkpoint magic");
    NEO_REQUIRE(reader.Read<int32_t>() == rank_,
                "checkpoint written by a different rank");
    const uint64_t num_shards = reader.Read<uint64_t>();
    NEO_REQUIRE(num_shards == shards_.size(),
                "checkpoint shard count mismatch");
    for (auto& shard : shards_) {
        NEO_REQUIRE(reader.Read<int32_t>() == shard.meta.table,
                    "checkpoint shard table mismatch");
        NEO_REQUIRE(reader.Read<int64_t>() == shard.meta.row_begin &&
                        reader.Read<int64_t>() == shard.meta.col_begin,
                    "checkpoint shard geometry mismatch");
        ops::EmbeddingTable loaded = ops::EmbeddingTable::Load(reader);
        NEO_REQUIRE(loaded.rows() == shard.table.rows() &&
                        loaded.dim() == shard.table.dim(),
                    "checkpoint shard shape mismatch");
        shard.table = std::move(loaded);
    }
    const uint64_t num_dp = reader.Read<uint64_t>();
    NEO_REQUIRE(num_dp == dp_tables_.size(),
                "checkpoint DP table count mismatch");
    for (auto& dp : dp_tables_) {
        NEO_REQUIRE(reader.Read<int32_t>() == dp.table,
                    "checkpoint DP table mismatch");
        ops::EmbeddingTable loaded = ops::EmbeddingTable::Load(reader);
        dp.replica = std::move(loaded);
    }
    bottom_->Load(reader);
    top_->Load(reader);
}

void
DistributedDlrm::AllReduceMlpGrads()
{
    const size_t bottom_count = bottom_->GradCount();
    bottom_->PackGrads(grad_buffer_.data());
    top_->PackGrads(grad_buffer_.data() + bottom_count);
    pg_.AllReduceSum(grad_buffer_.data(), grad_buffer_.size());
    bottom_->UnpackGrads(grad_buffer_.data());
    top_->UnpackGrads(grad_buffer_.data() + bottom_count);
}

void
DistributedDlrm::Predict(const data::Batch& local_batch, Matrix& logits)
{
    PreparedInput prepared = PrepareInput(local_batch);
    const size_t b_local = prepared.local_batch;

    std::vector<Matrix> shard_pooled;
    ForwardEmbeddings(prepared, shard_pooled);
    std::vector<Matrix> pooled;
    ExchangePooled(shard_pooled, b_local, pooled);
    for (const auto& dp : dp_tables_) {
        Matrix& out = pooled[dp.table];
        const auto input = prepared.local_sparse.InputForTable(
            static_cast<size_t>(dp.table));
        size_t offset = 0;
        for (size_t b = 0; b < b_local; b++) {
            float* row = out.Row(b);
            for (uint32_t k = 0; k < input.lengths[b]; k++) {
                dp.replica.AccumulateRow(input.indices[offset + k], 1.0f,
                                         row);
            }
            offset += input.lengths[b];
        }
    }

    Matrix bottom_out;
    bottom_->Forward(prepared.dense, bottom_out);
    Matrix interacted(b_local, interaction_->OutputDim());
    interaction_->Forward(bottom_out, pooled, interacted);
    top_->Forward(interacted, logits);
}

void
DistributedDlrm::Evaluate(const data::Batch& local_batch,
                          NormalizedEntropy& ne)
{
    Matrix logits;
    Predict(local_batch, logits);
    ne.AddLogits(logits, local_batch.labels);
}

}  // namespace neo::core
