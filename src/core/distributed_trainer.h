/**
 * @file
 * Synchronous hybrid-parallel DLRM trainer (Sec. 3 / Fig. 4).
 *
 * Each worker (one per simulated GPU) holds:
 *  - a full replica of the bottom/top MLPs (data parallelism; gradients
 *    are AllReduced every step),
 *  - the embedding-table shards a ShardingPlan assigned to it (model
 *    parallelism; inputs and pooled outputs move via AllToAll, partial
 *    pools of row-wise shards are reduced, data-parallel tables are
 *    replicated and synchronized with an exact global sparse update).
 *
 * The training step follows the paper's dependency graph (Fig. 9):
 * input AllToAll -> embedding lookup -> pooled AllToAll (optionally FP16
 * quantized) -> interaction -> top MLP -> loss -> backward -> gradient
 * AllToAll (optionally BF16) -> fused exact embedding update, with the MLP
 * AllReduce at the end of the backward pass.
 */
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "comm/process_group.h"
#include "comm/quantized.h"
#include "core/dlrm_config.h"
#include "core/shard_router.h"
#include "data/dataset.h"
#include "obs/exposition.h"
#include "ops/mlp.h"
#include "sharding/planner.h"
#include "tensor/interaction.h"
#include "tensor/loss.h"

namespace neo::core {

class StepTransaction;
class DistributedCheckpointer;

/** Trainer knobs beyond the model config. */
struct DistributedOptions {
    /** Wire precision of the forward pooled-embedding AllToAll. */
    Precision forward_alltoall = Precision::kFp32;
    /** Wire precision of the backward gradient AllToAll. */
    Precision backward_alltoall = Precision::kFp32;
    /** Use the exact (sorted/merged) sparse update; false = naive path. */
    bool exact_sparse_update = true;

    // ---- failure handling (TrainStepWithRecovery) ----

    /** Step retries after a transient RankFailure (0 = fail fast). */
    int max_step_retries = 0;
    /** Base of the exponential retry backoff (doubles per attempt). */
    std::chrono::milliseconds retry_backoff{10};
    /** Ceiling on the exponential backoff (keeps the doubling from
     *  overflowing for large retry counts). */
    std::chrono::milliseconds max_retry_backoff{2000};
    /** Deadline for the all-rank recovery rendezvous after a failure. */
    std::chrono::milliseconds recover_timeout{2000};
    /**
     * Snapshot-and-rollback retries (exactly-once): each attempt runs
     * under a StepTransaction whose undo log restores partially-applied
     * sparse/dense updates before the retry, so a retried step is
     * bit-identical to a fault-free one. False = legacy at-least-once
     * retries that may double-apply updates.
     */
    bool transactional_retry = true;

    // ---- telemetry ----

    /**
     * Period of the rank-0 live metrics exposition (Prometheus + JSON
     * snapshots under NEO_TELEMETRY_DIR). The writer only starts when a
     * telemetry directory is actually configured, so the default is
     * inert everywhere the env is unset; 0 disables outright.
     */
    std::chrono::milliseconds telemetry_period{1000};
};

/**
 * Backoff before retry `attempt` (1-based): retry_backoff doubled per
 * prior attempt, clamped to max_retry_backoff. Never overflows, for any
 * attempt count.
 */
std::chrono::milliseconds RetryBackoffDelay(const DistributedOptions& options,
                                            int attempt);

/** One failed training-step attempt, as observed by this rank. */
struct StepFailure {
    /** Rank the communicator blamed for the failure. */
    int failed_rank = -1;
    /** Originating cause, from RankFailure::cause(). */
    std::string cause;
    /** 1-based attempt number that failed. */
    int attempt = 0;
    /** Whether the fault was reported transient (retry-worthy). */
    bool transient = false;
};

/**
 * Structured outcome of a fault-tolerant training step: instead of
 * hanging (the old behaviour) or unwinding the whole worker, each rank
 * reports what happened — success (possibly after retries) or a bounded
 * failure naming the guilty rank.
 */
struct StepResult {
    bool ok = false;
    /** Global mean loss; valid when ok. */
    double loss = 0.0;
    /** Attempts made (1 = first try succeeded). */
    int attempts = 0;
    /** One record per failed attempt, in order. */
    std::vector<StepFailure> failures;
};

/** One worker's view of the distributed model. */
class DistributedDlrm
{
  public:
    /**
     * Construct this worker's partition. Must be called by every rank of
     * `pg` with identical config/plan/options.
     */
    DistributedDlrm(const DlrmConfig& config,
                    const sharding::ShardingPlan& plan,
                    comm::ProcessGroup& pg,
                    const DistributedOptions& options = {});

    /** Result of the input-distribution phase for one local batch. */
    struct PreparedInput {
        /** Local dense features and labels. */
        Matrix dense;
        std::vector<float> labels;
        /** Local sparse slice (kept for DP tables). */
        data::KeyedJagged local_sparse;
        /** Global-batch input per local shard (canonical shard order). */
        std::vector<data::KeyedJagged> shard_inputs;
        size_t local_batch = 0;
    };

    /**
     * Input-distribution phase: redistribute this worker's local slice of
     * the global batch to shard owners (collective; all ranks must call).
     * Split out from TrainStep so a driver can overlap it with the
     * previous step's compute, as in the paper's pipelining (Sec. 4.3).
     */
    PreparedInput PrepareInput(const data::Batch& local_batch);

    /**
     * Bind a second, same-shaped communicator as the *prepare channel*.
     * PrepareInputOverlapped routes over it instead of the training
     * communicator, so a background task can run batch i+1's input
     * AllToAll concurrently with batch i's collectives without the two
     * schedules ever sharing a barrier. The barriers of ThreadedWorld
     * count arrivals from any thread — a background prepare entering the
     * training world's barrier while the main thread is inside a training
     * collective would cross-release mismatched collectives — which is
     * why genuine overlap needs a disjoint communicator rather than a
     * lock. Routing is a pure function of the batch, so which channel
     * carries it cannot change any value. `pg` must have this trainer's
     * rank and size and must outlive the trainer.
     */
    void AttachPrepareChannel(comm::ProcessGroup& pg);

    /** True once AttachPrepareChannel has been called. */
    bool has_prepare_channel() const { return prepare_router_.has_value(); }

    /**
     * PrepareInput over the prepare channel (AttachPrepareChannel first).
     * Collective on the prepare channel only; safe to call from a
     * background thread while the owning thread is inside a training
     * step, because the two never touch the same communicator and the
     * prepare phase reads no mutable model state.
     */
    PreparedInput PrepareInputOverlapped(const data::Batch& local_batch);

    /** Full training step on a prepared input. Returns global mean loss. */
    double TrainStepPrepared(PreparedInput& prepared);

    /** Convenience: PrepareInput + TrainStepPrepared. */
    double TrainStep(const data::Batch& local_batch);

    /**
     * Fault-tolerant TrainStep: catches comm::RankFailure and returns a
     * structured per-rank report instead of unwinding. When the failure
     * is transient and `max_step_retries` allows, every rank backs off
     * exponentially, rendezvouses via ProcessGroup::Recover, and retries
     * the step from PrepareInput. With `transactional_retry` (default),
     * each attempt runs under a StepTransaction that rolls partial
     * sparse/dense mutations back before the retry — exactly-once
     * semantics, losses bit-identical to a fault-free run. Without it,
     * retries are at-least-once and may double-apply updates. On a
     * non-retryable failure the rollback still runs, leaving clean
     * pre-step state for elastic recovery (see core/elastic.h).
     */
    StepResult TrainStepWithRecovery(const data::Batch& local_batch);

    /**
     * TrainStepWithRecovery for an already-prepared input: retries rerun
     * TrainStepPrepared on the same PreparedInput (which step execution
     * never mutates), skipping the input AllToAll — the retry shape the
     * pipelined driver needs, where the failed step's input was routed
     * one Push earlier. Same transaction/rollback/rendezvous semantics as
     * TrainStepWithRecovery.
     */
    StepResult TrainStepPreparedWithRecovery(PreparedInput& prepared);

    /** Forward-only logits for this worker's local batch (collective). */
    void Predict(const data::Batch& local_batch, Matrix& logits);

    /** Accumulate local-batch NE (collective; merge across workers). */
    void Evaluate(const data::Batch& local_batch, NormalizedEntropy& ne);

    // ---- introspection for tests / verification ----

    /** One locally-owned shard (model-parallel). */
    struct LocalShard {
        sharding::Shard meta;
        ops::EmbeddingTable table;
        ops::SparseOptimizer optimizer;
        LocalShard(const sharding::Shard& m, ops::EmbeddingTable t,
                   ops::SparseOptimizer o)
            : meta(m), table(std::move(t)), optimizer(std::move(o)) {}
    };

    /** Replicated data-parallel table. */
    struct DpTable {
        int table = -1;
        ops::EmbeddingTable replica;
        ops::SparseOptimizer optimizer;
        DpTable(int idx, ops::EmbeddingTable t, ops::SparseOptimizer o)
            : table(idx), replica(std::move(t)), optimizer(std::move(o)) {}
    };

    /**
     * Serialize this worker's partition (its shards, DP replicas and MLP
     * replica). Each rank writes its own stream; together the streams
     * form a sharded checkpoint (Sec. 4.4).
     */
    void SaveLocal(BinaryWriter& writer) const;

    /** Restore a partition written by SaveLocal on the same rank of an
     *  identically-configured trainer. */
    void LoadLocal(BinaryReader& reader);

    size_t NumLocalShards() const { return shards_.size(); }
    const LocalShard& local_shard(size_t i) const { return shards_[i]; }
    size_t NumDpTables() const { return dp_tables_.size(); }
    const DpTable& dp_table(size_t i) const { return dp_tables_[i]; }
    ops::Mlp& bottom_mlp() { return *bottom_; }
    ops::Mlp& top_mlp() { return *top_; }
    comm::ProcessGroup& process_group() { return pg_; }
    const DlrmConfig& config() const { return config_; }
    const DistributedOptions& options() const { return options_; }

  private:
    friend class StepTransaction;
    friend class DistributedCheckpointer;

    // -- construction helpers --
    void BuildShards();

    /** PrepareInput body, routing over `router`. */
    PreparedInput PrepareInputVia(const ShardRouter& router,
                                  const data::Batch& local_batch);

    /** Shared retry loop of the *WithRecovery entry points: runs
     *  `attempt` under an optional StepTransaction with rollback,
     *  backoff, and the all-rank recovery rendezvous. */
    StepResult RunStepWithRecovery(const std::function<double()>& attempt);

    // -- step phases --
    void ForwardEmbeddings(const PreparedInput& prepared,
                           std::vector<Matrix>& pooled_local);
    void ExchangePooled(const std::vector<Matrix>& shard_pooled,
                        size_t local_batch, std::vector<Matrix>& pooled_out);
    void ExchangeGradsAndUpdate(const PreparedInput& prepared,
                                const std::vector<Matrix>& grad_pooled);
    void UpdateDpTables(const PreparedInput& prepared,
                        const std::vector<Matrix>& grad_pooled);
    void AllReduceMlpGrads();

    DlrmConfig config_;
    sharding::ShardingPlan plan_;
    comm::ProcessGroup& pg_;
    DistributedOptions options_;
    int rank_;
    int world_;
    /** Completed TrainStep count on this rank (flight-recorder step id). */
    uint64_t steps_done_ = 0;

    std::unique_ptr<ops::Mlp> bottom_;
    std::unique_ptr<ops::Mlp> top_;
    std::unique_ptr<DotInteraction> interaction_;
    ops::DenseOptimizer dense_opt_;
    std::vector<size_t> bottom_slots_;
    std::vector<size_t> top_slots_;

    /** Non-DP shards owned by this worker, canonical order. */
    std::vector<LocalShard> shards_;
    /** Replicated DP tables. */
    std::vector<DpTable> dp_tables_;
    /** Table index -> DP slot (or -1). */
    std::vector<int> dp_slot_of_table_;

    /** Forward routing tables derived from the plan (see ShardRouter);
     *  shared implementation with the serving engine. */
    std::optional<ShardRouter> router_;

    /** Same routing tables bound to the prepare channel (see
     *  AttachPrepareChannel); engaged only for overlapped pipelining. */
    std::optional<ShardRouter> prepare_router_;

    /** Scratch: flat MLP gradient buffer for the AllReduce. */
    std::vector<float> grad_buffer_;

    /** Active step transaction; update phases call its capture hooks
     *  immediately before mutating state. Null outside transactional
     *  retries. */
    StepTransaction* txn_ = nullptr;

    /** Rank-0 periodic metrics exposition (inert without a telemetry
     *  directory); stops itself on destruction. */
    obs::SnapshotWriter exposition_;
};

}  // namespace neo::core
