/**
 * @file
 * Checkpointing for very large embedding models (Sec. 4.4; Check-N-Run
 * [9]). Writing terabytes every few minutes is infeasible, but between
 * checkpoints only the rows a batch touched actually changed — so after
 * one full baseline, each incremental checkpoint stores just the modified
 * rows (differential checkpointing). For Zipf-skewed access, deltas are
 * orders of magnitude smaller than the table.
 */
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "core/dlrm_config.h"
#include "ops/embedding_table.h"

namespace neo::core {

class DistributedDlrm;

/** Differential checkpointer for one embedding table. */
class DeltaCheckpointer
{
  public:
    /**
     * @param table The live table (not owned; must outlive this).
     */
    explicit DeltaCheckpointer(ops::EmbeddingTable* table);

    /**
     * Write a FULL baseline checkpoint and reset the delta reference.
     * @return Serialized bytes.
     */
    std::vector<uint8_t> WriteBaseline();

    /**
     * Write a delta: only rows that changed since the last Write*() call.
     * @return Serialized bytes (row ids + row payloads).
     */
    std::vector<uint8_t> WriteDelta();

    /** Rows the last WriteDelta() found modified. */
    uint64_t last_delta_rows() const { return last_delta_rows_; }

    /**
     * Restore a table from a baseline plus an ordered list of deltas.
     * Truncated, corrupt, mis-shaped, or out-of-order inputs are rejected
     * with std::runtime_error — restore never trusts checkpoint bytes.
     *
     * @param baseline Bytes from WriteBaseline().
     * @param deltas Bytes from successive WriteDelta() calls, in order.
     */
    static ops::EmbeddingTable Restore(
        const std::vector<uint8_t>& baseline,
        const std::vector<std::vector<uint8_t>>& deltas);

  private:
    ops::EmbeddingTable* table_;
    /** Copy of the table as of the last checkpoint (the delta reference). */
    ops::EmbeddingTable reference_;
    uint64_t last_delta_rows_ = 0;
    /** Sequence number stamped into the next delta (reset by baseline). */
    uint64_t delta_seq_ = 0;
};

/**
 * Checkpoint destination shared by all ranks of a job: one baseline plus
 * an ordered delta chain per rank. Stands in for the distributed blob
 * store a production Check-N-Run deployment writes to; thread-safe
 * because rank threads write their streams concurrently.
 *
 * Two backends: default-constructed stores hold everything in memory;
 * a store constructed with a directory spills every stream to disk
 * (`<dir>/rank_<r>/baseline.bin`, `delta_00000.bin`, ...) and reads it
 * back on demand, so published epochs survive the process — a fresh
 * store opened on the same directory sees the previous job's streams.
 * Files are written to a temp name and renamed, so readers (e.g. a
 * serving process loading a snapshot) never observe a half-written
 * stream.
 */
class CheckpointStore
{
  public:
    /** In-memory store. */
    CheckpointStore() = default;

    /** Disk-backed store rooted at `directory` (created if missing). */
    explicit CheckpointStore(std::string directory);

    /** Spill directory, empty for in-memory stores. */
    const std::string& directory() const { return dir_; }

    /** Replace `rank`'s baseline and discard its delta chain. */
    void PutBaseline(int rank, std::vector<uint8_t> bytes);

    /** Append one delta to `rank`'s chain. */
    void AppendDelta(int rank, std::vector<uint8_t> bytes);

    /** Latest baseline bytes for `rank` (throws if none). */
    std::vector<uint8_t> Baseline(int rank) const;

    /** Delta chain for `rank`, in append order. */
    std::vector<std::vector<uint8_t>> Deltas(int rank) const;

    /** Ranks with a stored baseline, ascending. */
    std::vector<int> Ranks() const;

    /** Total stored bytes across all ranks (for cost calibration). */
    uint64_t TotalBytes() const;

    /**
     * Monotonic write counter: bumped by every PutBaseline/AppendDelta.
     * A serving-side publisher lane polls this to notice "the trainer
     * published something new" without assembling the store — when the
     * generation moved and the streams are at a consistent epoch, it
     * cuts and warm-publishes a fresh snapshot (see
     * FleetRouter::PublishFromStore).
     */
    uint64_t Generation() const;

  private:
    struct Entry {
        std::vector<uint8_t> baseline;
        std::vector<std::vector<uint8_t>> deltas;
    };

    std::string RankDir(int rank) const;

    mutable std::mutex mutex_;
    std::map<int, Entry> entries_;
    std::string dir_;
    uint64_t generation_ = 0;
};

/**
 * The logical-model view of a checkpoint store: per-rank baseline +
 * delta streams assembled into full tables (validated magics, shapes,
 * row ranges, epoch continuity — restore never trusts checkpoint
 * bytes). Non-collective, so a single serving rank can assemble a
 * published checkpoint without a process group; both elastic restore
 * (DistributedCheckpointer::RestoreInto) and snapshot building
 * (serve::SnapshotFromStore) slice from this.
 */
struct AssembledCheckpoint {
    /** One fully-assembled logical table (baseline + deltas applied). */
    struct LogicalTable {
        ops::EmbeddingTable table;
        /** Sparse-optimizer row state, rows x sfpr. */
        std::vector<float> opt_state;
        size_t sfpr;
        LogicalTable(ops::EmbeddingTable t, size_t s)
            : table(std::move(t)), sfpr(s)
        {
            opt_state.assign(static_cast<size_t>(table.rows()) * s, 0.0f);
        }
    };

    /** Table index -> assembled table. */
    std::map<int, LogicalTable> tables;
    /** Replicated dense state: bottom MLP + top MLP + dense optimizer. */
    std::vector<uint8_t> dense_blob;
    /** Consistency epoch every stream ended at. */
    uint64_t epoch = 0;

    /**
     * Assemble the streams in `store` for a model shaped like `config`.
     * Throws on corrupt/truncated/out-of-order streams, or if streams
     * end at different epochs. Column-wise writer shards are rejected
     * (row assembly only, as in elastic restore).
     */
    static AssembledCheckpoint FromStore(const CheckpointStore& store,
                                         const DlrmConfig& config);
};

/**
 * Multi-table, per-rank differential checkpointer for a DistributedDlrm
 * partition (the generalization of DeltaCheckpointer the elastic-recovery
 * path needs). Each rank writes its own baseline/delta streams covering
 * its embedding shards *and* their sparse-optimizer row state; rank 0
 * additionally covers the replicated DP tables and the dense MLP + dense
 * optimizer state (identical on all ranks). Every Write*() agrees a
 * cross-rank consistency epoch via the collective layer, so a restore can
 * verify all streams describe the same step.
 */
class DistributedCheckpointer
{
  public:
    /**
     * @param trainer The partition to checkpoint (not owned).
     * @param store Destination for the serialized streams (not owned).
     */
    DistributedCheckpointer(DistributedDlrm& trainer, CheckpointStore& store);

    /** Write a full baseline for this rank (collective; all ranks call). */
    void WriteBaseline();

    /** Write a delta since the last Write*() (collective; all ranks). */
    void WriteDelta();

    /**
     * The foreground half of a delta write: everything that must see the
     * model frozen at one step. Agrees the epoch (collective), scans the
     * shards against their references, and copies out just the touched
     * rows (plus rank 0's dense state) — the cheap memcpy the step path
     * pays. The returned capture is self-contained: serialization and
     * store appends can happen on another thread while training resumes
     * (AsyncCheckpointer). SerializeDelta(CaptureDelta()) is byte-for-
     * byte what WriteDelta() appends.
     */
    struct DeltaCapture {
        /** One shard's (or DP table's) changed-row set. */
        struct Entry {
            int32_t table = -1;
            bool is_dp = false;
            int64_t row_begin = 0;
            int64_t row_end = 0;
            int64_t dim = 0;
            uint32_t sfpr = 0;
            /** Global row ids of the touched rows. */
            std::vector<int64_t> changed;
            /** Touched-row values, changed.size() x dim. */
            std::vector<float> payload;
            /** Touched-row optimizer state, changed.size() x sfpr. */
            std::vector<float> opt_payload;
        };
        int rank = 0;
        uint64_t epoch = 0;
        std::vector<Entry> entries;
        /** Rank 0's replicated dense state (empty elsewhere). */
        bool has_dense = false;
        std::vector<uint8_t> dense_blob;
    };

    /** Capture the foreground half of a delta (collective; all ranks). */
    DeltaCapture CaptureDelta();

    /** Serialize a capture into the store's delta-stream format. Pure
     *  function of the capture — safe off-thread. */
    static std::vector<uint8_t> SerializeDelta(const DeltaCapture& capture);

    /** Consistency epoch of the last completed Write*(). */
    uint64_t epoch() const { return epoch_; }

    /** Destination store (for deferred SerializeDelta appends). */
    CheckpointStore& store() { return store_; }

    /** Changed rows across all shards in the last WriteDelta(). */
    uint64_t last_delta_rows() const { return last_delta_rows_; }

    /**
     * Restore `target` from the streams in `store`, regardless of how the
     * writing job was sharded: the per-rank streams are assembled into
     * full logical tables (baseline + ordered deltas, with epoch
     * continuity checks), then sliced onto `target`'s shards — which is
     * what lets a 3-worker survivor job load a 4-worker job's checkpoint.
     * Collective on `target`'s process group (all its ranks must call);
     * finishes with an epoch-agreement AllReduce as a consistency check.
     */
    static void RestoreInto(const CheckpointStore& store,
                            DistributedDlrm& target);

  private:
    /** Per-shard reference copy for delta detection. */
    struct Reference {
        ops::EmbeddingTable table;
        /** Optimizer row state as of the last checkpoint (rows x
         *  StateFloatsPerRow). */
        std::vector<float> opt_state;
    };

    /** Agree the next epoch across ranks; throws on divergence. */
    void AgreeEpoch();

    DistributedDlrm& trainer_;
    CheckpointStore& store_;
    uint64_t epoch_ = 0;
    uint64_t last_delta_rows_ = 0;
    /** References for model-parallel shards, trainer shard order. */
    std::vector<Reference> shard_refs_;
    /** References for replicated DP tables (rank 0 only writes them). */
    std::vector<Reference> dp_refs_;
};

}  // namespace neo::core
