/**
 * @file
 * Checkpointing for very large embedding models (Sec. 4.4; Check-N-Run
 * [9]). Writing terabytes every few minutes is infeasible, but between
 * checkpoints only the rows a batch touched actually changed — so after
 * one full baseline, each incremental checkpoint stores just the modified
 * rows (differential checkpointing). For Zipf-skewed access, deltas are
 * orders of magnitude smaller than the table.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/serialize.h"
#include "ops/embedding_table.h"

namespace neo::core {

/** Differential checkpointer for one embedding table. */
class DeltaCheckpointer
{
  public:
    /**
     * @param table The live table (not owned; must outlive this).
     */
    explicit DeltaCheckpointer(ops::EmbeddingTable* table);

    /**
     * Write a FULL baseline checkpoint and reset the delta reference.
     * @return Serialized bytes.
     */
    std::vector<uint8_t> WriteBaseline();

    /**
     * Write a delta: only rows that changed since the last Write*() call.
     * @return Serialized bytes (row ids + row payloads).
     */
    std::vector<uint8_t> WriteDelta();

    /** Rows the last WriteDelta() found modified. */
    uint64_t last_delta_rows() const { return last_delta_rows_; }

    /**
     * Restore a table from a baseline plus an ordered list of deltas.
     *
     * @param baseline Bytes from WriteBaseline().
     * @param deltas Bytes from successive WriteDelta() calls, in order.
     */
    static ops::EmbeddingTable Restore(
        const std::vector<uint8_t>& baseline,
        const std::vector<std::vector<uint8_t>>& deltas);

  private:
    ops::EmbeddingTable* table_;
    /** Copy of the table as of the last checkpoint (the delta reference). */
    ops::EmbeddingTable reference_;
    uint64_t last_delta_rows_ = 0;
};

}  // namespace neo::core
