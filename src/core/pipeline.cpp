#include "core/pipeline.h"

namespace neo::core {

std::optional<double>
PipelinedTrainer::Push(const data::Batch& local_batch)
{
    try {
        // Stage 1: distribute the incoming batch's sparse inputs (the
        // AllToAll that would overlap compute on hardware).
        DistributedDlrm::PreparedInput next =
            trainer_.PrepareInput(local_batch);

        // Stage 2: train the previously prepared batch.
        std::optional<double> loss;
        if (pending_.has_value()) {
            loss = trainer_.TrainStepPrepared(*pending_);
            steps_completed_++;
        }
        pending_ = std::move(next);
        return loss;
    } catch (const comm::RankFailure&) {
        // The prepared batch's place in the collective schedule is lost
        // once the world aborts; drop it so a recovered pipeline restarts
        // from a clean prime instead of replaying half a schedule.
        pending_.reset();
        throw;
    }
}

std::optional<double>
PipelinedTrainer::Flush()
{
    if (!pending_.has_value()) {
        return std::nullopt;
    }
    try {
        const double loss = trainer_.TrainStepPrepared(*pending_);
        steps_completed_++;
        pending_.reset();
        return loss;
    } catch (const comm::RankFailure&) {
        pending_.reset();
        throw;
    }
}

}  // namespace neo::core
