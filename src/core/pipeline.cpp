#include "core/pipeline.h"

#include "obs/trace.h"

namespace neo::core {

std::optional<double>
PipelinedTrainer::Push(const data::Batch& local_batch)
{
    NEO_TRACE_SPAN("pipeline_push", "step");
    try {
        // Stage 1: distribute the incoming batch's sparse inputs (the
        // AllToAll that would overlap compute on hardware).
        DistributedDlrm::PreparedInput next =
            trainer_.PrepareInput(local_batch);

        // Stage 2: train the previously prepared batch. Named differently
        // from "train_step" because a pipelined step excludes its own
        // input distribution (that happened one Push earlier); pass
        // step_name="pipeline_step" to StepBreakdown for pipelined runs.
        std::optional<double> loss;
        if (pending_.has_value()) {
            NEO_TRACE_SPAN("pipeline_step", "step");
            loss = trainer_.TrainStepPrepared(*pending_);
            steps_completed_++;
        }
        pending_ = std::move(next);
        return loss;
    } catch (const comm::RankFailure&) {
        // The prepared batch's place in the collective schedule is lost
        // once the world aborts; drop it so a recovered pipeline restarts
        // from a clean prime instead of replaying half a schedule.
        pending_.reset();
        throw;
    }
}

std::optional<double>
PipelinedTrainer::Flush()
{
    if (!pending_.has_value()) {
        return std::nullopt;
    }
    try {
        NEO_TRACE_SPAN("pipeline_step", "step");
        const double loss = trainer_.TrainStepPrepared(*pending_);
        steps_completed_++;
        pending_.reset();
        return loss;
    } catch (const comm::RankFailure&) {
        pending_.reset();
        throw;
    }
}

}  // namespace neo::core
