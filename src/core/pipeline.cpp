#include "core/pipeline.h"

#include <future>

#include "obs/trace.h"

namespace neo::core {

PipelinedTrainer::PipelinedTrainer(DistributedDlrm& trainer,
                                   comm::ProcessGroup& prepare_pg)
    : trainer_(trainer)
{
    trainer_.AttachPrepareChannel(prepare_pg);
    lane_ = std::make_unique<ThreadPool>(1);
    // Tag the lane thread with this rank so its spans (the overlapped
    // prepare) aggregate into this rank's StepBreakdown, where their
    // intersection with step spans becomes the overlap_saved term.
    const int rank = prepare_pg.Rank();
    lane_->Submit([rank] { obs::Tracer::SetThreadRank(rank); }).get();
}

double
PipelinedTrainer::TrainPending()
{
    NEO_TRACE_SPAN("pipeline_step", "step");
    double loss;
    if (trainer_.options().transactional_retry) {
        StepResult result =
            trainer_.TrainStepPreparedWithRecovery(*pending_);
        if (!result.ok) {
            // Surface the unrecoverable failure the way the raw path
            // does — but only after the transaction rolled the partial
            // step back, so elastic recovery sees clean pre-step state.
            const StepFailure& last = result.failures.back();
            throw comm::RankFailure(last.failed_rank, last.cause,
                                    last.transient);
        }
        loss = result.loss;
    } else {
        loss = trainer_.TrainStepPrepared(*pending_);
    }
    steps_completed_++;
    return loss;
}

std::optional<double>
PipelinedTrainer::Push(const data::Batch& local_batch)
{
    NEO_TRACE_SPAN("pipeline_push", "step");
    if (lane_ == nullptr) {
        try {
            // Stage 1: distribute the incoming batch's sparse inputs (the
            // AllToAll that would overlap compute on hardware).
            DistributedDlrm::PreparedInput next =
                trainer_.PrepareInput(local_batch);

            // Stage 2: train the previously prepared batch. Named
            // differently from "train_step" because a pipelined step
            // excludes its own input distribution (that happened one Push
            // earlier); pass step_name="pipeline_step" to StepBreakdown
            // for pipelined runs.
            std::optional<double> loss;
            if (pending_.has_value()) {
                loss = TrainPending();
            }
            pending_ = std::move(next);
            return loss;
        } catch (const comm::RankFailure&) {
            // The prepared batch's place in the collective schedule is
            // lost once the world aborts; drop it so a recovered pipeline
            // restarts from a clean prime instead of replaying half a
            // schedule.
            pending_.reset();
            throw;
        }
    }

    // Overlapped mode: batch i+1's input AllToAll runs on the prepare
    // channel from the lane thread while this thread trains batch i.
    std::future<DistributedDlrm::PreparedInput> next =
        lane_->Submit([this, &local_batch] {
            return trainer_.PrepareInputOverlapped(local_batch);
        });
    std::optional<double> loss;
    try {
        if (pending_.has_value()) {
            loss = TrainPending();
        }
    } catch (...) {
        // Join the in-flight prepare before unwinding: the lane task
        // borrows `local_batch`, which dies with the caller's frame. A
        // concurrent prepare-channel error is secondary to the training
        // failure being thrown.
        try {
            next.get();
        } catch (...) {
        }
        pending_.reset();
        throw;
    }
    try {
        // Completion handoff: install batch i+1 only after both the
        // training step and its prepare finished.
        pending_ = next.get();
    } catch (...) {
        pending_.reset();
        throw;
    }
    return loss;
}

std::optional<double>
PipelinedTrainer::Flush()
{
    if (!pending_.has_value()) {
        return std::nullopt;
    }
    try {
        const double loss = TrainPending();
        pending_.reset();
        return loss;
    } catch (const comm::RankFailure&) {
        pending_.reset();
        throw;
    }
}

}  // namespace neo::core
